// Quickstart: align relations between two synthetic KBs, on the fly.
//
// The world reproduces the paper's movies example: the candidate KB has
// hasDirector and hasProducer; the reference KB has directedBy. Producers
// often direct their own movies, so simple sampling believes
// hasProducer => directedBy — UBS's contradiction probes kill it.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/sofya.h"

namespace {

void PrintVerdicts(const sofya::AlignmentResult& result) {
  std::printf("alignment of <%s>:\n",
              result.reference_relation.lexical().c_str());
  for (const auto& v : result.verdicts) {
    std::printf("  %-55s pca=%.2f cwa=%.2f pairs=%zu %s%s%s\n",
                v.relation.lexical().c_str(), v.rule.pca_conf, v.rule.cwa_conf,
                v.rule.body_size,
                v.accepted ? "[SUBSUMED]" : "[rejected]",
                v.ubs_subsumption_pruned ? " (UBS pruned)" : "",
                v.equivalence ? " [EQUIVALENT]" : "");
  }
  std::printf("  cost: %llu queries to K', %llu to K, %llu rows, %.1f ms "
              "simulated latency\n\n",
              static_cast<unsigned long long>(result.candidate_queries),
              static_cast<unsigned long long>(result.reference_queries),
              static_cast<unsigned long long>(result.rows_shipped),
              result.simulated_latency_ms);
}

}  // namespace

int main() {
  // 1. A two-KB world with a known ground truth (stands in for two SPARQL
  //    endpoints plus a sameAs link set).
  auto world_or = sofya::GenerateWorld(sofya::MoviesWorldSpec());
  if (!world_or.ok()) {
    std::fprintf(stderr, "world generation failed: %s\n",
                 world_or.status().ToString().c_str());
    return 1;
  }
  sofya::SynthWorld world = std::move(world_or).value();
  std::printf("%s\n\n", sofya::DescribeWorld(world).c_str());

  // 2. The facade: candidate KB K' = moviedb, reference KB K = filmkb.
  sofya::SofyaOptions options;
  options.aligner.measure = sofya::ConfidenceMeasure::kPca;
  options.aligner.threshold = 0.3;
  options.aligner.use_ubs = true;
  sofya::Sofya sofya(world.kb1.get(), world.kb2.get(), &world.links, options);

  // 3. Align the reference relations (as a query would demand them).
  for (const std::string& relation :
       world.truth.RelationsOf(world.kb2->name())) {
    auto result = sofya.Align(relation);
    if (!result.ok()) {
      std::fprintf(stderr, "alignment failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    PrintVerdicts(**result);
  }

  // 4. Compare with ground truth.
  std::printf("ground truth says:\n");
  for (const auto& [body, head] :
       world.truth.AllSubsumptions(world.kb1->name(), world.kb2->name())) {
    std::printf("  %s => %s (%s)\n", body.c_str(), head.c_str(),
                sofya::AlignKindName(world.truth.Classify(body, head)));
  }

  const sofya::EndpointStats cost = sofya.TotalCost();
  std::printf("\ntotal: %llu queries, %llu rows, ~%llu bytes shipped\n",
              static_cast<unsigned long long>(cost.queries),
              static_cast<unsigned long long>(cost.rows_returned),
              static_cast<unsigned long long>(cost.bytes_estimated));
  return 0;
}
