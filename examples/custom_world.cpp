// Building a custom benchmark world from scratch — the synth module as a
// user-facing API. Defines a small publishing domain with every alignment
// regime (equivalence, sibling subsumption, correlated overlap, private
// relations), generates it, exports both KBs as N-Triples, and verifies
// SOFYA's verdicts against the generated ground truth.
//
//   $ ./build/examples/custom_world

#include <cstdio>
#include <sstream>

#include "core/sofya.h"

int main() {
  using sofya::ConceptSpec;
  using sofya::KbRelationSpec;

  // --- 1. Describe the latent world -------------------------------------
  sofya::WorldSpec spec;
  spec.seed = 321;
  spec.num_entities = 2500;
  spec.num_types = 2;  // type 0 = books, type 1 = people.
  spec.kb1_name = "libraryA";
  spec.kb2_name = "libraryB";

  spec.concepts.push_back(ConceptSpec{.name = "authors",
                                      .num_facts = 700,
                                      .domain_type = 0,
                                      .range_type = 1});
  spec.concepts.push_back(ConceptSpec{.name = "illustrates",
                                      .num_facts = 500,
                                      .domain_type = 0,
                                      .range_type = 1});
  // Editors usually are the authors (a correlated trap).
  spec.concepts.push_back(ConceptSpec{.name = "edits",
                                      .num_facts = 500,
                                      .domain_type = 0,
                                      .range_type = 1,
                                      .correlate_with = "authors",
                                      .correlation_rho = 0.8});
  spec.concepts.push_back(ConceptSpec{.name = "title",
                                      .num_facts = 600,
                                      .domain_type = 0,
                                      .literal_range = true});

  // Library A: fine-grained vocabulary.
  spec.kb1_relations.push_back(KbRelationSpec{
      .local_name = "writtenBy", .concepts = {"authors"}, .coverage = 0.85});
  spec.kb1_relations.push_back(KbRelationSpec{.local_name = "illustratedBy",
                                              .concepts = {"illustrates"},
                                              .coverage = 0.85});
  spec.kb1_relations.push_back(KbRelationSpec{
      .local_name = "editedBy", .concepts = {"edits"}, .coverage = 0.85});
  spec.kb1_relations.push_back(KbRelationSpec{
      .local_name = "title", .concepts = {"title"}, .coverage = 0.9});

  // Library B: one coarse "contributor" relation unions author+illustrator,
  // plus its own author relation.
  spec.kb2_relations.push_back(
      KbRelationSpec{.local_name = "contributor",
                     .concepts = {"authors", "illustrates"},
                     .coverage = 0.9});
  spec.kb2_relations.push_back(KbRelationSpec{
      .local_name = "author", .concepts = {"authors"}, .coverage = 0.9});
  spec.kb2_relations.push_back(KbRelationSpec{
      .local_name = "label", .concepts = {"title"}, .coverage = 0.9});

  spec.link_coverage = 0.9;
  spec.kb1_literal_noise.case_change_rate = 0.4;

  // --- 2. Generate and export ------------------------------------------
  auto world_or = sofya::GenerateWorld(spec);
  if (!world_or.ok()) {
    std::fprintf(stderr, "%s\n", world_or.status().ToString().c_str());
    return 1;
  }
  sofya::SynthWorld world = std::move(world_or).value();
  std::printf("%s\n\n", sofya::DescribeWorld(world).c_str());

  auto ntriples = sofya::WriteNTriplesString(world.kb1->store(),
                                             world.kb1->dict());
  if (ntriples.ok()) {
    std::istringstream lines(*ntriples);
    std::string line;
    std::printf("first lines of libraryA as N-Triples:\n");
    for (int i = 0; i < 3 && std::getline(lines, line); ++i) {
      std::printf("  %s\n", line.c_str());
    }
    std::printf("  ... (%zu triples; write them to disk with "
                "WriteNTriples(store, dict, file))\n\n",
                world.kb1->size());
  }

  // --- 3. Align every libraryB relation and grade against ground truth --
  sofya::Sofya sofya(world.kb1.get(), world.kb2.get(), &world.links);
  int correct = 0, total = 0;
  for (const std::string& head : world.truth.RelationsOf("libraryB")) {
    auto result = sofya.Align(head);
    if (!result.ok()) continue;
    std::printf("%s:\n", head.c_str());
    for (const auto& v : (*result)->verdicts) {
      const sofya::AlignKind gold =
          world.truth.Classify(v.relation.lexical(), head);
      const bool predicted_subsumed = v.accepted;
      const bool gold_subsumed = gold != sofya::AlignKind::kNone;
      ++total;
      if (predicted_subsumed == gold_subsumed) ++correct;
      std::printf("  %-45s verdict=%-9s gold=%s%s\n",
                  v.relation.lexical().c_str(),
                  v.accepted ? (v.equivalence ? "equiv" : "subsumed")
                             : "rejected",
                  sofya::AlignKindName(gold),
                  predicted_subsumed == gold_subsumed ? "" : "   <-- MISS");
    }
  }
  std::printf("\nverdicts agreeing with ground truth: %d / %d\n", correct,
              total);
  return 0;
}
