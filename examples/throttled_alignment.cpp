// Aligning against rate-limited, flaky, slow endpoints — the operational
// regime the paper motivates ("providers allow a limited number of queries
// ... do not allow downloading the entire dataset").
//
// Shows: latency modeling, row caps, transparent retry of transient
// failures during paged scans, query budgets, and what happens when the
// budget runs out mid-alignment.
//
//   $ ./build/examples/throttled_alignment

#include <cstdio>

#include "core/sofya.h"

int main() {
  auto world_or = sofya::GenerateWorld(sofya::MusicWorldSpec());
  if (!world_or.ok()) return 1;
  sofya::SynthWorld world = std::move(world_or).value();
  std::printf("%s\n\n", sofya::DescribeWorld(world).c_str());

  const std::string creator = "http://kb2.sofya.org/ontology/creatorOf";

  // --- Scenario 1: realistic public endpoint ---------------------------
  {
    sofya::SofyaOptions options;
    options.throttle = true;
    options.candidate_throttle.base_latency_ms = 120.0;  // Transatlantic.
    options.candidate_throttle.per_row_latency_ms = 0.1;
    options.candidate_throttle.max_rows_per_query = 2000;
    options.candidate_throttle.failure_rate = 0.02;  // Occasional 503s.
    options.reference_throttle = options.candidate_throttle;
    options.reference_throttle.seed = 43;
    // Injected faults, modeled (not slept) latency: keep retries instant
    // too, so the simulation stays wall-clock-free.
    options.retry.initial_backoff_ms = 0.0;

    sofya::Sofya sofya(world.kb1.get(), world.kb2.get(), &world.links,
                       options);
    auto result = sofya.Align(creator);
    if (!result.ok()) {
      std::printf("scenario 1 failed (%s) — transient failures can also "
                  "defeat retries\n\n",
                  result.status().ToString().c_str());
    } else {
      std::printf("scenario 1 (throttled, 2%% failure rate): aligned "
                  "creatorOf\n");
      for (const auto& v : (*result)->verdicts) {
        std::printf("  %-50s pca=%.2f %s\n", v.relation.lexical().c_str(),
                    v.rule.pca_conf,
                    v.accepted ? "[subsumed]" : "[rejected]");
      }
      const sofya::EndpointStats cost = sofya.TotalCost();
      std::printf("  cost: %llu queries, %llu rows, %.1f s simulated "
                  "latency, %llu injected failures survived\n\n",
                  static_cast<unsigned long long>(cost.queries),
                  static_cast<unsigned long long>(cost.rows_returned),
                  cost.simulated_latency_ms / 1000.0,
                  static_cast<unsigned long long>(cost.failures_injected));
    }
  }

  // --- Scenario 2: a query budget too small to finish ------------------
  {
    sofya::SofyaOptions options;
    options.throttle = true;
    options.candidate_throttle.query_budget = 10;
    sofya::Sofya sofya(world.kb1.get(), world.kb2.get(), &world.links,
                       options);
    auto result = sofya.Align(creator);
    std::printf("scenario 2 (budget of 10 queries): %s\n",
                result.ok() ? "unexpectedly succeeded"
                            : result.status().ToString().c_str());
    std::printf("  -> the error is typed (ResourceExhausted), so callers "
                "can fall back to cached alignments or coarser sampling\n");
  }
  return 0;
}
