// Federated querying with on-the-fly alignment — the paper's motivating
// scenario: a query written against one KB's vocabulary is answered by
// *another* endpoint, with relation alignment discovered at query time and
// memoized for later queries.
//
//   $ ./build/examples/federated_query

#include <cstdio>

#include "core/sofya.h"

namespace {

void PrintRows(sofya::Endpoint* endpoint, const sofya::ResultSet& rows,
               size_t limit) {
  for (size_t i = 0; i < rows.rows.size() && i < limit; ++i) {
    std::string line = "   ";
    for (sofya::TermId id : rows.rows[i]) {
      auto term = endpoint->DecodeTerm(id);
      line += (term.ok() ? term->ToNTriples() : "?") + "  ";
    }
    std::printf("%s\n", line.c_str());
  }
  if (rows.rows.size() > limit) {
    std::printf("   ... (%zu rows total)\n", rows.rows.size());
  }
}

}  // namespace

int main() {
  auto world_or = sofya::GenerateWorld(sofya::MoviesWorldSpec());
  if (!world_or.ok()) return 1;
  sofya::SynthWorld world = std::move(world_or).value();

  sofya::Sofya sofya(world.kb1.get(), world.kb2.get(), &world.links);
  sofya::Endpoint* ref = sofya.reference_endpoint();
  sofya::Endpoint* cand = sofya.candidate_endpoint();

  // A user query in the REFERENCE KB's vocabulary:
  //   SELECT ?movie ?director WHERE { ?movie filmkb:directedBy ?director }
  sofya::SelectQuery query;
  const sofya::VarId movie = query.NewVar("movie");
  const sofya::VarId director = query.NewVar("director");
  query.Where(sofya::NodeRef::Variable(movie),
              sofya::NodeRef::Constant(ref->EncodeTerm(sofya::Term::Iri(
                  "http://kb2.sofya.org/ontology/directedBy"))),
              sofya::NodeRef::Variable(director));
  query.Limit(5);

  std::printf("reference-KB query:\n%s\n\n",
              query.ToSparql(world.kb2->dict()).c_str());

  // 1. Answer it on the reference endpoint directly.
  auto direct = sofya.ExecuteOnReference(query);
  if (!direct.ok()) return 1;
  std::printf("answered by the reference endpoint (%zu rows):\n",
              direct->rows.size());
  PrintRows(ref, *direct, 3);

  // 2. Rewrite for the candidate endpoint: alignment happens NOW (first
  //    use), then is cached.
  auto rewritten = sofya.RewriteQuery(query);
  if (!rewritten.ok()) {
    std::fprintf(stderr, "rewrite failed: %s\n",
                 rewritten.status().ToString().c_str());
    return 1;
  }
  std::printf("\nrewritten for the candidate endpoint (alignment discovered "
              "on the fly):\n");
  auto federated = sofya.ExecuteOnCandidate(*rewritten);
  if (!federated.ok()) return 1;
  PrintRows(cand, *federated, 3);

  // 3. A second query over the same relation reuses the cached alignment.
  const uint64_t queries_before = sofya.TotalCost().queries;
  sofya::SelectQuery query2 = query;
  query2.Limit(2);
  auto rewritten2 = sofya.RewriteQuery(query2);
  const uint64_t alignment_cost = sofya.TotalCost().queries - queries_before;
  std::printf("\nsecond rewrite used the cache: %llu additional endpoint "
              "queries\n",
              static_cast<unsigned long long>(alignment_cost));
  std::printf("alignments performed this session: %zu\n",
              sofya.on_the_fly().alignments_performed());
  return 0;
}
