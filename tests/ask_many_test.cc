// Endpoint::AskMany — positional parity with one-by-one Ask over every
// endpoint implementation, intra-batch dedup at the server, decorator
// forwarding semantics (cache answers hits, throttle meters per sub-query),
// and the per-sub-query outcome contract (a failed probe does not discard
// its batch neighbors' answers).

#include <gtest/gtest.h>

#include <vector>

#include "endpoint/caching_endpoint.h"
#include "endpoint/local_endpoint.h"
#include "endpoint/query_forms.h"
#include "endpoint/retrying_endpoint.h"
#include "endpoint/throttled_endpoint.h"
#include "rdf/knowledge_base.h"

namespace sofya {
namespace {

class AskManyTest : public ::testing::Test {
 protected:
  AskManyTest() : kb_("askkb", "http://a.org/") {
    for (int i = 0; i < 6; ++i) {
      kb_.AddFact("s" + std::to_string(i), "p", "o" + std::to_string(i));
    }
    kb_.AddFact("s0", "q", "o0");
    p_ = kb_.dict().LookupIri("http://a.org/p");
    q_ = kb_.dict().LookupIri("http://a.org/q");
    absent_ = kb_.dict().InternIri("http://a.org/absent");
  }

  /// A probe batch with duplicates, modifier-variants, and a false case.
  std::vector<SelectQuery> Batch() const {
    SelectQuery limited = queries::FactsOfPredicate(p_);
    limited.Limit(3).Distinct();
    return {
        queries::FactsOfPredicate(p_),        // true
        queries::FactsOfPredicate(absent_),   // false
        queries::FactsOfPredicate(p_),        // duplicate of [0]
        limited,                              // [0] up to modifiers
        queries::FactsOfPredicate(q_),        // true
        queries::FactsOfPredicate(absent_),   // duplicate of [1]
    };
  }

  void ExpectParity(Endpoint* batched, Endpoint* sequential) {
    const std::vector<SelectQuery> batch = Batch();
    AskBatchResult many = batched->AskMany(batch);
    ASSERT_TRUE(many.all_ok()) << many.FirstError().ToString();
    ASSERT_EQ(many.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      auto one = sequential->Ask(batch[i]);
      ASSERT_TRUE(one.ok()) << "query " << i;
      EXPECT_EQ(many.values[i], *one) << "query " << i;
    }
  }

  KnowledgeBase kb_;
  TermId p_ = kNullTermId;
  TermId q_ = kNullTermId;
  TermId absent_ = kNullTermId;
};

TEST_F(AskManyTest, LocalEndpointParityAndDedup) {
  LocalEndpoint batched(&kb_);
  LocalEndpoint sequential(&kb_);
  ExpectParity(&batched, &sequential);
  // 6 probes, but only 3 distinct up to solution modifiers: the duplicate
  // p-probe, the modifier-variant, and the duplicate absent-probe are all
  // answered from the first evaluation.
  EXPECT_EQ(batched.stats().queries, 3u);
  EXPECT_EQ(sequential.stats().queries, 6u);
  // ASK ships no rows either way.
  EXPECT_EQ(batched.stats().rows_returned, 0u);
}

TEST_F(AskManyTest, DefaultImplementationLoopsAsk) {
  // The base-class fallback answers each probe through the endpoint's own
  // Ask: parity, but no dedup.
  LocalEndpoint inner(&kb_);
  ThrottleOptions throttle;
  throttle.jitter_ms = 0.0;
  ThrottledEndpoint ep(&inner, throttle);
  LocalEndpoint sequential(&kb_);
  ExpectParity(&ep, &sequential);
  // The throttle meters requests, not batches: all 6 sub-queries charged.
  EXPECT_EQ(ep.stats().queries, 6u);
  EXPECT_EQ(ep.queries_issued(), 6u);
}

TEST_F(AskManyTest, ThrottledBudgetDeniesPerSubQueryNotPerBatch) {
  LocalEndpoint inner(&kb_);
  ThrottleOptions throttle;
  throttle.query_budget = 2;
  throttle.jitter_ms = 0.0;
  ThrottledEndpoint ep(&inner, throttle);
  AskBatchResult result = ep.AskMany(Batch());
  ASSERT_EQ(result.size(), 6u);
  // The first two sub-queries were admitted and answered; everything after
  // the budget line reports its own ResourceExhausted instead of sinking
  // the whole batch.
  EXPECT_TRUE(result.statuses[0].ok());
  EXPECT_TRUE(result.values[0]);
  EXPECT_TRUE(result.statuses[1].ok());
  EXPECT_FALSE(result.values[1]);
  for (size_t i = 2; i < result.size(); ++i) {
    EXPECT_TRUE(result.statuses[i].IsResourceExhausted()) << "slot " << i;
  }
  EXPECT_EQ(result.num_failed(), 4u);
  EXPECT_TRUE(result.FirstError().IsResourceExhausted());
}

TEST_F(AskManyTest, CachingEndpointAnswersHitsForwardsMisses) {
  LocalEndpoint inner(&kb_);
  CachingEndpoint ep(&inner);

  // Warm one probe; the batch then hits it (and its modifier variant and
  // duplicate) without reaching the server.
  ASSERT_TRUE(ep.Ask(queries::FactsOfPredicate(p_)).ok());
  EXPECT_EQ(inner.stats().queries, 1u);

  AskBatchResult many = ep.AskMany(Batch());
  ASSERT_TRUE(many.all_ok());
  EXPECT_TRUE(many.values[0]);
  EXPECT_FALSE(many.values[1]);
  EXPECT_TRUE(many.values[2]);
  EXPECT_TRUE(many.values[3]);
  EXPECT_TRUE(many.values[4]);
  EXPECT_FALSE(many.values[5]);
  // Hits: probes 0, 2, 3 (same normalized key as the warmed one). Misses:
  // the warm-up plus probes 1, 4, 5 — of which 5 dedups against 1 inside
  // the forwarded batch, so the server saw only 2 new evaluations.
  EXPECT_EQ(ep.hits(), 3u);
  EXPECT_EQ(ep.misses(), 4u);
  EXPECT_EQ(inner.stats().queries, 3u);

  // The whole batch again: pure hits, zero server traffic.
  AskBatchResult again = ep.AskMany(Batch());
  ASSERT_TRUE(again.all_ok());
  EXPECT_EQ(again.values, many.values);
  EXPECT_EQ(ep.hits(), 9u);
  EXPECT_EQ(inner.stats().queries, 3u);
}

TEST_F(AskManyTest, CachingWithAsksDisabledForwardsWholeBatch) {
  LocalEndpoint inner(&kb_);
  CacheOptions options;
  options.cache_asks = false;
  CachingEndpoint ep(&inner, options);
  LocalEndpoint sequential(&kb_);
  ExpectParity(&ep, &sequential);
  EXPECT_EQ(ep.hits(), 0u);
  // Forwarded untouched to LocalEndpoint::AskMany, which still dedups.
  EXPECT_EQ(inner.stats().queries, 3u);
}

TEST_F(AskManyTest, RetryingAskManyAbsorbsTransientFailures) {
  LocalEndpoint inner(&kb_);
  ThrottleOptions throttle;
  throttle.failure_rate = 0.4;
  throttle.jitter_ms = 0.0;
  throttle.seed = 17;
  ThrottledEndpoint flaky(&inner, throttle);
  RetryOptions retry;
  retry.max_retries = 25;
  retry.initial_backoff_ms = 0.0;  // Deterministic injector; don't wait.
  RetryingEndpoint ep(&flaky, retry);
  LocalEndpoint sequential(&kb_);
  // Per-sub-query retry budgets: one flaky probe cannot sink the batch.
  ExpectParity(&ep, &sequential);
  // Hammer the batch until the failure injector has provably fired.
  for (int i = 0; i < 10 && ep.retries_performed() == 0; ++i) {
    ASSERT_TRUE(ep.AskMany(Batch()).all_ok());
  }
  EXPECT_GT(ep.retries_performed(), 0u);
}

TEST_F(AskManyTest, EmptyBatchIsANoOp) {
  LocalEndpoint ep(&kb_);
  AskBatchResult result = ep.AskMany({});
  EXPECT_TRUE(result.all_ok());
  EXPECT_TRUE(result.empty());
  EXPECT_EQ(ep.stats().queries, 0u);
}

}  // namespace
}  // namespace sofya
