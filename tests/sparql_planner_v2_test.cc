// Planner v2: the Selinger-style dynamic-programming join orderer and its
// cardinality inputs (exact constant-prefix probes, equi-depth histograms).
//
// What this file pins:
//
//   1. the DP planner finds globally cheaper orders than the greedy
//      planner's myopic min-next-step choice (the motivating trap);
//   2. exact-probe estimates: a constant-prefix clause's estimated_rows is
//      the store's true match count, not a facts/distinct approximation;
//   3. DP/greedy/legacy produce identical result bags on randomized corpora
//      across shard geometries (hash-ring sizes, promotion on/off);
//   4. histograms are epoch-memoized exactly like StatsFor: repeated reads
//      are free, a write to the predicate's shard invalidates, an untouched
//      promoted predicate keeps its memo.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "rdf/triple_store.h"
#include "sparql/engine.h"
#include "sparql/planner.h"
#include "sparql/query.h"
#include "util/random.h"

namespace sofya {
namespace {

using Row = std::vector<TermId>;

std::multiset<Row> AsBag(const std::vector<Row>& rows) {
  return {rows.begin(), rows.end()};
}

// ---------------------------------------------------------------------------
// The greedy trap: a chain where the smallest-base clause is the worst
// starting point.
//
//   ?a pX ?b . ?b pF ?c . ?c pY ?d
//
// pX has only 2 facts, but both its objects are mega-hubs in pF (~400 facts
// each), so starting there explodes the intermediate. pY has 5 facts and is
// maximally selective driven backwards through pF's distinct objects. The
// greedy planner starts at pX (smallest base estimate) and is then forced
// through the hubs; the DP planner prices the whole chain and starts at pY.
class GreedyTrapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_.Insert(100, kPX, 200);  // a0 -> b0 (hub)
    store_.Insert(101, kPX, 201);  // a1 -> b1 (hub)
    for (TermId j = 0; j < 400; ++j) {
      store_.Insert(200, kPF, 300 + j);  // b0 fans out to c0..c399.
      store_.Insert(201, kPF, 700 + j);  // b1 fans out to c400..c799.
    }
    for (TermId j = 0; j < 200; ++j) {
      store_.Insert(1000 + j, kPF, 2000 + j);  // Thin tail: bq_j -> cq_j.
    }
    store_.Insert(300, kPY, 900);  // c0 -> d0: the only row that survives.
    for (TermId j = 0; j < 4; ++j) {
      store_.Insert(2000 + j, kPY, 910 + j);  // cq_j -> d_j (dead ends).
    }
  }

  SelectQuery Chain() {
    SelectQuery q;
    const VarId a = q.NewVar("a");
    const VarId b = q.NewVar("b");
    const VarId c = q.NewVar("c");
    const VarId d = q.NewVar("d");
    q.Where(NodeRef::Variable(a), NodeRef::Constant(kPX),
            NodeRef::Variable(b));
    q.Where(NodeRef::Variable(b), NodeRef::Constant(kPF),
            NodeRef::Variable(c));
    q.Where(NodeRef::Variable(c), NodeRef::Constant(kPY),
            NodeRef::Variable(d));
    return q;
  }

  static constexpr TermId kPX = 10, kPF = 11, kPY = 12;
  TripleStore store_;
};

TEST_F(GreedyTrapTest, DpStartsAtTheGloballySelectiveEnd) {
  const SelectQuery q = Chain();
  const CompiledPlan dp = CompilePlan(q, &store_);
  ASSERT_EQ(dp.clauses.size(), 3u);
  EXPECT_TRUE(dp.used_statistics);
  EXPECT_TRUE(dp.used_dp);
  EXPECT_EQ(dp.clauses[0].source_index, 2u);  // pY first, despite base 5 > 2.

  PlannerOptions greedy_opts;
  greedy_opts.use_dp = false;
  const CompiledPlan greedy = CompilePlan(q, &store_, greedy_opts);
  ASSERT_EQ(greedy.clauses.size(), 3u);
  EXPECT_FALSE(greedy.used_dp);
  EXPECT_EQ(greedy.clauses[0].source_index, 0u);  // Min base: pX.

  // The DP order's estimated cumulative chain is strictly cheaper.
  EXPECT_LT(dp.clauses.back().estimated_output_rows,
            greedy.clauses.back().estimated_output_rows);
}

TEST_F(GreedyTrapTest, DpPlanDoesStrictlyLessWorkAndAgreesOnRows) {
  const SelectQuery q = Chain();
  EvalStats dp_stats, greedy_stats;
  PlannerOptions greedy_opts;
  greedy_opts.use_dp = false;
  auto dp_rows = Evaluate(store_, q, &dp_stats);
  auto greedy_rows = Evaluate(store_, q, &greedy_stats, nullptr, greedy_opts);
  ASSERT_TRUE(dp_rows.ok());
  ASSERT_TRUE(greedy_rows.ok());
  EXPECT_EQ(AsBag(dp_rows->rows), AsBag(greedy_rows->rows));
  EXPECT_EQ(dp_rows->rows.size(), 1u);
  // Greedy walks both 400-fact hubs; DP probes backwards from 5 pY facts.
  EXPECT_LT(dp_stats.triples_scanned * 10, greedy_stats.triples_scanned);
}

TEST_F(GreedyTrapTest, DpFallsBackToGreedyAboveClauseBudget) {
  PlannerOptions tight;
  tight.dp_max_clauses = 2;  // 3-clause query exceeds the DP budget.
  const CompiledPlan plan = CompilePlan(Chain(), &store_, tight);
  EXPECT_TRUE(plan.used_statistics);
  EXPECT_FALSE(plan.used_dp);
}

// ---------------------------------------------------------------------------
// Exact constant-prefix probes.

TEST(ExactProbeTest, ConstantPrefixEstimateIsTheTrueMatchCount) {
  TripleStore store;
  const TermId p = 10;
  for (TermId i = 0; i < 7; ++i) store.Insert(500, p, 600 + i);
  store.Insert(501, p, 600);

  // ?y via (s0, p, ?y): the planner should know this is exactly 7 rows —
  // facts/distinct would say 8/2 = 4.
  SelectQuery q;
  const VarId y = q.NewVar("y");
  q.Where(NodeRef::Constant(500), NodeRef::Constant(p), NodeRef::Variable(y));
  const CompiledPlan plan = CompilePlan(q, &store);
  ASSERT_EQ(plan.clauses.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.clauses[0].estimated_rows, 7.0);
  EXPECT_DOUBLE_EQ(plan.clauses[0].estimated_output_rows, 7.0);

  // Object-anchored probe: (?x, p, o) where o has exactly 2 facts.
  SelectQuery q2;
  const VarId x = q2.NewVar("x");
  q2.Where(NodeRef::Variable(x), NodeRef::Constant(p), NodeRef::Constant(600));
  const CompiledPlan plan2 = CompilePlan(q2, &store);
  ASSERT_EQ(plan2.clauses.size(), 1u);
  EXPECT_DOUBLE_EQ(plan2.clauses[0].estimated_rows, 2.0);
}

// ---------------------------------------------------------------------------
// Randomized parity across shard geometries.

TripleStore RandomStore(Rng& rng, size_t scale, const StoreOptions& options) {
  TripleStore store(options);
  const TermId preds[4] = {50, 51, 52, 53};
  const size_t sizes[4] = {scale * 40, scale * 8, scale * 2, 3};
  for (int p = 0; p < 4; ++p) {
    for (size_t i = 0; i < sizes[p]; ++i) {
      store.Insert(static_cast<TermId>(1 + rng.Below(20)), preds[p],
                   static_cast<TermId>(1 + rng.Below(20)));
    }
  }
  return store;
}

SelectQuery RandomQuery(Rng& rng) {
  SelectQuery q;
  std::vector<VarId> vars;
  for (int i = 0; i < 4; ++i) {
    vars.push_back(q.NewVar("v" + std::to_string(i)));
  }
  const size_t num_clauses = 1 + rng.Below(4);
  for (size_t c = 0; c < num_clauses; ++c) {
    auto node = [&](bool allow_const_pred) -> NodeRef {
      const uint64_t kind = rng.Below(10);
      if (allow_const_pred && kind < 6) {
        return NodeRef::Constant(static_cast<TermId>(50 + rng.Below(4)));
      }
      if (kind < 3) {
        return NodeRef::Constant(static_cast<TermId>(1 + rng.Below(20)));
      }
      return NodeRef::Variable(vars[rng.Below(vars.size())]);
    };
    q.Where(node(false), node(true), node(false));
  }
  if (rng.Bernoulli(0.3)) {
    q.Filter(FilterExpr::VarNeqVar(vars[rng.Below(2)], vars[2 + rng.Below(2)]));
  }
  if (rng.Bernoulli(0.3)) q.Distinct();
  return q;
}

class PlannerV2Property : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlannerV2Property, DpGreedyAndLegacyAgreeAcrossShardGeometries) {
  // Geometries: single-shard, small ring, default ring; with and without
  // predicate promotion (threshold 64 promotes the fat predicate once the
  // corpus is big enough, so both layouts get exercised).
  const size_t rings[] = {1, 2, 8};
  const size_t promote[] = {0, 64};
  PlannerOptions greedy_opts;
  greedy_opts.use_dp = false;
  PlannerOptions legacy_opts;
  legacy_opts.use_statistics = false;

  Rng rng(GetParam());
  for (size_t ring : rings) {
    for (size_t threshold : promote) {
      StoreOptions geometry;
      geometry.num_hash_shards = ring;
      geometry.promote_threshold = threshold;
      geometry.split_factor = 2;
      for (int round = 0; round < 8; ++round) {
        TripleStore store = RandomStore(rng, 1 + rng.Below(20), geometry);
        const SelectQuery q = RandomQuery(rng);
        auto dp = Evaluate(store, q);
        auto greedy = Evaluate(store, q, nullptr, nullptr, greedy_opts);
        auto legacy = Evaluate(store, q, nullptr, nullptr, legacy_opts);
        ASSERT_TRUE(dp.ok());
        ASSERT_TRUE(greedy.ok());
        ASSERT_TRUE(legacy.ok());
        const auto bag = AsBag(dp->rows);
        EXPECT_EQ(bag, AsBag(greedy->rows))
            << "seed=" << GetParam() << " ring=" << ring
            << " promote=" << threshold << " round=" << round;
        EXPECT_EQ(bag, AsBag(legacy->rows))
            << "seed=" << GetParam() << " ring=" << ring
            << " promote=" << threshold << " round=" << round;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerV2Property,
                         ::testing::Values(11ULL, 42ULL, 777ULL));

// ---------------------------------------------------------------------------
// Histogram memoization.

TEST(HistogramMemoTest, RebuiltOnlyWhenThePredicatesShardsChange) {
  // Promotion threshold 4 gives each fat predicate its own shard group, so
  // the two predicates have independent epochs.
  StoreOptions options;
  options.promote_threshold = 4;
  options.split_factor = 2;
  TripleStore store(options);
  const TermId pa = 10, pb = 11;
  for (TermId i = 0; i < 40; ++i) {
    store.Insert(100 + i, pa, 200 + (i % 5));
    store.Insert(300 + i, pb, 400 + i);
  }
  EXPECT_EQ(store.histogram_recomputes(), 0u);

  const PredicateHistograms first = store.HistogramFor(pa);
  EXPECT_FALSE(first.subjects.empty());
  EXPECT_EQ(first.subjects.total_rows(), 40u);
  EXPECT_EQ(store.histogram_recomputes(), 1u);

  // Same epoch: served from the memo.
  (void)store.HistogramFor(pa);
  EXPECT_EQ(store.histogram_recomputes(), 1u);

  // A write to pb's own group must not invalidate pa's memo...
  (void)store.HistogramFor(pb);
  EXPECT_EQ(store.histogram_recomputes(), 2u);
  store.Insert(999, pb, 999);
  (void)store.HistogramFor(pa);
  EXPECT_EQ(store.histogram_recomputes(), 2u);
  // ...but pb itself rebuilds at the new epoch.
  (void)store.HistogramFor(pb);
  EXPECT_EQ(store.histogram_recomputes(), 3u);

  // And a write to pa invalidates pa, with the new fact visible.
  store.Insert(999, pa, 999);
  const PredicateHistograms rebuilt = store.HistogramFor(pa);
  EXPECT_EQ(store.histogram_recomputes(), 4u);
  EXPECT_EQ(rebuilt.subjects.total_rows(), 41u);

  // Absent predicate: empty histograms, nothing memoized the hard way.
  const PredicateHistograms absent = store.HistogramFor(12345);
  EXPECT_TRUE(absent.subjects.empty());
  EXPECT_TRUE(absent.objects.empty());
}

TEST(HistogramMemoTest, FanoutSeesContiguousSkewButStaysNearUniformWhenFlat) {
  TripleStore store;
  const TermId flat = 10, skewed = 11;
  for (TermId i = 0; i < 1000; ++i) store.Insert(2000 + i, flat, 5000 + i);
  // One 400-fact hub inside an otherwise thin predicate.
  for (TermId j = 0; j < 400; ++j) store.Insert(3000, skewed, 6000 + j);
  for (TermId i = 0; i < 100; ++i) store.Insert(4000 + i, skewed, 7000 + i);

  const double flat_fanout = store.HistogramFor(flat).subjects.ExpectedFanout();
  EXPECT_NEAR(flat_fanout, 1.0, 0.01);
  // Frequency-weighted: 400/500 of the mass has fan-out 400.
  const double hub_fanout =
      store.HistogramFor(skewed).subjects.ExpectedFanout();
  EXPECT_GT(hub_fanout, 100.0);
}

}  // namespace
}  // namespace sofya
