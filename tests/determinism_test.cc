// End-to-end determinism: the whole pipeline — generation, sampling,
// alignment, evaluation — must be bit-reproducible under fixed seeds.
// Reproducibility is what makes the benchmark harness a regression test.

#include <gtest/gtest.h>

#include "core/sofya.h"

namespace sofya {
namespace {

/// Runs one full direction run and fingerprints every mined rule.
std::vector<std::string> FingerprintRun(uint64_t seed) {
  auto world =
      std::move(GenerateWorld(YagoDbpediaSpec(seed, /*scale=*/0.03))).value();
  LocalEndpoint cand(world.kb1.get());
  LocalEndpoint ref(world.kb2.get());
  DirectionRunOptions options;
  options.aligner.threshold = 0.5;
  options.max_relations = 25;
  auto run = std::move(RunDirection(&cand, &ref, world.links,
                                    world.truth.RelationsOf("dbpd"),
                                    options))
                 .value();
  std::vector<std::string> fingerprint;
  for (const auto& rule : run.rules) {
    fingerprint.push_back(StrFormat(
        "%s=>%s|%.6f|%.6f|%zu|%zu|%d|%d", rule.body_iri.c_str(),
        rule.head_iri.c_str(), rule.pca_conf, rule.cwa_conf, rule.pairs,
        rule.support, static_cast<int>(rule.accepted),
        static_cast<int>(rule.ubs_subsumption_pruned)));
  }
  return fingerprint;
}

TEST(DeterminismTest, FullPipelineIsBitReproducible) {
  const auto a = FingerprintRun(101);
  const auto b = FingerprintRun(101);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(DeterminismTest, DifferentSeedsGiveDifferentRuns) {
  EXPECT_NE(FingerprintRun(101), FingerprintRun(102));
}

TEST(DeterminismTest, ThrottledPipelineReproducible) {
  auto run_once = [] {
    auto world = std::move(GenerateWorld(MoviesWorldSpec())).value();
    SofyaOptions options;
    options.throttle = true;
    options.candidate_throttle.failure_rate = 0.05;
    options.candidate_throttle.seed = 5;
    options.reference_throttle.seed = 6;
    options.retry.max_retries = 10;
    options.retry.initial_backoff_ms = 0.0;  // Timing-free reproducibility.
    Sofya sofya(world.kb1.get(), world.kb2.get(), &world.links, options);
    auto result = sofya.Align("http://kb2.sofya.org/ontology/directedBy");
    EXPECT_TRUE(result.ok());
    return sofya.TotalCost().queries;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(DeterminismTest, Table1ReportReproducible) {
  Table1Options options;
  options.scale = 0.02;
  options.seed = 55;
  options.max_relations = 20;
  auto a = RunTable1(options);
  auto b = RunTable1(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->ToCsv(), b->ToCsv());
}

}  // namespace
}  // namespace sofya
