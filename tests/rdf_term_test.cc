#include "rdf/term.h"

#include <gtest/gtest.h>

#include <set>

namespace sofya {
namespace {

TEST(TermTest, IriBasics) {
  Term t = Term::Iri("http://x.org/a");
  EXPECT_TRUE(t.is_iri());
  EXPECT_FALSE(t.is_literal());
  EXPECT_FALSE(t.is_blank());
  EXPECT_EQ(t.lexical(), "http://x.org/a");
  EXPECT_EQ(t.ToNTriples(), "<http://x.org/a>");
}

TEST(TermTest, BlankNodeDetection) {
  Term b = Term::Iri("_:b0");
  EXPECT_TRUE(b.is_iri());
  EXPECT_TRUE(b.is_blank());
  EXPECT_EQ(b.ToNTriples(), "_:b0");
}

TEST(TermTest, PlainLiteral) {
  Term t = Term::Literal("hello");
  EXPECT_TRUE(t.is_literal());
  EXPECT_EQ(t.ToNTriples(), "\"hello\"");
  EXPECT_TRUE(t.datatype().empty());
  EXPECT_TRUE(t.language().empty());
}

TEST(TermTest, TypedLiteral) {
  Term t = Term::TypedLiteral("42", std::string(xsd::kInteger));
  EXPECT_EQ(t.ToNTriples(),
            "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>");
}

TEST(TermTest, LangLiteral) {
  Term t = Term::LangLiteral("Wien", "de");
  EXPECT_EQ(t.ToNTriples(), "\"Wien\"@de");
}

TEST(TermTest, LiteralEscapingInSurface) {
  Term t = Term::Literal("say \"hi\"\n");
  EXPECT_EQ(t.ToNTriples(), "\"say \\\"hi\\\"\\n\"");
}

TEST(TermTest, EqualityDistinguishesKindAndAnnotations) {
  EXPECT_EQ(Term::Iri("a"), Term::Iri("a"));
  EXPECT_NE(Term::Iri("a"), Term::Literal("a"));
  EXPECT_NE(Term::Literal("a"), Term::LangLiteral("a", "en"));
  EXPECT_NE(Term::Literal("a"),
            Term::TypedLiteral("a", std::string(xsd::kString)));
  EXPECT_NE(Term::LangLiteral("a", "en"), Term::LangLiteral("a", "de"));
}

TEST(TermTest, OrderingIsTotalAndConsistent) {
  std::set<Term> terms{Term::Iri("b"), Term::Iri("a"), Term::Literal("a"),
                       Term::LangLiteral("a", "en")};
  EXPECT_EQ(terms.size(), 4u);
  EXPECT_EQ(terms.begin()->lexical(), "a");  // IRIs sort before literals.
  EXPECT_TRUE(terms.begin()->is_iri());
}

TEST(TermTest, HashAgreesWithEquality) {
  TermHash h;
  EXPECT_EQ(h(Term::Iri("x")), h(Term::Iri("x")));
  EXPECT_NE(h(Term::Iri("x")), h(Term::Literal("x")));
  EXPECT_NE(h(Term::LangLiteral("x", "en")), h(Term::LangLiteral("x", "fr")));
}

TEST(TermTest, DefaultConstructedIsEmptyIri) {
  Term t;
  EXPECT_TRUE(t.is_iri());
  EXPECT_TRUE(t.lexical().empty());
}

}  // namespace
}  // namespace sofya
