// The candidate-source layer: refactor parity (the sameAs source must be
// candidate- and query-count-identical to the pre-refactor finder), the
// zero-links lexical path, the distribution profiles, the PARIS-style
// priors, the shared lexical-index cache, and AlignMany determinism with
// a non-default source.

#include "align/candidate_source.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_set>

#include "align/candidate_finder.h"
#include "align/relation_aligner.h"
#include "endpoint/local_endpoint.h"
#include "endpoint/paged_select.h"
#include "endpoint/query_forms.h"
#include "endpoint/tracking_endpoint.h"
#include "similarity/literal_matcher.h"
#include "synth/presets.h"
#include "synth/world_generator.h"
#include "util/hash.h"
#include "util/random.h"

namespace sofya {
namespace {

// ---------------------------------------------------------------------------
// Frozen pre-refactor finder (PR 7's CandidateFinder::FindCandidates body,
// copied verbatim). The refactor's contract is that the kSameAs source is
// indistinguishable from this code — same candidates, same order, same
// queries — so this copy is the regression oracle. Do not "fix" it.
// ---------------------------------------------------------------------------
StatusOr<std::vector<CandidateRelation>> LegacyFindCandidates(
    Endpoint* candidate_kb, Endpoint* reference_kb,
    const CrossKbTranslator* to_candidate,
    const CandidateFinderOptions& options, const Term& r) {
  LiteralMatcher literal_matcher(options.literal_options);
  std::vector<CandidateRelation> result;
  const TermId r_id = reference_kb->LookupTerm(r);
  if (r_id == kNullTermId) return result;

  PagedSelectOptions page_options;
  page_options.page_size = options.page_size;
  SOFYA_ASSIGN_OR_RETURN(
      ResultSet window,
      PagedSelect(reference_kb,
                  queries::FactsOfPredicate(r_id, options.scan_limit),
                  page_options));
  if (window.rows.empty()) return result;

  std::vector<size_t> order(window.rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(options.seed ^ Fnv1a(r.lexical().data(), r.lexical().size()));
  Shuffle(rng, order);

  size_t literal_objects = 0;
  for (const auto& row : window.rows) {
    SOFYA_ASSIGN_OR_RETURN(Term obj, reference_kb->DecodeTerm(row[1]));
    if (obj.is_literal()) ++literal_objects;
  }
  const bool literal_relation = literal_objects * 2 >= window.rows.size();

  struct Probe {
    bool literal;
    Term y2;
  };
  std::vector<Probe> probes;
  std::vector<SelectQuery> probe_queries;
  for (size_t idx : order) {
    if (probes.size() >= options.sample_facts) break;
    const auto& row = window.rows[idx];
    SOFYA_ASSIGN_OR_RETURN(Term x2, reference_kb->DecodeTerm(row[0]));
    SOFYA_ASSIGN_OR_RETURN(Term y2, reference_kb->DecodeTerm(row[1]));

    auto x1 = to_candidate->Translate(x2);
    if (!x1.ok()) continue;

    if (literal_relation) {
      if (!y2.is_literal()) continue;
      const TermId x1_id = candidate_kb->LookupTerm(*x1);
      if (x1_id == kNullTermId) continue;
      probes.push_back(Probe{true, y2});
      probe_queries.push_back(queries::FactsOfSubject(x1_id));
      continue;
    }

    auto y1 = to_candidate->Translate(y2);
    if (!y1.ok()) continue;
    const TermId x1_id = candidate_kb->LookupTerm(*x1);
    const TermId y1_id = candidate_kb->LookupTerm(*y1);
    if (x1_id == kNullTermId || y1_id == kNullTermId) continue;
    probes.push_back(Probe{false, Term()});
    probe_queries.push_back(queries::PredicatesBetween(x1_id, y1_id));
  }

  std::map<Term, size_t> counts;
  SOFYA_ASSIGN_OR_RETURN(std::vector<ResultSet> probe_results,
                         candidate_kb->SelectMany(probe_queries).IntoValues());
  for (size_t i = 0; i < probes.size(); ++i) {
    const ResultSet& rows = probe_results[i];
    if (probes[i].literal) {
      std::unordered_set<TermId> credited;
      for (const auto& fact_row : rows.rows) {
        SOFYA_ASSIGN_OR_RETURN(Term obj, candidate_kb->DecodeTerm(fact_row[1]));
        if (!obj.is_literal()) continue;
        if (!literal_matcher.Matches(obj, probes[i].y2)) continue;
        if (!credited.insert(fact_row[0]).second) continue;
        SOFYA_ASSIGN_OR_RETURN(Term predicate,
                               candidate_kb->DecodeTerm(fact_row[0]));
        ++counts[predicate];
      }
      continue;
    }
    for (const auto& p_row : rows.rows) {
      SOFYA_ASSIGN_OR_RETURN(Term predicate,
                             candidate_kb->DecodeTerm(p_row[0]));
      ++counts[predicate];
    }
  }

  for (const auto& [relation, count] : counts) {
    if (count < options.min_cooccurrence) continue;
    result.push_back(CandidateRelation{relation, count});
  }
  std::stable_sort(result.begin(), result.end(),
                   [](const CandidateRelation& a, const CandidateRelation& b) {
                     if (a.cooccurrences != b.cooccurrences) {
                       return a.cooccurrences > b.cooccurrences;
                     }
                     return a.relation < b.relation;
                   });
  if (result.size() > options.max_candidates) {
    result.resize(options.max_candidates);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Refactor parity
// ---------------------------------------------------------------------------

/// Runs legacy and refactored discovery for `r` on `world` behind fresh
/// TrackingEndpoints and asserts identical candidates AND query counts.
void ExpectSameAsParity(SynthWorld* world, const Term& r) {
  LocalEndpoint cand(world->kb1.get());
  LocalEndpoint ref(world->kb2.get());
  CrossKbTranslator to_cand(&world->links, cand.base_iri());
  CandidateFinderOptions options;  // Defaults == kSameAs.

  TrackingEndpoint legacy_cand(&cand), legacy_ref(&ref);
  auto legacy =
      LegacyFindCandidates(&legacy_cand, &legacy_ref, &to_cand, options, r);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();

  TrackingEndpoint new_cand(&cand), new_ref(&ref);
  CandidateFinder finder(&new_cand, &new_ref, &to_cand, options);
  auto refactored = finder.FindCandidates(r);
  ASSERT_TRUE(refactored.ok()) << refactored.status().ToString();

  ASSERT_EQ(refactored->size(), legacy->size());
  for (size_t i = 0; i < legacy->size(); ++i) {
    EXPECT_EQ((*refactored)[i].relation, (*legacy)[i].relation);
    EXPECT_EQ((*refactored)[i].cooccurrences, (*legacy)[i].cooccurrences);
  }
  EXPECT_EQ(new_cand.stats().queries, legacy_cand.stats().queries);
  EXPECT_EQ(new_ref.stats().queries, legacy_ref.stats().queries);
  EXPECT_EQ(new_cand.stats().rows_returned,
            legacy_cand.stats().rows_returned);
  EXPECT_EQ(new_ref.stats().rows_returned, legacy_ref.stats().rows_returned);
}

TEST(SameAsSourceParityTest, MoviesEntityAndLiteralRelations) {
  auto world = std::move(GenerateWorld(MoviesWorldSpec())).value();
  ExpectSameAsParity(&world,
                     Term::Iri("http://kb2.sofya.org/ontology/directedBy"));
  ExpectSameAsParity(&world, Term::Iri("http://kb2.sofya.org/ontology/name"));
  ExpectSameAsParity(&world, Term::Iri("http://kb2.sofya.org/ontology/nope"));
}

TEST(SameAsSourceParityTest, MusicAllReferenceRelations) {
  auto world = std::move(GenerateWorld(MusicWorldSpec())).value();
  for (const std::string& iri : world.truth.RelationsOf("artkb")) {
    SCOPED_TRACE(iri);
    ExpectSameAsParity(&world, Term::Iri(iri));
  }
}

// ---------------------------------------------------------------------------
// Zero-links world: lexical + distribution + composite
// ---------------------------------------------------------------------------

class NoLinksFixture : public ::testing::Test {
 protected:
  NoLinksFixture()
      : world_(std::move(GenerateWorld(NoLinksWorldSpec())).value()),
        cand_(world_.kb1.get()),
        ref_(world_.kb2.get()),
        to_cand_(&world_.links, cand_.base_iri()) {}

  /// Gold kb1 equivalent of a kb2 relation, empty IRI when none.
  Term GoldEquivalent(const std::string& reference_iri) const {
    for (const std::string& c : world_.truth.RelationsOf("canon1")) {
      if (world_.truth.Classify(reference_iri, c) == AlignKind::kEquivalence) {
        return Term::Iri(c);
      }
    }
    return Term();
  }

  SynthWorld world_;
  LocalEndpoint cand_;
  LocalEndpoint ref_;
  CrossKbTranslator to_cand_;
};

TEST_F(NoLinksFixture, WorldHasNoLinksButSharedNames) {
  EXPECT_EQ(world_.links.num_links(), 0u);
  EXPECT_EQ(cand_.base_iri(), ref_.base_iri());
}

TEST_F(NoLinksFixture, LexicalRecallAtEightAboveBar) {
  CandidateFinderOptions options;
  options.source = CandidateSourceKind::kLexical;
  options.lexical_cache = std::make_shared<LexicalIndexCache>();
  CandidateFinder finder(&cand_, &ref_, &to_cand_, options);

  const std::vector<std::string> refs = world_.truth.RelationsOf("canon2");
  ASSERT_EQ(refs.size(), 20u);
  size_t hits = 0;
  for (const std::string& iri : refs) {
    const Term gold = GoldEquivalent(iri);
    ASSERT_FALSE(gold.lexical().empty()) << iri;
    auto candidates = finder.FindCandidates(Term::Iri(iri));
    ASSERT_TRUE(candidates.ok()) << candidates.status().ToString();
    EXPECT_LE(candidates->size(), options.max_candidates);
    for (const auto& c : *candidates) {
      EXPECT_GT(c.prior, 0.0);
      EXPECT_LE(c.prior, 1.0);
      if (c.relation == gold) {
        ++hits;
        break;
      }
    }
  }
  // 18/20 on this preset: only the deliberate semantic renames
  // (starring -> hasActor, written_by -> hasAuthor) escape the lexical net.
  EXPECT_GE(static_cast<double>(hits) / static_cast<double>(refs.size()), 0.8);
  // One inventory, one index: every relation after the first hits the memo.
  EXPECT_EQ(options.lexical_cache->builds(), 1u);
  EXPECT_EQ(options.lexical_cache->hits(), refs.size() - 1);
}

TEST_F(NoLinksFixture, LexicalIndexCacheInvalidatesOnDataEpoch) {
  CandidateFinderOptions options;
  options.source = CandidateSourceKind::kLexical;
  options.lexical_cache = std::make_shared<LexicalIndexCache>();
  CandidateFinder finder(&cand_, &ref_, &to_cand_, options);

  const Term r = Term::Iri("http://nolinks.sofya.org/ontology/birth_place");
  ASSERT_TRUE(finder.FindCandidates(r).ok());
  ASSERT_TRUE(finder.FindCandidates(r).ok());
  EXPECT_EQ(options.lexical_cache->builds(), 1u);
  EXPECT_EQ(options.lexical_cache->hits(), 1u);

  // A write bumps the candidate KB's data_epoch and grows the predicate
  // inventory: the cached index is stale and must be rebuilt.
  const uint64_t epoch_before = cand_.data_epoch();
  ASSERT_TRUE(world_.kb1->AddFact("entity/e0", "ontology/freshPredicate",
                                  "entity/e1"));
  EXPECT_GT(cand_.data_epoch(), epoch_before);
  ASSERT_TRUE(finder.FindCandidates(r).ok());
  EXPECT_EQ(options.lexical_cache->builds(), 2u);
}

TEST_F(NoLinksFixture, DistributionSourceSeparatesLiteralFromEntityRange) {
  DistributionSource::Profile literal_like;
  literal_like.valid = true;
  literal_like.functionality = 0.9;
  literal_like.inverse_functionality = 0.8;
  literal_like.literal_fraction = 1.0;
  literal_like.top_subject_share = 0.05;
  DistributionSource::Profile entity_like = literal_like;
  entity_like.literal_fraction = 0.0;

  EXPECT_DOUBLE_EQ(DistributionSource::Similarity(literal_like, literal_like),
                   1.0);
  EXPECT_DOUBLE_EQ(
      DistributionSource::Similarity(literal_like, entity_like), 0.0);
  EXPECT_DOUBLE_EQ(DistributionSource::Similarity({}, literal_like), 0.0);

  // End to end: profiling the candidate inventory against a literal-range
  // reference keeps literal-range relations and drops entity-range ones.
  CandidateFinderOptions options;
  options.source = CandidateSourceKind::kDistribution;
  CandidateFinder finder(&cand_, &ref_, &to_cand_, options);
  auto candidates = finder.FindCandidates(
      Term::Iri("http://nolinks.sofya.org/ontology/population_total"));
  ASSERT_TRUE(candidates.ok()) << candidates.status().ToString();
  ASSERT_FALSE(candidates->empty());
  std::vector<std::string> proposed;
  for (const auto& c : *candidates) proposed.push_back(c.relation.lexical());
  EXPECT_NE(std::find(proposed.begin(), proposed.end(),
                      "http://nolinks.sofya.org/ontology/hasPopulation"),
            proposed.end());
  EXPECT_EQ(std::find(proposed.begin(), proposed.end(),
                      "http://nolinks.sofya.org/ontology/hasBirthPlace"),
            proposed.end());
}

TEST_F(NoLinksFixture, CompositePriorRecoversLexicalMiss) {
  // written_by -> hasAuthor is a deliberate semantic rename: invisible to
  // the lexical source. The composite still proposes it (shared-identifier
  // sameAs overlap + distribution agreement) with a meaningful prior.
  CandidateFinderOptions options;
  options.source = CandidateSourceKind::kAuto;
  CandidateFinder finder(&cand_, &ref_, &to_cand_, options);
  auto candidates = finder.FindCandidates(
      Term::Iri("http://nolinks.sofya.org/ontology/written_by"));
  ASSERT_TRUE(candidates.ok()) << candidates.status().ToString();
  const Term gold = Term::Iri("http://nolinks.sofya.org/ontology/hasAuthor");
  const CandidateRelation* found = nullptr;
  for (const auto& c : *candidates) {
    EXPECT_GT(c.prior, 0.0);
    EXPECT_LE(c.prior, 1.0);
    if (c.relation == gold) found = &c;
  }
  ASSERT_NE(found, nullptr);
  EXPECT_GT(found->prior, 0.5);
}

// ---------------------------------------------------------------------------
// AlignMany determinism with the lexical source + verdict priors
// ---------------------------------------------------------------------------

/// Fingerprints every verdict and the per-relation query attribution.
std::string FingerprintAlignMany(const AlignManyResult& result) {
  std::ostringstream out;
  out.precision(10);
  for (const auto& r : result.results) {
    out << r.reference_relation.lexical() << '{' << r.candidate_queries << ','
        << r.reference_queries << ',' << r.rows_shipped << '}';
    for (const auto& v : r.verdicts) {
      out << v.relation.lexical() << '|' << v.prior << '|'
          << v.rule.pca_conf << '|' << v.rule.support << '|' << v.accepted
          << '|' << v.equivalence << ';';
    }
    out << '\n';
  }
  return out.str();
}

TEST_F(NoLinksFixture, LexicalAlignManyBitIdenticalAcrossThreadsAndSchedules) {
  AlignerOptions options;
  options.finder.source = CandidateSourceKind::kLexical;
  RelationAligner aligner(&cand_, &ref_, &world_.links, options);

  std::vector<Term> refs;
  for (const std::string& iri : world_.truth.RelationsOf("canon2")) {
    refs.push_back(Term::Iri(iri));
  }

  AlignManyOptions base;
  base.num_threads = 1;
  base.schedule = AlignSchedule::kPhase;
  auto baseline = aligner.AlignMany(refs, base);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const std::string expected = FingerprintAlignMany(*baseline);

  // The zero-links world aligns end to end without a single sameAs link.
  size_t accepted = 0;
  for (const auto& r : baseline->results) {
    for (const auto& v : r.verdicts) {
      if (v.accepted) ++accepted;
      EXPECT_GE(v.prior, 0.0);
      EXPECT_LE(v.prior, 1.0);
    }
  }
  EXPECT_GE(accepted, 15u);

  for (const AlignSchedule schedule :
       {AlignSchedule::kPhase, AlignSchedule::kRelation}) {
    for (const size_t threads : {size_t{2}, size_t{8}}) {
      AlignManyOptions many;
      many.num_threads = threads;
      many.schedule = schedule;
      auto run = aligner.AlignMany(refs, many);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_EQ(FingerprintAlignMany(*run), expected)
          << "threads=" << threads
          << " schedule=" << (schedule == AlignSchedule::kPhase ? "phase"
                                                                : "relation");
    }
  }
}

TEST(CandidateSourceKindTest, ParseAndNameRoundTrip) {
  for (const auto kind :
       {CandidateSourceKind::kSameAs, CandidateSourceKind::kLexical,
        CandidateSourceKind::kDistribution, CandidateSourceKind::kAuto}) {
    auto parsed = ParseCandidateSourceKind(CandidateSourceKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_TRUE(ParseCandidateSourceKind("embedding").status().IsInvalidArgument());
}

TEST(ApplyRunSeedTest, DerivesComponentSeedsFromMasterSeed) {
  AlignerOptions defaults;
  AlignerOptions seeded = defaults;
  ApplyRunSeed(&seeded, 0);  // The unset sentinel changes nothing.
  EXPECT_EQ(seeded.finder.seed, defaults.finder.seed);
  EXPECT_EQ(seeded.sampler.seed, defaults.sampler.seed);

  ApplyRunSeed(&seeded, 42);
  EXPECT_NE(seeded.finder.seed, defaults.finder.seed);
  EXPECT_NE(seeded.sampler.seed, defaults.sampler.seed);
  EXPECT_NE(seeded.finder.seed, seeded.sampler.seed);

  AlignerOptions again = defaults;
  ApplyRunSeed(&again, 42);  // Same master seed -> same derivation.
  EXPECT_EQ(again.finder.seed, seeded.finder.seed);
  EXPECT_EQ(again.sampler.seed, seeded.sampler.seed);

  AlignerOptions other = defaults;
  ApplyRunSeed(&other, 43);
  EXPECT_NE(other.finder.seed, seeded.finder.seed);
}

}  // namespace
}  // namespace sofya
