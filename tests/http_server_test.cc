// HttpServer over real sockets: round trips through the production
// SocketTransport + HttpClient stack (both ends of the wire are our own
// serialize/parse pair), keep-alive reuse, concurrent clients, framing
// rejections, and overload/shutdown behavior.

#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/http.h"
#include "net/http_client.h"
#include "net/socket_transport.h"

namespace sofya {
namespace {

/// Handler echoing the request line + body (proves the handler saw the
/// parsed request, not raw bytes).
HttpResponse EchoHandler(const HttpRequest& request,
                         const HttpServerClient& client) {
  HttpResponse response;
  response.headers = {{"Content-Type", "text/plain"},
                      {"X-Client", client.address}};
  response.body = request.method + " " + request.target + "\n" + request.body;
  return response;
}

/// Writes raw bytes to the server and reads until the peer closes — the
/// shape of every framing-rejection exchange (the server answers and
/// closes). Returns the raw response bytes.
std::string RawExchange(uint16_t port, const std::string& wire_bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, wire_bytes.data(), wire_bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire_bytes.size()));
  std::string received;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    received.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return received;
}

/// A started echo server on an ephemeral port + a pooled client bound to it.
class HttpServerTest : public ::testing::Test {
 protected:
  void StartServer(HttpServerOptions options = {}) {
    server_ = std::make_unique<HttpServer>(EchoHandler, options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  std::unique_ptr<HttpClient> MakeClient(size_t max_connections = 2) {
    HttpClientOptions options;
    options.max_connections = max_connections;
    auto url = ParseUrl("http://127.0.0.1:" +
                        std::to_string(server_->port()) + "/echo");
    return std::make_unique<HttpClient>(&transport_, std::move(*url),
                                        options);
  }

  SocketTransport transport_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpServerTest, RoundTripOverRealSocket) {
  StartServer();
  auto client = MakeClient();
  HttpRequest request;
  request.method = "POST";
  request.body = "hello server";
  auto response = client->RoundTrip(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  EXPECT_EQ(response->body, "POST /echo\nhello server");
  // The handler saw a real peer address.
  const std::string* peer = FindHeader(response->headers, "X-Client");
  ASSERT_NE(peer, nullptr);
  EXPECT_EQ(peer->rfind("127.0.0.1:", 0), 0u) << *peer;
  EXPECT_EQ(server_->requests_served(), 1u);
}

TEST_F(HttpServerTest, KeepAliveReusesOneConnection) {
  StartServer();
  auto client = MakeClient();
  for (int i = 0; i < 5; ++i) {
    HttpRequest request;
    request.body = "req " + std::to_string(i);
    auto response = client->RoundTrip(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->body, "POST /echo\nreq " + std::to_string(i));
  }
  EXPECT_EQ(server_->requests_served(), 5u);
  EXPECT_EQ(server_->connections_accepted(), 1u);  // Keep-alive held.
}

TEST_F(HttpServerTest, ConnectionCloseIsHonored) {
  StartServer();
  const std::string raw =
      "GET /bye HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  const std::string response = RawExchange(server_->port(), raw);
  // A full response arrived AND the server closed (RawExchange read EOF).
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
  EXPECT_NE(response.find("GET /bye"), std::string::npos);
}

TEST_F(HttpServerTest, ConcurrentClientsAllComplete) {
  StartServer();
  constexpr int kThreads = 8;
  constexpr int kRequestsEach = 20;
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &completed] {
      auto client = MakeClient(/*max_connections=*/1);
      for (int i = 0; i < kRequestsEach; ++i) {
        HttpRequest request;
        request.body = std::to_string(t) + ":" + std::to_string(i);
        auto response = client->RoundTrip(request);
        if (response.ok() &&
            response->body == "POST /echo\n" + request.body) {
          completed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(completed.load(), kThreads * kRequestsEach);
  EXPECT_EQ(server_->requests_served(),
            static_cast<uint64_t>(kThreads * kRequestsEach));
}

TEST_F(HttpServerTest, TransferEncodingRequestGets501) {
  StartServer();
  const std::string response = RawExchange(
      server_->port(),
      "POST /echo HTTP/1.1\r\nHost: t\r\n"
      "Transfer-Encoding: chunked\r\n\r\n0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 501"), std::string::npos) << response;
}

TEST_F(HttpServerTest, SmugglingShapedRequestsGet400) {
  StartServer();
  const std::string te_cl = RawExchange(
      server_->port(),
      "POST /echo HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n"
      "Content-Length: 4\r\n\r\nbody");
  EXPECT_NE(te_cl.find("HTTP/1.1 400"), std::string::npos) << te_cl;

  const std::string dup_cl = RawExchange(
      server_->port(),
      "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 4\r\n"
      "Content-Length: 11\r\n\r\nbody");
  EXPECT_NE(dup_cl.find("HTTP/1.1 400"), std::string::npos) << dup_cl;
}

TEST_F(HttpServerTest, OversizedRequestGets413) {
  HttpServerOptions options;
  options.max_request_bytes = 512;
  StartServer(options);
  HttpRequest request;
  request.body.assign(4096, 'x');
  request.headers.push_back({"Host", "t"});
  const std::string response =
      RawExchange(server_->port(), SerializeHttpRequest(request));
  EXPECT_NE(response.find("HTTP/1.1 413"), std::string::npos) << response;
}

TEST_F(HttpServerTest, PipelinedRequestsAnswerInOrder) {
  StartServer();
  // Two requests in one write; responses must come back in order on the
  // same connection (strict one-at-a-time per connection).
  HttpRequest first, second;
  first.headers.push_back({"Host", "t"});
  first.body = "one";
  second.headers.push_back({"Host", "t"});
  second.body = "two";
  second.headers.push_back({"Connection", "close"});
  const std::string wire =
      SerializeHttpRequest(first) + SerializeHttpRequest(second);
  const std::string response = RawExchange(server_->port(), wire);
  const size_t pos_one = response.find("POST /\none");
  const size_t pos_two = response.find("POST /\ntwo");
  EXPECT_NE(pos_one, std::string::npos) << response;
  EXPECT_NE(pos_two, std::string::npos) << response;
  EXPECT_LT(pos_one, pos_two);
  EXPECT_EQ(server_->requests_served(), 2u);
}

TEST_F(HttpServerTest, StopIsIdempotentAndRestartable) {
  StartServer();
  const uint16_t old_port = server_->port();
  EXPECT_TRUE(server_->running());
  server_->Stop();
  EXPECT_FALSE(server_->running());
  server_->Stop();  // Idempotent.

  // A fresh Start() binds again (ephemeral port may differ).
  ASSERT_TRUE(server_->Start().ok());
  EXPECT_TRUE(server_->running());
  auto client = MakeClient();
  HttpRequest request;
  request.body = "after restart";
  auto response = client->RoundTrip(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->body, "POST /echo\nafter restart");
  (void)old_port;
}

}  // namespace
}  // namespace sofya
