#include "core/run_manifest.h"

#include <gtest/gtest.h>

#include <string>

#include "align/relation_aligner.h"
#include "util/status.h"

namespace sofya {
namespace {

RunManifest SampleManifest() {
  RunManifest manifest;
  manifest.Append("config", "aligner", std::string(16, 'a'));
  manifest.Append("verdict", "http://kb2.test/actedIn", std::string(16, 'b'));
  manifest.Append("verdict", "http://kb2.test/directed", std::string(16, 'c'));
  manifest.Append("queries", "candidate", std::string(16, 'd'));
  manifest.Append("queries", "reference", std::string(16, 'e'));
  return manifest;
}

TEST(RunManifestTest, SerializeParseRoundTripVerifies) {
  const RunManifest manifest = SampleManifest();
  EXPECT_EQ(manifest.entries().size(), 5u);
  EXPECT_EQ(manifest.root().size(), 16u);

  auto parsed = RunManifest::Parse(manifest.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->root(), manifest.root());
  ASSERT_EQ(parsed->entries().size(), manifest.entries().size());
  for (size_t i = 0; i < manifest.entries().size(); ++i) {
    EXPECT_EQ(parsed->entries()[i].kind, manifest.entries()[i].kind);
    EXPECT_EQ(parsed->entries()[i].label, manifest.entries()[i].label);
    EXPECT_EQ(parsed->entries()[i].digest, manifest.entries()[i].digest);
    EXPECT_EQ(parsed->entries()[i].chain, manifest.entries()[i].chain);
  }
  EXPECT_EQ(parsed->Serialize(), manifest.Serialize());
}

TEST(RunManifestTest, ChainCommitsToOrderAndContent) {
  RunManifest a;
  a.Append("verdict", "r1", std::string(16, '1'));
  a.Append("verdict", "r2", std::string(16, '2'));
  RunManifest b;
  b.Append("verdict", "r2", std::string(16, '2'));
  b.Append("verdict", "r1", std::string(16, '1'));
  // Same entries, different order: different run identity.
  EXPECT_NE(a.root(), b.root());

  RunManifest c;
  c.Append("verdict", "r1", std::string(16, '1'));
  c.Append("verdict", "r2", std::string(16, '3'));
  EXPECT_NE(a.root(), c.root());
}

TEST(RunManifestTest, TamperedDigestIsRejectedAtParse) {
  const RunManifest manifest = SampleManifest();
  std::string text = manifest.Serialize();
  // Flip one digest character on the first verdict line: the chain value on
  // that line no longer verifies.
  const size_t pos = text.find(std::string(16, 'b'));
  ASSERT_NE(pos, std::string::npos);
  text[pos] = 'f';
  auto parsed = RunManifest::Parse(text);
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  EXPECT_NE(parsed.status().message().find("chain breaks"),
            std::string::npos)
      << parsed.status();
}

TEST(RunManifestTest, TamperedRootIsRejectedAtParse) {
  const RunManifest manifest = SampleManifest();
  std::string text = manifest.Serialize();
  const size_t pos = text.rfind(manifest.root());
  ASSERT_NE(pos, std::string::npos);
  text[pos] = manifest.root()[0] == '0' ? '1' : '0';
  EXPECT_EQ(RunManifest::Parse(text).status().code(),
            StatusCode::kParseError);
}

TEST(RunManifestTest, StructurallyMalformedInputsAreRejected) {
  EXPECT_FALSE(RunManifest::Parse("").ok());
  EXPECT_FALSE(RunManifest::Parse("not-a-manifest\n").ok());
  // Missing root line.
  EXPECT_FALSE(RunManifest::Parse("sofya-run-manifest v1\n").ok());
  // Non-hex digest field.
  EXPECT_FALSE(RunManifest::Parse("sofya-run-manifest v1\n"
                                  "config aligner nothexnothexnothe xyz\n")
                   .ok());
  // Content after the root line.
  const RunManifest manifest = SampleManifest();
  EXPECT_FALSE(
      RunManifest::Parse(manifest.Serialize() + "config aligner x y\n").ok());
  // An empty manifest (header + verified empty root) is valid.
  RunManifest empty;
  auto parsed = RunManifest::Parse(empty.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->entries().size(), 0u);
}

TEST(RunManifestTest, FirstDivergencePinpointsTheBrokenEntry) {
  const RunManifest a = SampleManifest();
  EXPECT_FALSE(FirstDivergence(a, SampleManifest()).has_value());

  // Digest change on entry 2.
  RunManifest digest_differs;
  digest_differs.Append("config", "aligner", std::string(16, 'a'));
  digest_differs.Append("verdict", "http://kb2.test/actedIn",
                        std::string(16, 'b'));
  digest_differs.Append("verdict", "http://kb2.test/directed",
                        std::string(16, 'f'));
  digest_differs.Append("queries", "candidate", std::string(16, 'd'));
  digest_differs.Append("queries", "reference", std::string(16, 'e'));
  auto div = FirstDivergence(a, digest_differs);
  ASSERT_TRUE(div.has_value());
  EXPECT_EQ(div->index, 2u);
  EXPECT_NE(div->what.find("http://kb2.test/directed"), std::string::npos);

  // Different relation set: identity differs at the first unequal entry.
  RunManifest identity_differs;
  identity_differs.Append("config", "aligner", std::string(16, 'a'));
  identity_differs.Append("verdict", "http://kb2.test/marriedTo",
                          std::string(16, 'b'));
  div = FirstDivergence(a, identity_differs);
  ASSERT_TRUE(div.has_value());
  EXPECT_EQ(div->index, 1u);
  EXPECT_NE(div->what.find("identity differs"), std::string::npos);

  // One run a strict prefix of the other: the extra entries are named.
  RunManifest prefix;
  prefix.Append("config", "aligner", std::string(16, 'a'));
  prefix.Append("verdict", "http://kb2.test/actedIn", std::string(16, 'b'));
  div = FirstDivergence(a, prefix);
  ASSERT_TRUE(div.has_value());
  EXPECT_EQ(div->index, 2u);
  EXPECT_NE(div->what.find("extra entries"), std::string::npos);
}

TEST(RunManifestTest, ConfigDigestSeesVerdictRelevantKnobsOnly) {
  AlignerOptions base;
  const std::string baseline = DigestAlignerConfig(base);
  EXPECT_EQ(baseline, DigestAlignerConfig(base));

  AlignerOptions threshold = base;
  threshold.threshold += 0.01;
  EXPECT_NE(DigestAlignerConfig(threshold), baseline);

  AlignerOptions seed = base;
  seed.sampler.seed += 1;
  EXPECT_NE(DigestAlignerConfig(seed), baseline);

  AlignerOptions ubs = base;
  ubs.use_ubs = !ubs.use_ubs;
  EXPECT_NE(DigestAlignerConfig(ubs), baseline);
}

TEST(RunManifestTest, BuildRunManifestShapesEntriesInInputOrder) {
  AlignerOptions options;
  AlignmentResult r1;
  r1.reference_relation = Term::Iri("http://kb2.test/actedIn");
  AlignmentResult r2;
  r2.reference_relation = Term::Iri("http://kb2.test/directed");
  const std::vector<const AlignmentResult*> results = {&r1, &r2};

  const RunManifest manifest =
      BuildRunManifest(options, results, nullptr, nullptr);
  ASSERT_EQ(manifest.entries().size(), 5u);
  EXPECT_EQ(manifest.entries()[0].kind, "config");
  EXPECT_EQ(manifest.entries()[1].label, "http://kb2.test/actedIn");
  EXPECT_EQ(manifest.entries()[2].label, "http://kb2.test/directed");
  EXPECT_EQ(manifest.entries()[3].label, "candidate");
  EXPECT_EQ(manifest.entries()[4].label, "reference");
  // No journals: both query-stream digests are the empty digest.
  EXPECT_EQ(manifest.entries()[3].digest, CassetteDigest().ToHex());

  // Swapping result order changes the root (the manifest commits to input
  // order, which AlignAll fixes to the caller's relation list).
  const std::vector<const AlignmentResult*> swapped = {&r2, &r1};
  EXPECT_NE(BuildRunManifest(options, swapped, nullptr, nullptr).root(),
            manifest.root());
}

}  // namespace
}  // namespace sofya
