// Fuzz/property harness for the two wire formats the HTTP client trusts
// least: application/sparql-results+json documents and HTTP/1.1 framing
// (Content-Length and chunked). Three layers:
//
//   * round-trip properties over generated ResultSets (writer -> reader ->
//     writer is a fixed point; parsed rows decode to the same terms);
//   * deterministic mutation fuzzing of valid documents/messages — every
//     mutant must produce a clean Status, never a crash, hang, or huge
//     allocation (the ASan/UBSan CI job runs this binary too);
//   * a checked-in corpus of regression inputs under tests/data/fuzz/,
//     replayed byte-for-byte on every run.
//
// All randomness comes from the repo's seeded Rng: a failure reproduces by
// seed, never by luck.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "net/http.h"
#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "sparql/query.h"
#include "sparql/results_json.h"
#include "util/random.h"
#include "util/status.h"

namespace sofya {
namespace {

// ---------------------------------------------------------------- corpus

std::string CorpusDir() {
#ifdef SOFYA_SOURCE_DIR
  return std::string(SOFYA_SOURCE_DIR) + "/tests/data/fuzz";
#else
  return "tests/data/fuzz";
#endif
}

std::vector<std::string> LoadCorpus() {
  std::vector<std::string> inputs;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(CorpusDir(), ec)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    inputs.emplace_back(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
  }
  return inputs;
}

// ----------------------------------------------------- generated inputs

Term RandomTerm(Rng& rng) {
  const std::string tail = std::to_string(rng.Below(50));
  switch (rng.Below(5)) {
    case 0:
      return Term::Iri("http://fuzz.test/e" + tail);
    case 1:
      return Term::Literal("plain \"quoted\" \\ value " + tail);
    case 2:
      return Term::TypedLiteral(
          tail, "http://www.w3.org/2001/XMLSchema#integer");
    case 3:
      return Term::LangLiteral("wert " + tail, "de");
    default:
      // Control characters and non-ASCII bytes must survive JSON escaping.
      return Term::Literal("ctl\t\n\x01 " + tail + "\xc3\xa9");
  }
}

std::string RandomResultsDocument(Rng& rng) {
  ResultSet result;
  const size_t num_vars = 1 + rng.Below(4);
  for (size_t v = 0; v < num_vars; ++v) {
    result.var_names.push_back("v" + std::to_string(v));
  }
  Dictionary scratch;
  const size_t num_rows = rng.Below(8);
  for (size_t r = 0; r < num_rows; ++r) {
    std::vector<TermId> row;
    for (size_t v = 0; v < num_vars; ++v) {
      row.push_back(rng.Bernoulli(0.2) ? kNullTermId
                                       : scratch.Intern(RandomTerm(rng)));
    }
    result.rows.push_back(std::move(row));
  }
  auto doc = WriteSparqlResultsJson(
      result, [&scratch](TermId id) { return scratch.TryDecode(id); });
  EXPECT_TRUE(doc.ok()) << doc.status();
  return doc.ok() ? *doc : "{}";
}

std::string Mutate(const std::string& input, Rng& rng) {
  std::string out = input;
  switch (rng.Below(5)) {
    case 0:  // Truncate.
      out.resize(rng.Below(out.size() + 1));
      break;
    case 1: {  // Flip a byte.
      if (!out.empty()) {
        out[rng.Below(out.size())] ^= static_cast<char>(1 + rng.Below(255));
      }
      break;
    }
    case 2: {  // Insert junk.
      const char junk[] = "{}[]\",:\\\x00\xff\r\n";
      out.insert(rng.Below(out.size() + 1), 1,
                 junk[rng.Below(sizeof(junk) - 1)]);
      break;
    }
    case 3: {  // Delete a span.
      if (!out.empty()) {
        const size_t at = rng.Below(out.size());
        out.erase(at, 1 + rng.Below(8));
      }
      break;
    }
    default: {  // Duplicate a span (unbalances nesting).
      if (!out.empty()) {
        const size_t at = rng.Below(out.size());
        const size_t len = std::min<size_t>(1 + rng.Below(16),
                                            out.size() - at);
        out.insert(at, out.substr(at, len));
      }
      break;
    }
  }
  return out;
}

/// Feeds any byte blob to every parser under test; the only contract is
/// "return a Status, don't die".
void ExerciseParsers(const std::string& input) {
  Dictionary dict;
  (void)ParseSparqlResultsJson(
      input, [&dict](const Term& term) { return dict.Intern(term); });
  (void)ParseSparqlAskJson(input);

  HttpRequest request;
  (void)TryParseHttpRequest(input, &request);
  HttpResponse response;
  (void)TryParseHttpResponse(input, /*eof=*/false, &response);
  (void)TryParseHttpResponse(input, /*eof=*/true, &response);

  HttpResponseReader reader;
  Status fed = reader.Feed(input);
  if (fed.ok() && !reader.done()) (void)reader.FinishEof();
}

// ------------------------------------------------------------ properties

TEST(ResultsJsonPropertyTest, WriterReaderWriterIsAFixedPoint) {
  Rng rng(20260808);
  for (int iter = 0; iter < 200; ++iter) {
    const std::string doc = RandomResultsDocument(rng);

    Dictionary dict;
    auto parsed = ParseSparqlResultsJson(
        doc, [&dict](const Term& term) { return dict.Intern(term); });
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << doc;

    auto rewritten = WriteSparqlResultsJson(
        *parsed, [&dict](TermId id) { return dict.TryDecode(id); });
    ASSERT_TRUE(rewritten.ok()) << rewritten.status();
    // One parse/serialize cycle is the identity on the wire bytes: reader
    // and writer agree on escaping, column order, and unbound cells.
    EXPECT_EQ(*rewritten, doc) << "iter " << iter;
  }
}

TEST(ResultsJsonPropertyTest, AskDocumentsRoundTrip) {
  for (bool value : {false, true}) {
    auto parsed = ParseSparqlAskJson(WriteSparqlAskJson(value));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(*parsed, value);
  }
}

TEST(ResultsJsonFuzzTest, MutatedDocumentsNeverCrashTheReader) {
  Rng rng(97);
  int parse_errors = 0;
  for (int iter = 0; iter < 600; ++iter) {
    std::string doc = RandomResultsDocument(rng);
    const int rounds = 1 + static_cast<int>(rng.Below(4));
    for (int m = 0; m < rounds; ++m) doc = Mutate(doc, rng);

    Dictionary dict;
    auto parsed = ParseSparqlResultsJson(
        doc, [&dict](const Term& term) { return dict.Intern(term); });
    if (!parsed.ok()) ++parse_errors;
  }
  // The mutator really produces malformed documents (not a no-op harness).
  EXPECT_GT(parse_errors, 100);
}

TEST(HttpFramingPropertyTest, EverySplitOfAValidResponseParsesTheSame) {
  HttpResponse response;
  response.headers.push_back({"Content-Type", "application/json"});
  response.body = "{\"head\":{\"vars\":[]},\"results\":{\"bindings\":[]}}";
  const std::string wire = SerializeHttpResponse(response);

  HttpResponse whole;
  auto consumed = TryParseHttpResponse(wire, /*eof=*/false, &whole);
  ASSERT_TRUE(consumed.ok()) << consumed.status();
  ASSERT_EQ(*consumed, wire.size());

  for (size_t split = 0; split <= wire.size(); ++split) {
    HttpResponseReader reader;
    ASSERT_TRUE(reader.Feed(wire.substr(0, split)).ok()) << split;
    if (split < wire.size()) {
      ASSERT_FALSE(reader.done()) << split;
      ASSERT_TRUE(reader.Feed(wire.substr(split)).ok()) << split;
    }
    ASSERT_TRUE(reader.done()) << split;
    EXPECT_EQ(reader.leftover(), 0u) << split;
    EXPECT_EQ(reader.response().body, whole.body) << split;
    EXPECT_EQ(reader.response().status_code, whole.status_code) << split;
  }
}

TEST(HttpFramingPropertyTest, ChunkedBodySurvivesArbitrarySplits) {
  const std::string wire =
      "HTTP/1.1 200 OK\r\n"
      "Transfer-Encoding: chunked\r\n"
      "\r\n"
      "4\r\nWiki\r\n"
      "6\r\npedia \r\n"
      "b\r\nin chunks.\n\r\n"
      "0\r\n\r\n";
  HttpResponse whole;
  auto consumed = TryParseHttpResponse(wire, /*eof=*/false, &whole);
  ASSERT_TRUE(consumed.ok()) << consumed.status();
  ASSERT_EQ(*consumed, wire.size());
  EXPECT_EQ(whole.body, "Wikipedia in chunks.\n");

  Rng rng(5);
  for (int iter = 0; iter < 100; ++iter) {
    HttpResponseReader reader;
    size_t at = 0;
    while (at < wire.size()) {
      const size_t step = 1 + rng.Below(7);
      const size_t end = std::min(wire.size(), at + step);
      ASSERT_TRUE(reader.Feed(wire.substr(at, end - at)).ok());
      at = end;
    }
    ASSERT_TRUE(reader.done());
    EXPECT_EQ(reader.response().body, whole.body);
  }
}

TEST(HttpFramingFuzzTest, HostileFramingIsARejectionNotACrash) {
  // Hand-picked nasties: overflowing Content-Length, hex-overflow and
  // garbage chunk sizes, conflicting framing headers, negative lengths.
  const std::string cases[] = {
      "HTTP/1.1 200 OK\r\nContent-Length: 99999999999999999999\r\n\r\nx",
      "HTTP/1.1 200 OK\r\nContent-Length: -5\r\n\r\nhello",
      "HTTP/1.1 200 OK\r\nContent-Length: 4\r\nContent-Length: 7\r\n\r\nhunh",
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "FFFFFFFFFFFFFFFFFF\r\nbody\r\n0\r\n\r\n",
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "zz\r\nbody\r\n0\r\n\r\n",
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n"
      "Content-Length: 4\r\n\r\n4\r\nWiki\r\n0\r\n\r\n",
      "POST / HTTP/1.1\r\nContent-Length: 18446744073709551617\r\n\r\n",
      "GET\r\n\r\n",
      "HTTP/9.9 12a OK\r\n\r\n",
      std::string("HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\n\0\0\0", 42),
  };
  for (const std::string& wire : cases) {
    ExerciseParsers(wire);  // Must not crash; statuses are free to vary.

    // Whatever the outcome, an accepted parse must not have conjured a
    // body longer than the input (no allocation amplification).
    HttpResponse response;
    auto consumed = TryParseHttpResponse(wire, /*eof=*/true, &response);
    if (consumed.ok() && *consumed > 0) {
      EXPECT_LE(response.body.size(), wire.size());
    }
  }
}

TEST(HttpFramingFuzzTest, MutatedWireMessagesNeverCrashTheParsers) {
  Rng rng(4242);
  for (int iter = 0; iter < 600; ++iter) {
    std::string wire;
    if (rng.Bernoulli(0.5)) {
      HttpResponse response;
      if (rng.Bernoulli(0.3)) {
        response.headers.push_back({"Transfer-Encoding", "chunked"});
        wire = "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
               "5\r\nhello\r\n0\r\n\r\n";
      } else {
        response.body = RandomResultsDocument(rng);
        wire = SerializeHttpResponse(response);
      }
    } else {
      HttpRequest request;
      request.headers.push_back({"Host", "kb1.test"});
      request.body = "query=" + std::to_string(rng.Next());
      wire = SerializeHttpRequest(request);
    }
    const int rounds = 1 + static_cast<int>(rng.Below(4));
    for (int m = 0; m < rounds; ++m) wire = Mutate(wire, rng);
    ExerciseParsers(wire);
  }
}

TEST(FuzzCorpusTest, CheckedInCorpusReplaysClean) {
  const std::vector<std::string> corpus = LoadCorpus();
  // The corpus ships with the repo; an empty load means the path wiring
  // broke, not that there is nothing to test.
  ASSERT_FALSE(corpus.empty()) << "no corpus files under " << CorpusDir();
  for (const std::string& input : corpus) {
    ExerciseParsers(input);
  }
  SUCCEED() << corpus.size() << " corpus inputs replayed";
}

}  // namespace
}  // namespace sofya
