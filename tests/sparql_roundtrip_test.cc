// ToSparql round-trip: serialize -> ParseSelectQuery -> equal Fingerprint.
// The HTTP wire path depends on this being lossless: HttpSparqlEndpoint
// ships exactly ToSparql(dict), and whatever a conforming server parses
// must be the query the client meant.

#include <gtest/gtest.h>

#include <string>

#include "rdf/dictionary.h"
#include "sparql/parser.h"
#include "sparql/query.h"

namespace sofya {
namespace {

class SparqlRoundTripTest : public ::testing::Test {
 protected:
  SparqlRoundTripTest() {
    p_ = dict_.InternIri("http://example.org/p");
    q_ = dict_.InternIri("http://example.org/q");
    c_ = dict_.InternIri("http://example.org/c");
    lit_ = dict_.Intern(Term::Literal("plain"));
    typed_ = dict_.Intern(
        Term::TypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer"));
    lang_ = dict_.Intern(Term::LangLiteral("Wien", "de"));
  }

  /// Serializes, re-parses against the same dictionary, and asserts the
  /// fingerprints collide (same normalized query => same cached result).
  void ExpectRoundTrip(const SelectQuery& query) {
    const std::string text = query.ToSparql(dict_);
    auto reparsed = ParseSelectQuery(text, &dict_);
    ASSERT_TRUE(reparsed.ok())
        << reparsed.status().ToString() << "\nserialized:\n" << text;
    EXPECT_EQ(query.Fingerprint(), reparsed->Fingerprint())
        << "serialized:\n" << text;
  }

  Dictionary dict_;
  TermId p_ = kNullTermId;
  TermId q_ = kNullTermId;
  TermId c_ = kNullTermId;
  TermId lit_ = kNullTermId;
  TermId typed_ = kNullTermId;
  TermId lang_ = kNullTermId;
};

TEST_F(SparqlRoundTripTest, BareSelectStar) {
  SelectQuery query;
  const VarId s = query.NewVar("s");
  const VarId o = query.NewVar("o");
  query.Where(NodeRef::Variable(s), NodeRef::Constant(p_),
              NodeRef::Variable(o));
  ExpectRoundTrip(query);
}

TEST_F(SparqlRoundTripTest, ExplicitProjection) {
  SelectQuery query;
  const VarId s = query.NewVar("s");
  const VarId o = query.NewVar("o");
  query.Where(NodeRef::Variable(s), NodeRef::Constant(p_),
              NodeRef::Variable(o));
  query.Select({s});
  ExpectRoundTrip(query);
}

TEST_F(SparqlRoundTripTest, DistinctLimitOffset) {
  SelectQuery query;
  const VarId s = query.NewVar("s");
  const VarId o = query.NewVar("o");
  query.Where(NodeRef::Variable(s), NodeRef::Constant(p_),
              NodeRef::Variable(o));
  query.Select({o}).Distinct().Limit(25).Offset(100);
  ExpectRoundTrip(query);
}

TEST_F(SparqlRoundTripTest, MultiClauseJoin) {
  SelectQuery query;
  const VarId x = query.NewVar("x");
  const VarId y = query.NewVar("y");
  const VarId z = query.NewVar("z");
  query.Where(NodeRef::Variable(x), NodeRef::Constant(p_),
              NodeRef::Variable(y));
  query.Where(NodeRef::Variable(y), NodeRef::Constant(q_),
              NodeRef::Variable(z));
  query.Where(NodeRef::Constant(c_), NodeRef::Constant(q_),
              NodeRef::Variable(z));
  query.Select({x, z});
  ExpectRoundTrip(query);
}

TEST_F(SparqlRoundTripTest, AllFilterKinds) {
  SelectQuery query;
  const VarId a = query.NewVar("a");
  const VarId b = query.NewVar("b");
  query.Where(NodeRef::Variable(a), NodeRef::Constant(p_),
              NodeRef::Variable(b));
  query.Filter(FilterExpr::VarEqVar(a, b));
  query.Filter(FilterExpr::VarNeqVar(a, b));
  query.Filter(FilterExpr::VarEqTerm(b, c_));
  query.Filter(FilterExpr::VarNeqTerm(b, c_));
  query.Filter(FilterExpr::IsIri(a));
  query.Filter(FilterExpr::IsLiteral(b));
  ExpectRoundTrip(query);
}

TEST_F(SparqlRoundTripTest, LiteralConstants) {
  SelectQuery query;
  const VarId s = query.NewVar("s");
  query.Where(NodeRef::Variable(s), NodeRef::Constant(p_),
              NodeRef::Constant(lit_));
  query.Where(NodeRef::Variable(s), NodeRef::Constant(q_),
              NodeRef::Constant(typed_));
  ExpectRoundTrip(query);
}

TEST_F(SparqlRoundTripTest, LangLiteralAndFilterTerm) {
  SelectQuery query;
  const VarId s = query.NewVar("s");
  const VarId o = query.NewVar("o");
  query.Where(NodeRef::Variable(s), NodeRef::Constant(p_),
              NodeRef::Variable(o));
  query.Filter(FilterExpr::VarEqTerm(o, lang_));
  query.Distinct().Limit(3);
  ExpectRoundTrip(query);
}

TEST_F(SparqlRoundTripTest, PagedFormsRoundTrip) {
  // The exact shapes PagedSelect puts on the wire: OFFSET+LIMIT together.
  SelectQuery query;
  const VarId s = query.NewVar("s");
  const VarId o = query.NewVar("o");
  query.Where(NodeRef::Variable(s), NodeRef::Constant(p_),
              NodeRef::Variable(o));
  for (uint64_t offset : {uint64_t{0}, uint64_t{3}, uint64_t{999}}) {
    SelectQuery page = query;
    page.Offset(offset).Limit(250);
    ExpectRoundTrip(page);
  }
}

TEST_F(SparqlRoundTripTest, ParseRendersBackEquivalently) {
  // Text -> query -> text -> query: fixpoint after one round.
  const std::string text =
      "SELECT DISTINCT ?s WHERE { ?s <http://example.org/p> ?o . "
      "FILTER(isIRI(?o)) } OFFSET 5 LIMIT 10";
  auto first = ParseSelectQuery(text, &dict_);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = ParseSelectQuery(first->ToSparql(dict_), &dict_);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first->Fingerprint(), second->Fingerprint());
}

TEST_F(SparqlRoundTripTest, AskFormSharesTheBody) {
  SelectQuery query;
  const VarId s = query.NewVar("s");
  const VarId o = query.NewVar("o");
  query.Where(NodeRef::Variable(s), NodeRef::Constant(p_),
              NodeRef::Variable(o));
  query.Filter(FilterExpr::IsIri(o));
  query.Distinct().Limit(7).Offset(2);
  const std::string ask = query.ToSparqlAsk(dict_);
  EXPECT_EQ(ask.rfind("ASK", 0), 0u) << ask;
  // Modifiers are normalized away (existence ignores them)...
  EXPECT_EQ(ask.find("LIMIT"), std::string::npos);
  EXPECT_EQ(ask.find("OFFSET"), std::string::npos);
  EXPECT_EQ(ask.find("DISTINCT"), std::string::npos);
  // ...but the graph pattern survives verbatim: the SELECT form of the
  // same body parses back to the same clauses/filters.
  auto reparsed =
      ParseSelectQuery("SELECT *" + ask.substr(3), &dict_);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  SelectQuery normalized = query;
  normalized.Distinct(false).Limit(kNoLimit).Offset(0);
  EXPECT_EQ(reparsed->Fingerprint(), normalized.Fingerprint());
}

}  // namespace
}  // namespace sofya
