// Parity and pushdown tests for the streaming engine: the pipeline must
// match the old materialize-everything semantics exactly (including the
// disconnected-filter row drop and DISTINCT-before-OFFSET/LIMIT ordering)
// while terminating early for ASK and LIMIT-1 probes.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "rdf/dictionary.h"
#include "sparql/engine.h"
#include "sparql/query.h"
#include "util/random.h"

namespace sofya {
namespace {

using Row = std::vector<TermId>;

// Reference evaluator with the pre-streaming semantics: materialize every
// join level, final all-filters-applicable pass, projection, DISTINCT,
// OFFSET, LIMIT. Deliberately naive — it is the spec the pipeline must
// match.
ResultSet BruteForce(const TripleStore& store, const SelectQuery& query,
                     const Dictionary* dict = nullptr) {
  const size_t num_vars = query.num_vars();
  std::vector<Row> rows;
  rows.emplace_back(num_vars, kNullTermId);

  for (const PatternClause& clause : query.clauses()) {
    std::vector<Row> next;
    for (const Row& row : rows) {
      auto resolve = [&](const NodeRef& ref) -> TermId {
        return ref.is_var() ? row[ref.var()] : ref.term();
      };
      TriplePattern pattern(resolve(clause.subject),
                            resolve(clause.predicate),
                            resolve(clause.object));
      for (const Triple& t : store.Match(pattern)) {
        Row extended = row;
        auto bind = [&](const NodeRef& ref, TermId value) {
          if (!ref.is_var()) return ref.term() == value;
          TermId& slot = extended[ref.var()];
          if (slot == kNullTermId) {
            slot = value;
            return true;
          }
          return slot == value;
        };
        if (!bind(clause.subject, t.subject)) continue;
        if (!bind(clause.predicate, t.predicate)) continue;
        if (!bind(clause.object, t.object)) continue;
        next.push_back(std::move(extended));
      }
    }
    rows = std::move(next);
  }

  auto applicable = [&](const FilterExpr& f, const Row& row) {
    if (row[f.lhs] == kNullTermId) return false;
    if ((f.kind == FilterExpr::Kind::kVarEqVar ||
         f.kind == FilterExpr::Kind::kVarNeqVar) &&
        row[f.rhs_var] == kNullTermId) {
      return false;
    }
    return true;
  };
  auto passes = [&](const FilterExpr& f, const Row& row) {
    switch (f.kind) {
      case FilterExpr::Kind::kVarEqVar:
        return row[f.lhs] == row[f.rhs_var];
      case FilterExpr::Kind::kVarNeqVar:
        return row[f.lhs] != row[f.rhs_var];
      case FilterExpr::Kind::kVarEqTerm:
        return row[f.lhs] == f.rhs_term;
      case FilterExpr::Kind::kVarNeqTerm:
        return row[f.lhs] != f.rhs_term;
      case FilterExpr::Kind::kIsIri:
        return dict == nullptr || !dict->Contains(row[f.lhs]) ||
               dict->Decode(row[f.lhs]).is_iri();
      case FilterExpr::Kind::kIsLiteral:
        return dict == nullptr || !dict->Contains(row[f.lhs]) ||
               dict->Decode(row[f.lhs]).is_literal();
    }
    return true;
  };
  std::vector<Row> filtered;
  for (Row& row : rows) {
    bool keep = true;
    for (const FilterExpr& f : query.filters()) {
      if (!applicable(f, row) || !passes(f, row)) {
        keep = false;  // Unbound filter variable: SPARQL error => row drops.
        break;
      }
    }
    if (keep) filtered.push_back(std::move(row));
  }

  std::vector<VarId> projection = query.projection();
  if (projection.empty()) {
    for (VarId v = 0; v < static_cast<VarId>(num_vars); ++v) {
      projection.push_back(v);
    }
  }
  ResultSet result;
  for (VarId v : projection) result.var_names.push_back(query.var_name(v));
  std::vector<Row> projected;
  for (const Row& row : filtered) {
    Row out;
    for (VarId v : projection) out.push_back(row[v]);
    projected.push_back(std::move(out));
  }
  if (query.distinct()) {
    std::vector<Row> unique;
    std::set<Row> seen;
    for (Row& row : projected) {
      if (seen.insert(row).second) unique.push_back(std::move(row));
    }
    projected = std::move(unique);
  }
  const uint64_t offset = query.offset();
  const uint64_t limit = query.limit();
  if (offset >= projected.size()) {
    projected.clear();
  } else {
    projected.erase(projected.begin(),
                    projected.begin() + static_cast<ptrdiff_t>(offset));
    if (limit != kNoLimit && projected.size() > limit) projected.resize(limit);
  }
  result.rows = std::move(projected);
  return result;
}

std::multiset<Row> AsBag(const std::vector<Row>& rows) {
  return {rows.begin(), rows.end()};
}

class StreamingParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = dict_.InternIri("a");
    b_ = dict_.InternIri("b");
    c_ = dict_.InternIri("c");
    knows_ = dict_.InternIri("knows");
    likes_ = dict_.InternIri("likes");
    age_ = dict_.InternIri("age");
    thirty_ = dict_.InternLiteral("30");
    store_.Insert(a_, knows_, b_);
    store_.Insert(a_, knows_, c_);
    store_.Insert(b_, knows_, c_);
    store_.Insert(b_, likes_, a_);
    store_.Insert(c_, likes_, a_);
    store_.Insert(a_, age_, thirty_);
    store_.Insert(b_, age_, thirty_);
  }

  Dictionary dict_;
  TripleStore store_;
  TermId a_, b_, c_, knows_, likes_, age_, thirty_;
};

TEST_F(StreamingParityTest, DisconnectedFilterDropsAllRows) {
  // ?z is declared and mentioned by a filter but bound by no clause: SPARQL
  // filter-error semantics drop every row.
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  const VarId z = q.NewVar("z");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
          NodeRef::Variable(y));
  q.Filter(FilterExpr::VarNeqVar(y, z));
  q.Select({x, y});
  auto result = Evaluate(store_, q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
  EXPECT_EQ(BruteForce(store_, q).rows, result->rows);

  // ASK agrees: no solution exists under filter-error semantics.
  auto ask = EvaluateAsk(store_, q);
  ASSERT_TRUE(ask.ok());
  EXPECT_FALSE(*ask);
}

TEST_F(StreamingParityTest, DistinctAppliesBeforeOffsetAndLimit) {
  // knows-objects with duplicates: b, c, c. DISTINCT -> [b, c]; OFFSET 1
  // must skip a *distinct* row, not a raw row.
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
          NodeRef::Variable(y));
  q.Select({y}).Distinct().Offset(1);
  auto result = Evaluate(store_, q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows, BruteForce(store_, q).rows);
  ASSERT_EQ(result->rows.size(), 1u);
}

TEST_F(StreamingParityTest, LimitZeroYieldsNoRows) {
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
          NodeRef::Variable(y));
  q.Limit(0);
  auto result = Evaluate(store_, q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
}

TEST_F(StreamingParityTest, OffsetBeyondResultYieldsNoRows) {
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
          NodeRef::Variable(y));
  q.Offset(100);
  auto result = Evaluate(store_, q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
}

TEST_F(StreamingParityTest, FilterCornerCasesMatchBruteForce) {
  // Join + neq-var filter + distinct projection, paged two ways.
  for (uint64_t offset : std::vector<uint64_t>{0, 1, 2}) {
    for (uint64_t limit : std::vector<uint64_t>{1, 2, kNoLimit}) {
      SelectQuery q;
      const VarId x = q.NewVar("x");
      const VarId y1 = q.NewVar("y1");
      const VarId y2 = q.NewVar("y2");
      q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
              NodeRef::Variable(y1));
      q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
              NodeRef::Variable(y2));
      q.Filter(FilterExpr::VarNeqVar(y1, y2));
      q.Select({x, y1}).Distinct().Offset(offset).Limit(limit);
      auto streaming = Evaluate(store_, q);
      ASSERT_TRUE(streaming.ok());
      EXPECT_EQ(streaming->rows, BruteForce(store_, q).rows)
          << "offset=" << offset << " limit=" << limit;
    }
  }
}

TEST_F(StreamingParityTest, PaginationConcatenatesToFullResult) {
  SelectQuery all;
  const VarId x = all.NewVar("x");
  const VarId y = all.NewVar("y");
  all.Where(NodeRef::Variable(x), NodeRef::Variable(y),
            NodeRef::Constant(a_));
  auto full = Evaluate(store_, all);
  ASSERT_TRUE(full.ok());
  std::vector<Row> paged;
  for (uint64_t off = 0;; ++off) {
    SelectQuery page = all;
    page.Offset(off).Limit(1);
    auto r = Evaluate(store_, page);
    ASSERT_TRUE(r.ok());
    if (r->rows.empty()) break;
    for (auto& row : r->rows) paged.push_back(row);
  }
  EXPECT_EQ(paged, full->rows);
}

TEST_F(StreamingParityTest, AskStopsAtFirstSolution) {
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
          NodeRef::Variable(y));

  EvalStats ask_stats;
  auto ask = EvaluateAsk(store_, q, &ask_stats);
  ASSERT_TRUE(ask.ok());
  EXPECT_TRUE(*ask);
  EXPECT_EQ(ask_stats.triples_scanned, 1u);  // First match settles it.

  EvalStats full_stats;
  ASSERT_TRUE(Evaluate(store_, q, &full_stats).ok());
  EXPECT_EQ(full_stats.triples_scanned, 3u);  // Full enumeration.
}

TEST_F(StreamingParityTest, LimitOnePushdownStopsScan) {
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
          NodeRef::Variable(y));
  q.Limit(1);
  EvalStats stats;
  auto result = Evaluate(store_, q, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(stats.triples_scanned, 1u);
}

TEST_F(StreamingParityTest, AskIgnoresSolutionModifiers) {
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
          NodeRef::Variable(y));
  q.Offset(50).Limit(0).Distinct();
  auto ask = EvaluateAsk(store_, q);
  ASSERT_TRUE(ask.ok());
  EXPECT_TRUE(*ask);  // Solutions exist, whatever the modifiers say.
}

// Property: random stores and query shapes agree with the reference
// evaluator as bags of rows (order is checked by the pagination tests).
class StreamingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingProperty, MatchesBruteForceOnRandomStores) {
  Rng rng(GetParam());
  TripleStore store;
  const TermId p1 = 100, p2 = 101, p3 = 102;
  for (int i = 0; i < 300; ++i) {
    const TermId p = p1 + static_cast<TermId>(rng.Below(3));
    store.Insert(static_cast<TermId>(1 + rng.Below(12)), p,
                 static_cast<TermId>(1 + rng.Below(12)));
  }

  // Shape 1: chain join with a neq filter.
  {
    SelectQuery q;
    const VarId x = q.NewVar("x");
    const VarId y = q.NewVar("y");
    const VarId z = q.NewVar("z");
    q.Where(NodeRef::Variable(x), NodeRef::Constant(p1),
            NodeRef::Variable(y));
    q.Where(NodeRef::Variable(y), NodeRef::Constant(p2),
            NodeRef::Variable(z));
    q.Filter(FilterExpr::VarNeqVar(x, z));
    auto streaming = Evaluate(store, q);
    ASSERT_TRUE(streaming.ok());
    EXPECT_EQ(AsBag(streaming->rows), AsBag(BruteForce(store, q).rows));
  }

  // Shape 2: star join, distinct projection, offset+limit window.
  {
    SelectQuery q;
    const VarId x = q.NewVar("x");
    const VarId y1 = q.NewVar("y1");
    const VarId y2 = q.NewVar("y2");
    q.Where(NodeRef::Variable(x), NodeRef::Constant(p1),
            NodeRef::Variable(y1));
    q.Where(NodeRef::Variable(x), NodeRef::Constant(p3),
            NodeRef::Variable(y2));
    q.Select({x}).Distinct().Offset(1).Limit(4);
    // Windowed DISTINCT depends on row order. The reference evaluator
    // enumerates clauses in source order, so the exact comparison pins the
    // legacy planner; the stats planner may reorder, and for it the valid
    // invariant is agreement with its *own* full enumeration's window.
    PlannerOptions legacy;
    legacy.use_statistics = false;
    auto streaming = Evaluate(store, q, nullptr, nullptr, legacy);
    ASSERT_TRUE(streaming.ok());
    EXPECT_EQ(streaming->rows, BruteForce(store, q).rows);

    SelectQuery full = q;
    full.Offset(0).Limit(kNoLimit);
    auto stats_full = Evaluate(store, full);
    auto stats_window = Evaluate(store, q);
    ASSERT_TRUE(stats_full.ok());
    ASSERT_TRUE(stats_window.ok());
    const size_t begin = std::min<size_t>(1, stats_full->rows.size());
    const size_t end = std::min<size_t>(begin + 4, stats_full->rows.size());
    EXPECT_EQ(stats_window->rows,
              std::vector<Row>(stats_full->rows.begin() + begin,
                               stats_full->rows.begin() + end));
  }

  // Shape 3: repeated variable within a clause.
  {
    SelectQuery q;
    const VarId x = q.NewVar("x");
    q.Where(NodeRef::Variable(x), NodeRef::Constant(p2),
            NodeRef::Variable(x));
    auto streaming = Evaluate(store, q);
    ASSERT_TRUE(streaming.ok());
    EXPECT_EQ(AsBag(streaming->rows), AsBag(BruteForce(store, q).rows));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingProperty,
                         ::testing::Values(1ULL, 5ULL, 9ULL, 21ULL, 33ULL));

}  // namespace
}  // namespace sofya
