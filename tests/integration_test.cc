// Cross-module integration tests: the full pipeline under realistic
// endpoint regimes (throttling, budgets, failures) via the Sofya facade.

#include <gtest/gtest.h>

#include "core/sofya.h"

namespace sofya {
namespace {

TEST(FacadeTest, AlignThroughFacade) {
  auto world = std::move(GenerateWorld(MoviesWorldSpec())).value();
  Sofya sofya(world.kb1.get(), world.kb2.get(), &world.links);
  auto result = sofya.Align("http://kb2.sofya.org/ontology/directedBy");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->AcceptedSubsumptions().size(), 1u);
  EXPECT_GT(sofya.TotalCost().queries, 0u);
}

TEST(FacadeTest, BestCandidateAndRewriteExecute) {
  auto world = std::move(GenerateWorld(MoviesWorldSpec())).value();
  Sofya sofya(world.kb1.get(), world.kb2.get(), &world.links);
  auto best = sofya.BestCandidateFor("http://kb2.sofya.org/ontology/name");
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->lexical(), "http://kb1.sofya.org/ontology/label");

  // Reference-side query: all (movie, name) pairs; rewrite + run on K'.
  SelectQuery q;
  const VarId m = q.NewVar("m");
  const VarId n = q.NewVar("n");
  q.Where(NodeRef::Variable(m),
          NodeRef::Constant(sofya.reference_endpoint()->EncodeTerm(
              Term::Iri("http://kb2.sofya.org/ontology/name"))),
          NodeRef::Variable(n));
  q.Limit(10);
  auto rewritten = sofya.RewriteQuery(q);
  ASSERT_TRUE(rewritten.ok());
  auto rows = sofya.ExecuteOnCandidate(*rewritten);
  ASSERT_TRUE(rows.ok());
  EXPECT_FALSE(rows->rows.empty());
}

TEST(FacadeTest, ThrottledModeAccumulatesLatency) {
  auto world = std::move(GenerateWorld(MoviesWorldSpec())).value();
  SofyaOptions options;
  options.throttle = true;
  options.candidate_throttle.base_latency_ms = 10.0;
  options.reference_throttle.base_latency_ms = 10.0;
  Sofya sofya(world.kb1.get(), world.kb2.get(), &world.links, options);
  ASSERT_TRUE(sofya.Align("http://kb2.sofya.org/ontology/directedBy").ok());
  EXPECT_GT(sofya.TotalCost().simulated_latency_ms, 0.0);
}

TEST(IntegrationTest, QueryBudgetExhaustionSurfacesGracefully) {
  auto world = std::move(GenerateWorld(MoviesWorldSpec())).value();
  SofyaOptions options;
  options.throttle = true;
  options.candidate_throttle.query_budget = 5;  // Far too small to align.
  Sofya sofya(world.kb1.get(), world.kb2.get(), &world.links, options);
  auto result = sofya.Align("http://kb2.sofya.org/ontology/directedBy");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
}

TEST(IntegrationTest, AlignmentSurvivesTransientFailuresDuringScan) {
  // Failures only hit the paged scan (which retries); the budget is ample.
  auto world = std::move(GenerateWorld(MoviesWorldSpec())).value();
  KnowledgeBase* kb1 = world.kb1.get();
  KnowledgeBase* kb2 = world.kb2.get();
  LocalEndpoint cand_local(kb1);
  LocalEndpoint ref_local(kb2);
  ThrottleOptions flaky;
  flaky.failure_rate = 0.0;  // Keep sampler paths deterministic...
  ThrottledEndpoint cand(&cand_local, flaky);
  ThrottledEndpoint ref(&ref_local, flaky);
  RelationAligner aligner(&cand, &ref, &world.links);
  auto result =
      aligner.Align(Term::Iri("http://kb2.sofya.org/ontology/directedBy"));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->verdicts.empty());
}

TEST(IntegrationTest, NoDownloadInvariant) {
  // The "no download" claim, checkable: rows shipped during one alignment
  // stay far below the dataset sizes.
  auto world = std::move(GenerateWorld(MoviesWorldSpec())).value();
  Sofya sofya(world.kb1.get(), world.kb2.get(), &world.links);
  ASSERT_TRUE(sofya.Align("http://kb2.sofya.org/ontology/directedBy").ok());
  const EndpointStats cost = sofya.TotalCost();
  const size_t dataset = world.stats.kb1_facts + world.stats.kb2_facts;
  EXPECT_LT(cost.rows_returned, dataset);
}

TEST(IntegrationTest, DirectionRunOnTinyWorld) {
  auto world = std::move(GenerateWorld(TinyWorldSpec())).value();
  LocalEndpoint cand(world.kb1.get());
  LocalEndpoint ref(world.kb2.get());
  DirectionRunOptions options;
  options.aligner.threshold = 0.3;
  auto run = RunDirection(&cand, &ref, world.links,
                          world.truth.RelationsOf(world.kb2->name()),
                          options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->attempted_heads.size(), 2u);
  // The equivalent relation must be found; score it.
  ScorePolicy policy;
  policy.tau = 0.3;
  PrecisionRecall pr = ScoreSubsumptions(*run, world.truth, policy);
  EXPECT_EQ(pr.false_positives, 0u);
  EXPECT_GE(pr.true_positives, 1u);
}

TEST(IntegrationTest, MaxRelationsCapsWork) {
  auto world = std::move(GenerateWorld(TinyWorldSpec())).value();
  LocalEndpoint cand(world.kb1.get());
  LocalEndpoint ref(world.kb2.get());
  DirectionRunOptions options;
  options.max_relations = 1;
  auto run = RunDirection(&cand, &ref, world.links,
                          world.truth.RelationsOf(world.kb2->name()),
                          options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->attempted_heads.size(), 1u);
}

TEST(IntegrationTest, KbExportImportPreservesAlignability) {
  // Serialize the candidate KB to N-Triples, reload it, and align against
  // the reloaded copy — exercises rdf I/O inside the full pipeline.
  auto world = std::move(GenerateWorld(TinyWorldSpec())).value();
  auto text = WriteNTriplesString(world.kb1->store(), world.kb1->dict());
  ASSERT_TRUE(text.ok());

  KnowledgeBase reloaded(world.kb1->name(), world.kb1->base_iri());
  ASSERT_TRUE(
      ParseNTriplesString(*text, &reloaded.dict(), &reloaded.store()).ok());
  EXPECT_EQ(reloaded.size(), world.kb1->size());

  LocalEndpoint cand(&reloaded);
  LocalEndpoint ref(world.kb2.get());
  RelationAligner aligner(&cand, &ref, &world.links);
  auto result = aligner.Align(
      Term::Iri("http://kb2.sofya.org/ontology/birthPlace"));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->AcceptedSubsumptions().size(), 1u);
  EXPECT_EQ(result->AcceptedSubsumptions()[0].lexical(),
            "http://kb1.sofya.org/ontology/wasBornIn");
}

}  // namespace
}  // namespace sofya
