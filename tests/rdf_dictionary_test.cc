#include "rdf/dictionary.h"

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/string_util.h"

namespace sofya {
namespace {

TEST(DictionaryTest, InternAssignsDenseIdsFromOne) {
  Dictionary dict;
  EXPECT_EQ(dict.Intern(Term::Iri("a")), 1u);
  EXPECT_EQ(dict.Intern(Term::Iri("b")), 2u);
  EXPECT_EQ(dict.Intern(Term::Literal("c")), 3u);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(DictionaryTest, ReinterningIsIdempotent) {
  Dictionary dict;
  const TermId a = dict.Intern(Term::Iri("a"));
  EXPECT_EQ(dict.Intern(Term::Iri("a")), a);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(DictionaryTest, LookupWithoutIntern) {
  Dictionary dict;
  dict.Intern(Term::Iri("a"));
  EXPECT_EQ(dict.Lookup(Term::Iri("a")), 1u);
  EXPECT_EQ(dict.Lookup(Term::Iri("zz")), kNullTermId);
  EXPECT_EQ(dict.size(), 1u);  // Lookup never interns.
}

TEST(DictionaryTest, LookupDistinguishesTermKinds) {
  Dictionary dict;
  dict.Intern(Term::Iri("x"));
  EXPECT_EQ(dict.Lookup(Term::Literal("x")), kNullTermId);
}

TEST(DictionaryTest, DecodeRoundTrip) {
  Dictionary dict;
  const Term original = Term::LangLiteral("hallo", "de");
  const TermId id = dict.Intern(original);
  EXPECT_EQ(dict.Decode(id), original);
}

TEST(DictionaryTest, ContainsBounds) {
  Dictionary dict;
  dict.Intern(Term::Iri("a"));
  EXPECT_FALSE(dict.Contains(kNullTermId));
  EXPECT_TRUE(dict.Contains(1));
  EXPECT_FALSE(dict.Contains(2));
}

TEST(DictionaryTest, TryDecodeErrorsOnInvalidId) {
  Dictionary dict;
  EXPECT_TRUE(dict.TryDecode(1).status().IsNotFound());
  EXPECT_TRUE(dict.TryDecode(0).status().IsNotFound());
  dict.Intern(Term::Iri("a"));
  EXPECT_TRUE(dict.TryDecode(1).ok());
}

TEST(DictionaryTest, ConvenienceInterners) {
  Dictionary dict;
  const TermId iri = dict.InternIri("http://x/a");
  const TermId lit = dict.InternLiteral("a");
  EXPECT_NE(iri, lit);
  EXPECT_TRUE(dict.Decode(iri).is_iri());
  EXPECT_TRUE(dict.Decode(lit).is_literal());
  EXPECT_EQ(dict.LookupIri("http://x/a"), iri);
  EXPECT_EQ(dict.LookupIri("http://x/b"), kNullTermId);
}

// Property: interning N random distinct terms round-trips all of them.
class DictionaryRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DictionaryRoundTrip, ManyTermsSurvive) {
  Dictionary dict;
  Rng rng(GetParam());
  std::vector<std::pair<TermId, Term>> interned;
  for (int i = 0; i < 500; ++i) {
    Term t;
    const std::string base = StrFormat("t%d_%llu", i,
                                       static_cast<unsigned long long>(
                                           rng.Below(1000)));
    switch (rng.Below(4)) {
      case 0:
        t = Term::Iri("http://x/" + base);
        break;
      case 1:
        t = Term::Literal(base);
        break;
      case 2:
        t = Term::LangLiteral(base, "en");
        break;
      default:
        t = Term::TypedLiteral(base, std::string(xsd::kString));
    }
    interned.emplace_back(dict.Intern(t), t);
  }
  for (const auto& [id, term] : interned) {
    EXPECT_EQ(dict.Decode(id), term);
    EXPECT_EQ(dict.Lookup(term), id);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DictionaryRoundTrip,
                         ::testing::Values(1ULL, 7ULL, 1234ULL));

}  // namespace
}  // namespace sofya
