// CachingEndpoint: hit/miss/eviction behavior, stats accounting through the
// decorator stack, and the end-to-end claim — a repeated alignment workload
// reports nonzero cache hits and strictly fewer server queries.

#include "endpoint/caching_endpoint.h"

#include <gtest/gtest.h>

#include "align/relation_aligner.h"
#include "endpoint/local_endpoint.h"
#include "endpoint/query_forms.h"
#include "endpoint/retrying_endpoint.h"
#include "endpoint/throttled_endpoint.h"
#include "rdf/knowledge_base.h"
#include "synth/presets.h"
#include "synth/world_generator.h"

namespace sofya {
namespace {

class CachingEndpointTest : public ::testing::Test {
 protected:
  CachingEndpointTest() : kb_("cachekb", "http://c.org/") {
    for (int i = 0; i < 10; ++i) {
      kb_.AddFact("s" + std::to_string(i), "p", "o" + std::to_string(i % 3));
      kb_.AddFact("s" + std::to_string(i), "q", "o" + std::to_string(i % 2));
    }
    p_ = kb_.dict().LookupIri("http://c.org/p");
    q_ = kb_.dict().LookupIri("http://c.org/q");
  }

  KnowledgeBase kb_;
  TermId p_ = kNullTermId;
  TermId q_ = kNullTermId;
};

TEST_F(CachingEndpointTest, RepeatSelectHitsCache) {
  LocalEndpoint inner(&kb_);
  CachingEndpoint ep(&inner);

  auto first = ep.Select(queries::FactsOfPredicate(p_));
  ASSERT_TRUE(first.ok());
  auto second = ep.Select(queries::FactsOfPredicate(p_));
  ASSERT_TRUE(second.ok());

  EXPECT_EQ(first->rows, second->rows);
  EXPECT_EQ(ep.hits(), 1u);
  EXPECT_EQ(ep.misses(), 1u);
  // The server saw exactly one query; the hit never reached it.
  EXPECT_EQ(inner.stats().queries, 1u);
  EXPECT_EQ(ep.stats().cache_hits, 1u);
  EXPECT_EQ(ep.stats().cache_misses, 1u);
  EXPECT_EQ(ep.stats().queries, 1u);
}

TEST_F(CachingEndpointTest, StructurallyIdenticalQueriesCollide) {
  LocalEndpoint inner(&kb_);
  CachingEndpoint ep(&inner);
  // Two independently built but identical queries share a fingerprint.
  ASSERT_TRUE(ep.Select(queries::FactsOfPredicate(p_, 5)).ok());
  ASSERT_TRUE(ep.Select(queries::FactsOfPredicate(p_, 5)).ok());
  EXPECT_EQ(ep.hits(), 1u);
  // Different LIMIT means a different result: no collision.
  ASSERT_TRUE(ep.Select(queries::FactsOfPredicate(p_, 6)).ok());
  EXPECT_EQ(ep.hits(), 1u);
  EXPECT_EQ(ep.misses(), 2u);
}

TEST_F(CachingEndpointTest, LruEvictionAtCapacity) {
  LocalEndpoint inner(&kb_);
  CacheOptions options;
  options.capacity = 2;
  CachingEndpoint ep(&inner, options);

  const SelectQuery qa = queries::FactsOfPredicate(p_, 1);
  const SelectQuery qb = queries::FactsOfPredicate(p_, 2);
  const SelectQuery qc = queries::FactsOfPredicate(p_, 3);

  ASSERT_TRUE(ep.Select(qa).ok());  // Cache: [a]
  ASSERT_TRUE(ep.Select(qb).ok());  // Cache: [b, a]
  ASSERT_TRUE(ep.Select(qa).ok());  // Hit; cache: [a, b]
  ASSERT_TRUE(ep.Select(qc).ok());  // Evicts b; cache: [c, a]
  EXPECT_EQ(ep.evictions(), 1u);
  EXPECT_EQ(ep.size(), 2u);

  ASSERT_TRUE(ep.Select(qa).ok());  // Still cached (was touched).
  EXPECT_EQ(ep.hits(), 2u);
  ASSERT_TRUE(ep.Select(qb).ok());  // Evicted: a miss again.
  EXPECT_EQ(ep.misses(), 4u);
}

TEST_F(CachingEndpointTest, ClearDropsEntries) {
  LocalEndpoint inner(&kb_);
  CachingEndpoint ep(&inner);
  ASSERT_TRUE(ep.Select(queries::FactsOfPredicate(p_)).ok());
  EXPECT_EQ(ep.size(), 1u);
  ep.Clear();
  EXPECT_EQ(ep.size(), 0u);
  ASSERT_TRUE(ep.Select(queries::FactsOfPredicate(p_)).ok());
  EXPECT_EQ(ep.misses(), 2u);
}

TEST_F(CachingEndpointTest, AskIsCachedWithModifiersNormalized) {
  LocalEndpoint inner(&kb_);
  CachingEndpoint ep(&inner);
  SelectQuery probe = queries::FactsOfPredicate(p_);
  auto first = ep.Ask(probe);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(*first);
  // Existence does not depend on LIMIT/OFFSET/DISTINCT: same cache entry.
  SelectQuery modified = probe;
  modified.Limit(5).Distinct();
  auto second = ep.Ask(modified);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(*second);
  EXPECT_EQ(ep.hits(), 1u);
  EXPECT_EQ(inner.stats().queries, 1u);
  // An ASK entry does not answer the SELECT form of the same query.
  ASSERT_TRUE(ep.Select(probe).ok());
  EXPECT_EQ(ep.misses(), 2u);
}

TEST_F(CachingEndpointTest, SelectManyForwardsOnlyMisses) {
  LocalEndpoint inner(&kb_);
  CachingEndpoint ep(&inner);
  ASSERT_TRUE(ep.Select(queries::FactsOfPredicate(p_)).ok());  // Warm one.

  std::vector<SelectQuery> batch = {
      queries::FactsOfPredicate(p_),     // Cached -> hit.
      queries::FactsOfPredicate(q_),     // Miss.
      queries::FactsOfPredicate(q_),     // Batch-duplicate miss...
      queries::FactsOfPredicate(p_, 4),  // Miss.
  };
  SelectBatchResult results = ep.SelectMany(batch);
  ASSERT_TRUE(results.all_ok());
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results.values[1].rows, results.values[2].rows);
  EXPECT_EQ(results.values[0].rows.size(), 10u);
  EXPECT_EQ(results.values[3].rows.size(), 4u);

  EXPECT_EQ(ep.hits(), 1u);
  EXPECT_EQ(ep.misses(), 4u);  // Warmup + the three uncached batch entries.
  // ...which the inner endpoint's batch dedup answers from one evaluation:
  // the server executed 1 (warmup) + 2 unique misses = 3 queries.
  EXPECT_EQ(inner.stats().queries, 3u);

  // The whole batch repeated is all hits: zero new server queries.
  SelectBatchResult again = ep.SelectMany(batch);
  ASSERT_TRUE(again.all_ok());
  EXPECT_EQ(ep.hits(), 5u);
  EXPECT_EQ(inner.stats().queries, 3u);
}

TEST_F(CachingEndpointTest, EpochChangeInvalidatesAutomatically) {
  LocalEndpoint inner(&kb_);
  CachingEndpoint ep(&inner);

  auto before = ep.Select(queries::FactsOfPredicate(p_));
  ASSERT_TRUE(before.ok());
  const size_t rows_before = before->rows.size();
  EXPECT_EQ(ep.size(), 1u);

  // Mutate the dataset (time-sensitive-data scenario). No manual Clear():
  // the next request observes the epoch bump and drops the stale entries.
  kb_.AddFact("sNew", "p", "oNew");
  auto after = ep.Select(queries::FactsOfPredicate(p_));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows.size(), rows_before + 1);
  EXPECT_EQ(ep.epoch_invalidations(), 1u);
  // The fresh result is cached again under the new epoch.
  EXPECT_EQ(ep.size(), 1u);
  auto repeat = ep.Select(queries::FactsOfPredicate(p_));
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(repeat->rows.size(), rows_before + 1);
  EXPECT_EQ(ep.hits(), 1u);
}

TEST_F(CachingEndpointTest, EpochInvalidationCoversAsksAndBatches) {
  LocalEndpoint inner(&kb_);
  CachingEndpoint ep(&inner);

  SelectQuery absent_probe = queries::FactsOfPredicate(
      ep.EncodeTerm(Term::Iri("http://c.org/soonToExist")));
  auto missing = ep.Ask(absent_probe);
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(*missing);

  kb_.AddTriple(Term::Iri("http://c.org/sX"),
                Term::Iri("http://c.org/soonToExist"),
                Term::Iri("http://c.org/oX"));
  // A stale cache would answer "false" from the old epoch's entry.
  AskBatchResult batch = ep.AskMany(std::vector<SelectQuery>{absent_probe});
  ASSERT_TRUE(batch.all_ok());
  EXPECT_TRUE(batch.values[0]);
  EXPECT_GE(ep.epoch_invalidations(), 1u);
}

TEST_F(CachingEndpointTest, CacheHitsDoNotConsumeThrottleBudget) {
  LocalEndpoint local(&kb_);
  ThrottleOptions throttle;
  throttle.query_budget = 1;
  throttle.jitter_ms = 0.0;
  ThrottledEndpoint throttled(&local, throttle);
  CachingEndpoint ep(&throttled);

  ASSERT_TRUE(ep.Select(queries::FactsOfPredicate(p_)).ok());
  // Budget is spent, but the repeat is served client-side.
  auto repeat = ep.Select(queries::FactsOfPredicate(p_));
  ASSERT_TRUE(repeat.ok());
  // A genuinely new query still hits the exhausted budget.
  auto denied = ep.Select(queries::FactsOfPredicate(q_));
  EXPECT_TRUE(denied.status().IsResourceExhausted());
}

TEST_F(CachingEndpointTest, ErrorsAreNotCached) {
  LocalEndpoint local(&kb_);
  ThrottleOptions throttle;
  throttle.failure_rate = 1.0;
  ThrottledEndpoint flaky(&local, throttle);
  CachingEndpoint ep(&flaky);
  EXPECT_TRUE(ep.Select(queries::FactsOfPredicate(p_)).status().IsUnavailable());
  EXPECT_EQ(ep.size(), 0u);
  EXPECT_EQ(ep.misses(), 1u);
}

TEST_F(CachingEndpointTest, StatsMergeCarriesCacheCounters) {
  EndpointStats a;
  a.cache_hits = 3;
  a.cache_misses = 5;
  a.triples_scanned = 7;
  EndpointStats b;
  b.cache_hits = 2;
  b.cache_misses = 1;
  b.triples_scanned = 4;
  a.Merge(b);
  EXPECT_EQ(a.cache_hits, 5u);
  EXPECT_EQ(a.cache_misses, 6u);
  EXPECT_EQ(a.triples_scanned, 11u);
}

TEST_F(CachingEndpointTest, ResetStatsClearsCountersButKeepsEntries) {
  LocalEndpoint inner(&kb_);
  CachingEndpoint ep(&inner);
  ASSERT_TRUE(ep.Select(queries::FactsOfPredicate(p_)).ok());
  ASSERT_TRUE(ep.Select(queries::FactsOfPredicate(p_)).ok());
  ep.ResetStats();
  EXPECT_EQ(ep.hits(), 0u);
  EXPECT_EQ(ep.misses(), 0u);
  // Entries survive: the next repeat is an immediate hit.
  ASSERT_TRUE(ep.Select(queries::FactsOfPredicate(p_)).ok());
  EXPECT_EQ(ep.hits(), 1u);
  EXPECT_EQ(inner.stats().queries, 0u);
}

// The acceptance-criterion workload: aligning the same relation twice with a
// cache in the stack reports nonzero hits, and the server sees strictly
// fewer queries the second time.
TEST(CachedAlignmentTest, RepeatedAlignmentHitsCacheAndSavesQueries) {
  auto world_or = GenerateWorld(MoviesWorldSpec());
  ASSERT_TRUE(world_or.ok());
  SynthWorld world = std::move(world_or).value();

  LocalEndpoint cand_local(world.kb1.get());
  LocalEndpoint ref_local(world.kb2.get());
  CachingEndpoint cand(&cand_local);
  CachingEndpoint ref(&ref_local);

  RelationAligner aligner(&cand, &ref, &world.links);
  const Term r = Term::Iri("http://kb2.sofya.org/ontology/directedBy");

  auto first = aligner.Align(r);
  ASSERT_TRUE(first.ok());
  const uint64_t server_queries_first =
      cand_local.stats().queries + ref_local.stats().queries;

  auto second = aligner.Align(r);
  ASSERT_TRUE(second.ok());
  const uint64_t server_queries_second =
      cand_local.stats().queries + ref_local.stats().queries -
      server_queries_first;

  // Identical verdicts (the cache is transparent) ...
  ASSERT_EQ(first->verdicts.size(), second->verdicts.size());
  for (size_t i = 0; i < first->verdicts.size(); ++i) {
    EXPECT_EQ(first->verdicts[i].relation, second->verdicts[i].relation);
    EXPECT_EQ(first->verdicts[i].accepted, second->verdicts[i].accepted);
    EXPECT_EQ(first->verdicts[i].equivalence, second->verdicts[i].equivalence);
  }
  // ... at a fraction of the server cost.
  EXPECT_GT(second->cache_hits, 0u);
  EXPECT_LT(server_queries_second, server_queries_first);
}

}  // namespace
}  // namespace sofya
