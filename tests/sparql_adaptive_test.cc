// Adaptive (re-planning) execution: when a stage's observed output blows
// past its planner estimate, the engine bails, re-plans with the observed
// cardinality pinned, and restarts — bounding the cost of a mis-estimate at
// the quota it was given.
//
// The fixture is a miniature of the bench's misestimate-adversarial shape:
// a fan-out predicate whose four hub subjects are *interspersed* across the
// id range, so every hub shares its equi-depth bucket with hundreds of
// ordinary subjects and the histogram's frequency-weighted fan-out stays
// near the uniform value. No static plan can see the skew; only execution
// can.
//
// Pinned invariants:
//   * the trap query re-plans exactly once, deterministically;
//   * the adaptive result bag equals the non-adaptive one (row order may
//     differ when a re-plan switches the executed plan — SELECT without
//     ORDER BY has no order contract — but content may not);
//   * rows AND EvalStats are bit-identical across 1/2/8 scan threads;
//   * a query whose estimates hold produces bit-identical rows and stats to
//     the non-adaptive engine (the quota pass is pure observation);
//   * EvalStats.clause_rows describes the finally-executed plan.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "rdf/triple_store.h"
#include "sparql/engine.h"
#include "sparql/planner.h"
#include "sparql/query.h"
#include "util/thread_pool.h"

namespace sofya {
namespace {

using Row = std::vector<TermId>;

std::multiset<Row> AsBag(const std::vector<Row>& rows) {
  return {rows.begin(), rows.end()};
}

constexpr TermId kPFan = 10, kPSel = 11, kPObjSel = 12;
constexpr TermId kSelMarker = 777;

/// 2000 ordinary subjects with fan-out 2 plus 4 hubs with fan-out 100,
/// hub ids interleaved between ordinary ids (odd ids in an even-id run) so
/// the subject histogram cannot isolate them. psel marks exactly the hubs;
/// pobjsel reaches 20 of hub 0's fan-out objects.
TripleStore TrapStore() {
  TripleStore store;
  for (TermId i = 0; i < 2000; ++i) {
    const TermId s = 10000 + 2 * i;
    store.Insert(s, kPFan, 100000 + 2 * i);
    store.Insert(s, kPFan, 100000 + 2 * i + 1);
    if (i % 500 == 250) {
      const TermId hub = 10000 + 2 * i + 1;  // Odd id: between neighbors.
      for (TermId j = 0; j < 100; ++j) {
        store.Insert(hub, kPFan, 200000 + (i / 500) * 100 + j);
      }
      store.Insert(hub, kPSel, kSelMarker);
    }
  }
  for (TermId k = 0; k < 20; ++k) {
    store.Insert(300000 + k, kPObjSel, 200000 + k);  // Hub 0's objects.
  }
  return store;
}

/// ?h psel ?m . ?h pfan ?v . ?w pobjsel ?v — the planner anchors on the 4
/// psel rows and walks pfan expecting ~2 rows per subject; every match is a
/// 100-fact hub.
SelectQuery TrapQuery() {
  SelectQuery q;
  const VarId h = q.NewVar("h");
  const VarId m = q.NewVar("m");
  const VarId v = q.NewVar("v");
  const VarId w = q.NewVar("w");
  q.Where(NodeRef::Variable(h), NodeRef::Constant(kPSel),
          NodeRef::Variable(m));
  q.Where(NodeRef::Variable(h), NodeRef::Constant(kPFan),
          NodeRef::Variable(v));
  q.Where(NodeRef::Variable(w), NodeRef::Constant(kPObjSel),
          NodeRef::Variable(v));
  return q;
}

Engine::Options AdaptiveOptions() {
  Engine::Options options;
  options.adaptive = true;
  options.adaptive_replan_factor = 4.0;
  options.adaptive_min_rows = 64;
  return options;
}

TEST(AdaptiveTest, TrapQueryReplansExactlyOnceAndKeepsTheResultBag) {
  const TripleStore store = TrapStore();
  Engine non_adaptive(&store);
  Engine adaptive(&store, nullptr, AdaptiveOptions());

  EvalStats na_stats, ad_stats;
  auto na = non_adaptive.Select(TrapQuery(), &na_stats);
  auto ad = adaptive.Select(TrapQuery(), &ad_stats);
  ASSERT_TRUE(na.ok());
  ASSERT_TRUE(ad.ok());

  // The static plan walked into the hubs; adaptive noticed and escaped.
  EXPECT_EQ(na_stats.replans, 0u);
  EXPECT_EQ(ad_stats.replans, 1u);
  EXPECT_EQ(adaptive.replans(), 1u);
  EXPECT_EQ(non_adaptive.replans(), 0u);

  EXPECT_EQ(ad->rows.size(), 20u);
  EXPECT_EQ(AsBag(ad->rows), AsBag(na->rows));
  // Escaping must be cheaper than pushing through: even paying for the
  // abandoned quota pass, the re-planned run touches fewer index entries.
  EXPECT_LT(ad_stats.triples_scanned, na_stats.triples_scanned);

  // Determinism: the same query re-plans identically every time (re-planned
  // plans are never cached, so each execution re-observes the blow-up).
  EvalStats again_stats;
  auto again = adaptive.Select(TrapQuery(), &again_stats);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->rows, ad->rows);
  EXPECT_EQ(again_stats.replans, 1u);
  EXPECT_EQ(again_stats.triples_scanned, ad_stats.triples_scanned);
  EXPECT_EQ(again_stats.index_probes, ad_stats.index_probes);
  EXPECT_EQ(adaptive.replans(), 2u);
}

TEST(AdaptiveTest, RowsAndStatsAreBitIdenticalAcrossScanThreadCounts) {
  const TripleStore store = TrapStore();
  // max_replans = 1 ends the quota phase after the first re-plan, so the
  // final (quota-free) attempt goes through the parallel-eligible path;
  // parallel_scan_min_rows = 1 makes any pool actually fan out.
  Engine::Options base = AdaptiveOptions();
  base.adaptive_max_replans = 1;
  base.parallel_scan_min_rows = 1;

  ThreadPool pool2(2), pool8(8);
  Engine seq(&store, nullptr, base);
  Engine::Options with2 = base;
  with2.scan_pool = &pool2;
  Engine par2(&store, nullptr, with2);
  Engine::Options with8 = base;
  with8.scan_pool = &pool8;
  Engine par8(&store, nullptr, with8);

  EvalStats s1, s2, s8;
  auto r1 = seq.Select(TrapQuery(), &s1);
  auto r2 = par2.Select(TrapQuery(), &s2);
  auto r8 = par8.Select(TrapQuery(), &s8);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r8.ok());

  EXPECT_EQ(r1->rows, r2->rows);
  EXPECT_EQ(r1->rows, r8->rows);
  EXPECT_EQ(s1.replans, 1u);
  EXPECT_EQ(s2.replans, 1u);
  EXPECT_EQ(s8.replans, 1u);
  EXPECT_EQ(s1.triples_scanned, s2.triples_scanned);
  EXPECT_EQ(s1.triples_scanned, s8.triples_scanned);
  EXPECT_EQ(s1.index_probes, s2.index_probes);
  EXPECT_EQ(s1.index_probes, s8.index_probes);
  EXPECT_EQ(s1.intermediate_rows, s2.intermediate_rows);
  EXPECT_EQ(s1.intermediate_rows, s8.intermediate_rows);
}

TEST(AdaptiveTest, WellEstimatedQueryIsBitIdenticalToNonAdaptive) {
  const TripleStore store = TrapStore();
  Engine non_adaptive(&store);
  Engine adaptive(&store, nullptr, AdaptiveOptions());

  // ?w pobjsel ?v: 20 rows, estimated exactly (constant-prefix probe), so
  // the quota pass completes untriggered and must be pure observation.
  SelectQuery q;
  const VarId w = q.NewVar("w");
  const VarId v = q.NewVar("v");
  q.Where(NodeRef::Variable(w), NodeRef::Constant(kPObjSel),
          NodeRef::Variable(v));

  EvalStats na_stats, ad_stats;
  auto na = non_adaptive.Select(q, &na_stats);
  auto ad = adaptive.Select(q, &ad_stats);
  ASSERT_TRUE(na.ok());
  ASSERT_TRUE(ad.ok());
  EXPECT_EQ(na->rows, ad->rows);
  EXPECT_EQ(ad_stats.replans, 0u);
  EXPECT_EQ(na_stats.triples_scanned, ad_stats.triples_scanned);
  EXPECT_EQ(na_stats.index_probes, ad_stats.index_probes);
  EXPECT_EQ(na_stats.intermediate_rows, ad_stats.intermediate_rows);
  EXPECT_EQ(na_stats.result_rows, ad_stats.result_rows);
}

TEST(AdaptiveTest, LimitQueriesBypassAdaptiveExecution) {
  const TripleStore store = TrapStore();
  Engine adaptive(&store, nullptr, AdaptiveOptions());
  SelectQuery q = TrapQuery();
  q.Limit(5);
  EvalStats stats;
  auto result = adaptive.Select(q, &stats);
  ASSERT_TRUE(result.ok());
  // LIMIT keeps the original plan (pagination-order purity): no re-plan
  // even though the plan mis-estimates.
  EXPECT_EQ(stats.replans, 0u);
  EXPECT_EQ(result->rows.size(), 5u);
}

TEST(AdaptiveTest, ClauseRowStatsDescribeTheExecutedPlan) {
  const TripleStore store = TrapStore();
  Engine adaptive(&store, nullptr, AdaptiveOptions());
  EvalStats stats;
  auto result = adaptive.Select(TrapQuery(), &stats);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(stats.replans, 1u);

  // One entry per pipeline stage of the *final* plan, in executed order,
  // with planner estimates alongside observed rows.
  ASSERT_EQ(stats.clause_rows.size(), 3u);
  std::set<size_t> sources;
  for (const ClauseRowStats& stage : stats.clause_rows) {
    sources.insert(stage.source_index);
    EXPECT_GE(stage.estimated_rows, 0.0);
    EXPECT_GE(stage.estimated_output_rows, 0.0);
    EXPECT_GT(stage.actual_rows, 0u);
  }
  EXPECT_EQ(sources, (std::set<size_t>{0, 1, 2}));
  // The last stage's observed output is the result cardinality.
  EXPECT_EQ(stats.clause_rows.back().actual_rows, result->rows.size());

  // Non-adaptive runs report the same table shape for their (single) plan.
  Engine plain(&store);
  EvalStats plain_stats;
  ASSERT_TRUE(plain.Select(TrapQuery(), &plain_stats).ok());
  ASSERT_EQ(plain_stats.clause_rows.size(), 3u);
  EXPECT_EQ(plain_stats.clause_rows.back().actual_rows, 20u);
}

}  // namespace
}  // namespace sofya
