// SPARQL results JSON: wire-format parsing (uri/literal/typed/lang/bnode
// bindings, unbound cells, ASK booleans, malformed documents) and the
// writer/parser round trip the loopback server depends on.

#include "sparql/results_json.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rdf/dictionary.h"

namespace sofya {
namespace {

class ResultsJsonTest : public ::testing::Test {
 protected:
  TermInterner Interner() {
    return [this](const Term& t) { return dict_.Intern(t); };
  }
  TermDecoder Decoder() {
    return [this](TermId id) { return dict_.TryDecode(id); };
  }
  Dictionary dict_;
};

TEST_F(ResultsJsonTest, ParsesAllBindingKinds) {
  const std::string json = R"({
    "head": {"vars": ["a", "b", "c", "d", "e"]},
    "results": {"bindings": [{
      "a": {"type": "uri", "value": "http://x.org/s"},
      "b": {"type": "literal", "value": "plain"},
      "c": {"type": "literal", "value": "42",
            "datatype": "http://www.w3.org/2001/XMLSchema#integer"},
      "d": {"type": "literal", "value": "Wien", "xml:lang": "de"},
      "e": {"type": "bnode", "value": "b0"}
    }]}
  })";
  auto results = ParseSparqlResultsJson(json, Interner());
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->var_names,
            (std::vector<std::string>{"a", "b", "c", "d", "e"}));
  ASSERT_EQ(results->rows.size(), 1u);
  const auto& row = results->rows[0];
  EXPECT_EQ(dict_.Decode(row[0]), Term::Iri("http://x.org/s"));
  EXPECT_EQ(dict_.Decode(row[1]), Term::Literal("plain"));
  EXPECT_EQ(dict_.Decode(row[2]),
            Term::TypedLiteral(
                "42", "http://www.w3.org/2001/XMLSchema#integer"));
  EXPECT_EQ(dict_.Decode(row[3]), Term::LangLiteral("Wien", "de"));
  EXPECT_EQ(dict_.Decode(row[4]), Term::Iri("_:b0"));
}

TEST_F(ResultsJsonTest, LegacyTypedLiteralTypeIsAccepted) {
  const std::string json = R"({
    "head": {"vars": ["x"]},
    "results": {"bindings": [
      {"x": {"type": "typed-literal", "value": "1.5",
             "datatype": "http://www.w3.org/2001/XMLSchema#double"}}
    ]}
  })";
  auto results = ParseSparqlResultsJson(json, Interner());
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(dict_.Decode(results->rows[0][0]),
            Term::TypedLiteral("1.5",
                               "http://www.w3.org/2001/XMLSchema#double"));
}

TEST_F(ResultsJsonTest, UnboundVariablesBecomeNullCells) {
  const std::string json = R"({
    "head": {"vars": ["x", "y"]},
    "results": {"bindings": [
      {"x": {"type": "uri", "value": "http://x.org/1"}},
      {"y": {"type": "literal", "value": "only y"}},
      {}
    ]}
  })";
  auto results = ParseSparqlResultsJson(json, Interner());
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->rows.size(), 3u);
  EXPECT_NE(results->rows[0][0], kNullTermId);
  EXPECT_EQ(results->rows[0][1], kNullTermId);
  EXPECT_EQ(results->rows[1][0], kNullTermId);
  EXPECT_NE(results->rows[1][1], kNullTermId);
  EXPECT_EQ(results->rows[2][0], kNullTermId);
  EXPECT_EQ(results->rows[2][1], kNullTermId);
}

TEST_F(ResultsJsonTest, StringEscapesDecode) {
  const std::string json =
      "{\"head\":{\"vars\":[\"x\"]},\"results\":{\"bindings\":["
      "{\"x\":{\"type\":\"literal\","
      "\"value\":\"a\\\"b\\\\c\\n\\t\\u00e9\\ud83d\\ude00\"}}]}}";
  auto results = ParseSparqlResultsJson(json, Interner());
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  EXPECT_EQ(dict_.Decode(results->rows[0][0]),
            Term::Literal("a\"b\\c\n\t\xc3\xa9\xf0\x9f\x98\x80"));
}

TEST_F(ResultsJsonTest, AskDocuments) {
  auto yes = ParseSparqlAskJson(R"({"head":{},"boolean":true})");
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  auto no = ParseSparqlAskJson(R"({"head":{},"boolean":false})");
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
  EXPECT_TRUE(ParseSparqlAskJson(R"({"head":{}})").status().IsParseError());
}

TEST_F(ResultsJsonTest, MalformedDocumentsAreParseErrors) {
  const std::vector<std::string> bad = {
      "",
      "not json",
      "[1,2,3]",
      R"({"head":{}})",
      R"({"head":{"vars":["x"]},"results":{}})",
      R"({"head":{"vars":["x"]},"results":{"bindings":[{"x":{}}]}})",
      R"({"head":{"vars":["x"]},"results":{"bindings":[{"x":
          {"type":"mystery","value":"?"}}]}})",
      R"({"head":{"vars":["x"]},"results":{"bindings":[)",
      "{\"head\":{\"vars\":[\"x\"]},\"results\":{\"bindings\":[]}} trailing",
  };
  for (const std::string& json : bad) {
    auto results = ParseSparqlResultsJson(json, Interner());
    EXPECT_TRUE(results.status().IsParseError()) << json;
  }
}

TEST_F(ResultsJsonTest, DeeplyNestedDocumentIsRejectedNotCrashed) {
  std::string json(10000, '[');
  auto result = ParseSparqlAskJson(json);
  EXPECT_TRUE(result.status().IsParseError());
}

TEST_F(ResultsJsonTest, WriterParserRoundTrip) {
  ResultSet original;
  original.var_names = {"s", "o"};
  original.rows.push_back({dict_.InternIri("http://x.org/s1"),
                           dict_.Intern(Term::LangLiteral("café \"x\"", "fr"))});
  original.rows.push_back(
      {dict_.InternIri("_:blank7"),
       dict_.Intern(Term::TypedLiteral(
           "2024-01-01", "http://www.w3.org/2001/XMLSchema#date"))});
  original.rows.push_back({dict_.InternIri("http://x.org/s2"), kNullTermId});

  auto json = WriteSparqlResultsJson(original, Decoder());
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  auto reparsed = ParseSparqlResultsJson(*json, Interner());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << *json;
  // Same dictionary on both sides => identical ids cell for cell.
  EXPECT_EQ(reparsed->var_names, original.var_names);
  EXPECT_EQ(reparsed->rows, original.rows);
}

TEST_F(ResultsJsonTest, AskWriterRoundTrip) {
  EXPECT_TRUE(*ParseSparqlAskJson(WriteSparqlAskJson(true)));
  EXPECT_FALSE(*ParseSparqlAskJson(WriteSparqlAskJson(false)));
}

}  // namespace
}  // namespace sofya
