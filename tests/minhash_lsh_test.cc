#include "similarity/minhash_lsh.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "similarity/string_metrics.h"

namespace sofya {
namespace {

TEST(MinHashSignatureTest, EmptyStringIsAllSentinel) {
  MinHashLsh lsh;
  const auto sig = lsh.Signature("");
  ASSERT_EQ(sig.size(), lsh.options().num_hashes);
  for (uint32_t v : sig) EXPECT_EQ(v, 0xffffffffu);
  // Two empty labels are identical: similarity 1.
  EXPECT_DOUBLE_EQ(MinHashLsh::SignatureSimilarity(sig, lsh.Signature("")),
                   1.0);
}

TEST(MinHashSignatureTest, ShorterThanNgramIsWholeTextShingle) {
  MinHashLsh lsh;  // ngram = 3.
  const auto of = lsh.Signature("of");
  const auto to = lsh.Signature("to");
  // Neither collapses to the empty signature...
  EXPECT_NE(of, lsh.Signature(""));
  EXPECT_NE(to, lsh.Signature(""));
  // ...and distinct short strings get distinct (single-shingle) signatures.
  EXPECT_NE(of, to);
  EXPECT_DOUBLE_EQ(MinHashLsh::SignatureSimilarity(of, lsh.Signature("of")),
                   1.0);
}

TEST(MinHashSignatureTest, Utf8MultibytePassesThrough) {
  MinHashLsh lsh;
  const std::string grussen = "gr\xc3\xbc\xc3\x9f" "en";  // "grüßen"
  const std::string gruessen = "gruessen";
  const auto a = lsh.Signature(grussen);
  const auto b = lsh.Signature(grussen);
  EXPECT_EQ(a, b);  // Deterministic on multibyte input.
  // Different byte streams are different shingle sets, no crash, no UB.
  EXPECT_LT(MinHashLsh::SignatureSimilarity(a, lsh.Signature(gruessen)), 1.0);
}

TEST(MinHashSignatureTest, SimilarityTracksOverlap) {
  MinHashLsh lsh;
  const auto a = lsh.Signature("birth place");
  const auto b = lsh.Signature("birth place");
  const auto c = lsh.Signature("completely unrelated");
  EXPECT_DOUBLE_EQ(MinHashLsh::SignatureSimilarity(a, b), 1.0);
  EXPECT_LT(MinHashLsh::SignatureSimilarity(a, c), 0.3);
  // Mismatched lengths answer 0, not UB.
  std::vector<uint32_t> half(a.begin(), a.begin() + a.size() / 2);
  EXPECT_DOUBLE_EQ(MinHashLsh::SignatureSimilarity(a, half), 0.0);
}

TEST(MinHashLshOptionsTest, InvalidBandConfigsClampToDefault) {
  for (MinHashLshOptions bad :
       {MinHashLshOptions{.num_hashes = 64, .bands = 5, .rows = 4},
        MinHashLshOptions{.num_hashes = 0},
        MinHashLshOptions{.bands = 0},
        MinHashLshOptions{.rows = 0},
        MinHashLshOptions{.ngram = 0}}) {
    MinHashLsh lsh(bad);
    EXPECT_EQ(lsh.options().bands * lsh.options().rows,
              lsh.options().num_hashes);
    EXPECT_GT(lsh.options().ngram, 0u);
  }
  // A valid non-default shape is preserved.
  MinHashLsh custom({.num_hashes = 16, .bands = 8, .rows = 2});
  EXPECT_EQ(custom.options().bands, 8u);
  EXPECT_EQ(custom.options().rows, 2u);
}

TEST(MinHashLshTest, BandRowBoundaryShapes) {
  // rows == num_hashes (single band) and rows == 1 (band per slot) are the
  // boundary layouts; both must index and look up without slicing errors.
  for (MinHashLshOptions shape :
       {MinHashLshOptions{.num_hashes = 8, .bands = 1, .rows = 8},
        MinHashLshOptions{.num_hashes = 8, .bands = 8, .rows = 1}}) {
    MinHashLsh lsh(shape);
    lsh.Insert(0, "birth place");
    lsh.Insert(1, "birth place");
    lsh.Insert(2, "zzz");
    const auto hits = lsh.Lookup("birth place");
    ASSERT_GE(hits.size(), 2u);
    EXPECT_EQ(hits[0], 0u);
    EXPECT_EQ(hits[1], 1u);
  }
}

TEST(MinHashLshTest, LookupSortedUniqueAndStatsAccounted) {
  MinHashLsh lsh;
  lsh.Insert(7, "director");
  lsh.Insert(3, "director");
  lsh.Insert(3, "director");  // Duplicate id: Lookup must dedup.
  MinHashLsh::LookupStats stats;
  const auto hits = lsh.Lookup("director", &stats);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 3u);
  EXPECT_EQ(hits[1], 7u);
  EXPECT_EQ(stats.buckets_probed, lsh.options().bands);
  EXPECT_GE(stats.ids_scanned, hits.size());
}

TEST(MinHashLshTest, EmptyLabelsOnlyMeetEmptyLabels) {
  MinHashLsh lsh;
  lsh.Insert(0, "");
  lsh.Insert(1, "");
  lsh.Insert(2, "real label");
  const auto empties = lsh.Lookup("");
  ASSERT_EQ(empties.size(), 2u);
  EXPECT_EQ(empties[0], 0u);
  EXPECT_EQ(empties[1], 1u);
}

TEST(MinHashLshTest, CrossThreadLookupDeterminism) {
  // One immutable index, concurrent readers: every thread must see the
  // exact same buckets. Also covers two independently built indexes over
  // the same inventory agreeing bucket-for-bucket (equal seeds).
  std::vector<std::string> labels;
  for (int i = 0; i < 200; ++i) {
    labels.push_back("relation " + std::to_string(i % 37));
  }
  MinHashLsh index_a, index_b;
  for (size_t i = 0; i < labels.size(); ++i) {
    index_a.Insert(static_cast<uint32_t>(i), labels[i]);
    index_b.Insert(static_cast<uint32_t>(i), labels[i]);
  }
  const auto expected = index_a.Lookup("relation 5");
  EXPECT_EQ(index_b.Lookup("relation 5"), expected);

  std::vector<std::vector<uint32_t>> per_thread(8);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < per_thread.size(); ++t) {
    threads.emplace_back(
        [&, t] { per_thread[t] = index_a.Lookup("relation 5"); });
  }
  for (auto& th : threads) th.join();
  for (const auto& got : per_thread) EXPECT_EQ(got, expected);
}

TEST(RelationLabelTest, NormalizesBothNamingConventions) {
  EXPECT_EQ(RelationLabel("http://x.org/ontology/hasBirthPlace"),
            "birth place");
  EXPECT_EQ(RelationLabel("http://x.org/ontology/birth_place"),
            "birth place");
  EXPECT_EQ(RelationLabel("http://x.org/p#directed-by"), "directed by");
  EXPECT_EQ(RelationLabel("urn:prop:wasFoundedIn"), "founded in");
  EXPECT_EQ(RelationLabel("plainLocalName"), "plain local name");
}

TEST(RelationLabelTest, EdgeCases) {
  EXPECT_EQ(RelationLabel(""), "");
  EXPECT_EQ(RelationLabel("http://x.org/"), "");
  // An auxiliary-only name survives (never strip to empty).
  EXPECT_EQ(RelationLabel("http://x.org/has"), "has");
  // Digits stay attached to their token; a digit->upper boundary splits.
  EXPECT_EQ(RelationLabel("rel2Name"), "rel2 name");
  // Multibyte UTF-8 passes through verbatim.
  EXPECT_EQ(RelationLabel("http://x.org/stra\xc3\x9f" "e"),
            "stra\xc3\x9f" "e");
}

// --- string_metrics edge cases the lexical scorer leans on ----------------

TEST(StringMetricsEdgeTest, EmptyAndShortInputs) {
  EXPECT_DOUBLE_EQ(BigramDice("", ""), 1.0);
  EXPECT_DOUBLE_EQ(BigramDice("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(BigramDice("ab", "ab"), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("", "x"), 0.0);
  EXPECT_DOUBLE_EQ(TokenJaccard(" ", "  "), 1.0);  // Both tokenless.
}

TEST(StringMetricsEdgeTest, Utf8MultibyteIsByteStable) {
  const std::string a = "caf\xc3\xa9";   // "café"
  const std::string b = "cafe";
  // Byte-level metrics treat the accent as extra bytes — defined, symmetric
  // and within range, never UB.
  const double dice = BigramDice(a, b);
  EXPECT_GE(dice, 0.0);
  EXPECT_LE(dice, 1.0);
  EXPECT_DOUBLE_EQ(dice, BigramDice(b, a));
  EXPECT_DOUBLE_EQ(BigramDice(a, a), 1.0);
  EXPECT_EQ(LevenshteinDistance(a, a), 0u);
  EXPECT_EQ(LevenshteinDistance(a, b), 2u);  // Two bytes of the accent.
}

}  // namespace
}  // namespace sofya
