// ThreadPool: every submitted task runs, results and exceptions come back
// through the futures, and destruction drains the queue before joining.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace sofya {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskAndReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, SingleWorkerPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([i, &order] { order.push_back(i); }));
  }
  for (auto& future : futures) future.get();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto bad = pool.Submit(
      []() -> int { throw std::runtime_error("task exploded"); });
  auto good = pool.Submit([] { return 42; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // A throwing task must not take its worker down with it.
  EXPECT_EQ(good.get(), 42);
}

TEST(ThreadPoolTest, DestructionDrainsQueuedTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        completed.fetch_add(1);
      });
    }
    // Futures dropped on purpose: the destructor alone must guarantee
    // completion of everything already queued.
  }
  EXPECT_EQ(completed.load(), 50);
}

TEST(ThreadPoolTest, PostedContinuationChainsComplete) {
  // The phase scheduler's shape: tasks post follow-up tasks from inside
  // workers (they land on the posting worker's own deque) and nothing ever
  // blocks on a future. Every link of every chain must run.
  std::atomic<int> completed{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  int chains_done = 0;
  constexpr int kChains = 16;
  constexpr int kLinks = 10;

  // `link` is declared BEFORE the pool so workers can never outlive it
  // (destruction runs in reverse order: pool joins first).
  std::function<void(int)> link;
  {
    ThreadPool pool(4);
    link = [&](int remaining) {
      ASSERT_TRUE(pool.OnWorkerThread());
      completed.fetch_add(1);
      if (remaining > 1) {
        pool.Post([&, remaining] { link(remaining - 1); });
        return;
      }
      {
        std::lock_guard<std::mutex> lock(done_mu);
        ++chains_done;
      }
      done_cv.notify_one();
    };
    EXPECT_FALSE(pool.OnWorkerThread());
    for (int c = 0; c < kChains; ++c) {
      pool.Post([&] { link(kLinks); });
    }
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return chains_done == kChains; });
  }
  EXPECT_EQ(completed.load(), kChains * kLinks);
}

TEST(ThreadPoolTest, IdleWorkersStealQueuedSubtasks) {
  // One worker fans out slow subtasks from inside a task; with stealing,
  // they overlap across workers instead of serializing behind the poster.
  ThreadPool pool(4);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  std::atomic<int> done{0};
  auto slow_subtask = [&] {
    const int now = in_flight.fetch_add(1) + 1;
    int seen = max_in_flight.load();
    while (now > seen && !max_in_flight.compare_exchange_weak(seen, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    in_flight.fetch_sub(1);
    done.fetch_add(1);
  };
  pool.Submit([&] {
        // All 8 subtasks land on THIS worker's deque; the other 3 workers
        // have nothing else to do and must steal.
        for (int i = 0; i < 8; ++i) pool.Post(slow_subtask);
      })
      .get();
  while (done.load() < 8) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(max_in_flight.load(), 2);
}

TEST(ThreadPoolTest, ParallelTasksActuallyOverlap) {
  ThreadPool pool(4);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.Submit([&] {
      const int now = in_flight.fetch_add(1) + 1;
      int seen = max_in_flight.load();
      while (now > seen && !max_in_flight.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      in_flight.fetch_sub(1);
    }));
  }
  for (auto& future : futures) future.get();
  // With 4 workers and 20ms tasks, at least two must have overlapped (even
  // on a single hardware core the sleeps interleave).
  EXPECT_GE(max_in_flight.load(), 2);
}

}  // namespace
}  // namespace sofya
