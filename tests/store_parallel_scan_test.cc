// Parallel shard scan must be bit-identical to the sequential path: same
// rows in the same order AND the same EvalStats. These tests run both modes
// over a skewed store (one promoted predicate dominating) and compare; the
// concurrent case doubles as the TSan workload for the scan pool.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "sparql/engine.h"
#include "sparql/query.h"
#include "util/thread_pool.h"

namespace sofya {
namespace {

class ParallelScanTest : public ::testing::Test {
 protected:
  ParallelScanTest()
      : store_(StoreOptions{/*num_hash_shards=*/4, /*promote_threshold=*/64,
                            /*split_factor=*/4}),
        pool_(4) {
    knows_ = dict_.InternIri("http://kb/knows");
    likes_ = dict_.InternIri("http://kb/likes");
    type_ = dict_.InternIri("http://kb/type");
    person_ = dict_.InternIri("http://kb/Person");
    // Skewed: `knows` dwarfs everything else and gets promoted.
    for (int i = 0; i < 600; ++i) {
      const TermId s = dict_.InternIri("http://kb/p" + std::to_string(i % 97));
      const TermId o =
          dict_.InternIri("http://kb/p" + std::to_string((i * 7 + 3) % 211));
      store_.Insert(s, knows_, o);
    }
    for (int i = 0; i < 211; ++i) {
      const TermId s = dict_.InternIri("http://kb/p" + std::to_string(i));
      store_.Insert(s, type_, person_);
      if (i % 3 == 0) {
        store_.Insert(s, likes_,
                      dict_.InternIri("http://kb/t" + std::to_string(i % 5)));
      }
    }
    EXPECT_FALSE(store_.PromotedPredicates().empty());

    seq_ = std::make_unique<Engine>(&store_, &dict_, Engine::Options());
    Engine::Options par_opts;
    par_opts.scan_pool = &pool_;
    par_opts.parallel_scan_min_rows = 32;  // Low bar: force the parallel path.
    par_ = std::make_unique<Engine>(&store_, &dict_, par_opts);
  }

  /// Runs `q` through both engines and asserts row and stats identity.
  void ExpectIdentical(const SelectQuery& q) {
    EvalStats sa, sb;
    auto a = seq_->Select(q, &sa);
    auto b = par_->Select(q, &sb);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(a->rows, b->rows);
    EXPECT_EQ(sa.intermediate_rows, sb.intermediate_rows);
    EXPECT_EQ(sa.index_probes, sb.index_probes);
    EXPECT_EQ(sa.triples_scanned, sb.triples_scanned);
    EXPECT_EQ(sa.result_rows, sb.result_rows);
  }

  Dictionary dict_;
  TripleStore store_;
  ThreadPool pool_;
  TermId knows_, likes_, type_, person_;
  std::unique_ptr<Engine> seq_, par_;
};

TEST_F(ParallelScanTest, SingleClauseOverPromotedPredicate) {
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
          NodeRef::Variable(y));
  ExpectIdentical(q);
}

TEST_F(ParallelScanTest, JoinAcrossShardedPredicates) {
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
          NodeRef::Variable(y));
  q.Where(NodeRef::Variable(y), NodeRef::Constant(type_),
          NodeRef::Constant(person_));
  ExpectIdentical(q);
}

TEST_F(ParallelScanTest, DistinctAndOffsetSurviveParallelMerge) {
  {
    SelectQuery q;
    const VarId x = q.NewVar("x");
    q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
            NodeRef::Variable(q.NewVar("y")));
    q.Select({x}).Distinct();
    ExpectIdentical(q);
  }
  {
    SelectQuery q;
    const VarId x = q.NewVar("x");
    const VarId y = q.NewVar("y");
    q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
            NodeRef::Variable(y));
    q.Offset(37);
    ExpectIdentical(q);
  }
  {
    SelectQuery q;
    const VarId x = q.NewVar("x");
    q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
            NodeRef::Variable(q.NewVar("y")));
    q.Select({x}).Distinct().Offset(11);
    ExpectIdentical(q);
  }
}

TEST_F(ParallelScanTest, VariablePredicateDriverSpansAllShards) {
  SelectQuery q;
  const VarId s = q.NewVar("s");
  const VarId p = q.NewVar("p");
  const VarId o = q.NewVar("o");
  q.Where(NodeRef::Variable(s), NodeRef::Variable(p), NodeRef::Variable(o));
  ExpectIdentical(q);
}

TEST_F(ParallelScanTest, LimitQueriesStaySequentialButCorrect) {
  SelectQuery q;
  const VarId x = q.NewVar("x");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
          NodeRef::Variable(q.NewVar("y")));
  q.Limit(17);
  auto a = seq_->Select(q);
  auto b = par_->Select(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->rows, b->rows);
  EXPECT_EQ(a->rows.size(), 17u);
}

TEST_F(ParallelScanTest, SmallResultFallsBackSequential) {
  // Bounding the object shrinks the driver range below any chunking payoff;
  // both paths must agree regardless of which one actually runs.
  SelectQuery q;
  const VarId x = q.NewVar("x");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(likes_),
          NodeRef::Constant(dict_.InternIri("http://kb/t0")));
  ExpectIdentical(q);
}

TEST_F(ParallelScanTest, ConcurrentSelectsAreRaceFree) {
  // Many parallel Selects through one shared Engine + pool. Under TSan this
  // exercises the lazy shard sort, stats memos, and the scan fan-out at once.
  auto run = [&]() {
    for (int i = 0; i < 8; ++i) {
      SelectQuery q;
      const VarId x = q.NewVar("x");
      const VarId y = q.NewVar("y");
      q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
              NodeRef::Variable(y));
      q.Where(NodeRef::Variable(y), NodeRef::Constant(type_),
              NodeRef::Constant(person_));
      auto r = par_->Select(q);
      ASSERT_TRUE(r.ok()) << r.status();
      EXPECT_FALSE(r->rows.empty());
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(run);
  for (auto& t : threads) t.join();
}

TEST_F(ParallelScanTest, AskIsUnchanged) {
  SelectQuery q;
  const VarId x = q.NewVar("x");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
          NodeRef::Variable(q.NewVar("y")));
  auto a = seq_->Ask(q);
  auto b = par_->Ask(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_TRUE(*b);
}

}  // namespace
}  // namespace sofya
