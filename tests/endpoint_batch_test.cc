// SelectMany batching and native ASK: positional results, intra-batch
// dedup accounting on LocalEndpoint, decorator forwarding, per-sub-query
// outcomes (BatchResult), and the O(first match) early-exit claim for
// existence probes.

#include <gtest/gtest.h>

#include "endpoint/local_endpoint.h"
#include "endpoint/paged_select.h"
#include "endpoint/query_forms.h"
#include "endpoint/retrying_endpoint.h"
#include "endpoint/throttled_endpoint.h"
#include "rdf/knowledge_base.h"

namespace sofya {
namespace {

class EndpointBatchTest : public ::testing::Test {
 protected:
  EndpointBatchTest() : kb_("batchkb", "http://b.org/") {
    for (int i = 0; i < 100; ++i) {
      kb_.AddFact("s" + std::to_string(i), "big", "o" + std::to_string(i));
    }
    kb_.AddFact("s0", "small", "o0");
    big_ = kb_.dict().LookupIri("http://b.org/big");
    small_ = kb_.dict().LookupIri("http://b.org/small");
  }

  KnowledgeBase kb_;
  TermId big_ = kNullTermId;
  TermId small_ = kNullTermId;
};

TEST_F(EndpointBatchTest, SelectManyResultsArePositional) {
  LocalEndpoint ep(&kb_);
  std::vector<SelectQuery> batch = {queries::FactsOfPredicate(big_, 7),
                                    queries::FactsOfPredicate(small_)};
  SelectBatchResult results = ep.SelectMany(batch);
  ASSERT_TRUE(results.all_ok());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results.values[0].rows.size(), 7u);
  EXPECT_EQ(results.values[1].rows.size(), 1u);
}

TEST_F(EndpointBatchTest, LocalSelectManyDedupsWithinBatch) {
  LocalEndpoint ep(&kb_);
  std::vector<SelectQuery> batch = {
      queries::FactsOfPredicate(small_), queries::FactsOfPredicate(big_, 3),
      queries::FactsOfPredicate(small_), queries::FactsOfPredicate(small_)};
  SelectBatchResult results = ep.SelectMany(batch);
  ASSERT_TRUE(results.all_ok());
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results.values[0].rows, results.values[2].rows);
  EXPECT_EQ(results.values[0].rows, results.values[3].rows);
  // 2 unique queries evaluated; duplicates answered from the same result.
  EXPECT_EQ(ep.stats().queries, 2u);
  EXPECT_EQ(ep.stats().rows_returned, 4u);  // 1 (small) + 3 (big).
}

TEST_F(EndpointBatchTest, ThrottledSelectManyChargesPerQuery) {
  LocalEndpoint inner(&kb_);
  ThrottleOptions options;
  options.query_budget = 2;
  ThrottledEndpoint ep(&inner, options);
  std::vector<SelectQuery> batch = {queries::FactsOfPredicate(small_),
                                    queries::FactsOfPredicate(small_),
                                    queries::FactsOfPredicate(small_)};
  // A remote provider meters requests, not batches: the third sub-query
  // exceeds the budget even though all three are identical — but only that
  // sub-query fails; the admitted answers are delivered.
  SelectBatchResult results = ep.SelectMany(batch);
  EXPECT_TRUE(results.statuses[0].ok());
  EXPECT_TRUE(results.statuses[1].ok());
  EXPECT_TRUE(results.statuses[2].IsResourceExhausted());
  EXPECT_EQ(results.values[0].rows.size(), 1u);
  EXPECT_TRUE(results.FirstError().IsResourceExhausted());
}

TEST_F(EndpointBatchTest, DefaultSelectManyMatchesSequentialSelects) {
  LocalEndpoint seq_ep(&kb_);
  LocalEndpoint batch_ep(&kb_);
  std::vector<SelectQuery> batch = {queries::FactsOfPredicate(big_, 5),
                                    queries::FactsOfPredicate(small_),
                                    queries::FactsOfPredicate(big_, 2)};
  SelectBatchResult batched = batch_ep.SelectMany(batch);
  ASSERT_TRUE(batched.all_ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    auto single = seq_ep.Select(batch[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(single->rows, batched.values[i].rows) << "query " << i;
  }
}

TEST_F(EndpointBatchTest, IntoValuesAdaptsToFailFast) {
  LocalEndpoint ep(&kb_);
  std::vector<SelectQuery> batch = {queries::FactsOfPredicate(big_, 2),
                                    queries::FactsOfPredicate(small_)};
  auto values = ep.SelectMany(batch).IntoValues();
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(values->size(), 2u);

  // With a failure in the batch, IntoValues reports the first error by
  // position — the deterministic fail-fast adapter consumers rely on.
  LocalEndpoint inner(&kb_);
  ThrottleOptions options;
  options.query_budget = 1;
  ThrottledEndpoint metered(&inner, options);
  auto failed = metered.SelectMany(batch).IntoValues();
  EXPECT_TRUE(failed.status().IsResourceExhausted());
}

TEST_F(EndpointBatchTest, AskShipsNoRowsAndScansOneTriple) {
  LocalEndpoint ep(&kb_);
  auto yes = ep.Ask(queries::FactsOfPredicate(big_));
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  EXPECT_EQ(ep.stats().queries, 1u);
  EXPECT_EQ(ep.stats().rows_returned, 0u);
  // Early exit: one triple scanned out of 100 matches.
  EXPECT_EQ(ep.stats().triples_scanned, 1u);

  auto no = ep.Ask(queries::FactsOfPredicate(
      ep.EncodeTerm(Term::Iri("http://b.org/absent"))));
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
}

TEST_F(EndpointBatchTest, AskCostDoesNotScaleWithCardinality) {
  LocalEndpoint ep(&kb_);
  ASSERT_TRUE(ep.Ask(queries::FactsOfPredicate(big_)).ok());
  const uint64_t big_scan = ep.stats().triples_scanned;
  ep.ResetStats();
  ASSERT_TRUE(ep.Ask(queries::FactsOfPredicate(small_)).ok());
  const uint64_t small_scan = ep.stats().triples_scanned;
  // 100 matches vs 1 match: identical probe cost.
  EXPECT_EQ(big_scan, small_scan);
}

TEST_F(EndpointBatchTest, ThrottledAskForwardsEarlyExitAndChargesBudget) {
  LocalEndpoint inner(&kb_);
  ThrottleOptions options;
  options.query_budget = 1;
  options.jitter_ms = 0.0;
  options.base_latency_ms = 40.0;
  options.per_row_latency_ms = 1.0;
  ThrottledEndpoint ep(&inner, options);

  auto yes = ep.Ask(queries::FactsOfPredicate(big_));
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  EXPECT_EQ(ep.stats().queries, 1u);
  EXPECT_EQ(ep.stats().rows_returned, 0u);
  EXPECT_EQ(inner.stats().triples_scanned, 1u);  // Early exit survived.
  // Base latency only: a boolean ships no rows.
  EXPECT_DOUBLE_EQ(ep.stats().simulated_latency_ms, 40.0);

  // ASK consumes budget like any request.
  auto denied = ep.Ask(queries::FactsOfPredicate(big_));
  EXPECT_TRUE(denied.status().IsResourceExhausted());
}

TEST_F(EndpointBatchTest, RetryingAskAbsorbsTransientFailures) {
  LocalEndpoint inner(&kb_);
  ThrottleOptions options;
  options.failure_rate = 0.5;
  options.seed = 11;
  ThrottledEndpoint flaky(&inner, options);
  RetryOptions retry;
  retry.max_retries = 20;
  retry.initial_backoff_ms = 0.0;  // Deterministic injector; don't wait.
  RetryingEndpoint ep(&flaky, retry);
  for (int i = 0; i < 10; ++i) {
    auto result = ep.Ask(queries::FactsOfPredicate(big_));
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(*result);
  }
  EXPECT_GT(ep.retries_performed(), 0u);
}

TEST_F(EndpointBatchTest, ThrottledBatchAccountingMatchesSequentialExactly) {
  // The regression the wave-admission audit demands: with the default wave
  // width of 1, a batched run and a sequential run of the same queries
  // produce bit-identical derived stats — budget, rows, latency, and even
  // the jitter/failure rng stream. Latency is charged per sub-query wave,
  // never per batch call.
  ThrottleOptions options;
  options.base_latency_ms = 25.0;
  options.per_row_latency_ms = 0.5;
  options.jitter_ms = 5.0;  // Nonzero: the rng stream must line up too.
  options.seed = 99;

  std::vector<SelectQuery> batch = {queries::FactsOfPredicate(big_, 5),
                                    queries::FactsOfPredicate(small_),
                                    queries::FactsOfPredicate(big_, 2),
                                    queries::FactsOfPredicate(small_)};

  LocalEndpoint seq_inner(&kb_);
  ThrottledEndpoint sequential(&seq_inner, options);
  for (const SelectQuery& query : batch) {
    ASSERT_TRUE(sequential.Select(query).ok());
  }

  LocalEndpoint batch_inner(&kb_);
  ThrottledEndpoint batched(&batch_inner, options);
  ASSERT_TRUE(batched.SelectMany(batch).all_ok());

  const EndpointStats seq_stats = sequential.stats();
  const EndpointStats batch_stats = batched.stats();
  EXPECT_EQ(batch_stats.queries, seq_stats.queries);
  EXPECT_EQ(batch_stats.rows_returned, seq_stats.rows_returned);
  EXPECT_DOUBLE_EQ(batch_stats.simulated_latency_ms,
                   seq_stats.simulated_latency_ms);
  EXPECT_EQ(batched.queries_issued(), sequential.queries_issued());

  // Same parity for ASK batches (base latency only, same rng schedule).
  LocalEndpoint ask_seq_inner(&kb_);
  ThrottledEndpoint ask_sequential(&ask_seq_inner, options);
  for (const SelectQuery& query : batch) {
    ASSERT_TRUE(ask_sequential.Ask(query).ok());
  }
  LocalEndpoint ask_batch_inner(&kb_);
  ThrottledEndpoint ask_batched(&ask_batch_inner, options);
  ASSERT_TRUE(ask_batched.AskMany(batch).all_ok());
  EXPECT_DOUBLE_EQ(ask_batched.stats().simulated_latency_ms,
                   ask_sequential.stats().simulated_latency_ms);
}

TEST_F(EndpointBatchTest, ThrottledWaveWidthModelsPipelining) {
  // Width c > 1: a batch of k sub-queries costs ceil(k/c) base-latency
  // units (like c pipelined connections) while the budget still meters all
  // k requests.
  ThrottleOptions options;
  options.base_latency_ms = 10.0;
  options.per_row_latency_ms = 0.0;
  options.jitter_ms = 0.0;
  options.batch_wave_width = 4;

  LocalEndpoint inner(&kb_);
  ThrottledEndpoint ep(&inner, options);
  std::vector<SelectQuery> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back(queries::FactsOfPredicate(small_));
  }
  ASSERT_TRUE(ep.SelectMany(batch).all_ok());
  EXPECT_EQ(ep.queries_issued(), 10u);       // A provider meters requests...
  EXPECT_EQ(ep.stats().queries, 10u);
  // ...but wall latency is 3 waves (4 + 4 + 2), not 10 round trips and
  // not 1 per-batch charge.
  EXPECT_DOUBLE_EQ(ep.stats().simulated_latency_ms, 30.0);
}

TEST_F(EndpointBatchTest, BatchedPagedSelectMatchesPagedSelect) {
  LocalEndpoint seq_ep(&kb_);
  LocalEndpoint batch_ep(&kb_);
  PagedSelectOptions options;
  options.page_size = 30;

  std::vector<SelectQuery> batch = {
      queries::FactsOfPredicate(big_),       // 100 rows: 4 pages.
      queries::FactsOfPredicate(small_),     // 1 row: 1 page.
      queries::FactsOfPredicate(big_, 30),   // Cap == page: 1 page.
      queries::FactsOfPredicate(big_, 45)};  // 2 pages.
  SelectBatchResult batched = BatchedPagedSelect(&batch_ep, batch, options);
  ASSERT_TRUE(batched.all_ok());
  uint64_t sequential_queries = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    seq_ep.ResetStats();
    auto single = PagedSelect(&seq_ep, batch[i], options);
    ASSERT_TRUE(single.ok());
    sequential_queries += seq_ep.stats().queries;
    EXPECT_EQ(single->rows, batched.values[i].rows) << "query " << i;
  }
  // Batching keeps the page schedule but lets LocalEndpoint dedup identical
  // first pages across the batch (all three `big` probes open with the same
  // LIMIT-30 page): strictly fewer server queries than sequential paging.
  EXPECT_LT(batch_ep.stats().queries, sequential_queries);
  EXPECT_EQ(batch_ep.stats().queries, 6u);  // {big30, small} + 3 + 1 pages.
}

}  // namespace
}  // namespace sofya
