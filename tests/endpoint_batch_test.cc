// SelectMany batching and native ASK: positional results, intra-batch
// dedup accounting on LocalEndpoint, decorator forwarding, and the
// O(first match) early-exit claim for existence probes.

#include <gtest/gtest.h>

#include "endpoint/local_endpoint.h"
#include "endpoint/paged_select.h"
#include "endpoint/query_forms.h"
#include "endpoint/retrying_endpoint.h"
#include "endpoint/throttled_endpoint.h"
#include "rdf/knowledge_base.h"

namespace sofya {
namespace {

class EndpointBatchTest : public ::testing::Test {
 protected:
  EndpointBatchTest() : kb_("batchkb", "http://b.org/") {
    for (int i = 0; i < 100; ++i) {
      kb_.AddFact("s" + std::to_string(i), "big", "o" + std::to_string(i));
    }
    kb_.AddFact("s0", "small", "o0");
    big_ = kb_.dict().LookupIri("http://b.org/big");
    small_ = kb_.dict().LookupIri("http://b.org/small");
  }

  KnowledgeBase kb_;
  TermId big_ = kNullTermId;
  TermId small_ = kNullTermId;
};

TEST_F(EndpointBatchTest, SelectManyResultsArePositional) {
  LocalEndpoint ep(&kb_);
  std::vector<SelectQuery> batch = {queries::FactsOfPredicate(big_, 7),
                                    queries::FactsOfPredicate(small_)};
  auto results = ep.SelectMany(batch);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].rows.size(), 7u);
  EXPECT_EQ((*results)[1].rows.size(), 1u);
}

TEST_F(EndpointBatchTest, LocalSelectManyDedupsWithinBatch) {
  LocalEndpoint ep(&kb_);
  std::vector<SelectQuery> batch = {
      queries::FactsOfPredicate(small_), queries::FactsOfPredicate(big_, 3),
      queries::FactsOfPredicate(small_), queries::FactsOfPredicate(small_)};
  auto results = ep.SelectMany(batch);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 4u);
  EXPECT_EQ((*results)[0].rows, (*results)[2].rows);
  EXPECT_EQ((*results)[0].rows, (*results)[3].rows);
  // 2 unique queries evaluated; duplicates answered from the same result.
  EXPECT_EQ(ep.stats().queries, 2u);
  EXPECT_EQ(ep.stats().rows_returned, 4u);  // 1 (small) + 3 (big).
}

TEST_F(EndpointBatchTest, ThrottledSelectManyChargesPerQuery) {
  LocalEndpoint inner(&kb_);
  ThrottleOptions options;
  options.query_budget = 2;
  ThrottledEndpoint ep(&inner, options);
  std::vector<SelectQuery> batch = {queries::FactsOfPredicate(small_),
                                    queries::FactsOfPredicate(small_),
                                    queries::FactsOfPredicate(small_)};
  // A remote provider meters requests, not batches: the third sub-query
  // exceeds the budget even though all three are identical.
  auto results = ep.SelectMany(batch);
  EXPECT_TRUE(results.status().IsResourceExhausted());
}

TEST_F(EndpointBatchTest, DefaultSelectManyMatchesSequentialSelects) {
  LocalEndpoint seq_ep(&kb_);
  LocalEndpoint batch_ep(&kb_);
  std::vector<SelectQuery> batch = {queries::FactsOfPredicate(big_, 5),
                                    queries::FactsOfPredicate(small_),
                                    queries::FactsOfPredicate(big_, 2)};
  auto batched = batch_ep.SelectMany(batch);
  ASSERT_TRUE(batched.ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    auto single = seq_ep.Select(batch[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(single->rows, (*batched)[i].rows) << "query " << i;
  }
}

TEST_F(EndpointBatchTest, AskShipsNoRowsAndScansOneTriple) {
  LocalEndpoint ep(&kb_);
  auto yes = ep.Ask(queries::FactsOfPredicate(big_));
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  EXPECT_EQ(ep.stats().queries, 1u);
  EXPECT_EQ(ep.stats().rows_returned, 0u);
  // Early exit: one triple scanned out of 100 matches.
  EXPECT_EQ(ep.stats().triples_scanned, 1u);

  auto no = ep.Ask(queries::FactsOfPredicate(
      ep.EncodeTerm(Term::Iri("http://b.org/absent"))));
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
}

TEST_F(EndpointBatchTest, AskCostDoesNotScaleWithCardinality) {
  LocalEndpoint ep(&kb_);
  ASSERT_TRUE(ep.Ask(queries::FactsOfPredicate(big_)).ok());
  const uint64_t big_scan = ep.stats().triples_scanned;
  ep.ResetStats();
  ASSERT_TRUE(ep.Ask(queries::FactsOfPredicate(small_)).ok());
  const uint64_t small_scan = ep.stats().triples_scanned;
  // 100 matches vs 1 match: identical probe cost.
  EXPECT_EQ(big_scan, small_scan);
}

TEST_F(EndpointBatchTest, ThrottledAskForwardsEarlyExitAndChargesBudget) {
  LocalEndpoint inner(&kb_);
  ThrottleOptions options;
  options.query_budget = 1;
  options.jitter_ms = 0.0;
  options.base_latency_ms = 40.0;
  options.per_row_latency_ms = 1.0;
  ThrottledEndpoint ep(&inner, options);

  auto yes = ep.Ask(queries::FactsOfPredicate(big_));
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  EXPECT_EQ(ep.stats().queries, 1u);
  EXPECT_EQ(ep.stats().rows_returned, 0u);
  EXPECT_EQ(inner.stats().triples_scanned, 1u);  // Early exit survived.
  // Base latency only: a boolean ships no rows.
  EXPECT_DOUBLE_EQ(ep.stats().simulated_latency_ms, 40.0);

  // ASK consumes budget like any request.
  auto denied = ep.Ask(queries::FactsOfPredicate(big_));
  EXPECT_TRUE(denied.status().IsResourceExhausted());
}

TEST_F(EndpointBatchTest, RetryingAskAbsorbsTransientFailures) {
  LocalEndpoint inner(&kb_);
  ThrottleOptions options;
  options.failure_rate = 0.5;
  options.seed = 11;
  ThrottledEndpoint flaky(&inner, options);
  RetryOptions retry;
  retry.max_retries = 20;
  retry.initial_backoff_ms = 0.0;  // Deterministic injector; don't wait.
  RetryingEndpoint ep(&flaky, retry);
  for (int i = 0; i < 10; ++i) {
    auto result = ep.Ask(queries::FactsOfPredicate(big_));
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(*result);
  }
  EXPECT_GT(ep.retries_performed(), 0u);
}

TEST_F(EndpointBatchTest, BatchedPagedSelectMatchesPagedSelect) {
  LocalEndpoint seq_ep(&kb_);
  LocalEndpoint batch_ep(&kb_);
  PagedSelectOptions options;
  options.page_size = 30;

  std::vector<SelectQuery> batch = {
      queries::FactsOfPredicate(big_),       // 100 rows: 4 pages.
      queries::FactsOfPredicate(small_),     // 1 row: 1 page.
      queries::FactsOfPredicate(big_, 30),   // Cap == page: 1 page.
      queries::FactsOfPredicate(big_, 45)};  // 2 pages.
  auto batched = BatchedPagedSelect(&batch_ep, batch, options);
  ASSERT_TRUE(batched.ok());
  uint64_t sequential_queries = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    seq_ep.ResetStats();
    auto single = PagedSelect(&seq_ep, batch[i], options);
    ASSERT_TRUE(single.ok());
    sequential_queries += seq_ep.stats().queries;
    EXPECT_EQ(single->rows, (*batched)[i].rows) << "query " << i;
  }
  // Batching keeps the page schedule but lets LocalEndpoint dedup identical
  // first pages across the batch (all three `big` probes open with the same
  // LIMIT-30 page): strictly fewer server queries than sequential paging.
  EXPECT_LT(batch_ep.stats().queries, sequential_queries);
  EXPECT_EQ(batch_ep.stats().queries, 6u);  // {big30, small} + 3 + 1 pages.
}

}  // namespace
}  // namespace sofya
