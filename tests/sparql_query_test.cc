#include "sparql/query.h"

#include <gtest/gtest.h>

namespace sofya {
namespace {

TEST(SelectQueryTest, NewVarAssignsDenseIds) {
  SelectQuery q;
  EXPECT_EQ(q.NewVar("x"), 0);
  EXPECT_EQ(q.NewVar("y"), 1);
  EXPECT_EQ(q.num_vars(), 2u);
  EXPECT_EQ(q.var_name(0), "x");
}

TEST(SelectQueryTest, FluentBuilderAccumulates) {
  SelectQuery q;
  const VarId x = q.NewVar("x");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(5), NodeRef::Constant(6))
      .Filter(FilterExpr::VarNeqTerm(x, 7))
      .Select({x})
      .Distinct()
      .Limit(10)
      .Offset(3);
  EXPECT_EQ(q.clauses().size(), 1u);
  EXPECT_EQ(q.filters().size(), 1u);
  EXPECT_EQ(q.projection().size(), 1u);
  EXPECT_TRUE(q.distinct());
  EXPECT_EQ(q.limit(), 10u);
  EXPECT_EQ(q.offset(), 3u);
}

TEST(SelectQueryTest, NodeRefAccessors) {
  const NodeRef c = NodeRef::Constant(42);
  EXPECT_FALSE(c.is_var());
  EXPECT_EQ(c.term(), 42u);
  const NodeRef v = NodeRef::Variable(3);
  EXPECT_TRUE(v.is_var());
  EXPECT_EQ(v.var(), 3);
}

TEST(SelectQueryTest, ValidateRejectsEmptyAndBadVars) {
  SelectQuery empty;
  EXPECT_TRUE(empty.Validate().IsInvalidArgument());

  SelectQuery bad_clause;
  bad_clause.Where(NodeRef::Variable(0), NodeRef::Constant(1),
                   NodeRef::Constant(2));
  EXPECT_TRUE(bad_clause.Validate().IsInvalidArgument());  // Var 0 undeclared.

  SelectQuery bad_filter;
  const VarId x = bad_filter.NewVar("x");
  bad_filter.Where(NodeRef::Variable(x), NodeRef::Constant(1),
                   NodeRef::Constant(2));
  bad_filter.Filter(FilterExpr::VarNeqVar(x, 9));
  EXPECT_TRUE(bad_filter.Validate().IsInvalidArgument());

  SelectQuery bad_projection;
  const VarId y = bad_projection.NewVar("y");
  bad_projection.Where(NodeRef::Variable(y), NodeRef::Constant(1),
                       NodeRef::Constant(2));
  bad_projection.Select({y, 5});
  EXPECT_TRUE(bad_projection.Validate().IsInvalidArgument());
}

TEST(SelectQueryTest, ValidQueryValidates) {
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(1), NodeRef::Variable(y));
  q.Filter(FilterExpr::VarNeqVar(x, y));
  q.Select({x});
  EXPECT_TRUE(q.Validate().ok());
}

TEST(SelectQueryTest, ToSparqlRendersAllFilterKinds) {
  Dictionary dict;
  const TermId p = dict.InternIri("http://x/p");
  SelectQuery q;
  const VarId a = q.NewVar("a");
  const VarId b = q.NewVar("b");
  q.Where(NodeRef::Variable(a), NodeRef::Constant(p), NodeRef::Variable(b));
  q.Filter(FilterExpr::VarEqVar(a, b));
  q.Filter(FilterExpr::VarNeqVar(a, b));
  q.Filter(FilterExpr::VarEqTerm(a, p));
  q.Filter(FilterExpr::VarNeqTerm(a, p));
  q.Filter(FilterExpr::IsIri(a));
  q.Filter(FilterExpr::IsLiteral(b));
  const std::string text = q.ToSparql(dict);
  EXPECT_NE(text.find("FILTER(?a = ?b)"), std::string::npos);
  EXPECT_NE(text.find("FILTER(?a != ?b)"), std::string::npos);
  EXPECT_NE(text.find("FILTER(?a = <http://x/p>)"), std::string::npos);
  EXPECT_NE(text.find("FILTER(isIRI(?a))"), std::string::npos);
  EXPECT_NE(text.find("FILTER(isLiteral(?b))"), std::string::npos);
  EXPECT_NE(text.find("SELECT *"), std::string::npos);
}

TEST(SelectQueryTest, ToSparqlRendersOffsetAndLimit) {
  Dictionary dict;
  SelectQuery q;
  const VarId x = q.NewVar("x");
  q.Where(NodeRef::Variable(x), NodeRef::Variable(x), NodeRef::Variable(x));
  q.Offset(5).Limit(7);
  const std::string text = q.ToSparql(dict);
  EXPECT_NE(text.find("OFFSET 5"), std::string::npos);
  EXPECT_NE(text.find("LIMIT 7"), std::string::npos);
}

TEST(ResultSetTest, ColumnLookup) {
  ResultSet rs;
  rs.var_names = {"x", "y"};
  rs.rows = {{1, 2}};
  EXPECT_EQ(rs.ColumnOf("y"), 1);
  EXPECT_EQ(rs.ColumnOf("z"), -1);
  EXPECT_EQ(rs.size(), 1u);
  EXPECT_FALSE(rs.empty());
}

}  // namespace
}  // namespace sofya
