#include "util/status.h"

#include <gtest/gtest.h>

#include <string>

namespace sofya {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllNamedConstructorsSetMatchingCode) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
}

TEST(StatusTest, PredicatesAreExclusive) {
  Status s = Status::NotFound("x");
  EXPECT_FALSE(s.IsInvalidArgument());
  EXPECT_FALSE(s.IsInternal());
  EXPECT_FALSE(s.IsUnavailable());
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::ParseError("bad literal").WithContext("line 7");
  EXPECT_TRUE(s.IsParseError());
  EXPECT_EQ(s.message(), "line 7: bad literal");
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  Status s = Status::OK().WithContext("ctx");
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.message(), "");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "Ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, ValueOrReturnsValueOnSuccess) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v.value_or("fallback"), "hello");
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

namespace {
Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  SOFYA_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

StatusOr<int> Doubled(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return x * 2;
}

StatusOr<int> UsesAssignOr(int x) {
  SOFYA_ASSIGN_OR_RETURN(int d, Doubled(x));
  return d + 1;
}
}  // namespace

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  auto ok = UsesAssignOr(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  EXPECT_TRUE(UsesAssignOr(-3).status().IsInvalidArgument());
}

}  // namespace
}  // namespace sofya
