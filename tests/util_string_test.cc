#include "util/string_util.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/random.h"

namespace sofya {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, PreservesEmptyFields) {
  EXPECT_EQ(Split(",a,,b,", ','),
            (std::vector<std::string>{"", "a", "", "b", ""}));
}

TEST(SplitTest, NoDelimiterYieldsWhole) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitWhitespaceTest, DropsEmptyRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\n c  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(SplitJoinTest, RoundTrip) {
  const std::string original = "x|y|z|w";
  EXPECT_EQ(Join(Split(original, '|'), "|"), original);
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("\t\n hi"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("AbC-12"), "abc-12");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("http://x.org/a", "http://"));
  EXPECT_FALSE(StartsWith("ftp://", "http://"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_TRUE(EndsWith("file.nt", ".nt"));
  EXPECT_FALSE(EndsWith("file.nt", ".ttl"));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(IsDigitsTest, Cases) {
  EXPECT_TRUE(IsDigits("0123"));
  EXPECT_FALSE(IsDigits(""));
  EXPECT_FALSE(IsDigits("12a"));
  EXPECT_FALSE(IsDigits("-1"));
}

TEST(ReplaceAllTest, ReplacesEveryOccurrence) {
  EXPECT_EQ(ReplaceAll("a_b_c", "_", "-"), "a-b-c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");  // Non-overlapping.
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");   // Empty pattern: no-op.
  EXPECT_EQ(ReplaceAll("abc", "z", "x"), "abc");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(FormatDoubleTest, Digits) {
  EXPECT_EQ(FormatDouble(0.5, 2), "0.50");
  EXPECT_EQ(FormatDouble(1.0 / 3.0, 4), "0.3333");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(NTriplesEscapeTest, EscapesSpecials) {
  EXPECT_EQ(EscapeNTriples("a\"b\\c\nd\te\r"), "a\\\"b\\\\c\\nd\\te\\r");
}

TEST(NTriplesEscapeTest, UnescapeInverts) {
  EXPECT_EQ(UnescapeNTriples("a\\\"b\\\\c\\nd\\te\\r"), "a\"b\\c\nd\te\r");
}

TEST(NTriplesEscapeTest, UnknownEscapesKeptVerbatim) {
  EXPECT_EQ(UnescapeNTriples("a\\qb"), "a\\qb");
}

// Property: escape/unescape round-trips arbitrary byte strings.
class EscapeRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EscapeRoundTrip, RandomStringsSurvive) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    std::string s;
    const size_t len = rng.Below(40);
    for (size_t i = 0; i < len; ++i) {
      // Printable ASCII plus the escape-relevant controls.
      const char pool[] = "abcXYZ012 \"\\\n\r\t";
      s += pool[rng.Below(sizeof(pool) - 1)];
    }
    EXPECT_EQ(UnescapeNTriples(EscapeNTriples(s)), s) << "input: " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EscapeRoundTrip,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL));

}  // namespace
}  // namespace sofya
