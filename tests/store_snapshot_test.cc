#include "rdf/store_snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/knowledge_base.h"
#include "rdf/ntriples.h"
#include "rdf/triple.h"
#include "rdf/triple_store.h"

namespace sofya {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A store with mixed term kinds, several predicates, and one predicate
/// promoted past a tiny threshold, so snapshots cover the dedicated-group
/// path too.
struct Fixture {
  Dictionary dict;
  TripleStore store;
  TermId hot, cold, label;

  Fixture()
      : store(StoreOptions{/*num_hash_shards=*/2, /*promote_threshold=*/16,
                           /*split_factor=*/4}) {
    hot = dict.InternIri("http://kb/hot");
    cold = dict.InternIri("http://kb/cold");
    label = dict.InternIri("http://kb/label");
    for (int i = 0; i < 60; ++i) {
      store.Insert(dict.InternIri("http://kb/s" + std::to_string(i)), hot,
                   dict.InternIri("http://kb/o" + std::to_string(i % 7)));
    }
    store.Insert(dict.InternIri("http://kb/s0"), cold,
                 dict.Intern(Term::Literal("plain")));
    store.Insert(dict.InternIri("http://kb/s1"), cold,
                 dict.Intern(Term::TypedLiteral(
                     "42", "http://www.w3.org/2001/XMLSchema#integer")));
    store.Insert(dict.InternIri("http://kb/s2"), label,
                 dict.Intern(Term::LangLiteral("Wien", "de")));
    EXPECT_EQ(store.PromotedPredicates(), (std::vector<TermId>{hot}));
  }
};

void ExpectStoresEqual(const TripleStore& a, const TripleStore& b) {
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.Predicates(), b.Predicates());
  for (TermId p : a.Predicates()) {
    const PredicateStats sa = a.StatsFor(p);
    const PredicateStats sb = b.StatsFor(p);
    EXPECT_EQ(sa.facts, sb.facts) << "pred " << p;
    EXPECT_EQ(sa.distinct_subjects, sb.distinct_subjects) << "pred " << p;
    EXPECT_EQ(sa.distinct_objects, sb.distinct_objects) << "pred " << p;
    // Per-predicate enumeration order is part of the store contract
    // (sampling determinism), so compare unsorted.
    EXPECT_EQ(a.Match(TriplePattern(kNullTermId, p, kNullTermId)),
              b.Match(TriplePattern(kNullTermId, p, kNullTermId)));
  }
  const StoreStats ga = a.GlobalStats();
  const StoreStats gb = b.GlobalStats();
  EXPECT_EQ(ga.triples, gb.triples);
  EXPECT_EQ(ga.distinct_subjects, gb.distinct_subjects);
  EXPECT_EQ(ga.distinct_predicates, gb.distinct_predicates);
  EXPECT_EQ(ga.distinct_objects, gb.distinct_objects);
}

TEST(StoreSnapshotTest, RoundTripParity) {
  Fixture fx;
  const std::string path = TempPath("roundtrip.snap");
  auto saved = SaveStoreSnapshot(fx.store, fx.dict, path);
  ASSERT_TRUE(saved.ok()) << saved.status();
  EXPECT_EQ(saved->triples, fx.store.size());
  EXPECT_EQ(saved->terms, fx.dict.size());
  EXPECT_EQ(saved->groups, 1u);

  Dictionary dict2;
  TripleStore store2;
  auto loaded = LoadStoreSnapshot(path, &dict2, &store2);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(store2.is_mapped());
  EXPECT_EQ(loaded->triples, fx.store.size());

  // Dictionary parity: every id decodes to the identical term.
  ASSERT_EQ(dict2.size(), fx.dict.size());
  for (TermId id = fx.dict.min_id(); id <= fx.dict.max_id(); ++id) {
    EXPECT_EQ(dict2.Decode(id), fx.dict.Decode(id)) << "id " << id;
  }
  ExpectStoresEqual(fx.store, store2);
  EXPECT_EQ(store2.PromotedPredicates(), fx.store.PromotedPredicates());

  // Mapped membership checks (no hash set in mapped mode).
  EXPECT_TRUE(
      store2.Contains(*fx.store.Match(TriplePattern()).begin()));
  EXPECT_FALSE(store2.Contains(Triple(9999, 9999, 9999)));
}

TEST(StoreSnapshotTest, MappedStoreThawsOnFirstWrite) {
  Fixture fx;
  const std::string path = TempPath("thaw.snap");
  ASSERT_TRUE(SaveStoreSnapshot(fx.store, fx.dict, path).ok());

  Dictionary dict2;
  TripleStore store2;
  ASSERT_TRUE(LoadStoreSnapshot(path, &dict2, &store2).ok());
  ASSERT_TRUE(store2.is_mapped());
  const uint64_t epoch = store2.mutation_epoch();

  // First write thaws and behaves like a normal store.
  EXPECT_TRUE(store2.Insert(1, fx.cold, 2));
  EXPECT_FALSE(store2.is_mapped());
  EXPECT_GT(store2.mutation_epoch(), epoch);
  EXPECT_EQ(store2.size(), fx.store.size() + 1);
  EXPECT_TRUE(store2.Contains(1, fx.cold, 2));
  // Duplicate insert of a mapped triple is detected post-thaw. Use a `hot`
  // triple so the earlier `cold` insert can't skew the stats below.
  const Triple existing =
      fx.store.Match(TriplePattern(kNullTermId, fx.hot, kNullTermId))[0];
  EXPECT_FALSE(store2.Insert(existing));
  // Erase works and stats follow.
  ASSERT_TRUE(store2.Erase(existing));
  EXPECT_EQ(store2.StatsFor(existing.predicate).facts,
            fx.store.StatsFor(existing.predicate).facts - 1);
}

TEST(StoreSnapshotTest, KnowledgeBaseRoundTripThroughNTriples) {
  KnowledgeBase kb("kb1", "http://kb1/");
  kb.AddFact("a", "knows", "b");
  kb.AddFact("a", "knows", "c");
  kb.AddLiteralFact("a", "age", "30");
  const std::string path = TempPath("kb.snap");
  auto saved = kb.SaveSnapshot(path);
  ASSERT_TRUE(saved.ok()) << saved.status();

  KnowledgeBase kb2("kb2", "http://kb1/");
  auto loaded = kb2.LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(kb2.size(), kb.size());
  // The serialized N-Triples documents agree line for line.
  auto nt1 = WriteNTriplesString(kb.store(), kb.dict());
  auto nt2 = WriteNTriplesString(kb2.store(), kb2.dict());
  ASSERT_TRUE(nt1.ok());
  ASSERT_TRUE(nt2.ok());
  EXPECT_EQ(*nt1, *nt2);
  // A loaded KB rejects a second load (non-empty).
  EXPECT_FALSE(kb2.LoadSnapshot(path).ok());
}

TEST(StoreSnapshotTest, CorruptPayloadByteIsRejected) {
  Fixture fx;
  const std::string path = TempPath("corrupt.snap");
  ASSERT_TRUE(SaveStoreSnapshot(fx.store, fx.dict, path).ok());
  std::string bytes = ReadFile(path);
  ASSERT_GT(bytes.size(), 200u);
  bytes[bytes.size() / 2] ^= 0x5a;  // Flip one payload byte.
  WriteFile(path, bytes);

  Dictionary dict2;
  TripleStore store2;
  auto loaded = LoadStoreSnapshot(path, &dict2, &store2);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsParseError()) << loaded.status();
}

TEST(StoreSnapshotTest, TruncatedFileIsRejected) {
  Fixture fx;
  const std::string path = TempPath("trunc.snap");
  ASSERT_TRUE(SaveStoreSnapshot(fx.store, fx.dict, path).ok());
  std::string bytes = ReadFile(path);
  for (size_t keep : {bytes.size() - 1, bytes.size() / 2, size_t{40}}) {
    WriteFile(path, bytes.substr(0, keep));
    Dictionary dict2;
    TripleStore store2;
    auto loaded = LoadStoreSnapshot(path, &dict2, &store2);
    ASSERT_FALSE(loaded.ok()) << "kept " << keep;
    EXPECT_TRUE(loaded.status().IsParseError() ||
                loaded.status().IsInvalidArgument())
        << loaded.status();
  }
}

TEST(StoreSnapshotTest, BadMagicAndMissingFileRejected) {
  const std::string path = TempPath("notasnap.bin");
  WriteFile(path, "definitely not a snapshot file, much too short header??");
  Dictionary dict;
  TripleStore store;
  auto loaded = LoadStoreSnapshot(path, &dict, &store);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsParseError()) << loaded.status();
  EXPECT_FALSE(LooksLikeSnapshot(path));

  auto missing = LoadStoreSnapshot(TempPath("does_not_exist.snap"), &dict,
                                   &store);
  ASSERT_FALSE(missing.ok());

  // And the detector accepts a real snapshot.
  Fixture fx;
  const std::string good = TempPath("good.snap");
  ASSERT_TRUE(SaveStoreSnapshot(fx.store, fx.dict, good).ok());
  EXPECT_TRUE(LooksLikeSnapshot(good));
}

TEST(StoreSnapshotTest, LoadRequiresEmptyTargets) {
  Fixture fx;
  const std::string path = TempPath("nonempty.snap");
  ASSERT_TRUE(SaveStoreSnapshot(fx.store, fx.dict, path).ok());
  {
    Dictionary dict2;
    dict2.InternIri("occupied");
    TripleStore store2;
    EXPECT_FALSE(LoadStoreSnapshot(path, &dict2, &store2).ok());
  }
  {
    Dictionary dict2;
    TripleStore store2;
    store2.Insert(1, 2, 3);
    EXPECT_FALSE(LoadStoreSnapshot(path, &dict2, &store2).ok());
  }
}

TEST(StoreSnapshotTest, EmptyStoreRoundTrips) {
  Dictionary dict;
  TripleStore store;
  const std::string path = TempPath("empty.snap");
  ASSERT_TRUE(SaveStoreSnapshot(store, dict, path).ok());
  Dictionary dict2;
  TripleStore store2;
  auto loaded = LoadStoreSnapshot(path, &dict2, &store2);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(store2.size(), 0u);
  EXPECT_TRUE(store2.Match(TriplePattern()).empty());
}

}  // namespace
}  // namespace sofya
