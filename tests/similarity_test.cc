#include "similarity/string_metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "similarity/literal_matcher.h"

namespace sofya {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
}

TEST(NormalizedLevenshteinTest, Range) {
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("", ""), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("abc", "xyz"), 0.0);
  EXPECT_NEAR(NormalizedLevenshtein("abcd", "abcx"), 0.75, 1e-9);
}

TEST(JaroTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("DIXON", "DICKSONX"), 0.766667, 1e-5);
}

TEST(JaroWinklerTest, PrefixBoost) {
  const double jaro = JaroSimilarity("MARTHA", "MARHTA");
  const double jw = JaroWinklerSimilarity("MARTHA", "MARHTA");
  EXPECT_GT(jw, jaro);
  EXPECT_NEAR(jw, 0.961111, 1e-5);
  // No common prefix: no boost.
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abc", "xbc"),
                   JaroSimilarity("abc", "xbc"));
}

TEST(TokenJaccardTest, Values) {
  EXPECT_DOUBLE_EQ(TokenJaccard("", ""), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("a b", ""), 0.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("alpha beta", "beta alpha"), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("Alpha", "alpha"), 1.0);  // Case folded.
  EXPECT_NEAR(TokenJaccard("a b c", "b c d"), 0.5, 1e-9);
}

TEST(BigramDiceTest, Values) {
  EXPECT_DOUBLE_EQ(BigramDice("night", "night"), 1.0);
  EXPECT_NEAR(BigramDice("night", "nacht"), 0.25, 1e-9);
  EXPECT_DOUBLE_EQ(BigramDice("a", "b"), 0.0);  // Too short, unequal.
  EXPECT_DOUBLE_EQ(BigramDice("a", "a"), 1.0);
}

TEST(NormalizeTest, LowersStripsCollapses) {
  EXPECT_EQ(NormalizeForMatching("  Frank  SINATRA! "), "frank sinatra");
  EXPECT_EQ(NormalizeForMatching("a_b-c"), "a b c");
  EXPECT_EQ(NormalizeForMatching(""), "");
  EXPECT_EQ(NormalizeForMatching("...!"), "");
}

// Metric axioms: identity, symmetry, range — over assorted string pairs.
class MetricAxioms
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(MetricAxioms, AllMetricsInRangeAndSymmetric) {
  const auto& [a, b] = GetParam();
  for (auto metric : {NormalizedLevenshtein, JaroSimilarity, TokenJaccard,
                      BigramDice}) {
    const double ab = metric(a, b);
    const double ba = metric(b, a);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    EXPECT_DOUBLE_EQ(ab, ba) << "asymmetric on '" << a << "' / '" << b << "'";
    EXPECT_DOUBLE_EQ(metric(a, a), 1.0);
  }
  const double jw_ab = JaroWinklerSimilarity(a, b);
  EXPECT_GE(jw_ab, 0.0);
  EXPECT_LE(jw_ab, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, MetricAxioms,
    ::testing::Values(
        std::tuple{std::string("Frank Sinatra"), std::string("frank sinatra")},
        std::tuple{std::string("Sinatra, Frank"), std::string("Frank Sinatra")},
        std::tuple{std::string("a"), std::string("")},
        std::tuple{std::string("completely"), std::string("different")},
        std::tuple{std::string("J. Smith"), std::string("John Smith")},
        std::tuple{std::string("xy"), std::string("yx")}));

TEST(LiteralMatcherTest, ExactStringsMatch) {
  LiteralMatcher matcher;
  EXPECT_TRUE(matcher.Matches(Term::Literal("Frank Sinatra"),
                              Term::Literal("Frank Sinatra")));
}

TEST(LiteralMatcherTest, NormalizedVariantsMatch) {
  LiteralMatcher matcher;
  EXPECT_TRUE(matcher.Matches(Term::Literal("frank  sinatra"),
                              Term::Literal("Frank Sinatra")));
  EXPECT_TRUE(matcher.Matches(Term::Literal("Sinatra Frank"),
                              Term::Literal("Frank Sinatra")));  // Jaccard.
}

TEST(LiteralMatcherTest, TypoWithinThreshold) {
  LiteralMatcher matcher;
  EXPECT_TRUE(matcher.Matches(Term::Literal("Frank Sinatre"),
                              Term::Literal("Frank Sinatra")));
}

TEST(LiteralMatcherTest, DifferentValuesRejected) {
  LiteralMatcher matcher;
  EXPECT_FALSE(matcher.Matches(Term::Literal("Frank Sinatra"),
                               Term::Literal("Dean Martin")));
}

TEST(LiteralMatcherTest, NumericAwareComparesByValue) {
  LiteralMatcher matcher;
  EXPECT_TRUE(matcher.Matches(Term::Literal("42"), Term::Literal("42.0")));
  EXPECT_FALSE(matcher.Matches(Term::Literal("42"), Term::Literal("43")));
  // Close years are different years.
  EXPECT_FALSE(matcher.Matches(Term::Literal("1943"), Term::Literal("1944")));
  // Number vs non-number never match by value.
  EXPECT_FALSE(matcher.Matches(Term::Literal("42"), Term::Literal("forty")));
}

TEST(LiteralMatcherTest, NumericAwareOffFallsBackToStrings) {
  LiteralMatcherOptions options;
  options.numeric_aware = false;
  options.threshold = 0.7;
  LiteralMatcher matcher(options);
  EXPECT_TRUE(matcher.Matches(Term::Literal("1943"), Term::Literal("1944")));
}

TEST(LiteralMatcherTest, NonLiteralsMatchOnlyExactly) {
  LiteralMatcher matcher;
  EXPECT_DOUBLE_EQ(matcher.Score(Term::Iri("a"), Term::Iri("a")), 1.0);
  EXPECT_DOUBLE_EQ(matcher.Score(Term::Iri("a"), Term::Iri("b")), 0.0);
  EXPECT_DOUBLE_EQ(matcher.Score(Term::Iri("a"), Term::Literal("a")), 0.0);
}

TEST(LiteralMatcherTest, MetricSelectionChangesScores) {
  LiteralMatcherOptions lev;
  lev.metric = StringMetric::kLevenshtein;
  LiteralMatcherOptions jac;
  jac.metric = StringMetric::kTokenJaccard;
  const Term a = Term::Literal("alpha beta");
  const Term b = Term::Literal("beta alpha");
  EXPECT_DOUBLE_EQ(LiteralMatcher(jac).Score(a, b), 1.0);
  EXPECT_LT(LiteralMatcher(lev).Score(a, b), 1.0);
}

TEST(LiteralMatcherTest, MetricNames) {
  EXPECT_STREQ(StringMetricName(StringMetric::kHybrid), "hybrid");
  EXPECT_STREQ(StringMetricName(StringMetric::kLevenshtein), "levenshtein");
  EXPECT_STREQ(StringMetricName(StringMetric::kJaroWinkler), "jaro-winkler");
  EXPECT_STREQ(StringMetricName(StringMetric::kTokenJaccard),
               "token-jaccard");
  EXPECT_STREQ(StringMetricName(StringMetric::kBigramDice), "bigram-dice");
}

}  // namespace
}  // namespace sofya
