// Unit tests for the HTTP message layer (net/http.h): serialization,
// incremental parsing (Content-Length, chunked, read-to-EOF), URL parsing,
// and the loopback transport + client pool plumbing.

#include "net/http.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/http_client.h"
#include "net/loopback_transport.h"

namespace sofya {
namespace {

// ------------------------------------------------------------ serialization

TEST(HttpMessageTest, SerializeRequestAddsContentLength) {
  HttpRequest request;
  request.method = "POST";
  request.target = "/sparql";
  request.headers = {{"Host", "example.org"}, {"Accept", "text/plain"}};
  request.body = "SELECT";
  const std::string wire = SerializeHttpRequest(request);
  EXPECT_EQ(wire,
            "POST /sparql HTTP/1.1\r\n"
            "Host: example.org\r\n"
            "Accept: text/plain\r\n"
            "Content-Length: 6\r\n"
            "\r\n"
            "SELECT");
}

TEST(HttpMessageTest, RequestRoundTrip) {
  HttpRequest request;
  request.target = "/q";
  request.headers = {{"Host", "h"}};
  request.body = "hello body";
  HttpRequest reparsed;
  const std::string wire = SerializeHttpRequest(request);
  auto consumed = TryParseHttpRequest(wire, &reparsed);
  ASSERT_TRUE(consumed.ok()) << consumed.status().ToString();
  EXPECT_EQ(*consumed, wire.size());
  EXPECT_EQ(reparsed.method, "POST");
  EXPECT_EQ(reparsed.target, "/q");
  EXPECT_EQ(reparsed.body, "hello body");
}

TEST(HttpMessageTest, IncrementalRequestParseNeedsAllBytes) {
  HttpRequest request;
  request.headers = {{"Host", "h"}};
  request.body = "0123456789";
  const std::string wire = SerializeHttpRequest(request);
  HttpRequest out;
  for (size_t cut = 1; cut < wire.size(); ++cut) {
    auto consumed = TryParseHttpRequest(wire.substr(0, cut), &out);
    ASSERT_TRUE(consumed.ok()) << "cut " << cut;
    EXPECT_EQ(*consumed, 0u) << "cut " << cut;
  }
  auto consumed = TryParseHttpRequest(wire, &out);
  ASSERT_TRUE(consumed.ok());
  EXPECT_EQ(*consumed, wire.size());
}

TEST(HttpMessageTest, ResponseContentLengthParse) {
  const std::string wire =
      "HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhelloEXTRA";
  HttpResponse response;
  auto consumed = TryParseHttpResponse(wire, /*eof=*/false, &response);
  ASSERT_TRUE(consumed.ok());
  EXPECT_EQ(*consumed, wire.size() - 5);  // "EXTRA" not consumed.
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(response.reason, "OK");
  EXPECT_EQ(response.body, "hello");
}

TEST(HttpMessageTest, ResponseChunkedParse) {
  const std::string wire =
      "HTTP/1.1 200 OK\r\n"
      "Transfer-Encoding: chunked\r\n"
      "\r\n"
      "4\r\nWiki\r\n"
      "5\r\npedia\r\n"
      "0\r\n"
      "\r\n";
  HttpResponse response;
  auto consumed = TryParseHttpResponse(wire, /*eof=*/false, &response);
  ASSERT_TRUE(consumed.ok()) << consumed.status().ToString();
  EXPECT_EQ(*consumed, wire.size());
  EXPECT_EQ(response.body, "Wikipedia");
  // Partial chunked input: need more.
  for (size_t cut = 1; cut + 1 < wire.size(); ++cut) {
    HttpResponse partial;
    auto c = TryParseHttpResponse(wire.substr(0, cut), false, &partial);
    if (c.ok()) {
      EXPECT_EQ(*c, 0u) << "cut " << cut;
    }
  }
}

TEST(HttpMessageTest, ResponseReadToEofFraming) {
  const std::string wire = "HTTP/1.1 200 OK\r\n\r\nno framing header";
  HttpResponse response;
  auto need_more = TryParseHttpResponse(wire, /*eof=*/false, &response);
  ASSERT_TRUE(need_more.ok());
  EXPECT_EQ(*need_more, 0u);
  auto done = TryParseHttpResponse(wire, /*eof=*/true, &response);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(*done, wire.size());
  EXPECT_EQ(response.body, "no framing header");
}

TEST(HttpMessageTest, BodilessStatusesCompleteWithoutLength) {
  HttpResponse response;
  auto consumed =
      TryParseHttpResponse("HTTP/1.1 204 No Content\r\n\r\n", false,
                           &response);
  ASSERT_TRUE(consumed.ok());
  EXPECT_GT(*consumed, 0u);
  EXPECT_EQ(response.status_code, 204);
  EXPECT_TRUE(response.body.empty());
}

TEST(HttpMessageTest, TruncatedResponseAtEofIsUnavailable) {
  HttpResponse response;
  auto truncated_headers =
      TryParseHttpResponse("HTTP/1.1 200 OK\r\nContent-Le", true, &response);
  EXPECT_TRUE(truncated_headers.status().IsUnavailable());
  auto truncated_body = TryParseHttpResponse(
      "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nhal", true, &response);
  EXPECT_TRUE(truncated_body.status().IsUnavailable());
}

TEST(HttpMessageTest, MalformedMessagesAreParseErrors) {
  HttpResponse response;
  EXPECT_TRUE(TryParseHttpResponse("BOGUS/9 200\r\n\r\n", false, &response)
                  .status()
                  .IsParseError());
  EXPECT_TRUE(TryParseHttpResponse(
                  "HTTP/1.1 99999 X\r\n\r\n", false, &response)
                  .status()
                  .IsParseError());
  EXPECT_TRUE(TryParseHttpResponse(
                  "HTTP/1.1 200 OK\r\nContent-Length: nope\r\n\r\n", false,
                  &response)
                  .status()
                  .IsParseError());
  HttpRequest request;
  EXPECT_TRUE(TryParseHttpRequest("GET\r\n\r\n", &request)
                  .status()
                  .IsParseError());
  EXPECT_TRUE(TryParseHttpRequest(
                  "GET / HTTP/1.1\r\nBad Header : x\r\n\r\n", &request)
                  .status()
                  .IsParseError());
}

TEST(HttpMessageTest, HeaderLookupIsCaseInsensitive) {
  std::vector<HttpHeader> headers = {{"Content-Type", "text/html"}};
  ASSERT_NE(FindHeader(headers, "content-type"), nullptr);
  EXPECT_EQ(*FindHeader(headers, "CONTENT-TYPE"), "text/html");
  EXPECT_EQ(FindHeader(headers, "Accept"), nullptr);
  EXPECT_FALSE(WantsClose(headers));
  headers.push_back({"Connection", "Close"});
  EXPECT_TRUE(WantsClose(headers));
}

// ------------------------------------------------------- streaming reader

TEST(HttpResponseReaderTest, ContentLengthAcrossArbitrarySplits) {
  const std::string wire =
      "HTTP/1.1 200 OK\r\nContent-Length: 11\r\n\r\nhello world";
  for (size_t split = 0; split <= wire.size(); ++split) {
    HttpResponseReader reader;
    ASSERT_TRUE(reader.Feed(wire.substr(0, split)).ok()) << split;
    ASSERT_TRUE(reader.Feed(wire.substr(split)).ok()) << split;
    ASSERT_TRUE(reader.done()) << split;
    EXPECT_EQ(reader.response().body, "hello world");
    EXPECT_EQ(reader.leftover(), 0u);
    EXPECT_FALSE(reader.ate_connection());
  }
}

TEST(HttpResponseReaderTest, ChunkedOneByteAtATime) {
  const std::string wire =
      "HTTP/1.1 200 OK\r\n"
      "Transfer-Encoding: chunked\r\n"
      "\r\n"
      "4\r\nWiki\r\n"
      "5;ext=1\r\npedia\r\n"
      "0\r\n"
      "Trailer: x\r\n"
      "\r\n";
  HttpResponseReader reader;
  for (const char c : wire) {
    ASSERT_FALSE(reader.done());
    ASSERT_TRUE(reader.Feed({&c, 1}).ok());
  }
  ASSERT_TRUE(reader.done());
  EXPECT_EQ(reader.response().body, "Wikipedia");
  EXPECT_EQ(reader.leftover(), 0u);
}

TEST(HttpResponseReaderTest, LeftoverBytesMarkDesync) {
  HttpResponseReader reader;
  ASSERT_TRUE(reader
                  .Feed("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\n"
                        "okSPILL")
                  .ok());
  ASSERT_TRUE(reader.done());
  EXPECT_EQ(reader.response().body, "ok");
  EXPECT_EQ(reader.leftover(), 5u);  // "SPILL" belongs to no request.
}

TEST(HttpResponseReaderTest, EofFramedBodyConsumesConnection) {
  HttpResponseReader reader;
  ASSERT_TRUE(reader.Feed("HTTP/1.1 200 OK\r\n\r\npart1 ").ok());
  ASSERT_TRUE(reader.Feed("part2").ok());
  ASSERT_FALSE(reader.done());
  ASSERT_TRUE(reader.FinishEof().ok());
  ASSERT_TRUE(reader.done());
  EXPECT_EQ(reader.response().body, "part1 part2");
  EXPECT_TRUE(reader.ate_connection());
}

TEST(HttpResponseReaderTest, TruncationAndGarbageAreErrors) {
  HttpResponseReader truncated;
  ASSERT_TRUE(
      truncated.Feed("HTTP/1.1 200 OK\r\nContent-Length: 9\r\n\r\nhal").ok());
  EXPECT_TRUE(truncated.FinishEof().IsUnavailable());

  HttpResponseReader garbage;
  EXPECT_TRUE(garbage.Feed("SPARQL/9 hi\r\n\r\n").IsParseError());

  HttpResponseReader bad_chunk;
  ASSERT_TRUE(bad_chunk
                  .Feed("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n"
                        "\r\n")
                  .ok());
  EXPECT_TRUE(bad_chunk.Feed("zz\r\n").IsParseError());
}

// --------------------------------------------------------------------- URLs

TEST(UrlTest, ParsesHostPortTarget) {
  auto url = ParseUrl("http://dbpedia.org/sparql");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->host, "dbpedia.org");
  EXPECT_EQ(url->port, 80);
  EXPECT_EQ(url->target, "/sparql");

  auto with_port = ParseUrl("http://localhost:8890/sparql?default-graph=x");
  ASSERT_TRUE(with_port.ok());
  EXPECT_EQ(with_port->host, "localhost");
  EXPECT_EQ(with_port->port, 8890);
  EXPECT_EQ(with_port->target, "/sparql?default-graph=x");

  auto bare = ParseUrl("http://example.org");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->target, "/");

  auto v6 = ParseUrl("http://[::1]:8890/sparql");
  ASSERT_TRUE(v6.ok()) << v6.status().ToString();
  EXPECT_EQ(v6->host, "::1");  // Brackets stripped for getaddrinfo.
  EXPECT_EQ(v6->port, 8890);
  auto v6_bare = ParseUrl("http://[2001:db8::2]/q");
  ASSERT_TRUE(v6_bare.ok());
  EXPECT_EQ(v6_bare->host, "2001:db8::2");
  EXPECT_EQ(v6_bare->port, 80);
  EXPECT_TRUE(ParseUrl("http://[::1/q").status().IsInvalidArgument());
}

TEST(UrlTest, RejectsUnsupportedForms) {
  EXPECT_TRUE(ParseUrl("dbpedia.org/sparql").status().IsInvalidArgument());
  EXPECT_TRUE(ParseUrl("ftp://x.org/").status().IsInvalidArgument());
  EXPECT_TRUE(ParseUrl("https://x.org/").status().IsUnimplemented());
  EXPECT_TRUE(ParseUrl("http://:80/").status().IsInvalidArgument());
  EXPECT_TRUE(ParseUrl("http://x.org:0/").status().IsInvalidArgument());
  EXPECT_TRUE(ParseUrl("http://x.org:99999/").status().IsInvalidArgument());
  EXPECT_TRUE(ParseUrl("http://user@x.org/").status().IsInvalidArgument());
}

// ---------------------------------------------------- client over loopback

TEST(HttpClientTest, RoundTripOverLoopback) {
  LoopbackTransport transport([](const HttpRequest& request) {
    HttpResponse response;
    response.body = "echo:" + request.body;
    return response;
  });
  HttpClient client(&transport, ParseUrl("http://mock.test/x").value());
  HttpRequest request;
  request.body = "ping";
  auto response = client.RoundTrip(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  EXPECT_EQ(response->body, "echo:ping");
  // Keep-alive: a second exchange reuses the connection.
  ASSERT_TRUE(client.RoundTrip(request).ok());
  EXPECT_EQ(transport.connections_opened(), 1u);
}

TEST(HttpClientTest, HostHeaderCarriesPort) {
  std::string seen_host;
  LoopbackTransport transport([&seen_host](const HttpRequest& request) {
    if (const std::string* host = FindHeader(request.headers, "Host")) {
      seen_host = *host;
    }
    return HttpResponse{};
  });
  HttpClient client(&transport,
                    ParseUrl("http://mock.test:8890/sparql").value());
  ASSERT_TRUE(client.RoundTrip(HttpRequest{}).ok());
  EXPECT_EQ(seen_host, "mock.test:8890");
}

TEST(HttpClientTest, ConnectFailureSurfacesUnavailable) {
  LoopbackTransport transport(
      [](const HttpRequest&) { return HttpResponse{}; });
  transport.FailNextConnects(1);
  HttpClient client(&transport, ParseUrl("http://mock.test/").value());
  EXPECT_TRUE(client.RoundTrip(HttpRequest{}).status().IsUnavailable());
  EXPECT_TRUE(client.RoundTrip(HttpRequest{}).ok());  // Recovers.
}

TEST(HttpClientTest, OversizedResponseIsRejected) {
  LoopbackTransport transport([](const HttpRequest&) {
    HttpResponse response;
    response.body.assign(4096, 'x');
    return response;
  });
  HttpClientOptions options;
  options.max_response_bytes = 1024;
  HttpClient client(&transport, ParseUrl("http://mock.test/").value(),
                    options);
  EXPECT_TRUE(
      client.RoundTrip(HttpRequest{}).status().IsResourceExhausted());
}

// ----------------------------------------------- request framing guards

TEST(HttpFramingGuardTest, TransferEncodingRequestIsUnimplemented) {
  HttpRequest request;
  auto result = TryParseHttpRequest(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "0\r\n\r\n",
      &request);
  EXPECT_TRUE(result.status().IsUnimplemented()) << result.status();
}

TEST(HttpFramingGuardTest, TransferEncodingPlusContentLengthIsRejected) {
  // The classic request-smuggling shape (RFC 9112 §6.1): two framings in
  // one message, so two parsers can disagree about where it ends.
  HttpRequest request;
  auto result = TryParseHttpRequest(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
      "Content-Length: 4\r\n\r\nbody",
      &request);
  EXPECT_TRUE(result.status().IsParseError()) << result.status();
}

TEST(HttpFramingGuardTest, ConflictingDuplicateContentLengthIsRejected) {
  HttpRequest request;
  auto result = TryParseHttpRequest(
      "POST / HTTP/1.1\r\nContent-Length: 4\r\n"
      "Content-Length: 11\r\n\r\nbody",
      &request);
  EXPECT_TRUE(result.status().IsParseError()) << result.status();
}

TEST(HttpFramingGuardTest, AgreeingDuplicateContentLengthParses) {
  // Identical duplicates are legal-enough (RFC 9110 allows collapsing
  // them); only *conflicting* values are a smuggling vector.
  HttpRequest request;
  auto result = TryParseHttpRequest(
      "POST / HTTP/1.1\r\nContent-Length: 4\r\n"
      "Content-Length: 4\r\n\r\nbody",
      &request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(request.body, "body");
}

// ---------------------------------------- percent / form-urlencoded codecs

TEST(UrlCodecTest, PercentEncodeCoversReservedAndPassesUnreserved) {
  EXPECT_EQ(PercentEncode("AZaz09-._~"), "AZaz09-._~");
  EXPECT_EQ(PercentEncode("a b&c=d?e"), "a%20b%26c%3Dd%3Fe");
  EXPECT_EQ(PercentEncode("100%"), "100%25");
}

TEST(UrlCodecTest, FormEncodeUsesPlusForSpace) {
  EXPECT_EQ(FormUrlEncode("SELECT ?s WHERE"), "SELECT+%3Fs+WHERE");
}

TEST(UrlCodecTest, DecodeRoundTripsUtf8Bytes) {
  const std::string raw = "caf\xC3\xA9 \xE2\x82\xAC+?&=%";
  auto decoded = PercentDecode(PercentEncode(raw));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, raw);
  auto form = PercentDecode(FormUrlEncode(raw), /*plus_as_space=*/true);
  ASSERT_TRUE(form.ok()) << form.status();
  EXPECT_EQ(*form, raw);
}

TEST(UrlCodecTest, PlusIsSpaceOnlyInFormMode) {
  EXPECT_EQ(PercentDecode("a+b").value(), "a+b");
  EXPECT_EQ(PercentDecode("a+b", /*plus_as_space=*/true).value(), "a b");
}

TEST(UrlCodecTest, TruncatedAndMalformedEscapesAreRejected) {
  EXPECT_TRUE(PercentDecode("%").status().IsParseError());
  EXPECT_TRUE(PercentDecode("abc%A").status().IsParseError());
  EXPECT_TRUE(PercentDecode("%zz").status().IsParseError());
  EXPECT_TRUE(PercentDecode("ok%2").status().IsParseError());
}

TEST(UrlCodecTest, ParseQueryStringDecodesOrderedPairs) {
  auto params = ParseQueryString("query=SELECT+%3Fs&default-graph-uri=&x");
  ASSERT_TRUE(params.ok()) << params.status();
  ASSERT_EQ(params->size(), 3u);
  EXPECT_EQ((*params)[0].key, "query");
  EXPECT_EQ((*params)[0].value, "SELECT ?s");
  EXPECT_EQ((*params)[1].key, "default-graph-uri");
  EXPECT_EQ((*params)[1].value, "");
  EXPECT_EQ((*params)[2].key, "x");
  EXPECT_EQ((*params)[2].value, "");

  EXPECT_TRUE(ParseQueryString("a=%GG").status().IsParseError());
}

TEST(UrlCodecTest, SplitTargetSeparatesPathAndQuery) {
  std::string_view path, query;
  SplitTarget("/sparql?query=x&y=1", &path, &query);
  EXPECT_EQ(path, "/sparql");
  EXPECT_EQ(query, "query=x&y=1");
  SplitTarget("/sparql", &path, &query);
  EXPECT_EQ(path, "/sparql");
  EXPECT_EQ(query, "");
}

}  // namespace
}  // namespace sofya
