#include "endpoint/endpoint.h"

#include <gtest/gtest.h>

#include "endpoint/local_endpoint.h"
#include "endpoint/paged_select.h"
#include "endpoint/retrying_endpoint.h"
#include "endpoint/query_forms.h"
#include "endpoint/throttled_endpoint.h"
#include "rdf/knowledge_base.h"

namespace sofya {
namespace {

/// Fixture: one KB with 10 facts of predicate p plus a label.
class EndpointTest : public ::testing::Test {
 protected:
  EndpointTest() : kb_("testkb", "http://t.org/") {
    for (int i = 0; i < 10; ++i) {
      kb_.AddFact("s" + std::to_string(i), "p", "o" + std::to_string(i % 3));
    }
    kb_.AddLiteralFact("s0", "label", "zero");
    p_ = kb_.RelationId("ontology/p");
    // Relations are minted under base + local in AddFact; RelationId uses
    // base + local, so look the predicate up directly.
    p_ = kb_.dict().LookupIri("http://t.org/p");
  }

  KnowledgeBase kb_;
  TermId p_ = kNullTermId;
};

TEST_F(EndpointTest, SelectCountsQueriesAndRows) {
  LocalEndpoint ep(&kb_);
  auto result = ep.Select(queries::FactsOfPredicate(p_));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 10u);
  EXPECT_EQ(ep.stats().queries, 1u);
  EXPECT_EQ(ep.stats().rows_returned, 10u);
  EXPECT_GT(ep.stats().bytes_estimated, 0u);
}

TEST_F(EndpointTest, ResetStatsClears) {
  LocalEndpoint ep(&kb_);
  ASSERT_TRUE(ep.Select(queries::FactsOfPredicate(p_)).ok());
  ep.ResetStats();
  EXPECT_EQ(ep.stats().queries, 0u);
  EXPECT_EQ(ep.stats().rows_returned, 0u);
}

TEST_F(EndpointTest, AskReturnsExistence) {
  LocalEndpoint ep(&kb_);
  auto yes = ep.Ask(queries::FactsOfPredicate(p_));
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  auto no = ep.Ask(queries::FactsOfPredicate(
      ep.EncodeTerm(Term::Iri("http://t.org/absent"))));
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
}

TEST_F(EndpointTest, EncodeLookupDecode) {
  LocalEndpoint ep(&kb_);
  const Term t = Term::Iri("http://elsewhere/x");
  EXPECT_EQ(ep.LookupTerm(t), kNullTermId);
  const TermId id = ep.EncodeTerm(t);
  EXPECT_NE(id, kNullTermId);
  EXPECT_EQ(ep.LookupTerm(t), id);
  auto decoded = ep.DecodeTerm(id);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, t);
  EXPECT_TRUE(ep.DecodeTerm(999999).status().IsNotFound());
}

TEST_F(EndpointTest, NameAndBaseIri) {
  LocalEndpoint ep(&kb_);
  EXPECT_EQ(ep.name(), "testkb");
  EXPECT_EQ(ep.base_iri(), "http://t.org/");
}

TEST_F(EndpointTest, ThrottledBudgetExhausts) {
  LocalEndpoint inner(&kb_);
  ThrottleOptions options;
  options.query_budget = 2;
  options.failure_rate = 0.0;
  ThrottledEndpoint ep(&inner, options);

  EXPECT_TRUE(ep.Select(queries::FactsOfPredicate(p_)).ok());
  EXPECT_EQ(ep.remaining_budget(), 1u);
  EXPECT_TRUE(ep.Select(queries::FactsOfPredicate(p_)).ok());
  auto denied = ep.Select(queries::FactsOfPredicate(p_));
  EXPECT_TRUE(denied.status().IsResourceExhausted());
  EXPECT_EQ(ep.remaining_budget(), 0u);
}

TEST_F(EndpointTest, ThrottledRowCapTruncates) {
  LocalEndpoint inner(&kb_);
  ThrottleOptions options;
  options.max_rows_per_query = 4;
  ThrottledEndpoint ep(&inner, options);
  auto result = ep.Select(queries::FactsOfPredicate(p_));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 4u);
}

TEST_F(EndpointTest, ThrottledRowCapRespectsTighterClientLimit) {
  LocalEndpoint inner(&kb_);
  ThrottleOptions options;
  options.max_rows_per_query = 4;
  ThrottledEndpoint ep(&inner, options);
  auto result = ep.Select(queries::FactsOfPredicate(p_, /*limit=*/2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);
}

TEST_F(EndpointTest, ThrottledLatencyAccumulates) {
  LocalEndpoint inner(&kb_);
  ThrottleOptions options;
  options.base_latency_ms = 100.0;
  options.per_row_latency_ms = 1.0;
  options.jitter_ms = 0.0;
  ThrottledEndpoint ep(&inner, options);
  ASSERT_TRUE(ep.Select(queries::FactsOfPredicate(p_)).ok());
  EXPECT_DOUBLE_EQ(ep.stats().simulated_latency_ms, 110.0);
}

TEST_F(EndpointTest, FailureInjectionIsSeededAndCharged) {
  LocalEndpoint inner(&kb_);
  ThrottleOptions options;
  options.failure_rate = 1.0;
  ThrottledEndpoint ep(&inner, options);
  auto result = ep.Select(queries::FactsOfPredicate(p_));
  EXPECT_TRUE(result.status().IsUnavailable());
  EXPECT_EQ(ep.stats().failures_injected, 1u);
  EXPECT_EQ(ep.queries_issued(), 1u);  // Budget charged on failure.
}

TEST_F(EndpointTest, FailureInjectionDeterministicUnderSeed) {
  auto run = [&](uint64_t seed) {
    LocalEndpoint inner(&kb_);
    ThrottleOptions options;
    options.failure_rate = 0.5;
    options.seed = seed;
    ThrottledEndpoint ep(&inner, options);
    std::vector<bool> outcomes;
    for (int i = 0; i < 20; ++i) {
      outcomes.push_back(ep.Select(queries::FactsOfPredicate(p_)).ok());
    }
    return outcomes;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST_F(EndpointTest, RetryingEndpointAbsorbsTransientFailures) {
  LocalEndpoint inner(&kb_);
  ThrottleOptions options;
  options.failure_rate = 0.5;
  options.seed = 11;
  ThrottledEndpoint flaky(&inner, options);
  RetryOptions retry;
  retry.max_retries = 20;
  retry.initial_backoff_ms = 0.0;  // Deterministic injector; don't wait.
  RetryingEndpoint ep(&flaky, retry);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(ep.Select(queries::FactsOfPredicate(p_)).ok());
  }
  EXPECT_GT(ep.retries_performed(), 0u);
}

TEST_F(EndpointTest, RetryingEndpointDoesNotRetryNonTransient) {
  LocalEndpoint inner(&kb_);
  ThrottleOptions options;
  options.query_budget = 1;
  ThrottledEndpoint limited(&inner, options);
  RetryingEndpoint ep(&limited);
  ASSERT_TRUE(ep.Select(queries::FactsOfPredicate(p_)).ok());
  auto denied = ep.Select(queries::FactsOfPredicate(p_));
  EXPECT_TRUE(denied.status().IsResourceExhausted());
  EXPECT_EQ(ep.retries_performed(), 0u);  // Budget errors never retried.
}

TEST_F(EndpointTest, RetryingEndpointGivesUpAfterMaxRetries) {
  LocalEndpoint inner(&kb_);
  ThrottleOptions options;
  options.failure_rate = 1.0;
  ThrottledEndpoint dead(&inner, options);
  RetryOptions retry;
  retry.max_retries = 2;
  retry.initial_backoff_ms = 0.0;
  RetryingEndpoint ep(&dead, retry);
  auto result = ep.Select(queries::FactsOfPredicate(p_));
  EXPECT_TRUE(result.status().IsUnavailable());
  EXPECT_EQ(ep.retries_performed(), 2u);
}

TEST_F(EndpointTest, PagedSelectMergesAllPages) {
  LocalEndpoint ep(&kb_);
  PagedSelectOptions options;
  options.page_size = 3;
  auto merged = PagedSelect(&ep, queries::FactsOfPredicate(p_), options);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->rows.size(), 10u);
  // 10 rows at page size 3 => 4 requests (last one short).
  EXPECT_EQ(ep.stats().queries, 4u);
}

TEST_F(EndpointTest, PagedSelectHonorsMaxRowsAndQueryLimit) {
  LocalEndpoint ep(&kb_);
  PagedSelectOptions options;
  options.page_size = 3;
  options.max_rows = 5;
  auto merged = PagedSelect(&ep, queries::FactsOfPredicate(p_), options);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->rows.size(), 5u);

  auto limited =
      PagedSelect(&ep, queries::FactsOfPredicate(p_, /*limit=*/4), options);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->rows.size(), 4u);
}

TEST_F(EndpointTest, PagedSelectRetriesTransientFailures) {
  LocalEndpoint inner(&kb_);
  ThrottleOptions options;
  options.failure_rate = 0.45;
  options.seed = 3;
  ThrottledEndpoint flaky(&inner, options);
  PagedSelectOptions page_options;
  page_options.page_size = 3;
  page_options.retry.max_retries = 10;
  page_options.retry.initial_backoff_ms = 0.0;  // Keep the test instant.
  auto merged = PagedSelect(&flaky, queries::FactsOfPredicate(p_),
                            page_options);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->rows.size(), 10u);
}

TEST_F(EndpointTest, PagedSelectRejectsZeroPageSize) {
  LocalEndpoint ep(&kb_);
  PagedSelectOptions options;
  options.page_size = 0;
  EXPECT_TRUE(PagedSelect(&ep, queries::FactsOfPredicate(p_), options)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(EndpointTest, QueryFormsShapes) {
  LocalEndpoint ep(&kb_);
  const TermId s0 = ep.LookupTerm(Term::Iri("http://t.org/s0"));
  ASSERT_NE(s0, kNullTermId);

  auto objects = ep.Select(queries::ObjectsOf(s0, p_));
  ASSERT_TRUE(objects.ok());
  EXPECT_EQ(objects->rows.size(), 1u);

  auto facts = ep.Select(queries::FactsOfSubject(s0));
  ASSERT_TRUE(facts.ok());
  EXPECT_EQ(facts->rows.size(), 2u);  // p fact + label.

  const TermId o0 = ep.LookupTerm(Term::Iri("http://t.org/o0"));
  auto predicates = ep.Select(queries::PredicatesBetween(s0, o0));
  ASSERT_TRUE(predicates.ok());
  EXPECT_EQ(predicates->rows.size(), 1u);
  EXPECT_EQ(predicates->rows[0][0], p_);

  auto distinct_subjects = ep.Select(queries::SubjectsOfPredicate(p_));
  ASSERT_TRUE(distinct_subjects.ok());
  EXPECT_EQ(distinct_subjects->rows.size(), 10u);
}

}  // namespace
}  // namespace sofya
