#include "sampling/simple_sampler.h"

#include <gtest/gtest.h>

#include "endpoint/local_endpoint.h"
#include "mining/confidence.h"
#include "sampling/unbiased_sampler.h"
#include "synth/presets.h"
#include "synth/world_generator.h"

namespace sofya {
namespace {

/// Hand-built micro world with exactly known evidence:
///   K' (cand):  a1 r' x1 ; a1 r' q1(unlinked) ; b1 r' y1 ; c1 r' z1
///   K  (ref):   a2 r  x2 ; b2 r  w2           ; (c2 has no r facts)
///   links: a1≡a2, b1≡b2, c1≡c2, x1≡x2, y1≡y2, z1≡z2  (q1 unlinked)
/// Expected SSE evidence vs (r' => r):
///   (a2,x2) confirmed, a has r           -> support
///   (b2,y2) unconfirmed, b has r (w2)    -> pca denominator
///   (c2,z2) unconfirmed, c has no r      -> cwa-only
///   => cwa = 1/3, pca = 1/2.
class MicroWorld {
 public:
  MicroWorld()
      : cand_kb_("cand", "http://c.org/"), ref_kb_("ref", "http://r.org/") {
    cand_kb_.AddFact("a1", "rp", "x1");
    cand_kb_.AddFact("a1", "rp", "q1");
    cand_kb_.AddFact("b1", "rp", "y1");
    cand_kb_.AddFact("c1", "rp", "z1");
    ref_kb_.AddFact("a2", "r", "x2");
    ref_kb_.AddFact("b2", "r", "w2");
    for (const auto& [l, r] : std::initializer_list<
             std::pair<const char*, const char*>>{{"a1", "a2"},
                                                  {"b1", "b2"},
                                                  {"c1", "c2"},
                                                  {"x1", "x2"},
                                                  {"y1", "y2"},
                                                  {"z1", "z2"}}) {
      links_.AddLink(Term::Iri(std::string("http://c.org/") + l),
                     Term::Iri(std::string("http://r.org/") + r));
    }
  }

  KnowledgeBase cand_kb_, ref_kb_;
  SameAsIndex links_;
};

TEST(SimpleSamplerTest, MicroWorldEvidenceMatchesHandComputation) {
  MicroWorld world;
  LocalEndpoint cand(&world.cand_kb_);
  LocalEndpoint ref(&world.ref_kb_);
  CrossKbTranslator to_ref(&world.links_, "http://r.org/");
  SamplerOptions options;
  options.sample_size = 10;
  SimpleSampler sampler(&cand, &ref, &to_ref, options);

  auto evidence = sampler.CollectEvidence(Term::Iri("http://c.org/rp"),
                                          Term::Iri("http://r.org/r"));
  ASSERT_TRUE(evidence.ok());
  EXPECT_EQ(evidence->total_pairs(), 3u);  // q1 ignored (no link).
  EXPECT_EQ(evidence->support(), 1u);
  EXPECT_EQ(evidence->pca_body_size(), 2u);
  EXPECT_DOUBLE_EQ(CwaConfidence(*evidence), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(PcaConfidence(*evidence), 0.5);
}

TEST(SimpleSamplerTest, SampleSizeLimitsSubjects) {
  MicroWorld world;
  LocalEndpoint cand(&world.cand_kb_);
  LocalEndpoint ref(&world.ref_kb_);
  CrossKbTranslator to_ref(&world.links_, "http://r.org/");
  SamplerOptions options;
  options.sample_size = 2;
  SimpleSampler sampler(&cand, &ref, &to_ref, options);
  auto sample = sampler.DrawSample(Term::Iri("http://c.org/rp"));
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->subjects.size(), 2u);
  EXPECT_EQ(sample->kind, RelationKind::kEntityEntity);
}

TEST(SimpleSamplerTest, UnknownRelationYieldsEmptySample) {
  MicroWorld world;
  LocalEndpoint cand(&world.cand_kb_);
  LocalEndpoint ref(&world.ref_kb_);
  CrossKbTranslator to_ref(&world.links_, "http://r.org/");
  SimpleSampler sampler(&cand, &ref, &to_ref);
  auto sample = sampler.DrawSample(Term::Iri("http://c.org/absent"));
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->kind, RelationKind::kEmpty);
  EXPECT_TRUE(sample->subjects.empty());

  auto evidence = sampler.ScoreAgainst(*sample, Term::Iri("http://r.org/r"));
  ASSERT_TRUE(evidence.ok());
  EXPECT_TRUE(evidence->empty());
}

TEST(SimpleSamplerTest, ProbeKindDetectsLiteralRelations) {
  KnowledgeBase kb("k", "http://k.org/");
  kb.AddLiteralFact("s1", "label", "one");
  kb.AddLiteralFact("s2", "label", "two");
  kb.AddFact("s1", "rel", "s2");
  LocalEndpoint ep(&kb);
  SameAsIndex links;
  CrossKbTranslator translator(&links, "http://other.org/");
  SimpleSampler sampler(&ep, &ep, &translator);
  EXPECT_EQ(sampler.ProbeKind(Term::Iri("http://k.org/label")).value(),
            RelationKind::kEntityLiteral);
  EXPECT_EQ(sampler.ProbeKind(Term::Iri("http://k.org/rel")).value(),
            RelationKind::kEntityEntity);
  EXPECT_EQ(sampler.ProbeKind(Term::Iri("http://k.org/none")).value(),
            RelationKind::kEmpty);
}

TEST(SimpleSamplerTest, LiteralRelationScoredThroughMatcher) {
  KnowledgeBase cand("cand", "http://c.org/");
  KnowledgeBase ref("ref", "http://r.org/");
  cand.AddLiteralFact("a1", "label", "Frank Sinatra");
  cand.AddLiteralFact("b1", "label", "Dean Martin");
  ref.AddLiteralFact("a2", "name", "frank sinatra");  // Case-noised twin.
  ref.AddLiteralFact("b2", "name", "Someone Else");
  SameAsIndex links;
  links.AddLink(Term::Iri("http://c.org/a1"), Term::Iri("http://r.org/a2"));
  links.AddLink(Term::Iri("http://c.org/b1"), Term::Iri("http://r.org/b2"));

  LocalEndpoint cand_ep(&cand);
  LocalEndpoint ref_ep(&ref);
  CrossKbTranslator to_ref(&links, "http://r.org/");
  SimpleSampler sampler(&cand_ep, &ref_ep, &to_ref);
  auto evidence = sampler.CollectEvidence(Term::Iri("http://c.org/label"),
                                          Term::Iri("http://r.org/name"));
  ASSERT_TRUE(evidence.ok());
  EXPECT_EQ(evidence->total_pairs(), 2u);
  EXPECT_EQ(evidence->support(), 1u);       // Only Sinatra matches.
  EXPECT_EQ(evidence->pca_body_size(), 2u); // Both subjects have name facts.
}

TEST(SimpleSamplerTest, DeterministicUnderSeed) {
  auto world = std::move(GenerateWorld(MoviesWorldSpec())).value();
  LocalEndpoint cand(world.kb1.get());
  LocalEndpoint ref(world.kb2.get());
  CrossKbTranslator to_ref(&world.links, ref.base_iri());
  SamplerOptions options;
  options.seed = 99;
  const Term r_sub = Term::Iri("http://kb1.sofya.org/ontology/hasDirector");

  SimpleSampler s1(&cand, &ref, &to_ref, options);
  SimpleSampler s2(&cand, &ref, &to_ref, options);
  auto a = s1.DrawSample(r_sub);
  auto b = s2.DrawSample(r_sub);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->subjects.size(), b->subjects.size());
  for (size_t i = 0; i < a->subjects.size(); ++i) {
    EXPECT_EQ(a->subjects[i].subject_candidate,
              b->subjects[i].subject_candidate);
  }
}

TEST(SimpleSamplerTest, DifferentRelationsDrawDifferentSubjects) {
  auto world = std::move(GenerateWorld(MoviesWorldSpec())).value();
  LocalEndpoint cand(world.kb1.get());
  LocalEndpoint ref(world.kb2.get());
  CrossKbTranslator to_ref(&world.links, ref.base_iri());
  SimpleSampler sampler(&cand, &ref, &to_ref);
  auto a = sampler.DrawSample(Term::Iri("http://kb1.sofya.org/ontology/hasDirector"));
  auto b = sampler.DrawSample(Term::Iri("http://kb1.sofya.org/ontology/hasProducer"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Shuffle seed is relation-keyed: subject sets should not be identical.
  ASSERT_FALSE(a->subjects.empty());
  ASSERT_FALSE(b->subjects.empty());
  bool any_difference = a->subjects.size() != b->subjects.size();
  for (size_t i = 0; !any_difference && i < a->subjects.size(); ++i) {
    any_difference = !(a->subjects[i].subject_candidate ==
                       b->subjects[i].subject_candidate);
  }
  EXPECT_TRUE(any_difference);
}

class UbsFixture : public ::testing::Test {
 protected:
  UbsFixture()
      : world_(std::move(GenerateWorld(MoviesWorldSpec())).value()),
        cand_(world_.kb1.get()),
        ref_(world_.kb2.get()),
        to_ref_(&world_.links, ref_.base_iri()),
        to_cand_(&world_.links, cand_.base_iri()) {}

  Term Director() const {
    return Term::Iri("http://kb1.sofya.org/ontology/hasDirector");
  }
  Term Producer() const {
    return Term::Iri("http://kb1.sofya.org/ontology/hasProducer");
  }
  Term DirectedBy() const {
    return Term::Iri("http://kb2.sofya.org/ontology/directedBy");
  }

  SynthWorld world_;
  LocalEndpoint cand_;
  LocalEndpoint ref_;
  CrossKbTranslator to_ref_;
  CrossKbTranslator to_cand_;
};

TEST_F(UbsFixture, ProbeFindsContradictionsAgainstTrapOnly) {
  UnbiasedSampler ubs(&cand_, &ref_, &to_ref_, &to_cand_);
  auto report = ubs.Probe(DirectedBy(), {Director(), Producer()});
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->SubsumptionHits(Producer()), 2u);
  EXPECT_EQ(report->SubsumptionHits(Director()), 0u);
  EXPECT_GT(report->rows_examined, 0u);
  EXPECT_GE(report->pairs_probed, 2u);
}

TEST_F(UbsFixture, FullyDisabledProbesCostNothing) {
  SamplerOptions options;
  UbsOptions ubs_options;
  ubs_options.enable_equivalence_filter = false;
  ubs_options.enable_subsumption_filter = false;
  UnbiasedSampler ubs(&cand_, &ref_, &to_ref_, &to_cand_, options,
                      ubs_options);
  const uint64_t before = cand_.stats().queries;
  auto report = ubs.Probe(DirectedBy(), {Director(), Producer()});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rows_examined, 0u);
  EXPECT_EQ(cand_.stats().queries, before);
}

TEST_F(UbsFixture, SubsumptionFilterAblationKeepsEquivalenceSide) {
  SamplerOptions options;
  UbsOptions ubs_options;
  ubs_options.enable_subsumption_filter = false;
  UnbiasedSampler ubs(&cand_, &ref_, &to_ref_, &to_cand_, options,
                      ubs_options);
  auto report = ubs.Probe(DirectedBy(), {Director(), Producer()});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->SubsumptionHits(Producer()), 0u);
}

TEST_F(UbsFixture, SingleCandidateProducesNoPairProbes) {
  UnbiasedSampler ubs(&cand_, &ref_, &to_ref_, &to_cand_);
  auto report = ubs.Probe(DirectedBy(), {Producer()});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->pairs_probed, 0u);
}

TEST_F(UbsFixture, ReferenceSiblingProbeCatchesReverseTrap) {
  // Mirrored direction: head = kb1 hasProducer, candidate = kb2 directedBy.
  // directedBy => hasProducer is wrong; the reference siblings of
  // directedBy in kb1 include hasDirector, whose disagreements with
  // hasProducer expose it.
  UnbiasedSampler ubs(&ref_, &cand_, &to_cand_, &to_ref_);
  UbsReport report;
  ASSERT_TRUE(ubs.ProbeReferenceSiblings(Producer(), DirectedBy(),
                                         {Director()}, &report)
                  .ok());
  EXPECT_GT(report.SubsumptionHits(DirectedBy()), 0u);
}

}  // namespace
}  // namespace sofya
