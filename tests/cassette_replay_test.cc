// Record/replay parity end-to-end: an alignment recorded against live
// endpoints (in-process, loopback HTTP, and real-socket HTTP) replays from
// its cassettes with zero network and zero source dataset, reproducing the
// verdicts, the per-relation query counts, and the run-manifest root
// byte-for-byte — for any replay thread count.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/facade.h"
#include "core/run_manifest.h"
#include "endpoint/http_sparql_endpoint.h"
#include "endpoint/local_endpoint.h"
#include "endpoint/recording_endpoint.h"
#include "endpoint/replay_endpoint.h"
#include "endpoint/sparql_server.h"
#include "net/http.h"
#include "net/http_server.h"
#include "net/loopback_transport.h"
#include "synth/presets.h"
#include "synth/world_generator.h"

namespace sofya {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Everything one run commits to: relations in order, per-relation verdict
/// digests and query counts, and the serialized manifest.
struct RunRecord {
  std::vector<std::string> relations;
  std::vector<std::string> result_digests;
  std::vector<std::pair<uint64_t, uint64_t>> query_counts;
  std::string manifest_text;
  std::string root;
};

void CaptureRun(Sofya& sofya, RunRecord* out, size_t threads = 1) {
  auto relations = sofya.ReferenceRelations();
  ASSERT_TRUE(relations.ok()) << relations.status();
  out->relations = *relations;
  auto results = sofya.AlignAll(*relations, threads);
  ASSERT_TRUE(results.ok()) << results.status();
  for (const AlignmentResult* result : *results) {
    out->result_digests.push_back(DigestAlignmentResult(*result));
    out->query_counts.emplace_back(result->candidate_queries,
                                   result->reference_queries);
  }
  out->manifest_text = sofya.last_manifest().Serialize();
  out->root = sofya.last_manifest().root();
}

void ExpectRunsIdentical(const RunRecord& live, const RunRecord& replayed) {
  EXPECT_EQ(replayed.relations, live.relations);
  EXPECT_EQ(replayed.result_digests, live.result_digests);
  EXPECT_EQ(replayed.query_counts, live.query_counts);
  EXPECT_EQ(replayed.root, live.root);
  EXPECT_EQ(replayed.manifest_text, live.manifest_text);
}

SofyaOptions FastOptions() {
  SofyaOptions options;
  options.retry.initial_backoff_ms = 0.0;
  return options;
}

/// Replays DIR-saved cassettes strictly (no fallback) at `threads` and
/// checks the run is byte-identical to `live`.
void ExpectStrictReplayMatches(const std::string& cassette1,
                               const std::string& cassette2,
                               const SameAsIndex* links,
                               const RunRecord& live, size_t threads) {
  auto replay1 = ReplayEndpoint::Open(cassette1);
  ASSERT_TRUE(replay1.ok()) << replay1.status();
  auto replay2 = ReplayEndpoint::Open(cassette2);
  ASSERT_TRUE(replay2.ok()) << replay2.status();
  ReplayEndpoint* r1 = replay1->get();
  ReplayEndpoint* r2 = replay2->get();

  Sofya sofya(std::move(*replay1), std::move(*replay2), links,
              FastOptions());
  sofya.AttachJournals(r1, r2);
  RunRecord replayed;
  CaptureRun(sofya, &replayed, threads);
  EXPECT_EQ(r1->strict_misses(), 0u);
  EXPECT_EQ(r2->strict_misses(), 0u);
  ExpectRunsIdentical(live, replayed);
}

TEST(CassetteReplayTest, LocalBaseRecordThenReplayIsByteIdentical) {
  auto world = std::move(GenerateWorld(TinyWorldSpec())).value();
  const std::string c1 = TempPath("local_kb1.cass");
  const std::string c2 = TempPath("local_kb2.cass");

  RunRecord live;
  {
    LocalEndpoint base1(world.kb1.get());
    LocalEndpoint base2(world.kb2.get());
    auto recording1 = std::make_unique<RecordingEndpoint>(&base1);
    auto recording2 = std::make_unique<RecordingEndpoint>(&base2);
    RecordingEndpoint* r1 = recording1.get();
    RecordingEndpoint* r2 = recording2.get();
    Sofya sofya(std::move(recording1), std::move(recording2), &world.links,
                FastOptions());
    sofya.AttachJournals(r1, r2);
    CaptureRun(sofya, &live);
    if (HasFatalFailure()) return;
    EXPECT_EQ(r1->conflicts(), 0u);
    EXPECT_EQ(r2->conflicts(), 0u);
    ASSERT_TRUE(r1->Save(c1).ok());
    ASSERT_TRUE(r2->Save(c2).ok());
  }
  ASSERT_FALSE(live.relations.empty());

  // The recording endpoints are gone; replay runs purely off the cassettes.
  ExpectStrictReplayMatches(c1, c2, &world.links, live, /*threads=*/1);
  // Same cassette, four worker threads: the commutative query-stream digest
  // and the deterministic pipeline keep the root schedule-independent.
  ExpectStrictReplayMatches(c1, c2, &world.links, live, /*threads=*/4);
}

TEST(CassetteReplayTest, LoopbackHttpRecordThenReplayIsByteIdentical) {
  auto world = std::move(GenerateWorld(TinyWorldSpec())).value();
  const std::string c1 = TempPath("loopback_kb1.cass");
  const std::string c2 = TempPath("loopback_kb2.cass");

  RunRecord live;
  {
    SparqlServer candidate_server(world.kb1.get());
    SparqlServer reference_server(world.kb2.get());
    LoopbackTransport candidate_transport(
        candidate_server.LoopbackHandler("recorder"));
    LoopbackTransport reference_transport(
        reference_server.LoopbackHandler("recorder"));

    HttpSparqlEndpointOptions c_options;
    c_options.name = world.kb1->name();
    c_options.base_iri = world.kb1->base_iri();
    HttpSparqlEndpointOptions r_options;
    r_options.name = world.kb2->name();
    r_options.base_iri = world.kb2->base_iri();
    HttpSparqlEndpoint candidate(ParseUrl("http://kb1.test/sparql").value(),
                                 &candidate_transport, c_options);
    HttpSparqlEndpoint reference(ParseUrl("http://kb2.test/sparql").value(),
                                 &reference_transport, r_options);

    auto recording1 = std::make_unique<RecordingEndpoint>(&candidate);
    auto recording2 = std::make_unique<RecordingEndpoint>(&reference);
    RecordingEndpoint* r1 = recording1.get();
    RecordingEndpoint* r2 = recording2.get();
    Sofya sofya(std::move(recording1), std::move(recording2), &world.links,
                FastOptions());
    sofya.AttachJournals(r1, r2);
    CaptureRun(sofya, &live);
    if (HasFatalFailure()) return;
    EXPECT_GT(candidate_server.queries_answered(), 0u);
    ASSERT_TRUE(r1->Save(c1).ok());
    ASSERT_TRUE(r2->Save(c2).ok());
  }

  // Servers and transports are destroyed: the replay below talks HTTP to
  // nobody — every recorded wire interaction is served from the cassette.
  ExpectStrictReplayMatches(c1, c2, &world.links, live, /*threads=*/1);
}

TEST(CassetteReplayTest, RealSocketRecordThenReplayIsByteIdentical) {
  auto world = std::move(GenerateWorld(TinyWorldSpec())).value();
  const std::string c1 = TempPath("socket_kb1.cass");
  const std::string c2 = TempPath("socket_kb2.cass");

  RunRecord live;
  {
    SparqlServer candidate_server(world.kb1.get());
    SparqlServer reference_server(world.kb2.get());
    HttpServer candidate_http(candidate_server.HttpHandler());
    HttpServer reference_http(reference_server.HttpHandler());
    ASSERT_TRUE(candidate_http.Start().ok());
    ASSERT_TRUE(reference_http.Start().ok());

    HttpSparqlEndpointOptions c_options;
    c_options.name = world.kb1->name();
    c_options.base_iri = world.kb1->base_iri();
    HttpSparqlEndpointOptions r_options;
    r_options.name = world.kb2->name();
    r_options.base_iri = world.kb2->base_iri();
    auto candidate = HttpSparqlEndpoint::Create(
        "http://127.0.0.1:" + std::to_string(candidate_http.port()) +
            "/sparql",
        c_options);
    ASSERT_TRUE(candidate.ok()) << candidate.status().ToString();
    auto reference = HttpSparqlEndpoint::Create(
        "http://127.0.0.1:" + std::to_string(reference_http.port()) +
            "/sparql",
        r_options);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();

    auto recording1 = std::make_unique<RecordingEndpoint>(candidate->get());
    auto recording2 = std::make_unique<RecordingEndpoint>(reference->get());
    RecordingEndpoint* r1 = recording1.get();
    RecordingEndpoint* r2 = recording2.get();
    Sofya sofya(std::move(recording1), std::move(recording2), &world.links,
                FastOptions());
    sofya.AttachJournals(r1, r2);
    CaptureRun(sofya, &live);
    ASSERT_TRUE(r1->Save(c1).ok());
    ASSERT_TRUE(r2->Save(c2).ok());
    candidate_http.Stop();
    reference_http.Stop();
    if (HasFatalFailure()) return;
  }

  // Both servers are stopped; the replay needs no socket, no port, no KB.
  ExpectStrictReplayMatches(c1, c2, &world.links, live, /*threads=*/1);
}

TEST(CassetteReplayTest, ManifestDiffPinpointsConfigDivergence) {
  auto world = std::move(GenerateWorld(TinyWorldSpec())).value();
  const std::string c1 = TempPath("diverge_kb1.cass");
  const std::string c2 = TempPath("diverge_kb2.cass");

  RunRecord live;
  {
    LocalEndpoint base1(world.kb1.get());
    LocalEndpoint base2(world.kb2.get());
    auto recording1 = std::make_unique<RecordingEndpoint>(&base1);
    auto recording2 = std::make_unique<RecordingEndpoint>(&base2);
    RecordingEndpoint* r1 = recording1.get();
    RecordingEndpoint* r2 = recording2.get();
    Sofya sofya(std::move(recording1), std::move(recording2), &world.links,
                FastOptions());
    sofya.AttachJournals(r1, r2);
    CaptureRun(sofya, &live);
    if (HasFatalFailure()) return;
    ASSERT_TRUE(r1->Save(c1).ok());
    ASSERT_TRUE(r2->Save(c2).ok());
  }

  // Replay under a *different* threshold, leniently (a changed config may
  // probe beyond the recorded session) — the manifests must diverge, and
  // the first diverging entry must be the config entry, not some verdict
  // downstream of it.
  LocalEndpoint fallback1(world.kb1.get());
  LocalEndpoint fallback2(world.kb2.get());
  auto replay1 = ReplayEndpoint::Open(c1, &fallback1);
  ASSERT_TRUE(replay1.ok()) << replay1.status();
  auto replay2 = ReplayEndpoint::Open(c2, &fallback2);
  ASSERT_TRUE(replay2.ok()) << replay2.status();
  ReplayEndpoint* r1 = replay1->get();
  ReplayEndpoint* r2 = replay2->get();

  SofyaOptions diverged = FastOptions();
  diverged.aligner.threshold += 0.17;
  Sofya sofya(std::move(*replay1), std::move(*replay2), &world.links,
              diverged);
  sofya.AttachJournals(r1, r2);
  RunRecord replayed;
  CaptureRun(sofya, &replayed);
  if (HasFatalFailure()) return;

  EXPECT_NE(replayed.root, live.root);
  auto recorded_manifest = RunManifest::Parse(live.manifest_text);
  ASSERT_TRUE(recorded_manifest.ok()) << recorded_manifest.status();
  auto divergence =
      FirstDivergence(*recorded_manifest, sofya.last_manifest());
  ASSERT_TRUE(divergence.has_value());
  EXPECT_EQ(divergence->index, 0u);
  EXPECT_NE(divergence->what.find("config aligner"), std::string::npos)
      << divergence->what;
}

}  // namespace
}  // namespace sofya
