#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/table1.h"

namespace sofya {
namespace {

TEST(MetricsTest, PrecisionRecallF1Math) {
  PrecisionRecall pr;
  pr.true_positives = 8;
  pr.false_positives = 2;
  pr.false_negatives = 8;
  EXPECT_DOUBLE_EQ(pr.precision(), 0.8);
  EXPECT_DOUBLE_EQ(pr.recall(), 0.5);
  EXPECT_NEAR(pr.f1(), 2 * 0.8 * 0.5 / 1.3, 1e-9);
  EXPECT_EQ(pr.accepted(), 10u);
  EXPECT_EQ(pr.gold(), 16u);
  EXPECT_FALSE(pr.ToString().empty());
}

TEST(MetricsTest, EmptyDenominatorsAreZero) {
  PrecisionRecall pr;
  EXPECT_DOUBLE_EQ(pr.precision(), 0.0);
  EXPECT_DOUBLE_EQ(pr.recall(), 0.0);
  EXPECT_DOUBLE_EQ(pr.f1(), 0.0);
}

/// Fabricates a DirectionRun + GroundTruth to exercise scoring offline.
class ScoringFixture : public ::testing::Test {
 protected:
  ScoringFixture() {
    truth_.AddRelation("cand", "c:good", {"k1"});
    truth_.AddRelation("cand", "c:bad", {"k2"});
    truth_.AddRelation("cand", "c:missed", {"k3"});
    truth_.AddRelation("ref", "r:head1", {"k1"});
    truth_.AddRelation("ref", "r:head3", {"k3"});

    run_.candidate_kb = "cand";
    run_.reference_kb = "ref";
    run_.attempted_heads = {"r:head1", "r:head3"};

    MinedRuleRecord good;  // True rule, strong.
    good.body_iri = "c:good";
    good.head_iri = "r:head1";
    good.pca_conf = 0.9;
    good.cwa_conf = 0.7;
    good.pairs = 10;
    good.support = 8;
    run_.rules.push_back(good);

    MinedRuleRecord bad;  // Wrong rule, fooled PCA, flagged by UBS.
    bad.body_iri = "c:bad";
    bad.head_iri = "r:head1";
    bad.pca_conf = 0.8;
    bad.cwa_conf = 0.2;
    bad.pairs = 10;
    bad.support = 7;
    bad.ubs_subsumption_pruned = true;
    run_.rules.push_back(bad);
    // Gold pair (c:missed => r:head3) was never mined: a false negative.
  }

  GroundTruth truth_;
  DirectionRun run_;
};

TEST_F(ScoringFixture, ScoreAtThresholdWithoutUbs) {
  ScorePolicy policy;
  policy.tau = 0.5;
  policy.apply_ubs = false;
  PrecisionRecall pr = ScoreSubsumptions(run_, truth_, policy);
  EXPECT_EQ(pr.true_positives, 1u);   // good.
  EXPECT_EQ(pr.false_positives, 1u);  // bad survives without UBS.
  EXPECT_EQ(pr.false_negatives, 1u);  // missed.
}

TEST_F(ScoringFixture, UbsFlagPrunesWrongRule) {
  ScorePolicy policy;
  policy.tau = 0.5;
  policy.apply_ubs = true;
  PrecisionRecall pr = ScoreSubsumptions(run_, truth_, policy);
  EXPECT_EQ(pr.true_positives, 1u);
  EXPECT_EQ(pr.false_positives, 0u);
  EXPECT_DOUBLE_EQ(pr.precision(), 1.0);
}

TEST_F(ScoringFixture, HighTauRejectsEverything) {
  ScorePolicy policy;
  policy.tau = 0.95;
  PrecisionRecall pr = ScoreSubsumptions(run_, truth_, policy);
  EXPECT_EQ(pr.accepted(), 0u);
  EXPECT_EQ(pr.false_negatives, 2u);
}

TEST_F(ScoringFixture, CwaMeasureScoresDifferently) {
  ScorePolicy policy;
  policy.measure = ConfidenceMeasure::kCwa;
  policy.tau = 0.5;
  PrecisionRecall pr = ScoreSubsumptions(run_, truth_, policy);
  EXPECT_EQ(pr.true_positives, 1u);
  EXPECT_EQ(pr.false_positives, 0u);  // bad has cwa 0.2 < 0.5.
}

TEST_F(ScoringFixture, SupportGateRejectsThinRules) {
  ScorePolicy policy;
  policy.tau = 0.1;
  policy.min_support = 9;  // good has 8.
  PrecisionRecall pr = ScoreSubsumptions(run_, truth_, policy);
  EXPECT_EQ(pr.accepted(), 0u);
}

TEST_F(ScoringFixture, SweepFindsBestTau) {
  SweepResult sweep = SweepThreshold(run_, run_, truth_, {0.1, 0.5, 0.85, 0.95},
                                     ScorePolicy{});
  ASSERT_EQ(sweep.points.size(), 4u);
  // At 0.85 the bad rule (pca 0.8) drops while good (0.9) stays: best F1.
  EXPECT_DOUBLE_EQ(sweep.best_tau, 0.85);
  const SweepPoint* best = sweep.best();
  ASSERT_NE(best, nullptr);
  EXPECT_DOUBLE_EQ(best->dir1.precision(), 1.0);
}

TEST_F(ScoringFixture, EquivalenceScoring) {
  GroundTruth truth;
  truth.AddRelation("cand", "c:eq", {"k"});
  truth.AddRelation("cand", "c:sub", {"ksub"});
  truth.AddRelation("ref", "r:eq", {"k"});
  truth.AddRelation("ref", "r:union", {"k", "ksub"});

  DirectionRun run;
  run.candidate_kb = "cand";
  run.reference_kb = "ref";
  run.attempted_heads = {"r:eq", "r:union"};
  MinedRuleRecord correct;
  correct.body_iri = "c:eq";
  correct.head_iri = "r:eq";
  correct.equivalence = true;
  run.rules.push_back(correct);
  MinedRuleRecord wrong;  // Claims equivalence for a mere subsumption.
  wrong.body_iri = "c:sub";
  wrong.head_iri = "r:union";
  wrong.equivalence = true;
  run.rules.push_back(wrong);

  PrecisionRecall pr = ScoreEquivalences(run, truth);
  EXPECT_EQ(pr.true_positives, 1u);
  EXPECT_EQ(pr.false_positives, 1u);
  EXPECT_EQ(pr.false_negatives, 0u);
}

TEST(DefaultTauGridTest, CoversExpectedRange) {
  auto taus = DefaultTauGrid();
  ASSERT_EQ(taus.size(), 19u);
  EXPECT_NEAR(taus.front(), 0.05, 1e-9);
  EXPECT_NEAR(taus.back(), 0.95, 1e-9);
}

TEST(Table1Test, TinyScaleRunProducesAllRows) {
  Table1Options options;
  options.scale = 0.02;
  options.seed = 77;
  options.max_relations = 40;
  auto report = RunTable1(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->rows.size(), 3u);
  EXPECT_EQ(report->rows[0].method, "pcaconf");
  EXPECT_EQ(report->rows[1].method, "cwaconf");
  EXPECT_EQ(report->rows[2].method, "UBS pcaconf");
  for (const auto& row : report->rows) {
    EXPECT_GE(row.tau, 0.0);
    EXPECT_LE(row.tau, 1.0);
  }
  EXPECT_GT(report->total_queries, 0u);
  EXPECT_FALSE(report->ToAlignedTable().empty());
  EXPECT_FALSE(report->ToCsv().empty());
  // The headline claim, structurally: UBS precision is at least the
  // pcaconf baseline's in both directions.
  EXPECT_GE(report->rows[2].yago_in_dbpd.precision() + 1e-9,
            report->rows[0].yago_in_dbpd.precision());
  EXPECT_GE(report->rows[2].dbpd_in_yago.precision() + 1e-9,
            report->rows[0].dbpd_in_yago.precision());
}

}  // namespace
}  // namespace sofya
