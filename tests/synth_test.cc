#include "synth/world_generator.h"

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <set>

#include "rdf/ntriples.h"
#include "synth/ground_truth.h"
#include "synth/literal_noise.h"
#include "synth/presets.h"

namespace sofya {
namespace {

TEST(GroundTruthTest, ClassifiesByConceptInclusion) {
  GroundTruth truth;
  truth.AddRelation("kb1", "r:composerOf", {"composes"});
  truth.AddRelation("kb1", "r:writerOf", {"writes"});
  truth.AddRelation("kb2", "r:creatorOf", {"composes", "writes"});
  truth.AddRelation("kb2", "r:composedBy", {"composes"});

  EXPECT_TRUE(truth.Subsumes("r:composerOf", "r:creatorOf"));
  EXPECT_FALSE(truth.Subsumes("r:creatorOf", "r:composerOf"));
  EXPECT_EQ(truth.Classify("r:composerOf", "r:creatorOf"),
            AlignKind::kSubsumption);
  EXPECT_EQ(truth.Classify("r:composerOf", "r:composedBy"),
            AlignKind::kEquivalence);
  EXPECT_EQ(truth.Classify("r:writerOf", "r:composedBy"), AlignKind::kNone);
  EXPECT_EQ(truth.Classify("r:unknown", "r:creatorOf"), AlignKind::kNone);
}

TEST(GroundTruthTest, EnumeratesGoldPairs) {
  GroundTruth truth;
  truth.AddRelation("kb1", "a1", {"c1"});
  truth.AddRelation("kb1", "a2", {"c2"});
  truth.AddRelation("kb2", "b", {"c1", "c2"});
  auto pairs = truth.AllSubsumptions("kb1", "kb2");
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<std::string, std::string>{"a1", "b"}));
  EXPECT_EQ(truth.CountSubsumptions("kb2", "kb1"), 0u);
  EXPECT_EQ(truth.RelationsOf("kb1"),
            (std::vector<std::string>{"a1", "a2"}));
  EXPECT_EQ(truth.ConceptsOf("b"), (std::set<std::string>{"c1", "c2"}));
}

TEST(LiteralNoiseTest, NamesAreDeterministicAndHumanish) {
  const std::string n1 = SynthesizeName(42);
  EXPECT_EQ(n1, SynthesizeName(42));
  EXPECT_NE(n1, SynthesizeName(43));
  EXPECT_NE(n1.find(' '), std::string::npos);  // Two tokens.
  EXPECT_TRUE(std::isupper(static_cast<unsigned char>(n1[0])));
}

TEST(LiteralNoiseTest, ZeroRatesLeaveValueUnchanged) {
  Rng rng(1);
  EXPECT_EQ(ApplyLiteralNoise("Frank Sinatra", {}, rng), "Frank Sinatra");
}

TEST(LiteralNoiseTest, CaseChangeLowercases) {
  LiteralNoiseOptions options;
  options.case_change_rate = 1.0;
  Rng rng(1);
  EXPECT_EQ(ApplyLiteralNoise("Frank Sinatra", options, rng),
            "frank sinatra");
}

TEST(LiteralNoiseTest, AbbreviateShortensFirstToken) {
  LiteralNoiseOptions options;
  options.abbreviate_rate = 1.0;
  Rng rng(1);
  EXPECT_EQ(ApplyLiteralNoise("Frank Sinatra", options, rng), "F. Sinatra");
}

TEST(LiteralNoiseTest, TypoChangesStringSlightly) {
  LiteralNoiseOptions options;
  options.typo_rate = 1.0;
  Rng rng(7);
  const std::string noised = ApplyLiteralNoise("abcdefgh", options, rng);
  EXPECT_NE(noised, "abcdefgh");
  EXPECT_NEAR(static_cast<double>(noised.size()), 8.0, 1.0);
}

TEST(WorldGeneratorTest, TinyWorldGenerates) {
  auto world = GenerateWorld(TinyWorldSpec());
  ASSERT_TRUE(world.ok());
  EXPECT_GT(world->stats.kb1_facts, 0u);
  EXPECT_GT(world->stats.kb2_facts, 0u);
  EXPECT_GT(world->stats.links_correct, 0u);
  EXPECT_EQ(world->stats.links_wrong, 0u);
  EXPECT_EQ(world->kb1->name(), "tiny1");
  EXPECT_FALSE(DescribeWorld(*world).empty());
}

TEST(WorldGeneratorTest, DeterministicUnderSeed) {
  auto w1 = GenerateWorld(TinyWorldSpec(9));
  auto w2 = GenerateWorld(TinyWorldSpec(9));
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  auto t1 = WriteNTriplesString(w1->kb1->store(), w1->kb1->dict());
  auto t2 = WriteNTriplesString(w2->kb1->store(), w2->kb1->dict());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(*t1, *t2);
  EXPECT_EQ(w1->stats.kb2_facts, w2->stats.kb2_facts);
  EXPECT_EQ(w1->stats.links_correct, w2->stats.links_correct);
}

TEST(WorldGeneratorTest, DifferentSeedsDiffer) {
  auto w1 = GenerateWorld(TinyWorldSpec(9));
  auto w2 = GenerateWorld(TinyWorldSpec(10));
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  auto t1 = WriteNTriplesString(w1->kb1->store(), w1->kb1->dict());
  auto t2 = WriteNTriplesString(w2->kb1->store(), w2->kb1->dict());
  EXPECT_NE(*t1, *t2);
}

TEST(WorldGeneratorTest, ValidationRejectsBadSpecs) {
  WorldSpec spec = TinyWorldSpec();
  spec.num_entities = 0;
  EXPECT_TRUE(GenerateWorld(spec).status().IsInvalidArgument());

  spec = TinyWorldSpec();
  spec.kb1_relations[0].concepts = {"no-such-concept"};
  EXPECT_TRUE(GenerateWorld(spec).status().IsInvalidArgument());

  spec = TinyWorldSpec();
  spec.kb1_relations[0].concepts.clear();
  EXPECT_TRUE(GenerateWorld(spec).status().IsInvalidArgument());

  spec = TinyWorldSpec();
  spec.kb1_relations[0].coverage = 1.5;
  EXPECT_TRUE(GenerateWorld(spec).status().IsInvalidArgument());

  spec = TinyWorldSpec();
  spec.concepts[0].domain_type = 99;
  EXPECT_TRUE(GenerateWorld(spec).status().IsInvalidArgument());

  spec = TinyWorldSpec();
  spec.concepts.push_back(spec.concepts[0]);  // Duplicate name.
  EXPECT_TRUE(GenerateWorld(spec).status().IsInvalidArgument());

  spec = TinyWorldSpec();
  spec.concepts[0].correlate_with = spec.concepts[0].name;  // Self.
  EXPECT_TRUE(GenerateWorld(spec).status().IsInvalidArgument());

  spec = TinyWorldSpec();
  // Forward correlation (points to a later concept).
  spec.concepts[0].correlate_with = spec.concepts[1].name;
  EXPECT_TRUE(GenerateWorld(spec).status().IsInvalidArgument());
}

TEST(WorldGeneratorTest, CoverageReducesFacts) {
  WorldSpec full = TinyWorldSpec(4);
  for (auto& rel : full.kb1_relations) rel.coverage = 1.0;
  WorldSpec half = TinyWorldSpec(4);
  for (auto& rel : half.kb1_relations) rel.coverage = 0.4;
  auto w_full = GenerateWorld(full);
  auto w_half = GenerateWorld(half);
  ASSERT_TRUE(w_full.ok());
  ASSERT_TRUE(w_half.ok());
  EXPECT_GT(w_full->stats.kb1_facts, w_half->stats.kb1_facts);
}

TEST(WorldGeneratorTest, PerSubjectCoverageKeepsSubjectsAtomic) {
  // With per-subject coverage, for every subject either all or none of its
  // world facts for a relation are present. Compare against a
  // coverage-1.0 twin to know the full fact set.
  WorldSpec spec = TinyWorldSpec(11);
  spec.concepts[0].functional = false;
  spec.concepts[0].num_facts = 300;  // Multi-object subjects.
  spec.kb1_relations[0].coverage = 0.5;
  spec.kb1_relations[0].coverage_model = CoverageModel::kPerSubject;
  WorldSpec full = spec;
  full.kb1_relations[0].coverage = 1.0;

  auto partial_world = GenerateWorld(spec);
  auto full_world = GenerateWorld(full);
  ASSERT_TRUE(partial_world.ok());
  ASSERT_TRUE(full_world.ok());

  const TermId rel_partial = partial_world->kb1->dict().LookupIri(
      spec.kb1_base + "ontology/" + spec.kb1_relations[0].local_name);
  const TermId rel_full = full_world->kb1->dict().LookupIri(
      spec.kb1_base + "ontology/" + spec.kb1_relations[0].local_name);
  ASSERT_NE(rel_full, kNullTermId);

  // Count facts per subject IRI in both worlds.
  auto facts_per_subject = [](const KnowledgeBase& kb, TermId rel) {
    std::map<std::string, size_t> counts;
    kb.store().ForEachMatch(TriplePattern(kNullTermId, rel, kNullTermId),
                            [&](const Triple& t) {
                              counts[kb.dict().Decode(t.subject).lexical()]++;
                              return true;
                            });
    return counts;
  };
  auto partial_counts =
      facts_per_subject(*partial_world->kb1, rel_partial);
  auto full_counts = facts_per_subject(*full_world->kb1, rel_full);
  ASSERT_FALSE(partial_counts.empty());
  for (const auto& [subject, count] : partial_counts) {
    EXPECT_EQ(count, full_counts.at(subject))
        << "subject " << subject << " was partially dropped";
  }
  EXPECT_LT(partial_counts.size(), full_counts.size());
}

TEST(WorldGeneratorTest, LinkNoiseProducesWrongLinks) {
  WorldSpec spec = TinyWorldSpec(13);
  spec.link_noise = 0.5;
  auto world = GenerateWorld(spec);
  ASSERT_TRUE(world.ok());
  EXPECT_GT(world->stats.links_wrong, 0u);
  EXPECT_GT(world->stats.links_correct, 0u);
}

TEST(WorldGeneratorTest, LinkCoverageZeroMeansNoLinks) {
  WorldSpec spec = TinyWorldSpec(13);
  spec.link_coverage = 0.0;
  auto world = GenerateWorld(spec);
  ASSERT_TRUE(world.ok());
  EXPECT_EQ(world->links.num_links(), 0u);
}

TEST(WorldGeneratorTest, InverseRelationsMaterialized) {
  WorldSpec spec = TinyWorldSpec(21);
  spec.add_inverse_relations = true;
  auto world = GenerateWorld(spec);
  ASSERT_TRUE(world.ok());
  const std::string direct = "http://kb1.sofya.org/ontology/wasBornIn";
  const std::string inverse = "http://kb1.sofya.org/ontology/wasBornInInv";
  const std::string ref_inverse =
      "http://kb2.sofya.org/ontology/birthPlaceInv";
  ASSERT_TRUE(world->truth.Knows(inverse));
  // Inverse aligns with the other KB's inverse, never with direct forms.
  EXPECT_EQ(world->truth.Classify(inverse, ref_inverse),
            AlignKind::kEquivalence);
  EXPECT_EQ(world->truth.Classify(inverse, "http://kb2.sofya.org/ontology/birthPlace"),
            AlignKind::kNone);

  // The stored facts really are swapped pairs.
  const TermId d = world->kb1->dict().LookupIri(direct);
  const TermId inv = world->kb1->dict().LookupIri(inverse);
  ASSERT_NE(d, kNullTermId);
  ASSERT_NE(inv, kNullTermId);
  size_t checked = 0;
  world->kb1->store().ForEachMatch(
      TriplePattern(kNullTermId, inv, kNullTermId), [&](const Triple&) {
        // Coverage draws differ between direct/inverse, so only require
        // that each inverse fact's swap exists in the latent world — i.e.
        // the direct relation contains it whenever its subject was kept.
        ++checked;
        return checked < 25;
      });
  EXPECT_GT(checked, 0u);
  EXPECT_GT(world->kb1->store().CountMatches(
                TriplePattern(kNullTermId, inv, kNullTermId)),
            0u);
}

TEST(WorldGeneratorTest, InverseRelationsAlignEndToEnd) {
  WorldSpec spec = TinyWorldSpec(22);
  spec.add_inverse_relations = true;
  auto world = GenerateWorld(spec);
  ASSERT_TRUE(world.ok());
  EXPECT_GE(world->truth.CountSubsumptions("tiny1", "tiny2"), 2u);
}

TEST(PresetsTest, MoviesWorldHasTrapStructure) {
  auto world = GenerateWorld(MoviesWorldSpec());
  ASSERT_TRUE(world.ok());
  const std::string director = "http://kb1.sofya.org/ontology/hasDirector";
  const std::string producer = "http://kb1.sofya.org/ontology/hasProducer";
  const std::string directed_by = "http://kb2.sofya.org/ontology/directedBy";
  EXPECT_EQ(world->truth.Classify(director, directed_by),
            AlignKind::kEquivalence);
  EXPECT_EQ(world->truth.Classify(producer, directed_by), AlignKind::kNone);
}

TEST(PresetsTest, MusicWorldHasSiblingSubsumption) {
  auto world = GenerateWorld(MusicWorldSpec());
  ASSERT_TRUE(world.ok());
  const std::string composer = "http://kb1.sofya.org/ontology/composerOf";
  const std::string writer = "http://kb1.sofya.org/ontology/writerOf";
  const std::string creator = "http://kb2.sofya.org/ontology/creatorOf";
  EXPECT_EQ(world->truth.Classify(composer, creator),
            AlignKind::kSubsumption);
  EXPECT_EQ(world->truth.Classify(writer, creator), AlignKind::kSubsumption);
  EXPECT_FALSE(world->truth.Subsumes(creator, composer));
}

TEST(PresetsTest, YagoDbpediaRelationCountsAtFullScale) {
  // Spec-level check (no generation; full scale would be slow to build).
  WorldSpec spec = YagoDbpediaSpec(1, 1.0);
  EXPECT_EQ(spec.kb1_relations.size(), 92u);
  EXPECT_EQ(spec.kb2_relations.size(), 1313u);
}

TEST(PresetsTest, YagoDbpediaScaledWorldGenerates) {
  auto world = GenerateWorld(YagoDbpediaSpec(5, 0.05));
  ASSERT_TRUE(world.ok());
  EXPECT_EQ(world->spec.kb1_relations.size(), 92u);
  EXPECT_GT(world->truth.CountSubsumptions("yago", "dbpd"), 0u);
  EXPECT_GT(world->truth.CountSubsumptions("dbpd", "yago"), 0u);
}

TEST(PresetsTest, CorrelationCreatesDataOverlapWithoutTruth) {
  auto world = GenerateWorld(MoviesWorldSpec(3, /*producer_directs_rho=*/0.9));
  ASSERT_TRUE(world.ok());
  // Count producer facts that are also director facts in kb1.
  const TermId has_dir =
      world->kb1->dict().LookupIri("http://kb1.sofya.org/ontology/hasDirector");
  const TermId has_prod =
      world->kb1->dict().LookupIri("http://kb1.sofya.org/ontology/hasProducer");
  ASSERT_NE(has_dir, kNullTermId);
  ASSERT_NE(has_prod, kNullTermId);
  size_t overlap = 0, total = 0;
  world->kb1->store().ForEachMatch(
      TriplePattern(kNullTermId, has_prod, kNullTermId),
      [&](const Triple& t) {
        // Condition on subjects the KB knows directors for: the correlation
        // knob only applies where base facts exist.
        if (world->kb1->store()
                .Objects(t.subject, has_dir)
                .empty()) {
          return true;
        }
        ++total;
        if (world->kb1->store().Contains(t.subject, has_dir, t.object)) {
          ++overlap;
        }
        return true;
      });
  ASSERT_GT(total, 0u);
  // Conditional data overlap is high (rho = 0.9), truth says none.
  EXPECT_GT(static_cast<double>(overlap) / static_cast<double>(total), 0.6);
}

}  // namespace
}  // namespace sofya
