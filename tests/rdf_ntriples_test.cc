#include "rdf/ntriples.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "rdf/knowledge_base.h"
#include "util/random.h"
#include "util/string_util.h"

namespace sofya {
namespace {

Status ParseLine(const std::string& line) {
  Term s, p, o;
  return ParseNTriplesLine(line, &s, &p, &o);
}

TEST(NTriplesLineTest, ParsesEntityTriple) {
  Term s, p, o;
  ASSERT_TRUE(ParseNTriplesLine("<http://x/a> <http://x/p> <http://x/b> .",
                                &s, &p, &o)
                  .ok());
  EXPECT_EQ(s, Term::Iri("http://x/a"));
  EXPECT_EQ(p, Term::Iri("http://x/p"));
  EXPECT_EQ(o, Term::Iri("http://x/b"));
}

TEST(NTriplesLineTest, ParsesPlainLiteral) {
  Term s, p, o;
  ASSERT_TRUE(
      ParseNTriplesLine("<http://x/a> <http://x/p> \"hello world\" .", &s, &p,
                        &o)
          .ok());
  EXPECT_EQ(o, Term::Literal("hello world"));
}

TEST(NTriplesLineTest, ParsesLangLiteral) {
  Term s, p, o;
  ASSERT_TRUE(ParseNTriplesLine("<a:s> <a:p> \"Wien\"@de .", &s, &p, &o).ok());
  EXPECT_EQ(o, Term::LangLiteral("Wien", "de"));
}

TEST(NTriplesLineTest, ParsesTypedLiteral) {
  Term s, p, o;
  ASSERT_TRUE(ParseNTriplesLine(
                  "<a:s> <a:p> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .",
                  &s, &p, &o)
                  .ok());
  EXPECT_EQ(o, Term::TypedLiteral("42",
                                  "http://www.w3.org/2001/XMLSchema#integer"));
}

TEST(NTriplesLineTest, ParsesEscapedLiteral) {
  Term s, p, o;
  ASSERT_TRUE(ParseNTriplesLine("<a:s> <a:p> \"line\\nbreak \\\"q\\\"\" .",
                                &s, &p, &o)
                  .ok());
  EXPECT_EQ(o, Term::Literal("line\nbreak \"q\""));
}

TEST(NTriplesLineTest, ParsesBlankNodes) {
  Term s, p, o;
  ASSERT_TRUE(ParseNTriplesLine("_:b1 <a:p> _:b2 .", &s, &p, &o).ok());
  EXPECT_TRUE(s.is_blank());
  EXPECT_TRUE(o.is_blank());
}

TEST(NTriplesLineTest, ToleratesExtraWhitespace) {
  EXPECT_TRUE(ParseLine("  <a:s>\t<a:p>   <a:o>  .  ").ok());
}

TEST(NTriplesLineTest, CommentAndBlankLinesSignalSkip) {
  EXPECT_TRUE(ParseLine("# a comment").IsNotFound());
  EXPECT_TRUE(ParseLine("").IsNotFound());
  EXPECT_TRUE(ParseLine("   ").IsNotFound());
}

TEST(NTriplesLineTest, RejectsMalformedLines) {
  EXPECT_TRUE(ParseLine("<a:s> <a:p> <a:o>").IsParseError());  // No dot.
  EXPECT_TRUE(ParseLine("<a:s> <a:p> .").IsParseError());      // Missing obj.
  EXPECT_TRUE(ParseLine("<a:s <a:p> <a:o> .").IsParseError()); // Bad IRI.
  EXPECT_TRUE(ParseLine("<a:s> \"p\" <a:o> .").IsParseError());  // Lit pred.
  EXPECT_TRUE(ParseLine("\"s\" <a:p> <a:o> .").IsParseError());  // Lit subj.
  EXPECT_TRUE(ParseLine("<a:s> <a:p> \"x .").IsParseError());  // Open quote.
  EXPECT_TRUE(ParseLine("<a:s> <a:p> <a:o> . extra").IsParseError());
  EXPECT_TRUE(ParseLine("<a:s> _:b <a:o> .").IsParseError());  // Blank pred.
  EXPECT_TRUE(ParseLine("<> <a:p> <a:o> .").IsParseError());   // Empty IRI.
  EXPECT_TRUE(ParseLine("<a:s> <a:p> \"x\"@ .").IsParseError());  // Bad lang.
  EXPECT_TRUE(ParseLine("<a:s> <a:p> \"x\"^^foo .").IsParseError());
}

TEST(NTriplesDocumentTest, ParsesDocumentWithComments) {
  const std::string doc =
      "# header\n"
      "<a:s> <a:p> <a:o> .\n"
      "\n"
      "<a:s> <a:p> \"lit\" .\n";
  Dictionary dict;
  TripleStore store;
  auto report = ParseNTriplesString(doc, &dict, &store);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->lines_read, 4u);
  EXPECT_EQ(report->triples_parsed, 2u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(NTriplesDocumentTest, ErrorReportsLineNumber) {
  const std::string doc = "<a:s> <a:p> <a:o> .\nbroken line\n";
  Dictionary dict;
  TripleStore store;
  auto report = ParseNTriplesString(doc, &dict, &store);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsParseError());
  EXPECT_NE(report.status().message().find("line 2"), std::string::npos);
}

TEST(NTriplesDocumentTest, WriteThenParseRoundTripsStore) {
  Dictionary dict;
  TripleStore store;
  store.Insert(dict.Intern(Term::Iri("http://x/a")),
               dict.Intern(Term::Iri("http://x/p")),
               dict.Intern(Term::Literal("weird \" chars\n")));
  store.Insert(dict.Intern(Term::Iri("http://x/a")),
               dict.Intern(Term::Iri("http://x/q")),
               dict.Intern(Term::LangLiteral("bonjour", "fr")));

  auto text = WriteNTriplesString(store, dict);
  ASSERT_TRUE(text.ok());

  Dictionary dict2;
  TripleStore store2;
  ASSERT_TRUE(ParseNTriplesString(*text, &dict2, &store2).ok());
  EXPECT_EQ(store2.size(), store.size());

  auto text2 = WriteNTriplesString(store2, dict2);
  ASSERT_TRUE(text2.ok());
  EXPECT_EQ(*text, *text2);
}

// Property: random stores of every term shape survive write->parse->write.
class NTriplesRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NTriplesRoundTrip, RandomStoresSurvive) {
  Rng rng(GetParam());
  Dictionary dict;
  TripleStore store;
  for (int i = 0; i < 120; ++i) {
    const TermId s = dict.InternIri(StrFormat("http://x/s%llu",
        static_cast<unsigned long long>(rng.Below(20))));
    const TermId p = dict.InternIri(StrFormat("http://x/p%llu",
        static_cast<unsigned long long>(rng.Below(5))));
    TermId o;
    switch (rng.Below(4)) {
      case 0:
        o = dict.InternIri(StrFormat("http://x/o%llu",
            static_cast<unsigned long long>(rng.Below(20))));
        break;
      case 1:
        o = dict.InternLiteral(StrFormat("v\"%llu\\n",
            static_cast<unsigned long long>(rng.Below(100))));
        break;
      case 2:
        o = dict.Intern(Term::LangLiteral("w", "en"));
        break;
      default:
        o = dict.Intern(
            Term::TypedLiteral(StrFormat("%llu",
                static_cast<unsigned long long>(rng.Below(100))),
                std::string(xsd::kInteger)));
    }
    store.Insert(s, p, o);
  }
  auto text = WriteNTriplesString(store, dict);
  ASSERT_TRUE(text.ok());
  Dictionary dict2;
  TripleStore store2;
  ASSERT_TRUE(ParseNTriplesString(*text, &dict2, &store2).ok());
  EXPECT_EQ(store2.size(), store.size());
  auto text2 = WriteNTriplesString(store2, dict2);
  ASSERT_TRUE(text2.ok());
  // Line ORDER depends on dictionary ids (assigned in parse order), so the
  // round-trip guarantee is set equality of lines, not byte equality.
  auto sorted_lines = [](const std::string& doc) {
    auto lines = Split(doc, '\n');
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(sorted_lines(*text), sorted_lines(*text2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NTriplesRoundTrip,
                         ::testing::Values(1ULL, 5ULL, 23ULL));

}  // namespace
}  // namespace sofya
