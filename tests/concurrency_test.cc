// The concurrency battery for the thread-safe endpoint stack and parallel
// alignment:
//
//   * 8 threads hammering CachingEndpoint + LocalEndpoint with overlapping
//     fingerprints — results stay correct, hit/miss counters sum exactly to
//     the number of requests, and server accounting never tears;
//   * AlignMany at 1, 2 and 8 threads — verdicts and per-relation query
//     counts bit-identical to sequential Align, fleet accounting adds up.
//
// Run under ThreadSanitizer in CI (see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "align/relation_aligner.h"
#include "endpoint/caching_endpoint.h"
#include "endpoint/local_endpoint.h"
#include "endpoint/query_forms.h"
#include "endpoint/throttled_endpoint.h"
#include "rdf/knowledge_base.h"
#include "synth/presets.h"
#include "synth/world_generator.h"
#include "util/string_util.h"

namespace sofya {
namespace {

constexpr size_t kThreads = 8;
constexpr size_t kIterations = 200;

/// A KB with a few predicates of known cardinality for stress queries.
class EndpointConcurrencyTest : public ::testing::Test {
 protected:
  EndpointConcurrencyTest() : kb_("stresskb", "http://s.org/") {
    for (int p = 0; p < 8; ++p) {
      const std::string pred = "p" + std::to_string(p);
      for (int i = 0; i <= p * 3; ++i) {
        kb_.AddFact("s" + std::to_string(i), pred, "o" + std::to_string(i));
      }
      predicates_.push_back(kb_.dict().LookupIri("http://s.org/" + pred));
      cardinality_.push_back(static_cast<size_t>(p * 3 + 1));
    }
    kb_.store().EnsureIndexed();
  }

  KnowledgeBase kb_;
  std::vector<TermId> predicates_;
  std::vector<size_t> cardinality_;
};

TEST_F(EndpointConcurrencyTest, LocalEndpointCountersNeverTear) {
  LocalEndpoint ep(&kb_);
  std::atomic<uint64_t> expected_rows{0};
  std::atomic<int> wrong_results{0};

  auto worker = [&](size_t seed) {
    for (size_t i = 0; i < kIterations; ++i) {
      const size_t p = (seed + i) % predicates_.size();
      auto result = ep.Select(queries::FactsOfPredicate(predicates_[p]));
      if (!result.ok() || result->rows.size() != cardinality_[p]) {
        wrong_results.fetch_add(1);
        continue;
      }
      expected_rows.fetch_add(result->rows.size());
    }
  };
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(wrong_results.load(), 0);
  // Every query and every row accounted, exactly once.
  EXPECT_EQ(ep.stats().queries, kThreads * kIterations);
  EXPECT_EQ(ep.stats().rows_returned, expected_rows.load());
}

TEST_F(EndpointConcurrencyTest, CachingEndpointHitMissCountersSumExactly) {
  LocalEndpoint inner(&kb_);
  CachingEndpoint ep(&inner);

  // Overlapping fingerprints by design: every thread cycles the same 16
  // query shapes (8 plain + 8 with LIMIT), offset by its id.
  std::vector<SelectQuery> shapes;
  for (TermId p : predicates_) {
    shapes.push_back(queries::FactsOfPredicate(p));
    shapes.push_back(queries::FactsOfPredicate(p, /*limit=*/2));
  }

  std::atomic<int> wrong_results{0};
  auto worker = [&](size_t seed) {
    for (size_t i = 0; i < kIterations; ++i) {
      const size_t s = (seed * 7 + i) % shapes.size();
      auto result = ep.Select(shapes[s]);
      const size_t expect =
          std::min<size_t>(cardinality_[s / 2], s % 2 == 1 ? 2 : SIZE_MAX);
      if (!result.ok() || result->rows.size() != expect) {
        wrong_results.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(wrong_results.load(), 0);
  // The cast-iron invariant: every request is classified exactly once.
  EXPECT_EQ(ep.hits() + ep.misses(), kThreads * kIterations);
  // The server saw one query per miss (no eviction at this capacity) —
  // racing cold misses on the same key may fetch twice, but never more
  // often than misses were counted.
  EXPECT_EQ(inner.stats().queries, ep.misses());
  // And misses are at least the number of distinct shapes, at most a benign
  // stampede's worth above it.
  EXPECT_GE(ep.misses(), shapes.size());
  EXPECT_LE(ep.misses(), shapes.size() * kThreads);
  EXPECT_EQ(ep.stats().cache_hits, ep.hits());
}

TEST_F(EndpointConcurrencyTest, MixedSelectAskAndBatchTraffic) {
  LocalEndpoint inner(&kb_);
  CacheOptions cache_options;
  cache_options.shards = 4;  // Force multi-shard even at default capacity.
  CachingEndpoint ep(&inner, cache_options);

  std::atomic<int> failures{0};
  auto worker = [&](size_t seed) {
    for (size_t i = 0; i < kIterations / 4; ++i) {
      const TermId p = predicates_[(seed + i) % predicates_.size()];
      auto one = ep.Select(queries::FactsOfPredicate(p));
      if (!one.ok()) failures.fetch_add(1);
      auto ask = ep.Ask(queries::FactsOfPredicate(p));
      if (!ask.ok() || !*ask) failures.fetch_add(1);
      std::vector<SelectQuery> batch = {
          queries::FactsOfPredicate(p),
          queries::FactsOfPredicate(p, /*limit=*/1),
          queries::FactsOfPredicate(p),
      };
      SelectBatchResult many = ep.SelectMany(batch);
      if (!many.all_ok() || many.values[0].rows != many.values[2].rows) {
        failures.fetch_add(1);
      }
      AskBatchResult asks = ep.AskMany(batch);
      if (!asks.all_ok() || !asks.values[0] || !asks.values[1]) {
        failures.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  // 1 select + 1 ask + 3 batched selects + 3 batched asks per iteration.
  EXPECT_EQ(ep.hits() + ep.misses(), kThreads * (kIterations / 4) * 8);
}

TEST_F(EndpointConcurrencyTest, ThrottledBudgetIsExactUnderContention) {
  LocalEndpoint inner(&kb_);
  ThrottleOptions throttle;
  throttle.query_budget = 100;
  throttle.jitter_ms = 0.0;
  ThrottledEndpoint ep(&inner, throttle);

  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> denied{0};
  auto worker = [&](size_t seed) {
    for (size_t i = 0; i < 50; ++i) {
      const TermId p = predicates_[(seed + i) % predicates_.size()];
      auto result = ep.Select(queries::FactsOfPredicate(p));
      if (result.ok()) {
        admitted.fetch_add(1);
      } else if (result.status().IsResourceExhausted()) {
        denied.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& thread : threads) thread.join();

  // The budget admits exactly 100 requests, never 101 — and everything else
  // is cleanly denied.
  EXPECT_EQ(admitted.load(), 100u);
  EXPECT_EQ(denied.load(), kThreads * 50 - 100);
  EXPECT_EQ(ep.stats().queries, 100u);
  EXPECT_EQ(ep.queries_issued(), 100u);
  EXPECT_EQ(ep.remaining_budget(), 0u);
}

// ---------------------------------------------------------------------------
// AlignMany determinism: same verdicts, same per-relation query counts, for
// any thread count — and equal to sequential Align.

std::string VerdictFingerprint(const AlignmentResult& result) {
  std::string fp = result.reference_relation.lexical();
  for (const auto& v : result.verdicts) {
    fp += StrFormat(
        "|%s;%.9f;%.9f;%zu;%zu;%d;%d;%d;%d", v.relation.lexical().c_str(),
        v.rule.pca_conf, v.rule.cwa_conf, v.rule.support, v.cooccurrences,
        static_cast<int>(v.passed_threshold), static_cast<int>(v.accepted),
        static_cast<int>(v.ubs_subsumption_pruned),
        static_cast<int>(v.equivalence));
  }
  return fp;
}

/// The multi-relation workload: a small YAGO/DBpedia world plus its first
/// `max_relations` reference relations (sorted for determinism).
std::vector<Term> WorkloadRelations(const SynthWorld& world,
                                    size_t max_relations) {
  std::vector<std::string> iris = world.truth.RelationsOf("dbpd");
  std::sort(iris.begin(), iris.end());
  if (iris.size() > max_relations) iris.resize(max_relations);
  std::vector<Term> relations;
  for (const std::string& iri : iris) relations.push_back(Term::Iri(iri));
  return relations;
}

TEST(AlignManyDeterminismTest, IdenticalToSequentialForAnyThreadCount) {
  auto world =
      std::move(GenerateWorld(YagoDbpediaSpec(101, /*scale=*/0.03))).value();
  const std::vector<Term> relations = WorkloadRelations(world, 10);
  ASSERT_GE(relations.size(), 3u);

  // Sequential baseline over a bare (undecorated) stack: per-relation delta
  // accounting is exact here, and AlignMany's tracked counts must match it.
  std::vector<std::string> seq_fingerprints;
  std::vector<uint64_t> seq_cand_queries, seq_ref_queries, seq_rows;
  {
    LocalEndpoint cand(world.kb1.get());
    LocalEndpoint ref(world.kb2.get());
    RelationAligner aligner(&cand, &ref, &world.links);
    for (const Term& r : relations) {
      auto result = aligner.Align(r);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      seq_fingerprints.push_back(VerdictFingerprint(*result));
      seq_cand_queries.push_back(result->candidate_queries);
      seq_ref_queries.push_back(result->reference_queries);
      seq_rows.push_back(result->rows_shipped);
    }
  }

  for (size_t threads : {1u, 2u, 8u}) {
    LocalEndpoint cand(world.kb1.get());
    LocalEndpoint ref(world.kb2.get());
    RelationAligner aligner(&cand, &ref, &world.links);
    auto fleet = aligner.AlignMany(relations, threads);
    ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
    ASSERT_EQ(fleet->results.size(), relations.size());

    uint64_t sum_cand = 0, sum_ref = 0;
    for (size_t i = 0; i < relations.size(); ++i) {
      const AlignmentResult& result = fleet->results[i];
      // Input order preserved.
      EXPECT_EQ(result.reference_relation, relations[i]);
      // Bit-identical verdicts...
      EXPECT_EQ(VerdictFingerprint(result), seq_fingerprints[i])
          << "threads=" << threads << " relation " << i;
      // ...and identical per-relation query/row accounting.
      EXPECT_EQ(result.candidate_queries, seq_cand_queries[i])
          << "threads=" << threads << " relation " << i;
      EXPECT_EQ(result.reference_queries, seq_ref_queries[i])
          << "threads=" << threads << " relation " << i;
      EXPECT_EQ(result.rows_shipped, seq_rows[i])
          << "threads=" << threads << " relation " << i;
      sum_cand += result.candidate_queries;
      sum_ref += result.reference_queries;
    }
    // Aggregate accounting adds up: over a bare stack every server query is
    // attributable to exactly one relation.
    EXPECT_EQ(fleet->candidate_stats.queries, sum_cand)
        << "threads=" << threads;
    EXPECT_EQ(fleet->reference_stats.queries, sum_ref)
        << "threads=" << threads;
    EXPECT_EQ(fleet->threads_used, std::min(threads, relations.size()));
  }
}

TEST(AlignManyDeterminismTest, PhaseAndRelationSchedulesAgreeBitForBit) {
  // Both schedulers must produce the sequential verdicts AND the sequential
  // per-relation query counts — the phase decomposition changes only who
  // runs which piece of work, never the work itself.
  auto world =
      std::move(GenerateWorld(YagoDbpediaSpec(101, /*scale=*/0.03))).value();
  const std::vector<Term> relations = WorkloadRelations(world, 8);
  ASSERT_GE(relations.size(), 3u);

  auto run = [&](AlignSchedule schedule, size_t threads) {
    LocalEndpoint cand(world.kb1.get());
    LocalEndpoint ref(world.kb2.get());
    RelationAligner aligner(&cand, &ref, &world.links);
    AlignManyOptions options;
    options.num_threads = threads;
    options.schedule = schedule;
    auto fleet = aligner.AlignMany(relations, options);
    EXPECT_TRUE(fleet.ok()) << fleet.status().ToString();
    std::vector<std::string> fingerprints;
    for (const auto& result : fleet->results) {
      fingerprints.push_back(VerdictFingerprint(result) + "|" +
                             std::to_string(result.candidate_queries) + "|" +
                             std::to_string(result.reference_queries));
    }
    return std::make_pair(fingerprints, fleet->subtasks_scheduled);
  };

  const auto [relation_fp, relation_tasks] =
      run(AlignSchedule::kRelation, 4);
  const auto [phase_fp_1, phase_tasks_1] = run(AlignSchedule::kPhase, 1);
  const auto [phase_fp_8, phase_tasks_8] = run(AlignSchedule::kPhase, 8);
  EXPECT_EQ(phase_fp_1, relation_fp);
  EXPECT_EQ(phase_fp_8, relation_fp);
  // The phase scheduler really decomposed: strictly more tasks than
  // relations (discovery + per-candidate + UBS + reverse), and the task
  // breakdown itself is deterministic.
  EXPECT_EQ(relation_tasks, relations.size());
  EXPECT_GT(phase_tasks_1, relations.size());
  EXPECT_EQ(phase_tasks_1, phase_tasks_8);
}

TEST(AlignManyDeterminismTest, SharedCacheKeepsVerdictsIdentical) {
  auto world =
      std::move(GenerateWorld(YagoDbpediaSpec(101, /*scale=*/0.03))).value();
  const std::vector<Term> relations = WorkloadRelations(world, 6);
  ASSERT_GE(relations.size(), 3u);

  auto run = [&](size_t threads) {
    LocalEndpoint cand_local(world.kb1.get());
    LocalEndpoint ref_local(world.kb2.get());
    CachingEndpoint cand(&cand_local);
    CachingEndpoint ref(&ref_local);
    RelationAligner aligner(&cand, &ref, &world.links);
    auto fleet = aligner.AlignMany(relations, threads);
    EXPECT_TRUE(fleet.ok());
    std::vector<std::string> fingerprints;
    for (const auto& result : fleet->results) {
      fingerprints.push_back(VerdictFingerprint(result));
    }
    // With a shared cache the server sees at most as many queries as the
    // relations issued, and the cache classifies every request.
    EXPECT_LE(fleet->candidate_stats.queries,
              fleet->candidate_stats.cache_hits +
                  fleet->candidate_stats.cache_misses);
    return fingerprints;
  };

  const auto sequential = run(1);
  EXPECT_EQ(run(2), sequential);
  EXPECT_EQ(run(8), sequential);
}

}  // namespace
}  // namespace sofya
