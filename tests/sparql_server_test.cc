// SparqlServer end-to-end: the SPARQL 1.1 Protocol bindings (GET ?query=,
// POST application/sparql-query, form POST), admission control (503/429
// shedding + Retry-After honored by the client retry stack), and the parity
// guarantee — an alignment through the server, over loopback AND over a
// real socket, is bit-identical to the same alignment on the local KB.

#include "endpoint/sparql_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/facade.h"
#include "endpoint/http_sparql_endpoint.h"
#include "endpoint/query_forms.h"
#include "endpoint/retrying_endpoint.h"
#include "net/http.h"
#include "net/http_server.h"
#include "net/loopback_transport.h"
#include "rdf/knowledge_base.h"
#include "sparql/results_json.h"
#include "synth/presets.h"
#include "synth/world_generator.h"

namespace sofya {
namespace {

/// Fixture: a small KB served by a SparqlServer, reachable through a
/// loopback transport exactly like a remote endpoint.
class SparqlServerTest : public ::testing::Test {
 protected:
  SparqlServerTest() : kb_("served", "http://t.org/") {
    for (int i = 0; i < 10; ++i) {
      kb_.AddFact("s" + std::to_string(i), "p", "o" + std::to_string(i % 3));
    }
    kb_.AddLiteralFact("s0", "label", "zero");
  }

  void StartServer(SparqlServerOptions options = {}) {
    server_ = std::make_unique<SparqlServer>(&kb_, std::move(options));
    transport_ = std::make_unique<LoopbackTransport>(
        server_->LoopbackHandler("client-a"));
  }

  std::unique_ptr<HttpSparqlEndpoint> MakeEndpoint(bool use_get = false) {
    HttpSparqlEndpointOptions options;
    options.name = "served";
    options.base_iri = "http://t.org/";
    options.use_get = use_get;
    return std::make_unique<HttpSparqlEndpoint>(
        ParseUrl("http://served.test/sparql").value(), transport_.get(),
        options);
  }

  /// A protocol request assembled by hand (for routing/negative cases).
  HttpResponse Dispatch(HttpRequest request,
                        const std::string& client = "client-a") {
    return server_->Handle(request, HttpServerClient{client, 0});
  }

  TermId ClientP(HttpSparqlEndpoint* ep) {
    return ep->EncodeTerm(Term::Iri("http://t.org/p"));
  }

  KnowledgeBase kb_;
  std::unique_ptr<SparqlServer> server_;
  std::unique_ptr<LoopbackTransport> transport_;
};

TEST_F(SparqlServerTest, PostBindingRoundTrips) {
  StartServer();
  auto endpoint = MakeEndpoint();
  auto result = endpoint->Select(queries::FactsOfPredicate(ClientP(
      endpoint.get())));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 10u);
  EXPECT_EQ(server_->queries_answered(), 1u);
}

TEST_F(SparqlServerTest, GetBindingRoundTripsThroughPercentCodec) {
  // use_get routes the query through FormUrlEncode on the client and
  // ParseQueryString on the server — SPARQL text full of spaces, '?', '<',
  // '{' survives the round trip or this returns nothing.
  StartServer();
  auto endpoint = MakeEndpoint(/*use_get=*/true);
  auto result = endpoint->Select(queries::FactsOfPredicate(ClientP(
      endpoint.get())));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 10u);

  auto ask = endpoint->Ask(queries::FactsOfPredicate(ClientP(
      endpoint.get())));
  ASSERT_TRUE(ask.ok()) << ask.status().ToString();
  EXPECT_TRUE(*ask);
}

TEST_F(SparqlServerTest, FormPostBindingIsAccepted) {
  StartServer();
  HttpRequest request;
  request.method = "POST";
  request.target = "/sparql";
  request.headers = {
      {"Content-Type", "application/x-www-form-urlencoded"}};
  request.body =
      "query=" +
      FormUrlEncode("SELECT ?s ?o WHERE { ?s <http://t.org/p> ?o }");
  HttpResponse response = Dispatch(request);
  ASSERT_EQ(response.status_code, 200) << response.body;

  Dictionary dict;
  auto rows = ParseSparqlResultsJson(
      response.body, [&dict](const Term& t) { return dict.Intern(t); });
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows.size(), 10u);
}

TEST_F(SparqlServerTest, RoutingAndNegotiationErrors) {
  StartServer();

  HttpRequest wrong_path;
  wrong_path.method = "GET";
  wrong_path.target = "/other?query=x";
  EXPECT_EQ(Dispatch(wrong_path).status_code, 404);

  HttpRequest no_query;
  no_query.method = "GET";
  no_query.target = "/sparql?other=1";
  EXPECT_EQ(Dispatch(no_query).status_code, 400);

  HttpRequest bad_escape;
  bad_escape.method = "GET";
  bad_escape.target = "/sparql?query=%zz";
  EXPECT_EQ(Dispatch(bad_escape).status_code, 400);

  HttpRequest bad_media;
  bad_media.method = "POST";
  bad_media.target = "/sparql";
  bad_media.headers = {{"Content-Type", "text/plain"}};
  bad_media.body = "SELECT ?s WHERE { ?s ?p ?o }";
  EXPECT_EQ(Dispatch(bad_media).status_code, 415);

  HttpRequest bad_method;
  bad_method.method = "DELETE";
  bad_method.target = "/sparql";
  EXPECT_EQ(Dispatch(bad_method).status_code, 405);

  HttpRequest bad_sparql;
  bad_sparql.method = "POST";
  bad_sparql.target = "/sparql";
  bad_sparql.headers = {{"Content-Type", "application/sparql-query"}};
  bad_sparql.body = "SELEKT nope";
  EXPECT_EQ(Dispatch(bad_sparql).status_code, 400);

  // Content-Type parameters do not break negotiation.
  HttpRequest with_charset;
  with_charset.method = "POST";
  with_charset.target = "/sparql";
  with_charset.headers = {
      {"Content-Type", "application/sparql-query; charset=UTF-8"}};
  with_charset.body = "SELECT ?s ?o WHERE { ?s <http://t.org/p> ?o }";
  EXPECT_EQ(Dispatch(with_charset).status_code, 200);
}

TEST_F(SparqlServerTest, StatusEndpointReportsJsonCounters) {
  StartServer();

  HttpRequest status;
  status.method = "GET";
  status.target = "/status";
  HttpResponse before = Dispatch(status);
  ASSERT_EQ(before.status_code, 200) << before.body;
  EXPECT_NE(before.body.find("\"requests\""), std::string::npos);
  EXPECT_NE(before.body.find("\"admission\""), std::string::npos);
  EXPECT_NE(before.body.find("\"plan_cache\""), std::string::npos);
  EXPECT_NE(before.body.find("\"store\""), std::string::npos);
  EXPECT_NE(before.body.find("\"answered\":0"), std::string::npos);
  // The store section reports the served KB's true size.
  EXPECT_NE(before.body.find("\"triples\":" + std::to_string(kb_.store().size())),
            std::string::npos);

  // Introspection is not a SPARQL query: it must not consume quota or
  // concurrency, and the query counters only move for real queries.
  auto endpoint = MakeEndpoint();
  ASSERT_TRUE(endpoint->Select(queries::FactsOfPredicate(ClientP(
      endpoint.get()))).ok());
  HttpResponse after = Dispatch(status);
  ASSERT_EQ(after.status_code, 200);
  EXPECT_NE(after.body.find("\"answered\":1"), std::string::npos);

  // Writes are not part of the protocol: anything but GET is rejected.
  HttpRequest post_status = status;
  post_status.method = "POST";
  HttpResponse rejected = Dispatch(post_status);
  EXPECT_EQ(rejected.status_code, 405);
}

TEST_F(SparqlServerTest, QuotaShedsWith429AndRetryAfter) {
  SparqlServerOptions options;
  options.per_client_query_quota = 2;
  options.retry_after_seconds = 7.0;
  StartServer(std::move(options));

  HttpRequest request;
  request.method = "POST";
  request.target = "/sparql";
  request.headers = {{"Content-Type", "application/sparql-query"}};
  request.body = "SELECT ?s ?o WHERE { ?s <http://t.org/p> ?o }";

  EXPECT_EQ(Dispatch(request).status_code, 200);
  EXPECT_EQ(Dispatch(request).status_code, 200);
  HttpResponse shed = Dispatch(request);
  EXPECT_EQ(shed.status_code, 429);
  const std::string* retry_after = FindHeader(shed.headers, "Retry-After");
  ASSERT_NE(retry_after, nullptr);
  EXPECT_EQ(*retry_after, "7");
  EXPECT_EQ(server_->shed_quota(), 1u);

  // The quota is per client: another client still gets answers.
  EXPECT_EQ(Dispatch(request, "client-b").status_code, 200);
}

TEST_F(SparqlServerTest, ConcurrencyCapSheds503ThenRecovers) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool inside = false;
  SparqlServerOptions options;
  options.max_concurrent = 1;
  options.pre_evaluate_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    inside = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  StartServer(std::move(options));

  HttpRequest request;
  request.method = "POST";
  request.target = "/sparql";
  request.headers = {{"Content-Type", "application/sparql-query"}};
  request.body = "SELECT ?s ?o WHERE { ?s <http://t.org/p> ?o }";

  // One query parks inside evaluation, holding the only slot...
  std::thread blocked([&] { EXPECT_EQ(Dispatch(request).status_code, 200); });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return inside; });
  }
  // ...so the next request is shed with 503 + Retry-After.
  HttpResponse shed = Dispatch(request, "client-b");
  EXPECT_EQ(shed.status_code, 503);
  EXPECT_NE(FindHeader(shed.headers, "Retry-After"), nullptr);
  EXPECT_EQ(server_->shed_concurrency(), 1u);

  // Release the slot: the server recovers, no restart needed.
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  blocked.join();
  options.pre_evaluate_hook = nullptr;
  HttpResponse recovered = Dispatch(request, "client-b");
  EXPECT_EQ(recovered.status_code, 200);
}

TEST_F(SparqlServerTest, ShedResponsesDriveTheClientRetrySchedule) {
  // End to end: a 503 shed's Retry-After is honored by RetryingEndpoint.
  // The first request parks a slot via the hook, the probe is shed with
  // Retry-After: 2, the retry stack sleeps exactly 2000 ms (collected, not
  // slept) and succeeds once the slot frees.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool inside = false;
  std::atomic<bool> hook_armed{true};
  SparqlServerOptions options;
  options.max_concurrent = 1;
  options.retry_after_seconds = 2.0;
  options.pre_evaluate_hook = [&] {
    if (!hook_armed.exchange(false)) return;  // Only the first query parks.
    std::unique_lock<std::mutex> lock(mu);
    inside = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  StartServer(std::move(options));
  auto endpoint = MakeEndpoint();

  std::thread blocked([&] {
    auto result = endpoint->Select(
        queries::FactsOfPredicate(ClientP(endpoint.get())));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return inside; });
  }

  std::vector<double> delays;
  RetryOptions retry;
  retry.max_retries = 10;
  retry.initial_backoff_ms = 5.0;
  retry.jitter = 0.0;
  retry.sleeper = [&](double ms) {
    delays.push_back(ms);
    // First shed observed: free the parked slot so a retry can succeed.
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
      cv.notify_all();
    }
    // Give the parked query a beat to finish and return its slot (the
    // asserted schedule is `delays`, not wall time).
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };
  RetryingEndpoint retrying(endpoint.get(), retry);
  auto result = retrying.Select(
      queries::FactsOfPredicate(ClientP(endpoint.get())));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 10u);
  blocked.join();

  ASSERT_FALSE(delays.empty());
  // The honored delay is the server's hint, not the 5 ms schedule.
  EXPECT_DOUBLE_EQ(delays[0], 2000.0);
}

// ------------------------------------------------------------ parity suite

/// Builds the facade over two SparqlServers reachable through `transports`
/// (loopback or socket endpoints built by the caller).
void ExpectAlignmentParity(Sofya& remote, Sofya& local) {
  auto remote_relations = remote.ReferenceRelations();
  ASSERT_TRUE(remote_relations.ok())
      << remote_relations.status().ToString();
  auto local_relations = local.ReferenceRelations();
  ASSERT_TRUE(local_relations.ok());
  EXPECT_EQ(*remote_relations, *local_relations);
  ASSERT_FALSE(remote_relations->empty());

  for (const std::string& relation : *remote_relations) {
    auto remote_result = remote.Align(relation);
    ASSERT_TRUE(remote_result.ok()) << remote_result.status().ToString();
    auto local_result = local.Align(relation);
    ASSERT_TRUE(local_result.ok());
    ASSERT_EQ((*remote_result)->verdicts.size(),
              (*local_result)->verdicts.size())
        << relation;
    for (size_t i = 0; i < (*remote_result)->verdicts.size(); ++i) {
      EXPECT_EQ((*remote_result)->verdicts[i].relation,
                (*local_result)->verdicts[i].relation);
      EXPECT_EQ((*remote_result)->verdicts[i].accepted,
                (*local_result)->verdicts[i].accepted);
      EXPECT_EQ((*remote_result)->verdicts[i].equivalence,
                (*local_result)->verdicts[i].equivalence);
    }
  }
}

TEST(SparqlServerParityTest, LoopbackAlignmentMatchesLocalBitForBit) {
  auto world = std::move(GenerateWorld(TinyWorldSpec())).value();
  SparqlServer candidate_server(world.kb1.get());
  SparqlServer reference_server(world.kb2.get());
  LoopbackTransport candidate_transport(
      candidate_server.LoopbackHandler("aligner"));
  LoopbackTransport reference_transport(
      reference_server.LoopbackHandler("aligner"));

  HttpSparqlEndpointOptions c_options;
  c_options.name = world.kb1->name();
  c_options.base_iri = world.kb1->base_iri();
  HttpSparqlEndpointOptions r_options;
  r_options.name = world.kb2->name();
  r_options.base_iri = world.kb2->base_iri();
  auto candidate = std::make_unique<HttpSparqlEndpoint>(
      ParseUrl("http://kb1.test/sparql").value(), &candidate_transport,
      c_options);
  auto reference = std::make_unique<HttpSparqlEndpoint>(
      ParseUrl("http://kb2.test/sparql").value(), &reference_transport,
      r_options);

  SofyaOptions options;
  options.retry.initial_backoff_ms = 0.0;
  Sofya remote(std::move(candidate), std::move(reference), &world.links,
               options);
  Sofya local(world.kb1.get(), world.kb2.get(), &world.links, options);
  ExpectAlignmentParity(remote, local);

  // The server really answered the alignment's queries.
  EXPECT_GT(candidate_server.queries_answered(), 0u);
  EXPECT_GT(reference_server.queries_answered(), 0u);
  // And the wire added exactly one query of cost: ReferenceRelations()
  // enumerates the schema query-free on a local KB but costs one
  // SELECT DISTINCT ?p against a remote base. Everything else — probes,
  // batch dedup, paging — is query-for-query identical, because
  // HttpSparqlEndpoint dedups batch envelopes exactly like LocalEndpoint.
  EXPECT_EQ(remote.TotalCost().queries, local.TotalCost().queries + 1);
}

TEST(SparqlServerParityTest, RealSocketAlignmentMatchesLocalBitForBit) {
  // The full production path: two HttpServers on real ephemeral ports,
  // endpoints built from URLs via HttpSparqlEndpoint::Create (socket
  // transport), alignment verdicts identical to the in-process run.
  auto world = std::move(GenerateWorld(TinyWorldSpec())).value();
  SparqlServer candidate_server(world.kb1.get());
  SparqlServer reference_server(world.kb2.get());
  HttpServer candidate_http(candidate_server.HttpHandler());
  HttpServer reference_http(reference_server.HttpHandler());
  ASSERT_TRUE(candidate_http.Start().ok());
  ASSERT_TRUE(reference_http.Start().ok());

  HttpSparqlEndpointOptions c_options;
  c_options.name = world.kb1->name();
  c_options.base_iri = world.kb1->base_iri();
  HttpSparqlEndpointOptions r_options;
  r_options.name = world.kb2->name();
  r_options.base_iri = world.kb2->base_iri();
  auto candidate = HttpSparqlEndpoint::Create(
      "http://127.0.0.1:" + std::to_string(candidate_http.port()) +
          "/sparql",
      c_options);
  ASSERT_TRUE(candidate.ok()) << candidate.status().ToString();
  auto reference = HttpSparqlEndpoint::Create(
      "http://127.0.0.1:" + std::to_string(reference_http.port()) +
          "/sparql",
      r_options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  SofyaOptions options;
  options.retry.initial_backoff_ms = 0.0;
  Sofya remote(std::move(*candidate), std::move(*reference), &world.links,
               options);
  Sofya local(world.kb1.get(), world.kb2.get(), &world.links, options);
  ExpectAlignmentParity(remote, local);

  EXPECT_GT(candidate_http.requests_served(), 0u);
  EXPECT_GT(reference_http.requests_served(), 0u);
  candidate_http.Stop();
  reference_http.Stop();
}

}  // namespace
}  // namespace sofya
