#include "rdf/triple_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "rdf/triple.h"
#include "util/random.h"

namespace sofya {
namespace {

TEST(TripleStoreTest, InsertAndContains) {
  TripleStore store;
  EXPECT_TRUE(store.Insert(1, 2, 3));
  EXPECT_TRUE(store.Contains(1, 2, 3));
  EXPECT_FALSE(store.Contains(1, 2, 4));
  EXPECT_EQ(store.size(), 1u);
}

TEST(TripleStoreTest, InsertDeduplicates) {
  TripleStore store;
  EXPECT_TRUE(store.Insert(1, 2, 3));
  EXPECT_FALSE(store.Insert(1, 2, 3));
  EXPECT_EQ(store.size(), 1u);
}

TEST(TripleStoreTest, EraseRemoves) {
  TripleStore store;
  store.Insert(1, 2, 3);
  store.Insert(1, 2, 4);
  EXPECT_TRUE(store.Erase(Triple(1, 2, 3)));
  EXPECT_FALSE(store.Erase(Triple(1, 2, 3)));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.Contains(1, 2, 3));
  EXPECT_TRUE(store.Contains(1, 2, 4));
  // Scans still coherent after erase.
  EXPECT_EQ(store.Match(TriplePattern(1, 0, 0)).size(), 1u);
}

TEST(TripleStoreTest, MatchBySubject) {
  TripleStore store;
  store.Insert(1, 10, 100);
  store.Insert(1, 11, 101);
  store.Insert(2, 10, 100);
  auto rows = store.Match(TriplePattern(1, 0, 0));
  EXPECT_EQ(rows.size(), 2u);
  for (const auto& t : rows) EXPECT_EQ(t.subject, 1u);
}

TEST(TripleStoreTest, MatchByPredicate) {
  TripleStore store;
  store.Insert(1, 10, 100);
  store.Insert(2, 10, 101);
  store.Insert(3, 11, 100);
  EXPECT_EQ(store.Match(TriplePattern(0, 10, 0)).size(), 2u);
  EXPECT_EQ(store.CountMatches(TriplePattern(0, 10, 0)), 2u);
}

TEST(TripleStoreTest, MatchByObjectAndSubjectObject) {
  TripleStore store;
  store.Insert(1, 10, 100);
  store.Insert(2, 11, 100);
  store.Insert(1, 12, 100);
  EXPECT_EQ(store.Match(TriplePattern(0, 0, 100)).size(), 3u);
  EXPECT_EQ(store.Match(TriplePattern(1, 0, 100)).size(), 2u);
}

TEST(TripleStoreTest, FullScanAndPointLookup) {
  TripleStore store;
  store.Insert(1, 10, 100);
  store.Insert(2, 11, 101);
  EXPECT_EQ(store.Match(TriplePattern()).size(), 2u);
  EXPECT_EQ(store.Match(TriplePattern(1, 10, 100)).size(), 1u);
  EXPECT_EQ(store.Match(TriplePattern(1, 10, 101)).size(), 0u);
}

TEST(TripleStoreTest, ForEachMatchEarlyStop) {
  TripleStore store;
  for (TermId i = 1; i <= 10; ++i) store.Insert(i, 1, i + 100);
  size_t seen = 0;
  store.ForEachMatch(TriplePattern(0, 1, 0), [&](const Triple&) {
    ++seen;
    return seen < 3;
  });
  EXPECT_EQ(seen, 3u);
}

TEST(TripleStoreTest, ObjectsAndSubjectsAreDistinctSorted) {
  TripleStore store;
  store.Insert(1, 10, 103);
  store.Insert(1, 10, 101);
  store.Insert(1, 10, 102);
  store.Insert(2, 10, 101);
  auto objects = store.Objects(1, 10);
  EXPECT_EQ(objects, (std::vector<TermId>{101, 102, 103}));
  auto subjects = store.Subjects(10, 101);
  EXPECT_EQ(subjects, (std::vector<TermId>{1, 2}));
}

TEST(TripleStoreTest, SubjectsOfAndPredicates) {
  TripleStore store;
  store.Insert(3, 20, 1);
  store.Insert(1, 20, 2);
  store.Insert(1, 21, 3);
  EXPECT_EQ(store.SubjectsOf(20), (std::vector<TermId>{1, 3}));
  EXPECT_EQ(store.Predicates(), (std::vector<TermId>{20, 21}));
}

TEST(TripleStoreTest, StatsForComputesFunctionality) {
  TripleStore store;
  // Predicate 5: 2 subjects, 3 facts, 3 distinct objects.
  store.Insert(1, 5, 100);
  store.Insert(1, 5, 101);
  store.Insert(2, 5, 102);
  PredicateStats stats = store.StatsFor(5);
  EXPECT_EQ(stats.facts, 3u);
  EXPECT_EQ(stats.distinct_subjects, 2u);
  EXPECT_EQ(stats.distinct_objects, 3u);
  EXPECT_DOUBLE_EQ(stats.functionality(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats.inverse_functionality(), 1.0);
}

TEST(TripleStoreTest, StatsForAbsentPredicateIsZero) {
  TripleStore store;
  PredicateStats stats = store.StatsFor(99);
  EXPECT_EQ(stats.facts, 0u);
  EXPECT_DOUBLE_EQ(stats.functionality(), 0.0);
}

TEST(TripleStoreTest, StatsCacheInvalidatedByWrites) {
  TripleStore store;
  store.Insert(1, 5, 100);
  EXPECT_EQ(store.StatsFor(5).facts, 1u);
  store.Insert(2, 5, 101);
  EXPECT_EQ(store.StatsFor(5).facts, 2u);
}

// Regression: the stats memo is keyed off mutation_epoch(), so a stale
// entry can never survive a KB edit — including Erase, and including stats
// for a predicate *other* than the touched one (the epoch bump drops the
// whole memo).
TEST(TripleStoreTest, StaleStatsCannotSurviveMutation) {
  TripleStore store;
  store.Insert(1, 5, 100);
  store.Insert(2, 5, 101);
  store.Insert(1, 7, 200);
  const uint64_t epoch0 = store.mutation_epoch();
  EXPECT_EQ(store.StatsFor(5).facts, 2u);
  EXPECT_EQ(store.StatsFor(7).facts, 1u);  // Both memoized now.

  ASSERT_TRUE(store.Erase(Triple(2, 5, 101)));
  EXPECT_GT(store.mutation_epoch(), epoch0);
  EXPECT_EQ(store.StatsFor(5).facts, 1u);
  EXPECT_EQ(store.StatsFor(5).distinct_subjects, 1u);
  // Unrelated predicate re-reads fresh too (memo dropped wholesale).
  EXPECT_EQ(store.StatsFor(7).facts, 1u);

  // A duplicate insert is a no-op: the epoch must not move, so cached
  // derived state (e.g. compiled plans) stays valid.
  const uint64_t epoch1 = store.mutation_epoch();
  EXPECT_FALSE(store.Insert(1, 5, 100));
  EXPECT_EQ(store.mutation_epoch(), epoch1);
}

TEST(TripleStoreTest, GlobalStatsTrackMutations) {
  TripleStore store;
  store.Insert(1, 5, 100);
  store.Insert(2, 5, 100);
  store.Insert(2, 6, 101);
  StoreStats global = store.GlobalStats();
  EXPECT_EQ(global.triples, 3u);
  EXPECT_EQ(global.distinct_subjects, 2u);
  EXPECT_EQ(global.distinct_predicates, 2u);
  EXPECT_EQ(global.distinct_objects, 2u);

  store.Insert(3, 7, 102);
  global = store.GlobalStats();  // Memo invalidated by the epoch bump.
  EXPECT_EQ(global.triples, 4u);
  EXPECT_EQ(global.distinct_subjects, 3u);
  EXPECT_EQ(global.distinct_predicates, 3u);
  EXPECT_EQ(global.distinct_objects, 3u);
}

TEST(TripleStoreTest, InterleavedWritesAndReads) {
  TripleStore store;
  store.Insert(1, 2, 3);
  EXPECT_EQ(store.Match(TriplePattern(0, 2, 0)).size(), 1u);
  store.Insert(4, 2, 5);  // Write after read re-dirties indexes.
  EXPECT_EQ(store.Match(TriplePattern(0, 2, 0)).size(), 2u);
}

// Property: every pattern shape agrees with a brute-force filter over
// randomly generated triples.
class TripleStorePatternProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(TripleStorePatternProperty, MatchesAgreeWithBruteForce) {
  Rng rng(GetParam());
  TripleStore store;
  std::vector<Triple> all;
  for (int i = 0; i < 400; ++i) {
    Triple t(static_cast<TermId>(1 + rng.Below(12)),
             static_cast<TermId>(1 + rng.Below(6)),
             static_cast<TermId>(1 + rng.Below(12)));
    if (store.Insert(t)) all.push_back(t);
  }

  auto brute = [&](const TriplePattern& p) {
    std::vector<Triple> out;
    for (const Triple& t : all) {
      if (p.Matches(t)) out.push_back(t);
    }
    std::sort(out.begin(), out.end());
    return out;
  };

  for (int trial = 0; trial < 200; ++trial) {
    TriplePattern p(rng.Bernoulli(0.5) ? static_cast<TermId>(1 + rng.Below(12))
                                       : kNullTermId,
                    rng.Bernoulli(0.5) ? static_cast<TermId>(1 + rng.Below(6))
                                       : kNullTermId,
                    rng.Bernoulli(0.5) ? static_cast<TermId>(1 + rng.Below(12))
                                       : kNullTermId);
    std::vector<Triple> got = store.Match(p);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, brute(p))
        << "pattern (" << p.subject << "," << p.predicate << "," << p.object
        << ")";
    EXPECT_EQ(store.CountMatches(p), got.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TripleStorePatternProperty,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 17ULL, 99ULL));

// ---------------------------------------------------------------------------
// Sharded-store specifics: promotion, per-shard stat isolation, bulk load.
// ---------------------------------------------------------------------------

StoreOptions TinyShards() {
  return StoreOptions{/*num_hash_shards=*/2, /*promote_threshold=*/8,
                      /*split_factor=*/4};
}

TEST(ShardedStoreTest, HotPredicateGetsPromoted) {
  TripleStore store(TinyShards());
  const size_t base_shards = store.num_shards();
  for (TermId i = 1; i <= 20; ++i) store.Insert(i, 5, i + 100);
  EXPECT_EQ(store.PromotedPredicates(), (std::vector<TermId>{5}));
  EXPECT_EQ(store.num_shards(), base_shards + 4);  // split_factor sub-shards.
  // Promotion preserves every triple and every pattern shape.
  EXPECT_EQ(store.CountMatches(TriplePattern(0, 5, 0)), 20u);
  EXPECT_EQ(store.Match(TriplePattern(3, 5, 0)).size(), 1u);
  EXPECT_EQ(store.Match(TriplePattern(0, 5, 103)).size(), 1u);
  EXPECT_EQ(store.StatsFor(5).facts, 20u);
  EXPECT_EQ(store.StatsFor(5).distinct_subjects, 20u);
}

TEST(ShardedStoreTest, StatsRecomputeIsolatedPerPredicate) {
  // Find a predicate pair that lands in different hash shards: write to
  // one and check the other's memo survives. The shard hash is fixed, so
  // once a pair separates it separates on every platform.
  bool found_isolated_pair = false;
  for (TermId p2 = 2; p2 <= 16 && !found_isolated_pair; ++p2) {
    TripleStore store(TinyShards());
    const TermId p1 = 1;
    store.Insert(1, p1, 100);
    store.Insert(2, p1, 101);
    store.Insert(1, p2, 200);
    (void)store.StatsFor(p1);
    (void)store.StatsFor(p2);
    const uint64_t warm = store.stats_recomputes();
    // Re-reads are memoized: no new recomputes.
    (void)store.StatsFor(p1);
    (void)store.StatsFor(p2);
    ASSERT_EQ(store.stats_recomputes(), warm);

    // Write to p1: its own memo must drop...
    store.Insert(3, p1, 102);
    EXPECT_EQ(store.StatsFor(p1).facts, 3u);
    const uint64_t after_p1 = store.stats_recomputes();
    EXPECT_GT(after_p1, warm);
    // ...and if p2 lives in another shard, its memo must survive.
    EXPECT_EQ(store.StatsFor(p2).facts, 1u);
    if (store.stats_recomputes() == after_p1) found_isolated_pair = true;
  }
  EXPECT_TRUE(found_isolated_pair)
      << "no predicate pair separated across 2 hash shards";
}

TEST(ShardedStoreTest, PromotedPredicateWritesDoNotTouchTail) {
  TripleStore store(TinyShards());
  for (TermId i = 1; i <= 20; ++i) store.Insert(i, 5, i + 100);  // Promoted.
  store.Insert(1, 6, 300);  // Tail predicate in a hash shard.
  ASSERT_EQ(store.PromotedPredicates(), (std::vector<TermId>{5}));
  (void)store.StatsFor(6);
  const uint64_t warm = store.stats_recomputes();
  // Writes to the promoted predicate go to its dedicated sub-shards; the
  // tail shard's memo must survive.
  store.Insert(100, 5, 999);
  EXPECT_EQ(store.StatsFor(6).facts, 1u);
  EXPECT_EQ(store.stats_recomputes(), warm);
}

TEST(ShardedStoreTest, EraseOnPromotedPredicate) {
  TripleStore store(TinyShards());
  for (TermId i = 1; i <= 20; ++i) store.Insert(i, 5, i + 100);
  ASSERT_EQ(store.PromotedPredicates(), (std::vector<TermId>{5}));
  const uint64_t epoch0 = store.mutation_epoch();
  ASSERT_TRUE(store.Erase(Triple(7, 5, 107)));
  EXPECT_GT(store.mutation_epoch(), epoch0);
  EXPECT_EQ(store.size(), 19u);
  EXPECT_FALSE(store.Contains(7, 5, 107));
  EXPECT_EQ(store.StatsFor(5).facts, 19u);
  EXPECT_EQ(store.StatsFor(5).distinct_subjects, 19u);
  EXPECT_EQ(store.CountMatches(TriplePattern(0, 5, 0)), 19u);
  EXPECT_EQ(store.GlobalStats().triples, 19u);
}

TEST(ShardedStoreTest, BulkLoadBumpsEpochOnce) {
  TripleStore store(TinyShards());
  store.Insert(1, 2, 3);
  const uint64_t epoch0 = store.mutation_epoch();
  {
    TripleStore::BulkLoadScope bulk(&store, /*expected=*/64);
    for (TermId i = 1; i <= 30; ++i) {
      store.Insert(i, 5, i + 100);
      store.Insert(i, 6, i + 200);
    }
    // Inside the scope the epoch is frozen.
    EXPECT_EQ(store.mutation_epoch(), epoch0);
  }
  // One bump for the whole batch, promotion applied at scope end.
  EXPECT_EQ(store.mutation_epoch(), epoch0 + 1);
  EXPECT_EQ(store.size(), 61u);
  auto promoted = store.PromotedPredicates();
  EXPECT_EQ(promoted, (std::vector<TermId>{5, 6}));
  EXPECT_EQ(store.StatsFor(5).facts, 30u);
  EXPECT_EQ(store.CountMatches(TriplePattern(0, 6, 0)), 30u);

  // An empty bulk scope must not bump the epoch at all.
  const uint64_t epoch1 = store.mutation_epoch();
  { TripleStore::BulkLoadScope bulk(&store); }
  EXPECT_EQ(store.mutation_epoch(), epoch1);
}

TEST(ShardedStoreTest, StatsParityAcrossShardGeometries) {
  // The same data must yield identical stats regardless of shard layout.
  Rng rng(42);
  std::vector<Triple> data;
  for (int i = 0; i < 500; ++i) {
    data.emplace_back(static_cast<TermId>(1 + rng.Below(40)),
                      static_cast<TermId>(1 + rng.Below(5)),
                      static_cast<TermId>(1 + rng.Below(60)));
  }
  TripleStore baseline(StoreOptions{1, /*promote_threshold=*/1u << 30, 1});
  TripleStore sharded(StoreOptions{4, /*promote_threshold=*/32, 4});
  for (const Triple& t : data) {
    const bool a = baseline.Insert(t);
    const bool b = sharded.Insert(t);
    EXPECT_EQ(a, b);
  }
  ASSERT_EQ(baseline.size(), sharded.size());
  EXPECT_EQ(baseline.Predicates(), sharded.Predicates());
  for (TermId p : baseline.Predicates()) {
    const PredicateStats sa = baseline.StatsFor(p);
    const PredicateStats sb = sharded.StatsFor(p);
    EXPECT_EQ(sa.facts, sb.facts) << "pred " << p;
    EXPECT_EQ(sa.distinct_subjects, sb.distinct_subjects) << "pred " << p;
    EXPECT_EQ(sa.distinct_objects, sb.distinct_objects) << "pred " << p;
  }
  const StoreStats ga = baseline.GlobalStats();
  const StoreStats gb = sharded.GlobalStats();
  EXPECT_EQ(ga.triples, gb.triples);
  EXPECT_EQ(ga.distinct_subjects, gb.distinct_subjects);
  EXPECT_EQ(ga.distinct_predicates, gb.distinct_predicates);
  EXPECT_EQ(ga.distinct_objects, gb.distinct_objects);

  // And pattern results agree (sorted: cross-shard order may differ).
  for (TermId p : baseline.Predicates()) {
    auto a = baseline.Match(TriplePattern(0, p, 0));
    auto b = sharded.Match(TriplePattern(0, p, 0));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "pred " << p;
  }
}

// The randomized property suite again, this time over an aggressively
// sharded store so promotion and sub-shard routing face the same oracle.
class ShardedPatternProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardedPatternProperty, MatchesAgreeWithBruteForce) {
  Rng rng(GetParam());
  TripleStore store(StoreOptions{3, /*promote_threshold=*/24, 2});
  std::vector<Triple> all;
  for (int i = 0; i < 400; ++i) {
    Triple t(static_cast<TermId>(1 + rng.Below(12)),
             static_cast<TermId>(1 + rng.Below(6)),
             static_cast<TermId>(1 + rng.Below(12)));
    if (store.Insert(t)) all.push_back(t);
  }
  EXPECT_FALSE(store.PromotedPredicates().empty());

  auto brute = [&](const TriplePattern& p) {
    std::vector<Triple> out;
    for (const Triple& t : all) {
      if (p.Matches(t)) out.push_back(t);
    }
    std::sort(out.begin(), out.end());
    return out;
  };

  for (int trial = 0; trial < 200; ++trial) {
    TriplePattern p(rng.Bernoulli(0.5) ? static_cast<TermId>(1 + rng.Below(12))
                                       : kNullTermId,
                    rng.Bernoulli(0.5) ? static_cast<TermId>(1 + rng.Below(6))
                                       : kNullTermId,
                    rng.Bernoulli(0.5) ? static_cast<TermId>(1 + rng.Below(12))
                                       : kNullTermId);
    std::vector<Triple> got = store.Match(p);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, brute(p))
        << "pattern (" << p.subject << "," << p.predicate << "," << p.object
        << ")";
    EXPECT_EQ(store.CountMatches(p), got.size());

    // MatchView spans cover exactly the same entries ForEachMatch visits.
    size_t via_foreach = 0;
    store.ForEachMatch(p, [&](const Triple&) {
      ++via_foreach;
      return true;
    });
    EXPECT_EQ(via_foreach, got.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedPatternProperty,
                         ::testing::Values(7ULL, 23ULL, 51ULL));

}  // namespace
}  // namespace sofya
