#include "rdf/triple_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "rdf/triple.h"
#include "util/random.h"

namespace sofya {
namespace {

TEST(TripleStoreTest, InsertAndContains) {
  TripleStore store;
  EXPECT_TRUE(store.Insert(1, 2, 3));
  EXPECT_TRUE(store.Contains(1, 2, 3));
  EXPECT_FALSE(store.Contains(1, 2, 4));
  EXPECT_EQ(store.size(), 1u);
}

TEST(TripleStoreTest, InsertDeduplicates) {
  TripleStore store;
  EXPECT_TRUE(store.Insert(1, 2, 3));
  EXPECT_FALSE(store.Insert(1, 2, 3));
  EXPECT_EQ(store.size(), 1u);
}

TEST(TripleStoreTest, EraseRemoves) {
  TripleStore store;
  store.Insert(1, 2, 3);
  store.Insert(1, 2, 4);
  EXPECT_TRUE(store.Erase(Triple(1, 2, 3)));
  EXPECT_FALSE(store.Erase(Triple(1, 2, 3)));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.Contains(1, 2, 3));
  EXPECT_TRUE(store.Contains(1, 2, 4));
  // Scans still coherent after erase.
  EXPECT_EQ(store.Match(TriplePattern(1, 0, 0)).size(), 1u);
}

TEST(TripleStoreTest, MatchBySubject) {
  TripleStore store;
  store.Insert(1, 10, 100);
  store.Insert(1, 11, 101);
  store.Insert(2, 10, 100);
  auto rows = store.Match(TriplePattern(1, 0, 0));
  EXPECT_EQ(rows.size(), 2u);
  for (const auto& t : rows) EXPECT_EQ(t.subject, 1u);
}

TEST(TripleStoreTest, MatchByPredicate) {
  TripleStore store;
  store.Insert(1, 10, 100);
  store.Insert(2, 10, 101);
  store.Insert(3, 11, 100);
  EXPECT_EQ(store.Match(TriplePattern(0, 10, 0)).size(), 2u);
  EXPECT_EQ(store.CountMatches(TriplePattern(0, 10, 0)), 2u);
}

TEST(TripleStoreTest, MatchByObjectAndSubjectObject) {
  TripleStore store;
  store.Insert(1, 10, 100);
  store.Insert(2, 11, 100);
  store.Insert(1, 12, 100);
  EXPECT_EQ(store.Match(TriplePattern(0, 0, 100)).size(), 3u);
  EXPECT_EQ(store.Match(TriplePattern(1, 0, 100)).size(), 2u);
}

TEST(TripleStoreTest, FullScanAndPointLookup) {
  TripleStore store;
  store.Insert(1, 10, 100);
  store.Insert(2, 11, 101);
  EXPECT_EQ(store.Match(TriplePattern()).size(), 2u);
  EXPECT_EQ(store.Match(TriplePattern(1, 10, 100)).size(), 1u);
  EXPECT_EQ(store.Match(TriplePattern(1, 10, 101)).size(), 0u);
}

TEST(TripleStoreTest, ForEachMatchEarlyStop) {
  TripleStore store;
  for (TermId i = 1; i <= 10; ++i) store.Insert(i, 1, i + 100);
  size_t seen = 0;
  store.ForEachMatch(TriplePattern(0, 1, 0), [&](const Triple&) {
    ++seen;
    return seen < 3;
  });
  EXPECT_EQ(seen, 3u);
}

TEST(TripleStoreTest, ObjectsAndSubjectsAreDistinctSorted) {
  TripleStore store;
  store.Insert(1, 10, 103);
  store.Insert(1, 10, 101);
  store.Insert(1, 10, 102);
  store.Insert(2, 10, 101);
  auto objects = store.Objects(1, 10);
  EXPECT_EQ(objects, (std::vector<TermId>{101, 102, 103}));
  auto subjects = store.Subjects(10, 101);
  EXPECT_EQ(subjects, (std::vector<TermId>{1, 2}));
}

TEST(TripleStoreTest, SubjectsOfAndPredicates) {
  TripleStore store;
  store.Insert(3, 20, 1);
  store.Insert(1, 20, 2);
  store.Insert(1, 21, 3);
  EXPECT_EQ(store.SubjectsOf(20), (std::vector<TermId>{1, 3}));
  EXPECT_EQ(store.Predicates(), (std::vector<TermId>{20, 21}));
}

TEST(TripleStoreTest, StatsForComputesFunctionality) {
  TripleStore store;
  // Predicate 5: 2 subjects, 3 facts, 3 distinct objects.
  store.Insert(1, 5, 100);
  store.Insert(1, 5, 101);
  store.Insert(2, 5, 102);
  PredicateStats stats = store.StatsFor(5);
  EXPECT_EQ(stats.facts, 3u);
  EXPECT_EQ(stats.distinct_subjects, 2u);
  EXPECT_EQ(stats.distinct_objects, 3u);
  EXPECT_DOUBLE_EQ(stats.functionality(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats.inverse_functionality(), 1.0);
}

TEST(TripleStoreTest, StatsForAbsentPredicateIsZero) {
  TripleStore store;
  PredicateStats stats = store.StatsFor(99);
  EXPECT_EQ(stats.facts, 0u);
  EXPECT_DOUBLE_EQ(stats.functionality(), 0.0);
}

TEST(TripleStoreTest, StatsCacheInvalidatedByWrites) {
  TripleStore store;
  store.Insert(1, 5, 100);
  EXPECT_EQ(store.StatsFor(5).facts, 1u);
  store.Insert(2, 5, 101);
  EXPECT_EQ(store.StatsFor(5).facts, 2u);
}

// Regression: the stats memo is keyed off mutation_epoch(), so a stale
// entry can never survive a KB edit — including Erase, and including stats
// for a predicate *other* than the touched one (the epoch bump drops the
// whole memo).
TEST(TripleStoreTest, StaleStatsCannotSurviveMutation) {
  TripleStore store;
  store.Insert(1, 5, 100);
  store.Insert(2, 5, 101);
  store.Insert(1, 7, 200);
  const uint64_t epoch0 = store.mutation_epoch();
  EXPECT_EQ(store.StatsFor(5).facts, 2u);
  EXPECT_EQ(store.StatsFor(7).facts, 1u);  // Both memoized now.

  ASSERT_TRUE(store.Erase(Triple(2, 5, 101)));
  EXPECT_GT(store.mutation_epoch(), epoch0);
  EXPECT_EQ(store.StatsFor(5).facts, 1u);
  EXPECT_EQ(store.StatsFor(5).distinct_subjects, 1u);
  // Unrelated predicate re-reads fresh too (memo dropped wholesale).
  EXPECT_EQ(store.StatsFor(7).facts, 1u);

  // A duplicate insert is a no-op: the epoch must not move, so cached
  // derived state (e.g. compiled plans) stays valid.
  const uint64_t epoch1 = store.mutation_epoch();
  EXPECT_FALSE(store.Insert(1, 5, 100));
  EXPECT_EQ(store.mutation_epoch(), epoch1);
}

TEST(TripleStoreTest, GlobalStatsTrackMutations) {
  TripleStore store;
  store.Insert(1, 5, 100);
  store.Insert(2, 5, 100);
  store.Insert(2, 6, 101);
  StoreStats global = store.GlobalStats();
  EXPECT_EQ(global.triples, 3u);
  EXPECT_EQ(global.distinct_subjects, 2u);
  EXPECT_EQ(global.distinct_predicates, 2u);
  EXPECT_EQ(global.distinct_objects, 2u);

  store.Insert(3, 7, 102);
  global = store.GlobalStats();  // Memo invalidated by the epoch bump.
  EXPECT_EQ(global.triples, 4u);
  EXPECT_EQ(global.distinct_subjects, 3u);
  EXPECT_EQ(global.distinct_predicates, 3u);
  EXPECT_EQ(global.distinct_objects, 3u);
}

TEST(TripleStoreTest, InterleavedWritesAndReads) {
  TripleStore store;
  store.Insert(1, 2, 3);
  EXPECT_EQ(store.Match(TriplePattern(0, 2, 0)).size(), 1u);
  store.Insert(4, 2, 5);  // Write after read re-dirties indexes.
  EXPECT_EQ(store.Match(TriplePattern(0, 2, 0)).size(), 2u);
}

// Property: every pattern shape agrees with a brute-force filter over
// randomly generated triples.
class TripleStorePatternProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(TripleStorePatternProperty, MatchesAgreeWithBruteForce) {
  Rng rng(GetParam());
  TripleStore store;
  std::vector<Triple> all;
  for (int i = 0; i < 400; ++i) {
    Triple t(static_cast<TermId>(1 + rng.Below(12)),
             static_cast<TermId>(1 + rng.Below(6)),
             static_cast<TermId>(1 + rng.Below(12)));
    if (store.Insert(t)) all.push_back(t);
  }

  auto brute = [&](const TriplePattern& p) {
    std::vector<Triple> out;
    for (const Triple& t : all) {
      if (p.Matches(t)) out.push_back(t);
    }
    std::sort(out.begin(), out.end());
    return out;
  };

  for (int trial = 0; trial < 200; ++trial) {
    TriplePattern p(rng.Bernoulli(0.5) ? static_cast<TermId>(1 + rng.Below(12))
                                       : kNullTermId,
                    rng.Bernoulli(0.5) ? static_cast<TermId>(1 + rng.Below(6))
                                       : kNullTermId,
                    rng.Bernoulli(0.5) ? static_cast<TermId>(1 + rng.Below(12))
                                       : kNullTermId);
    std::vector<Triple> got = store.Match(p);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, brute(p))
        << "pattern (" << p.subject << "," << p.predicate << "," << p.object
        << ")";
    EXPECT_EQ(store.CountMatches(p), got.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TripleStorePatternProperty,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 17ULL, 99ULL));

}  // namespace
}  // namespace sofya
