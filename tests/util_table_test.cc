#include "util/table_writer.h"

#include <gtest/gtest.h>

#include <string>

namespace sofya {
namespace {

TEST(TableWriterTest, MarkdownLayout) {
  TableWriter t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToMarkdown(), "| a | b |\n|---|---|\n| 1 | 2 |\n");
}

TEST(TableWriterTest, ShortRowsArePadded) {
  TableWriter t({"a", "b", "c"});
  t.AddRow({"1"});
  EXPECT_EQ(t.num_cols(), 3u);
  const std::string csv = t.ToCsv();
  EXPECT_EQ(csv, "a,b,c\n1,,\n");
}

TEST(TableWriterTest, LongRowsWidenHeader) {
  TableWriter t({"a"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.num_cols(), 2u);
}

TEST(TableWriterTest, CsvQuotesSpecials) {
  TableWriter t({"x"});
  t.AddRow({"a,b"});
  t.AddRow({"say \"hi\""});
  t.AddRow({"line\nbreak"});
  EXPECT_EQ(t.ToCsv(),
            "x\n\"a,b\"\n\"say \"\"hi\"\"\"\n\"line\nbreak\"\n");
}

TEST(TableWriterTest, DoubleRowFormatting) {
  TableWriter t({"m", "p", "f1"});
  t.AddRow("pca", {0.553, 0.578});
  EXPECT_EQ(t.ToCsv(), "m,p,f1\npca,0.55,0.58\n");
}

TEST(TableWriterTest, AlignedColumnsLineUp) {
  TableWriter t({"long-header", "b"});
  t.AddRow({"x", "y"});
  const std::string out = t.ToAligned();
  // Header and row start at the same columns.
  const size_t header_b = out.find(" b");
  ASSERT_NE(header_b, std::string::npos);
  EXPECT_NE(out.find('\n'), std::string::npos);
}

TEST(TableWriterTest, CountsRows) {
  TableWriter t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1"});
  t.AddRow({"2"});
  EXPECT_EQ(t.num_rows(), 2u);
}

}  // namespace
}  // namespace sofya
