#include "mining/confidence.h"

#include <gtest/gtest.h>

#include <tuple>

#include "mining/evidence.h"
#include "mining/rule.h"
#include "util/random.h"

namespace sofya {
namespace {

PairEvidence Make(const std::string& x, const std::string& y, bool confirmed,
                  bool x_has_r) {
  PairEvidence e;
  e.x = Term::Iri(x);
  e.y = Term::Iri(y);
  e.confirmed = confirmed;
  e.x_has_r = x_has_r;
  return e;
}

TEST(EvidenceSetTest, CountersTrackObservations) {
  EvidenceSet ev;
  EXPECT_TRUE(ev.empty());
  EXPECT_TRUE(ev.Add(Make("x1", "y1", true, true)));
  EXPECT_TRUE(ev.Add(Make("x1", "y2", false, true)));
  EXPECT_TRUE(ev.Add(Make("x2", "y1", false, false)));
  EXPECT_EQ(ev.total_pairs(), 3u);
  EXPECT_EQ(ev.support(), 1u);
  EXPECT_EQ(ev.pca_body_size(), 2u);
}

TEST(EvidenceSetTest, DuplicatePairsIgnored) {
  EvidenceSet ev;
  EXPECT_TRUE(ev.Add(Make("x", "y", true, true)));
  EXPECT_FALSE(ev.Add(Make("x", "y", false, false)));  // First wins.
  EXPECT_EQ(ev.total_pairs(), 1u);
  EXPECT_EQ(ev.support(), 1u);
}

TEST(EvidenceSetTest, PairIdentityDistinguishesLiteralsFromIris) {
  EvidenceSet ev;
  PairEvidence a = Make("x", "y", false, false);
  PairEvidence b = a;
  b.y = Term::Literal("y");
  EXPECT_TRUE(ev.Add(a));
  EXPECT_TRUE(ev.Add(b));
  EXPECT_EQ(ev.total_pairs(), 2u);
}

TEST(ConfidenceTest, CwaFormulaEq1) {
  // 3 confirmed of 5 pairs => cwa = 0.6.
  EvidenceSet ev;
  ev.Add(Make("a", "1", true, true));
  ev.Add(Make("a", "2", true, true));
  ev.Add(Make("b", "1", true, true));
  ev.Add(Make("c", "1", false, false));
  ev.Add(Make("d", "1", false, false));
  EXPECT_DOUBLE_EQ(CwaConfidence(ev), 0.6);
}

TEST(ConfidenceTest, PcaFormulaEq2) {
  // Same evidence: PCA denominator only counts subjects with r-facts
  // (3 confirmed + 1 unconfirmed-but-known = 4) => pca = 3/4.
  EvidenceSet ev;
  ev.Add(Make("a", "1", true, true));
  ev.Add(Make("a", "2", true, true));
  ev.Add(Make("b", "1", true, true));
  ev.Add(Make("b", "2", false, true));  // b has r-facts; this pair missing.
  ev.Add(Make("c", "1", false, false));  // c unknown to r: not counted.
  EXPECT_DOUBLE_EQ(PcaConfidence(ev), 0.75);
  EXPECT_DOUBLE_EQ(CwaConfidence(ev), 0.6);
}

TEST(ConfidenceTest, EmptyEvidenceScoresZero) {
  EvidenceSet ev;
  EXPECT_DOUBLE_EQ(CwaConfidence(ev), 0.0);
  EXPECT_DOUBLE_EQ(PcaConfidence(ev), 0.0);
}

TEST(ConfidenceTest, PcaZeroWhenNoSubjectKnown) {
  EvidenceSet ev;
  ev.Add(Make("a", "1", false, false));
  EXPECT_DOUBLE_EQ(PcaConfidence(ev), 0.0);
  EXPECT_DOUBLE_EQ(CwaConfidence(ev), 0.0);
}

TEST(ConfidenceTest, SelectorDispatches) {
  EvidenceSet ev;
  ev.Add(Make("a", "1", true, true));
  ev.Add(Make("b", "1", false, false));
  EXPECT_DOUBLE_EQ(Confidence(ConfidenceMeasure::kCwa, ev), 0.5);
  EXPECT_DOUBLE_EQ(Confidence(ConfidenceMeasure::kPca, ev), 1.0);
}

TEST(ConfidenceTest, MeasureNames) {
  EXPECT_STREQ(ConfidenceMeasureName(ConfidenceMeasure::kCwa), "cwaconf");
  EXPECT_STREQ(ConfidenceMeasureName(ConfidenceMeasure::kPca), "pcaconf");
}

TEST(RuleTest, PopulateRuleStatsCopiesEverything) {
  EvidenceSet ev;
  ev.Add(Make("a", "1", true, true));
  ev.Add(Make("b", "1", false, true));
  ev.Add(Make("c", "1", false, false));
  Rule rule;
  rule.body = Term::Iri("kb1:r1");
  rule.head = Term::Iri("kb2:r2");
  PopulateRuleStats(ev, &rule);
  EXPECT_EQ(rule.support, 1u);
  EXPECT_EQ(rule.body_size, 3u);
  EXPECT_EQ(rule.pca_body_size, 2u);
  EXPECT_DOUBLE_EQ(rule.cwa_conf, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(rule.pca_conf, 0.5);
  const std::string text = rule.ToString();
  EXPECT_NE(text.find("kb1:r1"), std::string::npos);
  EXPECT_NE(text.find("=>"), std::string::npos);
}

TEST(RuleTest, AlignKindNames) {
  EXPECT_STREQ(AlignKindName(AlignKind::kNone), "none");
  EXPECT_STREQ(AlignKindName(AlignKind::kSubsumption), "subsumption");
  EXPECT_STREQ(AlignKindName(AlignKind::kEquivalence), "equivalence");
}

// Property: 0 <= cwa <= pca <= 1 for any evidence set (PCA's denominator is
// a subset of CWA's), and support <= pca_body <= pairs.
class ConfidenceInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConfidenceInvariants, OrderingHoldsOnRandomEvidence) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    EvidenceSet ev;
    const int n = 1 + static_cast<int>(rng.Below(30));
    for (int i = 0; i < n; ++i) {
      const bool x_has_r = rng.Bernoulli(0.6);
      // confirmed implies the subject has r-facts.
      const bool confirmed = x_has_r && rng.Bernoulli(0.5);
      ev.Add(Make("x" + std::to_string(rng.Below(8)),
                  "y" + std::to_string(i), confirmed, x_has_r));
    }
    const double cwa = CwaConfidence(ev);
    const double pca = PcaConfidence(ev);
    EXPECT_GE(cwa, 0.0);
    EXPECT_LE(cwa, pca + 1e-12);
    EXPECT_LE(pca, 1.0);
    EXPECT_LE(ev.support(), ev.pca_body_size());
    EXPECT_LE(ev.pca_body_size(), ev.total_pairs());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfidenceInvariants,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL, 5ULL));

}  // namespace
}  // namespace sofya
