#include "sameas/sameas_index.h"

#include <gtest/gtest.h>

#include "sameas/translator.h"
#include "sameas/union_find.h"
#include "util/random.h"

namespace sofya {
namespace {

TEST(UnionFindTest, SingletonsAreTheirOwnRoots) {
  UnionFind uf(3);
  EXPECT_EQ(uf.Find(0), 0u);
  EXPECT_EQ(uf.Find(2), 2u);
  EXPECT_FALSE(uf.Connected(0, 1));
}

TEST(UnionFindTest, UnionConnects) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(0, 1));  // Already merged.
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_EQ(uf.SetSize(1), 2u);
}

TEST(UnionFindTest, TransitivityAcrossChains) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(0, 3));
  EXPECT_EQ(uf.SetSize(0), 4u);
  EXPECT_FALSE(uf.Connected(0, 4));
}

TEST(UnionFindTest, GrowPreservesExistingSets) {
  UnionFind uf(2);
  uf.Union(0, 1);
  uf.Grow(5);
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 4));
  EXPECT_EQ(uf.size(), 5u);
}

// Property: union-find equivalence matches a brute-force reachability check.
class UnionFindProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnionFindProperty, MatchesBruteForceClosure) {
  Rng rng(GetParam());
  const size_t n = 40;
  UnionFind uf(n);
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) adj[i][i] = true;
  for (int e = 0; e < 30; ++e) {
    const size_t a = rng.Below(n);
    const size_t b = rng.Below(n);
    uf.Union(a, b);
    adj[a][b] = adj[b][a] = true;
  }
  // Floyd-Warshall closure.
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (adj[i][k] && adj[k][j]) adj[i][j] = true;
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      EXPECT_EQ(uf.Connected(i, j), adj[i][j]) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionFindProperty,
                         ::testing::Values(1ULL, 9ULL, 77ULL));

Term Kb1(const std::string& local) { return Term::Iri("http://kb1/" + local); }
Term Kb2(const std::string& local) { return Term::Iri("http://kb2/" + local); }

TEST(SameAsIndexTest, LinkMakesEquivalent) {
  SameAsIndex index;
  index.AddLink(Kb1("a"), Kb2("a"));
  EXPECT_TRUE(index.AreEquivalent(Kb1("a"), Kb2("a")));
  EXPECT_TRUE(index.AreEquivalent(Kb2("a"), Kb1("a")));
  EXPECT_FALSE(index.AreEquivalent(Kb1("a"), Kb2("b")));
  EXPECT_EQ(index.num_links(), 1u);
  EXPECT_EQ(index.num_terms(), 2u);
}

TEST(SameAsIndexTest, UnknownTermsNeverEquivalent) {
  SameAsIndex index;
  EXPECT_FALSE(index.AreEquivalent(Kb1("x"), Kb2("x")));
}

TEST(SameAsIndexTest, TransitiveChains) {
  SameAsIndex index;
  index.AddLink(Kb1("a"), Kb2("a"));
  index.AddLink(Kb2("a"), Term::Iri("http://kb3/a"));
  EXPECT_TRUE(index.AreEquivalent(Kb1("a"), Term::Iri("http://kb3/a")));
}

TEST(SameAsIndexTest, RedundantLinksDontInflateCount) {
  SameAsIndex index;
  index.AddLink(Kb1("a"), Kb2("a"));
  index.AddLink(Kb2("a"), Kb1("a"));
  EXPECT_EQ(index.num_links(), 1u);
}

TEST(SameAsIndexTest, EquivalentsOfExcludesSelf) {
  SameAsIndex index;
  index.AddLink(Kb1("a"), Kb2("a"));
  index.AddLink(Kb1("a"), Term::Iri("http://kb3/a"));
  auto eq = index.EquivalentsOf(Kb1("a"));
  ASSERT_EQ(eq.size(), 2u);
  for (const Term& t : eq) EXPECT_NE(t, Kb1("a"));
  EXPECT_TRUE(index.EquivalentsOf(Kb1("unknown")).empty());
}

TEST(SameAsIndexTest, TranslateToFindsNamespaceMatch) {
  SameAsIndex index;
  index.AddLink(Kb1("a"), Kb2("aX"));
  auto translated = index.TranslateTo(Kb1("a"), "http://kb2/");
  ASSERT_TRUE(translated.ok());
  EXPECT_EQ(*translated, Kb2("aX"));
}

TEST(SameAsIndexTest, TranslateToErrors) {
  SameAsIndex index;
  index.AddLink(Kb1("a"), Kb2("a"));
  EXPECT_TRUE(index.TranslateTo(Kb1("zzz"), "http://kb2/")
                  .status()
                  .IsNotFound());  // Unknown term.
  EXPECT_TRUE(index.TranslateTo(Kb1("a"), "http://kb9/")
                  .status()
                  .IsNotFound());  // No equivalent in that namespace.
}

TEST(SameAsIndexTest, TranslateToIdentityWhenAlreadyInNamespace) {
  SameAsIndex index;
  index.AddLink(Kb1("a"), Kb2("a"));
  auto same = index.TranslateTo(Kb1("a"), "http://kb1/");
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(*same, Kb1("a"));
}

TEST(SameAsIndexTest, UnindexedIriInTargetNamespaceTranslatesToItself) {
  // The shared-identifier regime: two KBs minting the same IRIs need no
  // links at all — an IRI already carrying the target prefix IS its own
  // translation, even when the index has never seen it.
  SameAsIndex empty;
  auto same = empty.TranslateTo(Kb1("a"), "http://kb1/");
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(*same, Kb1("a"));

  // Cross-namespace without a link is still untranslatable.
  EXPECT_TRUE(empty.TranslateTo(Kb1("a"), "http://kb2/").status().IsNotFound());
  // Literals have no namespace; the identity shortcut must not apply.
  EXPECT_FALSE(empty.TranslateTo(Term::Literal("http://kb1/x"), "http://kb1/")
                   .ok());
}

TEST(SameAsIndexTest, AmbiguousTranslationIsDeterministic) {
  SameAsIndex index;
  index.AddLink(Kb1("a"), Kb2("z"));
  index.AddLink(Kb1("a"), Kb2("b"));  // Noisy second link, same class.
  auto translated = index.TranslateTo(Kb1("a"), "http://kb2/");
  ASSERT_TRUE(translated.ok());
  EXPECT_EQ(*translated, Kb2("b"));  // Lexicographically smallest.
}

TEST(TranslatorTest, LiteralsPassThrough) {
  SameAsIndex index;
  CrossKbTranslator translator(&index, "http://kb2/");
  const Term lit = Term::Literal("42");
  auto t = translator.Translate(lit);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, lit);
  EXPECT_TRUE(translator.CanTranslate(lit));
}

TEST(TranslatorTest, IriGoesThroughLinks) {
  SameAsIndex index;
  index.AddLink(Kb1("a"), Kb2("a"));
  CrossKbTranslator translator(&index, "http://kb2/");
  EXPECT_TRUE(translator.CanTranslate(Kb1("a")));
  EXPECT_FALSE(translator.CanTranslate(Kb1("b")));
  EXPECT_EQ(translator.Translate(Kb1("a")).value(), Kb2("a"));
}

}  // namespace
}  // namespace sofya
