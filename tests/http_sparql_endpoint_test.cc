// Contract suite for HttpSparqlEndpoint against the in-process loopback
// SPARQL server — the whole wire path (HTTP framing, SPARQL serialization,
// results-JSON parsing, status mapping, pooling) with zero real network.

#include "endpoint/http_sparql_endpoint.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/facade.h"
#include "endpoint/paged_select.h"
#include "endpoint/query_forms.h"
#include "endpoint/retrying_endpoint.h"
#include "loopback_sparql_server.h"
#include "rdf/knowledge_base.h"
#include "synth/presets.h"
#include "synth/world_generator.h"

namespace sofya {
namespace {

/// Fixture: a KB with 10 facts of predicate p served over loopback HTTP.
class HttpSparqlEndpointTest : public ::testing::Test {
 protected:
  HttpSparqlEndpointTest() : kb_("httpkb", "http://t.org/") {
    for (int i = 0; i < 10; ++i) {
      kb_.AddFact("s" + std::to_string(i), "p", "o" + std::to_string(i % 3));
    }
    kb_.AddLiteralFact("s0", "label", "zero");
    server_ = std::make_unique<MockSparqlServer>(&kb_);
    transport_ = server_->MakeTransport();
    endpoint_ = MakeEndpoint(4);
  }

  std::unique_ptr<HttpSparqlEndpoint> MakeEndpoint(size_t max_connections) {
    HttpSparqlEndpointOptions options;
    options.name = "httpkb";
    options.base_iri = "http://t.org/";
    options.max_connections = max_connections;
    return std::make_unique<HttpSparqlEndpoint>(
        ParseUrl("http://mock.test/sparql").value(), transport_.get(),
        options);
  }

  /// The test predicate in the *client's* id space.
  TermId ClientP() { return endpoint_->EncodeTerm(Term::Iri("http://t.org/p")); }

  KnowledgeBase kb_;
  std::unique_ptr<MockSparqlServer> server_;
  std::unique_ptr<LoopbackTransport> transport_;
  std::unique_ptr<HttpSparqlEndpoint> endpoint_;
};

TEST_F(HttpSparqlEndpointTest, SelectRoundTripsBindings) {
  auto result = endpoint_->Select(queries::FactsOfPredicate(ClientP()));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 10u);
  ASSERT_EQ(result->var_names.size(), 2u);

  // Decoded terms match the server's data (distinct id spaces, same terms).
  std::set<std::string> objects;
  for (const auto& row : result->rows) {
    auto term = endpoint_->DecodeTerm(row[1]);
    ASSERT_TRUE(term.ok());
    objects.insert(term->lexical());
  }
  EXPECT_EQ(objects, (std::set<std::string>{"http://t.org/o0",
                                            "http://t.org/o1",
                                            "http://t.org/o2"}));

  const EndpointStats stats = endpoint_->stats();
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.rows_returned, 10u);
  EXPECT_GT(stats.bytes_estimated, 0u);
  EXPECT_EQ(server_->requests_served(), 1u);
}

TEST_F(HttpSparqlEndpointTest, LiteralBindingsSurviveTheWire) {
  const TermId s0 = endpoint_->EncodeTerm(Term::Iri("http://t.org/s0"));
  const TermId label =
      endpoint_->EncodeTerm(Term::Iri("http://t.org/label"));
  auto result = endpoint_->Select(queries::ObjectsOf(s0, label));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  auto term = endpoint_->DecodeTerm(result->rows[0][0]);
  ASSERT_TRUE(term.ok());
  EXPECT_TRUE(term->is_literal());
  EXPECT_EQ(term->lexical(), "zero");
}

TEST_F(HttpSparqlEndpointTest, AskShipsOneBooleanNoRows) {
  auto yes = endpoint_->Ask(queries::FactsOfPredicate(ClientP()));
  ASSERT_TRUE(yes.ok()) << yes.status().ToString();
  EXPECT_TRUE(*yes);

  auto no = endpoint_->Ask(queries::FactsOfPredicate(
      endpoint_->EncodeTerm(Term::Iri("http://t.org/absent"))));
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);

  EXPECT_EQ(endpoint_->stats().rows_returned, 0u);
  // The wire really carried ASK, not a LIMIT-1 SELECT.
  const std::vector<std::string> queries = server_->queries_received();
  ASSERT_EQ(queries.size(), 2u);
  EXPECT_EQ(queries[0].rfind("ASK", 0), 0u) << queries[0];
}

TEST_F(HttpSparqlEndpointTest, RetryAfterHeaderDrivesTheHonoredDelay) {
  // The server sheds two requests with 503 + "Retry-After: 3". The hint
  // must ride the Status into the retry policy: both waits are the
  // server's 3000 ms, not the client's own 5/10 ms schedule.
  server_->FailNextRequests(2, 503, /*retry_after_s=*/3);
  std::vector<double> delays;
  RetryOptions retry;
  retry.max_retries = 3;
  retry.initial_backoff_ms = 5.0;
  retry.jitter = 0.0;
  retry.sleeper = [&delays](double ms) { delays.push_back(ms); };
  RetryingEndpoint ep(endpoint_.get(), retry);

  auto result = ep.Select(queries::FactsOfPredicate(ClientP()));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 10u);
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_DOUBLE_EQ(delays[0], 3000.0);
  EXPECT_DOUBLE_EQ(delays[1], 3000.0);
}

TEST_F(HttpSparqlEndpointTest, OmittedRetryAfterFallsBackToOwnSchedule) {
  server_->FailNextRequests(2, 503, /*retry_after_s=*/-1);  // No header.
  std::vector<double> delays;
  RetryOptions retry;
  retry.max_retries = 3;
  retry.initial_backoff_ms = 5.0;
  retry.jitter = 0.0;
  retry.sleeper = [&delays](double ms) { delays.push_back(ms); };
  RetryingEndpoint ep(endpoint_.get(), retry);

  ASSERT_TRUE(ep.Select(queries::FactsOfPredicate(ClientP())).ok());
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_DOUBLE_EQ(delays[0], 5.0);
  EXPECT_DOUBLE_EQ(delays[1], 10.0);
}

TEST_F(HttpSparqlEndpointTest, PagedSelectComposesOverHttp) {
  PagedSelectOptions options;
  options.page_size = 3;
  auto merged =
      PagedSelect(endpoint_.get(), queries::FactsOfPredicate(ClientP()),
                  options);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->rows.size(), 10u);
  // 10 rows at page size 3 => 4 requests (last one short), all over HTTP.
  EXPECT_EQ(server_->requests_served(), 4u);
  // The pages really went out with OFFSET/LIMIT on the wire.
  const std::vector<std::string> queries = server_->queries_received();
  EXPECT_NE(queries[1].find("OFFSET 3"), std::string::npos) << queries[1];
  EXPECT_NE(queries[1].find("LIMIT 3"), std::string::npos);
}

TEST_F(HttpSparqlEndpointTest, OverLongPageIsTruncatedAndStops) {
  server_->OverdeliverRows(5);  // Server ignores LIMIT by up to 5 rows.
  PagedSelectOptions options;
  options.page_size = 3;
  options.max_rows = 6;
  auto merged =
      PagedSelect(endpoint_.get(), queries::FactsOfPredicate(ClientP()),
                  options);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  // Clamped to the page it asked for, then stopped: no runaway loop, no
  // blowing through max_rows.
  EXPECT_EQ(merged->rows.size(), 3u);
  EXPECT_EQ(server_->requests_served(), 1u);
}

TEST_F(HttpSparqlEndpointTest, RetryingEndpointRecovers503Burst) {
  server_->FailNextRequests(2);  // 503, 503, then healthy.
  std::vector<double> delays;
  RetryOptions retry;
  retry.max_retries = 3;
  retry.initial_backoff_ms = 10.0;
  retry.jitter = 0.0;
  retry.sleeper = [&delays](double ms) { delays.push_back(ms); };
  RetryingEndpoint retrying(endpoint_.get(), retry);

  auto result = retrying.Select(queries::FactsOfPredicate(ClientP()));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 10u);
  EXPECT_EQ(retrying.retries_performed(), 2u);
  EXPECT_EQ(server_->requests_served(), 3u);
  // Exponential, not zero-delay: the client waited before each re-issue.
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_DOUBLE_EQ(delays[0], 10.0);
  EXPECT_DOUBLE_EQ(delays[1], 20.0);
}

TEST_F(HttpSparqlEndpointTest, StatusMapping) {
  const SelectQuery query = queries::FactsOfPredicate(ClientP());
  server_->FailNextRequests(1, 429);
  EXPECT_TRUE(endpoint_->Select(query).status().IsUnavailable());
  server_->FailNextRequests(1, 503);
  EXPECT_TRUE(endpoint_->Select(query).status().IsUnavailable());
  server_->FailNextRequests(1, 504);
  EXPECT_TRUE(endpoint_->Select(query).status().IsUnavailable());
  server_->FailNextRequests(1, 400);
  EXPECT_TRUE(endpoint_->Select(query).status().IsInvalidArgument());
  server_->FailNextRequests(1, 404);
  EXPECT_TRUE(endpoint_->Select(query).status().IsNotFound());
  server_->FailNextRequests(1, 500);
  EXPECT_TRUE(endpoint_->Select(query).status().IsInternal());
  // Healthy again afterwards.
  EXPECT_TRUE(endpoint_->Select(query).ok());
}

TEST_F(HttpSparqlEndpointTest, ConnectFailureIsUnavailable) {
  transport_->FailNextConnects(1);
  auto first = endpoint_->Select(queries::FactsOfPredicate(ClientP()));
  EXPECT_TRUE(first.status().IsUnavailable()) << first.status().ToString();
  // And retryable: the next attempt connects fresh and succeeds.
  EXPECT_TRUE(endpoint_->Select(queries::FactsOfPredicate(ClientP())).ok());
}

TEST_F(HttpSparqlEndpointTest, MalformedResultsAreParseErrors) {
  server_->CorruptNextResponses(1);
  auto result = endpoint_->Select(queries::FactsOfPredicate(ClientP()));
  EXPECT_TRUE(result.status().IsParseError()) << result.status().ToString();
}

TEST_F(HttpSparqlEndpointTest, KeepAliveReusesOneConnection) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        endpoint_->Select(queries::FactsOfPredicate(ClientP())).ok());
  }
  EXPECT_EQ(transport_->connections_opened(), 1u);
}

TEST_F(HttpSparqlEndpointTest, ConnectionCloseForcesReconnect) {
  server_->CloseAfterEachResponse(true);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        endpoint_->Select(queries::FactsOfPredicate(ClientP())).ok());
  }
  EXPECT_EQ(transport_->connections_opened(), 3u);
}

TEST_F(HttpSparqlEndpointTest, SelectManyPipelinesOverBoundedPool) {
  endpoint_ = MakeEndpoint(/*max_connections=*/2);
  std::vector<SelectQuery> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(queries::FactsOfPredicate(ClientP(), /*limit=*/i + 1));
  }
  SelectBatchResult results = endpoint_->SelectMany(batch);
  ASSERT_TRUE(results.all_ok()) << results.FirstError().ToString();
  ASSERT_EQ(results.size(), batch.size());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(results.values[i].rows.size(), static_cast<size_t>(i + 1))
        << "batch position " << i;
  }
  EXPECT_EQ(server_->requests_served(), 8u);
  // Pipelined over at most max_connections sockets.
  EXPECT_LE(transport_->connections_opened(), 2u);
  EXPECT_EQ(endpoint_->stats().queries, 8u);
}

TEST_F(HttpSparqlEndpointTest, AskManyPipelines) {
  std::vector<SelectQuery> batch;
  batch.push_back(queries::FactsOfPredicate(ClientP()));
  batch.push_back(queries::FactsOfPredicate(
      endpoint_->EncodeTerm(Term::Iri("http://t.org/absent"))));
  batch.push_back(queries::FactsOfPredicate(ClientP()));
  AskBatchResult results = endpoint_->AskMany(batch);
  ASSERT_TRUE(results.all_ok()) << results.FirstError().ToString();
  EXPECT_EQ(results.values, (std::vector<bool>{true, false, true}));
  EXPECT_LE(transport_->connections_opened(), 4u);
}

TEST_F(HttpSparqlEndpointTest, KilledConnectionFailsOnlyItsSubQuery) {
  // One connection, sequential batch, first request's connection killed
  // before a single response byte: slot 0 reports Unavailable, every other
  // sub-query keeps its answer — the fail-fast contract would have thrown
  // all of them away.
  endpoint_ = MakeEndpoint(/*max_connections=*/1);
  server_->KillConnectionOnNextRequests(1);
  std::vector<SelectQuery> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(queries::FactsOfPredicate(ClientP(), /*limit=*/i + 1));
  }
  SelectBatchResult results = endpoint_->SelectMany(batch);
  EXPECT_TRUE(results.statuses[0].IsUnavailable())
      << results.statuses[0].ToString();
  for (size_t i = 1; i < results.size(); ++i) {
    ASSERT_TRUE(results.statuses[i].ok()) << "slot " << i;
    EXPECT_EQ(results.values[i].rows.size(), i + 1);
  }
  EXPECT_EQ(results.num_failed(), 1u);
}

TEST_F(HttpSparqlEndpointTest, RecoveryRetriesOnlyTheKilledSubQuery) {
  // Pipelined batch over 2 sockets with a retry layer on top. The server
  // kills one connection mid-pipeline; the batch still comes back fully
  // answered, and the server log shows exactly ONE re-issued query — the
  // killed one — never a re-execution of a sub-query that had already
  // succeeded. (Whether the re-issue came from the client's stale-reuse
  // guard or the retry layer's per-slot recovery, the query text crosses
  // the wire exactly twice.)
  endpoint_ = MakeEndpoint(/*max_connections=*/2);
  RetryOptions retry;
  retry.max_retries = 3;
  retry.initial_backoff_ms = 0.0;
  RetryingEndpoint recovering(endpoint_.get(), retry);

  server_->KillConnectionOnNextRequests(1);
  std::vector<SelectQuery> batch;
  for (int i = 0; i < 6; ++i) {
    batch.push_back(queries::FactsOfPredicate(ClientP(), /*limit=*/i + 1));
  }
  SelectBatchResult results = recovering.SelectMany(batch);
  ASSERT_TRUE(results.all_ok()) << results.FirstError().ToString();
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results.values[i].rows.size(), i + 1) << "slot " << i;
  }
  // 6 sub-queries + exactly 1 re-issue of the killed one.
  EXPECT_EQ(server_->requests_served(), 7u);
  std::map<std::string, int> times_seen;
  for (const std::string& text : server_->queries_received()) {
    ++times_seen[text];
  }
  int re_issued = 0;
  for (const auto& [text, count] : times_seen) {
    ASSERT_LE(count, 2) << "re-executed more than once: " << text;
    if (count == 2) ++re_issued;
  }
  EXPECT_EQ(re_issued, 1);  // Only the in-flight casualty.
}

TEST_F(HttpSparqlEndpointTest, FollowsSameOriginRedirectPreservingPost) {
  server_->RedirectNextRequests(1, 307, "/sparql-moved");
  auto result = endpoint_->Select(queries::FactsOfPredicate(ClientP()));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 10u);
  // The query was re-POSTed at the new target: same body, twice.
  const std::vector<std::string> queries = server_->queries_received();
  ASSERT_EQ(queries.size(), 2u);
  EXPECT_EQ(queries[0], queries[1]);
  // One client-visible query; the extra hop is transport plumbing.
  EXPECT_EQ(endpoint_->stats().queries, 1u);
}

TEST_F(HttpSparqlEndpointTest, FollowsAbsoluteSameOriginRedirect) {
  server_->RedirectNextRequests(1, 301, "http://mock.test/sparql-v2");
  auto result = endpoint_->Select(queries::FactsOfPredicate(ClientP()));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(server_->requests_served(), 2u);
}

TEST_F(HttpSparqlEndpointTest, RejectsCrossOriginRedirect) {
  server_->RedirectNextRequests(1, 302, "http://elsewhere.test/sparql");
  auto result = endpoint_->Select(queries::FactsOfPredicate(ClientP()));
  ASSERT_TRUE(result.status().IsInvalidArgument())
      << result.status().ToString();
  // The query body was never re-sent off-origin.
  EXPECT_EQ(server_->requests_served(), 1u);
}

TEST_F(HttpSparqlEndpointTest, SchemeRelativeRedirectIsCrossOriginChecked) {
  // "//host/path" is a network-path reference, not an origin-form path: it
  // must go through the same-origin gate, not be pasted into the request
  // target of the configured origin.
  server_->RedirectNextRequests(1, 302, "//elsewhere.test/sparql");
  auto result = endpoint_->Select(queries::FactsOfPredicate(ClientP()));
  ASSERT_TRUE(result.status().IsInvalidArgument())
      << result.status().ToString();
  EXPECT_EQ(server_->requests_served(), 1u);

  // The same-origin form of the reference IS followed.
  server_->RedirectNextRequests(1, 302, "//mock.test/sparql-alt");
  auto followed = endpoint_->Select(queries::FactsOfPredicate(ClientP()));
  ASSERT_TRUE(followed.ok()) << followed.status().ToString();
  EXPECT_EQ(followed->rows.size(), 10u);
}

TEST_F(HttpSparqlEndpointTest, Rejects303ForQueryPosts) {
  server_->RedirectNextRequests(1, 303, "/results/42");
  auto result = endpoint_->Select(queries::FactsOfPredicate(ClientP()));
  ASSERT_TRUE(result.status().IsInvalidArgument())
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("303"), std::string::npos);
}

TEST_F(HttpSparqlEndpointTest, RedirectChainsAreBounded) {
  server_->RedirectNextRequests(100, 308, "/sparql");  // Endless loop.
  auto result = endpoint_->Select(queries::FactsOfPredicate(ClientP()));
  ASSERT_TRUE(result.status().IsInvalidArgument())
      << result.status().ToString();
  // Default bound: the original request + max_redirects (5) hops.
  EXPECT_EQ(server_->requests_served(), 6u);
}

TEST_F(HttpSparqlEndpointTest, FacadeStacksDecoratorsOverHttp) {
  // The full client stack — cache over retry over the HTTP endpoint —
  // composed by the facade's remote constructor.
  auto world = std::move(GenerateWorld(TinyWorldSpec())).value();
  MockSparqlServer candidate_server(world.kb1.get());
  MockSparqlServer reference_server(world.kb2.get());
  auto candidate_transport = candidate_server.MakeTransport();
  auto reference_transport = reference_server.MakeTransport();

  HttpSparqlEndpointOptions c_options;
  c_options.name = world.kb1->name();
  c_options.base_iri = world.kb1->base_iri();
  HttpSparqlEndpointOptions r_options;
  r_options.name = world.kb2->name();
  r_options.base_iri = world.kb2->base_iri();
  auto candidate = std::make_unique<HttpSparqlEndpoint>(
      ParseUrl("http://kb1.test/sparql").value(), candidate_transport.get(),
      c_options);
  auto reference = std::make_unique<HttpSparqlEndpoint>(
      ParseUrl("http://kb2.test/sparql").value(), reference_transport.get(),
      r_options);

  SofyaOptions options;
  options.retry.initial_backoff_ms = 0.0;
  Sofya remote(std::move(candidate), std::move(reference), &world.links,
               options);

  // Remote relation discovery costs one SELECT DISTINCT query.
  auto relations = remote.ReferenceRelations();
  ASSERT_TRUE(relations.ok()) << relations.status().ToString();
  ASSERT_FALSE(relations->empty());

  // Alignment over the wire agrees with alignment in-process.
  Sofya local(world.kb1.get(), world.kb2.get(), &world.links, options);
  auto local_relations = local.ReferenceRelations();
  ASSERT_TRUE(local_relations.ok());
  EXPECT_EQ(*relations, *local_relations);

  const std::string relation = relations->front();
  auto remote_result = remote.Align(relation);
  ASSERT_TRUE(remote_result.ok()) << remote_result.status().ToString();
  auto local_result = local.Align(relation);
  ASSERT_TRUE(local_result.ok());
  ASSERT_EQ((*remote_result)->verdicts.size(),
            (*local_result)->verdicts.size());
  for (size_t i = 0; i < (*remote_result)->verdicts.size(); ++i) {
    EXPECT_EQ((*remote_result)->verdicts[i].relation,
              (*local_result)->verdicts[i].relation);
    EXPECT_EQ((*remote_result)->verdicts[i].accepted,
              (*local_result)->verdicts[i].accepted);
  }
  EXPECT_GT(candidate_server.requests_served(), 0u);
  EXPECT_GT(reference_server.requests_served(), 0u);
}

TEST_F(HttpSparqlEndpointTest, PartialBatchRecoveryKeepsVerdictParity) {
  // The end-to-end form of the recovery guarantee: connections die
  // mid-alignment on BOTH endpoints, the retry layer re-buys only the
  // casualties, and the verdicts are bit-identical to a clean local run.
  auto world = std::move(GenerateWorld(MoviesWorldSpec())).value();
  MockSparqlServer candidate_server(world.kb1.get());
  MockSparqlServer reference_server(world.kb2.get());
  auto candidate_transport = candidate_server.MakeTransport();
  auto reference_transport = reference_server.MakeTransport();

  HttpSparqlEndpointOptions c_options;
  c_options.name = world.kb1->name();
  c_options.base_iri = world.kb1->base_iri();
  HttpSparqlEndpointOptions r_options;
  r_options.name = world.kb2->name();
  r_options.base_iri = world.kb2->base_iri();
  auto candidate = std::make_unique<HttpSparqlEndpoint>(
      ParseUrl("http://kb1.test/sparql").value(), candidate_transport.get(),
      c_options);
  auto reference = std::make_unique<HttpSparqlEndpoint>(
      ParseUrl("http://kb2.test/sparql").value(), reference_transport.get(),
      r_options);

  SofyaOptions options;
  options.retry.initial_backoff_ms = 0.0;
  Sofya remote(std::move(candidate), std::move(reference), &world.links,
               options);

  // Kill a few connections up front on both servers: the first alignment
  // batches lose in-flight sub-queries and must recover surgically.
  candidate_server.KillConnectionOnNextRequests(2);
  reference_server.KillConnectionOnNextRequests(2);

  const std::string relation = "http://kb2.sofya.org/ontology/directedBy";
  auto remote_result = remote.Align(relation);
  ASSERT_TRUE(remote_result.ok()) << remote_result.status().ToString();

  Sofya local(world.kb1.get(), world.kb2.get(), &world.links, options);
  auto local_result = local.Align(relation);
  ASSERT_TRUE(local_result.ok());
  ASSERT_EQ((*remote_result)->verdicts.size(),
            (*local_result)->verdicts.size());
  for (size_t i = 0; i < (*remote_result)->verdicts.size(); ++i) {
    const CandidateVerdict& r = (*remote_result)->verdicts[i];
    const CandidateVerdict& l = (*local_result)->verdicts[i];
    EXPECT_EQ(r.relation, l.relation);
    EXPECT_EQ(r.accepted, l.accepted) << r.relation.lexical();
    EXPECT_EQ(r.equivalence, l.equivalence) << r.relation.lexical();
    EXPECT_DOUBLE_EQ(r.rule.pca_conf, l.rule.pca_conf);
  }
}

}  // namespace
}  // namespace sofya
