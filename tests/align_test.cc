#include "align/relation_aligner.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "align/candidate_finder.h"
#include "align/on_the_fly.h"
#include "endpoint/local_endpoint.h"
#include "endpoint/query_forms.h"
#include "synth/presets.h"
#include "synth/world_generator.h"

namespace sofya {
namespace {

class MoviesFixture : public ::testing::Test {
 protected:
  MoviesFixture()
      : world_(std::move(GenerateWorld(MoviesWorldSpec())).value()),
        cand_(world_.kb1.get()),
        ref_(world_.kb2.get()),
        to_cand_(&world_.links, cand_.base_iri()) {}

  static Term Director() {
    return Term::Iri("http://kb1.sofya.org/ontology/hasDirector");
  }
  static Term Producer() {
    return Term::Iri("http://kb1.sofya.org/ontology/hasProducer");
  }
  static Term Label() {
    return Term::Iri("http://kb1.sofya.org/ontology/label");
  }
  static Term DirectedBy() {
    return Term::Iri("http://kb2.sofya.org/ontology/directedBy");
  }
  static Term Name() {
    return Term::Iri("http://kb2.sofya.org/ontology/name");
  }

  SynthWorld world_;
  LocalEndpoint cand_;
  LocalEndpoint ref_;
  CrossKbTranslator to_cand_;
};

TEST_F(MoviesFixture, CandidateFinderDiscoversBothRelations) {
  CandidateFinder finder(&cand_, &ref_, &to_cand_);
  auto candidates = finder.FindCandidates(DirectedBy());
  ASSERT_TRUE(candidates.ok());
  ASSERT_GE(candidates->size(), 2u);
  std::vector<Term> relations;
  for (const auto& c : *candidates) {
    relations.push_back(c.relation);
    EXPECT_GE(c.cooccurrences, 1u);
  }
  EXPECT_NE(std::find(relations.begin(), relations.end(), Director()),
            relations.end());
  EXPECT_NE(std::find(relations.begin(), relations.end(), Producer()),
            relations.end());
  // Director co-occurs more often than producer (equivalence vs overlap).
  EXPECT_EQ((*candidates)[0].relation, Director());
}

TEST_F(MoviesFixture, CandidateFinderLiteralRelation) {
  CandidateFinder finder(&cand_, &ref_, &to_cand_);
  auto candidates = finder.FindCandidates(Name());
  ASSERT_TRUE(candidates.ok());
  ASSERT_FALSE(candidates->empty());
  EXPECT_EQ((*candidates)[0].relation, Label());
}

TEST_F(MoviesFixture, CandidateFinderUnknownRelationYieldsNothing) {
  CandidateFinder finder(&cand_, &ref_, &to_cand_);
  auto candidates =
      finder.FindCandidates(Term::Iri("http://kb2.sofya.org/ontology/nope"));
  ASSERT_TRUE(candidates.ok());
  EXPECT_TRUE(candidates->empty());
}

TEST_F(MoviesFixture, MaxCandidatesCapRespected) {
  CandidateFinderOptions options;
  options.max_candidates = 1;
  CandidateFinder finder(&cand_, &ref_, &to_cand_, options);
  auto candidates = finder.FindCandidates(DirectedBy());
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(candidates->size(), 1u);
}

TEST_F(MoviesFixture, AlignerAcceptsEquivalenceAndPrunesTrap) {
  AlignerOptions options;
  options.threshold = 0.3;
  options.use_ubs = true;
  options.check_equivalence = true;
  RelationAligner aligner(&cand_, &ref_, &world_.links, options);
  auto result = aligner.Align(DirectedBy());
  ASSERT_TRUE(result.ok());

  const CandidateVerdict* director = nullptr;
  const CandidateVerdict* producer = nullptr;
  for (const auto& v : result->verdicts) {
    if (v.relation == Director()) director = &v;
    if (v.relation == Producer()) producer = &v;
  }
  ASSERT_NE(director, nullptr);
  ASSERT_NE(producer, nullptr);

  EXPECT_TRUE(director->accepted);
  EXPECT_TRUE(director->equivalence);
  EXPECT_GT(director->rule.pca_conf, 0.9);

  EXPECT_TRUE(producer->passed_threshold);  // The trap fools PCA...
  EXPECT_TRUE(producer->ubs_subsumption_pruned);  // ...and UBS kills it.
  EXPECT_FALSE(producer->accepted);

  EXPECT_EQ(result->AcceptedSubsumptions(), std::vector<Term>{Director()});
  EXPECT_EQ(result->AcceptedEquivalences(), std::vector<Term>{Director()});
  EXPECT_GT(result->total_queries(), 0u);
}

TEST_F(MoviesFixture, WithoutUbsTrapSurvives) {
  AlignerOptions options;
  options.threshold = 0.3;
  options.use_ubs = false;
  options.check_equivalence = false;
  RelationAligner aligner(&cand_, &ref_, &world_.links, options);
  auto result = aligner.Align(DirectedBy());
  ASSERT_TRUE(result.ok());
  auto accepted = result->AcceptedSubsumptions();
  EXPECT_NE(std::find(accepted.begin(), accepted.end(), Producer()),
            accepted.end());
}

TEST_F(MoviesFixture, LiteralRelationAlignsAsEquivalence) {
  RelationAligner aligner(&cand_, &ref_, &world_.links);
  auto result = aligner.Align(Name());
  ASSERT_TRUE(result.ok());
  auto equivalences = result->AcceptedEquivalences();
  ASSERT_EQ(equivalences.size(), 1u);
  EXPECT_EQ(equivalences[0], Label());
}

TEST_F(MoviesFixture, MusicWorldEquivalenceDowngradedToSubsumption) {
  auto music = std::move(GenerateWorld(MusicWorldSpec())).value();
  LocalEndpoint cand(music.kb1.get());
  LocalEndpoint ref(music.kb2.get());
  RelationAligner aligner(&cand, &ref, &music.links);
  auto result =
      aligner.Align(Term::Iri("http://kb2.sofya.org/ontology/creatorOf"));
  ASSERT_TRUE(result.ok());
  // Both siblings are subsumed; neither is an accepted equivalence.
  EXPECT_EQ(result->AcceptedSubsumptions().size(), 2u);
  EXPECT_TRUE(result->AcceptedEquivalences().empty());
}

TEST_F(MoviesFixture, OnTheFlyCachesAlignments) {
  OnTheFlyAligner otf(&cand_, &ref_, &world_.links);
  ASSERT_TRUE(otf.AlignCached(DirectedBy()).ok());
  EXPECT_EQ(otf.alignments_performed(), 1u);
  EXPECT_EQ(otf.cache_size(), 1u);

  const uint64_t queries_before = cand_.stats().queries;
  auto cached = otf.AlignCached(DirectedBy());
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(otf.alignments_performed(), 1u);           // No re-run.
  EXPECT_EQ(cand_.stats().queries, queries_before);    // Zero new queries.

  otf.ClearCache();
  EXPECT_EQ(otf.cache_size(), 0u);
}

TEST_F(MoviesFixture, BestCandidatePrefersEquivalence) {
  OnTheFlyAligner otf(&cand_, &ref_, &world_.links);
  auto best = otf.BestCandidateFor(DirectedBy());
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(*best, Director());

  auto missing =
      otf.BestCandidateFor(Term::Iri("http://kb2.sofya.org/ontology/nope"));
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST_F(MoviesFixture, RewriteQueryTranslatesPredicatesAndEntities) {
  OnTheFlyAligner otf(&cand_, &ref_, &world_.links);

  // Pick a reference fact whose subject has a sameAs link.
  const TermId directed_by_id = ref_.LookupTerm(DirectedBy());
  auto facts = ref_.Select(queries::FactsOfPredicate(directed_by_id, 50));
  ASSERT_TRUE(facts.ok());
  CrossKbTranslator to_cand(&world_.links, cand_.base_iri());
  TermId subject_id = kNullTermId;
  for (const auto& row : facts->rows) {
    Term s = ref_.DecodeTerm(row[0]).value();
    if (to_cand.CanTranslate(s)) {
      subject_id = row[0];
      break;
    }
  }
  ASSERT_NE(subject_id, kNullTermId);

  SelectQuery q;
  const VarId who = q.NewVar("who");
  q.Where(NodeRef::Constant(subject_id), NodeRef::Constant(directed_by_id),
          NodeRef::Variable(who));
  q.Select({who});

  auto rewritten = otf.RewriteQuery(q);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  // The rewritten query must reference the candidate KB's relation.
  const PatternClause& clause = rewritten->clauses()[0];
  EXPECT_FALSE(clause.predicate.is_var());
  EXPECT_EQ(cand_.DecodeTerm(clause.predicate.term()).value(), Director());

  // And it must execute on the candidate endpoint.
  auto rows = cand_.Select(*rewritten);
  ASSERT_TRUE(rows.ok());
}

TEST_F(MoviesFixture, RewriteQueryFailsWithoutAlignment) {
  OnTheFlyAligner otf(&cand_, &ref_, &world_.links);
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  q.Where(NodeRef::Variable(x),
          NodeRef::Constant(ref_.EncodeTerm(
              Term::Iri("http://kb2.sofya.org/ontology/unalignable"))),
          NodeRef::Variable(y));
  EXPECT_TRUE(otf.RewriteQuery(q).status().IsNotFound());
}

TEST_F(MoviesFixture, MinSupportGateRejectsThinRules) {
  AlignerOptions options;
  options.min_support = 1000000;  // Impossible support.
  RelationAligner aligner(&cand_, &ref_, &world_.links, options);
  auto result = aligner.Align(DirectedBy());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->AcceptedSubsumptions().empty());
}

}  // namespace
}  // namespace sofya
