// Test fixture: an in-process mock SPARQL server behind LoopbackTransport.
//
// The server side of the wire is real in every layer that matters: requests
// arrive as HTTP bytes, the SPARQL text in the body is parsed with the
// production parser, evaluated on a LocalEndpoint over a KnowledgeBase, and
// the ResultSet is serialized with the production
// application/sparql-results+json writer. On top of that sit the
// misbehaviors the hardening tests need: 503 bursts, over-long pages
// (a server that ignores LIMIT), connection drops, and a request log.
//
// Thread-safe: HttpSparqlEndpoint's SelectMany fans requests out across
// pool threads, so every knob and counter is mutex-guarded.

#ifndef SOFYA_TESTS_LOOPBACK_SPARQL_SERVER_H_
#define SOFYA_TESTS_LOOPBACK_SPARQL_SERVER_H_

#include <algorithm>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "endpoint/local_endpoint.h"
#include "net/http.h"
#include "net/loopback_transport.h"
#include "rdf/knowledge_base.h"
#include "sparql/parser.h"
#include "sparql/results_json.h"
#include "util/string_util.h"

namespace sofya {

/// Mock SPARQL-protocol server; see file comment. The KnowledgeBase is
/// borrowed and must outlive the server.
class MockSparqlServer {
 public:
  explicit MockSparqlServer(KnowledgeBase* kb) : kb_(kb), local_(kb) {}

  /// A transport whose connections terminate at this server. The server
  /// must outlive every transport it hands out.
  std::unique_ptr<LoopbackTransport> MakeTransport() {
    return std::make_unique<LoopbackTransport>(
        [this](const HttpRequest& request) { return Handle(request); });
  }

  // ------------------------------------------------------------- knobs

  /// The next `n` requests fail with `http_status` (default: a 503 burst).
  /// `retry_after_s` >= 0 attaches a Retry-After hint; the default omits
  /// the header, so clients fall back to their own backoff schedule.
  void FailNextRequests(int n, int http_status = 503,
                        int retry_after_s = -1) {
    std::lock_guard<std::mutex> lock(mu_);
    fail_requests_remaining_ = n;
    fail_status_ = http_status;
    fail_retry_after_s_ = retry_after_s;
  }

  /// Misbehave: every SELECT response carries up to `extra` rows *beyond*
  /// the query's LIMIT (a server that ignores LIMIT). 0 restores sanity.
  void OverdeliverRows(size_t extra) {
    std::lock_guard<std::mutex> lock(mu_);
    extra_rows_ = extra;
  }

  /// Answer the next `n` requests with truncated garbage ("Connection:
  /// close" + half a JSON document) to exercise client parse-error paths.
  void CorruptNextResponses(int n) {
    std::lock_guard<std::mutex> lock(mu_);
    corrupt_responses_remaining_ = n;
  }

  /// Close the connection after each response (keep-alive off), forcing
  /// the client through its reconnect path.
  void CloseAfterEachResponse(bool close) {
    std::lock_guard<std::mutex> lock(mu_);
    close_after_response_ = close;
  }

  /// Kill the connection (no response bytes at all) on the next `n`
  /// requests — a server process dying mid-pipeline. Only the sub-queries
  /// in flight on the killed connection are affected.
  void KillConnectionOnNextRequests(int n) {
    std::lock_guard<std::mutex> lock(mu_);
    kill_requests_remaining_ = n;
  }

  /// Answer the next `n` requests with `http_status` + a Location header —
  /// redirect drills. Pass an absolute URL or an origin-form path.
  void RedirectNextRequests(int n, int http_status,
                            const std::string& location) {
    std::lock_guard<std::mutex> lock(mu_);
    redirect_requests_remaining_ = n;
    redirect_status_ = http_status;
    redirect_location_ = location;
  }

  // ---------------------------------------------------------- counters

  size_t requests_served() const {
    std::lock_guard<std::mutex> lock(mu_);
    return requests_served_;
  }

  /// Raw SPARQL query texts, in arrival order.
  std::vector<std::string> queries_received() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queries_received_;
  }

  LocalEndpoint& local() { return local_; }

 private:
  HttpResponse Handle(const HttpRequest& request) {
    bool corrupt = false;
    bool close = false;
    bool kill = false;
    int fail_status = 0;
    int fail_retry_after_s = -1;
    int redirect_status = 0;
    std::string redirect_location;
    size_t extra_rows = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++requests_served_;
      queries_received_.push_back(request.body);
      if (fail_requests_remaining_ > 0) {
        --fail_requests_remaining_;
        fail_status = fail_status_;
        fail_retry_after_s = fail_retry_after_s_;
      }
      if (kill_requests_remaining_ > 0) {
        --kill_requests_remaining_;
        kill = true;
      }
      if (redirect_requests_remaining_ > 0) {
        --redirect_requests_remaining_;
        redirect_status = redirect_status_;
        redirect_location = redirect_location_;
      }
      if (corrupt_responses_remaining_ > 0) {
        --corrupt_responses_remaining_;
        corrupt = true;
      }
      close = close_after_response_;
      extra_rows = extra_rows_;
    }

    HttpResponse response;
    if (kill) {
      response.status_code = LoopbackTransport::kKillConnection;
      return response;
    }
    if (redirect_status != 0) {
      response.status_code = redirect_status;
      response.reason = "Redirect";
      response.headers.push_back({"Location", redirect_location});
      return response;
    }
    if (close) response.headers.push_back({"Connection", "close"});
    if (fail_status != 0) {
      response.status_code = fail_status;
      response.reason = "Service Unavailable";
      if (fail_retry_after_s >= 0) {
        response.headers.push_back(
            {"Retry-After", std::to_string(fail_retry_after_s)});
      }
      response.body = "try later";
      return response;
    }
    if (corrupt) {
      response.headers = {{"Connection", "close"},
                          {"Content-Type",
                           "application/sparql-results+json"}};
      response.body = "{\"head\":{\"vars\":[\"s\"";  // Half a document.
      return response;
    }

    // Wrong protocol use is a client bug worth failing loudly on.
    if (request.method != "POST" ||
        FindHeader(request.headers, "Content-Type") == nullptr) {
      response.status_code = 400;
      response.reason = "Bad Request";
      response.body = "POST application/sparql-query expected";
      return response;
    }

    const std::string& text = request.body;
    const bool is_ask = StartsWith(text, "ASK");
    // The production parser only speaks SELECT; evaluate ASK bodies as
    // `SELECT *` and ship the boolean.
    const std::string parse_text =
        is_ask ? "SELECT *" + text.substr(3) : text;
    auto query = ParseSelectQuery(
        parse_text, [this](const Term& t) { return local_.EncodeTerm(t); });
    if (!query.ok()) {
      response.status_code = 400;
      response.reason = "Bad Request";
      response.body = query.status().ToString();
      return response;
    }

    response.headers.push_back(
        {"Content-Type", "application/sparql-results+json"});
    if (is_ask) {
      auto result = local_.Ask(*query);
      if (!result.ok()) return ServerError(result.status());
      response.body = WriteSparqlAskJson(*result);
      return response;
    }

    SelectQuery effective = *query;
    if (extra_rows > 0 && effective.limit() != kNoLimit) {
      effective.Limit(effective.limit() + extra_rows);  // Ignore LIMIT.
    }
    auto rows = local_.Select(effective);
    if (!rows.ok()) return ServerError(rows.status());
    auto body = WriteSparqlResultsJson(
        *rows, [this](TermId id) { return local_.DecodeTerm(id); });
    if (!body.ok()) return ServerError(body.status());
    response.body = std::move(*body);
    return response;
  }

  static HttpResponse ServerError(const Status& status) {
    HttpResponse response;
    response.status_code = 500;
    response.reason = "Internal Server Error";
    response.body = status.ToString();
    return response;
  }

  KnowledgeBase* kb_;  // Not owned.
  LocalEndpoint local_;

  mutable std::mutex mu_;
  int fail_requests_remaining_ = 0;
  int fail_status_ = 503;
  int fail_retry_after_s_ = -1;
  int kill_requests_remaining_ = 0;
  int redirect_requests_remaining_ = 0;
  int redirect_status_ = 0;
  std::string redirect_location_;
  int corrupt_responses_remaining_ = 0;
  bool close_after_response_ = false;
  size_t extra_rows_ = 0;
  size_t requests_served_ = 0;
  std::vector<std::string> queries_received_;
};

}  // namespace sofya

#endif  // SOFYA_TESTS_LOOPBACK_SPARQL_SERVER_H_
