#include "rdf/namespaces.h"

#include <gtest/gtest.h>

namespace sofya {
namespace {

TEST(PrefixMapTest, BindAndExpand) {
  PrefixMap map;
  map.Bind("ex", "http://example.org/");
  auto expanded = map.Expand("ex:thing");
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(*expanded, "http://example.org/thing");
}

TEST(PrefixMapTest, ExpandErrors) {
  PrefixMap map;
  EXPECT_TRUE(map.Expand("nocolon").status().IsInvalidArgument());
  EXPECT_TRUE(map.Expand("unknown:x").status().IsNotFound());
}

TEST(PrefixMapTest, CompactPicksLongestNamespace) {
  PrefixMap map;
  map.Bind("a", "http://x.org/");
  map.Bind("b", "http://x.org/deep/");
  EXPECT_EQ(map.Compact("http://x.org/deep/thing"), "b:thing");
  EXPECT_EQ(map.Compact("http://x.org/shallow"), "a:shallow");
}

TEST(PrefixMapTest, CompactUnknownReturnsInput) {
  PrefixMap map;
  EXPECT_EQ(map.Compact("http://elsewhere/x"), "http://elsewhere/x");
}

TEST(PrefixMapTest, RebindReplaces) {
  PrefixMap map;
  map.Bind("p", "http://old/");
  map.Bind("p", "http://new/");
  EXPECT_EQ(map.Expand("p:x").value(), "http://new/x");
  EXPECT_EQ(map.size(), 1u);
}

TEST(PrefixMapTest, DefaultsIncludeWellKnownAndKbNamespaces) {
  PrefixMap map = PrefixMap::WithDefaults();
  EXPECT_EQ(map.Expand("owl:sameAs").value(), std::string(ns::kOwlSameAs));
  EXPECT_EQ(map.Expand("kb1:resource/x").value(),
            std::string(ns::kKb1) + "resource/x");
  EXPECT_EQ(map.Compact("http://www.w3.org/2000/01/rdf-schema#label"),
            "rdfs:label");
}

TEST(PrefixMapTest, NamespaceOf) {
  PrefixMap map = PrefixMap::WithDefaults();
  EXPECT_EQ(map.NamespaceOf("xsd").value(), std::string(ns::kXsd));
  EXPECT_TRUE(map.NamespaceOf("nope").status().IsNotFound());
}

TEST(PrefixMapTest, BindingsSorted) {
  PrefixMap map;
  map.Bind("z", "http://z/");
  map.Bind("a", "http://a/");
  auto bindings = map.Bindings();
  ASSERT_EQ(bindings.size(), 2u);
  EXPECT_EQ(bindings[0].first, "a");
  EXPECT_EQ(bindings[1].first, "z");
}

}  // namespace
}  // namespace sofya
