#include "sparql/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rdf/dictionary.h"
#include "sparql/query.h"
#include "util/random.h"

namespace sofya {
namespace {

/// Tiny fixture KB:
///   a knows b ; a knows c ; b knows c ; a age "30" ; b age "30"
class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = dict_.InternIri("a");
    b_ = dict_.InternIri("b");
    c_ = dict_.InternIri("c");
    knows_ = dict_.InternIri("knows");
    age_ = dict_.InternIri("age");
    thirty_ = dict_.InternLiteral("30");
    store_.Insert(a_, knows_, b_);
    store_.Insert(a_, knows_, c_);
    store_.Insert(b_, knows_, c_);
    store_.Insert(a_, age_, thirty_);
    store_.Insert(b_, age_, thirty_);
  }

  Dictionary dict_;
  TripleStore store_;
  TermId a_, b_, c_, knows_, age_, thirty_;
};

TEST_F(EngineTest, SinglePatternAllVariables) {
  SelectQuery q;
  const VarId s = q.NewVar("s");
  const VarId p = q.NewVar("p");
  const VarId o = q.NewVar("o");
  q.Where(NodeRef::Variable(s), NodeRef::Variable(p), NodeRef::Variable(o));
  auto result = Evaluate(store_, q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 5u);
  EXPECT_EQ(result->var_names,
            (std::vector<std::string>{"s", "p", "o"}));
}

TEST_F(EngineTest, BoundPredicate) {
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
          NodeRef::Variable(y));
  auto result = Evaluate(store_, q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 3u);
}

TEST_F(EngineTest, TwoClauseJoin) {
  // ?x knows ?y . ?y knows ?z  => (a,b,c) only.
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  const VarId z = q.NewVar("z");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
          NodeRef::Variable(y));
  q.Where(NodeRef::Variable(y), NodeRef::Constant(knows_),
          NodeRef::Variable(z));
  auto result = Evaluate(store_, q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0], (std::vector<TermId>{a_, b_, c_}));
}

TEST_F(EngineTest, RepeatedVariableWithinClause) {
  // ?x knows ?x — nobody knows themselves here.
  SelectQuery q;
  const VarId x = q.NewVar("x");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
          NodeRef::Variable(x));
  auto result = Evaluate(store_, q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
}

TEST_F(EngineTest, FilterNeqVar) {
  // Subjects with two *different* known entities: only a (b,c).
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y1 = q.NewVar("y1");
  const VarId y2 = q.NewVar("y2");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
          NodeRef::Variable(y1));
  q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
          NodeRef::Variable(y2));
  q.Filter(FilterExpr::VarNeqVar(y1, y2));
  q.Select({x}).Distinct();
  auto result = Evaluate(store_, q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], a_);
}

TEST_F(EngineTest, FilterEqAndNeqTerm) {
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
          NodeRef::Variable(y));
  q.Filter(FilterExpr::VarNeqTerm(y, c_));
  auto result = Evaluate(store_, q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);  // Only a knows b.
  EXPECT_EQ(result->rows[0][1], b_);

  SelectQuery q2;
  const VarId x2 = q2.NewVar("x");
  const VarId y2 = q2.NewVar("y");
  q2.Where(NodeRef::Variable(x2), NodeRef::Constant(knows_),
           NodeRef::Variable(y2));
  q2.Filter(FilterExpr::VarEqTerm(y2, c_));
  auto result2 = Evaluate(store_, q2);
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2->rows.size(), 2u);
}

TEST_F(EngineTest, IsIriAndIsLiteralFilters) {
  SelectQuery q;
  const VarId p = q.NewVar("p");
  const VarId o = q.NewVar("o");
  q.Where(NodeRef::Constant(a_), NodeRef::Variable(p), NodeRef::Variable(o));
  q.Filter(FilterExpr::IsLiteral(o));
  auto result = Evaluate(store_, q, nullptr, &dict_);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][1], thirty_);

  SelectQuery q2;
  const VarId p2 = q2.NewVar("p");
  const VarId o2 = q2.NewVar("o");
  q2.Where(NodeRef::Constant(a_), NodeRef::Variable(p2),
           NodeRef::Variable(o2));
  q2.Filter(FilterExpr::IsIri(o2));
  auto result2 = Evaluate(store_, q2, nullptr, &dict_);
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2->rows.size(), 2u);
}

TEST_F(EngineTest, DistinctProjectionCollapses) {
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
          NodeRef::Variable(y));
  q.Select({x}).Distinct();
  auto result = Evaluate(store_, q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);  // a and b.
}

TEST_F(EngineTest, LimitAndOffset) {
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
          NodeRef::Variable(y));
  q.Limit(2);
  auto page1 = Evaluate(store_, q);
  ASSERT_TRUE(page1.ok());
  EXPECT_EQ(page1->rows.size(), 2u);

  q.Offset(2);
  auto page2 = Evaluate(store_, q);
  ASSERT_TRUE(page2.ok());
  EXPECT_EQ(page2->rows.size(), 1u);

  q.Offset(10);
  auto page3 = Evaluate(store_, q);
  ASSERT_TRUE(page3.ok());
  EXPECT_TRUE(page3->rows.empty());
}

TEST_F(EngineTest, PaginationIsDeterministicAndDisjoint) {
  SelectQuery all;
  {
    const VarId x = all.NewVar("x");
    const VarId y = all.NewVar("y");
    all.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
              NodeRef::Variable(y));
  }
  auto full = Evaluate(store_, all);
  ASSERT_TRUE(full.ok());

  std::vector<std::vector<TermId>> paged;
  for (uint64_t off = 0; off < 3; ++off) {
    SelectQuery page = all;
    page.Offset(off).Limit(1);
    auto r = Evaluate(store_, page);
    ASSERT_TRUE(r.ok());
    for (auto& row : r->rows) paged.push_back(row);
  }
  EXPECT_EQ(paged, full->rows);
}

TEST_F(EngineTest, ValidationErrors) {
  SelectQuery empty;
  EXPECT_TRUE(Evaluate(store_, empty).status().IsInvalidArgument());

  SelectQuery bad_var;
  bad_var.Where(NodeRef::Variable(3), NodeRef::Constant(knows_),
                NodeRef::Variable(4));
  EXPECT_TRUE(Evaluate(store_, bad_var).status().IsInvalidArgument());
}

TEST_F(EngineTest, StatsReported) {
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
          NodeRef::Variable(y));
  EvalStats stats;
  ASSERT_TRUE(Evaluate(store_, q, &stats).ok());
  EXPECT_EQ(stats.result_rows, 3u);
  EXPECT_GE(stats.index_probes, 1u);
  EXPECT_GE(stats.intermediate_rows, 3u);
}

TEST_F(EngineTest, ToSparqlRendersReadably) {
  SelectQuery q;
  const VarId x = q.NewVar("x");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(knows_),
          NodeRef::Constant(c_));
  q.Select({x}).Distinct().Limit(5);
  const std::string text = q.ToSparql(dict_);
  EXPECT_NE(text.find("SELECT DISTINCT ?x"), std::string::npos);
  EXPECT_NE(text.find("<knows>"), std::string::npos);
  EXPECT_NE(text.find("LIMIT 5"), std::string::npos);
}

// Property: two-clause joins agree with brute-force nested loops on random
// stores.
class EngineJoinProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineJoinProperty, JoinAgreesWithBruteForce) {
  Rng rng(GetParam());
  TripleStore store;
  std::vector<Triple> all;
  const TermId p1 = 100, p2 = 101;
  for (int i = 0; i < 200; ++i) {
    Triple t(static_cast<TermId>(1 + rng.Below(10)),
             rng.Bernoulli(0.5) ? p1 : p2,
             static_cast<TermId>(1 + rng.Below(10)));
    if (store.Insert(t)) all.push_back(t);
  }

  // ?x p1 ?y . ?y p2 ?z
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  const VarId z = q.NewVar("z");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(p1), NodeRef::Variable(y));
  q.Where(NodeRef::Variable(y), NodeRef::Constant(p2), NodeRef::Variable(z));
  auto result = Evaluate(store, q);
  ASSERT_TRUE(result.ok());

  std::multiset<std::vector<TermId>> got(result->rows.begin(),
                                         result->rows.end());
  std::multiset<std::vector<TermId>> expected;
  for (const Triple& t1 : all) {
    if (t1.predicate != p1) continue;
    for (const Triple& t2 : all) {
      if (t2.predicate != p2 || t2.subject != t1.object) continue;
      expected.insert({t1.subject, t1.object, t2.object});
    }
  }
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineJoinProperty,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 11ULL));

}  // namespace
}  // namespace sofya
