// Hardening tests for the retry/paging layer: backoff schedules, retry
// storms, batch forwarding, and misbehaving servers that over-deliver rows.
// The misbehaving-server cases are regression tests: before the fixes,
// PagedSelect's cap arithmetic wrapped (runaway loop) and every retry loop
// re-issued with zero delay.

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "endpoint/endpoint.h"
#include "endpoint/paged_select.h"
#include "endpoint/retry_policy.h"
#include "endpoint/retrying_endpoint.h"
#include "endpoint/tracking_endpoint.h"
#include "rdf/dictionary.h"

namespace sofya {
namespace {

/// Scriptable endpoint: Select/Ask behavior comes from injected handlers;
/// batch entry points count their invocations so tests can assert whether
/// a decorator forwarded the batch or fell back to per-query calls.
class ScriptedEndpoint : public Endpoint {
 public:
  using SelectHandler =
      std::function<StatusOr<ResultSet>(const SelectQuery&)>;
  using AskHandler = std::function<StatusOr<bool>(const SelectQuery&)>;

  const std::string& name() const override { return name_; }
  const std::string& base_iri() const override { return base_iri_; }

  StatusOr<ResultSet> Select(const SelectQuery& query) override {
    ++select_calls_;
    return select_handler_(query);
  }

  SelectBatchResult SelectMany(std::span<const SelectQuery> queries) override {
    ++select_many_calls_;
    return Endpoint::SelectMany(queries);
  }

  StatusOr<bool> Ask(const SelectQuery& query) override {
    ++ask_calls_;
    return ask_handler_(query);
  }

  AskBatchResult AskMany(std::span<const SelectQuery> queries) override {
    ++ask_many_calls_;
    return Endpoint::AskMany(queries);
  }

  TermId EncodeTerm(const Term& term) override { return dict_.Intern(term); }
  TermId LookupTerm(const Term& term) const override {
    return dict_.Lookup(term);
  }
  StatusOr<Term> DecodeTerm(TermId id) const override {
    return dict_.TryDecode(id);
  }
  EndpointStats stats() const override { return EndpointStats(); }
  void ResetStats() override {}

  SelectHandler select_handler_ = [](const SelectQuery&) {
    return ResultSet();
  };
  AskHandler ask_handler_ = [](const SelectQuery&) { return true; };
  int select_calls_ = 0;
  int select_many_calls_ = 0;
  int ask_calls_ = 0;
  int ask_many_calls_ = 0;

 private:
  std::string name_ = "scripted";
  std::string base_iri_ = "http://scripted.test/";
  Dictionary dict_;
};

/// A one-clause query (contents are irrelevant to these tests).
SelectQuery ProbeQuery(TermId p = 1) {
  SelectQuery query;
  const VarId s = query.NewVar("s");
  const VarId o = query.NewVar("o");
  query.Where(NodeRef::Variable(s), NodeRef::Constant(p),
              NodeRef::Variable(o));
  return query;
}

/// A result with `n` single-column rows.
ResultSet Rows(size_t n) {
  ResultSet result;
  result.var_names = {"s"};
  for (size_t i = 0; i < n; ++i) {
    result.rows.push_back({static_cast<TermId>(i + 1)});
  }
  return result;
}

// ----------------------------------------------------------- backoff math

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  RetryOptions options;
  options.initial_backoff_ms = 10.0;
  options.backoff_multiplier = 2.0;
  options.max_backoff_ms = 40.0;
  options.jitter = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(RetryBackoffMs(options, 1, rng), 10.0);
  EXPECT_DOUBLE_EQ(RetryBackoffMs(options, 2, rng), 20.0);
  EXPECT_DOUBLE_EQ(RetryBackoffMs(options, 3, rng), 40.0);
  EXPECT_DOUBLE_EQ(RetryBackoffMs(options, 4, rng), 40.0);  // Capped.
}

TEST(RetryPolicyTest, JitterStaysWithinFractionAndIsSeeded) {
  RetryOptions options;
  options.initial_backoff_ms = 100.0;
  options.jitter = 0.5;
  Rng rng_a(7);
  Rng rng_b(7);
  Rng rng_c(8);
  const double a = RetryBackoffMs(options, 1, rng_a);
  EXPECT_GE(a, 50.0);
  EXPECT_LT(a, 150.0);
  EXPECT_DOUBLE_EQ(a, RetryBackoffMs(options, 1, rng_b));  // Same seed.
  EXPECT_NE(a, RetryBackoffMs(options, 1, rng_c));         // Decorrelated.
}

TEST(RetryPolicyTest, ZeroInitialBackoffDisablesWaiting) {
  RetryOptions options;
  options.initial_backoff_ms = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(RetryBackoffMs(options, 3, rng), 0.0);
}

TEST(RetryPolicyTest, RetryAfterHintFloorsTheBackoff) {
  RetryOptions options;
  options.initial_backoff_ms = 10.0;
  options.jitter = 0.0;
  Rng rng(1);
  const Status hinted =
      Status::Unavailable("503").WithRetryAfterMs(2000.0);
  // The server's pacing wins while the client's own schedule is below it...
  EXPECT_DOUBLE_EQ(RetryBackoffMs(options, 1, rng, hinted), 2000.0);
  // ...and the client's schedule wins once it has escalated past the hint.
  options.initial_backoff_ms = 4000.0;
  EXPECT_DOUBLE_EQ(RetryBackoffMs(options, 1, rng, hinted), 4000.0);
}

TEST(RetryPolicyTest, RetryAfterHintIsClampedAndOptional) {
  RetryOptions options;
  options.initial_backoff_ms = 10.0;
  options.jitter = 0.0;
  options.max_retry_after_ms = 500.0;
  Rng rng(1);
  const Status hinted =
      Status::Unavailable("503").WithRetryAfterMs(60000.0);
  // A confused server cannot stall the pipeline past the clamp.
  EXPECT_DOUBLE_EQ(RetryBackoffMs(options, 1, rng, hinted), 500.0);
  options.honor_retry_after = false;
  EXPECT_DOUBLE_EQ(RetryBackoffMs(options, 1, rng, hinted), 10.0);
  // No hint attached: plain schedule.
  EXPECT_DOUBLE_EQ(
      RetryBackoffMs(options, 1, rng, Status::Unavailable("503")), 10.0);
}

TEST(RetryPolicyTest, RetryAfterHintSurvivesContext) {
  const Status hinted =
      Status::Unavailable("503").WithRetryAfterMs(750.0).WithContext("ep");
  ASSERT_TRUE(hinted.has_retry_after());
  EXPECT_DOUBLE_EQ(hinted.retry_after_ms(), 750.0);
  EXPECT_FALSE(Status::OK().WithRetryAfterMs(750.0).has_retry_after());
}

// ---------------------------------------------------- retry-storm hardening

TEST(RetryStormTest, RetryingEndpointWaitsBetweenReissues) {
  ScriptedEndpoint inner;
  int failures_left = 2;
  inner.select_handler_ = [&](const SelectQuery&) -> StatusOr<ResultSet> {
    if (failures_left > 0) {
      --failures_left;
      return Status::Unavailable("503");
    }
    return Rows(1);
  };
  std::vector<double> delays;
  RetryOptions retry;
  retry.max_retries = 5;
  retry.initial_backoff_ms = 10.0;
  retry.jitter = 0.0;
  retry.sleeper = [&delays](double ms) { delays.push_back(ms); };
  RetryingEndpoint ep(&inner, retry);

  ASSERT_TRUE(ep.Select(ProbeQuery()).ok());
  EXPECT_EQ(ep.retries_performed(), 2u);
  // The storm fix: every re-issue waited, exponentially longer each time.
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_DOUBLE_EQ(delays[0], 10.0);
  EXPECT_DOUBLE_EQ(delays[1], 20.0);
}

TEST(RetryStormTest, ServerRetryAfterHintPinsTheSchedule) {
  ScriptedEndpoint inner;
  int failures_left = 2;
  inner.select_handler_ = [&](const SelectQuery&) -> StatusOr<ResultSet> {
    if (failures_left > 0) {
      --failures_left;
      // An overloaded server saying "come back in 2 seconds".
      return Status::Unavailable("503").WithRetryAfterMs(2000.0);
    }
    return Rows(1);
  };
  std::vector<double> delays;
  RetryOptions retry;
  retry.max_retries = 5;
  retry.initial_backoff_ms = 10.0;
  retry.jitter = 0.0;
  retry.sleeper = [&delays](double ms) { delays.push_back(ms); };
  RetryingEndpoint ep(&inner, retry);

  ASSERT_TRUE(ep.Select(ProbeQuery()).ok());
  // Both waits are the server's 2000 ms, not the blind 10/20 ms schedule.
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_DOUBLE_EQ(delays[0], 2000.0);
  EXPECT_DOUBLE_EQ(delays[1], 2000.0);
}

TEST(RetryStormTest, MaxRetryAfterClampBoundsHostileHints) {
  ScriptedEndpoint inner;
  int failures_left = 1;
  inner.select_handler_ = [&](const SelectQuery&) -> StatusOr<ResultSet> {
    if (failures_left > 0) {
      --failures_left;
      return Status::Unavailable("503").WithRetryAfterMs(3600000.0);
    }
    return Rows(1);
  };
  std::vector<double> delays;
  RetryOptions retry;
  retry.initial_backoff_ms = 10.0;
  retry.jitter = 0.0;
  retry.max_retry_after_ms = 250.0;
  retry.sleeper = [&delays](double ms) { delays.push_back(ms); };
  RetryingEndpoint ep(&inner, retry);

  ASSERT_TRUE(ep.Select(ProbeQuery()).ok());
  ASSERT_EQ(delays.size(), 1u);
  EXPECT_DOUBLE_EQ(delays[0], 250.0);  // Hour-long hint, clamped.
}

TEST(RetryStormTest, PagedSelectRoutesThroughSharedPolicy) {
  ScriptedEndpoint inner;
  int failures_left = 2;
  inner.select_handler_ =
      [&](const SelectQuery& query) -> StatusOr<ResultSet> {
    if (failures_left > 0) {
      --failures_left;
      return Status::Unavailable("503");
    }
    return Rows(query.limit() == kNoLimit ? 1 : 0);
  };
  std::vector<double> delays;
  PagedSelectOptions options;
  options.page_size = 4;
  options.retry.max_retries = 3;
  options.retry.initial_backoff_ms = 5.0;
  options.retry.jitter = 0.0;
  options.retry.sleeper = [&delays](double ms) { delays.push_back(ms); };

  ASSERT_TRUE(PagedSelect(&inner, ProbeQuery(), options).ok());
  // PagedSelect's inner loop is the same backoff policy, not a zero-delay
  // copy: both re-issues waited.
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_DOUBLE_EQ(delays[0], 5.0);
  EXPECT_DOUBLE_EQ(delays[1], 10.0);
}

TEST(RetryStormTest, NonTransientErrorsAreNeverRetried) {
  ScriptedEndpoint inner;
  inner.select_handler_ = [](const SelectQuery&) -> StatusOr<ResultSet> {
    return Status::ResourceExhausted("budget");
  };
  std::vector<double> delays;
  RetryOptions retry;
  retry.sleeper = [&delays](double ms) { delays.push_back(ms); };
  RetryingEndpoint ep(&inner, retry);
  EXPECT_TRUE(ep.Select(ProbeQuery()).status().IsResourceExhausted());
  EXPECT_EQ(ep.retries_performed(), 0u);
  EXPECT_TRUE(delays.empty());
  EXPECT_EQ(inner.select_calls_, 1);
}

// ------------------------------------------------------- batch forwarding

TEST(RetryBatchTest, SelectManyForwardsTheBatchToInner) {
  ScriptedEndpoint inner;
  inner.select_handler_ = [](const SelectQuery&) { return Rows(2); };
  RetryingEndpoint ep(&inner);
  std::vector<SelectQuery> batch = {ProbeQuery(1), ProbeQuery(2),
                                    ProbeQuery(3)};
  SelectBatchResult results = ep.SelectMany(batch);
  ASSERT_TRUE(results.all_ok());
  EXPECT_EQ(results.size(), 3u);
  // The batch reached the inner endpoint as a batch — a batching/caching
  // inner layer keeps its intra-batch dedup. (The inherited default would
  // leave this at 0 and issue three bare Selects.)
  EXPECT_EQ(inner.select_many_calls_, 1);
}

TEST(RetryBatchTest, SelectManyNeverReExecutesRecoveredSubQueries) {
  ScriptedEndpoint inner;
  // Query #2 fails twice (in the batch and once in recovery), then
  // recovers. Queries #1/#3 always succeed.
  const std::string flaky = ProbeQuery(2).Fingerprint();
  std::map<std::string, int> select_counts;
  int failures_left = 2;
  inner.select_handler_ =
      [&](const SelectQuery& query) -> StatusOr<ResultSet> {
    ++select_counts[query.Fingerprint()];
    if (query.Fingerprint() == flaky && failures_left > 0) {
      --failures_left;
      return Status::Unavailable("503");
    }
    return Rows(1);
  };
  RetryOptions retry;
  retry.max_retries = 5;
  retry.initial_backoff_ms = 0.0;
  RetryingEndpoint ep(&inner, retry);

  std::vector<SelectQuery> batch = {ProbeQuery(1), ProbeQuery(2),
                                    ProbeQuery(3)};
  SelectBatchResult results = ep.SelectMany(batch);
  ASSERT_TRUE(results.all_ok()) << results.FirstError().ToString();
  EXPECT_EQ(results.size(), 3u);
  EXPECT_EQ(ep.retries_performed(), 1u);  // Only the flaky sub-query.
  // The per-sub-query contract's whole point: answers that succeeded in
  // the batch are NEVER bought again. Exactly one execution each.
  EXPECT_EQ(select_counts[ProbeQuery(1).Fingerprint()], 1);
  EXPECT_EQ(select_counts[ProbeQuery(3).Fingerprint()], 1);
  EXPECT_EQ(select_counts[flaky], 3);  // Fail (batch), fail, succeed.
}

TEST(RetryBatchTest, TrackedRequestCountProvesNoReExecution) {
  // The acceptance-criterion form of the assertion above: a
  // TrackingEndpoint *between* the retry layer and the flaky server counts
  // every request the recovery actually issued — k batch sub-queries plus
  // one re-issue per failure, never k + k.
  ScriptedEndpoint server;
  const std::string flaky = ProbeQuery(2).Fingerprint();
  int failures_left = 1;
  server.select_handler_ =
      [&](const SelectQuery& query) -> StatusOr<ResultSet> {
    if (query.Fingerprint() == flaky && failures_left > 0) {
      --failures_left;
      return Status::Unavailable("503");
    }
    return Rows(1);
  };
  TrackingEndpoint tracked(&server);
  RetryOptions retry;
  retry.max_retries = 5;
  retry.initial_backoff_ms = 0.0;
  RetryingEndpoint ep(&tracked, retry);

  std::vector<SelectQuery> batch = {ProbeQuery(1), ProbeQuery(2),
                                    ProbeQuery(3), ProbeQuery(4)};
  SelectBatchResult results = ep.SelectMany(batch);
  ASSERT_TRUE(results.all_ok()) << results.FirstError().ToString();
  // 4 unique sub-queries in the batch + exactly 1 recovery re-issue.
  EXPECT_EQ(tracked.stats().queries, 5u);
  EXPECT_EQ(ep.retries_performed(), 0u);  // First recovery attempt sufficed.
}

TEST(RetryBatchTest, HardDownEndpointShortCircuitsBatchRecovery) {
  // When the first recovered slot exhausts its whole backoff schedule and
  // is STILL Unavailable, the endpoint is down, not flaky: the remaining
  // slots keep their Unavailable statuses without burning a schedule each
  // (a 200-probe batch against a dead server must not retry 200 times).
  ScriptedEndpoint inner;
  inner.select_handler_ = [](const SelectQuery&) -> StatusOr<ResultSet> {
    return Status::Unavailable("503");
  };
  RetryOptions retry;
  retry.max_retries = 3;
  retry.initial_backoff_ms = 0.0;
  RetryingEndpoint ep(&inner, retry);
  std::vector<SelectQuery> batch = {ProbeQuery(1), ProbeQuery(2),
                                    ProbeQuery(3), ProbeQuery(4),
                                    ProbeQuery(5)};
  SelectBatchResult results = ep.SelectMany(batch);
  EXPECT_EQ(results.num_failed(), 5u);
  for (const Status& status : results.statuses) {
    EXPECT_TRUE(status.IsUnavailable());
  }
  // 5 batch sub-queries + ONE exhausted recovery schedule (1 + 3 retries),
  // not five schedules.
  EXPECT_EQ(inner.select_calls_, 5 + 4);
  EXPECT_EQ(ep.retries_performed(), 3u);
}

TEST(RetryBatchTest, NonTransientSlotFailuresPassThroughUntouched) {
  ScriptedEndpoint inner;
  inner.select_handler_ =
      [&](const SelectQuery& query) -> StatusOr<ResultSet> {
    if (query.Fingerprint() == ProbeQuery(2).Fingerprint()) {
      return Status::InvalidArgument("malformed");
    }
    return Rows(1);
  };
  RetryOptions retry;
  retry.max_retries = 5;
  retry.initial_backoff_ms = 0.0;
  RetryingEndpoint ep(&inner, retry);
  std::vector<SelectQuery> batch = {ProbeQuery(1), ProbeQuery(2),
                                    ProbeQuery(3)};
  SelectBatchResult results = ep.SelectMany(batch);
  EXPECT_TRUE(results.statuses[0].ok());
  EXPECT_TRUE(results.statuses[1].IsInvalidArgument());
  EXPECT_TRUE(results.statuses[2].ok());
  EXPECT_EQ(ep.retries_performed(), 0u);  // InvalidArgument: never retried.
  EXPECT_EQ(inner.select_calls_, 3);      // No recovery pass at all.
}

TEST(RetryBatchTest, AskManyForwardsTheBatchToInner) {
  ScriptedEndpoint inner;
  RetryingEndpoint ep(&inner);
  std::vector<SelectQuery> batch = {ProbeQuery(1), ProbeQuery(2)};
  AskBatchResult results = ep.AskMany(batch);
  ASSERT_TRUE(results.all_ok());
  EXPECT_EQ(results.size(), 2u);
  EXPECT_EQ(inner.ask_many_calls_, 1);
}

TEST(RetryBatchTest, AskManyRecoversPerSubQuery) {
  ScriptedEndpoint inner;
  int failures_left = 3;
  inner.ask_handler_ = [&](const SelectQuery&) -> StatusOr<bool> {
    if (failures_left > 0) {
      --failures_left;
      return Status::Unavailable("503");
    }
    return true;
  };
  RetryOptions retry;
  retry.max_retries = 5;
  retry.initial_backoff_ms = 0.0;
  RetryingEndpoint ep(&inner, retry);
  std::vector<SelectQuery> batch = {ProbeQuery(1), ProbeQuery(2)};
  AskBatchResult results = ep.AskMany(batch);
  ASSERT_TRUE(results.all_ok()) << results.FirstError().ToString();
  EXPECT_EQ(results.values, (std::vector<bool>{true, true}));
  EXPECT_GT(ep.retries_performed(), 0u);
}

// ------------------------------------------------- misbehaving-server paging

TEST(PagedSelectHardeningTest, OverLongPageIsClampedAndPagingStops) {
  ScriptedEndpoint inner;
  inner.select_handler_ =
      [](const SelectQuery& query) -> StatusOr<ResultSet> {
    // Misbehaving server: always over-delivers the requested LIMIT by 3.
    const uint64_t limit = query.limit() == kNoLimit ? 5 : query.limit();
    return Rows(limit + 3);
  };
  PagedSelectOptions options;
  options.page_size = 4;
  options.max_rows = 10;
  auto merged = PagedSelect(&inner, ProbeQuery(), options);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  // Before the fix, total_cap - merged.rows.size() wrapped once the
  // over-delivery pushed past the cap and the loop ran away. Now: one
  // request, its over-long page truncated to what was asked, stop.
  EXPECT_EQ(merged->rows.size(), 4u);
  EXPECT_EQ(inner.select_calls_, 1);
}

TEST(PagedSelectHardeningTest, OverLongPageRespectsQueryLimit) {
  ScriptedEndpoint inner;
  inner.select_handler_ =
      [](const SelectQuery& query) -> StatusOr<ResultSet> {
    const uint64_t limit = query.limit() == kNoLimit ? 5 : query.limit();
    return Rows(limit + 100);
  };
  PagedSelectOptions options;
  options.page_size = 50;
  SelectQuery query = ProbeQuery();
  query.Limit(7);
  auto merged = PagedSelect(&inner, query, options);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->rows.size(), 7u);  // The query's own LIMIT holds.
}

TEST(PagedSelectHardeningTest, BatchedFirstPageOverdeliveryIsClamped) {
  ScriptedEndpoint inner;
  inner.select_handler_ =
      [](const SelectQuery& query) -> StatusOr<ResultSet> {
    const uint64_t limit = query.limit() == kNoLimit ? 5 : query.limit();
    return Rows(limit + 2);
  };
  PagedSelectOptions options;
  options.page_size = 3;
  options.max_rows = 8;
  std::vector<SelectQuery> batch = {ProbeQuery(1), ProbeQuery(2)};
  SelectBatchResult results = BatchedPagedSelect(&inner, batch, options);
  ASSERT_TRUE(results.all_ok()) << results.FirstError().ToString();
  for (const ResultSet& result : results.values) {
    EXPECT_EQ(result.rows.size(), 3u);  // Clamped to the first page.
  }
}

TEST(PagedSelectHardeningTest, BatchedPagingIsolatesPerSubQueryFailures) {
  ScriptedEndpoint inner;
  // The second first-page request (query #2's — the batch loops in order,
  // and paging rewrites LIMIT, so matching by fingerprint would miss) is
  // permanently unavailable; #1 and #3 answer fine.
  int call = 0;
  inner.select_handler_ =
      [&](const SelectQuery& query) -> StatusOr<ResultSet> {
    if (++call == 2) return Status::Unavailable("503");
    return Rows(query.limit() == kNoLimit ? 1 : 0);
  };
  PagedSelectOptions options;
  options.page_size = 4;
  options.retry.max_retries = 1;
  options.retry.initial_backoff_ms = 0.0;
  std::vector<SelectQuery> batch = {ProbeQuery(1), ProbeQuery(2),
                                    ProbeQuery(3)};
  SelectBatchResult results = BatchedPagedSelect(&inner, batch, options);
  EXPECT_TRUE(results.statuses[0].ok());
  EXPECT_TRUE(results.statuses[1].IsUnavailable());
  EXPECT_TRUE(results.statuses[2].ok());
  EXPECT_EQ(results.num_failed(), 1u);
}

TEST(PagedSelectHardeningTest, WellBehavedPagingIsUnchanged) {
  ScriptedEndpoint inner;
  inner.select_handler_ =
      [](const SelectQuery& query) -> StatusOr<ResultSet> {
    // 10 rows total, honest LIMIT/OFFSET.
    const uint64_t total = 10;
    if (query.offset() >= total) return Rows(0);
    const uint64_t want =
        std::min<uint64_t>(query.limit(), total - query.offset());
    return Rows(want);
  };
  PagedSelectOptions options;
  options.page_size = 4;
  auto merged = PagedSelect(&inner, ProbeQuery(), options);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->rows.size(), 10u);
  EXPECT_EQ(inner.select_calls_, 3);  // 4 + 4 + 2 (short page stops).
}

}  // namespace
}  // namespace sofya
