#include "endpoint/cassette.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "endpoint/endpoint.h"
#include "endpoint/local_endpoint.h"
#include "endpoint/query_forms.h"
#include "endpoint/recording_endpoint.h"
#include "endpoint/replay_endpoint.h"
#include "rdf/knowledge_base.h"
#include "rdf/term.h"
#include "sparql/query.h"
#include "util/status.h"

namespace sofya {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

CassetteCell Bound(Term term) {
  CassetteCell cell;
  cell.bound = true;
  cell.term = std::move(term);
  return cell;
}

/// A cassette exercising every entry kind, every term kind, unbound cells,
/// and a recorded error with a retry-after hint.
Cassette MixedCassette() {
  Cassette cassette;
  cassette.endpoint_name = "kb1";
  cassette.base_iri = "http://kb1.test/";
  cassette.data_epoch = 7;

  CassetteEntry select;
  select.kind = CassetteEntryKind::kSelect;
  select.key = "v:2;c:?0 #<http://kb1.test/p> ?1;";
  select.var_names = {"x", "y"};
  select.rows.push_back(
      {Bound(Term::Iri("http://kb1.test/s")), Bound(Term::Literal("plain"))});
  select.rows.push_back(
      {Bound(Term::TypedLiteral(
           "42", "http://www.w3.org/2001/XMLSchema#integer")),
       Bound(Term::LangLiteral("Wien", "de"))});
  select.rows.push_back({CassetteCell{}, Bound(Term::Iri("http://kb1.test/o"))});
  cassette.entries.push_back(select);

  CassetteEntry failed;
  failed.kind = CassetteEntryKind::kSelect;
  failed.key = "v:1;c:?0 #<http://kb1.test/gone> ?0;";
  failed.SetStatus(Status::Unavailable("503").WithRetryAfterMs(1500.0));
  cassette.entries.push_back(failed);

  CassetteEntry ask;
  ask.kind = CassetteEntryKind::kAsk;
  ask.key = "v:1;c:?0 #<http://kb1.test/p> ?0;#ask";
  ask.ask_value = true;
  cassette.entries.push_back(ask);

  CassetteEntry lookup;
  lookup.kind = CassetteEntryKind::kLookup;
  lookup.key = "<http://kb1.test/s>";
  lookup.lookup_known = true;
  cassette.entries.push_back(lookup);

  CassetteEntry unknown;
  unknown.kind = CassetteEntryKind::kLookup;
  unknown.key = "<http://elsewhere.test/nobody>";
  unknown.lookup_known = false;
  cassette.entries.push_back(unknown);

  return cassette;
}

const CassetteEntry* FindEntry(const Cassette& cassette,
                               CassetteEntryKind kind,
                               const std::string& key) {
  for (const CassetteEntry& e : cassette.entries) {
    if (e.kind == kind && e.key == key) return &e;
  }
  return nullptr;
}

TEST(CassetteFormatTest, RoundTripAllPayloadKinds) {
  const Cassette original = MixedCassette();
  const std::string path = TempPath("mixed.cass");
  ASSERT_TRUE(SaveCassette(original, path).ok());
  EXPECT_TRUE(LooksLikeCassette(path));

  auto loaded = LoadCassette(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->endpoint_name, original.endpoint_name);
  EXPECT_EQ(loaded->base_iri, original.base_iri);
  EXPECT_EQ(loaded->data_epoch, original.data_epoch);
  ASSERT_EQ(loaded->entries.size(), original.entries.size());
  // Save sorts by (kind, key); compare entry-for-entry by key.
  for (const CassetteEntry& want : original.entries) {
    const CassetteEntry* got = FindEntry(*loaded, want.kind, want.key);
    ASSERT_NE(got, nullptr) << want.key;
    EXPECT_TRUE(*got == want) << want.key;
  }

  // The recorded error reconstructs with its retry-after hint.
  const CassetteEntry* failed = FindEntry(
      *loaded, CassetteEntryKind::kSelect,
      "v:1;c:?0 #<http://kb1.test/gone> ?0;");
  ASSERT_NE(failed, nullptr);
  const Status status = failed->ToStatus();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  ASSERT_TRUE(status.has_retry_after());
  EXPECT_DOUBLE_EQ(status.retry_after_ms(), 1500.0);
}

TEST(CassetteFormatTest, FileBytesIndependentOfEntryOrder) {
  Cassette forward = MixedCassette();
  Cassette reversed = MixedCassette();
  std::reverse(reversed.entries.begin(), reversed.entries.end());

  const std::string a = TempPath("order_a.cass");
  const std::string b = TempPath("order_b.cass");
  ASSERT_TRUE(SaveCassette(forward, a).ok());
  ASSERT_TRUE(SaveCassette(reversed, b).ok());
  EXPECT_EQ(ReadFile(a), ReadFile(b));
}

TEST(CassetteFormatTest, MissingFileIsNotFoundNotParseError) {
  auto loaded = LoadCassette(TempPath("never_written.cass"));
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(LooksLikeCassette(TempPath("never_written.cass")));
}

TEST(CassetteFormatTest, TruncatedFileIsRejected) {
  const std::string path = TempPath("trunc.cass");
  ASSERT_TRUE(SaveCassette(MixedCassette(), path).ok());
  const std::string bytes = ReadFile(path);
  ASSERT_GT(bytes.size(), 40u);

  // Cut mid-header, mid-payload, and one byte short: each is a clean
  // ParseError, never a crash or partial cassette.
  for (size_t keep : {size_t{0}, size_t{7}, size_t{31}, bytes.size() / 2,
                      bytes.size() - 1}) {
    const std::string cut = TempPath("trunc_cut.cass");
    WriteFile(cut, bytes.substr(0, keep));
    auto loaded = LoadCassette(cut);
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError)
        << "keep=" << keep << ": " << loaded.status();
  }
}

TEST(CassetteFormatTest, BadMagicIsRejected) {
  const std::string path = TempPath("magic.cass");
  ASSERT_TRUE(SaveCassette(MixedCassette(), path).ok());
  std::string bytes = ReadFile(path);
  bytes[0] = 'X';
  WriteFile(path, bytes);
  EXPECT_FALSE(LooksLikeCassette(path));
  EXPECT_EQ(LoadCassette(path).status().code(), StatusCode::kParseError);
}

TEST(CassetteFormatTest, UnsupportedVersionIsRejected) {
  const std::string path = TempPath("version.cass");
  ASSERT_TRUE(SaveCassette(MixedCassette(), path).ok());
  std::string bytes = ReadFile(path);
  bytes[8] = static_cast<char>(bytes[8] + 1);  // Version is right after magic.
  WriteFile(path, bytes);
  EXPECT_EQ(LoadCassette(path).status().code(), StatusCode::kParseError);
}

TEST(CassetteFormatTest, EveryFlippedPayloadByteIsRejected) {
  const std::string path = TempPath("flip.cass");
  ASSERT_TRUE(SaveCassette(MixedCassette(), path).ok());
  const std::string bytes = ReadFile(path);
  const size_t header = 32;
  ASSERT_GT(bytes.size(), header);

  // The checksum is verified before any entry is parsed, so *every*
  // single-byte payload corruption must be caught.
  for (size_t i = header; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x20);
    const std::string cut = TempPath("flip_mut.cass");
    WriteFile(cut, mutated);
    auto loaded = LoadCassette(cut);
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError)
        << "flipped byte " << i;
  }
}

TEST(CassetteFormatTest, TrailingBytesAreRejected) {
  const std::string path = TempPath("trailing.cass");
  ASSERT_TRUE(SaveCassette(MixedCassette(), path).ok());
  WriteFile(path, ReadFile(path) + "junk");
  EXPECT_EQ(LoadCassette(path).status().code(), StatusCode::kParseError);
}

TEST(CassetteFormatTest, DuplicateKeyIsRejected) {
  // SaveCassette writes whatever it is given; a duplicated (kind, key) pair
  // must be caught at load, before any entry could be served ambiguously.
  Cassette cassette = MixedCassette();
  cassette.entries.push_back(cassette.entries[0]);
  const std::string path = TempPath("dup.cass");
  ASSERT_TRUE(SaveCassette(cassette, path).ok());
  auto loaded = LoadCassette(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);

  // Same key under a *different* kind is not a duplicate.
  Cassette ok = MixedCassette();
  CassetteEntry ask = ok.entries[0];
  ask.kind = CassetteEntryKind::kAsk;
  ask.var_names.clear();
  ask.rows.clear();
  ask.ask_value = true;
  ok.entries.push_back(ask);
  ASSERT_TRUE(SaveCassette(ok, path).ok());
  EXPECT_TRUE(LoadCassette(path).ok());
}

TEST(CassetteDigestTest, OrderIndependentAndContentSensitive) {
  const Cassette cassette = MixedCassette();
  CassetteDigest forward;
  for (const CassetteEntry& e : cassette.entries) {
    forward.Add(CassetteEntryHash(e));
  }
  CassetteDigest backward;
  for (auto it = cassette.entries.rbegin(); it != cassette.entries.rend();
       ++it) {
    backward.Add(CassetteEntryHash(*it));
  }
  EXPECT_TRUE(forward == backward);
  EXPECT_EQ(forward.ToHex(), backward.ToHex());
  EXPECT_EQ(forward.ToHex().size(), 16u);

  // Dropping one entry changes the digest; so does mutating a row.
  CassetteDigest partial;
  for (size_t i = 1; i < cassette.entries.size(); ++i) {
    partial.Add(CassetteEntryHash(cassette.entries[i]));
  }
  EXPECT_FALSE(forward == partial);

  CassetteEntry mutated = cassette.entries[0];
  mutated.rows[0][1] = Bound(Term::Literal("tampered"));
  EXPECT_NE(CassetteEntryHash(mutated),
            CassetteEntryHash(cassette.entries[0]));
}

/// Two KBs with the same logical triples interned in different orders, so
/// every shared term has different ids in the two dictionaries.
struct TwinKbFixture {
  KnowledgeBase kb_a{"kb_a", "http://kb.test/"};
  KnowledgeBase kb_b{"kb_b", "http://kb.test/"};

  TwinKbFixture() {
    kb_a.AddFact("s1", "p", "o1");
    kb_a.AddFact("s2", "p", "o2");
    kb_a.AddFact("s1", "q", "o2");
    // Same triples, reversed insertion order => shifted term ids.
    kb_b.AddFact("s1", "q", "o2");
    kb_b.AddFact("s2", "p", "o2");
    kb_b.AddFact("s1", "p", "o1");
  }
};

TEST(CanonicalKeyTest, KeyIsIdIndependent) {
  TwinKbFixture fx;
  LocalEndpoint a(&fx.kb_a);
  LocalEndpoint b(&fx.kb_b);
  const TermId p_a = a.LookupTerm(Term::Iri("http://kb.test/p"));
  const TermId p_b = b.LookupTerm(Term::Iri("http://kb.test/p"));
  ASSERT_NE(p_a, kNullTermId);
  ASSERT_NE(p_b, kNullTermId);
  ASSERT_NE(p_a, p_b) << "fixture must intern in different orders";

  const SelectQuery qa = queries::FactsOfPredicate(p_a);
  const SelectQuery qb = queries::FactsOfPredicate(p_b);
  // Fingerprints differ (id-based) but canonical keys agree (surface-based).
  EXPECT_NE(qa.Fingerprint(), qb.Fingerprint());
  EXPECT_EQ(CanonicalSelectKey(a, qa), CanonicalSelectKey(b, qb));
  EXPECT_EQ(CanonicalAskKey(a, qa), CanonicalAskKey(b, qb));
}

TEST(CanonicalKeyTest, AskKeyNormalizesModifiersAndNeverCollidesWithSelect) {
  TwinKbFixture fx;
  LocalEndpoint a(&fx.kb_a);
  const TermId p = a.LookupTerm(Term::Iri("http://kb.test/p"));
  ASSERT_NE(p, kNullTermId);

  const SelectQuery plain = queries::FactsOfPredicate(p);
  SelectQuery modified = plain;
  modified.Distinct().Limit(5).Offset(2);
  // Existence ignores solution modifiers, so both land on one ASK entry —
  // but SELECT keys keep them apart, and ASK never aliases SELECT.
  EXPECT_EQ(CanonicalAskKey(a, plain), CanonicalAskKey(a, modified));
  EXPECT_NE(CanonicalSelectKey(a, plain), CanonicalSelectKey(a, modified));
  EXPECT_NE(CanonicalAskKey(a, plain), CanonicalSelectKey(a, plain));
}

TEST(CanonicalKeyTest, TranslateQueryReencodesConstants) {
  TwinKbFixture fx;
  LocalEndpoint a(&fx.kb_a);
  LocalEndpoint b(&fx.kb_b);
  const TermId p_a = a.LookupTerm(Term::Iri("http://kb.test/p"));
  const SelectQuery qa = queries::FactsOfPredicate(p_a);

  auto qb = TranslateQuery(qa, a, b);
  ASSERT_TRUE(qb.ok()) << qb.status();
  EXPECT_EQ(CanonicalSelectKey(b, *qb), CanonicalSelectKey(a, qa));
  auto rows = b.Select(*qb);
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->rows.size(), 2u);
}

/// Decodes a result to sorted surface-form rows: the id-independent way to
/// compare a live result against its replayed re-interned counterpart.
std::vector<std::vector<std::string>> Surface(const Endpoint& endpoint,
                                              const ResultSet& result) {
  std::vector<std::vector<std::string>> out;
  for (const auto& row : result.rows) {
    std::vector<std::string> cells;
    for (TermId id : row) {
      if (id == kNullTermId) {
        cells.push_back("");
      } else {
        auto term = endpoint.DecodeTerm(id);
        cells.push_back(term.ok() ? term->ToNTriples() : "<undecodable>");
      }
    }
    out.push_back(std::move(cells));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Fails the first Select per distinct query with a retryable error, then
/// forwards — the shape a flaky-but-retried network session records.
class FlakyOnce : public Endpoint {
 public:
  explicit FlakyOnce(Endpoint* inner) : inner_(inner) {}

  const std::string& name() const override { return inner_->name(); }
  const std::string& base_iri() const override { return inner_->base_iri(); }

  StatusOr<ResultSet> Select(const SelectQuery& query) override {
    if (failed_.insert(query.Fingerprint()).second) {
      return Status::Unavailable("flaky").WithRetryAfterMs(250.0);
    }
    return inner_->Select(query);
  }

  TermId EncodeTerm(const Term& term) override {
    return inner_->EncodeTerm(term);
  }
  TermId LookupTerm(const Term& term) const override {
    return inner_->LookupTerm(term);
  }
  StatusOr<Term> DecodeTerm(TermId id) const override {
    return inner_->DecodeTerm(id);
  }
  uint64_t data_epoch() const override { return inner_->data_epoch(); }
  EndpointStats stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

 private:
  Endpoint* inner_;
  std::unordered_set<std::string> failed_;
};

TEST(RecordingEndpointTest, RecordsSelectAskAndLookup) {
  TwinKbFixture fx;
  LocalEndpoint inner(&fx.kb_a);
  RecordingEndpoint recording(&inner);

  const TermId p = recording.LookupTerm(Term::Iri("http://kb.test/p"));
  ASSERT_NE(p, kNullTermId);
  const TermId nobody =
      recording.LookupTerm(Term::Iri("http://kb.test/nobody"));
  EXPECT_EQ(nobody, kNullTermId);

  auto rows = recording.Select(queries::FactsOfPredicate(p));
  ASSERT_TRUE(rows.ok());
  auto exists = recording.Ask(queries::FactsOfPredicate(p));
  ASSERT_TRUE(exists.ok());
  EXPECT_TRUE(*exists);

  // 2 lookups + 1 select + 1 ask; the repeat of a recorded interaction does
  // not grow the cassette.
  EXPECT_EQ(recording.num_entries(), 4u);
  (void)recording.Select(queries::FactsOfPredicate(p));
  EXPECT_EQ(recording.num_entries(), 4u);
  EXPECT_EQ(recording.conflicts(), 0u);

  const Cassette cassette = recording.Snapshot();
  EXPECT_EQ(cassette.endpoint_name, "kb_a");
  EXPECT_EQ(cassette.base_iri, "http://kb.test/");
  const CassetteEntry* unknown = FindEntry(
      cassette, CassetteEntryKind::kLookup, "<http://kb.test/nobody>");
  ASSERT_NE(unknown, nullptr);
  EXPECT_FALSE(unknown->lookup_known);
}

TEST(RecordingEndpointTest, ErrorThenSuccessUpgradesToSuccess) {
  TwinKbFixture fx;
  LocalEndpoint local(&fx.kb_a);
  FlakyOnce flaky(&local);
  RecordingEndpoint recording(&flaky);

  const TermId p = recording.LookupTerm(Term::Iri("http://kb.test/p"));
  const SelectQuery query = queries::FactsOfPredicate(p);

  // First attempt fails (recorded), a "retry" succeeds: the cassette keeps
  // the settled outcome, so replay-side retry layers see success at once.
  EXPECT_EQ(recording.Select(query).status().code(),
            StatusCode::kUnavailable);
  const Cassette after_failure = recording.Snapshot();
  const CassetteEntry* entry = FindEntry(
      after_failure, CassetteEntryKind::kSelect,
      CanonicalSelectKey(recording, query));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->code, StatusCode::kUnavailable);
  EXPECT_DOUBLE_EQ(entry->retry_after_ms, 250.0);

  ASSERT_TRUE(recording.Select(query).ok());
  const Cassette after_retry = recording.Snapshot();
  entry = FindEntry(after_retry, CassetteEntryKind::kSelect,
                    CanonicalSelectKey(recording, query));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->code, StatusCode::kOk);
  EXPECT_EQ(entry->rows.size(), 2u);
  EXPECT_EQ(recording.conflicts(), 0u);

  // A later error does not downgrade the recorded success.
  EXPECT_EQ(after_retry.entries.size(), recording.Snapshot().entries.size());
}

TEST(RecordingEndpointTest, BatchSlotsRoundTripThroughCassette) {
  TwinKbFixture fx;
  LocalEndpoint inner(&fx.kb_a);
  RecordingEndpoint recording(&inner);

  const TermId p = recording.LookupTerm(Term::Iri("http://kb.test/p"));
  const TermId q = recording.LookupTerm(Term::Iri("http://kb.test/q"));
  std::vector<SelectQuery> batch = {queries::FactsOfPredicate(p),
                                    queries::FactsOfPredicate(q)};
  const SelectBatchResult live = recording.SelectMany(batch);
  ASSERT_EQ(live.statuses.size(), 2u);
  ASSERT_TRUE(live.statuses[0].ok());
  ASSERT_TRUE(live.statuses[1].ok());

  ReplayEndpoint replay(recording.Snapshot());
  std::vector<SelectQuery> replay_batch = {
      queries::FactsOfPredicate(
          replay.EncodeTerm(Term::Iri("http://kb.test/p"))),
      queries::FactsOfPredicate(
          replay.EncodeTerm(Term::Iri("http://kb.test/q")))};
  const SelectBatchResult replayed = replay.SelectMany(replay_batch);
  ASSERT_EQ(replayed.statuses.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(replayed.statuses[i].ok()) << replayed.statuses[i];
    EXPECT_EQ(Surface(replay, replayed.values[i]),
              Surface(recording, live.values[i]))
        << "slot " << i;
  }
  EXPECT_EQ(replay.strict_misses(), 0u);
}

TEST(ReplayEndpointTest, ServesRecordedSessionByteForByte) {
  TwinKbFixture fx;
  LocalEndpoint inner(&fx.kb_a);
  RecordingEndpoint recording(&inner);

  const TermId p = recording.LookupTerm(Term::Iri("http://kb.test/p"));
  const auto live = recording.Select(queries::FactsOfPredicate(p));
  ASSERT_TRUE(live.ok());

  const std::string path = TempPath("session.cass");
  ASSERT_TRUE(recording.Save(path).ok());
  auto replay = ReplayEndpoint::Open(path);
  ASSERT_TRUE(replay.ok()) << replay.status();

  // Identity and epoch are frozen from the cassette header.
  EXPECT_EQ((*replay)->name(), "kb_a");
  EXPECT_EQ((*replay)->base_iri(), "http://kb.test/");
  EXPECT_EQ((*replay)->data_epoch(), inner.data_epoch());

  const TermId p_r =
      (*replay)->LookupTerm(Term::Iri("http://kb.test/p"));
  ASSERT_NE(p_r, kNullTermId);
  const auto replayed = (*replay)->Select(queries::FactsOfPredicate(p_r));
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_EQ(Surface(**replay, *replayed), Surface(recording, *live));
  EXPECT_EQ((*replay)->strict_misses(), 0u);

  // Serving the full recorded session makes the journals agree — the
  // property the run manifest's query-stream entries are built on.
  EXPECT_TRUE((*replay)->digest() == recording.digest());
}

TEST(ReplayEndpointTest, ReplayedErrorKeepsRetryAfterHint) {
  TwinKbFixture fx;
  LocalEndpoint local(&fx.kb_a);
  FlakyOnce flaky(&local);
  RecordingEndpoint recording(&flaky);

  const TermId q = recording.LookupTerm(Term::Iri("http://kb.test/q"));
  const SelectQuery query = queries::FactsOfPredicate(q);
  ASSERT_FALSE(recording.Select(query).ok());  // Never retried: stays failed.

  ReplayEndpoint replay(recording.Snapshot());
  const TermId q_r = replay.LookupTerm(Term::Iri("http://kb.test/q"));
  const auto replayed = replay.Select(queries::FactsOfPredicate(q_r));
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kUnavailable);
  ASSERT_TRUE(replayed.status().has_retry_after());
  EXPECT_DOUBLE_EQ(replayed.status().retry_after_ms(), 250.0);
  EXPECT_EQ(replay.strict_misses(), 0u);
}

TEST(ReplayEndpointTest, StrictMissIsNotFoundAndCounted) {
  ReplayEndpoint replay(Cassette{"empty", "http://kb.test/", 0, {}});

  const TermId p = replay.EncodeTerm(Term::Iri("http://kb.test/p"));
  const auto result = replay.Select(queries::FactsOfPredicate(p));
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(replay.strict_misses(), 1u);

  // An unrecorded membership judgment degrades to "unknown term" (the
  // pipeline then skips the query) but is still counted as a miss.
  EXPECT_EQ(replay.LookupTerm(Term::Iri("http://kb.test/s1")), kNullTermId);
  EXPECT_EQ(replay.strict_misses(), 2u);
  EXPECT_EQ(replay.appended(), 0u);
}

TEST(ReplayEndpointTest, LenientFallsThroughAppendsAndPersists) {
  TwinKbFixture fx;
  LocalEndpoint fallback(&fx.kb_a);
  ReplayEndpoint lenient(Cassette{"kb_a", "http://kb.test/", 0, {}},
                         &fallback);

  const TermId p = lenient.LookupTerm(Term::Iri("http://kb.test/p"));
  ASSERT_NE(p, kNullTermId);
  const auto through = lenient.Select(queries::FactsOfPredicate(p));
  ASSERT_TRUE(through.ok()) << through.status();
  EXPECT_EQ(through->rows.size(), 2u);
  EXPECT_EQ(lenient.strict_misses(), 0u);
  EXPECT_EQ(lenient.appended(), 2u);  // Lookup + select.

  // The extended session persists; a strict reopen serves it dataset-free.
  const std::string path = TempPath("extended.cass");
  ASSERT_TRUE(lenient.Save(path).ok());
  auto strict = ReplayEndpoint::Open(path);
  ASSERT_TRUE(strict.ok()) << strict.status();
  const TermId p_s =
      (*strict)->LookupTerm(Term::Iri("http://kb.test/p"));
  ASSERT_NE(p_s, kNullTermId);
  const auto replayed = (*strict)->Select(queries::FactsOfPredicate(p_s));
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_EQ(Surface(**strict, *replayed), Surface(lenient, *through));
  EXPECT_EQ((*strict)->strict_misses(), 0u);
}

}  // namespace
}  // namespace sofya
