#include "sparql/parser.h"

#include <gtest/gtest.h>

#include "endpoint/local_endpoint.h"
#include "endpoint/select_text.h"
#include "rdf/knowledge_base.h"
#include "sparql/engine.h"

namespace sofya {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() : kb_("pkb", "http://p.org/") {
    kb_.AddFact("a", "knows", "b");
    kb_.AddFact("a", "knows", "c");
    kb_.AddFact("b", "knows", "c");
    kb_.AddLiteralFact("a", "age", "30");
  }

  StatusOr<SelectQuery> Parse(const std::string& text) {
    return ParseSelectQuery(text, &kb_.dict(), &prefixes_);
  }

  StatusOr<size_t> CountRows(const std::string& text) {
    SOFYA_ASSIGN_OR_RETURN(SelectQuery q, Parse(text));
    SOFYA_ASSIGN_OR_RETURN(ResultSet rs,
                           Evaluate(kb_.store(), q, nullptr, &kb_.dict()));
    return rs.rows.size();
  }

  KnowledgeBase kb_;
  PrefixMap prefixes_;
};

TEST_F(ParserTest, BasicSelectStar) {
  auto n = CountRows(
      "SELECT * WHERE { ?x <http://p.org/knows> ?y }");
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 3u);
}

TEST_F(ParserTest, ProjectionAndDistinct) {
  auto q = Parse(
      "SELECT DISTINCT ?x WHERE { ?x <http://p.org/knows> ?y . }");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->distinct());
  ASSERT_EQ(q->projection().size(), 1u);
  auto rs = Evaluate(kb_.store(), *q);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 2u);  // a, b.
  EXPECT_EQ(rs->var_names, (std::vector<std::string>{"x"}));
}

TEST_F(ParserTest, MultiClauseJoinWithDots) {
  auto n = CountRows(
      "SELECT ?x ?z WHERE { ?x <http://p.org/knows> ?y . "
      "?y <http://p.org/knows> ?z . }");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);  // a->b->c only.
}

TEST_F(ParserTest, PrefixDeclarationsExpand) {
  auto n = CountRows(
      "PREFIX p: <http://p.org/>\n"
      "SELECT * WHERE { ?x p:knows ?y }");
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 3u);
}

TEST_F(ParserTest, ExternallySuppliedPrefixes) {
  prefixes_.Bind("p", "http://p.org/");
  auto n = CountRows("SELECT * WHERE { ?x p:knows ?y }");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
}

TEST_F(ParserTest, LiteralObjectsAndDatatypes) {
  auto n = CountRows(
      "SELECT ?x WHERE { ?x <http://p.org/age> \"30\" }");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  // Typed literal is a *different* term: no match.
  auto typed = CountRows(
      "SELECT ?x WHERE { ?x <http://p.org/age> "
      "\"30\"^^<http://www.w3.org/2001/XMLSchema#integer> }");
  ASSERT_TRUE(typed.ok());
  EXPECT_EQ(*typed, 0u);
}

TEST_F(ParserTest, FiltersParseAndApply) {
  auto n = CountRows(
      "SELECT * WHERE { ?x <http://p.org/knows> ?y1 . "
      "?x <http://p.org/knows> ?y2 . FILTER(?y1 != ?y2) }");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);  // (b,c) and (c,b) for subject a.

  auto eq_term = CountRows(
      "SELECT * WHERE { ?x <http://p.org/knows> ?y . "
      "FILTER(?y = <http://p.org/c>) }");
  ASSERT_TRUE(eq_term.ok());
  EXPECT_EQ(*eq_term, 2u);

  auto is_lit = CountRows(
      "SELECT * WHERE { <http://p.org/a> ?p ?o . FILTER(isLiteral(?o)) }");
  ASSERT_TRUE(is_lit.ok());
  EXPECT_EQ(*is_lit, 1u);
}

TEST_F(ParserTest, LimitAndOffsetModifiers) {
  auto q = Parse(
      "SELECT * WHERE { ?x <http://p.org/knows> ?y } OFFSET 1 LIMIT 2");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->limit(), 2u);
  EXPECT_EQ(q->offset(), 1u);
  // Order-independent.
  auto q2 = Parse(
      "SELECT * WHERE { ?x <http://p.org/knows> ?y } LIMIT 2 OFFSET 1");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->limit(), 2u);
  EXPECT_EQ(q2->offset(), 1u);
}

TEST_F(ParserTest, KeywordsAreCaseInsensitive) {
  EXPECT_TRUE(
      Parse("select distinct ?x where { ?x <http://p.org/knows> ?y } limit 1")
          .ok());
}

TEST_F(ParserTest, CommentsAreSkipped) {
  auto n = CountRows(
      "# leading comment\n"
      "SELECT * WHERE { # inline\n ?x <http://p.org/knows> ?y }");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
}

TEST_F(ParserTest, ErrorsAreParseErrors) {
  EXPECT_TRUE(Parse("").status().IsParseError());
  EXPECT_TRUE(Parse("SELECT WHERE { ?x ?p ?y }").status().IsParseError());
  EXPECT_TRUE(Parse("SELECT * { ?x ?p ?y }").status().IsParseError());
  EXPECT_TRUE(
      Parse("SELECT * WHERE { ?x ?p ?y ").status().IsParseError());
  EXPECT_TRUE(Parse("SELECT * WHERE { ?x ?p }").status().IsParseError());
  EXPECT_TRUE(Parse("SELECT * WHERE { ?x nosuch:py ?y }")
                  .status()
                  .IsNotFound());  // Unbound prefix.
  EXPECT_TRUE(Parse("SELECT ?zz WHERE { ?x ?p ?y }")
                  .status()
                  .IsParseError());  // Projected var unused.
  EXPECT_TRUE(Parse("SELECT * WHERE { ?x ?p ?y } LIMIT x")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(Parse("SELECT * WHERE { ?x ?p \"unterminated }")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(Parse("SELECT * WHERE { ?x ?p ?y } garbage <x>")
                  .status()
                  .IsParseError());
}

TEST_F(ParserTest, RoundTripThroughToSparql) {
  const std::string original =
      "SELECT DISTINCT ?x WHERE { ?x <http://p.org/knows> ?y . "
      "FILTER(?y != <http://p.org/b>) } LIMIT 4";
  auto q = Parse(original);
  ASSERT_TRUE(q.ok());
  // Render and re-parse: same result set.
  auto q2 = Parse(q->ToSparql(kb_.dict()));
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  auto r1 = Evaluate(kb_.store(), *q);
  auto r2 = Evaluate(kb_.store(), *q2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->rows, r2->rows);
}

TEST_F(ParserTest, SelectTextRunsAgainstEndpoint) {
  LocalEndpoint ep(&kb_);
  auto rows = SelectText(&ep,
                         "SELECT * WHERE { ?x <http://p.org/knows> ?y }");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 3u);
  EXPECT_EQ(ep.stats().queries, 1u);
}

}  // namespace
}  // namespace sofya
