#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace sofya {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  const uint64_t first = a.Next();
  a.Next();
  a.Reseed(7);
  EXPECT_EQ(a.Next(), first);
}

TEST(RngTest, BelowStaysInBounds) {
  Rng rng(5);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Below(1), 0u);
}

TEST(RngTest, UniformCoversInclusiveRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.Uniform(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All values hit.
}

TEST(RngTest, NextDoubleInHalfOpenUnit) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliRateApproximatesP) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(23);
  Rng c1 = parent.Fork(1);
  Rng c2 = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.Next() == c2.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, FanOutAtLeastOne) {
  Rng rng(29);
  for (int i = 0; i < 500; ++i) {
    EXPECT_GE(rng.FanOut(1.5), 1u);
  }
  EXPECT_EQ(rng.FanOut(1.0), 1u);
}

TEST(ZipfTest, RankZeroMostFrequent) {
  Rng rng(31);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_EQ(std::max_element(counts.begin(), counts.end()) - counts.begin(),
            0);
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(ZipfTest, ZeroExponentIsRoughlyUniform) {
  Rng rng(37);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
  }
}

TEST(ZipfTest, SamplesInRange) {
  Rng rng(41);
  ZipfSampler zipf(7, 2.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 7u);
}

TEST(SampleWithoutReplacementTest, DistinctSortedAndInRange) {
  Rng rng(43);
  auto picks = SampleWithoutReplacement(rng, 100, 10);
  ASSERT_EQ(picks.size(), 10u);
  EXPECT_TRUE(std::is_sorted(picks.begin(), picks.end()));
  EXPECT_TRUE(std::adjacent_find(picks.begin(), picks.end()) == picks.end());
  for (size_t p : picks) EXPECT_LT(p, 100u);
}

TEST(SampleWithoutReplacementTest, FullDraw) {
  Rng rng(47);
  auto picks = SampleWithoutReplacement(rng, 5, 5);
  ASSERT_EQ(picks.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(picks[i], i);
}

TEST(ShuffleTest, ProducesPermutation) {
  Rng rng(53);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  Shuffle(rng, shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
}

TEST(ShuffleTest, DeterministicUnderSeed) {
  std::vector<int> a{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> b = a;
  Rng r1(59), r2(59);
  Shuffle(r1, a);
  Shuffle(r2, b);
  EXPECT_EQ(a, b);
}

// Property sweep: determinism of all draws across several seeds.
class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, DrawsAreReproducible) {
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.Below(1000), b.Below(1000));
    EXPECT_EQ(a.NextDouble(), b.NextDouble());
    EXPECT_EQ(a.Bernoulli(0.4), b.Bernoulli(0.4));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                                           ~0ULL));

}  // namespace
}  // namespace sofya
