// The join-order planner: cost-model ordering, the EXPLAIN surface, the
// engine's epoch-keyed plan cache, and the two invariants the rest of the
// system leans on —
//
//   1. parity: the statistics planner and the legacy heuristic produce the
//      same result *sets* (bags) for any query, on randomized corpora;
//   2. pagination determinism: under a fixed plan, LIMIT/OFFSET walks are
//      disjoint, exhaustive, and identical to the unwindowed enumeration —
//      across pages, engine instances, and plan-cache states.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "endpoint/local_endpoint.h"
#include "rdf/knowledge_base.h"
#include "sparql/engine.h"
#include "sparql/planner.h"
#include "sparql/query.h"
#include "util/random.h"

namespace sofya {
namespace {

using Row = std::vector<TermId>;

std::multiset<Row> AsBag(const std::vector<Row>& rows) {
  return {rows.begin(), rows.end()};
}

/// Fixture with one fat predicate and one thin one over shared subjects.
class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hot_ = dict_.InternIri("hot");
    cold_ = dict_.InternIri("cold");
    for (TermId s = 100; s < 200; ++s) {
      store_.Insert(s, hot_, 1000 + (s % 7));
    }
    store_.Insert(100, cold_, 2000);
    store_.Insert(120, cold_, 2001);
  }

  /// ?x hot ?y . ?x cold ?z — fat clause listed first (adversarial order).
  SelectQuery FatFirstJoin() {
    SelectQuery q;
    const VarId x = q.NewVar("x");
    const VarId y = q.NewVar("y");
    const VarId z = q.NewVar("z");
    q.Where(NodeRef::Variable(x), NodeRef::Constant(hot_),
            NodeRef::Variable(y));
    q.Where(NodeRef::Variable(x), NodeRef::Constant(cold_),
            NodeRef::Variable(z));
    return q;
  }

  Dictionary dict_;
  TripleStore store_;
  TermId hot_, cold_;
};

TEST_F(PlannerTest, StatsPlannerPutsSelectiveClauseFirst) {
  const SelectQuery q = FatFirstJoin();
  const CompiledPlan plan = CompilePlan(q, &store_);
  ASSERT_EQ(plan.clauses.size(), 2u);
  EXPECT_TRUE(plan.used_statistics);
  EXPECT_EQ(plan.clauses[0].source_index, 1u);  // cold (2 facts) first.
  EXPECT_EQ(plan.clauses[1].source_index, 0u);
  // First clause estimates its predicate cardinality; the second is scanned
  // with ?x bound, so the estimate divides by distinct subjects.
  EXPECT_DOUBLE_EQ(plan.clauses[0].estimated_rows, 2.0);
  EXPECT_NEAR(plan.clauses[1].estimated_rows, 1.0, 0.01);
}

TEST_F(PlannerTest, LegacyPlannerKeepsSourceOrderOnTies) {
  PlannerOptions legacy;
  legacy.use_statistics = false;
  const CompiledPlan plan = CompilePlan(FatFirstJoin(), &store_, legacy);
  ASSERT_EQ(plan.clauses.size(), 2u);
  EXPECT_FALSE(plan.used_statistics);
  EXPECT_EQ(plan.clauses[0].source_index, 0u);  // Both score 3: first wins.
  EXPECT_EQ(plan.clauses[1].source_index, 1u);
  EXPECT_EQ(plan.clauses[0].estimated_rows, -1.0);  // No estimates.
}

TEST_F(PlannerTest, AbsentPredicateShortCircuitsToFront) {
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  const VarId z = q.NewVar("z");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(hot_),
          NodeRef::Variable(y));
  q.Where(NodeRef::Variable(x), NodeRef::Constant(dict_.InternIri("absent")),
          NodeRef::Variable(z));
  const CompiledPlan plan = CompilePlan(q, &store_);
  ASSERT_EQ(plan.clauses.size(), 2u);
  // The provably-empty clause runs first: the pipeline drains on its first
  // probe without ever scanning the 100-fact clause.
  EXPECT_EQ(plan.clauses[0].source_index, 1u);
  EXPECT_DOUBLE_EQ(plan.clauses[0].estimated_rows, 0.0);

  EvalStats stats;
  auto result = Evaluate(store_, q, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
  EXPECT_EQ(stats.triples_scanned, 0u);
}

TEST_F(PlannerTest, CrossProductDeferredBehindConnectedClauses) {
  const TermId mid = dict_.InternIri("mid");
  for (TermId s = 100; s < 110; ++s) store_.Insert(s, mid, 3000);
  SelectQuery q;
  const VarId a = q.NewVar("a");
  const VarId b = q.NewVar("b");
  const VarId c = q.NewVar("c");
  const VarId d = q.NewVar("d");
  q.Where(NodeRef::Variable(a), NodeRef::Constant(hot_),
          NodeRef::Variable(b));
  q.Where(NodeRef::Variable(a), NodeRef::Constant(mid),
          NodeRef::Variable(d));
  q.Where(NodeRef::Variable(c), NodeRef::Constant(cold_),
          NodeRef::Variable(d));
  // The connectivity *tier* is the greedy planner's mechanism (DP prices
  // cross products through cardinality instead and may prefer a different
  // connected order; parity is covered by the v2 planner tests).
  PlannerOptions greedy;
  greedy.use_dp = false;
  const CompiledPlan plan = CompilePlan(q, &store_, greedy);
  ASSERT_EQ(plan.clauses.size(), 3u);
  // cold (2 facts, cheapest) opens and binds {c, d}. Of the rest, mid
  // shares ?d (a join) while hot shares nothing (a cross product): mid must
  // run second even though hot is listed first — connected clauses outrank
  // disconnected ones regardless of estimate.
  EXPECT_EQ(plan.clauses[0].source_index, 2u);
  EXPECT_EQ(plan.clauses[1].source_index, 1u);
  EXPECT_EQ(plan.clauses[2].source_index, 0u);
  EXPECT_FALSE(plan.used_dp);
}

TEST_F(PlannerTest, ExplainReportsOrderEstimatesAndFilters) {
  SelectQuery q = FatFirstJoin();
  q.Filter(FilterExpr::VarNeqVar(1, 2));  // ?y != ?z
  Engine engine(&store_, &dict_);
  auto explain = engine.Explain(q);
  ASSERT_TRUE(explain.ok());
  EXPECT_TRUE(explain->used_statistics);
  EXPECT_FALSE(explain->from_cache);
  ASSERT_EQ(explain->clauses.size(), 2u);
  EXPECT_EQ(explain->clauses[0].source_index, 1u);
  EXPECT_NE(explain->clauses[0].pattern.find("<cold>"), std::string::npos);
  // The filter needs both ?y and ?z: it attaches to the *last* stage.
  EXPECT_TRUE(explain->clauses[0].filters.empty());
  ASSERT_EQ(explain->clauses[1].filters.size(), 1u);
  EXPECT_EQ(explain->clauses[1].filters[0], "?y != ?z");
  const std::string text = explain->ToString();
  EXPECT_NE(text.find("statistics planner"), std::string::npos);
  EXPECT_NE(text.find("est_rows"), std::string::npos);
  EXPECT_NE(text.find("FILTER(?y != ?z)"), std::string::npos);
}

TEST_F(PlannerTest, PlanCacheHitsAcrossModifiersAndInvalidatesOnWrite) {
  Engine engine(&store_, &dict_);
  SelectQuery q = FatFirstJoin();
  EvalStats stats;
  ASSERT_TRUE(engine.Select(q, &stats).ok());
  EXPECT_EQ(stats.plan_cache_misses, 1u);
  EXPECT_EQ(stats.plan_cache_hits, 0u);

  // Same shape, different solution modifiers: one plan serves the walk.
  SelectQuery page = FatFirstJoin();
  page.Offset(1).Limit(1);
  ASSERT_TRUE(engine.Select(page, &stats).ok());
  EXPECT_EQ(stats.plan_cache_hits, 1u);
  ASSERT_TRUE(engine.Ask(q, &stats).ok());
  EXPECT_EQ(stats.plan_cache_hits, 1u);
  EXPECT_EQ(engine.plan_cache_hits(), 2u);
  EXPECT_EQ(engine.plan_cache_misses(), 1u);

  // A write bumps the store epoch: the cached plan is stale, and the next
  // query replans against fresh statistics.
  store_.Insert(999, cold_, 999);
  ASSERT_TRUE(engine.Select(q, &stats).ok());
  EXPECT_EQ(stats.plan_cache_misses, 1u);
  EXPECT_EQ(engine.plan_cache_misses(), 2u);
}

// Regression: the plan-cache key uses *raw* variable numbering. Two
// queries that are alpha-renumbered twins (canonically fingerprint-equal,
// e.g. a query and its ToSparql → parse round trip) hold plans whose raw
// VarIds differ; sharing one cache entry would bind columns to the wrong
// names. They must get separate entries and each return its own labeling.
TEST_F(PlannerTest, PlanCacheCannotServeAlphaRenumberedTwin) {
  Engine engine(&store_, &dict_);

  // Twin A: declaration order x, y — projection {y, x}.
  SelectQuery a;
  const VarId ax = a.NewVar("x");
  const VarId ay = a.NewVar("y");
  a.Where(NodeRef::Variable(ax), NodeRef::Constant(cold_),
          NodeRef::Variable(ay));
  a.Select({ay, ax});

  // Twin B: same query, declaration order y, x (parser-style numbering).
  SelectQuery b;
  const VarId by = b.NewVar("y");
  const VarId bx = b.NewVar("x");
  b.Where(NodeRef::Variable(bx), NodeRef::Constant(cold_),
          NodeRef::Variable(by));
  b.Select({by, bx});

  ASSERT_EQ(a.Fingerprint(), b.Fingerprint());  // Canonically equal...
  EXPECT_NE(a.PlanFingerprint(), b.PlanFingerprint());  // ...raw distinct.

  auto via_a = engine.Select(a);
  auto via_b = engine.Select(b);  // Must not reuse A's raw-id plan.
  ASSERT_TRUE(via_a.ok());
  ASSERT_TRUE(via_b.ok());
  EXPECT_EQ(via_a->var_names, (std::vector<std::string>{"y", "x"}));
  EXPECT_EQ(via_a->var_names, via_b->var_names);
  EXPECT_EQ(via_a->rows, via_b->rows);

  // And against a fresh engine (no cache interference at all).
  Engine fresh(&store_, &dict_);
  auto clean = fresh.Select(b);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(via_b->rows, clean->rows);
}

TEST_F(PlannerTest, ExplainMatchesExecutedPlanAndReportsCacheState) {
  Engine engine(&store_, &dict_);
  const SelectQuery q = FatFirstJoin();
  auto before = engine.Explain(q);
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before->from_cache);
  ASSERT_TRUE(engine.Select(q).ok());
  auto after = engine.Explain(q);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->from_cache);
  // EXPLAIN is a diagnostic: it never charges the hit/miss counters.
  EXPECT_EQ(engine.plan_cache_hits(), 0u);
  EXPECT_EQ(engine.plan_cache_misses(), 1u);
}

// ---------------------------------------------------------------------------
// Randomized corpora: parity and pagination.

/// Builds a random store with predictable skew: a handful of predicates
/// whose cardinalities span three orders of magnitude.
TripleStore RandomStore(Rng& rng, size_t scale) {
  TripleStore store;
  const TermId preds[4] = {50, 51, 52, 53};
  const size_t sizes[4] = {scale * 40, scale * 8, scale * 2, 3};
  for (int p = 0; p < 4; ++p) {
    for (size_t i = 0; i < sizes[p]; ++i) {
      store.Insert(static_cast<TermId>(1 + rng.Below(20)), preds[p],
                   static_cast<TermId>(1 + rng.Below(20)));
    }
  }
  return store;
}

/// A random query over the RandomStore vocabulary: 1–4 clauses over a pool
/// of 4 variables, constants drawn from the data ranges, an occasional
/// filter and DISTINCT.
SelectQuery RandomQuery(Rng& rng) {
  SelectQuery q;
  std::vector<VarId> vars;
  for (int i = 0; i < 4; ++i) {
    vars.push_back(q.NewVar("v" + std::to_string(i)));
  }
  const size_t num_clauses = 1 + rng.Below(4);
  for (size_t c = 0; c < num_clauses; ++c) {
    auto node = [&](bool allow_const_pred) -> NodeRef {
      const uint64_t kind = rng.Below(10);
      if (allow_const_pred && kind < 6) {
        return NodeRef::Constant(static_cast<TermId>(50 + rng.Below(4)));
      }
      if (kind < 3) {
        return NodeRef::Constant(static_cast<TermId>(1 + rng.Below(20)));
      }
      return NodeRef::Variable(vars[rng.Below(vars.size())]);
    };
    q.Where(node(false), node(true), node(false));
  }
  if (rng.Bernoulli(0.3)) {
    q.Filter(FilterExpr::VarNeqVar(vars[rng.Below(2)], vars[2 + rng.Below(2)]));
  }
  if (rng.Bernoulli(0.3)) q.Distinct();
  return q;
}

class PlannerProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlannerProperty, StatsAndLegacyPlannersAgreeOnResultSets) {
  Rng rng(GetParam());
  PlannerOptions legacy;
  legacy.use_statistics = false;
  for (int round = 0; round < 30; ++round) {
    TripleStore store = RandomStore(rng, 1 + rng.Below(20));
    const SelectQuery q = RandomQuery(rng);
    auto with_stats = Evaluate(store, q);
    auto with_legacy = Evaluate(store, q, nullptr, nullptr, legacy);
    ASSERT_TRUE(with_stats.ok());
    ASSERT_TRUE(with_legacy.ok());
    EXPECT_EQ(AsBag(with_stats->rows), AsBag(with_legacy->rows))
        << "seed=" << GetParam() << " round=" << round;
  }
}

TEST_P(PlannerProperty, PagedWalkMatchesFullEnumerationUnderFixedPlan) {
  Rng rng(GetParam() + 1000);
  for (int round = 0; round < 15; ++round) {
    TripleStore store = RandomStore(rng, 1 + rng.Below(10));
    SelectQuery q = RandomQuery(rng);
    q.Distinct(false);  // Windowed DISTINCT is covered by streaming tests.
    Engine engine(&store);

    auto full = engine.Select(q);
    ASSERT_TRUE(full.ok());

    // Walk pages through the same engine (cached plan) *and* through a
    // fresh engine per page (no shared cache): the plan is a pure function
    // of (query, epoch), so both walks must reassemble the full result.
    std::vector<Row> cached_walk, fresh_walk;
    const uint64_t page_size = 1 + rng.Below(3);
    for (uint64_t off = 0;; off += page_size) {
      SelectQuery page = q;
      page.Offset(off).Limit(page_size);
      auto via_cached = engine.Select(page);
      Engine fresh(&store);
      auto via_fresh = fresh.Select(page);
      ASSERT_TRUE(via_cached.ok());
      ASSERT_TRUE(via_fresh.ok());
      cached_walk.insert(cached_walk.end(), via_cached->rows.begin(),
                         via_cached->rows.end());
      fresh_walk.insert(fresh_walk.end(), via_fresh->rows.begin(),
                        via_fresh->rows.end());
      if (via_cached->rows.size() < page_size) break;
      ASSERT_LT(off, 10000u) << "runaway walk";
    }
    EXPECT_EQ(cached_walk, full->rows) << "seed=" << GetParam();
    EXPECT_EQ(fresh_walk, full->rows) << "seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerProperty,
                         ::testing::Values(7ULL, 23ULL, 99ULL, 1234ULL));

// ---------------------------------------------------------------------------
// The endpoint-level surface.

TEST(LocalEndpointPlannerTest, ExplainAndLegacyOptionThread) {
  KnowledgeBase kb("kb", "http://kb.org/");
  for (int i = 0; i < 40; ++i) {
    kb.AddFact("s" + std::to_string(i), "big", "o" + std::to_string(i));
  }
  kb.AddFact("s0", "small", "x");

  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  const VarId z = q.NewVar("z");
  q.Where(NodeRef::Variable(x),
          NodeRef::Constant(kb.dict().LookupIri("http://kb.org/big")),
          NodeRef::Variable(y));
  q.Where(NodeRef::Variable(x),
          NodeRef::Constant(kb.dict().LookupIri("http://kb.org/small")),
          NodeRef::Variable(z));

  LocalEndpoint with_stats(&kb);
  auto explain = with_stats.Explain(q);
  ASSERT_TRUE(explain.ok());
  EXPECT_TRUE(explain->used_statistics);
  EXPECT_EQ(explain->clauses[0].source_index, 1u);

  LocalEndpointOptions options;
  options.engine.planner.use_statistics = false;
  LocalEndpoint legacy(&kb, options);
  auto legacy_explain = legacy.Explain(q);
  ASSERT_TRUE(legacy_explain.ok());
  EXPECT_FALSE(legacy_explain->used_statistics);
  EXPECT_EQ(legacy_explain->clauses[0].source_index, 0u);

  // Same answers either way.
  auto a = with_stats.Select(q);
  auto b = legacy.Select(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(AsBag(a->rows), AsBag(b->rows));
}

}  // namespace
}  // namespace sofya
