// SocketTransport: blocking POSIX TCP implementation of HttpTransport.
//
// Plain sockets, no TLS: SOFYA talks to http:// SPARQL endpoints directly
// (DBpedia and Wikidata both serve plaintext mirrors) or through a local
// TLS-terminating proxy. Timeouts are enforced on connect (non-blocking
// connect + poll) and on each read/write (SO_RCVTIMEO / SO_SNDTIMEO), so a
// hung server can never wedge an alignment run.

#ifndef SOFYA_NET_SOCKET_TRANSPORT_H_
#define SOFYA_NET_SOCKET_TRANSPORT_H_

#include <memory>
#include <string>

#include "net/http_transport.h"

namespace sofya {

/// Socket behaviour knobs.
struct SocketTransportOptions {
  double connect_timeout_ms = 5000.0;
  double io_timeout_ms = 30000.0;  ///< Per read/write call.
};

/// Real-TCP transport. Stateless apart from options; thread-safe.
class SocketTransport : public HttpTransport {
 public:
  explicit SocketTransport(SocketTransportOptions options = {})
      : options_(options) {}

  StatusOr<std::unique_ptr<HttpConnection>> Connect(
      const std::string& host, uint16_t port) override;

 private:
  SocketTransportOptions options_;
};

}  // namespace sofya

#endif  // SOFYA_NET_SOCKET_TRANSPORT_H_
