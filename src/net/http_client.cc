#include "net/http_client.h"

#include <utility>

#include "util/string_util.h"

namespace sofya {

namespace {

bool IsRedirectStatus(int code) {
  return code == 301 || code == 302 || code == 307 || code == 308;
}

}  // namespace

HttpClient::HttpClient(HttpTransport* transport, ParsedUrl origin,
                       HttpClientOptions options)
    : transport_(transport), origin_(std::move(origin)), options_(options) {
  if (options_.max_connections == 0) options_.max_connections = 1;
}

StatusOr<HttpClient::Lease> HttpClient::Acquire() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    slot_freed_.wait(lock, [this] {
      return !idle_.empty() || open_ < options_.max_connections;
    });
    if (!idle_.empty()) {
      Lease lease;
      lease.connection = std::move(idle_.back());
      idle_.pop_back();
      lease.reused = true;
      return lease;
    }
    ++open_;  // Reserve the slot before the (slow) connect.
  }
  auto connection = transport_->Connect(origin_.host, origin_.port);
  if (!connection.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    --open_;
    slot_freed_.notify_one();
    return connection.status();
  }
  Lease lease;
  lease.connection = std::move(*connection);
  return lease;
}

void HttpClient::Release(std::unique_ptr<HttpConnection> connection,
                         bool reusable) {
  std::lock_guard<std::mutex> lock(mu_);
  if (reusable) {
    idle_.push_back(std::move(connection));
  } else {
    --open_;  // Dropped; destructor closes it.
  }
  slot_freed_.notify_one();
}

StatusOr<HttpResponse> HttpClient::Exchange(HttpConnection* connection,
                                            const std::string& wire_bytes,
                                            bool* reusable,
                                            bool* received_bytes) {
  *reusable = false;
  *received_bytes = false;
  SOFYA_RETURN_IF_ERROR(connection->WriteAll(wire_bytes));
  HttpResponseReader reader;
  char chunk[16384];
  size_t total = 0;
  while (!reader.done()) {
    SOFYA_ASSIGN_OR_RETURN(size_t n,
                           connection->Read(chunk, sizeof(chunk)));
    if (n == 0) {
      SOFYA_RETURN_IF_ERROR(reader.FinishEof());
      break;
    }
    *received_bytes = true;
    total += n;
    if (total > options_.max_response_bytes) {
      return Status::ResourceExhausted("http: response exceeds size cap");
    }
    SOFYA_RETURN_IF_ERROR(reader.Feed({chunk, n}));
  }
  // Reuse only a connection whose stream is provably in sync: keep-alive
  // semantics, no leftover bytes (a desynced server's next-response spill),
  // and not read-to-EOF framing (which consumes the connection).
  *reusable = !WantsClose(reader.response().headers) &&
              reader.leftover() == 0 && !reader.ate_connection();
  return std::move(reader.response());
}

StatusOr<std::string> HttpClient::ResolveRedirectTarget(
    const HttpResponse& response, const std::string& current) const {
  const std::string* location = FindHeader(response.headers, "Location");
  if (location == nullptr || location->empty()) {
    return Status::InvalidArgument(StrFormat(
        "http %d redirect without a Location header", response.status_code));
  }
  // "//host/path" is a network-path reference (RFC 3986 §4.2), NOT an
  // origin-form path: resolve it against the request scheme so it goes
  // through the same same-origin gate as an absolute URL.
  const std::string absolute = StartsWith(*location, "//")
                                   ? origin_.scheme + ":" + *location
                                   : *location;
  if (StartsWith(absolute, "http://") || StartsWith(absolute, "https://")) {
    // Absolute target: follow only when it stays on the configured origin —
    // silently re-POSTing the query body to a different host/port is a
    // decision the caller, not the transport, should make.
    SOFYA_ASSIGN_OR_RETURN(ParsedUrl parsed, ParseUrl(absolute));
    if (parsed.host != origin_.host || parsed.port != origin_.port) {
      return Status::InvalidArgument(StrFormat(
          "cross-origin redirect to '%s' is not followed; point the client "
          "at the final endpoint URL",
          location->c_str()));
    }
    return parsed.target;
  }
  if (StartsWith(*location, "/")) return *location;  // Origin-form path.
  // Relative reference: resolve against the current target's directory.
  const size_t query_start = current.find('?');
  const std::string path =
      query_start == std::string::npos ? current : current.substr(0, query_start);
  const size_t last_slash = path.rfind('/');
  return path.substr(0, last_slash + 1) + *location;
}

StatusOr<HttpResponse> HttpClient::RoundTrip(const HttpRequest& request) {
  HttpRequest outgoing = request;
  if (outgoing.target == "/") outgoing.target = origin_.target;
  for (int hop = 0;; ++hop) {
    auto response = RoundTripOnce(outgoing);
    if (!response.ok() || !IsRedirectStatus(response->status_code)) {
      // 303 See Other *requires* rewriting the request to a bodyless GET —
      // for a POSTed query that would silently drop the query text, so it
      // is an explicit error rather than a wrong follow.
      if (response.ok() && response->status_code == 303 &&
          outgoing.method == "POST") {
        return Status::InvalidArgument(
            "http 303 See Other would convert the query POST to GET; "
            "point the client at the final endpoint URL");
      }
      return response;
    }
    if (hop >= options_.max_redirects) {
      return Status::InvalidArgument(StrFormat(
          "redirect chain exceeded %d hops (last: http %d)",
          options_.max_redirects, response->status_code));
    }
    // 301/302/307/308, same origin: re-send the same method and body at
    // the new target (see HttpClientOptions::max_redirects).
    SOFYA_ASSIGN_OR_RETURN(std::string target,
                           ResolveRedirectTarget(*response, outgoing.target));
    outgoing.target = std::move(target);
  }
}

StatusOr<HttpResponse> HttpClient::RoundTripOnce(const HttpRequest& request) {
  HttpRequest outgoing = request;
  if (FindHeader(outgoing.headers, "Host") == nullptr) {
    std::string host = origin_.host;
    if (origin_.port != 80) {
      host += ':';
      host += std::to_string(origin_.port);
    }
    outgoing.headers.push_back({"Host", std::move(host)});
  }
  const std::string wire_bytes = SerializeHttpRequest(outgoing);

  for (int attempt = 0;; ++attempt) {
    SOFYA_ASSIGN_OR_RETURN(Lease lease, Acquire());
    bool reusable = false;
    bool received_bytes = false;
    auto response = Exchange(lease.connection.get(), wire_bytes, &reusable,
                             &received_bytes);
    if (response.ok()) {
      Release(std::move(lease.connection), reusable);
      return response;
    }
    Release(nullptr, /*reusable=*/false);
    // A dead keep-alive connection fails instantly on reuse — write error
    // or EOF *before any response byte* — and retrying such a send on a
    // fresh connection is standard and safe. Once response bytes arrived
    // the failure is the server's answer (size cap, malformed framing):
    // re-POSTing would duplicate the query, so surface it. The bound lets
    // one call drain a pool full of stale idles, at most.
    const bool stale_reuse =
        lease.reused && !received_bytes &&
        attempt < static_cast<int>(options_.max_connections);
    if (!stale_reuse) return response.status();
  }
}

}  // namespace sofya
