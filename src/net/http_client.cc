#include "net/http_client.h"

#include <utility>

namespace sofya {

HttpClient::HttpClient(HttpTransport* transport, ParsedUrl origin,
                       HttpClientOptions options)
    : transport_(transport), origin_(std::move(origin)), options_(options) {
  if (options_.max_connections == 0) options_.max_connections = 1;
}

StatusOr<HttpClient::Lease> HttpClient::Acquire() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    slot_freed_.wait(lock, [this] {
      return !idle_.empty() || open_ < options_.max_connections;
    });
    if (!idle_.empty()) {
      Lease lease;
      lease.connection = std::move(idle_.back());
      idle_.pop_back();
      lease.reused = true;
      return lease;
    }
    ++open_;  // Reserve the slot before the (slow) connect.
  }
  auto connection = transport_->Connect(origin_.host, origin_.port);
  if (!connection.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    --open_;
    slot_freed_.notify_one();
    return connection.status();
  }
  Lease lease;
  lease.connection = std::move(*connection);
  return lease;
}

void HttpClient::Release(std::unique_ptr<HttpConnection> connection,
                         bool reusable) {
  std::lock_guard<std::mutex> lock(mu_);
  if (reusable) {
    idle_.push_back(std::move(connection));
  } else {
    --open_;  // Dropped; destructor closes it.
  }
  slot_freed_.notify_one();
}

StatusOr<HttpResponse> HttpClient::Exchange(HttpConnection* connection,
                                            const std::string& wire_bytes,
                                            bool* reusable,
                                            bool* received_bytes) {
  *reusable = false;
  *received_bytes = false;
  SOFYA_RETURN_IF_ERROR(connection->WriteAll(wire_bytes));
  HttpResponseReader reader;
  char chunk[16384];
  size_t total = 0;
  while (!reader.done()) {
    SOFYA_ASSIGN_OR_RETURN(size_t n,
                           connection->Read(chunk, sizeof(chunk)));
    if (n == 0) {
      SOFYA_RETURN_IF_ERROR(reader.FinishEof());
      break;
    }
    *received_bytes = true;
    total += n;
    if (total > options_.max_response_bytes) {
      return Status::ResourceExhausted("http: response exceeds size cap");
    }
    SOFYA_RETURN_IF_ERROR(reader.Feed({chunk, n}));
  }
  // Reuse only a connection whose stream is provably in sync: keep-alive
  // semantics, no leftover bytes (a desynced server's next-response spill),
  // and not read-to-EOF framing (which consumes the connection).
  *reusable = !WantsClose(reader.response().headers) &&
              reader.leftover() == 0 && !reader.ate_connection();
  return std::move(reader.response());
}

StatusOr<HttpResponse> HttpClient::RoundTrip(const HttpRequest& request) {
  HttpRequest outgoing = request;
  if (FindHeader(outgoing.headers, "Host") == nullptr) {
    std::string host = origin_.host;
    if (origin_.port != 80) {
      host += ':';
      host += std::to_string(origin_.port);
    }
    outgoing.headers.push_back({"Host", std::move(host)});
  }
  if (outgoing.target == "/") outgoing.target = origin_.target;
  const std::string wire_bytes = SerializeHttpRequest(outgoing);

  for (int attempt = 0;; ++attempt) {
    SOFYA_ASSIGN_OR_RETURN(Lease lease, Acquire());
    bool reusable = false;
    bool received_bytes = false;
    auto response = Exchange(lease.connection.get(), wire_bytes, &reusable,
                             &received_bytes);
    if (response.ok()) {
      Release(std::move(lease.connection), reusable);
      return response;
    }
    Release(nullptr, /*reusable=*/false);
    // A dead keep-alive connection fails instantly on reuse — write error
    // or EOF *before any response byte* — and retrying such a send on a
    // fresh connection is standard and safe. Once response bytes arrived
    // the failure is the server's answer (size cap, malformed framing):
    // re-POSTing would duplicate the query, so surface it. The bound lets
    // one call drain a pool full of stale idles, at most.
    const bool stale_reuse =
        lease.reused && !received_bytes &&
        attempt < static_cast<int>(options_.max_connections);
    if (!stale_reuse) return response.status();
  }
}

}  // namespace sofya
