#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/string_util.h"

namespace sofya {
namespace {

constexpr size_t kReadChunk = 16384;
constexpr int kListenBacklog = 128;

std::string PeerString(const sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = {0};
  inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return StrFormat("%s:%u", ip, static_cast<unsigned>(ntohs(addr.sin_port)));
}

/// The canned response for a request the framing guards rejected: the parse
/// status carries the RFC-mandated distinction (Unimplemented -> 501 for
/// Transfer-Encoding requests, anything else -> 400).
HttpResponse FramingErrorResponse(const Status& status) {
  HttpResponse response;
  if (status.IsUnimplemented()) {
    response.status_code = 501;
    response.reason = "Not Implemented";
  } else {
    response.status_code = 400;
    response.reason = "Bad Request";
  }
  response.headers = {{"Connection", "close"},
                      {"Content-Type", "text/plain"}};
  response.body = status.ToString() + "\n";
  return response;
}

}  // namespace

HttpServer::HttpServer(Handler handler, HttpServerOptions options)
    : handler_(std::move(handler)), options_(std::move(options)) {
  if (options_.worker_threads == 0) options_.worker_threads = 1;
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("http server already running");
  }
  stopping_.store(false, std::memory_order_release);

  // Ephemeral binds (port 0) must not set SO_REUSEADDR: with it, the kernel
  // may hand out a port another process just bound but not yet listened on,
  // and this socket then fails at listen() with EADDRINUSE — the classic
  // parallel-test-runner flake. Without the option the race window still
  // exists (bind-to-0 in two processes can collide), so EADDRINUSE on an
  // ephemeral bind/listen is retried with a fresh socket.
  const bool ephemeral = options_.port == 0;
  constexpr int kEphemeralBindAttempts = 16;
  for (int attempt = 0;; ++attempt) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
    if (listen_fd_ < 0) {
      return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
    }
    if (!ephemeral) {
      const int enable = 1;
      ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
                   sizeof(enable));
    }

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
        1) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::InvalidArgument("bad bind address '" +
                                     options_.bind_address + "'");
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      const int bind_errno = errno;
      ::close(listen_fd_);
      listen_fd_ = -1;
      if (bind_errno == EADDRINUSE && ephemeral &&
          attempt + 1 < kEphemeralBindAttempts) {
        continue;
      }
      return Status::Unavailable(
          StrFormat("bind %s:%u: %s", options_.bind_address.c_str(),
                    static_cast<unsigned>(options_.port),
                    std::strerror(bind_errno)));
    }
    socklen_t addr_len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
    port_ = ntohs(addr.sin_port);
    if (::listen(listen_fd_, kListenBacklog) < 0) {
      const int listen_errno = errno;
      ::close(listen_fd_);
      listen_fd_ = -1;
      if (listen_errno == EADDRINUSE && ephemeral &&
          attempt + 1 < kEphemeralBindAttempts) {
        continue;
      }
      return Status::Unavailable(
          StrFormat("listen: %s", std::strerror(listen_errno)));
    }
    break;
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Stop();
    return Status::Internal("epoll/eventfd creation failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  workers_ = std::make_unique<ThreadPool>(options_.worker_threads);
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { EventLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.load(std::memory_order_acquire) && !io_thread_.joinable()) {
    // Start() may have half-initialized fds on failure; fall through to the
    // cleanup below without a loop to stop.
  } else {
    stopping_.store(true, std::memory_order_release);
    if (wake_fd_ >= 0) {
      const uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
    }
    if (io_thread_.joinable()) io_thread_.join();
  }
  // Drain in-flight handlers before tearing fds down (workers write only to
  // the completion queue + wake_fd_, both still alive here).
  workers_.reset();
  for (auto& [id, conn] : connections_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  connections_.clear();
  fd_to_id_.clear();
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
  running_.store(false, std::memory_order_release);
}

void HttpServer::EventLoop() {
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptPending();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            ::read(wake_fd_, &drained, sizeof(drained));
        ApplyCompletions();
        continue;
      }
      auto id_it = fd_to_id_.find(fd);
      if (id_it == fd_to_id_.end()) continue;
      Connection* conn = connections_[id_it->second].get();
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        if (conn->executing) {
          conn->peer_closed = true;  // Worker still owns a request.
        } else {
          CloseConnection(conn);
        }
        continue;
      }
      if (events[i].events & EPOLLIN) {
        HandleReadable(conn);
        // HandleReadable may close; re-resolve before using again.
        id_it = fd_to_id_.find(fd);
        if (id_it == fd_to_id_.end()) continue;
        conn = connections_[id_it->second].get();
      }
      if (events[i].events & EPOLLOUT) HandleWritable(conn);
    }
  }
}

void HttpServer::AcceptPending() {
  while (true) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const int fd =
        ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &peer_len,
                  SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN (or a transient accept error): done.
    if (connections_.size() >= options_.max_connections) {
      ::close(fd);  // Over capacity: refuse at the socket layer.
      continue;
    }
    const int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_connection_id_++;
    conn->peer = PeerString(peer);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    fd_to_id_[fd] = conn->id;
    connections_[conn->id] = std::move(conn);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void HttpServer::HandleReadable(Connection* conn) {
  char chunk[kReadChunk];
  while (true) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->in.append(chunk, static_cast<size_t>(n));
      if (conn->in.size() > options_.max_request_bytes) {
        HttpResponse too_large;
        too_large.status_code = 413;
        too_large.reason = "Content Too Large";
        too_large.headers = {{"Connection", "close"}};
        FinishResponse(conn, SerializeHttpResponse(too_large),
                       /*close_after_write=*/true);
        return;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EOF or hard error.
    if (conn->executing || !conn->out.empty()) {
      conn->peer_closed = true;  // Let the in-flight response finish/fail.
      break;
    }
    CloseConnection(conn);
    return;
  }
  PumpConnection(conn);
}

void HttpServer::PumpConnection(Connection* conn) {
  if (conn->executing || !conn->out.empty()) return;
  HttpRequest request;
  auto consumed = TryParseHttpRequest(conn->in, &request);
  if (!consumed.ok()) {
    FinishResponse(conn, SerializeHttpResponse(
                             FramingErrorResponse(consumed.status())),
                   /*close_after_write=*/true);
    return;
  }
  if (*consumed == 0) {
    if (conn->peer_closed) CloseConnection(conn);
    return;
  }
  conn->in.erase(0, *consumed);
  DispatchRequest(conn, std::move(request));
}

void HttpServer::DispatchRequest(Connection* conn, HttpRequest request) {
  conn->executing = true;
  UpdateEpoll(conn);
  const bool request_wants_close = WantsClose(request.headers);
  HttpServerClient client{conn->peer, conn->id};
  const uint64_t connection_id = conn->id;
  // From here the worker owns the request; it must not touch the Connection
  // (the peer can vanish while the handler runs). Results come back through
  // the completion queue.
  workers_->Post([this, connection_id, client = std::move(client),
                  request = std::move(request), request_wants_close] {
    HttpResponse response = handler_(request, client);
    const bool close = request_wants_close || WantsClose(response.headers);
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back(Completion{
          connection_id, SerializeHttpResponse(response), close});
    }
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  });
}

void HttpServer::ApplyCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& done : batch) {
    auto it = connections_.find(done.connection_id);
    if (it == connections_.end()) continue;  // Peer vanished mid-handler.
    Connection* conn = it->second.get();
    conn->executing = false;
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    FinishResponse(conn, std::move(done.wire_bytes), done.close_after_write);
  }
}

void HttpServer::FinishResponse(Connection* conn, std::string wire_bytes,
                                bool close_after_write) {
  conn->out = std::move(wire_bytes);
  conn->close_after_write = close_after_write;
  // Optimistic immediate write: most responses fit the socket buffer, so
  // the common path costs zero extra epoll round trips.
  HandleWritable(conn);
}

void HttpServer::HandleWritable(Connection* conn) {
  while (!conn->out.empty()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data(), conn->out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn->out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateEpoll(conn);  // Wait for EPOLLOUT.
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn);  // Peer gone: nothing left to deliver.
    return;
  }
  if (conn->close_after_write || conn->peer_closed) {
    CloseConnection(conn);
    return;
  }
  UpdateEpoll(conn);
  PumpConnection(conn);  // A pipelined request may already be buffered.
}

void HttpServer::UpdateEpoll(Connection* conn) {
  epoll_event ev{};
  ev.data.fd = conn->fd;
  if (!conn->out.empty()) {
    ev.events = EPOLLOUT;
  } else if (conn->executing) {
    ev.events = 0;  // Back-pressure: no reads until the response ships.
  } else {
    ev.events = EPOLLIN;
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void HttpServer::CloseConnection(Connection* conn) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  fd_to_id_.erase(conn->fd);
  connections_.erase(conn->id);  // Frees conn; do not touch it after this.
}

}  // namespace sofya
