// Minimal HTTP/1.1 message model: request/response structs, serialization,
// and incremental parsing — everything both ends of a connection need.
//
// This is deliberately a *message* library, not a client: the same
// serialize/parse pair drives the real socket client (net/http_client.h),
// the epoll server (net/http_server.h), and the in-process loopback used by
// tests, so no two ends of a connection can disagree about framing.
// Supported framing: Content-Length bodies, chunked transfer-coding
// (responses), and read-to-EOF responses. Requests are always
// Content-Length framed; a request bearing Transfer-Encoding is rejected
// outright (Unimplemented -> 501) and the smuggling-shaped combinations —
// Transfer-Encoding together with Content-Length, or conflicting duplicate
// Content-Length values — are hard parse errors (-> 400), per RFC 9112 §6.

#ifndef SOFYA_NET_HTTP_H_
#define SOFYA_NET_HTTP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace sofya {

/// One header field. Comparison of names is ASCII case-insensitive per
/// RFC 9110; values are verbatim.
struct HttpHeader {
  std::string name;
  std::string value;
};

/// An HTTP request (client -> server).
struct HttpRequest {
  std::string method = "POST";
  std::string target = "/";  ///< Origin-form request target (path?query).
  std::vector<HttpHeader> headers;
  std::string body;
};

/// An HTTP response (server -> client).
struct HttpResponse {
  int status_code = 200;
  std::string reason = "OK";
  std::vector<HttpHeader> headers;
  std::string body;
};

/// Case-insensitive header lookup; nullptr when absent.
const std::string* FindHeader(const std::vector<HttpHeader>& headers,
                              std::string_view name);

/// True when the message asks for the connection to be closed after it
/// ("Connection: close"; HTTP/1.1 default is keep-alive).
bool WantsClose(const std::vector<HttpHeader>& headers);

/// Serializes a request as HTTP/1.1 on the wire. A Content-Length header is
/// appended automatically (always, so zero-body POSTs are unambiguous);
/// Host must already be present among `request.headers`.
std::string SerializeHttpRequest(const HttpRequest& request);

/// Serializes a response as HTTP/1.1 with an automatic Content-Length.
std::string SerializeHttpResponse(const HttpResponse& response);

/// Incremental request parse. Returns the number of bytes consumed from the
/// front of `data` when one complete request was parsed into `*out`, 0 when
/// more bytes are needed, or an error for a malformed message. Requests are
/// framed by Content-Length (absent => no body). Framing guards (see file
/// comment): Transfer-Encoding on a request is Unimplemented; a request
/// carrying both Transfer-Encoding and Content-Length, or duplicate
/// Content-Length headers with conflicting values, is a ParseError.
StatusOr<size_t> TryParseHttpRequest(std::string_view data, HttpRequest* out);

/// Incremental response parse; same contract as TryParseHttpRequest.
/// Handles Content-Length and chunked framing. A response with neither is
/// framed by connection close: it completes only when `eof` is true (pass
/// the transport's EOF signal) and then consumes all of `data`.
StatusOr<size_t> TryParseHttpResponse(std::string_view data, bool eof,
                                      HttpResponse* out);

/// Streaming response reader for the client's read loop. Unlike
/// TryParseHttpResponse — which re-scans its input from byte 0 on every
/// call — the reader keeps O(1) state between Feed()s, so a large
/// Content-Length or chunked body costs one pass no matter how many socket
/// reads deliver it.
class HttpResponseReader {
 public:
  /// Consumes `data`. After a return with done()==true, leftover() bytes
  /// at the end of this feed did NOT belong to the response (a desynced
  /// server); further Feed() calls are invalid. Errors are terminal.
  Status Feed(std::string_view data);

  /// Signals transport EOF. Completes a read-to-EOF-framed body; any other
  /// incomplete state becomes Unavailable (truncated response).
  Status FinishEof();

  bool done() const { return state_ == State::kDone; }

  /// Bytes from the final Feed() that belong to the *next* message (only
  /// meaningful once done; nonzero means the connection is desynced).
  size_t leftover() const { return leftover_; }

  /// True when the response consumed the connection (read-to-EOF framing).
  bool ate_connection() const { return ate_connection_; }

  /// The parsed response; valid once done().
  HttpResponse& response() { return response_; }

 private:
  enum class State {
    kHeaders,       ///< Accumulating status line + header block.
    kFixedBody,     ///< Content-Length body: body_remaining_ bytes to go.
    kEofBody,       ///< No framing header: body runs to EOF.
    kChunkHeader,   ///< Reading a chunk-size line.
    kChunkData,     ///< Inside a chunk: body_remaining_ bytes + CRLF.
    kChunkTrailer,  ///< After the last-chunk: trailer lines to blank line.
    kDone,
  };

  /// Transitions out of kHeaders once the header block is complete.
  Status BeginBody();

  State state_ = State::kHeaders;
  std::string buffer_;       ///< Header block / partial framing lines.
  size_t scanned_ = 0;       ///< Prefix of buffer_ already searched.
  uint64_t body_remaining_ = 0;
  uint32_t chunk_pad_ = 0;   ///< Unconsumed bytes of a chunk's CRLF tail.
  size_t leftover_ = 0;
  bool ate_connection_ = false;
  HttpResponse response_;
};

/// A parsed http:// URL.
struct ParsedUrl {
  std::string scheme;  ///< "http" (https is rejected: no TLS stack here).
  std::string host;
  uint16_t port = 80;
  std::string target;  ///< Path + optional query; never empty ("/").
};

/// Parses an absolute http:// URL. https yields Unimplemented (point the
/// client at a plaintext endpoint or a local TLS-terminating proxy).
StatusOr<ParsedUrl> ParseUrl(std::string_view url);

// ------------------------------------------------------------------------
// Percent-encoding / application/x-www-form-urlencoded (RFC 3986 §2.1,
// WHATWG URL). The SPARQL 1.1 Protocol mandates GET ?query=... for the
// query operation; these helpers are what both the server's target parsing
// and the client's GET target construction go through, so encode and decode
// cannot drift. All functions treat bytes as UTF-8-agnostic octets: any
// byte sequence round-trips encode -> decode unchanged.

/// Percent-encodes `raw` for use as a URI query component: unreserved
/// characters (ALPHA / DIGIT / "-" / "." / "_" / "~") pass through, every
/// other octet becomes %XX (uppercase hex).
std::string PercentEncode(std::string_view raw);

/// Strict percent-decoding. Rejects truncated escapes ("%", "%A") and
/// non-hex escape digits ("%zz"). `plus_as_space` additionally maps '+' to
/// ' ' (the form-urlencoded convention); leave it off for path segments.
StatusOr<std::string> PercentDecode(std::string_view encoded,
                                    bool plus_as_space = false);

/// Encodes `raw` as one application/x-www-form-urlencoded value: like
/// PercentEncode, but ' ' becomes '+'.
std::string FormUrlEncode(std::string_view raw);

/// One decoded key=value pair of a query string / form body.
struct QueryParam {
  std::string key;
  std::string value;
};

/// Parses an application/x-www-form-urlencoded string ("a=1&b=x%20y") into
/// decoded pairs, preserving order and duplicates. A field without '=' gets
/// an empty value. Empty fields ("a=1&&b=2") are skipped. Errors on any
/// malformed percent escape.
StatusOr<std::vector<QueryParam>> ParseQueryString(std::string_view query);

/// Splits an origin-form request target into its path and (undecoded) query
/// string; the query is empty when there is no '?'.
void SplitTarget(std::string_view target, std::string_view* path,
                 std::string_view* query);

}  // namespace sofya

#endif  // SOFYA_NET_HTTP_H_
