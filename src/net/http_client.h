// HttpClient: one-origin HTTP/1.1 client over an injected transport, with a
// bounded keep-alive connection pool.
//
// RoundTrip() is thread-safe; concurrent callers each lease a pooled
// connection (opening new ones up to `max_connections`, then waiting), which
// is how HttpSparqlEndpoint pipelines a SelectMany batch over a small fixed
// number of sockets instead of opening one per query.

#ifndef SOFYA_NET_HTTP_CLIENT_H_
#define SOFYA_NET_HTTP_CLIENT_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/http.h"
#include "net/http_transport.h"

namespace sofya {

/// Client pool knobs.
struct HttpClientOptions {
  /// Connection-pool bound == max requests in flight.
  size_t max_connections = 4;

  /// Reject responses larger than this (runaway/malicious server guard).
  size_t max_response_bytes = 64u << 20;

  /// Redirect-following bound for 301/302/307/308 (RFC 9110 §15.4). The
  /// original method and body are re-sent — for this client's POSTed
  /// queries that is what all four codes mean in practice (301/302 "MAY"
  /// rewrite to GET; rewriting a SPARQL query POST to GET would drop the
  /// query, so we preserve the method). Only same-origin targets are
  /// followed: a cross-origin Location would re-send the request body to a
  /// host the caller never configured. 303 See Other is always an error
  /// for POSTs (it *requires* the GET rewrite). 0 disables following.
  int max_redirects = 5;
};

/// Pooled single-origin client; see file comment.
class HttpClient {
 public:
  /// `transport` is not owned and must outlive the client.
  HttpClient(HttpTransport* transport, ParsedUrl origin,
             HttpClientOptions options = {});

  /// Executes one request/response exchange. The Host header is filled in
  /// from the origin; Content-Length is added by serialization. A send
  /// failure on a *reused* (possibly stale keep-alive) connection is
  /// retried once on a fresh connection — a response may never be applied
  /// twice, so only the pre-response phase retries. Same-origin
  /// 301/302/307/308 redirects are followed up to max_redirects hops with
  /// the method and body preserved (see HttpClientOptions::max_redirects);
  /// the returned response is the final one.
  StatusOr<HttpResponse> RoundTrip(const HttpRequest& request);

  const ParsedUrl& origin() const { return origin_; }

 private:
  struct Lease {
    std::unique_ptr<HttpConnection> connection;
    bool reused = false;  ///< Came from the idle pool (stale-able).
  };

  StatusOr<Lease> Acquire();
  void Release(std::unique_ptr<HttpConnection> connection, bool reusable);

  /// One request at one target (the pre-redirect RoundTrip body).
  StatusOr<HttpResponse> RoundTripOnce(const HttpRequest& request);

  /// Resolves a redirect's Location against the configured origin.
  /// Returns the new origin-form target, or an error when the redirect
  /// must not be followed (cross-origin, unsupported scheme, no Location).
  StatusOr<std::string> ResolveRedirectTarget(const HttpResponse& response,
                                              const std::string& current)
      const;

  /// One write + streamed response read (HttpResponseReader, so large
  /// bodies cost one pass). `*reusable` reports whether the connection's
  /// stream is still in sync and may return to the pool;
  /// `*received_bytes` whether any response bytes arrived (the stale-reuse
  /// retry is only sound before that point).
  StatusOr<HttpResponse> Exchange(HttpConnection* connection,
                                  const std::string& wire_bytes,
                                  bool* reusable, bool* received_bytes);

  HttpTransport* transport_;  // Not owned.
  ParsedUrl origin_;
  HttpClientOptions options_;

  std::mutex mu_;
  std::condition_variable slot_freed_;
  std::vector<std::unique_ptr<HttpConnection>> idle_;  // Guarded by mu_.
  size_t open_ = 0;                                    // Guarded by mu_.
};

}  // namespace sofya

#endif  // SOFYA_NET_HTTP_CLIENT_H_
