// HttpServer: a non-blocking epoll accept loop over the HTTP/1.1 message
// model in net/http.h — the server half of the stack whose client half is
// net/http_client.h. Both ends share one serialize/parse pair, so a request
// the client emits is by construction one the server frames correctly, and
// vice versa.
//
// Architecture: one I/O thread runs the epoll loop (accept + non-blocking
// reads/writes); complete requests are handed to a small worker pool that
// invokes the handler, and finished responses travel back to the I/O thread
// through a completion queue + eventfd wake. Per connection, requests are
// processed strictly one at a time (a response is fully written before the
// next buffered request is parsed), which keeps HTTP/1.1 response ordering
// trivially correct; concurrency comes from having many connections.
//
// Framing discipline: requests are parsed with TryParseHttpRequest, whose
// guards reject Transfer-Encoding requests (-> 501) and smuggling-shaped
// header combinations (-> 400) before any handler sees them. Keep-alive is
// the default; "Connection: close" on either side ends the connection after
// the in-flight response drains.
//
// Thread safety: Start/Stop are for one controlling thread; the handler is
// invoked concurrently from worker threads and must be thread-safe.

#ifndef SOFYA_NET_HTTP_SERVER_H_
#define SOFYA_NET_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/http.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace sofya {

/// Server knobs.
struct HttpServerOptions {
  /// Dotted-quad IPv4 address to bind; "0.0.0.0" listens on all interfaces.
  std::string bind_address = "127.0.0.1";

  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;

  /// Handler-executing worker threads.
  size_t worker_threads = 4;

  /// Accepted-connection bound; connections beyond it are refused (closed
  /// immediately) until others drain.
  size_t max_connections = 256;

  /// Hard cap on one buffered request (head + body); larger requests are
  /// answered 413 and the connection closed.
  size_t max_request_bytes = 16u << 20;
};

/// Who sent the request — the handler's admission-control key.
struct HttpServerClient {
  std::string address;     ///< Peer "ip:port" (loopback mode: a label).
  uint64_t connection_id;  ///< Monotonic per accepted connection.
};

/// Epoll HTTP/1.1 server; see file comment.
class HttpServer {
 public:
  /// Maps one parsed request to a response. Invoked on worker threads,
  /// concurrently; must be thread-safe.
  using Handler =
      std::function<HttpResponse(const HttpRequest&, const HttpServerClient&)>;

  explicit HttpServer(Handler handler, HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the I/O thread + worker pool. Fails if the
  /// address/port cannot be bound.
  Status Start();

  /// Stops accepting, joins the I/O thread, drains workers, closes every
  /// connection. Idempotent.
  void Stop();

  /// The bound port (after Start(); useful with options.port == 0).
  uint16_t port() const { return port_; }

  /// True between a successful Start() and Stop().
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Counters (tests / ops).
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-connection state machine. Owned by the I/O thread; workers only
  /// ever see the request copy and the completion queue.
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    std::string peer;      ///< "ip:port".
    std::string in;        ///< Bytes read, not yet parsed.
    std::string out;       ///< Serialized response bytes, not yet written.
    bool executing = false;   ///< A worker owns the current request.
    bool close_after_write = false;
    bool peer_closed = false;  ///< EOF seen while a worker was busy.
  };

  /// A worker's finished response travelling back to the I/O thread.
  struct Completion {
    uint64_t connection_id = 0;
    std::string wire_bytes;
    bool close_after_write = false;
  };

  void EventLoop();
  void AcceptPending();
  void HandleReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  /// Parses (at most) one buffered request and dispatches it; answers
  /// framing errors directly. No-op while a request is executing.
  void PumpConnection(Connection* conn);
  void DispatchRequest(Connection* conn, HttpRequest request);
  void FinishResponse(Connection* conn, std::string wire_bytes,
                      bool close_after_write);
  void ApplyCompletions();
  void CloseConnection(Connection* conn);
  void UpdateEpoll(Connection* conn);

  Handler handler_;
  HttpServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: completions and Stop() wake the loop.
  uint16_t port_ = 0;

  std::thread io_thread_;
  std::unique_ptr<ThreadPool> workers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  // I/O-thread-only state.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  std::unordered_map<int, uint64_t> fd_to_id_;
  uint64_t next_connection_id_ = 1;

  std::mutex completions_mu_;
  std::vector<Completion> completions_;  // Guarded by completions_mu_.

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> requests_served_{0};
};

}  // namespace sofya

#endif  // SOFYA_NET_HTTP_SERVER_H_
