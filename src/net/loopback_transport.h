// LoopbackTransport: an in-process HttpTransport whose connections
// terminate at a handler function instead of a network.
//
// Bytes written by the client are fed through the real request parser
// (net/http.h); each complete request invokes the handler and its response
// is serialized back into the connection's read buffer. The HTTP client is
// therefore exercised end to end — framing, keep-alive, pipelined batches,
// error mapping — with zero sockets, which is what lets the endpoint
// contract suite run in CI.
//
// Thread safety: distinct connections may live on distinct threads (the
// client pool does this); the handler is invoked concurrently and must be
// thread-safe. A single connection is used by one thread at a time.

#ifndef SOFYA_NET_LOOPBACK_TRANSPORT_H_
#define SOFYA_NET_LOOPBACK_TRANSPORT_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>

#include "net/http.h"
#include "net/http_transport.h"

namespace sofya {

/// In-process transport; see file comment.
class LoopbackTransport : public HttpTransport {
 public:
  /// The server side: maps one parsed request to a response. Invoked
  /// synchronously inside the client's WriteAll; must be thread-safe.
  ///
  /// A response with status_code == kKillConnection is a fault-injection
  /// sentinel: the connection dies without writing a single response byte
  /// (like a server process killed mid-request), so the client observes a
  /// clean EOF on read — the exact shape of a dropped keep-alive or a
  /// mid-pipeline connection kill.
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Handler status_code sentinel: kill the connection, send nothing.
  static constexpr int kKillConnection = 0;

  explicit LoopbackTransport(Handler handler)
      : handler_(std::move(handler)) {}

  StatusOr<std::unique_ptr<HttpConnection>> Connect(
      const std::string& host, uint16_t port) override;

  /// Makes the next `n` Connect() calls fail Unavailable (outage drill).
  void FailNextConnects(int n) {
    connect_failures_.store(n, std::memory_order_relaxed);
  }

  /// Connections successfully opened so far (asserts pooling/bounds).
  size_t connections_opened() const {
    return connections_opened_.load(std::memory_order_relaxed);
  }

 private:
  Handler handler_;
  std::atomic<int> connect_failures_{0};
  std::atomic<size_t> connections_opened_{0};
};

}  // namespace sofya

#endif  // SOFYA_NET_LOOPBACK_TRANSPORT_H_
