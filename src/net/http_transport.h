// Transport abstraction under the HTTP client: a factory for blocking,
// bidirectional byte streams.
//
// The production implementation is SocketTransport (real TCP); tests inject
// LoopbackTransport, which terminates the same byte stream at an in-process
// handler — so every line of HTTP client code runs in CI with zero network
// access.

#ifndef SOFYA_NET_HTTP_TRANSPORT_H_
#define SOFYA_NET_HTTP_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace sofya {

/// One established connection. Not thread-safe: a connection is used by one
/// request/response exchange at a time (the client pool enforces this).
/// Closing is implicit in destruction.
class HttpConnection {
 public:
  virtual ~HttpConnection() = default;

  /// Writes all of `data` (blocking). Errors are connection-fatal.
  virtual Status WriteAll(std::string_view data) = 0;

  /// Reads up to `capacity` bytes into `buffer` (blocking until at least one
  /// byte, EOF, or a timeout). Returns 0 on orderly EOF. Timeout surfaces
  /// as DeadlineExceeded, other failures as Unavailable.
  virtual StatusOr<size_t> Read(char* buffer, size_t capacity) = 0;
};

/// Connection factory.
class HttpTransport {
 public:
  virtual ~HttpTransport() = default;

  /// Opens a connection to host:port. Connection failures (refused, DNS,
  /// timeout) surface as Unavailable — they are transient from the
  /// client's perspective and retryable.
  virtual StatusOr<std::unique_ptr<HttpConnection>> Connect(
      const std::string& host, uint16_t port) = 0;
};

}  // namespace sofya

#endif  // SOFYA_NET_HTTP_TRANSPORT_H_
