#include "net/socket_transport.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

#include "util/string_util.h"

namespace sofya {
namespace {

timeval ToTimeval(double ms) {
  if (ms < 0.0) ms = 0.0;
  timeval tv;
  tv.tv_sec = static_cast<time_t>(ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>(
      std::fmod(ms, 1000.0) * 1000.0);
  return tv;
}

class SocketConnection : public HttpConnection {
 public:
  explicit SocketConnection(int fd) : fd_(fd) {}

  ~SocketConnection() override {
    if (fd_ >= 0) ::close(fd_);
  }

  SocketConnection(const SocketConnection&) = delete;
  SocketConnection& operator=(const SocketConnection&) = delete;

  Status WriteAll(std::string_view data) override {
    while (!data.empty()) {
      // MSG_NOSIGNAL: a peer reset must surface as EPIPE, not kill the
      // process with SIGPIPE.
      const ssize_t n =
          ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return Status::DeadlineExceeded("socket: write timed out");
        }
        return Status::Unavailable(
            StrFormat("socket: write failed: %s", std::strerror(errno)));
      }
      data.remove_prefix(static_cast<size_t>(n));
    }
    return Status::OK();
  }

  StatusOr<size_t> Read(char* buffer, size_t capacity) override {
    for (;;) {
      const ssize_t n = ::recv(fd_, buffer, capacity, 0);
      if (n >= 0) return static_cast<size_t>(n);
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("socket: read timed out");
      }
      return Status::Unavailable(
          StrFormat("socket: read failed: %s", std::strerror(errno)));
    }
  }

 private:
  int fd_;
};

/// Non-blocking connect with a poll()-enforced deadline; restores blocking
/// mode before handing the fd over.
Status ConnectWithTimeout(int fd, const sockaddr* addr, socklen_t addr_len,
                          double timeout_ms) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Unavailable("socket: fcntl failed");
  }
  int rc = ::connect(fd, addr, addr_len);
  if (rc < 0 && errno != EINPROGRESS) {
    return Status::Unavailable(
        StrFormat("socket: connect failed: %s", std::strerror(errno)));
  }
  if (rc < 0) {
    pollfd pfd{fd, POLLOUT, 0};
    do {
      rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) return Status::Unavailable("socket: connect timed out");
    if (rc < 0) {
      return Status::Unavailable(
          StrFormat("socket: poll failed: %s", std::strerror(errno)));
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0 ||
        err != 0) {
      return Status::Unavailable(
          StrFormat("socket: connect failed: %s", std::strerror(err)));
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    return Status::Unavailable("socket: fcntl failed");
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::unique_ptr<HttpConnection>> SocketTransport::Connect(
    const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int gai = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                                &hints, &results);
  if (gai != 0) {
    return Status::Unavailable(
        StrFormat("socket: resolve %s failed: %s", host.c_str(),
                  ::gai_strerror(gai)));
  }

  Status last_error = Status::Unavailable("socket: no addresses for " + host);
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = Status::Unavailable(
          StrFormat("socket: socket() failed: %s", std::strerror(errno)));
      continue;
    }
    Status st = ConnectWithTimeout(fd, ai->ai_addr, ai->ai_addrlen,
                                   options_.connect_timeout_ms);
    if (!st.ok()) {
      ::close(fd);
      last_error = std::move(st);
      continue;
    }
    const timeval io = ToTimeval(options_.io_timeout_ms);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &io, sizeof(io));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &io, sizeof(io));
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::freeaddrinfo(results);
    return std::unique_ptr<HttpConnection>(
        std::make_unique<SocketConnection>(fd));
  }
  ::freeaddrinfo(results);
  return last_error;
}

}  // namespace sofya
