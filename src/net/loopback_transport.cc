#include "net/loopback_transport.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace sofya {
namespace {

class LoopbackConnection : public HttpConnection {
 public:
  explicit LoopbackConnection(const LoopbackTransport::Handler* handler)
      : handler_(handler) {}

  Status WriteAll(std::string_view data) override {
    if (closed_) return Status::Unavailable("loopback: connection closed");
    in_.append(data);
    // Serve every complete request already buffered (the client may batch
    // pipelined requests into one write).
    while (!closed_) {
      HttpRequest request;
      auto consumed = TryParseHttpRequest(in_, &request);
      if (!consumed.ok()) return consumed.status();
      if (*consumed == 0) break;
      in_.erase(0, *consumed);
      const HttpResponse response = (*handler_)(request);
      if (response.status_code == LoopbackTransport::kKillConnection) {
        // Fault injection: die without a response byte. Anything already
        // buffered for earlier pipelined requests still drains (those
        // responses were on the wire); this request and everything after
        // it on this connection is lost.
        closed_ = true;
        break;
      }
      out_ += SerializeHttpResponse(response);
      // A "Connection: close" response ends the stream after its bytes
      // drain, exactly like a server closing its socket.
      if (WantsClose(response.headers)) closed_ = true;
    }
    return Status::OK();
  }

  StatusOr<size_t> Read(char* buffer, size_t capacity) override {
    if (out_.empty()) return size_t{0};  // EOF: nothing pending.
    const size_t n = std::min(capacity, out_.size());
    std::memcpy(buffer, out_.data(), n);
    out_.erase(0, n);
    return n;
  }

 private:
  const LoopbackTransport::Handler* handler_;  // Owned by the transport.
  std::string in_;
  std::string out_;
  bool closed_ = false;
};

}  // namespace

StatusOr<std::unique_ptr<HttpConnection>> LoopbackTransport::Connect(
    const std::string& /*host*/, uint16_t /*port*/) {
  int failures = connect_failures_.load(std::memory_order_relaxed);
  while (failures > 0) {
    if (connect_failures_.compare_exchange_weak(failures, failures - 1,
                                                std::memory_order_relaxed)) {
      return Status::Unavailable("loopback: injected connect failure");
    }
  }
  connections_opened_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<HttpConnection>(
      std::make_unique<LoopbackConnection>(&handler_));
}

}  // namespace sofya
