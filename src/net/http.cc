#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>

#include "util/string_util.h"

namespace sofya {
namespace {

constexpr std::string_view kCrlf = "\r\n";

// Guard against absurd messages before buffering them whole.
constexpr size_t kMaxHeaderBytes = 1u << 20;    // 1 MiB of headers.

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view TrimOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses the header block starting after the start line. On success,
/// `*end_of_headers` is the offset just past the blank line. Returns
/// kNeedMore (0 consumed, signalled by returning false with OK status)…
/// Implemented as: returns OK + found=false when incomplete.
Status ParseHeaderBlock(std::string_view data, size_t start,
                        std::vector<HttpHeader>* headers, size_t* body_start,
                        bool* complete) {
  *complete = false;
  size_t pos = start;
  while (true) {
    const size_t eol = data.find(kCrlf, pos);
    if (eol == std::string_view::npos) {
      if (data.size() - start > kMaxHeaderBytes) {
        return Status::ParseError("http: header block exceeds 1 MiB");
      }
      return Status::OK();  // Need more bytes.
    }
    if (eol == pos) {  // Blank line: end of headers.
      *body_start = eol + kCrlf.size();
      *complete = true;
      return Status::OK();
    }
    const std::string_view line = data.substr(pos, eol - pos);
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::ParseError("http: malformed header line");
    }
    const std::string_view name = line.substr(0, colon);
    // Field names must not contain whitespace (smuggling guard).
    if (name.find(' ') != std::string_view::npos ||
        name.find('\t') != std::string_view::npos) {
      return Status::ParseError("http: whitespace in header field name");
    }
    headers->push_back(HttpHeader{std::string(name),
                                  std::string(TrimOws(line.substr(colon + 1)))});
    pos = eol + kCrlf.size();
  }
}

/// Strict non-negative integer parse (decimal).
bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), *out, 10);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseHex64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), *out, 16);
  return ec == std::errc() && ptr == s.data() + s.size();
}

/// Decodes a chunked body starting at `pos`. Same incremental contract:
/// complete=false means "need more bytes".
Status ParseChunkedBody(std::string_view data, size_t pos, std::string* body,
                        size_t* end, bool* complete) {
  *complete = false;
  std::string decoded;
  while (true) {
    const size_t eol = data.find(kCrlf, pos);
    if (eol == std::string_view::npos) return Status::OK();
    // Chunk extensions (";...") are tolerated and ignored.
    std::string_view size_field = data.substr(pos, eol - pos);
    const size_t semi = size_field.find(';');
    if (semi != std::string_view::npos) size_field = size_field.substr(0, semi);
    uint64_t chunk_size = 0;
    if (!ParseHex64(TrimOws(size_field), &chunk_size)) {
      return Status::ParseError("http: malformed chunk size");
    }
    pos = eol + kCrlf.size();
    if (chunk_size == 0) {
      // Trailer section: skip header lines until the blank line.
      while (true) {
        const size_t teol = data.find(kCrlf, pos);
        if (teol == std::string_view::npos) return Status::OK();
        if (teol == pos) {
          *body = std::move(decoded);
          *end = teol + kCrlf.size();
          *complete = true;
          return Status::OK();
        }
        pos = teol + kCrlf.size();
      }
    }
    if (data.size() < pos + chunk_size + kCrlf.size()) return Status::OK();
    decoded.append(data.substr(pos, chunk_size));
    pos += chunk_size;
    if (data.substr(pos, kCrlf.size()) != kCrlf) {
      return Status::ParseError("http: chunk data not CRLF-terminated");
    }
    pos += kCrlf.size();
  }
}

void AppendHeaders(const std::vector<HttpHeader>& headers, size_t body_size,
                   std::string* out) {
  bool have_length = false;
  for (const HttpHeader& h : headers) {
    if (EqualsIgnoreCase(h.name, "Content-Length")) have_length = true;
    out->append(h.name);
    out->append(": ");
    out->append(h.value);
    out->append(kCrlf);
  }
  if (!have_length) {
    out->append("Content-Length: ");
    out->append(std::to_string(body_size));
    out->append(kCrlf);
  }
  out->append(kCrlf);
}

}  // namespace

const std::string* FindHeader(const std::vector<HttpHeader>& headers,
                              std::string_view name) {
  for (const HttpHeader& h : headers) {
    if (EqualsIgnoreCase(h.name, name)) return &h.value;
  }
  return nullptr;
}

bool WantsClose(const std::vector<HttpHeader>& headers) {
  const std::string* connection = FindHeader(headers, "Connection");
  return connection != nullptr && EqualsIgnoreCase(*connection, "close");
}

std::string SerializeHttpRequest(const HttpRequest& request) {
  std::string out;
  out.reserve(128 + request.body.size());
  out += request.method;
  out += ' ';
  out += request.target.empty() ? "/" : request.target;
  out += " HTTP/1.1";
  out += kCrlf;
  AppendHeaders(request.headers, request.body.size(), &out);
  out += request.body;
  return out;
}

std::string SerializeHttpResponse(const HttpResponse& response) {
  std::string out;
  out.reserve(128 + response.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(response.status_code);
  out += ' ';
  out += response.reason.empty() ? "-" : response.reason;
  out += kCrlf;
  AppendHeaders(response.headers, response.body.size(), &out);
  out += response.body;
  return out;
}

StatusOr<size_t> TryParseHttpRequest(std::string_view data, HttpRequest* out) {
  const size_t eol = data.find(kCrlf);
  if (eol == std::string_view::npos) {
    if (data.size() > kMaxHeaderBytes) {
      return Status::ParseError("http: request line exceeds 1 MiB");
    }
    return size_t{0};
  }
  const std::vector<std::string> parts =
      SplitWhitespace(data.substr(0, eol));
  if (parts.size() != 3 || !StartsWith(parts[2], "HTTP/1.")) {
    return Status::ParseError("http: malformed request line");
  }
  HttpRequest request;
  request.method = parts[0];
  request.target = parts[1];

  size_t body_start = 0;
  bool headers_done = false;
  SOFYA_RETURN_IF_ERROR(ParseHeaderBlock(data, eol + kCrlf.size(),
                                         &request.headers, &body_start,
                                         &headers_done));
  if (!headers_done) return size_t{0};

  // Framing guards (RFC 9112 §6.1): this parser only speaks Content-Length
  // requests, and the smuggling-shaped header combinations must die here,
  // before any server logic sees the message. Transfer-Encoding alone is
  // "we do not implement that" (501); Transfer-Encoding next to
  // Content-Length, or two Content-Length headers that disagree, is a
  // malformed — possibly hostile — message (400).
  const bool has_te =
      FindHeader(request.headers, "Transfer-Encoding") != nullptr;
  uint64_t length = 0;
  bool has_length = false;
  for (const HttpHeader& h : request.headers) {
    if (!EqualsIgnoreCase(h.name, "Content-Length")) continue;
    uint64_t parsed = 0;
    if (!ParseUint64(h.value, &parsed)) {
      return Status::ParseError("http: malformed Content-Length");
    }
    if (has_length && parsed != length) {
      return Status::ParseError(
          "http: conflicting duplicate Content-Length headers");
    }
    length = parsed;
    has_length = true;
  }
  if (has_te) {
    if (has_length) {
      return Status::ParseError(
          "http: request carries both Transfer-Encoding and Content-Length");
    }
    return Status::Unimplemented(
        "http: Transfer-Encoding is not supported on requests");
  }
  if (data.size() - body_start < length) return size_t{0};
  request.body = std::string(data.substr(body_start, length));
  *out = std::move(request);
  return body_start + length;
}

StatusOr<size_t> TryParseHttpResponse(std::string_view data, bool eof,
                                      HttpResponse* out) {
  const size_t eol = data.find(kCrlf);
  if (eol == std::string_view::npos) {
    if (data.size() > kMaxHeaderBytes) {
      return Status::ParseError("http: status line exceeds 1 MiB");
    }
    if (eof) return Status::Unavailable("http: truncated response");
    return size_t{0};
  }
  const std::string_view status_line = data.substr(0, eol);
  if (!StartsWith(status_line, "HTTP/1.")) {
    return Status::ParseError("http: malformed status line");
  }
  const std::vector<std::string> parts = SplitWhitespace(status_line);
  uint64_t code = 0;
  if (parts.size() < 2 || !ParseUint64(parts[1], &code) || code < 100 ||
      code > 599) {
    return Status::ParseError("http: malformed status code");
  }
  HttpResponse response;
  response.status_code = static_cast<int>(code);
  response.reason.clear();
  for (size_t i = 2; i < parts.size(); ++i) {
    if (!response.reason.empty()) response.reason += ' ';
    response.reason += parts[i];
  }

  size_t body_start = 0;
  bool headers_done = false;
  SOFYA_RETURN_IF_ERROR(ParseHeaderBlock(data, eol + kCrlf.size(),
                                         &response.headers, &body_start,
                                         &headers_done));
  if (!headers_done) {
    if (eof) return Status::Unavailable("http: truncated response headers");
    return size_t{0};
  }

  // Bodiless statuses first: 1xx, 204, 304 have no body by definition.
  if (response.status_code / 100 == 1 || response.status_code == 204 ||
      response.status_code == 304) {
    *out = std::move(response);
    return body_start;
  }

  const std::string* te = FindHeader(response.headers, "Transfer-Encoding");
  if (te != nullptr) {
    if (!EqualsIgnoreCase(TrimOws(*te), "chunked")) {
      return Status::ParseError("http: unsupported Transfer-Encoding " + *te);
    }
    size_t end = 0;
    bool body_done = false;
    SOFYA_RETURN_IF_ERROR(ParseChunkedBody(data, body_start, &response.body,
                                           &end, &body_done));
    if (!body_done) {
      if (eof) return Status::Unavailable("http: truncated chunked body");
      return size_t{0};
    }
    *out = std::move(response);
    return end;
  }

  if (const std::string* cl = FindHeader(response.headers, "Content-Length")) {
    uint64_t length = 0;
    if (!ParseUint64(*cl, &length)) {
      return Status::ParseError("http: malformed Content-Length");
    }
    if (data.size() - body_start < length) {
      if (eof) return Status::Unavailable("http: truncated response body");
      return size_t{0};
    }
    response.body = std::string(data.substr(body_start, length));
    *out = std::move(response);
    return body_start + length;
  }

  // Neither framing header: the body runs to connection close.
  if (!eof) return size_t{0};
  response.body = std::string(data.substr(body_start));
  *out = std::move(response);
  return data.size();
}

Status HttpResponseReader::BeginBody() {
  scanned_ = 0;
  if (response_.status_code / 100 == 1 || response_.status_code == 204 ||
      response_.status_code == 304) {
    state_ = State::kDone;
    return Status::OK();
  }
  const std::string* te = FindHeader(response_.headers, "Transfer-Encoding");
  if (te != nullptr) {
    if (!EqualsIgnoreCase(TrimOws(*te), "chunked")) {
      return Status::ParseError("http: unsupported Transfer-Encoding " + *te);
    }
    state_ = State::kChunkHeader;
    return Status::OK();
  }
  if (const std::string* cl = FindHeader(response_.headers, "Content-Length")) {
    if (!ParseUint64(*cl, &body_remaining_)) {
      return Status::ParseError("http: malformed Content-Length");
    }
    state_ = body_remaining_ == 0 ? State::kDone : State::kFixedBody;
    return Status::OK();
  }
  // No framing header: the body runs to connection close.
  state_ = State::kEofBody;
  ate_connection_ = true;
  return Status::OK();
}

Status HttpResponseReader::Feed(std::string_view data) {
  // `data` may be re-pointed at `tail_carry` after a line-oriented state
  // completes; by then the original view has always been fully consumed.
  std::string tail_carry;
  while (true) {
    switch (state_) {
      case State::kDone:
        leftover_ += data.size();
        return Status::OK();

      case State::kFixedBody: {
        const size_t take =
            static_cast<size_t>(std::min<uint64_t>(data.size(),
                                                   body_remaining_));
        response_.body.append(data.substr(0, take));
        body_remaining_ -= take;
        data.remove_prefix(take);
        if (body_remaining_ > 0) return Status::OK();  // data exhausted.
        state_ = State::kDone;
        continue;
      }

      case State::kEofBody:
        response_.body.append(data);
        return Status::OK();

      case State::kChunkData: {
        const size_t take =
            static_cast<size_t>(std::min<uint64_t>(data.size(),
                                                   body_remaining_));
        response_.body.append(data.substr(0, take));
        body_remaining_ -= take;
        data.remove_prefix(take);
        if (body_remaining_ > 0) return Status::OK();
        // Then the chunk's trailing CRLF, byte by byte (it can split
        // across reads).
        while (chunk_pad_ > 0 && !data.empty()) {
          const char expected = chunk_pad_ == 2 ? '\r' : '\n';
          if (data.front() != expected) {
            return Status::ParseError("http: chunk data not CRLF-terminated");
          }
          --chunk_pad_;
          data.remove_prefix(1);
        }
        if (chunk_pad_ > 0) return Status::OK();
        state_ = State::kChunkHeader;
        continue;
      }

      case State::kHeaders:
      case State::kChunkHeader:
      case State::kChunkTrailer: {
        // Line-oriented states buffer their (small) input.
        buffer_.append(data);
        data = {};
        if (buffer_.size() > kMaxHeaderBytes) {
          return Status::ParseError("http: header/chunk framing exceeds 1 MiB");
        }
        if (state_ == State::kHeaders) {
          const size_t start = scanned_ > 3 ? scanned_ - 3 : 0;
          const size_t blank = buffer_.find("\r\n\r\n", start);
          if (blank == std::string::npos) {
            scanned_ = buffer_.size();
            return Status::OK();
          }
          const std::string_view head(buffer_.data(), blank + 4);
          const size_t eol = head.find(kCrlf);
          const std::vector<std::string> parts =
              SplitWhitespace(head.substr(0, eol));
          uint64_t code = 0;
          if (parts.size() < 2 || !StartsWith(parts[0], "HTTP/1.") ||
              !ParseUint64(parts[1], &code) || code < 100 || code > 599) {
            return Status::ParseError("http: malformed status line");
          }
          response_.status_code = static_cast<int>(code);
          response_.reason.clear();
          for (size_t i = 2; i < parts.size(); ++i) {
            if (!response_.reason.empty()) response_.reason += ' ';
            response_.reason += parts[i];
          }
          size_t body_start = 0;
          bool headers_done = false;
          SOFYA_RETURN_IF_ERROR(ParseHeaderBlock(head, eol + kCrlf.size(),
                                                 &response_.headers,
                                                 &body_start, &headers_done));
          if (!headers_done || body_start != head.size()) {
            return Status::ParseError("http: malformed header block");
          }
          tail_carry = buffer_.substr(blank + 4);
          buffer_.clear();
          SOFYA_RETURN_IF_ERROR(BeginBody());
          data = tail_carry;
          continue;
        }
        if (state_ == State::kChunkHeader) {
          const size_t start = scanned_ > 1 ? scanned_ - 1 : 0;
          const size_t eol = buffer_.find(kCrlf, start);
          if (eol == std::string::npos) {
            scanned_ = buffer_.size();
            return Status::OK();
          }
          std::string_view size_field(buffer_.data(), eol);
          const size_t semi = size_field.find(';');
          if (semi != std::string_view::npos) {
            size_field = size_field.substr(0, semi);
          }
          uint64_t chunk_size = 0;
          if (!ParseHex64(TrimOws(size_field), &chunk_size)) {
            return Status::ParseError("http: malformed chunk size");
          }
          tail_carry = buffer_.substr(eol + kCrlf.size());
          buffer_.clear();
          scanned_ = 0;
          if (chunk_size == 0) {
            state_ = State::kChunkTrailer;
          } else {
            body_remaining_ = chunk_size;
            chunk_pad_ = 2;
            state_ = State::kChunkData;
          }
          data = tail_carry;
          continue;
        }
        // kChunkTrailer: skip trailer lines until the blank line.
        while (true) {
          const size_t eol = buffer_.find(kCrlf);
          if (eol == std::string::npos) {
            scanned_ = buffer_.size();
            return Status::OK();
          }
          const bool blank = eol == 0;
          buffer_.erase(0, eol + kCrlf.size());
          if (blank) {
            leftover_ += buffer_.size();
            buffer_.clear();
            state_ = State::kDone;
            break;
          }
        }
        continue;
      }
    }
  }
}

Status HttpResponseReader::FinishEof() {
  if (state_ == State::kDone) return Status::OK();
  if (state_ == State::kEofBody) {
    state_ = State::kDone;
    return Status::OK();
  }
  return Status::Unavailable("http: truncated response");
}

StatusOr<ParsedUrl> ParseUrl(std::string_view url) {
  const size_t scheme_end = url.find("://");
  if (scheme_end == std::string_view::npos) {
    return Status::InvalidArgument("url: missing scheme in '" +
                                   std::string(url) + "'");
  }
  ParsedUrl parsed;
  parsed.scheme = std::string(url.substr(0, scheme_end));
  std::transform(parsed.scheme.begin(), parsed.scheme.end(),
                 parsed.scheme.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (parsed.scheme == "https") {
    return Status::Unimplemented(
        "url: https endpoints are not supported (no TLS stack); use http:// "
        "or a local TLS-terminating proxy");
  }
  if (parsed.scheme != "http") {
    return Status::InvalidArgument("url: unsupported scheme '" +
                                   parsed.scheme + "'");
  }
  std::string_view rest = url.substr(scheme_end + 3);
  const size_t path_start = rest.find('/');
  std::string_view authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  parsed.target = path_start == std::string_view::npos
                      ? "/"
                      : std::string(rest.substr(path_start));
  if (authority.find('@') != std::string_view::npos) {
    return Status::InvalidArgument("url: userinfo not supported");
  }
  if (!authority.empty() && authority.front() == '[') {
    // IPv6 literal: [::1] or [::1]:8890. The brackets are URL syntax only;
    // getaddrinfo wants the bare address.
    const size_t close = authority.find(']');
    if (close == std::string_view::npos) {
      return Status::InvalidArgument("url: unterminated IPv6 literal");
    }
    parsed.host = std::string(authority.substr(1, close - 1));
    std::string_view rest_auth = authority.substr(close + 1);
    if (!rest_auth.empty()) {
      uint64_t port = 0;
      if (rest_auth.front() != ':' ||
          !ParseUint64(rest_auth.substr(1), &port) || port == 0 ||
          port > 65535) {
        return Status::InvalidArgument("url: malformed port");
      }
      parsed.port = static_cast<uint16_t>(port);
    }
    if (parsed.host.empty()) {
      return Status::InvalidArgument("url: empty host");
    }
    return parsed;
  }
  const size_t colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    uint64_t port = 0;
    if (!ParseUint64(authority.substr(colon + 1), &port) || port == 0 ||
        port > 65535) {
      return Status::InvalidArgument("url: malformed port");
    }
    parsed.port = static_cast<uint16_t>(port);
    authority = authority.substr(0, colon);
  }
  if (authority.empty()) {
    return Status::InvalidArgument("url: empty host");
  }
  parsed.host = std::string(authority);
  return parsed;
}

namespace {

constexpr char kHexDigits[] = "0123456789ABCDEF";

bool IsUnreserved(unsigned char c) {
  return std::isalnum(c) || c == '-' || c == '.' || c == '_' || c == '~';
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string PercentEncodeImpl(std::string_view raw, bool space_as_plus) {
  std::string out;
  out.reserve(raw.size());
  for (const char ch : raw) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (IsUnreserved(c)) {
      out += ch;
    } else if (space_as_plus && c == ' ') {
      out += '+';
    } else {
      out += '%';
      out += kHexDigits[c >> 4];
      out += kHexDigits[c & 0xF];
    }
  }
  return out;
}

}  // namespace

std::string PercentEncode(std::string_view raw) {
  return PercentEncodeImpl(raw, /*space_as_plus=*/false);
}

std::string FormUrlEncode(std::string_view raw) {
  return PercentEncodeImpl(raw, /*space_as_plus=*/true);
}

StatusOr<std::string> PercentDecode(std::string_view encoded,
                                    bool plus_as_space) {
  std::string out;
  out.reserve(encoded.size());
  for (size_t i = 0; i < encoded.size(); ++i) {
    const char c = encoded[i];
    if (c == '%') {
      if (encoded.size() - i < 3) {
        return Status::ParseError("url: truncated percent escape");
      }
      const int hi = HexValue(encoded[i + 1]);
      const int lo = HexValue(encoded[i + 2]);
      if (hi < 0 || lo < 0) {
        return Status::ParseError("url: malformed percent escape '" +
                                  std::string(encoded.substr(i, 3)) + "'");
      }
      out += static_cast<char>((hi << 4) | lo);
      i += 2;
    } else if (plus_as_space && c == '+') {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

StatusOr<std::vector<QueryParam>> ParseQueryString(std::string_view query) {
  std::vector<QueryParam> params;
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    const std::string_view field = query.substr(pos, amp - pos);
    pos = amp + 1;
    if (field.empty()) {
      if (amp == query.size()) break;
      continue;
    }
    const size_t eq = field.find('=');
    const std::string_view raw_key =
        eq == std::string_view::npos ? field : field.substr(0, eq);
    const std::string_view raw_value =
        eq == std::string_view::npos ? std::string_view{}
                                     : field.substr(eq + 1);
    SOFYA_ASSIGN_OR_RETURN(std::string key,
                           PercentDecode(raw_key, /*plus_as_space=*/true));
    SOFYA_ASSIGN_OR_RETURN(std::string value,
                           PercentDecode(raw_value, /*plus_as_space=*/true));
    params.push_back(QueryParam{std::move(key), std::move(value)});
    if (amp == query.size()) break;
  }
  return params;
}

void SplitTarget(std::string_view target, std::string_view* path,
                 std::string_view* query) {
  const size_t qmark = target.find('?');
  if (qmark == std::string_view::npos) {
    *path = target;
    *query = {};
  } else {
    *path = target.substr(0, qmark);
    *query = target.substr(qmark + 1);
  }
}

}  // namespace sofya
