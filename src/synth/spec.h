// Specification types for synthetic two-KB worlds.
//
// The generator (synth/world_generator.h) creates one latent "world" of
// typed entities and abstract facts grouped into *concepts* (canonical
// relations), then projects that world into two KBs. Each KB relation maps
// to a *set* of concepts; the ground-truth alignment between two relations
// is decided purely by concept-set inclusion:
//
//     r1 => r2  iff  concepts(r1) ⊆ concepts(r2)
//
// This gives every statistical regime in the paper:
//  * equivalence      — both KBs expose a relation for the same concept;
//  * subsumption      — K has creatorOf = {composes, writes}; K' has
//                       composerOf = {composes}: composerOf => creatorOf
//                       but not conversely;
//  * overlap trap     — directs and produces are distinct concepts, but the
//                       *data* correlates (rho of producers also direct), so
//                       sample-based measures are fooled while ground truth
//                       says kNone;
//  * open world       — per-relation coverage < 1 drops facts independently
//                       in each KB.

#ifndef SOFYA_SYNTH_SPEC_H_
#define SOFYA_SYNTH_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/namespaces.h"

namespace sofya {

/// What a literal-valued concept stores.
enum class LiteralKind {
  kName,    ///< The entity's (noised) display name.
  kYear,    ///< A deterministic year in [1900, 2020).
  kNumber,  ///< A deterministic integer.
};

/// One canonical relation in the latent world.
struct ConceptSpec {
  std::string name;        ///< Unique concept id (e.g. "directs").
  size_t num_facts = 500;  ///< Distinct world facts to generate.
  int domain_type = 0;     ///< Entity type of subjects.
  int range_type = 1;      ///< Entity type of objects (entity-entity only).
  double subject_zipf = 0.8;  ///< Skew of subject popularity.
  double object_zipf = 0.8;   ///< Skew of object popularity.
  bool functional = false;    ///< At most one object per subject.
  bool literal_range = false; ///< Object is a literal, not an entity.
  LiteralKind literal_kind = LiteralKind::kName;

  /// Data-level correlation: when generating a fact for subject x, with
  /// probability `correlation_rho` copy an object of x from the (earlier
  /// declared) concept `correlate_with` instead of sampling fresh. This is
  /// the producer-also-directs trap of Section 2.2.
  std::string correlate_with;
  double correlation_rho = 0.0;

  /// Rotates the Zipf subject distribution to start at this fraction of the
  /// domain. Sibling concepts with staggered regions have *thin* domain
  /// overlap: random samples rarely hit it, targeted UBS probes do — the
  /// regime behind the paper's "subsumption mistaken for equivalence".
  double subject_region_start = 0.0;

  /// With this probability a subject is drawn from the *unshifted* (shared)
  /// region instead. Gives staggered siblings a small, reliable population
  /// of subjects appearing in several siblings — the paper's "composers
  /// that are also writers".
  double subject_shared_mix = 0.0;
};

/// How incompleteness removes facts from a KB.
enum class CoverageModel {
  /// Drop whole *subjects*: a KB knows either all or none of a subject's
  /// facts for a relation. This matches the partial-completeness assumption
  /// (PCA) the paper's measures are built on, and the real-world phenomenon
  /// (an infobox either lists someone's children or doesn't).
  kPerSubject,
  /// Drop facts independently — violates the PCA premise; exposed as an
  /// ablation knob (bench E5) to show how UBS degrades when the assumption
  /// breaks.
  kPerFact,
};

/// One relation exposed by a KB.
struct KbRelationSpec {
  std::string local_name;  ///< IRI suffix under the KB's ontology namespace.
  /// Concepts whose facts this relation unions. Ground-truth alignment is
  /// concept-set inclusion.
  std::vector<std::string> concepts;
  /// Fraction of the concepts' world facts this KB actually stores — the
  /// open-world incompleteness knob (see `coverage_model`).
  double coverage = 0.9;
  CoverageModel coverage_model = CoverageModel::kPerSubject;

  /// Probability that a stored fact's object is *wrong* in this KB
  /// (replaced by a random same-type entity / another subject's literal).
  /// Models inter-KB disagreement — the noise that keeps even true rules
  /// from scoring a clean 1.0 on small samples.
  double fact_noise = 0.0;
};

/// Surface noise applied to string literals when a KB stores them.
struct LiteralNoiseOptions {
  double typo_rate = 0.0;        ///< Per-literal chance of one edit.
  double case_change_rate = 0.0; ///< Lower-cases the whole literal.
  double token_swap_rate = 0.0;  ///< Swaps the first two tokens.
  double abbreviate_rate = 0.0;  ///< First token -> initial ("J. Smith").
  double drop_token_rate = 0.0;  ///< Deletes the last token (if >= 2).
};

/// Full description of a two-KB world.
struct WorldSpec {
  uint64_t seed = 1234;

  size_t num_entities = 5000;
  size_t num_types = 8;

  /// Latent concepts, in declaration order (correlations may only point to
  /// earlier concepts).
  std::vector<ConceptSpec> concepts;

  std::string kb1_name = "kb1";
  std::string kb2_name = "kb2";
  std::string kb1_base = std::string(ns::kKb1);
  std::string kb2_base = std::string(ns::kKb2);

  std::vector<KbRelationSpec> kb1_relations;
  std::vector<KbRelationSpec> kb2_relations;

  /// Fraction of shared entities that get a (correct) sameAs link.
  double link_coverage = 0.9;
  /// Fraction of emitted links that are *wrong* (point to a random entity).
  double link_noise = 0.0;

  /// Mint entity IRIs with the *same* surface convention in both KBs
  /// (kb1's underscored names). Combined with identical kb1_base/kb2_base
  /// and link_coverage = 0 this models the shared-identifier regime —
  /// canonical IRIs, zero sameAs links — where alignment must come from a
  /// non-sameAs candidate source. Relations keep their per-KB local names.
  bool shared_entity_names = false;

  LiteralNoiseOptions kb1_literal_noise;
  LiteralNoiseOptions kb2_literal_noise;

  /// Also materialize the inverse of every entity-entity relation
  /// ("<name>Inv", subject/object swapped). The paper assumes "the inverse
  /// relations have been added to the two KBs", which is why it only mines
  /// direct rules; this flag reproduces that preprocessing.
  bool add_inverse_relations = false;
};

}  // namespace sofya

#endif  // SOFYA_SYNTH_SPEC_H_
