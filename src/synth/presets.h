// Ready-made WorldSpecs.
//
//  * TinyWorldSpec      — minimal two-relation world for unit tests.
//  * MoviesWorldSpec    — the paper's hasDirector/hasProducer/directedBy
//                         overlap trap (Section 2.2, "mining overlappings
//                         that are not subsumptions").
//  * MusicWorldSpec     — the paper's composerOf/writerOf/creatorOf sibling
//                         subsumption ("mining subsumptions that are not
//                         equivalences").
//  * PairedKbSpec       — parameterized large world with an equivalence
//                         backbone, sibling groups, overlap traps and
//                         private relations.
//  * YagoDbpediaSpec    — PairedKbSpec tuned to the paper's evaluation
//                         scale: kb1 ("yago") with 92 relations, kb2
//                         ("dbpd") with 1313 relations.

#ifndef SOFYA_SYNTH_PRESETS_H_
#define SOFYA_SYNTH_PRESETS_H_

#include <cstdint>

#include "synth/spec.h"

namespace sofya {

/// Minimal world: one equivalent relation pair + one KB-private relation.
WorldSpec TinyWorldSpec(uint64_t seed = 5);

/// Movies world: directedBy overlap trap with tunable correlation.
WorldSpec MoviesWorldSpec(uint64_t seed = 7, double producer_directs_rho = 0.75);

/// Music world: creatorOf = composerOf ∪ writerOf sibling subsumption.
WorldSpec MusicWorldSpec(uint64_t seed = 11);

/// Knobs for the large paired world.
struct PairedKbOptions {
  uint64_t seed = 2016;
  size_t num_entities = 20000;
  size_t num_types = 10;

  /// Concepts exposed (1:1) by both KBs — the equivalence backbone.
  size_t shared_concepts = 48;
  /// Fraction of shared concepts that are entity-literal.
  double literal_fraction = 0.15;

  /// Sibling groups: kb1 gets `siblings_per_group` relations, kb2 one union
  /// relation over the same concepts.
  size_t sibling_groups = 12;
  size_t siblings_per_group = 2;
  /// Fraction of sibling facts drawn from a region shared by all siblings
  /// of the group (the composer-who-also-writes population).
  double sibling_shared_mix = 0.12;

  /// Overlap traps: kb1 gets two correlated relations, kb2 mirrors only the
  /// first; correlation makes the second *look* subsumed.
  size_t overlap_traps = 10;
  double overlap_rho = 0.85;

  /// Relations private to one KB (their concepts exist nowhere else).
  size_t kb1_private = 10;
  size_t kb2_private = 0;

  size_t facts_per_shared_concept = 400;
  size_t facts_per_sibling_concept = 300;
  size_t facts_per_trap_concept = 300;
  size_t facts_per_private_concept = 60;

  double kb1_coverage = 0.75;
  double kb2_coverage = 0.85;

  /// Inter-KB disagreement: probability a stored fact's object is wrong in
  /// each KB. Keeps true rules from scoring a clean 1.0 on 10-subject
  /// samples, which is what pushes the paper's best-F1 τ down into the
  /// 0.3 region where traps survive.
  double kb1_fact_noise = 0.06;
  double kb2_fact_noise = 0.10;

  double link_coverage = 0.85;
  double link_noise = 0.0;
};

/// Builds the paired-world spec from the options.
WorldSpec PairedKbSpec(const PairedKbOptions& options);

/// Zero-sameAs world: both KBs share one namespace and one entity-IRI
/// convention (canonical identifiers) but expose NO sameAs links at all, so
/// the sameAs-overlap candidate source is structurally blind here. Relation
/// names are noisy lexical variants of each other (kb1 camelCase with
/// has/was prefixes, kb2 snake_case, a few typos) plus kb1-private
/// distractors — the regime the MinHash/LSH lexical source exists for.
/// With `shared_entities = false` the KBs instead keep disjoint namespaces
/// and per-KB naming (links still zero): candidate *discovery* can be
/// compared across sources but no evidence loop is possible — the bench's
/// contrast variant.
WorldSpec NoLinksWorldSpec(uint64_t seed = 29, bool shared_entities = true);

/// The Table-1 evaluation world. kb1 plays YAGO2 (92 relations), kb2 plays
/// DBpedia (1313 relations; the excess is private relations, as in the real
/// DBpedia where most properties have no YAGO counterpart).
///
/// `scale` in (0, 1] shrinks the private-relation tail and fact counts for
/// faster CI runs while preserving every alignment regime; scale = 1
/// reproduces the full 92 / 1313 relation counts.
WorldSpec YagoDbpediaSpec(uint64_t seed = 2016, double scale = 1.0);

}  // namespace sofya

#endif  // SOFYA_SYNTH_PRESETS_H_
