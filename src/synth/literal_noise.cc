#include "synth/literal_noise.h"

#include <array>
#include <cctype>

#include "util/string_util.h"

namespace sofya {

namespace {

constexpr std::array<const char*, 24> kSyllables = {
    "ka", "ri", "ta", "lo", "ven", "mar", "sel", "dor", "ni", "thu", "bel",
    "gor", "li", "ran", "pe", "mos", "zar", "el", "vi", "dan", "qu", "fer",
    "ha", "shi"};

std::string MakeToken(SplitMix64& mix, int min_syll, int max_syll) {
  const int n = min_syll + static_cast<int>(mix.Next() %
                                            static_cast<uint64_t>(
                                                max_syll - min_syll + 1));
  std::string token;
  for (int i = 0; i < n; ++i) {
    token += kSyllables[mix.Next() % kSyllables.size()];
  }
  token[0] = static_cast<char>(
      std::toupper(static_cast<unsigned char>(token[0])));
  return token;
}

}  // namespace

std::string SynthesizeName(uint64_t entity_id) {
  // Derive everything from a private SplitMix64 stream so names are stable
  // regardless of generator phase ordering.
  SplitMix64 mix(entity_id * 0x9e3779b97f4a7c15ULL + 0xabcdefULL);
  std::string name = MakeToken(mix, 2, 3);
  name += ' ';
  name += MakeToken(mix, 2, 4);
  return name;
}

std::string ApplyLiteralNoise(const std::string& value,
                              const LiteralNoiseOptions& options, Rng& rng) {
  std::string out = value;

  if (options.case_change_rate > 0.0 &&
      rng.Bernoulli(options.case_change_rate)) {
    out = ToLower(out);
  }

  if (options.abbreviate_rate > 0.0 && rng.Bernoulli(options.abbreviate_rate)) {
    auto tokens = SplitWhitespace(out);
    if (tokens.size() >= 2 && !tokens[0].empty()) {
      tokens[0] = std::string(1, tokens[0][0]) + ".";
      out = Join(tokens, " ");
    }
  }

  if (options.token_swap_rate > 0.0 && rng.Bernoulli(options.token_swap_rate)) {
    auto tokens = SplitWhitespace(out);
    if (tokens.size() >= 2) {
      std::swap(tokens[0], tokens[1]);
      out = Join(tokens, " ");
    }
  }

  if (options.drop_token_rate > 0.0 && rng.Bernoulli(options.drop_token_rate)) {
    auto tokens = SplitWhitespace(out);
    if (tokens.size() >= 2) {
      tokens.pop_back();
      out = Join(tokens, " ");
    }
  }

  if (options.typo_rate > 0.0 && rng.Bernoulli(options.typo_rate) &&
      !out.empty()) {
    const size_t pos = rng.Below(out.size());
    const char c = static_cast<char>('a' + rng.Below(26));
    switch (rng.Below(3)) {
      case 0:  // Substitute.
        out[pos] = c;
        break;
      case 1:  // Insert.
        out.insert(out.begin() + static_cast<ptrdiff_t>(pos), c);
        break;
      default:  // Delete (keep at least one char).
        if (out.size() > 1) out.erase(pos, 1);
    }
  }
  return out;
}

}  // namespace sofya
