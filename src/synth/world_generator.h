// WorldGenerator: materializes a WorldSpec into two KnowledgeBases, a
// sameAs link set, and the GroundTruth oracle.
//
// Substitution note (see DESIGN.md): this stands in for the paper's YAGO2 /
// DBpedia datasets. The alignment algorithm only observes co-occurrence
// statistics of instance pairs under sameAs, and the generator reproduces
// exactly the regimes the paper discusses (incompleteness, sibling
// subsumptions, correlated overlaps, partial/noisy linkage, literal noise).

#ifndef SOFYA_SYNTH_WORLD_GENERATOR_H_
#define SOFYA_SYNTH_WORLD_GENERATOR_H_

#include <memory>
#include <string>

#include "rdf/knowledge_base.h"
#include "sameas/sameas_index.h"
#include "synth/ground_truth.h"
#include "synth/spec.h"
#include "util/status.h"

namespace sofya {

/// Generation summary (reported by benches and asserted on by tests).
struct WorldStats {
  size_t world_facts = 0;     ///< Latent facts across all concepts.
  size_t kb1_facts = 0;       ///< Triples stored in KB1.
  size_t kb2_facts = 0;       ///< Triples stored in KB2.
  size_t kb1_entities = 0;    ///< Latent entities appearing in KB1.
  size_t kb2_entities = 0;    ///< Latent entities appearing in KB2.
  size_t shared_entities = 0; ///< Entities appearing in both.
  size_t links_correct = 0;   ///< Correct sameAs links emitted.
  size_t links_wrong = 0;     ///< Noisy (wrong) links emitted.
};

/// A generated world: two KBs + links + truth.
///
/// Convention used throughout SOFYA's experiments: `kb1` plays K' (the
/// candidate KB searched for body relations r') and `kb2` plays K (the
/// reference KB owning the head relation r) — mirror of yago ⊂ dbpd with
/// kb1=yago, kb2=dbpd.
struct SynthWorld {
  WorldSpec spec;
  std::unique_ptr<KnowledgeBase> kb1;
  std::unique_ptr<KnowledgeBase> kb2;
  SameAsIndex links;
  GroundTruth truth;
  WorldStats stats;
};

/// Generates a world. Deterministic: equal specs (incl. seed) produce
/// bit-identical KBs, links and truth.
///
/// Errors: InvalidArgument for malformed specs (unknown concept references,
/// correlations pointing forward/at-self, empty concept lists, type indexes
/// out of range).
StatusOr<SynthWorld> GenerateWorld(const WorldSpec& spec);

/// Renders a one-paragraph generation report for logs/benches.
std::string DescribeWorld(const SynthWorld& world);

}  // namespace sofya

#endif  // SOFYA_SYNTH_WORLD_GENERATOR_H_
