// Deterministic name synthesis and literal surface noise.

#ifndef SOFYA_SYNTH_LITERAL_NOISE_H_
#define SOFYA_SYNTH_LITERAL_NOISE_H_

#include <cstdint>
#include <string>

#include "synth/spec.h"
#include "util/random.h"

namespace sofya {

/// Generates a human-ish display name ("Varon Kelithar") deterministically
/// from `entity_id` (independent of any Rng state).
std::string SynthesizeName(uint64_t entity_id);

/// Applies LiteralNoiseOptions to `value`, drawing from `rng`. Returns the
/// (possibly unchanged) surface form.
std::string ApplyLiteralNoise(const std::string& value,
                              const LiteralNoiseOptions& options, Rng& rng);

}  // namespace sofya

#endif  // SOFYA_SYNTH_LITERAL_NOISE_H_
