// GroundTruth: the gold-standard alignment the evaluation scores against.
//
// Built from the WorldSpec's relation -> concept-set mapping; alignment is
// concept-set inclusion (see synth/spec.h). Relation identity is the full
// IRI string, so the truth is KB-agnostic and usable from either direction.

#ifndef SOFYA_SYNTH_GROUND_TRUTH_H_
#define SOFYA_SYNTH_GROUND_TRUTH_H_

#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mining/rule.h"

namespace sofya {

/// Gold alignment oracle over relation IRIs.
class GroundTruth {
 public:
  GroundTruth() = default;

  /// Registers a relation with its concept set. `kb_tag` groups relations
  /// by dataset for AllSubsumptions enumeration.
  void AddRelation(const std::string& kb_tag, const std::string& relation_iri,
                   const std::vector<std::string>& concepts);

  /// Number of registered relations (all KBs).
  size_t num_relations() const { return concepts_of_.size(); }

  /// True iff both IRIs are registered.
  bool Knows(const std::string& relation_iri) const {
    return concepts_of_.count(relation_iri) > 0;
  }

  /// Does from => to hold? (concept set of `from` ⊆ concept set of `to`).
  /// Unregistered relations subsume nothing and are subsumed by nothing.
  bool Subsumes(const std::string& from_iri, const std::string& to_iri) const;

  /// Full classification of the ordered pair (from, to).
  AlignKind Classify(const std::string& from_iri,
                     const std::string& to_iri) const;

  /// All gold pairs (from, to) with from in `from_kb_tag`, to in
  /// `to_kb_tag`, and from => to. Sorted for determinism.
  std::vector<std::pair<std::string, std::string>> AllSubsumptions(
      const std::string& from_kb_tag, const std::string& to_kb_tag) const;

  /// Count of AllSubsumptions (cheaper; no materialization).
  size_t CountSubsumptions(const std::string& from_kb_tag,
                           const std::string& to_kb_tag) const;

  /// All relation IRIs registered under `kb_tag`, sorted.
  std::vector<std::string> RelationsOf(const std::string& kb_tag) const;

  /// The concept set of a relation (empty when unknown).
  std::set<std::string> ConceptsOf(const std::string& relation_iri) const;

 private:
  std::unordered_map<std::string, std::set<std::string>> concepts_of_;
  std::unordered_map<std::string, std::vector<std::string>> relations_of_kb_;
};

}  // namespace sofya

#endif  // SOFYA_SYNTH_GROUND_TRUTH_H_
