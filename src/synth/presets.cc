#include "synth/presets.h"

#include <algorithm>

#include "util/random.h"
#include "util/string_util.h"

namespace sofya {

WorldSpec TinyWorldSpec(uint64_t seed) {
  WorldSpec spec;
  spec.seed = seed;
  spec.num_entities = 400;
  spec.num_types = 2;
  spec.kb1_name = "tiny1";
  spec.kb2_name = "tiny2";

  spec.concepts.push_back({.name = "bornIn",
                           .num_facts = 150,
                           .domain_type = 0,
                           .range_type = 1,
                           .functional = true});
  spec.concepts.push_back({.name = "livesIn",
                           .num_facts = 120,
                           .domain_type = 0,
                           .range_type = 1});

  spec.kb1_relations.push_back(
      {.local_name = "wasBornIn", .concepts = {"bornIn"}, .coverage = 0.9});
  spec.kb2_relations.push_back(
      {.local_name = "birthPlace", .concepts = {"bornIn"}, .coverage = 0.9});
  spec.kb2_relations.push_back(
      {.local_name = "residence", .concepts = {"livesIn"}, .coverage = 0.9});

  spec.link_coverage = 1.0;
  return spec;
}

WorldSpec MoviesWorldSpec(uint64_t seed, double producer_directs_rho) {
  WorldSpec spec;
  spec.seed = seed;
  spec.num_entities = 3000;
  spec.num_types = 2;  // type 0 = movies, type 1 = people.
  spec.kb1_name = "moviedb";
  spec.kb2_name = "filmkb";

  spec.concepts.push_back({.name = "directs",
                           .num_facts = 900,
                           .domain_type = 0,
                           .range_type = 1,
                           .subject_zipf = 0.5,
                           .object_zipf = 0.9});
  spec.concepts.push_back({.name = "produces",
                           .num_facts = 900,
                           .domain_type = 0,
                           .range_type = 1,
                           .subject_zipf = 0.5,
                           .object_zipf = 0.9,
                           .correlate_with = "directs",
                           .correlation_rho = producer_directs_rho});
  spec.concepts.push_back({.name = "title",
                           .num_facts = 800,
                           .domain_type = 0,
                           .literal_range = true,
                           .literal_kind = LiteralKind::kName});

  // K' (the candidate KB) distinguishes directors and producers.
  spec.kb1_relations.push_back(
      {.local_name = "hasDirector", .concepts = {"directs"}, .coverage = 0.85});
  spec.kb1_relations.push_back(
      {.local_name = "hasProducer", .concepts = {"produces"}, .coverage = 0.85});
  spec.kb1_relations.push_back(
      {.local_name = "label", .concepts = {"title"}, .coverage = 0.9});

  // K (the reference KB) only has directors (plus the label).
  spec.kb2_relations.push_back(
      {.local_name = "directedBy", .concepts = {"directs"}, .coverage = 0.9});
  spec.kb2_relations.push_back(
      {.local_name = "name", .concepts = {"title"}, .coverage = 0.9});

  spec.link_coverage = 0.95;
  spec.kb1_literal_noise.case_change_rate = 0.3;
  spec.kb2_literal_noise.typo_rate = 0.05;
  return spec;
}

WorldSpec MusicWorldSpec(uint64_t seed) {
  WorldSpec spec;
  spec.seed = seed;
  spec.num_entities = 3000;
  spec.num_types = 2;  // type 0 = people, type 1 = works.
  spec.kb1_name = "musicdb";
  spec.kb2_name = "artkb";

  // Popular people both compose and write (shared Zipf head), so the domain
  // overlap UBS strategy A needs does exist.
  spec.concepts.push_back({.name = "composes",
                           .num_facts = 800,
                           .domain_type = 0,
                           .range_type = 1,
                           .subject_zipf = 1.0});
  spec.concepts.push_back({.name = "writes",
                           .num_facts = 800,
                           .domain_type = 0,
                           .range_type = 1,
                           .subject_zipf = 1.0});

  spec.kb1_relations.push_back(
      {.local_name = "composerOf", .concepts = {"composes"}, .coverage = 0.85});
  spec.kb1_relations.push_back(
      {.local_name = "writerOf", .concepts = {"writes"}, .coverage = 0.85});

  // creatorOf is the union: each sibling is subsumed, neither is equivalent.
  spec.kb2_relations.push_back({.local_name = "creatorOf",
                                .concepts = {"composes", "writes"},
                                .coverage = 0.9});

  spec.link_coverage = 0.95;
  return spec;
}

WorldSpec NoLinksWorldSpec(uint64_t seed, bool shared_entities) {
  WorldSpec spec;
  spec.seed = seed;
  spec.num_entities = 2500;
  spec.num_types = 4;
  spec.kb1_name = "canon1";
  spec.kb2_name = "canon2";
  if (shared_entities) {
    // One namespace, one identifier convention, zero links: translation is
    // the identity (SameAsIndex::TranslateTo's shared-identifier fallback).
    spec.kb1_base = "http://nolinks.sofya.org/";
    spec.kb2_base = spec.kb1_base;
    spec.shared_entity_names = true;
  }
  spec.link_coverage = 0.0;

  // Aligned pairs: kb1 camelCase with has/was prefixes, kb2 snake_case —
  // same tokens after RelationLabel normalization, except the deliberately
  // hard tail (starring, written_by) and a typo (capitol_city).
  struct Pair {
    const char* concept_name;
    const char* kb1;
    const char* kb2;
    bool literal;
    LiteralKind kind;
  };
  const Pair pairs[] = {
      {"birthPlace", "hasBirthPlace", "birth_place", false, LiteralKind::kName},
      {"deathPlace", "hasDeathPlace", "death_place", false, LiteralKind::kName},
      {"spouse", "hasSpouse", "spouse_of", false, LiteralKind::kName},
      {"child", "hasChild", "child_of", false, LiteralKind::kName},
      {"employer", "worksFor", "works_for", false, LiteralKind::kName},
      {"almaMater", "graduatedFrom", "graduated_from", false,
       LiteralKind::kName},
      {"founding", "wasFoundedIn", "founded_in", false, LiteralKind::kName},
      {"location", "isLocatedIn", "located_in", false, LiteralKind::kName},
      {"capital", "hasCapital", "capitol_city", false, LiteralKind::kName},
      {"population", "hasPopulation", "population_total", true,
       LiteralKind::kNumber},
      {"birthYear", "hasBirthYear", "birth_year", true, LiteralKind::kYear},
      {"fullName", "hasName", "full_name", true, LiteralKind::kName},
      {"director", "hasDirector", "directed_by", false, LiteralKind::kName},
      {"actor", "hasActor", "starring", false, LiteralKind::kName},
      {"author", "hasAuthor", "written_by", false, LiteralKind::kName},
      {"publisher", "hasPublisher", "publisher_name", false,
       LiteralKind::kName},
      {"genre", "hasGenre", "genre_type", false, LiteralKind::kName},
      {"language", "hasLanguage", "language_spoken", false,
       LiteralKind::kName},
      {"currency", "hasCurrency", "currency_used", false, LiteralKind::kName},
      {"mayor", "hasMayor", "mayor_name", false, LiteralKind::kName},
  };

  size_t i = 0;
  for (const Pair& p : pairs) {
    ConceptSpec c;
    c.name = p.concept_name;
    c.num_facts = 220;
    c.domain_type = static_cast<int>(i % spec.num_types);
    if (p.literal) {
      c.literal_range = true;
      c.literal_kind = p.kind;
    } else {
      c.range_type = static_cast<int>((i + 1) % spec.num_types);
    }
    spec.concepts.push_back(c);
    spec.kb1_relations.push_back({.local_name = p.kb1,
                                  .concepts = {c.name},
                                  .coverage = 0.85,
                                  .fact_noise = 0.04});
    spec.kb2_relations.push_back({.local_name = p.kb2,
                                  .concepts = {c.name},
                                  .coverage = 0.9,
                                  .fact_noise = 0.06});
    ++i;
  }

  // kb1-private distractors with deliberately dissimilar names — the
  // lexical source must not be fooled into proposing these.
  const char* distractors[] = {"internalCode", "archiveKey", "datasetShard",
                               "uuidTag", "etlTimestamp"};
  size_t d = 0;
  for (const char* name : distractors) {
    ConceptSpec c;
    c.name = StrFormat("nolinks_private_%zu", d);
    c.num_facts = 80;
    c.domain_type = static_cast<int>(d % spec.num_types);
    c.range_type = static_cast<int>((d + 2) % spec.num_types);
    spec.concepts.push_back(c);
    spec.kb1_relations.push_back(
        {.local_name = name, .concepts = {c.name}, .coverage = 0.85});
    ++d;
  }

  spec.kb2_literal_noise.typo_rate = 0.04;
  return spec;
}

WorldSpec PairedKbSpec(const PairedKbOptions& options) {
  WorldSpec spec;
  spec.seed = options.seed;
  spec.num_entities = options.num_entities;
  spec.num_types = options.num_types;
  spec.kb1_name = "yago";
  spec.kb2_name = "dbpd";
  spec.link_coverage = options.link_coverage;
  spec.link_noise = options.link_noise;
  spec.kb1_literal_noise.case_change_rate = 0.25;
  spec.kb1_literal_noise.typo_rate = 0.03;
  spec.kb2_literal_noise.abbreviate_rate = 0.1;

  const auto type_of = [&](size_t i, size_t salt) {
    return static_cast<int>((i * 7 + salt) % options.num_types);
  };

  // Per-relation noise heterogeneity: real KB relations vary widely in
  // quality, which spreads true-rule confidences and pulls the best-F1
  // threshold down into the band where correlated traps survive (the
  // regime behind the paper's low baseline precision).
  const auto noise_of = [](size_t i, uint64_t salt, double mean) {
    SplitMix64 mix(i * 0x9e3779b97f4a7c15ULL + salt);
    const double u = static_cast<double>(mix.Next() >> 11) * 0x1.0p-53;
    return std::min(0.35, mean * (0.3 + 2.2 * u));
  };

  // --- Equivalence backbone -------------------------------------------
  const size_t num_literal =
      static_cast<size_t>(static_cast<double>(options.shared_concepts) *
                          options.literal_fraction);
  for (size_t i = 0; i < options.shared_concepts; ++i) {
    ConceptSpec c;
    c.name = StrFormat("shared_%zu", i);
    c.num_facts = options.facts_per_shared_concept;
    c.domain_type = type_of(i, 0);
    if (i < num_literal) {
      c.literal_range = true;
      c.literal_kind = (i % 3 == 0)   ? LiteralKind::kYear
                       : (i % 3 == 1) ? LiteralKind::kNumber
                                      : LiteralKind::kName;
    } else {
      c.range_type = type_of(i, 3);
      c.functional = (i % 4 == 0);
    }
    spec.concepts.push_back(c);
    spec.kb1_relations.push_back({.local_name = StrFormat("rel%zu", i),
                                  .concepts = {c.name},
                                  .coverage = options.kb1_coverage,
                                  .fact_noise = noise_of(spec.kb1_relations.size(), 11,
                                                         options.kb1_fact_noise)});
    spec.kb2_relations.push_back({.local_name = StrFormat("property%zu", i),
                                  .concepts = {c.name},
                                  .coverage = options.kb2_coverage,
                                  .fact_noise = noise_of(spec.kb2_relations.size(), 22,
                                                         options.kb2_fact_noise)});
  }

  // --- Sibling groups (subsumption, not equivalence) -------------------
  for (size_t g = 0; g < options.sibling_groups; ++g) {
    std::vector<std::string> group_concepts;
    const int dom = type_of(g, 5);
    const int rng_type = type_of(g, 6);
    for (size_t s = 0; s < options.siblings_per_group; ++s) {
      ConceptSpec c;
      c.name = StrFormat("sib_%zu_%zu", g, s);
      c.num_facts = options.facts_per_sibling_concept;
      c.domain_type = dom;
      c.range_type = rng_type;
      // Staggered regions with Zipf skew: each sibling owns a subject
      // subpopulation, with a thin tail overlap. Random samples of the
      // union relation rarely land in the overlap (so the reverse rule
      // looks like an equivalence); UBS's targeted overlap probes find it.
      c.subject_zipf = 1.1;
      c.subject_region_start = static_cast<double>(s) /
                               static_cast<double>(
                                   options.siblings_per_group) * 0.9;
      c.subject_shared_mix = options.sibling_shared_mix;
      spec.concepts.push_back(c);
      group_concepts.push_back(c.name);
      spec.kb1_relations.push_back(
          {.local_name = StrFormat("narrow%zu_%zu", g, s),
           .concepts = {c.name},
           .coverage = options.kb1_coverage,
           .fact_noise = noise_of(spec.kb1_relations.size(), 11,
                                                         options.kb1_fact_noise)});
    }
    spec.kb2_relations.push_back({.local_name = StrFormat("broad%zu", g),
                                  .concepts = group_concepts,
                                  .coverage = options.kb2_coverage,
                                  .fact_noise = noise_of(spec.kb2_relations.size(), 22,
                                                         options.kb2_fact_noise)});
  }

  // --- Overlap traps (correlation, no subsumption) ---------------------
  for (size_t t = 0; t < options.overlap_traps; ++t) {
    const int dom = type_of(t, 8);
    const int rng_type = type_of(t, 9);
    // Both trap concepts live on the same dense subject subpopulation
    // (every movie has a director AND a producer): high Zipf concentration
    // on a per-trap region makes nearly every shadow subject carry base
    // facts, so the correlated shadow relation scores high under PCA with
    // real support — the paper's hasProducer => directedBy trap.
    ConceptSpec base;
    base.name = StrFormat("trap_base_%zu", t);
    base.num_facts = options.facts_per_trap_concept;
    base.domain_type = dom;
    base.range_type = rng_type;
    base.subject_zipf = 1.3;
    base.subject_region_start = 0.07 * static_cast<double>(t);
    spec.concepts.push_back(base);

    ConceptSpec shadow;
    shadow.name = StrFormat("trap_shadow_%zu", t);
    shadow.num_facts = options.facts_per_trap_concept;
    shadow.domain_type = dom;
    shadow.range_type = rng_type;
    shadow.subject_zipf = 1.3;
    shadow.subject_region_start = base.subject_region_start;
    shadow.correlate_with = base.name;
    shadow.correlation_rho = options.overlap_rho;
    spec.concepts.push_back(shadow);

    spec.kb1_relations.push_back({.local_name = StrFormat("base%zu", t),
                                  .concepts = {base.name},
                                  .coverage = options.kb1_coverage,
                                  .fact_noise = noise_of(spec.kb1_relations.size(), 11,
                                                         options.kb1_fact_noise)});
    spec.kb1_relations.push_back({.local_name = StrFormat("shadow%zu", t),
                                  .concepts = {shadow.name},
                                  .coverage = options.kb1_coverage,
                                  .fact_noise = noise_of(spec.kb1_relations.size(), 11,
                                                         options.kb1_fact_noise)});
    spec.kb2_relations.push_back({.local_name = StrFormat("target%zu", t),
                                  .concepts = {base.name},
                                  .coverage = options.kb2_coverage,
                                  .fact_noise = noise_of(spec.kb2_relations.size(), 22,
                                                         options.kb2_fact_noise)});
  }

  // --- Private relations ------------------------------------------------
  for (size_t i = 0; i < options.kb1_private; ++i) {
    ConceptSpec c;
    c.name = StrFormat("kb1_only_%zu", i);
    c.num_facts = options.facts_per_private_concept;
    c.domain_type = type_of(i, 11);
    c.range_type = type_of(i, 12);
    spec.concepts.push_back(c);
    spec.kb1_relations.push_back({.local_name = StrFormat("local%zu", i),
                                  .concepts = {c.name},
                                  .coverage = options.kb1_coverage});
  }
  for (size_t i = 0; i < options.kb2_private; ++i) {
    ConceptSpec c;
    c.name = StrFormat("kb2_only_%zu", i);
    c.num_facts = options.facts_per_private_concept;
    c.domain_type = type_of(i, 13);
    c.range_type = type_of(i, 14);
    spec.concepts.push_back(c);
    spec.kb2_relations.push_back({.local_name = StrFormat("infobox%zu", i),
                                  .concepts = {c.name},
                                  .coverage = options.kb2_coverage});
  }

  return spec;
}

WorldSpec YagoDbpediaSpec(uint64_t seed, double scale) {
  scale = std::clamp(scale, 0.01, 1.0);
  PairedKbOptions options;
  options.seed = seed;
  // kb1 relation count: shared + sibling_groups*siblings + 2*traps + private
  //                   = 20 + 12*2 + 2*24 + 0 = 92  (YAGO2's 92 relations).
  // The mix is deliberately hard-case heavy: most YAGO relations align to
  // DBpedia only through a trap or a sibling group, which is what pushes
  // the sample-based baselines into the paper's 0.5-0.6 precision band.
  options.shared_concepts = 20;
  options.sibling_groups = 12;
  options.siblings_per_group = 2;
  options.overlap_traps = 24;
  options.kb1_private = 0;
  // kb2 relation count: 20 + 12 + 24 + private = 1313 at scale 1.
  options.kb2_private =
      static_cast<size_t>(static_cast<double>(1313 - 20 - 12 - 24) * scale);
  options.num_entities =
      std::max<size_t>(2000, static_cast<size_t>(20000 * scale));
  options.facts_per_shared_concept =
      std::max<size_t>(60, static_cast<size_t>(400 * scale));
  options.facts_per_sibling_concept =
      std::max<size_t>(50, static_cast<size_t>(300 * scale));
  options.facts_per_trap_concept =
      std::max<size_t>(50, static_cast<size_t>(300 * scale));
  options.facts_per_private_concept =
      std::max<size_t>(20, static_cast<size_t>(60 * scale));
  return PairedKbSpec(options);
}

}  // namespace sofya
