#include "synth/ground_truth.h"

#include <algorithm>

namespace sofya {

void GroundTruth::AddRelation(const std::string& kb_tag,
                              const std::string& relation_iri,
                              const std::vector<std::string>& concepts) {
  concepts_of_[relation_iri] =
      std::set<std::string>(concepts.begin(), concepts.end());
  relations_of_kb_[kb_tag].push_back(relation_iri);
}

bool GroundTruth::Subsumes(const std::string& from_iri,
                           const std::string& to_iri) const {
  auto from = concepts_of_.find(from_iri);
  auto to = concepts_of_.find(to_iri);
  if (from == concepts_of_.end() || to == concepts_of_.end()) return false;
  if (from->second.empty()) return false;
  return std::includes(to->second.begin(), to->second.end(),
                       from->second.begin(), from->second.end());
}

AlignKind GroundTruth::Classify(const std::string& from_iri,
                                const std::string& to_iri) const {
  const bool forward = Subsumes(from_iri, to_iri);
  if (!forward) return AlignKind::kNone;
  const bool backward = Subsumes(to_iri, from_iri);
  return backward ? AlignKind::kEquivalence : AlignKind::kSubsumption;
}

std::vector<std::pair<std::string, std::string>> GroundTruth::AllSubsumptions(
    const std::string& from_kb_tag, const std::string& to_kb_tag) const {
  std::vector<std::pair<std::string, std::string>> out;
  auto from_it = relations_of_kb_.find(from_kb_tag);
  auto to_it = relations_of_kb_.find(to_kb_tag);
  if (from_it == relations_of_kb_.end() || to_it == relations_of_kb_.end()) {
    return out;
  }
  for (const auto& from : from_it->second) {
    for (const auto& to : to_it->second) {
      if (Subsumes(from, to)) out.emplace_back(from, to);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t GroundTruth::CountSubsumptions(const std::string& from_kb_tag,
                                      const std::string& to_kb_tag) const {
  return AllSubsumptions(from_kb_tag, to_kb_tag).size();
}

std::vector<std::string> GroundTruth::RelationsOf(
    const std::string& kb_tag) const {
  auto it = relations_of_kb_.find(kb_tag);
  if (it == relations_of_kb_.end()) return {};
  std::vector<std::string> out = it->second;
  std::sort(out.begin(), out.end());
  return out;
}

std::set<std::string> GroundTruth::ConceptsOf(
    const std::string& relation_iri) const {
  auto it = concepts_of_.find(relation_iri);
  if (it == concepts_of_.end()) return {};
  return it->second;
}

}  // namespace sofya
