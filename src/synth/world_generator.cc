#include "synth/world_generator.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "synth/literal_noise.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/string_util.h"

namespace sofya {

namespace {

using EntityId = uint32_t;

/// Latent facts of one cspec.
struct ConceptFacts {
  bool literal = false;
  LiteralKind literal_kind = LiteralKind::kName;
  int range_type = 0;
  /// Entity-entity facts.
  std::vector<std::pair<EntityId, EntityId>> ee;
  /// Entity-literal facts (canonical lexical form).
  std::vector<std::pair<EntityId, std::string>> el;
  /// Subject -> objects (entity-entity), for correlation lookups.
  std::unordered_map<EntityId, std::vector<EntityId>> objects_of;
};

/// Maps (type, rank) to a concrete entity id: entities of type t are the
/// ids congruent to t modulo num_types.
EntityId EntityOfTypeByRank(int type, size_t rank, size_t num_types) {
  return static_cast<EntityId>(static_cast<size_t>(type) + rank * num_types);
}

size_t EntitiesOfTypeCount(int type, size_t num_entities, size_t num_types) {
  if (static_cast<size_t>(type) >= num_entities) return 0;
  return (num_entities - static_cast<size_t>(type) - 1) / num_types + 1;
}

/// KB1 naming: "Varon_Kelithar_17"; KB2 naming: "varonKelithar17".
/// Different surface conventions stress the point that cross-KB identity
/// only flows through sameAs, never through string equality of IRIs.
std::string Kb1LocalName(EntityId e) {
  std::string name = SynthesizeName(e);
  for (char& c : name) {
    if (c == ' ') c = '_';
  }
  return name + "_" + std::to_string(e);
}

std::string Kb2LocalName(EntityId e) {
  const std::string name = SynthesizeName(e);
  std::string out;
  bool upper_next = false;
  for (char c : name) {
    if (c == ' ') {
      upper_next = true;
      continue;
    }
    out += upper_next
               ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
               : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    upper_next = false;
  }
  return out + std::to_string(e);
}

std::string CanonicalLiteral(EntityId subject, LiteralKind kind) {
  switch (kind) {
    case LiteralKind::kName:
      return SynthesizeName(subject);
    case LiteralKind::kYear: {
      const uint64_t h = Fnv1a(&subject, sizeof(subject));
      return std::to_string(1900 + h % 120);
    }
    case LiteralKind::kNumber: {
      const uint64_t salted = subject * 7919ULL + 13;
      const uint64_t h = Fnv1a(&salted, sizeof(salted));
      return std::to_string(h % 1000000);
    }
  }
  return "";
}

Status ValidateSpec(const WorldSpec& spec) {
  if (spec.num_entities == 0) {
    return Status::InvalidArgument("num_entities must be positive");
  }
  if (spec.num_types == 0) {
    return Status::InvalidArgument("num_types must be positive");
  }
  std::unordered_set<std::string> seen;
  for (size_t i = 0; i < spec.concepts.size(); ++i) {
    const ConceptSpec& c = spec.concepts[i];
    if (c.name.empty()) {
      return Status::InvalidArgument(
          StrFormat("concept %zu has an empty name", i));
    }
    if (!seen.insert(c.name).second) {
      return Status::InvalidArgument(
          StrFormat("duplicate concept name '%s'", c.name.c_str()));
    }
    if (c.domain_type < 0 ||
        static_cast<size_t>(c.domain_type) >= spec.num_types ||
        (!c.literal_range &&
         (c.range_type < 0 ||
          static_cast<size_t>(c.range_type) >= spec.num_types))) {
      return Status::InvalidArgument(
          StrFormat("concept '%s': type index out of range", c.name.c_str()));
    }
    if (!c.correlate_with.empty()) {
      if (c.correlate_with == c.name) {
        return Status::InvalidArgument(
            StrFormat("concept '%s' correlates with itself", c.name.c_str()));
      }
      bool found_earlier = false;
      for (size_t j = 0; j < i; ++j) {
        if (spec.concepts[j].name == c.correlate_with) {
          if (spec.concepts[j].literal_range) {
            return Status::InvalidArgument(StrFormat(
                "concept '%s' correlates with literal concept '%s'",
                c.name.c_str(), c.correlate_with.c_str()));
          }
          found_earlier = true;
          break;
        }
      }
      if (!found_earlier) {
        return Status::InvalidArgument(StrFormat(
            "concept '%s' correlates with '%s', which is not an earlier "
            "concept",
            c.name.c_str(), c.correlate_with.c_str()));
      }
    }
  }
  auto check_relations = [&](const std::vector<KbRelationSpec>& rels,
                             const char* kb) -> Status {
    std::unordered_set<std::string> names;
    for (const KbRelationSpec& r : rels) {
      if (r.local_name.empty()) {
        return Status::InvalidArgument(
            StrFormat("%s: relation with empty local_name", kb));
      }
      if (!names.insert(r.local_name).second) {
        return Status::InvalidArgument(StrFormat(
            "%s: duplicate relation '%s'", kb, r.local_name.c_str()));
      }
      if (r.concepts.empty()) {
        return Status::InvalidArgument(StrFormat(
            "%s: relation '%s' maps to no concepts", kb,
            r.local_name.c_str()));
      }
      for (const std::string& concept_name : r.concepts) {
        if (!seen.count(concept_name)) {
          return Status::InvalidArgument(StrFormat(
              "%s: relation '%s' references unknown concept '%s'", kb,
              r.local_name.c_str(), concept_name.c_str()));
        }
      }
      if (r.coverage < 0.0 || r.coverage > 1.0) {
        return Status::InvalidArgument(StrFormat(
            "%s: relation '%s' coverage %.3f outside [0,1]", kb,
            r.local_name.c_str(), r.coverage));
      }
    }
    return Status::OK();
  };
  SOFYA_RETURN_IF_ERROR(check_relations(spec.kb1_relations, "kb1"));
  SOFYA_RETURN_IF_ERROR(check_relations(spec.kb2_relations, "kb2"));
  return Status::OK();
}

/// Generates the latent facts of one cspec.
ConceptFacts GenerateConceptFacts(
    const WorldSpec& spec, const ConceptSpec& cspec, Rng rng,
    const std::unordered_map<std::string, ConceptFacts>& earlier) {
  ConceptFacts facts;
  facts.literal = cspec.literal_range;
  facts.literal_kind = cspec.literal_kind;
  facts.range_type = cspec.range_type;

  const size_t domain_count =
      EntitiesOfTypeCount(cspec.domain_type, spec.num_entities,
                          spec.num_types);
  if (domain_count == 0) return facts;
  ZipfSampler subject_sampler(domain_count, cspec.subject_zipf);
  const size_t region_start = static_cast<size_t>(
      cspec.subject_region_start * static_cast<double>(domain_count));
  auto subject_rank = [&](Rng& r) {
    const size_t rank = subject_sampler.Sample(r);
    if (cspec.subject_shared_mix > 0.0 &&
        r.Bernoulli(cspec.subject_shared_mix)) {
      return rank;  // Shared (unshifted) region.
    }
    return (region_start + rank) % domain_count;
  };

  if (cspec.literal_range) {
    // One (subject, literal) fact per distinct subject.
    std::unordered_set<EntityId> used;
    const size_t target = std::min(cspec.num_facts, domain_count);
    size_t attempts = 0;
    while (used.size() < target && attempts < cspec.num_facts * 20 + 100) {
      ++attempts;
      const EntityId s = EntityOfTypeByRank(cspec.domain_type,
                                            subject_rank(rng),
                                            spec.num_types);
      if (!used.insert(s).second) continue;
      facts.el.emplace_back(s, CanonicalLiteral(s, cspec.literal_kind));
    }
    std::sort(facts.el.begin(), facts.el.end());
    return facts;
  }

  const size_t range_count = EntitiesOfTypeCount(
      cspec.range_type, spec.num_entities, spec.num_types);
  if (range_count == 0) return facts;
  ZipfSampler object_sampler(range_count, cspec.object_zipf);

  const ConceptFacts* correlate = nullptr;
  if (!cspec.correlate_with.empty()) {
    auto it = earlier.find(cspec.correlate_with);
    if (it != earlier.end()) correlate = &it->second;
  }

  std::unordered_set<std::pair<EntityId, EntityId>, PairHash> used;
  std::unordered_set<EntityId> functional_subjects;
  const size_t max_possible =
      cspec.functional ? domain_count : domain_count * range_count;
  const size_t target = std::min(cspec.num_facts, max_possible);
  size_t attempts = 0;
  while (used.size() < target && attempts < cspec.num_facts * 20 + 100) {
    ++attempts;
    const EntityId s = EntityOfTypeByRank(cspec.domain_type,
                                          subject_rank(rng), spec.num_types);
    if (cspec.functional && functional_subjects.count(s)) continue;

    EntityId o;
    bool correlated = false;
    if (correlate != nullptr && cspec.correlation_rho > 0.0 &&
        rng.Bernoulli(cspec.correlation_rho)) {
      auto it = correlate->objects_of.find(s);
      if (it != correlate->objects_of.end() && !it->second.empty()) {
        o = it->second[rng.Below(it->second.size())];
        correlated = true;
      }
    }
    if (!correlated) {
      o = EntityOfTypeByRank(cspec.range_type, object_sampler.Sample(rng),
                             spec.num_types);
    }

    if (!used.insert({s, o}).second) continue;
    facts.ee.emplace_back(s, o);
    facts.objects_of[s].push_back(o);
    if (cspec.functional) functional_subjects.insert(s);
  }
  std::sort(facts.ee.begin(), facts.ee.end());
  return facts;
}

}  // namespace

StatusOr<SynthWorld> GenerateWorld(const WorldSpec& spec) {
  SOFYA_RETURN_IF_ERROR(ValidateSpec(spec));

  SynthWorld world;
  world.spec = spec;
  world.kb1 = std::make_unique<KnowledgeBase>(spec.kb1_name, spec.kb1_base);
  world.kb2 = std::make_unique<KnowledgeBase>(spec.kb2_name, spec.kb2_base);

  Rng root(spec.seed);
  Rng facts_rng = root.Fork(1);
  Rng project_rng = root.Fork(2);
  Rng links_rng = root.Fork(3);

  // Phase 1: latent facts.
  std::unordered_map<std::string, ConceptFacts> world_facts;
  for (size_t i = 0; i < spec.concepts.size(); ++i) {
    const ConceptSpec& c = spec.concepts[i];
    ConceptFacts facts = GenerateConceptFacts(
        spec, c, facts_rng.Fork(static_cast<uint64_t>(i) + 100), world_facts);
    world.stats.world_facts += facts.ee.size() + facts.el.size();
    world_facts.emplace(c.name, std::move(facts));
  }

  // Phase 2: projection into the two KBs.
  std::unordered_set<EntityId> used_kb1, used_kb2;

  // Per-subject coverage decision: deterministic in (seed, kb, relation,
  // subject) so every fact of a subject within one relation is kept or
  // dropped together (the PCA completeness premise).
  auto keep_subject = [&](uint64_t kb_salt, size_t rel_index, EntityId s,
                          double coverage) {
    uint64_t key = spec.seed;
    key = key * 0x100000001b3ULL ^ kb_salt;
    key = key * 0x100000001b3ULL ^ static_cast<uint64_t>(rel_index + 1);
    key = key * 0x100000001b3ULL ^ (static_cast<uint64_t>(s) + 1);
    SplitMix64 mix(key);
    const double u =
        static_cast<double>(mix.Next() >> 11) * 0x1.0p-53;
    return u < coverage;
  };

  // Surface convention for entity IRIs. Under shared_entity_names both KBs
  // mint kb1's underscored form — identical identifiers, the zero-links
  // regime; otherwise each KB keeps its own convention.
  auto entity_local = [&spec](EntityId e, bool kb1_form) {
    return (kb1_form || spec.shared_entity_names) ? Kb1LocalName(e)
                                                  : Kb2LocalName(e);
  };

  auto project = [&](KnowledgeBase* kb,
                     const std::vector<KbRelationSpec>& relations,
                     const LiteralNoiseOptions& noise,
                     std::unordered_set<EntityId>* used, bool is_kb1,
                     uint64_t stream_base, size_t* fact_count) {
    for (size_t ri = 0; ri < relations.size(); ++ri) {
      const KbRelationSpec& rel = relations[ri];
      Rng rel_rng = project_rng.Fork(stream_base + ri);
      const Term predicate = Term::Iri(kb->base_iri() + "ontology/" +
                                       rel.local_name);
      auto keep = [&](EntityId s) {
        if (rel.coverage_model == CoverageModel::kPerSubject) {
          return keep_subject(stream_base, ri, s, rel.coverage);
        }
        return rel_rng.Bernoulli(rel.coverage);
      };
      for (const std::string& concept_name : rel.concepts) {
        const ConceptFacts& facts = world_facts.at(concept_name);
        const size_t range_count = EntitiesOfTypeCount(
            facts.range_type, spec.num_entities, spec.num_types);
        for (const auto& [s, o] : facts.ee) {
          if (!keep(s)) continue;
          EntityId stored_o = o;
          if (rel.fact_noise > 0.0 && range_count > 1 &&
              rel_rng.Bernoulli(rel.fact_noise)) {
            // Inter-KB disagreement: this KB believes a wrong object.
            do {
              stored_o = EntityOfTypeByRank(facts.range_type,
                                            rel_rng.Below(range_count),
                                            spec.num_types);
            } while (stored_o == o);
          }
          const std::string s_local = entity_local(s, is_kb1);
          const std::string o_local = entity_local(stored_o, is_kb1);
          kb->AddTriple(Term::Iri(kb->base_iri() + "resource/" + s_local),
                        predicate,
                        Term::Iri(kb->base_iri() + "resource/" + o_local));
          used->insert(s);
          used->insert(stored_o);
          ++*fact_count;
        }
        for (const auto& [s, lexical] : facts.el) {
          if (!keep(s)) continue;
          const std::string s_local = entity_local(s, is_kb1);
          std::string stored = lexical;
          if (rel.fact_noise > 0.0 && rel_rng.Bernoulli(rel.fact_noise)) {
            // Wrong literal value: another entity's value for this kind.
            const EntityId other = static_cast<EntityId>(
                rel_rng.Below(spec.num_entities));
            stored = CanonicalLiteral(other, facts.literal_kind);
          }
          const std::string noised = ApplyLiteralNoise(stored, noise, rel_rng);
          kb->AddTriple(Term::Iri(kb->base_iri() + "resource/" + s_local),
                        predicate, Term::Literal(noised));
          used->insert(s);
          ++*fact_count;
        }
      }
      world.truth.AddRelation(kb->name(), predicate.lexical(), rel.concepts);

      if (spec.add_inverse_relations) {
        // The inverse relation holds exactly the swapped entity-entity
        // facts; its ground-truth concepts are the "^-1" twins, so inverse
        // relations align with each other and never with direct ones.
        const Term inv_predicate = Term::Iri(kb->base_iri() + "ontology/" +
                                             rel.local_name + "Inv");
        bool has_entity_facts = false;
        std::vector<std::string> inv_concepts;
        for (const std::string& concept_name : rel.concepts) {
          const ConceptFacts& facts = world_facts.at(concept_name);
          if (facts.literal) continue;
          has_entity_facts = true;
          inv_concepts.push_back(concept_name + "^-1");
          for (const auto& [s, o] : facts.ee) {
            // Per-subject coverage keyed on the inverse's subject (= o).
            if (rel.coverage_model == CoverageModel::kPerSubject
                    ? !keep_subject(stream_base + 5000, ri, o, rel.coverage)
                    : !rel_rng.Bernoulli(rel.coverage)) {
              continue;
            }
            const std::string s_local = entity_local(s, is_kb1);
            const std::string o_local = entity_local(o, is_kb1);
            kb->AddTriple(Term::Iri(kb->base_iri() + "resource/" + o_local),
                          inv_predicate,
                          Term::Iri(kb->base_iri() + "resource/" + s_local));
            used->insert(s);
            used->insert(o);
            ++*fact_count;
          }
        }
        if (has_entity_facts) {
          world.truth.AddRelation(kb->name(), inv_predicate.lexical(),
                                  inv_concepts);
        }
      }
    }
  };

  project(world.kb1.get(), spec.kb1_relations, spec.kb1_literal_noise,
          &used_kb1, /*is_kb1=*/true, /*stream_base=*/1000,
          &world.stats.kb1_facts);
  project(world.kb2.get(), spec.kb2_relations, spec.kb2_literal_noise,
          &used_kb2, /*is_kb1=*/false, /*stream_base=*/2000,
          &world.stats.kb2_facts);

  world.stats.kb1_entities = used_kb1.size();
  world.stats.kb2_entities = used_kb2.size();

  // Phase 3: sameAs links over shared entities.
  std::vector<EntityId> shared;
  for (EntityId e : used_kb1) {
    if (used_kb2.count(e)) shared.push_back(e);
  }
  std::sort(shared.begin(), shared.end());
  world.stats.shared_entities = shared.size();

  std::vector<EntityId> kb2_pool(used_kb2.begin(), used_kb2.end());
  std::sort(kb2_pool.begin(), kb2_pool.end());

  for (EntityId e : shared) {
    if (!links_rng.Bernoulli(spec.link_coverage)) continue;
    EntityId partner = e;
    bool wrong = false;
    if (spec.link_noise > 0.0 && links_rng.Bernoulli(spec.link_noise) &&
        kb2_pool.size() > 1) {
      // Pick a wrong partner (different latent entity).
      do {
        partner = kb2_pool[links_rng.Below(kb2_pool.size())];
      } while (partner == e);
      wrong = true;
    }
    world.links.AddLink(
        Term::Iri(spec.kb1_base + "resource/" + entity_local(e, true)),
        Term::Iri(spec.kb2_base + "resource/" + entity_local(partner, false)));
    if (wrong) {
      ++world.stats.links_wrong;
    } else {
      ++world.stats.links_correct;
    }
  }

  return world;
}

std::string DescribeWorld(const SynthWorld& world) {
  const WorldStats& s = world.stats;
  return StrFormat(
      "world[seed=%llu]: %zu latent facts; %s: %zu facts / %zu entities / "
      "%zu relations; %s: %zu facts / %zu entities / %zu relations; "
      "%zu shared entities; links: %zu correct + %zu wrong",
      static_cast<unsigned long long>(world.spec.seed), s.world_facts,
      world.kb1->name().c_str(), s.kb1_facts, s.kb1_entities,
      world.spec.kb1_relations.size(), world.kb2->name().c_str(), s.kb2_facts,
      s.kb2_entities, world.spec.kb2_relations.size(), s.shared_entities,
      s.links_correct, s.links_wrong);
}

}  // namespace sofya
