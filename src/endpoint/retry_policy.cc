#include "endpoint/retry_policy.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <random>
#include <thread>

namespace sofya {

double RetryBackoffMs(const RetryOptions& options, int attempt, Rng& rng) {
  if (options.initial_backoff_ms <= 0.0 || attempt <= 0) return 0.0;
  const double multiplier = std::max(1.0, options.backoff_multiplier);
  double delay =
      options.initial_backoff_ms * std::pow(multiplier, attempt - 1);
  delay = std::min(delay, std::max(options.max_backoff_ms,
                                   options.initial_backoff_ms));
  const double jitter = std::clamp(options.jitter, 0.0, 1.0);
  if (jitter > 0.0) {
    // Uniform in [1 - jitter, 1 + jitter).
    delay *= 1.0 - jitter + 2.0 * jitter * rng.NextDouble();
  }
  return delay;
}

double RetryBackoffMs(const RetryOptions& options, int attempt, Rng& rng,
                      const Status& last_failure) {
  double delay = RetryBackoffMs(options, attempt, rng);
  if (options.honor_retry_after && last_failure.has_retry_after()) {
    const double hint = std::min(last_failure.retry_after_ms(),
                                 std::max(0.0, options.max_retry_after_ms));
    delay = std::max(delay, hint);
  }
  return delay;
}

void RetrySleep(const RetryOptions& options, double delay_ms) {
  if (delay_ms <= 0.0) return;
  if (options.sleeper) {
    options.sleeper(delay_ms);
    return;
  }
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay_ms));
}

uint64_t RetrySeed(const RetryOptions& options) {
  if (options.seed != 0) return options.seed;
  // Nondeterministic: decorrelates concurrent clients' jitter streams.
  // thread_local: std::random_device gives no thread-safety guarantee for
  // same-object access, and retry loops run on pool threads concurrently.
  thread_local std::random_device device;
  return (static_cast<uint64_t>(device()) << 32) ^ device();
}

}  // namespace sofya
