// Textual SELECT against an endpoint: parse + intern + execute.

#ifndef SOFYA_ENDPOINT_SELECT_TEXT_H_
#define SOFYA_ENDPOINT_SELECT_TEXT_H_

#include <string_view>

#include "endpoint/endpoint.h"
#include "rdf/namespaces.h"
#include "sparql/parser.h"

namespace sofya {

/// Parses `text` against `endpoint`'s term space and executes it there.
inline StatusOr<ResultSet> SelectText(Endpoint* endpoint,
                                      std::string_view text,
                                      const PrefixMap* prefixes = nullptr) {
  TermInterner intern = [endpoint](const Term& t) {
    return endpoint->EncodeTerm(t);
  };
  SOFYA_ASSIGN_OR_RETURN(SelectQuery query,
                         ParseSelectQuery(text, intern, prefixes));
  return endpoint->Select(query);
}

}  // namespace sofya

#endif  // SOFYA_ENDPOINT_SELECT_TEXT_H_
