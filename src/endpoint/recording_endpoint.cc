#include "endpoint/recording_endpoint.h"

#include <utility>

namespace sofya {
namespace {

/// Dedup key: kind-prefixed so SELECT/ASK/LOOKUP spaces never collide.
std::string DedupKey(CassetteEntryKind kind, const std::string& key) {
  return std::to_string(static_cast<int>(kind)) + "|" + key;
}

}  // namespace

CassetteEntry RecordingEndpoint::MakeSelectEntry(const SelectQuery& query,
                                                const Status& status,
                                                const ResultSet* result) const {
  CassetteEntry entry;
  entry.kind = CassetteEntryKind::kSelect;
  entry.key = CanonicalSelectKey(*inner_, query);
  entry.SetStatus(status);
  if (status.ok() && result != nullptr) {
    entry.var_names = result->var_names;
    entry.rows.reserve(result->rows.size());
    for (const auto& row : result->rows) {
      std::vector<CassetteCell> cells(row.size());
      for (size_t i = 0; i < row.size(); ++i) {
        if (row[i] == kNullTermId) continue;  // Stays unbound.
        StatusOr<Term> term = inner_->DecodeTerm(row[i]);
        if (term.ok()) {
          cells[i].bound = true;
          cells[i].term = std::move(term).value();
        }
      }
      entry.rows.push_back(std::move(cells));
    }
  }
  return entry;
}

CassetteEntry RecordingEndpoint::MakeAskEntry(const SelectQuery& query,
                                              const Status& status,
                                              bool value) const {
  CassetteEntry entry;
  entry.kind = CassetteEntryKind::kAsk;
  entry.key = CanonicalAskKey(*inner_, query);
  entry.SetStatus(status);
  entry.ask_value = status.ok() && value;
  return entry;
}

void RecordingEndpoint::Record(CassetteEntry entry) const {
  std::string dedup = DedupKey(entry.kind, entry.key);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(dedup);
  if (it == index_.end()) {
    index_.emplace(std::move(dedup), entries_.size());
    entries_.push_back(std::move(entry));
    return;
  }
  CassetteEntry& existing = entries_[it->second];
  const bool existing_ok = existing.code == StatusCode::kOk;
  const bool incoming_ok = entry.code == StatusCode::kOk;
  if (!existing_ok && incoming_ok) {
    // A retry resolved a transient failure: the settled session replays
    // the success.
    existing = std::move(entry);
    return;
  }
  if (existing_ok && incoming_ok && !(existing == entry)) {
    // The dataset answered the same query differently mid-recording.
    // First answer wins (it is what downstream decisions consumed).
    ++conflicts_;
  }
}

StatusOr<ResultSet> RecordingEndpoint::Select(const SelectQuery& query) {
  StatusOr<ResultSet> result = inner_->Select(query);
  Record(MakeSelectEntry(query, result.status(),
                         result.ok() ? &result.value() : nullptr));
  return result;
}

SelectBatchResult RecordingEndpoint::SelectMany(
    std::span<const SelectQuery> queries) {
  SelectBatchResult batch = inner_->SelectMany(queries);
  for (size_t i = 0; i < queries.size() && i < batch.size(); ++i) {
    Record(MakeSelectEntry(queries[i], batch.statuses[i],
                           batch.statuses[i].ok() ? &batch.values[i] : nullptr));
  }
  return batch;
}

StatusOr<bool> RecordingEndpoint::Ask(const SelectQuery& query) {
  StatusOr<bool> result = inner_->Ask(query);
  Record(MakeAskEntry(query, result.status(), result.ok() && result.value()));
  return result;
}

AskBatchResult RecordingEndpoint::AskMany(std::span<const SelectQuery> queries) {
  AskBatchResult batch = inner_->AskMany(queries);
  for (size_t i = 0; i < queries.size() && i < batch.size(); ++i) {
    Record(MakeAskEntry(queries[i], batch.statuses[i],
                        batch.statuses[i].ok() && batch.values[i]));
  }
  return batch;
}

TermId RecordingEndpoint::LookupTerm(const Term& term) const {
  const TermId id = inner_->LookupTerm(term);
  CassetteEntry entry;
  entry.kind = CassetteEntryKind::kLookup;
  entry.key = CanonicalLookupKey(term);
  entry.lookup_known = id != kNullTermId;
  Record(std::move(entry));
  return id;
}

Cassette RecordingEndpoint::Snapshot() const {
  Cassette cassette;
  cassette.endpoint_name = inner_->name();
  cassette.base_iri = inner_->base_iri();
  cassette.data_epoch = inner_->data_epoch();
  std::lock_guard<std::mutex> lock(mu_);
  cassette.entries = entries_;
  return cassette;
}

Status RecordingEndpoint::Save(const std::string& path) const {
  return SaveCassette(Snapshot(), path);
}

CassetteDigest RecordingEndpoint::digest() const {
  CassetteDigest digest;
  std::lock_guard<std::mutex> lock(mu_);
  for (const CassetteEntry& entry : entries_) {
    digest.Add(CassetteEntryHash(entry));
  }
  return digest;
}

}  // namespace sofya
