// Cassettes: recorded endpoint sessions as deterministic, checksummed
// fixtures.
//
// A cassette is the full observable behavior of one endpoint during one
// run: every SELECT/ASK outcome (result rows or error status, including
// retry-after pacing hints) plus every LookupTerm membership judgment,
// keyed by a *canonical* query rendering. RecordingEndpoint fills one
// while forwarding to a live endpoint; ReplayEndpoint serves one back with
// no network and no source dataset.
//
// Keys must be id-independent: SelectQuery::Fingerprint() encodes constants
// by dictionary id, and a replaying process interns terms into a fresh
// dictionary whose ids need not match the recording process. The canonical
// keys here mirror Fingerprint()'s variable renumbering but render every
// constant through DecodeTerm() to its N-Triples surface form, so the same
// logical query lands on the same cassette entry in any process.
//
// The on-disk format follows rdf/store_snapshot.cc: magic + version header,
// length-prefixed payload, streaming mix checksum verified before any entry
// is served; any corruption (truncation, bad magic, flipped byte, duplicate
// key) is a clean ParseError.

#ifndef SOFYA_ENDPOINT_CASSETTE_H_
#define SOFYA_ENDPOINT_CASSETTE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "endpoint/endpoint.h"
#include "rdf/term.h"
#include "sparql/query.h"
#include "util/status.h"

namespace sofya {

/// What kind of interaction an entry records. Kinds partition the key
/// space: a SELECT and an ASK of the same query never collide.
enum class CassetteEntryKind : uint8_t {
  kSelect = 0,  ///< Select / one SelectMany slot.
  kAsk = 1,     ///< Ask / one AskMany slot.
  kLookup = 2,  ///< LookupTerm membership judgment.
};

/// One cell of a recorded result row. `bound == false` preserves a
/// kNullTermId (unbound) cell through the decode/re-intern round trip.
struct CassetteCell {
  bool bound = false;
  Term term;

  friend bool operator==(const CassetteCell& a, const CassetteCell& b) {
    return a.bound == b.bound && (!a.bound || a.term == b.term);
  }
};

/// One recorded interaction: canonical key plus the full outcome.
struct CassetteEntry {
  CassetteEntryKind kind = CassetteEntryKind::kSelect;
  std::string key;

  // Outcome status (errors are first-class: a never-resolved Unavailable
  // with its retry-after hint replays exactly).
  StatusCode code = StatusCode::kOk;
  std::string message;
  double retry_after_ms = -1.0;  ///< Negative: no hint recorded.

  // Select payload (kind == kSelect, code == kOk).
  std::vector<std::string> var_names;
  std::vector<std::vector<CassetteCell>> rows;

  // Ask payload (kind == kAsk, code == kOk).
  bool ask_value = false;

  // Lookup payload (kind == kLookup): was the term known to the dataset?
  bool lookup_known = false;

  /// Reconstructs the recorded Status (with retry-after hint when present).
  Status ToStatus() const;

  /// Captures `status` into the code/message/retry-after fields.
  void SetStatus(const Status& status);

  friend bool operator==(const CassetteEntry& a, const CassetteEntry& b);
};

/// An in-memory cassette: endpoint identity plus the recorded entries.
struct Cassette {
  std::string endpoint_name;
  std::string base_iri;
  uint64_t data_epoch = 0;
  std::vector<CassetteEntry> entries;
};

/// Writes `cassette` to `path` (entries sorted by (kind, key), so the file
/// bytes are independent of recording order / thread schedule).
Status SaveCassette(const Cassette& cassette, const std::string& path);

/// Reads and fully validates a cassette: magic, version, payload length,
/// checksum, then structure — including rejecting duplicate (kind, key)
/// pairs. Any violation is a ParseError and no entries are returned.
StatusOr<Cassette> LoadCassette(const std::string& path);

/// Cheap sniff: does the file start with the cassette magic?
bool LooksLikeCassette(const std::string& path);

/// Stable content hash of one entry (key, status, and full payload).
uint64_t CassetteEntryHash(const CassetteEntry& entry);

/// Order-independent digest over a *set* of entries.
///
/// The alignment pipeline issues the same set of queries under any thread
/// count or schedule, but in different orders — so the manifest's
/// query-stream digest must be commutative. Count + sum + xor of per-entry
/// hashes is order-independent and cheap, and the three components together
/// make accidental collisions (drop one entry, add another) implausible.
struct CassetteDigest {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t xored = 0;

  void Add(uint64_t entry_hash) {
    ++count;
    sum += entry_hash;
    xored ^= entry_hash;
  }

  void Merge(const CassetteDigest& other) {
    count += other.count;
    sum += other.sum;
    xored ^= other.xored;
  }

  /// Folds the three components into one 64-bit value.
  uint64_t Value() const;

  /// 16-hex-digit rendering of Value() (manifest line format).
  std::string ToHex() const;

  friend bool operator==(const CassetteDigest& a, const CassetteDigest& b) {
    return a.count == b.count && a.sum == b.sum && a.xored == b.xored;
  }
};

/// Implemented by RecordingEndpoint and ReplayEndpoint: the digest of the
/// unique interactions recorded / served so far. Sofya::AlignAll folds
/// attached journals into the run manifest, which is what makes a live
/// (recording) run and a replay run comparable by hash.
class CassetteJournal {
 public:
  virtual ~CassetteJournal() = default;
  virtual CassetteDigest digest() const = 0;
};

/// Canonical id-independent key for a SELECT query in `endpoint`'s id
/// space: Fingerprint()'s canonical variable renumbering with constants
/// rendered via DecodeTerm(...).ToNTriples(). An undecodable constant
/// renders as `#!<id>` (deterministic within a process; such queries never
/// reach a live endpoint either).
std::string CanonicalSelectKey(const Endpoint& endpoint,
                               const SelectQuery& query);

/// ASK form: solution modifiers normalized away (existence ignores
/// DISTINCT/LIMIT/OFFSET, same normalization as AskFingerprint) plus an
/// "#ask" suffix so ASK and SELECT entries cannot collide.
std::string CanonicalAskKey(const Endpoint& endpoint,
                            const SelectQuery& query);

/// Key for a LookupTerm judgment: the term's N-Triples form (already
/// canonical — it is the dictionary key).
std::string CanonicalLookupKey(const Term& term);

/// Rebuilds `query` with every constant re-encoded from `from`'s id space
/// into `to`'s (lenient replay fall-through: the caller's query ids live in
/// the replay dictionary, the inner endpoint needs its own). Fails if a
/// constant cannot be decoded.
StatusOr<SelectQuery> TranslateQuery(const SelectQuery& query,
                                     const Endpoint& from, Endpoint& to);

}  // namespace sofya

#endif  // SOFYA_ENDPOINT_CASSETTE_H_
