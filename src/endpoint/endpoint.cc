#include "endpoint/endpoint.h"

namespace sofya {

StatusOr<std::vector<ResultSet>> Endpoint::SelectMany(
    std::span<const SelectQuery> queries) {
  std::vector<ResultSet> results;
  results.reserve(queries.size());
  for (const SelectQuery& query : queries) {
    SOFYA_ASSIGN_OR_RETURN(ResultSet result, Select(query));
    results.push_back(std::move(result));
  }
  return results;
}

StatusOr<bool> Endpoint::Ask(const SelectQuery& query) {
  // Fallback for endpoints without a native ASK: a LIMIT-1 SELECT. With the
  // streaming engine behind LocalEndpoint this still terminates at the first
  // solution, but it ships one row; LocalEndpoint overrides Ask to ship none.
  SelectQuery probe = query;
  probe.Limit(1).Offset(0);
  SOFYA_ASSIGN_OR_RETURN(ResultSet result, Select(probe));
  return !result.rows.empty();
}

StatusOr<std::vector<bool>> Endpoint::AskMany(
    std::span<const SelectQuery> queries) {
  std::vector<bool> results;
  results.reserve(queries.size());
  for (const SelectQuery& query : queries) {
    SOFYA_ASSIGN_OR_RETURN(bool result, Ask(query));
    results.push_back(result);
  }
  return results;
}

std::string AskFingerprint(const SelectQuery& query) {
  SelectQuery normalized = query;
  normalized.Distinct(false).Limit(kNoLimit).Offset(0);
  return normalized.Fingerprint() + "#ask";
}

}  // namespace sofya
