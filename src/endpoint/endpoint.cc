#include "endpoint/endpoint.h"

namespace sofya {

SelectBatchResult Endpoint::SelectMany(std::span<const SelectQuery> queries) {
  SelectBatchResult batch = SelectBatchResult::Sized(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    // Every sub-query is attempted: the per-sub-query contract means one
    // failure must not swallow its neighbors' answers.
    batch.Set(i, Select(queries[i]));
  }
  return batch;
}

StatusOr<bool> Endpoint::Ask(const SelectQuery& query) {
  // Fallback for endpoints without a native ASK: a LIMIT-1 SELECT. With the
  // streaming engine behind LocalEndpoint this still terminates at the first
  // solution, but it ships one row; LocalEndpoint overrides Ask to ship none.
  SelectQuery probe = query;
  probe.Limit(1).Offset(0);
  SOFYA_ASSIGN_OR_RETURN(ResultSet result, Select(probe));
  return !result.rows.empty();
}

AskBatchResult Endpoint::AskMany(std::span<const SelectQuery> queries) {
  AskBatchResult batch = AskBatchResult::Sized(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    batch.Set(i, Ask(queries[i]));
  }
  return batch;
}

std::string AskFingerprint(const SelectQuery& query) {
  SelectQuery normalized = query;
  normalized.Distinct(false).Limit(kNoLimit).Offset(0);
  return normalized.Fingerprint() + "#ask";
}

}  // namespace sofya
