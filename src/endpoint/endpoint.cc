#include "endpoint/endpoint.h"

namespace sofya {

StatusOr<bool> Endpoint::Ask(const SelectQuery& query) {
  SelectQuery probe = query;
  probe.Limit(1).Offset(0);
  SOFYA_ASSIGN_OR_RETURN(ResultSet result, Select(probe));
  return !result.rows.empty();
}

}  // namespace sofya
