// RecordingEndpoint: a transparent decorator that captures every
// interaction with the inner endpoint into a Cassette.
//
// Sits at the *base* of the decorator stack (directly around LocalEndpoint
// or HttpSparqlEndpoint, beneath throttle/retry/cache), so it records what
// the dataset actually answered: cache hits never reach it, and each retry
// attempt passes through it individually.
//
// Conflict policy (one entry per canonical key):
//   - first outcome wins by default;
//   - an error followed by a success *upgrades* to the success (a transient
//     Unavailable that a retry resolved should replay as resolved — the
//     cassette is the settled session, and the replay side's own retry
//     layer would otherwise spin on an error that can never clear);
//   - a success followed by a *different* success keeps the first and bumps
//     conflicts() — the dataset changed mid-recording, which the user
//     should know about;
//   - a success followed by an error keeps the success.
//
// Thread safety: safe for concurrent callers (AlignMany worker threads);
// all recording state is behind one mutex.

#ifndef SOFYA_ENDPOINT_RECORDING_ENDPOINT_H_
#define SOFYA_ENDPOINT_RECORDING_ENDPOINT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "endpoint/cassette.h"
#include "endpoint/endpoint.h"

namespace sofya {

class RecordingEndpoint : public Endpoint, public CassetteJournal {
 public:
  /// `inner` is not owned and must outlive this object.
  explicit RecordingEndpoint(Endpoint* inner) : inner_(inner) {}

  const std::string& name() const override { return inner_->name(); }
  const std::string& base_iri() const override { return inner_->base_iri(); }

  StatusOr<ResultSet> Select(const SelectQuery& query) override;

  /// Forwards the whole batch (so the inner endpoint keeps its batching
  /// behavior — intra-batch dedup, pipelining) and records every slot's
  /// individual outcome: per-slot statuses round-trip through the cassette.
  SelectBatchResult SelectMany(std::span<const SelectQuery> queries) override;

  StatusOr<bool> Ask(const SelectQuery& query) override;
  AskBatchResult AskMany(std::span<const SelectQuery> queries) override;

  TermId EncodeTerm(const Term& term) override {
    return inner_->EncodeTerm(term);
  }

  /// Forwards and records the membership judgment: replay must reproduce
  /// "unknown term => the pipeline skips the query" without the dataset.
  TermId LookupTerm(const Term& term) const override;

  StatusOr<Term> DecodeTerm(TermId id) const override {
    return inner_->DecodeTerm(id);
  }
  uint64_t data_epoch() const override { return inner_->data_epoch(); }
  EndpointStats stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

  /// The session recorded so far (entries in first-recorded order; Save
  /// sorts them).
  Cassette Snapshot() const;

  /// Writes the session to `path` (SaveCassette of Snapshot()).
  Status Save(const std::string& path) const;

  /// Order-independent digest over the recorded entries (CassetteJournal).
  CassetteDigest digest() const override;

  /// Successful outcomes that disagreed with an earlier recorded success
  /// for the same key (dataset changed mid-recording). First one kept.
  uint64_t conflicts() const {
    std::lock_guard<std::mutex> lock(mu_);
    return conflicts_;
  }

  /// Number of distinct recorded entries.
  size_t num_entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  /// Applies the conflict policy for one observed outcome.
  void Record(CassetteEntry entry) const;

  CassetteEntry MakeSelectEntry(const SelectQuery& query,
                                const Status& status,
                                const ResultSet* result) const;
  CassetteEntry MakeAskEntry(const SelectQuery& query, const Status& status,
                             bool value) const;

  Endpoint* inner_;  // Not owned.

  mutable std::mutex mu_;
  mutable std::vector<CassetteEntry> entries_;            // Guarded by mu_.
  mutable std::unordered_map<std::string, size_t> index_;  // kind|key -> idx.
  mutable uint64_t conflicts_ = 0;
};

}  // namespace sofya

#endif  // SOFYA_ENDPOINT_RECORDING_ENDPOINT_H_
