// RetryingEndpoint: client-side retry of transient (Unavailable) failures.
//
// Public endpoints drop connections; a client that aborts a whole alignment
// on one 503 wastes its query budget. This decorator retries Unavailable up
// to a bounded number of times and passes every other status through
// unchanged. Non-transient errors (ResourceExhausted, InvalidArgument, ...)
// are never retried.

// Thread safety: safe for concurrent callers (the retry loop is per-call
// state; the retry counter is atomic), provided the inner endpoint is.

#ifndef SOFYA_ENDPOINT_RETRYING_ENDPOINT_H_
#define SOFYA_ENDPOINT_RETRYING_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "endpoint/endpoint.h"

namespace sofya {

/// Retry policy.
struct RetryOptions {
  int max_retries = 3;  ///< Additional attempts after the first failure.
};

/// Decorator; wraps any Endpoint (typically a ThrottledEndpoint).
class RetryingEndpoint : public Endpoint {
 public:
  /// `inner` is not owned and must outlive this object.
  RetryingEndpoint(Endpoint* inner, RetryOptions options = {})
      : inner_(inner), options_(options) {}

  const std::string& name() const override { return inner_->name(); }
  const std::string& base_iri() const override { return inner_->base_iri(); }

  StatusOr<ResultSet> Select(const SelectQuery& query) override {
    return Retry([&] { return inner_->Select(query); });
  }

  // SelectMany/AskMany are inherited: the sequential defaults forward
  // through this Select/Ask, so each sub-query gets its own retry budget
  // (one transient failure must not fail the whole batch).

  /// Forwards ASK (preserving the inner early-exit path) with retries.
  StatusOr<bool> Ask(const SelectQuery& query) override {
    return Retry([&] { return inner_->Ask(query); });
  }

  TermId EncodeTerm(const Term& term) override {
    return inner_->EncodeTerm(term);
  }
  TermId LookupTerm(const Term& term) const override {
    return inner_->LookupTerm(term);
  }
  StatusOr<Term> DecodeTerm(TermId id) const override {
    return inner_->DecodeTerm(id);
  }

  EndpointStats stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

  /// Transient failures absorbed so far.
  uint64_t retries_performed() const {
    return retries_performed_.load(std::memory_order_relaxed);
  }

 private:
  /// Runs `attempt` and re-runs it while it reports Unavailable, up to
  /// max_retries. Shared by Select and Ask so they cannot drift.
  template <typename Fn>
  auto Retry(Fn&& attempt) -> decltype(attempt()) {
    auto result = attempt();
    int attempts = 0;
    while (!result.ok() && result.status().IsUnavailable() &&
           attempts < options_.max_retries) {
      ++attempts;
      retries_performed_.fetch_add(1, std::memory_order_relaxed);
      result = attempt();
    }
    return result;
  }

  Endpoint* inner_;  // Not owned.
  RetryOptions options_;
  std::atomic<uint64_t> retries_performed_{0};
};

}  // namespace sofya

#endif  // SOFYA_ENDPOINT_RETRYING_ENDPOINT_H_
