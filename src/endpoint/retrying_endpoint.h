// RetryingEndpoint: client-side retry of transient (Unavailable) failures.
//
// Public endpoints drop connections; a client that aborts a whole alignment
// on one 503 wastes its query budget. This decorator retries Unavailable up
// to a bounded number of times — waiting an exponentially growing, jittered
// backoff before every re-issue (retry_policy.h) — and passes every other
// status through unchanged. Non-transient errors (ResourceExhausted,
// InvalidArgument, ...) are never retried.

// Thread safety: safe for concurrent callers (the retry loop is per-call
// state; the retry counter is atomic), provided the inner endpoint is.

#ifndef SOFYA_ENDPOINT_RETRYING_ENDPOINT_H_
#define SOFYA_ENDPOINT_RETRYING_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "endpoint/endpoint.h"
#include "endpoint/retry_policy.h"

namespace sofya {

/// Decorator; wraps any Endpoint (typically a ThrottledEndpoint).
class RetryingEndpoint : public Endpoint {
 public:
  /// `inner` is not owned and must outlive this object.
  RetryingEndpoint(Endpoint* inner, RetryOptions options = {})
      : inner_(inner), options_(std::move(options)) {}

  const std::string& name() const override { return inner_->name(); }
  const std::string& base_iri() const override { return inner_->base_iri(); }

  StatusOr<ResultSet> Select(const SelectQuery& query) override {
    return Retry([&] { return inner_->Select(query); });
  }

  /// Forwards the whole batch to the inner endpoint so a batching/caching
  /// layer beneath keeps its intra-batch dedup. The per-sub-query contract
  /// makes recovery surgical: sub-queries that came back Unavailable are
  /// re-issued individually with backoff, while every answer that already
  /// succeeded is kept as-is — a recovered result is NEVER bought twice
  /// (against a live endpoint each re-buy is a real round trip). The
  /// recovery pass trickles one query at a time, deliberately: those
  /// sub-queries just failed because the server is struggling, and
  /// one-at-a-time is the gentle regime. Non-transient failures pass
  /// through untouched in their slots.
  SelectBatchResult SelectMany(std::span<const SelectQuery> queries) override {
    SelectBatchResult batch = inner_->SelectMany(queries);
    // Systemic-failure short-circuit: the first slot whose OWN full backoff
    // schedule still ends Unavailable means the endpoint is down, not
    // flaky — stop burning retry schedules (and hammering the server) on
    // the remaining slots; they already carry their Unavailable statuses.
    bool endpoint_down = false;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!batch.statuses[i].IsUnavailable() || endpoint_down) continue;
      auto recovered = Retry([&] { return inner_->Select(queries[i]); });
      endpoint_down = !recovered.ok() && recovered.status().IsUnavailable();
      batch.Set(i, std::move(recovered));
    }
    return batch;
  }

  /// Forwards ASK (preserving the inner early-exit path) with retries.
  StatusOr<bool> Ask(const SelectQuery& query) override {
    return Retry([&] { return inner_->Ask(query); });
  }

  /// Batched ASK with the same surgical recovery (and short-circuit) as
  /// SelectMany.
  AskBatchResult AskMany(std::span<const SelectQuery> queries) override {
    AskBatchResult batch = inner_->AskMany(queries);
    bool endpoint_down = false;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!batch.statuses[i].IsUnavailable() || endpoint_down) continue;
      auto recovered = Retry([&] { return inner_->Ask(queries[i]); });
      endpoint_down = !recovered.ok() && recovered.status().IsUnavailable();
      batch.Set(i, std::move(recovered));
    }
    return batch;
  }

  TermId EncodeTerm(const Term& term) override {
    return inner_->EncodeTerm(term);
  }
  TermId LookupTerm(const Term& term) const override {
    return inner_->LookupTerm(term);
  }
  StatusOr<Term> DecodeTerm(TermId id) const override {
    return inner_->DecodeTerm(id);
  }

  uint64_t data_epoch() const override { return inner_->data_epoch(); }

  EndpointStats stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

  /// Transient failures absorbed so far.
  uint64_t retries_performed() const {
    return retries_performed_.load(std::memory_order_relaxed);
  }

 private:
  /// Shared policy driver (retry_policy.h), counting each re-issue.
  template <typename Fn>
  auto Retry(Fn&& attempt) -> decltype(attempt()) {
    return RetryTransient(attempt, options_, [this] {
      retries_performed_.fetch_add(1, std::memory_order_relaxed);
    });
  }

  Endpoint* inner_;  // Not owned.
  RetryOptions options_;
  std::atomic<uint64_t> retries_performed_{0};
};

}  // namespace sofya

#endif  // SOFYA_ENDPOINT_RETRYING_ENDPOINT_H_
