// RetryingEndpoint: client-side retry of transient (Unavailable) failures.
//
// Public endpoints drop connections; a client that aborts a whole alignment
// on one 503 wastes its query budget. This decorator retries Unavailable up
// to a bounded number of times — waiting an exponentially growing, jittered
// backoff before every re-issue (retry_policy.h) — and passes every other
// status through unchanged. Non-transient errors (ResourceExhausted,
// InvalidArgument, ...) are never retried.

// Thread safety: safe for concurrent callers (the retry loop is per-call
// state; the retry counter is atomic), provided the inner endpoint is.

#ifndef SOFYA_ENDPOINT_RETRYING_ENDPOINT_H_
#define SOFYA_ENDPOINT_RETRYING_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "endpoint/endpoint.h"
#include "endpoint/retry_policy.h"

namespace sofya {

/// Decorator; wraps any Endpoint (typically a ThrottledEndpoint).
class RetryingEndpoint : public Endpoint {
 public:
  /// `inner` is not owned and must outlive this object.
  RetryingEndpoint(Endpoint* inner, RetryOptions options = {})
      : inner_(inner), options_(std::move(options)) {}

  const std::string& name() const override { return inner_->name(); }
  const std::string& base_iri() const override { return inner_->base_iri(); }

  StatusOr<ResultSet> Select(const SelectQuery& query) override {
    return Retry([&] { return inner_->Select(query); });
  }

  /// Forwards the whole batch to the inner endpoint so a batching/caching
  /// layer beneath keeps its intra-batch dedup. A batch fails fast with one
  /// status, so when it comes back Unavailable the recovery switches to
  /// per-sub-query granularity: only the still-failing sub-queries consume
  /// retry budget (with backoff). The recovery pass re-issues the batch's
  /// queries *sequentially* — deliberately: the batch just failed because
  /// the server is struggling, and a one-at-a-time trickle is the gentle
  /// regime, even though it re-executes sub-queries whose first results
  /// the fail-fast contract had to discard. (Per-sub-query statuses in the
  /// SelectMany contract would avoid the re-execution; tracked in ROADMAP.)
  StatusOr<std::vector<ResultSet>> SelectMany(
      std::span<const SelectQuery> queries) override {
    auto batch = inner_->SelectMany(queries);
    if (batch.ok() || !batch.status().IsUnavailable()) return batch;
    std::vector<ResultSet> results;
    results.reserve(queries.size());
    for (const SelectQuery& query : queries) {
      auto result = Retry([&] { return inner_->Select(query); });
      if (!result.ok()) return result.status();
      results.push_back(std::move(*result));
    }
    return results;
  }

  /// Forwards ASK (preserving the inner early-exit path) with retries.
  StatusOr<bool> Ask(const SelectQuery& query) override {
    return Retry([&] { return inner_->Ask(query); });
  }

  /// Batched ASK with the same recovery shape as SelectMany.
  StatusOr<std::vector<bool>> AskMany(
      std::span<const SelectQuery> queries) override {
    auto batch = inner_->AskMany(queries);
    if (batch.ok() || !batch.status().IsUnavailable()) return batch;
    std::vector<bool> results;
    results.reserve(queries.size());
    for (const SelectQuery& query : queries) {
      auto result = Retry([&] { return inner_->Ask(query); });
      if (!result.ok()) return result.status();
      results.push_back(*result);
    }
    return results;
  }

  TermId EncodeTerm(const Term& term) override {
    return inner_->EncodeTerm(term);
  }
  TermId LookupTerm(const Term& term) const override {
    return inner_->LookupTerm(term);
  }
  StatusOr<Term> DecodeTerm(TermId id) const override {
    return inner_->DecodeTerm(id);
  }

  EndpointStats stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

  /// Transient failures absorbed so far.
  uint64_t retries_performed() const {
    return retries_performed_.load(std::memory_order_relaxed);
  }

 private:
  /// Shared policy driver (retry_policy.h), counting each re-issue.
  template <typename Fn>
  auto Retry(Fn&& attempt) -> decltype(attempt()) {
    return RetryTransient(attempt, options_, [this] {
      retries_performed_.fetch_add(1, std::memory_order_relaxed);
    });
  }

  Endpoint* inner_;  // Not owned.
  RetryOptions options_;
  std::atomic<uint64_t> retries_performed_{0};
};

}  // namespace sofya

#endif  // SOFYA_ENDPOINT_RETRYING_ENDPOINT_H_
