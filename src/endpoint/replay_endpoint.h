// ReplayEndpoint: serves a recorded Cassette back as a live Endpoint —
// zero network, zero source dataset.
//
// Like HttpSparqlEndpoint it owns a private dictionary and re-interns the
// recorded terms on the way out: replay is a *different process* from the
// recording, so ids cannot be shared — only surface forms are, which is
// exactly what a cassette stores and what the canonical keys are built
// from. A query built against this endpoint's id space renders to the same
// canonical key the recorder computed, and lands on its entry.
//
// Strict mode (default, no fallback endpoint): an unrecorded query is a
// NotFound error and bumps strict_misses() — CI replays fail loudly instead
// of silently hitting the network. Lenient mode (fallback endpoint given):
// unrecorded queries fall through to the fallback (constants re-encoded
// into its id space), the outcome is appended to the cassette, and Save()
// persists the extended session.
//
// Thread safety: safe for concurrent callers; served-set/append state is
// behind one mutex, the dictionary takes concurrent calls.

#ifndef SOFYA_ENDPOINT_REPLAY_ENDPOINT_H_
#define SOFYA_ENDPOINT_REPLAY_ENDPOINT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "endpoint/cassette.h"
#include "endpoint/endpoint.h"
#include "rdf/dictionary.h"

namespace sofya {

class ReplayEndpoint : public Endpoint, public CassetteJournal {
 public:
  /// Serves `cassette`. `fallback` may be null (strict mode); when given it
  /// is not owned and must outlive this object (lenient mode).
  explicit ReplayEndpoint(Cassette cassette, Endpoint* fallback = nullptr);

  /// Loads and serves the cassette at `path` (validation errors propagate).
  static StatusOr<std::unique_ptr<ReplayEndpoint>> Open(
      const std::string& path, Endpoint* fallback = nullptr);

  const std::string& name() const override { return name_; }
  const std::string& base_iri() const override { return base_iri_; }

  StatusOr<ResultSet> Select(const SelectQuery& query) override;
  SelectBatchResult SelectMany(std::span<const SelectQuery> queries) override;
  StatusOr<bool> Ask(const SelectQuery& query) override;
  AskBatchResult AskMany(std::span<const SelectQuery> queries) override;

  TermId EncodeTerm(const Term& term) override { return dict_.Intern(term); }

  /// Replays the recorded membership judgment. Unrecorded terms: strict
  /// mode treats them as unknown (kNullTermId, counted in strict_misses());
  /// lenient mode asks the fallback and appends the judgment.
  TermId LookupTerm(const Term& term) const override;

  StatusOr<Term> DecodeTerm(TermId id) const override {
    return dict_.TryDecode(id);
  }

  /// The epoch frozen at recording time: a cassette is immutable, so caches
  /// above never invalidate mid-replay.
  uint64_t data_epoch() const override { return data_epoch_; }

  EndpointStats stats() const override;
  void ResetStats() override;

  /// Order-independent digest over the entries served (plus, in lenient
  /// mode, appended) so far — matches the recorder's digest when the replay
  /// issued exactly the recorded session (CassetteJournal).
  CassetteDigest digest() const override;

  /// Queries that had no cassette entry while no fallback was available.
  uint64_t strict_misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return strict_misses_;
  }

  /// Entries appended by lenient fall-through.
  uint64_t appended() const {
    std::lock_guard<std::mutex> lock(mu_);
    return appended_;
  }

  /// The cassette as currently held (including lenient appends).
  Cassette Snapshot() const;

  /// Persists Snapshot() — useful after a lenient session extended it.
  Status Save(const std::string& path) const;

 private:
  /// Serves one SELECT slot: cassette hit, or fall-through/append, or
  /// strict NotFound.
  StatusOr<ResultSet> ServeSelect(const SelectQuery& query);
  StatusOr<bool> ServeAsk(const SelectQuery& query);

  /// Finds an entry by (kind, key); marks it served. Returns nullptr when
  /// unrecorded. Caller holds no lock.
  const CassetteEntry* FindAndMarkServed(CassetteEntryKind kind,
                                         const std::string& key) const;

  /// Appends a fall-through outcome (lenient mode) and marks it served.
  void Append(CassetteEntry entry) const;

  /// Re-interns a recorded result into this endpoint's id space.
  ResultSet MaterializeResult(const CassetteEntry& entry) const;

  std::string name_;
  std::string base_iri_;
  uint64_t data_epoch_ = 0;
  Endpoint* fallback_;  // Not owned; null => strict.

  mutable Dictionary dict_;  // Private id space, like HttpSparqlEndpoint.

  mutable std::mutex mu_;
  mutable std::vector<CassetteEntry> entries_;             // Guarded by mu_.
  mutable std::unordered_map<std::string, size_t> index_;  // kind|key -> idx.
  mutable std::unordered_set<size_t> served_;              // Entry indices.
  mutable uint64_t strict_misses_ = 0;
  mutable uint64_t appended_ = 0;
  mutable EndpointStats stats_;  // Guarded by mu_.
};

}  // namespace sofya

#endif  // SOFYA_ENDPOINT_REPLAY_ENDPOINT_H_
