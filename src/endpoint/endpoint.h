// Endpoint: the ONLY way SOFYA's alignment pipeline touches a knowledge
// base. This models the paper's access regime — "our method requires only a
// SPARQL endpoint for each dataset" — and is where the "no download, few
// queries" claim is enforced and measured.
//
// Results are dictionary-encoded. Conceptually a remote endpoint returns
// term *strings* and the client re-interns them; sharing the KB's dictionary
// ids is an optimization that leaks nothing beyond the surface forms, and
// DecodeTerm() is the explicit string boundary.

#ifndef SOFYA_ENDPOINT_ENDPOINT_H_
#define SOFYA_ENDPOINT_ENDPOINT_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "sparql/query.h"
#include "util/status.h"

namespace sofya {

/// Cumulative access accounting for one endpoint.
///
/// The query-cost experiment (E4) reports these counters; they are also how
/// tests assert that samplers stay within the paper's "few queries" regime.
struct EndpointStats {
  uint64_t queries = 0;               ///< SELECT/ASK requests served.
  uint64_t rows_returned = 0;         ///< Total result rows shipped.
  uint64_t bytes_estimated = 0;       ///< Approx. serialized payload bytes.
  uint64_t index_probes = 0;          ///< Store lookups behind the queries.
  uint64_t triples_scanned = 0;       ///< Index entries touched server-side.
  uint64_t cache_hits = 0;            ///< Requests answered from a cache.
  uint64_t cache_misses = 0;          ///< Requests that had to go through.
  uint64_t failures_injected = 0;     ///< Simulated faults raised.
  uint64_t replans = 0;               ///< Adaptive mid-execution re-plans.
  double simulated_latency_ms = 0.0;  ///< Modeled network+server time.

  /// Adds another stats block (for fleet-level reporting).
  void Merge(const EndpointStats& other) {
    queries += other.queries;
    rows_returned += other.rows_returned;
    bytes_estimated += other.bytes_estimated;
    index_probes += other.index_probes;
    triples_scanned += other.triples_scanned;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    failures_injected += other.failures_injected;
    replans += other.replans;
    simulated_latency_ms += other.simulated_latency_ms;
  }
};

/// Per-sub-query outcomes of one batch call: statuses[i] and values[i]
/// answer queries[i]. values[i] is meaningful only when statuses[i].ok().
///
/// This replaces the fail-fast StatusOr<vector<T>> contract: a batch whose
/// sub-query #7 hit a dead connection still delivers the other results, so
/// a recovery layer (RetryingEndpoint) re-issues *only* #7 instead of
/// re-buying every recovered answer — and against a live endpoint every
/// discarded answer was a real remote round trip.
template <typename T>
struct BatchResult {
  std::vector<Status> statuses;
  std::vector<T> values;

  BatchResult() = default;

  /// A batch of `n` OK slots with default-constructed values (the usual
  /// starting point for an implementation that fills slots in place).
  static BatchResult Sized(size_t n) {
    BatchResult batch;
    batch.statuses.resize(n);
    batch.values.resize(n);
    return batch;
  }

  /// A batch where every sub-query failed the same way (a whole-call
  /// failure, e.g. InvalidArgument on the batch envelope).
  static BatchResult FromError(size_t n, const Status& error) {
    BatchResult batch = Sized(n);
    for (Status& status : batch.statuses) status = error;
    return batch;
  }

  size_t size() const { return statuses.size(); }
  bool empty() const { return statuses.empty(); }

  /// True iff every sub-query succeeded.
  bool all_ok() const {
    for (const Status& status : statuses) {
      if (!status.ok()) return false;
    }
    return true;
  }

  size_t num_failed() const {
    size_t failed = 0;
    for (const Status& status : statuses) {
      if (!status.ok()) ++failed;
    }
    return failed;
  }

  /// The first non-OK status by sub-query index (deterministic regardless
  /// of execution order); OK when all_ok().
  Status FirstError() const {
    for (const Status& status : statuses) {
      if (!status.ok()) return status;
    }
    return Status::OK();
  }

  /// Stores one sub-query's outcome.
  void Set(size_t i, StatusOr<T> outcome) {
    if (outcome.ok()) {
      statuses[i] = Status::OK();
      values[i] = std::move(outcome).value();
    } else {
      statuses[i] = outcome.status();
    }
  }

  /// Copies slot `from` into slot `to` (intra-batch dedup: duplicates share
  /// the first occurrence's outcome, error or not).
  void CopySlot(size_t from, size_t to) {
    statuses[to] = statuses[from];
    values[to] = values[from];
  }

  /// Fail-fast adapter for consumers that need every answer to proceed
  /// (the alignment pipeline: partial evidence would change verdicts):
  /// the values when all_ok(), otherwise the first error by index.
  StatusOr<std::vector<T>> IntoValues() && {
    Status error = FirstError();
    if (!error.ok()) return error;
    return std::move(values);
  }
};

using SelectBatchResult = BatchResult<ResultSet>;
using AskBatchResult = BatchResult<bool>;

/// Abstract SPARQL access point for one dataset.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Dataset name (for reports/logs).
  virtual const std::string& name() const = 0;

  /// The dataset's base IRI (namespace of its locally minted entities);
  /// used to direct sameAs translation toward this dataset.
  virtual const std::string& base_iri() const = 0;

  /// Executes a SELECT query.
  virtual StatusOr<ResultSet> Select(const SelectQuery& query) = 0;

  /// Executes a batch of SELECT queries in one round trip, reporting one
  /// status + result per sub-query (BatchResult). Every sub-query is
  /// attempted: one failure does not discard the others' answers. The
  /// default implementation runs the queries sequentially through Select();
  /// endpoint implementations override it to exploit batching
  /// (LocalEndpoint answers duplicate queries within a batch from one
  /// evaluation, CachingEndpoint forwards only its cache misses,
  /// HttpSparqlEndpoint pipelines over its connection pool — a dead
  /// connection fails only the sub-queries that were in flight on it).
  virtual SelectBatchResult SelectMany(std::span<const SelectQuery> queries);

  /// Executes the query as ASK: true iff at least one solution exists.
  /// The default implementation runs Select with LIMIT 1; endpoints that
  /// can do better override it (LocalEndpoint stops the evaluation pipeline
  /// at the first solution and ships no rows; decorators forward the call so
  /// the early-exit hint survives the whole stack).
  virtual StatusOr<bool> Ask(const SelectQuery& query);

  /// Executes a batch of ASK probes in one round trip, with the same
  /// per-sub-query outcome contract as SelectMany. The default
  /// implementation loops Ask(); LocalEndpoint answers duplicate probes
  /// within a batch (existence ignores solution modifiers, so Ask(q) and
  /// Ask(q.Limit(5)) dedup to one evaluation), and CachingEndpoint forwards
  /// only its cache misses.
  virtual AskBatchResult AskMany(std::span<const SelectQuery> queries);

  /// Encodes a term into the endpoint's id space (interning it if new).
  /// This is how client-side constants (e.g. translated entities) enter
  /// queries.
  virtual TermId EncodeTerm(const Term& term) = 0;

  /// Looks up a term without interning; kNullTermId when unknown.
  virtual TermId LookupTerm(const Term& term) const = 0;

  /// Decodes an id returned in a ResultSet back to a term.
  virtual StatusOr<Term> DecodeTerm(TermId id) const = 0;

  /// Monotonic version of the dataset behind this endpoint: bumped on every
  /// write (time-sensitive-data scenarios), so client-side caches can drop
  /// stale entries automatically. Decorators forward to the inner endpoint;
  /// sources that cannot observe writes (remote endpoints) report 0, which
  /// means "assume immutable" — exactly the old contract.
  virtual uint64_t data_epoch() const { return 0; }

  /// Access accounting since construction / last ResetStats(), returned as
  /// a point-in-time snapshot. A snapshot is internally consistent per
  /// endpoint layer but deliberately a *copy*: with concurrent callers the
  /// counters keep moving, and handing out references to live counters is
  /// what made the pre-parallel interface unfixable. For decorators,
  /// ResetStats() resets the whole stack beneath it.
  virtual EndpointStats stats() const = 0;
  virtual void ResetStats() = 0;
};

/// Cache/dedup key for ASK probes: the query fingerprint with solution
/// modifiers normalized away (existence does not depend on
/// DISTINCT/OFFSET/LIMIT) and an "#ask" suffix so an ASK entry can never
/// collide with the SELECT form of the same query. Shared by
/// CachingEndpoint and LocalEndpoint::AskMany so their dedup agrees.
std::string AskFingerprint(const SelectQuery& query);

}  // namespace sofya

#endif  // SOFYA_ENDPOINT_ENDPOINT_H_
