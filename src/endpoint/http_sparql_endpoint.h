// HttpSparqlEndpoint: an Endpoint speaking the real SPARQL 1.1 protocol
// over HTTP — the piece that lets every alignment path run against live
// DBpedia/Wikidata instead of an in-process KnowledgeBase.
//
// Queries are serialized with SelectQuery::ToSparql / ToSparqlAsk, POSTed
// as application/sparql-query, and answered as
// application/sparql-results+json; bindings are re-interned into this
// endpoint's own Dictionary (the wire is the string boundary the Endpoint
// contract describes). HTTP/transport failures map onto the canonical
// Status space — 503/429/timeouts become Unavailable — so the existing
// RetryingEndpoint / PagedSelect machinery composes unchanged: stack this
// under caching/throttling/retry exactly like a LocalEndpoint.
//
// SelectMany/AskMany pipeline the batch over a bounded set of keep-alive
// connections (options.max_connections): a batch of k queries costs
// ceil(k / max_connections) round-trip latencies, not k.
//
// Thread safety: fully safe for concurrent callers (dictionary is
// synchronized, the connection pool is locked, stats sit behind a mutex).

#ifndef SOFYA_ENDPOINT_HTTP_SPARQL_ENDPOINT_H_
#define SOFYA_ENDPOINT_HTTP_SPARQL_ENDPOINT_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "endpoint/endpoint.h"
#include "net/http_client.h"
#include "net/http_transport.h"
#include "rdf/dictionary.h"
#include "util/thread_pool.h"

namespace sofya {

/// Remote-endpoint knobs.
struct HttpSparqlEndpointOptions {
  /// Dataset name for reports/logs.
  std::string name = "remote";

  /// The dataset's entity namespace (directs sameAs translation); e.g.
  /// "http://dbpedia.org/" for DBpedia.
  std::string base_iri;

  /// Connection-pool bound; also the SelectMany/AskMany fan-out width.
  size_t max_connections = 4;

  /// Transport timeouts (socket transport only).
  double connect_timeout_ms = 5000.0;
  double io_timeout_ms = 30000.0;

  /// Response size guard.
  size_t max_response_bytes = 64u << 20;

  std::string user_agent = "sofya-sparql/1.0";

  /// Use the protocol's GET binding (?query=<percent-encoded>) instead of
  /// POSTing an application/sparql-query body. POST is the default (no URL
  /// length limits); GET exercises the other mandated binding and lets
  /// intermediaries cache.
  bool use_get = false;
};

/// The real-protocol endpoint; see file comment.
class HttpSparqlEndpoint : public Endpoint {
 public:
  /// Production constructor: parses `url` (http:// only) and speaks over a
  /// blocking socket transport owned by the endpoint.
  static StatusOr<std::unique_ptr<HttpSparqlEndpoint>> Create(
      const std::string& url, HttpSparqlEndpointOptions options = {});

  /// Injectable-transport constructor (tests pass a LoopbackTransport, so
  /// the whole client stack runs with zero real network). `transport` is
  /// not owned and must outlive the endpoint.
  HttpSparqlEndpoint(ParsedUrl url, HttpTransport* transport,
                     HttpSparqlEndpointOptions options = {});

  const std::string& name() const override { return options_.name; }
  const std::string& base_iri() const override { return options_.base_iri; }

  StatusOr<ResultSet> Select(const SelectQuery& query) override;

  /// Pipelined batch: queries fan out across the connection pool, each
  /// sub-query reporting its own outcome (a dead connection fails only the
  /// sub-queries in flight on it).
  SelectBatchResult SelectMany(std::span<const SelectQuery> queries) override;

  /// Real protocol ASK (ToSparqlAsk): the server ships one boolean, no rows.
  StatusOr<bool> Ask(const SelectQuery& query) override;

  AskBatchResult AskMany(std::span<const SelectQuery> queries) override;

  TermId EncodeTerm(const Term& term) override { return dict_.Intern(term); }

  /// Optimistic lookup. The pipeline uses LookupTerm(t) == kNullTermId as
  /// "the dataset does not know t" and skips queries for such terms — a
  /// judgment only an in-process KB can make locally. A remote endpoint
  /// cannot enumerate its vocabulary, so every term is potentially present:
  /// lookups intern into the client dictionary and membership is decided by
  /// the queries themselves (absent terms simply match nothing).
  TermId LookupTerm(const Term& term) const override {
    return dict_.Intern(term);
  }
  StatusOr<Term> DecodeTerm(TermId id) const override {
    return dict_.TryDecode(id);
  }

  EndpointStats stats() const override {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }
  void ResetStats() override {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_ = EndpointStats();
  }

  /// The client-side dictionary (this endpoint's private id space).
  const Dictionary& dict() const { return dict_; }

 private:
  /// One protocol exchange: POST `sparql_text`, check the HTTP status, and
  /// return the response body. All transport-level failures and the
  /// retryable HTTP statuses surface as Unavailable.
  StatusOr<std::string> Fetch(const std::string& sparql_text);

  /// Maps an HTTP status code onto the canonical Status space.
  static Status MapHttpStatus(int code, const std::string& reason);

  /// Lazily built fan-out pool (max_connections workers).
  ThreadPool& pool();

  HttpSparqlEndpointOptions options_;
  std::unique_ptr<HttpTransport> owned_transport_;  // Create() path only.
  HttpClient client_;
  mutable Dictionary dict_;  // mutable: LookupTerm interns (see above).

  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex stats_mu_;
  EndpointStats stats_;  // Guarded by stats_mu_.
};

}  // namespace sofya

#endif  // SOFYA_ENDPOINT_HTTP_SPARQL_ENDPOINT_H_
