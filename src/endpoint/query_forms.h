// Canned SELECT query shapes used by the samplers and examples.
//
// Keeping the concrete SPARQL shapes in one place documents exactly what
// SOFYA asks a remote dataset (Section 2.2 of the paper describes these
// queries informally).

#ifndef SOFYA_ENDPOINT_QUERY_FORMS_H_
#define SOFYA_ENDPOINT_QUERY_FORMS_H_

#include <cstdint>

#include "rdf/term.h"
#include "sparql/query.h"

namespace sofya::queries {

/// SELECT ?x ?y WHERE { ?x <p> ?y } [OFFSET o] [LIMIT n]
SelectQuery FactsOfPredicate(TermId p, uint64_t limit = kNoLimit,
                             uint64_t offset = 0);

/// SELECT DISTINCT ?x WHERE { ?x <p> ?y } [OFFSET o] [LIMIT n]
SelectQuery SubjectsOfPredicate(TermId p, uint64_t limit = kNoLimit,
                                uint64_t offset = 0);

/// SELECT ?y WHERE { <s> <p> ?y }
SelectQuery ObjectsOf(TermId s, TermId p);

/// SELECT ?p ?y WHERE { <s> ?p ?y }
SelectQuery FactsOfSubject(TermId s);

/// SELECT ?p WHERE { <s> ?p <o> }  — predicates linking two entities.
SelectQuery PredicatesBetween(TermId s, TermId o);

/// SELECT ?e WHERE { <x> <sameas> ?e } — cross-KB links of an entity.
SelectQuery SameAsOf(TermId x, TermId same_as_predicate);

/// SELECT DISTINCT ?p WHERE { ?s ?p ?o } — the predicate inventory
/// (schema discovery; the lexical candidate index is built from this).
SelectQuery AllPredicates(uint64_t limit = kNoLimit, uint64_t offset = 0);

/// SELECT ?x ?y1 ?y2 WHERE { ?x <p1> ?y1 . ?x <p2> ?y2 .
///                           FILTER(?y1 != ?y2) } [LIMIT n]
/// The UBS strategy-B probe: subjects where two relations disagree.
SelectQuery SubjectsWithDisagreeingObjects(TermId p1, TermId p2,
                                           uint64_t limit = kNoLimit);

/// SELECT DISTINCT ?x WHERE { ?x <p1> ?y1 . ?x <p2> ?y2 } [LIMIT n]
/// The UBS strategy-A probe: subjects in the domain overlap of two
/// relations.
SelectQuery SubjectsInDomainOverlap(TermId p1, TermId p2,
                                    uint64_t limit = kNoLimit);

}  // namespace sofya::queries

#endif  // SOFYA_ENDPOINT_QUERY_FORMS_H_
