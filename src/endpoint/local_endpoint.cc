#include "endpoint/local_endpoint.h"

#include <string>
#include <unordered_map>
#include <utility>

#include "sparql/engine.h"

namespace sofya {

StatusOr<ResultSet> LocalEndpoint::Select(const SelectQuery& query) {
  EvalStats eval_stats;
  auto result = engine_.Select(query, &eval_stats);

  // Evaluation ran lock-free; fold its cost into the counters in one short
  // critical section so concurrent queries never tear the accounting.
  uint64_t bytes = 0;
  if (result.ok() && estimate_bytes_) {
    for (const auto& row : result->rows) {
      for (TermId id : row) {
        auto term = kb_->dict().TryDecode(id);
        // +1 per cell for the separator in a serialized response.
        bytes += term.ok() ? term->ToNTriples().size() + 1 : 1;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.queries;
    stats_.index_probes += eval_stats.index_probes;
    stats_.triples_scanned += eval_stats.triples_scanned;
    stats_.replans += eval_stats.replans;
    if (result.ok()) {
      stats_.rows_returned += result->rows.size();
      stats_.bytes_estimated += bytes;
    }
  }
  if (!result.ok()) return result.status();
  return result;
}

SelectBatchResult LocalEndpoint::SelectMany(
    std::span<const SelectQuery> queries) {
  SelectBatchResult batch = SelectBatchResult::Sized(queries.size());
  // A batch is one request envelope: identical queries inside it are
  // answered from a single evaluation and charged once. Duplicates share
  // the first occurrence's outcome either way — a failed evaluation is not
  // re-attempted for its batch twins.
  std::unordered_map<std::string, size_t> first_occurrence;
  first_occurrence.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto [it, inserted] = first_occurrence.emplace(queries[i].Fingerprint(), i);
    if (!inserted) {
      batch.CopySlot(it->second, i);
      continue;
    }
    batch.Set(i, Select(queries[i]));
  }
  return batch;
}

StatusOr<bool> LocalEndpoint::Ask(const SelectQuery& query) {
  EvalStats eval_stats;
  auto result = engine_.Ask(query, &eval_stats);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.queries;
    stats_.index_probes += eval_stats.index_probes;
    stats_.triples_scanned += eval_stats.triples_scanned;
    stats_.replans += eval_stats.replans;
    // A boolean response: no rows shipped, one byte of payload.
    if (result.ok() && estimate_bytes_) ++stats_.bytes_estimated;
  }
  if (!result.ok()) return result.status();
  return result;
}

AskBatchResult LocalEndpoint::AskMany(std::span<const SelectQuery> queries) {
  AskBatchResult batch = AskBatchResult::Sized(queries.size());
  // Existence ignores solution modifiers, so the dedup key is the
  // normalized AskFingerprint: Ask(q) and Ask(q.Limit(5)) in one batch cost
  // a single evaluation.
  std::unordered_map<std::string, size_t> first_occurrence;
  first_occurrence.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto [it, inserted] =
        first_occurrence.emplace(AskFingerprint(queries[i]), i);
    if (!inserted) {
      batch.CopySlot(it->second, i);
      continue;
    }
    batch.Set(i, Ask(queries[i]));
  }
  return batch;
}

}  // namespace sofya
