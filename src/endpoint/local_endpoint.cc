#include "endpoint/local_endpoint.h"

#include "sparql/engine.h"

namespace sofya {

StatusOr<ResultSet> LocalEndpoint::Select(const SelectQuery& query) {
  EvalStats eval_stats;
  auto result = Evaluate(kb_->store(), query, &eval_stats, &kb_->dict());
  ++stats_.queries;
  stats_.index_probes += eval_stats.index_probes;
  if (!result.ok()) return result.status();

  stats_.rows_returned += result->rows.size();
  if (options_.estimate_bytes) {
    uint64_t bytes = 0;
    for (const auto& row : result->rows) {
      for (TermId id : row) {
        auto term = kb_->dict().TryDecode(id);
        // +1 per cell for the separator in a serialized response.
        bytes += term.ok() ? term->ToNTriples().size() + 1 : 1;
      }
    }
    stats_.bytes_estimated += bytes;
  }
  return result;
}

}  // namespace sofya
