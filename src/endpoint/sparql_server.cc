#include "endpoint/sparql_server.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <utility>
#include <vector>

#include "sparql/parser.h"
#include "sparql/results_json.h"
#include "util/string_util.h"

namespace sofya {
namespace {

/// The media type of a Content-Type value: everything before the first ';'
/// (parameters like charset are irrelevant here), trimmed, lowercased.
std::string MediaType(std::string_view content_type) {
  const size_t semi = content_type.find(';');
  if (semi != std::string_view::npos) {
    content_type = content_type.substr(0, semi);
  }
  while (!content_type.empty() && content_type.front() == ' ') {
    content_type.remove_prefix(1);
  }
  while (!content_type.empty() && content_type.back() == ' ') {
    content_type.remove_suffix(1);
  }
  std::string lowered(content_type);
  for (char& c : lowered) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return lowered;
}

/// Admission key for a peer: the IP of an "ip:port" address (every request
/// from one host counts against one bucket regardless of its ephemeral
/// port), or the whole string for loopback labels without a port.
std::string ClientKey(const HttpServerClient& client) {
  const size_t colon = client.address.rfind(':');
  return colon == std::string::npos ? client.address
                                    : client.address.substr(0, colon);
}

HttpResponse PlainError(int status_code, const char* reason,
                        std::string body) {
  HttpResponse response;
  response.status_code = status_code;
  response.reason = reason;
  response.headers = {{"Content-Type", "text/plain"}};
  response.body = std::move(body) + "\n";
  return response;
}

}  // namespace

SparqlServer::SparqlServer(KnowledgeBase* kb, SparqlServerOptions options)
    : options_(std::move(options)) {
  if (options_.scan_threads > 0) {
    scan_pool_ = std::make_unique<ThreadPool>(options_.scan_threads);
    options_.local.engine.scan_pool = scan_pool_.get();
  }
  local_ = std::make_unique<LocalEndpoint>(kb, options_.local);
}

HttpServer::Handler SparqlServer::HttpHandler() {
  return [this](const HttpRequest& request, const HttpServerClient& client) {
    return Handle(request, client);
  };
}

LoopbackTransport::Handler SparqlServer::LoopbackHandler(
    std::string client_label) {
  return [this, client = HttpServerClient{std::move(client_label), 0}](
             const HttpRequest& request) { return Handle(request, client); };
}

HttpResponse SparqlServer::Handle(const HttpRequest& request,
                                  const HttpServerClient& client) {
  requests_received_.fetch_add(1, std::memory_order_relaxed);

  std::string_view path, query_string;
  SplitTarget(request.target, &path, &query_string);
  if (path == options_.status_path) {
    if (request.method != "GET") {
      HttpResponse response =
          PlainError(405, "Method Not Allowed", "status is GET-only");
      response.headers.push_back({"Allow", "GET"});
      return response;
    }
    HttpResponse response;
    response.headers = {{"Content-Type", "application/json"}};
    response.body = StatusJson();
    return response;
  }
  if (path != options_.service_path) {
    return PlainError(404, "Not Found",
                      "no such resource (the query endpoint is " +
                          options_.service_path + ", introspection is " +
                          options_.status_path + ")");
  }

  if (request.method == "GET") {
    auto params = ParseQueryString(query_string);
    if (!params.ok()) {
      return PlainError(400, "Bad Request", params.status().ToString());
    }
    for (const QueryParam& param : *params) {
      if (param.key == "query") return HandleQuery(param.value, client);
    }
    return PlainError(400, "Bad Request", "missing 'query' parameter");
  }

  if (request.method == "POST") {
    const std::string* content_type =
        FindHeader(request.headers, "Content-Type");
    const std::string media =
        content_type == nullptr ? "" : MediaType(*content_type);
    if (media == "application/sparql-query") {
      return HandleQuery(request.body, client);
    }
    if (media == "application/x-www-form-urlencoded") {
      auto params = ParseQueryString(request.body);
      if (!params.ok()) {
        return PlainError(400, "Bad Request", params.status().ToString());
      }
      for (const QueryParam& param : *params) {
        if (param.key == "query") return HandleQuery(param.value, client);
      }
      return PlainError(400, "Bad Request", "missing 'query' form field");
    }
    return PlainError(
        415, "Unsupported Media Type",
        "use application/sparql-query or application/x-www-form-urlencoded");
  }

  HttpResponse response = PlainError(405, "Method Not Allowed",
                                     "the query operation is GET or POST");
  response.headers.push_back({"Allow", "GET, POST"});
  return response;
}

/// RAII admission ticket. Construction decides (under the server's mutex)
/// whether this query may run; destruction returns the in-flight slots.
struct SparqlServer::Admission {
  SparqlServer* server = nullptr;
  std::string key;
  bool admitted = false;
  int shed_status = 0;  ///< 503 or 429 when !admitted.

  Admission(SparqlServer* s, const HttpServerClient& client)
      : server(s), key(ClientKey(client)) {
    const SparqlServerOptions& opt = server->options_;
    std::lock_guard<std::mutex> lock(server->admission_mu_);
    if (opt.per_client_query_quota > 0) {
      auto it = server->served_by_client_.find(key);
      if (it != server->served_by_client_.end() &&
          it->second >= opt.per_client_query_quota) {
        shed_status = 429;
        return;
      }
    }
    if (opt.max_concurrent > 0 && server->inflight_ >= opt.max_concurrent) {
      shed_status = 503;
      return;
    }
    size_t& client_inflight = server->inflight_by_client_[key];
    if (opt.max_concurrent_per_client > 0 &&
        client_inflight >= opt.max_concurrent_per_client) {
      shed_status = 503;
      return;
    }
    ++server->inflight_;
    ++client_inflight;
    ++server->served_by_client_[key];  // Quota charges admitted queries.
    admitted = true;
  }

  ~Admission() {
    if (!admitted) return;
    std::lock_guard<std::mutex> lock(server->admission_mu_);
    --server->inflight_;
    auto it = server->inflight_by_client_.find(key);
    if (it != server->inflight_by_client_.end() && --it->second == 0) {
      server->inflight_by_client_.erase(it);
    }
  }

  Admission(const Admission&) = delete;
  Admission& operator=(const Admission&) = delete;
};

HttpResponse SparqlServer::HandleQuery(const std::string& query_text,
                                       const HttpServerClient& client) {
  Admission ticket(this, client);
  if (!ticket.admitted) {
    if (ticket.shed_status == 429) {
      shed_quota_.fetch_add(1, std::memory_order_relaxed);
      return ShedResponse(429, "Too Many Requests",
                          "per-client query quota exhausted");
    }
    shed_concurrency_.fetch_add(1, std::memory_order_relaxed);
    return ShedResponse(503, "Service Unavailable",
                        "server at concurrency capacity");
  }
  if (options_.pre_evaluate_hook) options_.pre_evaluate_hook();
  HttpResponse response = Evaluate(query_text);
  if (response.status_code == 200) {
    queries_answered_.fetch_add(1, std::memory_order_relaxed);
  }
  return response;
}

HttpResponse SparqlServer::Evaluate(const std::string& query_text) {
  // The production parser only speaks SELECT; an ASK body is evaluated as
  // `SELECT *` and answered with the boolean document — the same convention
  // HttpSparqlEndpoint uses when it renders ASK probes.
  const bool is_ask = StartsWith(query_text, "ASK");
  const std::string parse_text =
      is_ask ? "SELECT *" + query_text.substr(3) : query_text;
  auto query = ParseSelectQuery(
      parse_text, [this](const Term& t) { return local_->EncodeTerm(t); });
  if (!query.ok()) {
    return PlainError(400, "Bad Request", query.status().ToString());
  }

  HttpResponse response;
  response.headers = {{"Content-Type", "application/sparql-results+json"}};
  if (is_ask) {
    auto result = local_->Ask(*query);
    if (!result.ok()) {
      return PlainError(500, "Internal Server Error",
                        result.status().ToString());
    }
    response.body = WriteSparqlAskJson(*result);
    return response;
  }
  auto rows = local_->Select(*query);
  if (!rows.ok()) {
    return PlainError(500, "Internal Server Error", rows.status().ToString());
  }
  auto body = WriteSparqlResultsJson(
      *rows, [this](TermId id) { return local_->DecodeTerm(id); });
  if (!body.ok()) {
    return PlainError(500, "Internal Server Error", body.status().ToString());
  }
  response.body = std::move(*body);
  return response;
}

std::string SparqlServer::StatusJson() {
  // Snapshot the admission state under its mutex; everything else is
  // atomics or single reads.
  size_t inflight;
  size_t clients_inflight;
  size_t clients_served;
  // Per-client detail: every client that has been served or is in flight,
  // keyed by ClientKey. Sorted so the JSON is deterministic for scripts.
  struct ClientDetail {
    std::string key;
    uint64_t served = 0;
    size_t client_inflight = 0;
  };
  std::vector<ClientDetail> clients;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    inflight = inflight_;
    clients_inflight = inflight_by_client_.size();
    clients_served = served_by_client_.size();
    clients.reserve(served_by_client_.size() + inflight_by_client_.size());
    for (const auto& [key, served] : served_by_client_) {
      clients.push_back({key, served, 0});
    }
    for (const auto& [key, count] : inflight_by_client_) {
      auto it = std::find_if(clients.begin(), clients.end(),
                             [&](const ClientDetail& c) { return c.key == key; });
      if (it == clients.end()) {
        clients.push_back({key, 0, count});
      } else {
        it->client_inflight = count;
      }
    }
    std::sort(clients.begin(), clients.end(),
              [](const ClientDetail& a, const ClientDetail& b) {
                return a.key < b.key;
              });
  }
  const KnowledgeBase* kb = local_->kb();
  const TripleStore& store = kb->store();
  std::string json = "{";
  auto field = [&json](const char* key, uint64_t value, bool last = false) {
    json += StrFormat("\"%s\":%llu%s", key,
                      static_cast<unsigned long long>(value), last ? "" : ",");
  };
  json += "\"requests\":{";
  field("received", requests_received());
  field("answered", queries_answered());
  field("shed_concurrency", shed_concurrency());
  field("shed_quota", shed_quota(), /*last=*/true);
  json += "},\"admission\":{";
  field("inflight", inflight);
  field("clients_inflight", clients_inflight);
  field("clients_served", clients_served);
  field("max_concurrent", options_.max_concurrent);
  field("max_concurrent_per_client", options_.max_concurrent_per_client);
  field("per_client_query_quota", options_.per_client_query_quota);
  json += "\"clients\":[";
  for (size_t i = 0; i < clients.size(); ++i) {
    const ClientDetail& c = clients[i];
    // remaining_quota is -1 when quotas are disabled (unlimited).
    const long long remaining =
        options_.per_client_query_quota == 0
            ? -1
            : static_cast<long long>(
                  options_.per_client_query_quota > c.served
                      ? options_.per_client_query_quota - c.served
                      : 0);
    json += StrFormat(
        "%s{\"client\":\"%s\",\"served\":%llu,\"inflight\":%zu,"
        "\"remaining_quota\":%lld}",
        i == 0 ? "" : ",", c.key.c_str(),
        static_cast<unsigned long long>(c.served), c.client_inflight,
        remaining);
  }
  json += "]},\"planner\":{";
  field("replans", local_->engine().replans(), /*last=*/true);
  json += "},\"plan_cache\":{";
  field("hits", local_->engine().plan_cache_hits());
  field("misses", local_->engine().plan_cache_misses(), /*last=*/true);
  json += "},\"store\":{";
  field("triples", store.size());
  field("shards", store.num_shards());
  field("promoted_predicates", store.PromotedPredicates().size());
  field("stats_recomputes", store.stats_recomputes());
  json += StrFormat("\"mapped\":%s,", store.is_mapped() ? "true" : "false");
  field("data_epoch", kb->data_epoch(), /*last=*/true);
  json += "}}";
  return json;
}

HttpResponse SparqlServer::ShedResponse(int status_code, const char* reason,
                                        const char* detail) const {
  HttpResponse response = PlainError(status_code, reason, detail);
  const long long seconds = static_cast<long long>(
      std::ceil(options_.retry_after_seconds < 0.0
                    ? 0.0
                    : options_.retry_after_seconds));
  response.headers.push_back({"Retry-After", std::to_string(seconds)});
  return response;
}

}  // namespace sofya
