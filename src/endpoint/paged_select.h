// Cursor-style pagination over an endpoint (OFFSET/LIMIT pages).
//
// Public endpoints cap result sizes; fetching a large result means paging.
// PagedSelect centralizes that loop (and its failure/retry policy) so
// samplers never hand-roll it.
//
// Caveat for *remote* endpoints: SPARQL gives OFFSET no meaning without
// ORDER BY, and the supported query subset has no ORDER BY yet, so page
// boundaries rely on the server enumerating an unordered query in a stable
// total order across requests. The in-process engine guarantees this;
// well-known stores (Virtuoso et al.) are stable in practice for an
// unchanged dataset, but it is not contractual — rows can in principle be
// missed or duplicated across pages. ORDER BY support is the tracked fix
// (see ROADMAP); until then keep page_size large enough that hot queries
// fit in one page.

#ifndef SOFYA_ENDPOINT_PAGED_SELECT_H_
#define SOFYA_ENDPOINT_PAGED_SELECT_H_

#include <cstdint>

#include "endpoint/endpoint.h"
#include "endpoint/retry_policy.h"
#include "sparql/query.h"
#include "util/status.h"

namespace sofya {

/// Pagination policy.
struct PagedSelectOptions {
  uint64_t page_size = 1000;  ///< LIMIT per request.
  uint64_t max_rows = kNoLimit;  ///< Stop after this many rows total.
  /// Per-page transient-failure policy — the same backoff machinery as
  /// RetryingEndpoint (retry_policy.h), so paging cannot hammer a server
  /// that an outer retry layer would have backed off from.
  RetryOptions retry = DefaultPageRetry();

  /// Paging sits above an often-retrying stack already, so its own budget
  /// defaults smaller than RetryOptions' general default.
  static RetryOptions DefaultPageRetry() {
    RetryOptions retry;
    retry.max_retries = 2;
    return retry;
  }
};

/// Runs `query` page by page, concatenating rows until a short page, the
/// `max_rows` bound, or an error. The query's own LIMIT/OFFSET are composed
/// with paging (its OFFSET is the starting point; its LIMIT bounds the
/// total). A misbehaving server that returns more rows than a page's LIMIT
/// cannot overrun the caps: the over-long page is truncated and paging
/// stops (OFFSET arithmetic against such a server is meaningless).
StatusOr<ResultSet> PagedSelect(Endpoint* endpoint, const SelectQuery& query,
                                const PagedSelectOptions& options = {});

/// Batched pagination: issues every query's first page as one SelectMany
/// round trip (so the endpoint stack can dedup and cache), then pages the
/// rare queries whose first page came back full. Results are positional and
/// carry per-sub-query statuses: a sub-query whose first page (or a later
/// page, after the per-page retries) failed reports its own error while its
/// batch neighbors keep their rows. The page schedule is identical to
/// running PagedSelect per query; the saving comes from batching —
/// endpoints that dedup within a batch answer identical first pages from
/// one evaluation. An empty-batch envelope error (page_size == 0) is
/// reported in every slot.
SelectBatchResult BatchedPagedSelect(Endpoint* endpoint,
                                     std::span<const SelectQuery> queries,
                                     const PagedSelectOptions& options = {});

}  // namespace sofya

#endif  // SOFYA_ENDPOINT_PAGED_SELECT_H_
