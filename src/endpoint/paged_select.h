// Cursor-style pagination over an endpoint (OFFSET/LIMIT pages).
//
// Public endpoints cap result sizes; fetching a large result means paging.
// PagedSelect centralizes that loop (and its failure/retry policy) so
// samplers never hand-roll it.

#ifndef SOFYA_ENDPOINT_PAGED_SELECT_H_
#define SOFYA_ENDPOINT_PAGED_SELECT_H_

#include <cstdint>

#include "endpoint/endpoint.h"
#include "sparql/query.h"
#include "util/status.h"

namespace sofya {

/// Pagination policy.
struct PagedSelectOptions {
  uint64_t page_size = 1000;  ///< LIMIT per request.
  uint64_t max_rows = kNoLimit;  ///< Stop after this many rows total.
  int max_retries_per_page = 2;  ///< Retries on Unavailable.
};

/// Runs `query` page by page, concatenating rows until a short page, the
/// `max_rows` bound, or an error. The query's own LIMIT/OFFSET are composed
/// with paging (its OFFSET is the starting point; its LIMIT bounds the
/// total).
StatusOr<ResultSet> PagedSelect(Endpoint* endpoint, const SelectQuery& query,
                                const PagedSelectOptions& options = {});

/// Batched pagination: issues every query's first page as one SelectMany
/// round trip (so the endpoint stack can dedup and cache), then pages the
/// rare queries whose first page came back full. Results are positional.
/// The page schedule is identical to running PagedSelect per query; the
/// saving comes from batching — endpoints that dedup within a batch answer
/// identical first pages from one evaluation.
StatusOr<std::vector<ResultSet>> BatchedPagedSelect(
    Endpoint* endpoint, std::span<const SelectQuery> queries,
    const PagedSelectOptions& options = {});

}  // namespace sofya

#endif  // SOFYA_ENDPOINT_PAGED_SELECT_H_
