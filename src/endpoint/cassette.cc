#include "endpoint/cassette.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <unordered_set>
#include <utility>

#include "util/checksum.h"
#include "util/hash.h"

namespace sofya {
namespace {

constexpr char kMagic[8] = {'S', 'O', 'F', 'Y', 'C', 'A', 'S', 'S'};
constexpr uint32_t kVersion = 1;
// magic + version + reserved + payload_size + checksum.
constexpr size_t kHeaderSize = 8 + 4 + 4 + 8 + 8;

// ---- Little serialization kit (native-endian, like store_snapshot) ----

void AppendU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void AppendU32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string& out, uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendF64(std::string& out, double v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendStr(std::string& out, const std::string& s) {
  AppendU64(out, s.size());
  out.append(s);
}

void AppendTerm(std::string& out, const Term& term) {
  // 0 = IRI, 1 = plain literal, 2 = typed literal, 3 = lang literal.
  uint8_t tag;
  if (term.is_iri()) {
    tag = 0;
  } else if (!term.datatype().empty()) {
    tag = 2;
  } else if (!term.language().empty()) {
    tag = 3;
  } else {
    tag = 1;
  }
  AppendU8(out, tag);
  AppendStr(out, term.lexical());
  if (tag == 2) AppendStr(out, term.datatype());
  if (tag == 3) AppendStr(out, term.language());
}

void AppendEntry(std::string& out, const CassetteEntry& e) {
  AppendU8(out, static_cast<uint8_t>(e.kind));
  AppendStr(out, e.key);
  AppendU32(out, static_cast<uint32_t>(e.code));
  AppendStr(out, e.message);
  AppendF64(out, e.retry_after_ms);
  switch (e.kind) {
    case CassetteEntryKind::kSelect: {
      AppendU32(out, static_cast<uint32_t>(e.var_names.size()));
      for (const std::string& name : e.var_names) AppendStr(out, name);
      AppendU64(out, e.rows.size());
      for (const auto& row : e.rows) {
        AppendU32(out, static_cast<uint32_t>(row.size()));
        for (const CassetteCell& cell : row) {
          AppendU8(out, cell.bound ? 1 : 0);
          if (cell.bound) AppendTerm(out, cell.term);
        }
      }
      break;
    }
    case CassetteEntryKind::kAsk:
      AppendU8(out, e.ask_value ? 1 : 0);
      break;
    case CassetteEntryKind::kLookup:
      AppendU8(out, e.lookup_known ? 1 : 0);
      break;
  }
}

/// Bounds-checked cursor over the payload; every Read* fails cleanly on
/// truncation instead of walking off the buffer.
struct Cursor {
  const char* data;
  size_t size;
  size_t off = 0;

  bool ReadBytes(void* out, size_t n) {
    if (size - off < n) return false;
    std::memcpy(out, data + off, n);
    off += n;
    return true;
  }
  bool ReadU8(uint8_t* v) { return ReadBytes(v, sizeof(*v)); }
  bool ReadU32(uint32_t* v) { return ReadBytes(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return ReadBytes(v, sizeof(*v)); }
  bool ReadF64(double* v) { return ReadBytes(v, sizeof(*v)); }
  bool ReadStr(std::string* s) {
    uint64_t n;
    if (!ReadU64(&n)) return false;
    if (size - off < n) return false;
    s->assign(data + off, n);
    off += n;
    return true;
  }
};

bool ReadTerm(Cursor& c, Term* out) {
  uint8_t tag;
  std::string lexical;
  if (!c.ReadU8(&tag) || tag > 3) return false;
  if (!c.ReadStr(&lexical)) return false;
  switch (tag) {
    case 0:
      *out = Term::Iri(std::move(lexical));
      return true;
    case 1:
      *out = Term::Literal(std::move(lexical));
      return true;
    case 2: {
      std::string datatype;
      if (!c.ReadStr(&datatype)) return false;
      *out = Term::TypedLiteral(std::move(lexical), std::move(datatype));
      return true;
    }
    default: {
      std::string lang;
      if (!c.ReadStr(&lang)) return false;
      *out = Term::LangLiteral(std::move(lexical), std::move(lang));
      return true;
    }
  }
}

bool ReadEntry(Cursor& c, CassetteEntry* e) {
  uint8_t kind;
  uint32_t code;
  if (!c.ReadU8(&kind) || kind > 2) return false;
  e->kind = static_cast<CassetteEntryKind>(kind);
  if (!c.ReadStr(&e->key)) return false;
  if (!c.ReadU32(&code) || code > static_cast<uint32_t>(StatusCode::kUnimplemented)) {
    return false;
  }
  e->code = static_cast<StatusCode>(code);
  if (!c.ReadStr(&e->message)) return false;
  if (!c.ReadF64(&e->retry_after_ms)) return false;
  switch (e->kind) {
    case CassetteEntryKind::kSelect: {
      uint32_t num_vars;
      uint64_t num_rows;
      if (!c.ReadU32(&num_vars)) return false;
      e->var_names.resize(num_vars);
      for (std::string& name : e->var_names) {
        if (!c.ReadStr(&name)) return false;
      }
      if (!c.ReadU64(&num_rows)) return false;
      // Guard against a corrupt count larger than the remaining payload
      // could possibly encode (>= 1 byte per row).
      if (num_rows > c.size - c.off) return false;
      e->rows.resize(num_rows);
      for (auto& row : e->rows) {
        uint32_t cells;
        if (!c.ReadU32(&cells)) return false;
        if (cells > c.size - c.off) return false;
        row.resize(cells);
        for (CassetteCell& cell : row) {
          uint8_t bound;
          if (!c.ReadU8(&bound) || bound > 1) return false;
          cell.bound = bound == 1;
          if (cell.bound && !ReadTerm(c, &cell.term)) return false;
        }
      }
      return true;
    }
    case CassetteEntryKind::kAsk: {
      uint8_t v;
      if (!c.ReadU8(&v) || v > 1) return false;
      e->ask_value = v == 1;
      return true;
    }
    default: {
      uint8_t v;
      if (!c.ReadU8(&v) || v > 1) return false;
      e->lookup_known = v == 1;
      return true;
    }
  }
}

Status CorruptError(const std::string& path, const std::string& what) {
  return Status::ParseError("cassette " + path + ": " + what);
}

}  // namespace

Status CassetteEntry::ToStatus() const {
  if (code == StatusCode::kOk) return Status::OK();
  Status status(code, message);
  if (retry_after_ms >= 0.0) status = status.WithRetryAfterMs(retry_after_ms);
  return status;
}

void CassetteEntry::SetStatus(const Status& status) {
  code = status.code();
  message = status.message();
  retry_after_ms = status.has_retry_after() ? status.retry_after_ms() : -1.0;
}

bool operator==(const CassetteEntry& a, const CassetteEntry& b) {
  return a.kind == b.kind && a.key == b.key && a.code == b.code &&
         a.message == b.message && a.retry_after_ms == b.retry_after_ms &&
         a.var_names == b.var_names && a.rows == b.rows &&
         a.ask_value == b.ask_value && a.lookup_known == b.lookup_known;
}

Status SaveCassette(const Cassette& cassette, const std::string& path) {
  std::string payload;
  AppendStr(payload, cassette.endpoint_name);
  AppendStr(payload, cassette.base_iri);
  AppendU64(payload, cassette.data_epoch);

  // Sort by (kind, key) so the file bytes are schedule-independent: the
  // same session recorded under any thread count writes identical files.
  std::vector<const CassetteEntry*> sorted;
  sorted.reserve(cassette.entries.size());
  for (const CassetteEntry& e : cassette.entries) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const CassetteEntry* a, const CassetteEntry* b) {
              if (a->kind != b->kind) return a->kind < b->kind;
              return a->key < b->key;
            });

  AppendU64(payload, sorted.size());
  for (const CassetteEntry* e : sorted) AppendEntry(payload, *e);

  Checksummer checksummer;
  checksummer.Update(payload.data(), payload.size());
  const uint64_t checksum = checksummer.Finish();

  std::string header;
  header.append(kMagic, sizeof(kMagic));
  AppendU32(header, kVersion);
  AppendU32(header, 0);  // Reserved.
  AppendU64(header, payload.size());
  AppendU64(header, checksum);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Unavailable("cannot open for write: " + path);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.flush();
  if (!out) return Status::Unavailable("write failed: " + path);
  return Status::OK();
}

StatusOr<Cassette> LoadCassette(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open cassette: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());

  if (bytes.size() < kHeaderSize) {
    return CorruptError(path, "truncated header");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return CorruptError(path, "bad magic");
  }
  Cursor header{bytes.data() + sizeof(kMagic), kHeaderSize - sizeof(kMagic)};
  uint32_t version, reserved;
  uint64_t payload_size, checksum;
  header.ReadU32(&version);
  header.ReadU32(&reserved);
  header.ReadU64(&payload_size);
  header.ReadU64(&checksum);
  if (version != kVersion) {
    return CorruptError(path, "unsupported version " + std::to_string(version));
  }
  if (bytes.size() - kHeaderSize != payload_size) {
    return CorruptError(path, "payload size mismatch");
  }

  // Verify integrity before *any* entry is parsed or served.
  Checksummer checksummer;
  checksummer.Update(bytes.data() + kHeaderSize, payload_size);
  if (checksummer.Finish() != checksum) {
    return CorruptError(path, "checksum mismatch");
  }

  Cursor c{bytes.data() + kHeaderSize, payload_size};
  Cassette cassette;
  uint64_t num_entries;
  if (!c.ReadStr(&cassette.endpoint_name) || !c.ReadStr(&cassette.base_iri) ||
      !c.ReadU64(&cassette.data_epoch) || !c.ReadU64(&num_entries)) {
    return CorruptError(path, "truncated cassette header");
  }
  if (num_entries > payload_size) {
    return CorruptError(path, "implausible entry count");
  }
  cassette.entries.resize(num_entries);
  std::unordered_set<std::string> seen;
  seen.reserve(num_entries);
  for (CassetteEntry& e : cassette.entries) {
    if (!ReadEntry(c, &e)) return CorruptError(path, "malformed entry");
    // Kind prefixed so a SELECT and an ASK with equal keys stay distinct.
    std::string dedup_key =
        std::to_string(static_cast<int>(e.kind)) + "|" + e.key;
    if (!seen.insert(std::move(dedup_key)).second) {
      return CorruptError(path, "duplicate entry key: " + e.key);
    }
  }
  if (c.off != c.size) return CorruptError(path, "trailing bytes");
  return cassette;
}

bool LooksLikeCassette(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char head[sizeof(kMagic)];
  in.read(head, sizeof(head));
  return in.gcount() == sizeof(head) &&
         std::memcmp(head, kMagic, sizeof(kMagic)) == 0;
}

uint64_t CassetteEntryHash(const CassetteEntry& entry) {
  std::string bytes;
  AppendEntry(bytes, entry);
  return Fnv1a(bytes.data(), bytes.size());
}

uint64_t CassetteDigest::Value() const {
  // Mix the three commutative accumulators into one word; the mix itself
  // need not be commutative, only the accumulation was.
  std::string bytes;
  AppendU64(bytes, count);
  AppendU64(bytes, sum);
  AppendU64(bytes, xored);
  return Fnv1a(bytes.data(), bytes.size());
}

std::string CassetteDigest::ToHex() const {
  static const char* kHex = "0123456789abcdef";
  uint64_t v = Value();
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kHex[v & 0xF];
    v >>= 4;
  }
  return out;
}

namespace {

/// Shared canonical renderer: SelectQuery::Fingerprint() with constants
/// rendered through the endpoint's dictionary instead of by id.
std::string CanonicalKey(const Endpoint& endpoint, const SelectQuery& query) {
  const VarId num_vars = static_cast<VarId>(query.num_vars());
  std::vector<VarId> canon(query.num_vars(), -1);
  VarId next = 0;
  auto visit = [&](VarId v) {
    if (v >= 0 && v < num_vars && canon[v] < 0) canon[v] = next++;
  };
  if (query.projection().empty()) {
    for (VarId v = 0; v < num_vars; ++v) visit(v);
  } else {
    for (VarId v : query.projection()) visit(v);
  }
  for (const auto& clause : query.clauses()) {
    if (clause.subject.is_var()) visit(clause.subject.var());
    if (clause.predicate.is_var()) visit(clause.predicate.var());
    if (clause.object.is_var()) visit(clause.object.var());
  }
  for (const auto& f : query.filters()) {
    visit(f.lhs);
    visit(f.rhs_var);
  }
  for (VarId v = 0; v < num_vars; ++v) visit(v);

  std::string out;
  out.reserve(64 + 32 * query.clauses().size());
  auto add_term = [&](TermId id) {
    StatusOr<Term> term = endpoint.DecodeTerm(id);
    if (term.ok()) {
      out += '#';
      out += term->ToNTriples();
    } else {
      // Undecodable constant: deterministic in-process fallback (such a
      // query cannot be rendered for a live endpoint either).
      out += "#!";
      out += std::to_string(id);
    }
  };
  auto add_node = [&](const NodeRef& ref) {
    if (ref.is_var()) {
      out += '?';
      out += std::to_string(canon[ref.var()]);
    } else {
      add_term(ref.term());
    }
    out += ' ';
  };
  out += "v:";
  {
    std::vector<const std::string*> names(query.num_vars(), nullptr);
    for (VarId v = 0; v < num_vars; ++v) names[canon[v]] = &query.var_name(v);
    for (const std::string* name : names) {
      if (name != nullptr) out += *name;
      out += ',';
    }
  }
  out += ";c:";
  for (const auto& clause : query.clauses()) {
    add_node(clause.subject);
    add_node(clause.predicate);
    add_node(clause.object);
    out += '.';
  }
  out += ";f:";
  for (const auto& f : query.filters()) {
    out += std::to_string(static_cast<int>(f.kind));
    out += '/';
    out += std::to_string(f.lhs < 0 ? -1 : canon[f.lhs]);
    out += '/';
    out += std::to_string(f.rhs_var < 0 ? -1 : canon[f.rhs_var]);
    out += '/';
    if (f.rhs_term == kNullTermId) {
      out += '-';
    } else {
      add_term(f.rhs_term);
    }
    out += ',';
  }
  out += ";p:";
  if (query.projection().empty()) {
    for (VarId v = 0; v < num_vars; ++v) {
      out += std::to_string(canon[v]);
      out += ',';
    }
  } else {
    for (VarId v : query.projection()) {
      out += std::to_string(canon[v]);
      out += ',';
    }
  }
  out += query.distinct() ? ";d1" : ";d0";
  out += ";l:";
  out += std::to_string(query.limit());
  out += ";o:";
  out += std::to_string(query.offset());
  return out;
}

}  // namespace

std::string CanonicalSelectKey(const Endpoint& endpoint,
                               const SelectQuery& query) {
  return CanonicalKey(endpoint, query);
}

std::string CanonicalAskKey(const Endpoint& endpoint,
                            const SelectQuery& query) {
  SelectQuery normalized = query;
  normalized.Distinct(false).Limit(kNoLimit).Offset(0);
  return CanonicalKey(endpoint, normalized) + "#ask";
}

std::string CanonicalLookupKey(const Term& term) { return term.ToNTriples(); }

StatusOr<SelectQuery> TranslateQuery(const SelectQuery& query,
                                     const Endpoint& from, Endpoint& to) {
  SelectQuery out;
  for (VarId v = 0; v < static_cast<VarId>(query.num_vars()); ++v) {
    out.NewVar(query.var_name(v));
  }
  auto translate_id = [&](TermId id) -> StatusOr<TermId> {
    SOFYA_ASSIGN_OR_RETURN(Term term, from.DecodeTerm(id));
    return to.EncodeTerm(term);
  };
  auto translate_node = [&](const NodeRef& ref) -> StatusOr<NodeRef> {
    if (ref.is_var()) return NodeRef::Variable(ref.var());
    SOFYA_ASSIGN_OR_RETURN(TermId id, translate_id(ref.term()));
    return NodeRef::Constant(id);
  };
  for (const auto& clause : query.clauses()) {
    SOFYA_ASSIGN_OR_RETURN(NodeRef s, translate_node(clause.subject));
    SOFYA_ASSIGN_OR_RETURN(NodeRef p, translate_node(clause.predicate));
    SOFYA_ASSIGN_OR_RETURN(NodeRef o, translate_node(clause.object));
    out.Where(s, p, o);
  }
  for (FilterExpr filter : query.filters()) {
    if (filter.rhs_term != kNullTermId) {
      SOFYA_ASSIGN_OR_RETURN(filter.rhs_term, translate_id(filter.rhs_term));
    }
    out.Filter(filter);
  }
  if (!query.projection().empty()) {
    out.Select(query.projection());
  }
  out.Distinct(query.distinct()).Limit(query.limit()).Offset(query.offset());
  return out;
}

}  // namespace sofya
