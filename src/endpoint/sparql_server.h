// SparqlServer: a SPARQL 1.1 Protocol query endpoint over a KnowledgeBase.
//
// This is the production counterpart of the test-only MockSparqlServer: one
// request handler that speaks the protocol's query operation — GET with a
// percent-encoded ?query= parameter, POST with an application/sparql-query
// body, or POST with an application/x-www-form-urlencoded form — evaluates
// the query on a LocalEndpoint (full Engine: join-order planner, plan
// cache, optional parallel scans), and answers in the W3C
// application/sparql-results+json format that HttpSparqlEndpoint already
// parses. The handler is transport-agnostic: plug it into HttpServer for a
// real socket endpoint (`sofya_cli serve`) or into LoopbackTransport for
// in-process CI parity runs — both paths execute the identical code.
//
// Admission control mirrors ThrottledEndpoint's semantics, server-side:
// a global in-flight concurrency cap and a per-client one shed excess load
// with 503 + Retry-After (transient back-pressure the client's retry stack
// honors and recovers from), while an exhausted per-client query quota is
// answered 429 + Retry-After (the budget regime of the paper's "few
// queries" claim, enforced at the server door).
//
// Thread safety: Handle() is safe to call concurrently (HttpServer's worker
// pool does); evaluation is lock-free over the store, admission state takes
// a small mutex.

#ifndef SOFYA_ENDPOINT_SPARQL_SERVER_H_
#define SOFYA_ENDPOINT_SPARQL_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "endpoint/local_endpoint.h"
#include "net/http.h"
#include "net/http_server.h"
#include "net/loopback_transport.h"
#include "rdf/knowledge_base.h"
#include "util/thread_pool.h"

namespace sofya {

/// Server-side endpoint knobs.
struct SparqlServerOptions {
  /// Request path the query operation is served on; anything else is 404.
  std::string service_path = "/sparql";

  /// GET-only introspection resource: one JSON document with the request/
  /// shed counters, live admission state, plan-cache hit rate and store
  /// shape. Cheap enough to poll; never touches the query path's locks for
  /// longer than a counter read.
  std::string status_path = "/status";

  /// Global in-flight query cap; requests beyond it are shed with
  /// 503 + Retry-After. 0 disables the cap.
  size_t max_concurrent = 32;

  /// In-flight cap per client (keyed by peer IP); 0 disables.
  size_t max_concurrent_per_client = 8;

  /// Lifetime served-query budget per client; once spent, further queries
  /// are answered 429 + Retry-After. 0 disables (no quota).
  uint64_t per_client_query_quota = 0;

  /// The Retry-After hint (delta seconds, rounded up on the wire) attached
  /// to every 503/429 shed.
  double retry_after_seconds = 1.0;

  /// Size of the engine's parallel scan pool; 0 evaluates single-threaded.
  size_t scan_threads = 0;

  /// Engine/planner configuration for the served LocalEndpoint. Its
  /// `engine.scan_pool` is overridden when scan_threads > 0.
  LocalEndpointOptions local;

  /// Test/fault-drill hook: runs after admission, before evaluation, while
  /// the in-flight slot is held. Lets tests pin deterministic overload
  /// (block one query here, assert the next is shed) the same way
  /// ThrottleOptions injects failures client-side. Unset in production.
  std::function<void()> pre_evaluate_hook;
};

/// SPARQL 1.1 Protocol handler; see file comment. The KnowledgeBase is
/// borrowed and must outlive the server.
class SparqlServer {
 public:
  explicit SparqlServer(KnowledgeBase* kb, SparqlServerOptions options = {});

  /// Maps one protocol request to a response; safe to call concurrently.
  HttpResponse Handle(const HttpRequest& request,
                      const HttpServerClient& client);

  /// This server as an HttpServer handler (real socket mode). The server
  /// must outlive the HttpServer using it.
  HttpServer::Handler HttpHandler();

  /// This server as a LoopbackTransport handler (in-process mode, CI).
  /// `client_label` stands in for the peer address in admission keying, so
  /// two loopback transports with distinct labels are distinct clients.
  LoopbackTransport::Handler LoopbackHandler(std::string client_label);

  /// The served endpoint (stats, EXPLAIN, plan-cache accounting).
  LocalEndpoint& local() { return *local_; }
  const LocalEndpoint& local() const { return *local_; }

  // Counters (tests / ops).
  uint64_t requests_received() const {
    return requests_received_.load(std::memory_order_relaxed);
  }
  uint64_t queries_answered() const {
    return queries_answered_.load(std::memory_order_relaxed);
  }
  uint64_t shed_concurrency() const {  ///< 503s from concurrency caps.
    return shed_concurrency_.load(std::memory_order_relaxed);
  }
  uint64_t shed_quota() const {  ///< 429s from the per-client quota.
    return shed_quota_.load(std::memory_order_relaxed);
  }

 private:
  /// Scoped admission ticket: acquired before evaluation, released on
  /// destruction. `admitted` tells whether evaluation may proceed.
  struct Admission;

  HttpResponse HandleQuery(const std::string& query_text,
                           const HttpServerClient& client);
  HttpResponse Evaluate(const std::string& query_text);

  /// The /status JSON document.
  std::string StatusJson();

  /// 503/429 shed response with the configured Retry-After.
  HttpResponse ShedResponse(int status_code, const char* reason,
                            const char* detail) const;

  SparqlServerOptions options_;
  std::unique_ptr<ThreadPool> scan_pool_;  ///< Order: before local_.
  std::unique_ptr<LocalEndpoint> local_;

  std::mutex admission_mu_;
  size_t inflight_ = 0;  // Guarded by admission_mu_.
  std::unordered_map<std::string, size_t> inflight_by_client_;
  std::unordered_map<std::string, uint64_t> served_by_client_;

  std::atomic<uint64_t> requests_received_{0};
  std::atomic<uint64_t> queries_answered_{0};
  std::atomic<uint64_t> shed_concurrency_{0};
  std::atomic<uint64_t> shed_quota_{0};
};

}  // namespace sofya

#endif  // SOFYA_ENDPOINT_SPARQL_SERVER_H_
