// ThrottledEndpoint: decorates another Endpoint with the operational limits
// real public SPARQL endpoints impose — query budgets, result-size caps,
// latency, and transient failures.
//
// The paper's motivation ("providers allow a limited number of queries …
// do not allow downloading the dataset") is made concrete and testable here:
// exceeding the budget yields ResourceExhausted, row caps silently truncate
// (like DBpedia's 10000-row cap), and failure injection exercises the
// samplers' error paths.
//
// Thread safety: safe for concurrent callers. Budget admission, the jitter/
// failure RNG, and the counters sit behind one mutex, but the inner call
// runs *outside* it — concurrent requests are in flight simultaneously,
// like independent HTTP connections to one metered provider. With
// `sleep_for_latency` the modeled latency is actually slept (outside the
// lock), which makes parallel alignment overlap waiting exactly the way it
// would against a real remote endpoint.

#ifndef SOFYA_ENDPOINT_THROTTLED_ENDPOINT_H_
#define SOFYA_ENDPOINT_THROTTLED_ENDPOINT_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "endpoint/endpoint.h"
#include "util/random.h"

namespace sofya {

/// Limits and models applied by ThrottledEndpoint.
struct ThrottleOptions {
  /// Maximum number of queries before ResourceExhausted; kNoLimit = none.
  uint64_t query_budget = kNoLimit;

  /// Hard cap on rows per response; results are truncated to this many rows
  /// (mirrors e.g. DBpedia's public-endpoint result cap). 0 = no cap.
  uint64_t max_rows_per_query = 0;

  /// Simulated latency: per-query base cost plus per-returned-row cost.
  double base_latency_ms = 50.0;
  double per_row_latency_ms = 0.05;
  /// Uniform jitter in [0, jitter_ms) added per query (deterministic, from
  /// `seed`).
  double jitter_ms = 10.0;

  /// When true, each request actually sleeps its modeled latency (off the
  /// lock), so wall-clock behaves like a remote endpoint: sequential callers
  /// pay the sum, parallel callers overlap. Off by default — accounting-only
  /// latency keeps tests and benches fast.
  bool sleep_for_latency = false;

  /// Batch pipelining model: how many sub-queries of one SelectMany/AskMany
  /// batch share a single base-latency (+jitter) unit. Latency is charged
  /// per sub-query *wave*, never per batch call: with the default width of
  /// 1 every sub-query is its own wave, so a batched run's derived stats
  /// (latency, budget, rng stream) are identical to issuing the same
  /// queries sequentially — the regime cost comparisons assume. Width c > 1
  /// models a c-connection pipeline: a batch of k sub-queries costs
  /// ceil(k/c) base-latency units while the budget still meters all k
  /// requests (a provider meters requests, not sockets).
  size_t batch_wave_width = 1;

  /// Probability a query fails with Unavailable (drawn per attempt).
  double failure_rate = 0.0;

  /// Seed for jitter/failure draws; fixed seed => reproducible traces.
  uint64_t seed = 42;
};

/// Decorator enforcing ThrottleOptions on an inner endpoint.
class ThrottledEndpoint : public Endpoint {
 public:
  /// Wraps `inner` (not owned; must outlive this object).
  ThrottledEndpoint(Endpoint* inner, ThrottleOptions options)
      : inner_(inner), options_(options), rng_(options.seed) {}

  const std::string& name() const override { return inner_->name(); }

  const std::string& base_iri() const override { return inner_->base_iri(); }

  StatusOr<ResultSet> Select(const SelectQuery& query) override;

  /// Batch admission charges the budget and the failure model per
  /// *sub-query* (a remote provider meters requests, not batches) and
  /// latency per sub-query *wave* of `batch_wave_width` requests. Each
  /// sub-query carries its own status: once the budget runs out mid-batch,
  /// the remaining slots come back ResourceExhausted while every already
  /// admitted answer is delivered.
  SelectBatchResult SelectMany(std::span<const SelectQuery> queries) override;

  /// Forwards ASK to the inner endpoint so its early-exit evaluation
  /// survives the throttle. Charged as one query with base latency only
  /// (a boolean response ships no rows).
  StatusOr<bool> Ask(const SelectQuery& query) override;

  /// Batched ASK with the same wave admission/charging as SelectMany.
  AskBatchResult AskMany(std::span<const SelectQuery> queries) override;

  TermId EncodeTerm(const Term& term) override {
    return inner_->EncodeTerm(term);
  }
  TermId LookupTerm(const Term& term) const override {
    return inner_->LookupTerm(term);
  }
  StatusOr<Term> DecodeTerm(TermId id) const override {
    return inner_->DecodeTerm(id);
  }
  uint64_t data_epoch() const override { return inner_->data_epoch(); }

  /// This layer's own metering (queries admitted, failures injected,
  /// latency, rows after capping) composed with the server-side counters of
  /// the inner endpoint (probes, scans, bytes, nested cache hits). Composing
  /// live counters instead of mirroring per-call deltas is what keeps the
  /// numbers exact when many requests are in flight at once.
  EndpointStats stats() const override;

  /// Resets the whole stack beneath this decorator (so the composed
  /// snapshot starts from zero everywhere).
  void ResetStats() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      local_ = EndpointStats();
      queries_issued_ = 0;
    }
    inner_->ResetStats();
  }

  /// Queries consumed from the budget so far.
  uint64_t queries_issued() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queries_issued_;
  }

  /// Remaining budget (kNoLimit when unbounded).
  uint64_t remaining_budget() const {
    if (options_.query_budget == kNoLimit) return kNoLimit;
    std::lock_guard<std::mutex> lock(mu_);
    return options_.query_budget > queries_issued_
               ? options_.query_budget - queries_issued_
               : 0;
  }

 private:
  /// Budget/failure preamble shared by Select and Ask (under mu_). Returns
  /// non-OK when the request must not reach the inner endpoint.
  Status AdmitQuery();

  /// Latency accounting (and, optionally, the real sleep) for one request.
  void ChargeLatency(uint64_t rows);

  /// Runs one batch through per-sub-query admission and per-wave latency
  /// charging. `issue(i)` executes the already-admitted sub-query i against
  /// the inner endpoint, records its outcome, and returns the rows it
  /// shipped (or its error). `reject(i, status)` records a sub-query the
  /// admission gate turned away.
  void RunBatchWaves(size_t n,
                     const std::function<StatusOr<uint64_t>(size_t)>& issue,
                     const std::function<void(size_t, Status)>& reject);

  Endpoint* inner_;  // Not owned.
  ThrottleOptions options_;
  mutable std::mutex mu_;
  Rng rng_;                // Guarded by mu_.
  EndpointStats local_;    // This layer's own counters. Guarded by mu_.
  uint64_t queries_issued_ = 0;  // Guarded by mu_.
};

}  // namespace sofya

#endif  // SOFYA_ENDPOINT_THROTTLED_ENDPOINT_H_
