// ThrottledEndpoint: decorates another Endpoint with the operational limits
// real public SPARQL endpoints impose — query budgets, result-size caps,
// latency, and transient failures.
//
// The paper's motivation ("providers allow a limited number of queries …
// do not allow downloading the dataset") is made concrete and testable here:
// exceeding the budget yields ResourceExhausted, row caps silently truncate
// (like DBpedia's 10000-row cap), and failure injection exercises the
// samplers' error paths.

#ifndef SOFYA_ENDPOINT_THROTTLED_ENDPOINT_H_
#define SOFYA_ENDPOINT_THROTTLED_ENDPOINT_H_

#include <cstdint>
#include <string>

#include "endpoint/endpoint.h"
#include "util/random.h"

namespace sofya {

/// Limits and models applied by ThrottledEndpoint.
struct ThrottleOptions {
  /// Maximum number of queries before ResourceExhausted; kNoLimit = none.
  uint64_t query_budget = kNoLimit;

  /// Hard cap on rows per response; results are truncated to this many rows
  /// (mirrors e.g. DBpedia's public-endpoint result cap). 0 = no cap.
  uint64_t max_rows_per_query = 0;

  /// Simulated latency: per-query base cost plus per-returned-row cost.
  double base_latency_ms = 50.0;
  double per_row_latency_ms = 0.05;
  /// Uniform jitter in [0, jitter_ms) added per query (deterministic, from
  /// `seed`).
  double jitter_ms = 10.0;

  /// Probability a query fails with Unavailable (drawn per attempt).
  double failure_rate = 0.0;

  /// Seed for jitter/failure draws; fixed seed => reproducible traces.
  uint64_t seed = 42;
};

/// Decorator enforcing ThrottleOptions on an inner endpoint.
class ThrottledEndpoint : public Endpoint {
 public:
  /// Wraps `inner` (not owned; must outlive this object).
  ThrottledEndpoint(Endpoint* inner, ThrottleOptions options)
      : inner_(inner), options_(options), rng_(options.seed) {}

  const std::string& name() const override { return inner_->name(); }

  const std::string& base_iri() const override { return inner_->base_iri(); }

  StatusOr<ResultSet> Select(const SelectQuery& query) override;

  // SelectMany is inherited: the sequential default forwards each query
  // through this Select, so the budget, failure model and latency model are
  // charged per sub-query — a remote provider meters requests, not batches.

  /// Forwards ASK to the inner endpoint so its early-exit evaluation
  /// survives the throttle. Charged as one query with base latency only
  /// (a boolean response ships no rows).
  StatusOr<bool> Ask(const SelectQuery& query) override;

  TermId EncodeTerm(const Term& term) override {
    return inner_->EncodeTerm(term);
  }
  TermId LookupTerm(const Term& term) const override {
    return inner_->LookupTerm(term);
  }
  StatusOr<Term> DecodeTerm(TermId id) const override {
    return inner_->DecodeTerm(id);
  }

  const EndpointStats& stats() const override { return stats_; }
  void ResetStats() override {
    stats_ = EndpointStats();
    queries_issued_ = 0;
  }

  /// Queries consumed from the budget so far.
  uint64_t queries_issued() const { return queries_issued_; }

  /// Remaining budget (kNoLimit when unbounded).
  uint64_t remaining_budget() const {
    if (options_.query_budget == kNoLimit) return kNoLimit;
    return options_.query_budget > queries_issued_
               ? options_.query_budget - queries_issued_
               : 0;
  }

 private:
  Endpoint* inner_;  // Not owned.
  ThrottleOptions options_;
  Rng rng_;
  EndpointStats stats_;
  uint64_t queries_issued_ = 0;
};

}  // namespace sofya

#endif  // SOFYA_ENDPOINT_THROTTLED_ENDPOINT_H_
