#include "endpoint/caching_endpoint.h"

#include <utility>
#include <vector>

namespace sofya {

CachingEndpoint::Entry& CachingEndpoint::Touch(LruList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
  return *lru_.begin();
}

void CachingEndpoint::Insert(Entry entry) {
  lru_.push_front(std::move(entry));
  index_[lru_.front().key] = lru_.begin();
  while (index_.size() > options_.capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

std::string CachingEndpoint::AskKey(const SelectQuery& query) {
  SelectQuery normalized = query;
  normalized.Distinct(false).Limit(kNoLimit).Offset(0);
  return normalized.Fingerprint() + "#ask";
}

StatusOr<ResultSet> CachingEndpoint::Select(const SelectQuery& query) {
  std::string key = query.Fingerprint();
  auto it = index_.find(key);
  if (it != index_.end()) {
    ++hits_;
    return Touch(it->second).result;
  }
  ++misses_;
  SOFYA_ASSIGN_OR_RETURN(ResultSet result, inner_->Select(query));
  Insert(Entry{std::move(key), /*is_ask=*/false, result, false});
  return result;
}

StatusOr<std::vector<ResultSet>> CachingEndpoint::SelectMany(
    std::span<const SelectQuery> queries) {
  std::vector<ResultSet> results(queries.size());
  std::vector<std::string> keys(queries.size());
  std::vector<SelectQuery> missing;  // Unique misses only.
  std::unordered_map<std::string, size_t> missing_index;  // key -> missing[].
  std::vector<std::pair<size_t, size_t>> fill;  // (results[], missing[]).
  for (size_t i = 0; i < queries.size(); ++i) {
    keys[i] = queries[i].Fingerprint();
    auto it = index_.find(keys[i]);
    if (it != index_.end()) {
      ++hits_;
      results[i] = Touch(it->second).result;
      continue;
    }
    ++misses_;
    // Dedup duplicates within the batch here, client-side: decorator stacks
    // that decompose batches per query (throttle, retry) would otherwise
    // charge budget and latency for every repeat.
    auto [mit, inserted] = missing_index.emplace(keys[i], missing.size());
    if (inserted) missing.push_back(queries[i]);
    fill.emplace_back(i, mit->second);
  }
  if (missing.empty()) return results;

  SOFYA_ASSIGN_OR_RETURN(std::vector<ResultSet> fetched,
                         inner_->SelectMany(missing));
  for (const auto& [key, m] : missing_index) {
    Insert(Entry{key, /*is_ask=*/false, fetched[m], false});
  }
  for (const auto& [i, m] : fill) results[i] = fetched[m];
  return results;
}

StatusOr<bool> CachingEndpoint::Ask(const SelectQuery& query) {
  if (!options_.cache_asks) return inner_->Ask(query);
  std::string key = AskKey(query);
  auto it = index_.find(key);
  if (it != index_.end()) {
    ++hits_;
    return Touch(it->second).ask_result;
  }
  ++misses_;
  SOFYA_ASSIGN_OR_RETURN(bool result, inner_->Ask(query));
  Insert(Entry{std::move(key), /*is_ask=*/true, ResultSet{}, result});
  return result;
}

const EndpointStats& CachingEndpoint::stats() const {
  stats_snapshot_ = inner_->stats();
  // An inner decorator may carry its own cache counters; add, don't clobber.
  stats_snapshot_.cache_hits += hits_;
  stats_snapshot_.cache_misses += misses_;
  return stats_snapshot_;
}

void CachingEndpoint::Clear() {
  lru_.clear();
  index_.clear();
}

}  // namespace sofya
