#include "endpoint/caching_endpoint.h"

#include <algorithm>
#include <utility>

namespace sofya {

namespace {
/// Auto shard count: small caches keep one shard (exact global LRU order);
/// big caches trade that for 16-way lock striping, where each shard still
/// holds hundreds of entries and per-shard eviction behaves like LRU.
constexpr size_t kAutoShardThreshold = 1024;
constexpr size_t kAutoShards = 16;
}  // namespace

CachingEndpoint::CachingEndpoint(Endpoint* inner, CacheOptions options)
    : inner_(inner), options_(options) {
  seen_epoch_.store(inner->data_epoch(), std::memory_order_relaxed);
  size_t shards = options_.shards;
  if (shards == 0) {
    shards = options_.capacity >= kAutoShardThreshold ? kAutoShards : 1;
  }
  shards = std::max<size_t>(1, std::min(shards, options_.capacity));
  // Ceil division: the shard capacities must sum to >= the configured
  // capacity, or a full working set would thrash below its stated bound.
  shard_capacity_ = (options_.capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void CachingEndpoint::InvalidateIfStale() {
  const uint64_t current = inner_->data_epoch();
  uint64_t seen = seen_epoch_.load(std::memory_order_acquire);
  if (current == seen) return;
  // First thread to observe the flip claims the flush; late observers of
  // the same flip see seen == current and skip.
  if (seen_epoch_.compare_exchange_strong(seen, current,
                                          std::memory_order_acq_rel)) {
    Clear();
    epoch_invalidations_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool CachingEndpoint::LookupSelect(const std::string& key, ResultSet* out) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end() || it->second->is_ask) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  *out = shard.lru.front().result;  // Copy out while the shard is locked.
  return true;
}

bool CachingEndpoint::LookupAsk(const std::string& key, bool* out) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end() || !it->second->is_ask) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  *out = shard.lru.front().ask_result;
  return true;
}

void CachingEndpoint::Insert(Entry entry) {
  Shard& shard = ShardFor(entry.key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(entry.key);
  if (it != shard.index.end()) {
    // A concurrent miss on the same key beat us here; refresh in place.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    *shard.lru.begin() = std::move(entry);
    return;
  }
  shard.lru.push_front(std::move(entry));
  shard.index[shard.lru.front().key] = shard.lru.begin();
  while (shard.index.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

StatusOr<ResultSet> CachingEndpoint::Select(const SelectQuery& query) {
  InvalidateIfStale();
  std::string key = query.Fingerprint();
  ResultSet cached;
  if (LookupSelect(key, &cached)) return cached;
  SOFYA_ASSIGN_OR_RETURN(ResultSet result, inner_->Select(query));
  Insert(Entry{std::move(key), /*is_ask=*/false, result, false});
  return result;
}

SelectBatchResult CachingEndpoint::SelectMany(
    std::span<const SelectQuery> queries) {
  InvalidateIfStale();
  SelectBatchResult results = SelectBatchResult::Sized(queries.size());
  std::vector<SelectQuery> missing;  // Unique misses only.
  std::unordered_map<std::string, size_t> missing_index;  // key -> missing[].
  std::vector<std::pair<size_t, size_t>> fill;  // (results[], missing[]).
  for (size_t i = 0; i < queries.size(); ++i) {
    std::string key = queries[i].Fingerprint();
    if (LookupSelect(key, &results.values[i])) continue;
    // Dedup duplicates within the batch here, client-side: decorator stacks
    // that decompose batches per query (throttle, retry) would otherwise
    // charge budget and latency for every repeat.
    auto [mit, inserted] = missing_index.emplace(std::move(key), missing.size());
    if (inserted) missing.push_back(queries[i]);
    fill.emplace_back(i, mit->second);
  }
  if (missing.empty()) return results;

  SelectBatchResult fetched = inner_->SelectMany(missing);
  // Only successful answers enter the cache; a failed sub-query must stay
  // a miss so the next attempt goes through again.
  for (const auto& [key, m] : missing_index) {
    if (!fetched.statuses[m].ok()) continue;
    Insert(Entry{key, /*is_ask=*/false, fetched.values[m], false});
  }
  for (const auto& [i, m] : fill) {
    results.statuses[i] = fetched.statuses[m];
    results.values[i] = fetched.values[m];
  }
  return results;
}

StatusOr<bool> CachingEndpoint::Ask(const SelectQuery& query) {
  if (!options_.cache_asks) return inner_->Ask(query);
  InvalidateIfStale();
  std::string key = AskFingerprint(query);
  bool cached = false;
  if (LookupAsk(key, &cached)) return cached;
  SOFYA_ASSIGN_OR_RETURN(bool result, inner_->Ask(query));
  Insert(Entry{std::move(key), /*is_ask=*/true, ResultSet{}, result});
  return result;
}

AskBatchResult CachingEndpoint::AskMany(std::span<const SelectQuery> queries) {
  if (!options_.cache_asks) return inner_->AskMany(queries);
  InvalidateIfStale();
  AskBatchResult results = AskBatchResult::Sized(queries.size());
  std::vector<SelectQuery> missing;
  std::unordered_map<std::string, size_t> missing_index;
  std::vector<std::pair<size_t, size_t>> fill;
  for (size_t i = 0; i < queries.size(); ++i) {
    std::string key = AskFingerprint(queries[i]);
    bool cached = false;
    if (LookupAsk(key, &cached)) {
      results.values[i] = cached;
      continue;
    }
    auto [mit, inserted] = missing_index.emplace(std::move(key), missing.size());
    if (inserted) missing.push_back(queries[i]);
    fill.emplace_back(i, mit->second);
  }
  if (missing.empty()) return results;

  AskBatchResult fetched = inner_->AskMany(missing);
  for (const auto& [key, m] : missing_index) {
    if (!fetched.statuses[m].ok()) continue;
    Insert(Entry{key, /*is_ask=*/true, ResultSet{}, fetched.values[m]});
  }
  for (const auto& [i, m] : fill) {
    results.statuses[i] = fetched.statuses[m];
    results.values[i] = fetched.values[m];
  }
  return results;
}

EndpointStats CachingEndpoint::stats() const {
  EndpointStats stats = inner_->stats();
  // An inner decorator may carry its own cache counters; add, don't clobber.
  stats.cache_hits += hits();
  stats.cache_misses += misses();
  return stats;
}

size_t CachingEndpoint::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->index.size();
  }
  return total;
}

void CachingEndpoint::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace sofya
