#include "endpoint/http_sparql_endpoint.h"

#include <future>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/socket_transport.h"
#include "sparql/results_json.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace sofya {
namespace {

/// Parses a Retry-After header in its delta-seconds form into milliseconds;
/// negative when absent or in the (unsupported) HTTP-date form.
double ParseRetryAfterMs(const std::vector<HttpHeader>& headers) {
  const std::string* value = FindHeader(headers, "Retry-After");
  if (value == nullptr || value->empty()) return -1.0;
  uint64_t seconds = 0;
  for (char c : *value) {
    if (c < '0' || c > '9') return -1.0;  // HTTP-date form: ignore.
    seconds = seconds * 10 + static_cast<uint64_t>(c - '0');
    if (seconds > 86400) break;  // A day is hint enough.
  }
  return static_cast<double>(seconds) * 1000.0;
}

}  // namespace

StatusOr<std::unique_ptr<HttpSparqlEndpoint>> HttpSparqlEndpoint::Create(
    const std::string& url, HttpSparqlEndpointOptions options) {
  SOFYA_ASSIGN_OR_RETURN(ParsedUrl parsed, ParseUrl(url));
  SocketTransportOptions socket_options;
  socket_options.connect_timeout_ms = options.connect_timeout_ms;
  socket_options.io_timeout_ms = options.io_timeout_ms;
  auto transport = std::make_unique<SocketTransport>(socket_options);
  auto endpoint = std::make_unique<HttpSparqlEndpoint>(
      std::move(parsed), transport.get(), std::move(options));
  endpoint->owned_transport_ = std::move(transport);
  return endpoint;
}

HttpSparqlEndpoint::HttpSparqlEndpoint(ParsedUrl url,
                                       HttpTransport* transport,
                                       HttpSparqlEndpointOptions options)
    : options_(std::move(options)),
      client_(transport, std::move(url),
              HttpClientOptions{options_.max_connections,
                                options_.max_response_bytes}) {}

Status HttpSparqlEndpoint::MapHttpStatus(int code,
                                         const std::string& reason) {
  const std::string detail =
      StrFormat("http %d %s", code, reason.c_str());
  if (code == 200) return Status::OK();
  switch (code) {
    case 400: return Status::InvalidArgument("endpoint rejected query: " + detail);
    case 404: return Status::NotFound("no such endpoint: " + detail);
    case 401:
    case 403: return Status::InvalidArgument("endpoint denied access: " + detail);
    // The transient family: overload, rate limiting, gateway trouble,
    // timeouts. Mapping them to Unavailable is what lets RetryingEndpoint /
    // PagedSelect back off and re-issue.
    case 408:
    case 429:
    case 502:
    case 503:
    case 504: return Status::Unavailable("endpoint unavailable: " + detail);
    case 501: return Status::Unimplemented("endpoint feature missing: " + detail);
  }
  if (code >= 300 && code < 400) {
    // 301/302/307/308 are followed (same-origin) inside HttpClient; what
    // reaches this point is a non-redirect 3xx (300, 304, ...).
    return Status::InvalidArgument(
        "unexpected 3xx response; point at the final endpoint URL: " +
        detail);
  }
  if (code >= 500) return Status::Internal("endpoint error: " + detail);
  return Status::InvalidArgument("endpoint rejected request: " + detail);
}

StatusOr<std::string> HttpSparqlEndpoint::Fetch(
    const std::string& sparql_text) {
  HttpRequest request;
  request.headers = {
      {"Accept", "application/sparql-results+json"},
      {"User-Agent", options_.user_agent},
  };
  if (options_.use_get) {
    // GET binding: the query travels percent-encoded in the target. The
    // encode side here and the server's ParseQueryString decode side are
    // the same net/http.h codec, so they cannot drift.
    const std::string& base = client_.origin().target;
    request.method = "GET";
    request.target = base +
                     (base.find('?') == std::string::npos ? "?" : "&") +
                     "query=" + FormUrlEncode(sparql_text);
  } else {
    request.method = "POST";
    request.headers.push_back(
        {"Content-Type", "application/sparql-query"});
    request.body = sparql_text;
  }

  WallTimer timer;
  auto response = client_.RoundTrip(request);
  const double elapsed_ms = timer.ElapsedMillis();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.queries;
    // Measured (not modeled) wall time for the exchange; the field keeps
    // its name so cost reports aggregate local and remote stacks alike.
    stats_.simulated_latency_ms += elapsed_ms;
    if (response.ok()) {
      stats_.bytes_estimated += response->body.size();
    } else {
      ++stats_.failures_injected;  // Transport-level failure.
    }
  }
  if (!response.ok()) {
    // Timeouts (DeadlineExceeded) and connection failures are transient
    // from the client's perspective: surface everything as Unavailable so
    // the retry machinery engages.
    if (response.status().IsDeadlineExceeded() ||
        response.status().IsUnavailable()) {
      return Status::Unavailable(response.status().message())
          .WithContext("sparql http");
    }
    return response.status().WithContext("sparql http");
  }
  const Status mapped =
      MapHttpStatus(response->status_code, response->reason);
  if (!mapped.ok()) {
    if (mapped.IsUnavailable()) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.failures_injected;
    }
    // A Retry-After hint rides the Status so the retry policy can honor
    // the server's own pacing (RetryOptions::honor_retry_after).
    const double retry_after_ms = ParseRetryAfterMs(response->headers);
    if (retry_after_ms >= 0.0) {
      return mapped.WithRetryAfterMs(retry_after_ms);
    }
    return mapped;
  }
  return std::move(response->body);
}

StatusOr<ResultSet> HttpSparqlEndpoint::Select(const SelectQuery& query) {
  SOFYA_RETURN_IF_ERROR(query.Validate());
  SOFYA_ASSIGN_OR_RETURN(std::string body, Fetch(query.ToSparql(dict_)));
  auto results = ParseSparqlResultsJson(
      body, [this](const Term& term) { return dict_.Intern(term); });
  if (!results.ok()) {
    return results.status().WithContext("endpoint " + options_.name);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.rows_returned += results->rows.size();
  }
  return results;
}

StatusOr<bool> HttpSparqlEndpoint::Ask(const SelectQuery& query) {
  SOFYA_RETURN_IF_ERROR(query.Validate());
  SOFYA_ASSIGN_OR_RETURN(std::string body, Fetch(query.ToSparqlAsk(dict_)));
  auto result = ParseSparqlAskJson(body);
  if (!result.ok()) {
    return result.status().WithContext("endpoint " + options_.name);
  }
  return result;
}

ThreadPool& HttpSparqlEndpoint::pool() {
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<ThreadPool>(options_.max_connections);
  });
  return *pool_;
}

SelectBatchResult HttpSparqlEndpoint::SelectMany(
    std::span<const SelectQuery> queries) {
  // A batch is one request envelope (the LocalEndpoint contract): identical
  // queries inside it go over the wire once and duplicates share the first
  // occurrence's outcome, failures included. `wire[i]` is the slot a
  // sub-query's bytes actually travel for, or the twin it copies from.
  std::unordered_map<std::string, size_t> first_occurrence;
  first_occurrence.reserve(queries.size());
  std::vector<size_t> wire(queries.size());
  std::vector<size_t> unique_slots;
  unique_slots.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto [it, inserted] = first_occurrence.emplace(queries[i].Fingerprint(), i);
    wire[i] = it->second;
    if (inserted) unique_slots.push_back(i);
  }

  SelectBatchResult batch = SelectBatchResult::Sized(queries.size());
  if (unique_slots.size() <= 1 || options_.max_connections <= 1) {
    for (size_t slot : unique_slots) batch.Set(slot, Select(queries[slot]));
  } else {
    // Fan the deduped batch out over the pool; the HttpClient's bounded
    // connection pool turns the fan-out into HTTP-level pipelining over at
    // most max_connections sockets. Each sub-query keeps its own outcome: a
    // dead connection fails exactly the sub-queries that were in flight on
    // it, and the answers pipelined over the healthy sockets are delivered —
    // a recovery layer above re-buys only the casualties.
    std::vector<std::future<StatusOr<ResultSet>>> futures;
    futures.reserve(unique_slots.size());
    for (size_t slot : unique_slots) {
      futures.push_back(pool().Submit(
          [this, query = &queries[slot]] { return Select(*query); }));
    }
    for (size_t i = 0; i < unique_slots.size(); ++i) {
      batch.Set(unique_slots[i], futures[i].get());
    }
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    if (wire[i] != i) batch.CopySlot(wire[i], i);
  }
  return batch;
}

AskBatchResult HttpSparqlEndpoint::AskMany(
    std::span<const SelectQuery> queries) {
  // Same envelope dedup as SelectMany, keyed by the normalized
  // AskFingerprint (existence ignores solution modifiers).
  std::unordered_map<std::string, size_t> first_occurrence;
  first_occurrence.reserve(queries.size());
  std::vector<size_t> wire(queries.size());
  std::vector<size_t> unique_slots;
  unique_slots.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto [it, inserted] =
        first_occurrence.emplace(AskFingerprint(queries[i]), i);
    wire[i] = it->second;
    if (inserted) unique_slots.push_back(i);
  }

  AskBatchResult batch = AskBatchResult::Sized(queries.size());
  if (unique_slots.size() <= 1 || options_.max_connections <= 1) {
    for (size_t slot : unique_slots) batch.Set(slot, Ask(queries[slot]));
  } else {
    std::vector<std::future<StatusOr<bool>>> futures;
    futures.reserve(unique_slots.size());
    for (size_t slot : unique_slots) {
      futures.push_back(
          pool().Submit([this, query = &queries[slot]] { return Ask(*query); }));
    }
    for (size_t i = 0; i < unique_slots.size(); ++i) {
      batch.Set(unique_slots[i], futures[i].get());
    }
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    if (wire[i] != i) batch.CopySlot(wire[i], i);
  }
  return batch;
}

}  // namespace sofya
