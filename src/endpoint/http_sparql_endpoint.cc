#include "endpoint/http_sparql_endpoint.h"

#include <future>
#include <utility>

#include "net/socket_transport.h"
#include "sparql/results_json.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace sofya {

StatusOr<std::unique_ptr<HttpSparqlEndpoint>> HttpSparqlEndpoint::Create(
    const std::string& url, HttpSparqlEndpointOptions options) {
  SOFYA_ASSIGN_OR_RETURN(ParsedUrl parsed, ParseUrl(url));
  SocketTransportOptions socket_options;
  socket_options.connect_timeout_ms = options.connect_timeout_ms;
  socket_options.io_timeout_ms = options.io_timeout_ms;
  auto transport = std::make_unique<SocketTransport>(socket_options);
  auto endpoint = std::make_unique<HttpSparqlEndpoint>(
      std::move(parsed), transport.get(), std::move(options));
  endpoint->owned_transport_ = std::move(transport);
  return endpoint;
}

HttpSparqlEndpoint::HttpSparqlEndpoint(ParsedUrl url,
                                       HttpTransport* transport,
                                       HttpSparqlEndpointOptions options)
    : options_(std::move(options)),
      client_(transport, std::move(url),
              HttpClientOptions{options_.max_connections,
                                options_.max_response_bytes}) {}

Status HttpSparqlEndpoint::MapHttpStatus(int code,
                                         const std::string& reason) {
  const std::string detail =
      StrFormat("http %d %s", code, reason.c_str());
  if (code == 200) return Status::OK();
  switch (code) {
    case 400: return Status::InvalidArgument("endpoint rejected query: " + detail);
    case 404: return Status::NotFound("no such endpoint: " + detail);
    case 401:
    case 403: return Status::InvalidArgument("endpoint denied access: " + detail);
    // The transient family: overload, rate limiting, gateway trouble,
    // timeouts. Mapping them to Unavailable is what lets RetryingEndpoint /
    // PagedSelect back off and re-issue.
    case 408:
    case 429:
    case 502:
    case 503:
    case 504: return Status::Unavailable("endpoint unavailable: " + detail);
    case 501: return Status::Unimplemented("endpoint feature missing: " + detail);
  }
  if (code >= 300 && code < 400) {
    // 301/302/307/308 are followed (same-origin) inside HttpClient; what
    // reaches this point is a non-redirect 3xx (300, 304, ...).
    return Status::InvalidArgument(
        "unexpected 3xx response; point at the final endpoint URL: " +
        detail);
  }
  if (code >= 500) return Status::Internal("endpoint error: " + detail);
  return Status::InvalidArgument("endpoint rejected request: " + detail);
}

StatusOr<std::string> HttpSparqlEndpoint::Fetch(
    const std::string& sparql_text) {
  HttpRequest request;
  request.method = "POST";
  request.headers = {
      {"Accept", "application/sparql-results+json"},
      {"Content-Type", "application/sparql-query"},
      {"User-Agent", options_.user_agent},
  };
  request.body = sparql_text;

  WallTimer timer;
  auto response = client_.RoundTrip(request);
  const double elapsed_ms = timer.ElapsedMillis();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.queries;
    // Measured (not modeled) wall time for the exchange; the field keeps
    // its name so cost reports aggregate local and remote stacks alike.
    stats_.simulated_latency_ms += elapsed_ms;
    if (response.ok()) {
      stats_.bytes_estimated += response->body.size();
    } else {
      ++stats_.failures_injected;  // Transport-level failure.
    }
  }
  if (!response.ok()) {
    // Timeouts (DeadlineExceeded) and connection failures are transient
    // from the client's perspective: surface everything as Unavailable so
    // the retry machinery engages.
    if (response.status().IsDeadlineExceeded() ||
        response.status().IsUnavailable()) {
      return Status::Unavailable(response.status().message())
          .WithContext("sparql http");
    }
    return response.status().WithContext("sparql http");
  }
  const Status mapped =
      MapHttpStatus(response->status_code, response->reason);
  if (!mapped.ok()) {
    if (mapped.IsUnavailable()) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.failures_injected;
    }
    return mapped;
  }
  return std::move(response->body);
}

StatusOr<ResultSet> HttpSparqlEndpoint::Select(const SelectQuery& query) {
  SOFYA_RETURN_IF_ERROR(query.Validate());
  SOFYA_ASSIGN_OR_RETURN(std::string body, Fetch(query.ToSparql(dict_)));
  auto results = ParseSparqlResultsJson(
      body, [this](const Term& term) { return dict_.Intern(term); });
  if (!results.ok()) {
    return results.status().WithContext("endpoint " + options_.name);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.rows_returned += results->rows.size();
  }
  return results;
}

StatusOr<bool> HttpSparqlEndpoint::Ask(const SelectQuery& query) {
  SOFYA_RETURN_IF_ERROR(query.Validate());
  SOFYA_ASSIGN_OR_RETURN(std::string body, Fetch(query.ToSparqlAsk(dict_)));
  auto result = ParseSparqlAskJson(body);
  if (!result.ok()) {
    return result.status().WithContext("endpoint " + options_.name);
  }
  return result;
}

ThreadPool& HttpSparqlEndpoint::pool() {
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<ThreadPool>(options_.max_connections);
  });
  return *pool_;
}

SelectBatchResult HttpSparqlEndpoint::SelectMany(
    std::span<const SelectQuery> queries) {
  if (queries.size() <= 1 || options_.max_connections <= 1) {
    return Endpoint::SelectMany(queries);  // Sequential default.
  }
  // Fan the batch out over the pool; the HttpClient's bounded connection
  // pool turns the fan-out into HTTP-level pipelining over at most
  // max_connections sockets. Each sub-query keeps its own outcome: a dead
  // connection fails exactly the sub-queries that were in flight on it,
  // and the answers pipelined over the healthy sockets are delivered — a
  // recovery layer above re-buys only the casualties.
  std::vector<std::future<StatusOr<ResultSet>>> futures;
  futures.reserve(queries.size());
  for (const SelectQuery& query : queries) {
    futures.push_back(
        pool().Submit([this, &query] { return Select(query); }));
  }
  SelectBatchResult batch = SelectBatchResult::Sized(queries.size());
  for (size_t i = 0; i < futures.size(); ++i) {
    batch.Set(i, futures[i].get());
  }
  return batch;
}

AskBatchResult HttpSparqlEndpoint::AskMany(
    std::span<const SelectQuery> queries) {
  if (queries.size() <= 1 || options_.max_connections <= 1) {
    return Endpoint::AskMany(queries);
  }
  std::vector<std::future<StatusOr<bool>>> futures;
  futures.reserve(queries.size());
  for (const SelectQuery& query : queries) {
    futures.push_back(pool().Submit([this, &query] { return Ask(query); }));
  }
  AskBatchResult batch = AskBatchResult::Sized(queries.size());
  for (size_t i = 0; i < futures.size(); ++i) {
    batch.Set(i, futures[i].get());
  }
  return batch;
}

}  // namespace sofya
