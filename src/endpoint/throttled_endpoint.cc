#include "endpoint/throttled_endpoint.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/string_util.h"

namespace sofya {

Status ThrottledEndpoint::AdmitQuery() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.query_budget != kNoLimit &&
      queries_issued_ >= options_.query_budget) {
    return Status::ResourceExhausted(
        StrFormat("query budget of %llu exhausted on endpoint '%s'",
                  static_cast<unsigned long long>(options_.query_budget),
                  name().c_str()));
  }
  ++queries_issued_;
  ++local_.queries;

  // Failure injection happens before any server work, like a dropped
  // connection. The budget is still charged (the request was made).
  if (options_.failure_rate > 0.0 && rng_.Bernoulli(options_.failure_rate)) {
    ++local_.failures_injected;
    local_.simulated_latency_ms += options_.base_latency_ms;
    return Status::Unavailable(
        StrFormat("injected endpoint failure on '%s'", name().c_str()));
  }
  return Status::OK();
}

void ThrottledEndpoint::ChargeLatency(uint64_t rows) {
  double latency = options_.base_latency_ms +
                   options_.per_row_latency_ms * static_cast<double>(rows);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.jitter_ms > 0.0) {
      latency += rng_.NextDouble() * options_.jitter_ms;
    }
    local_.rows_returned += rows;
    local_.simulated_latency_ms += latency;
  }
  if (options_.sleep_for_latency) {
    // The modeled wire time, slept off the lock: concurrent requests
    // overlap their waits, exactly like independent remote connections.
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        latency));
  }
}

StatusOr<ResultSet> ThrottledEndpoint::Select(const SelectQuery& query) {
  SOFYA_RETURN_IF_ERROR(AdmitQuery());

  // Apply the row cap by tightening LIMIT before the server sees the query
  // (equivalent to server-side truncation, but cheaper to simulate).
  SelectQuery capped = query;
  if (options_.max_rows_per_query > 0 &&
      (query.limit() == kNoLimit ||
       query.limit() > options_.max_rows_per_query)) {
    capped.Limit(options_.max_rows_per_query);
  }

  auto result = inner_->Select(capped);
  if (!result.ok()) return result.status();

  ChargeLatency(result->rows.size());
  return result;
}

StatusOr<bool> ThrottledEndpoint::Ask(const SelectQuery& query) {
  SOFYA_RETURN_IF_ERROR(AdmitQuery());

  auto result = inner_->Ask(query);
  if (!result.ok()) return result.status();

  ChargeLatency(/*rows=*/0);  // Boolean response: no rows.
  return result;
}

void ThrottledEndpoint::RunBatchWaves(
    size_t n, const std::function<StatusOr<uint64_t>(size_t)>& issue,
    const std::function<void(size_t, Status)>& reject) {
  const size_t width = std::max<size_t>(1, options_.batch_wave_width);
  for (size_t start = 0; start < n; start += width) {
    const size_t end = std::min(n, start + width);
    // Admission is per sub-query: budget and failure injection meter every
    // request of the wave individually, exactly like sequential issue.
    uint64_t wave_rows = 0;
    bool wave_reached_server = false;
    for (size_t i = start; i < end; ++i) {
      Status admitted = AdmitQuery();
      if (!admitted.ok()) {
        reject(i, std::move(admitted));
        continue;
      }
      auto rows = issue(i);
      if (!rows.ok()) continue;  // issue() recorded the slot's error.
      wave_rows += *rows;
      wave_reached_server = true;
    }
    // One base-latency (+jitter) unit per wave that produced an answer,
    // plus the per-row cost of everything the wave shipped. Never a
    // per-batch-call charge: with width 1 this is bit-identical (counters
    // AND rng stream) to issuing the sub-queries sequentially.
    if (wave_reached_server) ChargeLatency(wave_rows);
  }
}

SelectBatchResult ThrottledEndpoint::SelectMany(
    std::span<const SelectQuery> queries) {
  SelectBatchResult batch = SelectBatchResult::Sized(queries.size());
  RunBatchWaves(
      queries.size(),
      [&](size_t i) -> StatusOr<uint64_t> {
        SelectQuery capped = queries[i];
        if (options_.max_rows_per_query > 0 &&
            (capped.limit() == kNoLimit ||
             capped.limit() > options_.max_rows_per_query)) {
          capped.Limit(options_.max_rows_per_query);
        }
        auto result = inner_->Select(capped);
        if (!result.ok()) {
          batch.statuses[i] = result.status();
          return result.status();
        }
        const uint64_t rows = result->rows.size();
        batch.values[i] = std::move(*result);
        return rows;
      },
      [&](size_t i, Status status) {
        batch.statuses[i] = std::move(status);
      });
  return batch;
}

AskBatchResult ThrottledEndpoint::AskMany(std::span<const SelectQuery> queries) {
  AskBatchResult batch = AskBatchResult::Sized(queries.size());
  RunBatchWaves(
      queries.size(),
      [&](size_t i) -> StatusOr<uint64_t> {
        auto result = inner_->Ask(queries[i]);
        if (!result.ok()) {
          batch.statuses[i] = result.status();
          return result.status();
        }
        batch.values[i] = *result;
        return uint64_t{0};  // Boolean response: no rows.
      },
      [&](size_t i, Status status) {
        batch.statuses[i] = std::move(status);
      });
  return batch;
}

EndpointStats ThrottledEndpoint::stats() const {
  const EndpointStats inner = inner_->stats();
  std::lock_guard<std::mutex> lock(mu_);
  EndpointStats stats = local_;
  // Server-side work is reported by the server, not re-derived from per-call
  // deltas (which tear under concurrency).
  stats.index_probes = inner.index_probes;
  stats.triples_scanned = inner.triples_scanned;
  stats.bytes_estimated = inner.bytes_estimated;
  stats.cache_hits = inner.cache_hits;
  stats.cache_misses = inner.cache_misses;
  return stats;
}

}  // namespace sofya
