#include "endpoint/throttled_endpoint.h"

#include "util/string_util.h"

namespace sofya {

namespace {

/// Budget/failure preamble shared by Select and Ask. Returns non-OK when the
/// request must not reach the inner endpoint.
Status AdmitQuery(const ThrottleOptions& options, const std::string& name,
                  uint64_t* queries_issued, Rng* rng, EndpointStats* stats) {
  if (options.query_budget != kNoLimit &&
      *queries_issued >= options.query_budget) {
    return Status::ResourceExhausted(
        StrFormat("query budget of %llu exhausted on endpoint '%s'",
                  static_cast<unsigned long long>(options.query_budget),
                  name.c_str()));
  }
  ++*queries_issued;
  ++stats->queries;

  // Failure injection happens before any server work, like a dropped
  // connection. The budget is still charged (the request was made).
  if (options.failure_rate > 0.0 && rng->Bernoulli(options.failure_rate)) {
    ++stats->failures_injected;
    stats->simulated_latency_ms += options.base_latency_ms;
    return Status::Unavailable(
        StrFormat("injected endpoint failure on '%s'", name.c_str()));
  }
  return Status::OK();
}

}  // namespace

StatusOr<ResultSet> ThrottledEndpoint::Select(const SelectQuery& query) {
  SOFYA_RETURN_IF_ERROR(
      AdmitQuery(options_, name(), &queries_issued_, &rng_, &stats_));

  // Apply the row cap by tightening LIMIT before the server sees the query
  // (equivalent to server-side truncation, but cheaper to simulate).
  SelectQuery capped = query;
  if (options_.max_rows_per_query > 0 &&
      (query.limit() == kNoLimit ||
       query.limit() > options_.max_rows_per_query)) {
    capped.Limit(options_.max_rows_per_query);
  }

  const EndpointStats before = inner_->stats();
  auto result = inner_->Select(capped);
  const EndpointStats after = inner_->stats();

  stats_.index_probes += after.index_probes - before.index_probes;
  stats_.triples_scanned += after.triples_scanned - before.triples_scanned;
  if (!result.ok()) return result.status();

  stats_.rows_returned += result->rows.size();
  stats_.bytes_estimated += after.bytes_estimated - before.bytes_estimated;

  double latency = options_.base_latency_ms +
                   options_.per_row_latency_ms *
                       static_cast<double>(result->rows.size());
  if (options_.jitter_ms > 0.0) {
    latency += rng_.NextDouble() * options_.jitter_ms;
  }
  stats_.simulated_latency_ms += latency;
  return result;
}

StatusOr<bool> ThrottledEndpoint::Ask(const SelectQuery& query) {
  SOFYA_RETURN_IF_ERROR(
      AdmitQuery(options_, name(), &queries_issued_, &rng_, &stats_));

  const EndpointStats before = inner_->stats();
  auto result = inner_->Ask(query);
  const EndpointStats after = inner_->stats();

  stats_.index_probes += after.index_probes - before.index_probes;
  stats_.triples_scanned += after.triples_scanned - before.triples_scanned;
  stats_.bytes_estimated += after.bytes_estimated - before.bytes_estimated;
  if (!result.ok()) return result.status();

  double latency = options_.base_latency_ms;  // Boolean response: no rows.
  if (options_.jitter_ms > 0.0) {
    latency += rng_.NextDouble() * options_.jitter_ms;
  }
  stats_.simulated_latency_ms += latency;
  return result;
}

}  // namespace sofya
