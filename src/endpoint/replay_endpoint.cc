#include "endpoint/replay_endpoint.h"

#include <utility>

namespace sofya {
namespace {

std::string DedupKey(CassetteEntryKind kind, const std::string& key) {
  return std::to_string(static_cast<int>(kind)) + "|" + key;
}

}  // namespace

ReplayEndpoint::ReplayEndpoint(Cassette cassette, Endpoint* fallback)
    : name_(std::move(cassette.endpoint_name)),
      base_iri_(std::move(cassette.base_iri)),
      data_epoch_(cassette.data_epoch),
      fallback_(fallback),
      entries_(std::move(cassette.entries)) {
  index_.reserve(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    // First occurrence wins (LoadCassette already rejects duplicates; this
    // only matters for hand-built in-memory cassettes).
    index_.emplace(DedupKey(entries_[i].kind, entries_[i].key), i);
  }
}

StatusOr<std::unique_ptr<ReplayEndpoint>> ReplayEndpoint::Open(
    const std::string& path, Endpoint* fallback) {
  SOFYA_ASSIGN_OR_RETURN(Cassette cassette, LoadCassette(path));
  return std::make_unique<ReplayEndpoint>(std::move(cassette), fallback);
}

ResultSet ReplayEndpoint::MaterializeResult(const CassetteEntry& entry) const {
  ResultSet result;
  result.var_names = entry.var_names;
  result.rows.reserve(entry.rows.size());
  for (const auto& cells : entry.rows) {
    std::vector<TermId> row(cells.size(), kNullTermId);
    for (size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].bound) row[i] = dict_.Intern(cells[i].term);
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

void ReplayEndpoint::Append(CassetteEntry entry) const {
  std::string dedup = DedupKey(entry.kind, entry.key);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(dedup);
  if (it != index_.end()) {
    // Another thread fell through on the same key first; its outcome is
    // the recorded one.
    served_.insert(it->second);
    return;
  }
  index_.emplace(std::move(dedup), entries_.size());
  served_.insert(entries_.size());
  entries_.push_back(std::move(entry));
  ++appended_;
}

StatusOr<ResultSet> ReplayEndpoint::ServeSelect(const SelectQuery& query) {
  const std::string key = CanonicalSelectKey(*this, query);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
    auto it = index_.find(DedupKey(CassetteEntryKind::kSelect, key));
    if (it != index_.end()) {
      const CassetteEntry& entry = entries_[it->second];
      served_.insert(it->second);
      Status status = entry.ToStatus();
      if (!status.ok()) return status;
      ResultSet result = MaterializeResult(entry);
      stats_.rows_returned += result.rows.size();
      return result;
    }
    if (fallback_ == nullptr) {
      ++strict_misses_;
      return Status::NotFound("replay cassette has no entry for query: " + key);
    }
  }

  // Lenient fall-through: the query's constants live in *our* dictionary;
  // re-encode them into the fallback's id space before forwarding.
  SOFYA_ASSIGN_OR_RETURN(SelectQuery translated,
                         TranslateQuery(query, *this, *fallback_));
  StatusOr<ResultSet> result = fallback_->Select(translated);

  CassetteEntry entry;
  entry.kind = CassetteEntryKind::kSelect;
  entry.key = key;
  entry.SetStatus(result.status());
  if (result.ok()) {
    entry.var_names = result->var_names;
    entry.rows.reserve(result->rows.size());
    for (const auto& row : result->rows) {
      std::vector<CassetteCell> cells(row.size());
      for (size_t i = 0; i < row.size(); ++i) {
        if (row[i] == kNullTermId) continue;
        StatusOr<Term> term = fallback_->DecodeTerm(row[i]);
        if (term.ok()) {
          cells[i].bound = true;
          cells[i].term = std::move(term).value();
        }
      }
      entry.rows.push_back(std::move(cells));
    }
  }
  const bool ok = result.ok();
  Append(std::move(entry));
  if (!ok) return result.status();
  // Serve from the appended entry's surface forms so the caller gets ids
  // in our space, exactly as a future replay of the extended cassette will.
  CassetteEntry materialized;
  {
    std::lock_guard<std::mutex> lock(mu_);
    materialized = entries_[index_.at(DedupKey(CassetteEntryKind::kSelect, key))];
    stats_.rows_returned += materialized.rows.size();
  }
  if (!materialized.ToStatus().ok()) return materialized.ToStatus();
  return MaterializeResult(materialized);
}

StatusOr<bool> ReplayEndpoint::ServeAsk(const SelectQuery& query) {
  const std::string key = CanonicalAskKey(*this, query);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
    auto it = index_.find(DedupKey(CassetteEntryKind::kAsk, key));
    if (it != index_.end()) {
      const CassetteEntry& entry = entries_[it->second];
      served_.insert(it->second);
      Status status = entry.ToStatus();
      if (!status.ok()) return status;
      return entry.ask_value;
    }
    if (fallback_ == nullptr) {
      ++strict_misses_;
      return Status::NotFound("replay cassette has no entry for ask: " + key);
    }
  }

  SOFYA_ASSIGN_OR_RETURN(SelectQuery translated,
                         TranslateQuery(query, *this, *fallback_));
  StatusOr<bool> result = fallback_->Ask(translated);

  CassetteEntry entry;
  entry.kind = CassetteEntryKind::kAsk;
  entry.key = key;
  entry.SetStatus(result.status());
  entry.ask_value = result.ok() && result.value();
  Append(std::move(entry));
  return result;
}

StatusOr<ResultSet> ReplayEndpoint::Select(const SelectQuery& query) {
  return ServeSelect(query);
}

SelectBatchResult ReplayEndpoint::SelectMany(
    std::span<const SelectQuery> queries) {
  // Per-slot serve: each slot keeps its own recorded status, so a batch
  // with one recorded failure round-trips slot-for-slot.
  SelectBatchResult batch = SelectBatchResult::Sized(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    batch.Set(i, ServeSelect(queries[i]));
  }
  return batch;
}

StatusOr<bool> ReplayEndpoint::Ask(const SelectQuery& query) {
  return ServeAsk(query);
}

AskBatchResult ReplayEndpoint::AskMany(std::span<const SelectQuery> queries) {
  AskBatchResult batch = AskBatchResult::Sized(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    batch.Set(i, ServeAsk(queries[i]));
  }
  return batch;
}

TermId ReplayEndpoint::LookupTerm(const Term& term) const {
  const std::string key = CanonicalLookupKey(term);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(DedupKey(CassetteEntryKind::kLookup, key));
    if (it != index_.end()) {
      served_.insert(it->second);
      return entries_[it->second].lookup_known ? dict_.Intern(term)
                                               : kNullTermId;
    }
    if (fallback_ == nullptr) {
      // Unrecorded membership probe: conservatively unknown (the pipeline
      // skips such terms, exactly as against a dataset without them).
      ++strict_misses_;
      return kNullTermId;
    }
  }

  const TermId fallback_id = fallback_->LookupTerm(term);
  CassetteEntry entry;
  entry.kind = CassetteEntryKind::kLookup;
  entry.key = key;
  entry.lookup_known = fallback_id != kNullTermId;
  const bool known = entry.lookup_known;
  Append(std::move(entry));
  return known ? dict_.Intern(term) : kNullTermId;
}

EndpointStats ReplayEndpoint::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ReplayEndpoint::ResetStats() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = EndpointStats();
  }
  if (fallback_ != nullptr) fallback_->ResetStats();
}

CassetteDigest ReplayEndpoint::digest() const {
  CassetteDigest digest;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t idx : served_) {
    digest.Add(CassetteEntryHash(entries_[idx]));
  }
  return digest;
}

Cassette ReplayEndpoint::Snapshot() const {
  Cassette cassette;
  cassette.endpoint_name = name_;
  cassette.base_iri = base_iri_;
  cassette.data_epoch = data_epoch_;
  std::lock_guard<std::mutex> lock(mu_);
  cassette.entries = entries_;
  return cassette;
}

Status ReplayEndpoint::Save(const std::string& path) const {
  return SaveCassette(Snapshot(), path);
}

}  // namespace sofya
