#include "endpoint/paged_select.h"

#include <algorithm>

namespace sofya {

StatusOr<ResultSet> PagedSelect(Endpoint* endpoint, const SelectQuery& query,
                                const PagedSelectOptions& options) {
  if (options.page_size == 0) {
    return Status::InvalidArgument("page_size must be positive");
  }
  uint64_t total_cap = options.max_rows;
  if (query.limit() != kNoLimit) {
    total_cap = std::min(total_cap, query.limit());
  }

  ResultSet merged;
  uint64_t offset = query.offset();
  bool first_page = true;

  while (true) {
    const uint64_t remaining =
        total_cap == kNoLimit ? kNoLimit : total_cap - merged.rows.size();
    if (remaining == 0) break;
    const uint64_t page_limit = std::min<uint64_t>(options.page_size, remaining);

    SelectQuery page = query;
    page.Offset(offset).Limit(page_limit);

    StatusOr<ResultSet> result = Status::Internal("unreached");
    int attempts = 0;
    while (true) {
      result = endpoint->Select(page);
      if (result.ok()) break;
      if (!result.status().IsUnavailable() ||
          attempts >= options.max_retries_per_page) {
        return result.status().WithContext("paged select");
      }
      ++attempts;  // Retry transient failures.
    }

    if (first_page) {
      merged.var_names = result->var_names;
      first_page = false;
    }
    for (auto& row : result->rows) merged.rows.push_back(std::move(row));

    if (result->rows.size() < page_limit) break;  // Short page: exhausted.
    offset += page_limit;
  }
  return merged;
}

StatusOr<std::vector<ResultSet>> BatchedPagedSelect(
    Endpoint* endpoint, std::span<const SelectQuery> queries,
    const PagedSelectOptions& options) {
  if (options.page_size == 0) {
    return Status::InvalidArgument("page_size must be positive");
  }

  // Per-query total row cap: the tighter of max_rows and the query's LIMIT.
  std::vector<uint64_t> caps;
  caps.reserve(queries.size());
  std::vector<SelectQuery> first_pages;
  first_pages.reserve(queries.size());
  for (const SelectQuery& query : queries) {
    uint64_t cap = options.max_rows;
    if (query.limit() != kNoLimit) cap = std::min(cap, query.limit());
    caps.push_back(cap);
    SelectQuery page = query;
    page.Limit(std::min<uint64_t>(options.page_size, cap));
    first_pages.push_back(std::move(page));
  }

  SOFYA_ASSIGN_OR_RETURN(std::vector<ResultSet> results,
                         endpoint->SelectMany(first_pages));

  // Page out the stragglers whose first page filled completely.
  for (size_t i = 0; i < queries.size(); ++i) {
    const uint64_t page_limit = std::min<uint64_t>(options.page_size, caps[i]);
    const bool maybe_more =
        page_limit > 0 && results[i].rows.size() == page_limit &&
        (caps[i] == kNoLimit || caps[i] > page_limit);
    if (!maybe_more) continue;
    SelectQuery rest = queries[i];
    rest.Offset(queries[i].offset() + page_limit);
    rest.Limit(caps[i] == kNoLimit ? kNoLimit : caps[i] - page_limit);
    PagedSelectOptions rest_options = options;
    if (options.max_rows != kNoLimit) {
      rest_options.max_rows = options.max_rows - results[i].rows.size();
    }
    SOFYA_ASSIGN_OR_RETURN(ResultSet more,
                           PagedSelect(endpoint, rest, rest_options));
    for (auto& row : more.rows) results[i].rows.push_back(std::move(row));
  }
  return results;
}

}  // namespace sofya
