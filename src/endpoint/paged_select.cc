#include "endpoint/paged_select.h"

#include <algorithm>

namespace sofya {

StatusOr<ResultSet> PagedSelect(Endpoint* endpoint, const SelectQuery& query,
                                const PagedSelectOptions& options) {
  if (options.page_size == 0) {
    return Status::InvalidArgument("page_size must be positive");
  }
  uint64_t total_cap = options.max_rows;
  if (query.limit() != kNoLimit) {
    total_cap = std::min(total_cap, query.limit());
  }

  ResultSet merged;
  uint64_t offset = query.offset();
  bool first_page = true;

  while (true) {
    // Clamped: a server that over-delivered must not wrap this subtraction
    // into a huge "remaining" and send the loop running away.
    if (total_cap != kNoLimit && merged.rows.size() >= total_cap) break;
    const uint64_t remaining =
        total_cap == kNoLimit ? kNoLimit : total_cap - merged.rows.size();
    const uint64_t page_limit = std::min<uint64_t>(options.page_size, remaining);

    SelectQuery page = query;
    page.Offset(offset).Limit(page_limit);

    auto result = RetryTransient([&] { return endpoint->Select(page); },
                                 options.retry);
    if (!result.ok()) return result.status().WithContext("paged select");

    if (first_page) {
      merged.var_names = result->var_names;
      first_page = false;
    }
    // Never accept more rows than the page asked for: a misbehaving server
    // that ignores LIMIT would otherwise blow through max_rows, and its
    // OFFSET handling cannot be trusted either — truncate and stop.
    const bool over_long = result->rows.size() > page_limit;
    const size_t take =
        std::min<uint64_t>(result->rows.size(), page_limit);
    for (size_t i = 0; i < take; ++i) {
      merged.rows.push_back(std::move(result->rows[i]));
    }
    if (over_long) break;
    if (result->rows.size() < page_limit) break;  // Short page: exhausted.
    offset += page_limit;
  }
  return merged;
}

SelectBatchResult BatchedPagedSelect(Endpoint* endpoint,
                                     std::span<const SelectQuery> queries,
                                     const PagedSelectOptions& options) {
  if (options.page_size == 0) {
    return SelectBatchResult::FromError(
        queries.size(), Status::InvalidArgument("page_size must be positive"));
  }

  // Per-query total row cap: the tighter of max_rows and the query's LIMIT.
  std::vector<uint64_t> caps;
  caps.reserve(queries.size());
  std::vector<SelectQuery> first_pages;
  first_pages.reserve(queries.size());
  for (const SelectQuery& query : queries) {
    uint64_t cap = options.max_rows;
    if (query.limit() != kNoLimit) cap = std::min(cap, query.limit());
    caps.push_back(cap);
    SelectQuery page = query;
    page.Limit(std::min<uint64_t>(options.page_size, cap));
    first_pages.push_back(std::move(page));
  }

  SelectBatchResult results = endpoint->SelectMany(first_pages);

  // Page out the stragglers whose first page filled completely. Sub-queries
  // whose first page failed keep their own status; their neighbors page on.
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!results.statuses[i].ok()) {
      results.statuses[i] =
          results.statuses[i].WithContext("batched paged select");
      continue;
    }
    ResultSet& merged = results.values[i];
    const uint64_t page_limit = std::min<uint64_t>(options.page_size, caps[i]);
    if (merged.rows.size() > page_limit) {
      // Over-long first page (server ignored LIMIT): truncate and stop —
      // same policy as PagedSelect.
      merged.rows.resize(page_limit);
      continue;
    }
    const bool maybe_more =
        page_limit > 0 && merged.rows.size() == page_limit &&
        (caps[i] == kNoLimit || caps[i] > page_limit);
    if (!maybe_more) continue;
    SelectQuery rest = queries[i];
    rest.Offset(queries[i].offset() + page_limit);
    rest.Limit(caps[i] == kNoLimit ? kNoLimit : caps[i] - page_limit);
    PagedSelectOptions rest_options = options;
    if (options.max_rows != kNoLimit) {
      rest_options.max_rows = options.max_rows > merged.rows.size()
                                  ? options.max_rows - merged.rows.size()
                                  : 0;
    }
    auto more = PagedSelect(endpoint, rest, rest_options);
    if (!more.ok()) {
      // A later page failed past its retries: the partial prefix cannot be
      // trusted as "the complete answer", so the slot reports the error.
      results.statuses[i] = more.status().WithContext("batched paged select");
      results.values[i] = ResultSet();
      continue;
    }
    for (auto& row : more->rows) merged.rows.push_back(std::move(row));
  }
  return results;
}

}  // namespace sofya
