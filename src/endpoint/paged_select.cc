#include "endpoint/paged_select.h"

#include <algorithm>

namespace sofya {

StatusOr<ResultSet> PagedSelect(Endpoint* endpoint, const SelectQuery& query,
                                const PagedSelectOptions& options) {
  if (options.page_size == 0) {
    return Status::InvalidArgument("page_size must be positive");
  }
  uint64_t total_cap = options.max_rows;
  if (query.limit() != kNoLimit) {
    total_cap = std::min(total_cap, query.limit());
  }

  ResultSet merged;
  uint64_t offset = query.offset();
  bool first_page = true;

  while (true) {
    const uint64_t remaining =
        total_cap == kNoLimit ? kNoLimit : total_cap - merged.rows.size();
    if (remaining == 0) break;
    const uint64_t page_limit = std::min<uint64_t>(options.page_size, remaining);

    SelectQuery page = query;
    page.Offset(offset).Limit(page_limit);

    StatusOr<ResultSet> result = Status::Internal("unreached");
    int attempts = 0;
    while (true) {
      result = endpoint->Select(page);
      if (result.ok()) break;
      if (!result.status().IsUnavailable() ||
          attempts >= options.max_retries_per_page) {
        return result.status().WithContext("paged select");
      }
      ++attempts;  // Retry transient failures.
    }

    if (first_page) {
      merged.var_names = result->var_names;
      first_page = false;
    }
    for (auto& row : result->rows) merged.rows.push_back(std::move(row));

    if (result->rows.size() < page_limit) break;  // Short page: exhausted.
    offset += page_limit;
  }
  return merged;
}

}  // namespace sofya
