// LocalEndpoint: serves a KnowledgeBase through the Endpoint interface.
//
// This is the "server side" of the simulation: the full KB lives here, and
// the alignment pipeline on the other side of the interface can only see
// what its queries return.
//
// Thread safety: concurrent Select/Ask/SelectMany/AskMany calls are safe as
// long as nobody writes to the KB concurrently (TripleStore's contract).
// Query evaluation itself is lock-free over the store; only the stats
// counters take a (tiny, post-evaluation) mutex.

#ifndef SOFYA_ENDPOINT_LOCAL_ENDPOINT_H_
#define SOFYA_ENDPOINT_LOCAL_ENDPOINT_H_

#include <mutex>
#include <string>

#include "endpoint/endpoint.h"
#include "rdf/knowledge_base.h"
#include "sparql/engine.h"

namespace sofya {

/// Options for LocalEndpoint.
struct LocalEndpointOptions {
  /// When true, stats().bytes_estimated accumulates the N-Triples-serialized
  /// size of every shipped cell (slower; keep on for query-cost experiments).
  bool estimate_bytes = true;

  /// Join-order planner + plan-cache configuration for the served engine.
  /// `engine.planner.use_statistics = false` selects the legacy
  /// bound-position heuristic (the A/B baseline for bench/query_cost).
  Engine::Options engine;
};

/// Endpoint over an in-process KnowledgeBase. The KB must outlive the
/// endpoint. Writes to the KB through kb() are allowed between queries
/// (time-sensitive-data scenarios); the store re-indexes lazily.
class LocalEndpoint : public Endpoint {
 public:
  explicit LocalEndpoint(KnowledgeBase* kb,
                         LocalEndpointOptions options = {})
      : kb_(kb),
        estimate_bytes_(options.estimate_bytes),
        engine_(&kb->store(), &kb->dict(), options.engine) {}

  const std::string& name() const override { return kb_->name(); }

  const std::string& base_iri() const override { return kb_->base_iri(); }

  StatusOr<ResultSet> Select(const SelectQuery& query) override;

  /// Batched execution: duplicate queries within one batch (by normalized
  /// fingerprint) are evaluated once and answered from the same result, so
  /// a batch of k identical probes costs one server query. Each sub-query
  /// carries its own status; duplicates share the first occurrence's
  /// outcome, error or not.
  SelectBatchResult SelectMany(std::span<const SelectQuery> queries) override;

  /// Native ASK: the streaming engine stops at the first solution, so the
  /// cost is O(first match) — one query, zero shipped rows — instead of a
  /// LIMIT-1 SELECT that ships a row.
  StatusOr<bool> Ask(const SelectQuery& query) override;

  /// Batched ASK: probes that are identical up to solution modifiers
  /// (AskFingerprint) are evaluated once and charged once, so a fan-out of
  /// k equal existence checks costs one server query.
  AskBatchResult AskMany(std::span<const SelectQuery> queries) override;

  TermId EncodeTerm(const Term& term) override {
    return kb_->dict().Intern(term);
  }

  TermId LookupTerm(const Term& term) const override {
    return kb_->dict().Lookup(term);
  }

  StatusOr<Term> DecodeTerm(TermId id) const override {
    return kb_->dict().TryDecode(id);
  }

  /// The KB's write epoch: caches above this endpoint invalidate
  /// automatically when the dataset is mutated between queries.
  uint64_t data_epoch() const override { return kb_->data_epoch(); }

  EndpointStats stats() const override {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }
  void ResetStats() override {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_ = EndpointStats();
  }

  /// The EXPLAIN surface: the plan the served engine would run `query`
  /// with, without executing it (CLI `explain`, bench annotation).
  StatusOr<PlanExplain> Explain(const SelectQuery& query) const {
    return engine_.Explain(query);
  }

  /// The served engine (plan-cache accounting, options inspection).
  const Engine& engine() const { return engine_; }

  /// The underlying KB (server-side only; pipeline code must not call this).
  KnowledgeBase* kb() { return kb_; }
  const KnowledgeBase* kb() const { return kb_; }

 private:
  KnowledgeBase* kb_;  // Not owned.
  bool estimate_bytes_;
  // The engine owns the authoritative planner/plan-cache configuration
  // (inspect via engine().options()); no separate copy is kept.
  Engine engine_;
  mutable std::mutex stats_mu_;
  EndpointStats stats_;  // Guarded by stats_mu_.
};

}  // namespace sofya

#endif  // SOFYA_ENDPOINT_LOCAL_ENDPOINT_H_
