// Shared transient-failure retry policy: exponential backoff with jitter.
//
// Every client-side retry loop in SOFYA (RetryingEndpoint, PagedSelect)
// drives its re-issues through RetryTransient so retry semantics cannot
// drift between layers: only Unavailable is retried, every re-issue waits an
// exponentially growing, jittered delay first. A zero-delay retry loop turns
// one struggling server into a hammered one — the pause is the point.

#ifndef SOFYA_ENDPOINT_RETRY_POLICY_H_
#define SOFYA_ENDPOINT_RETRY_POLICY_H_

#include <cstdint>
#include <functional>

#include "util/random.h"
#include "util/status.h"

namespace sofya {

/// Retry policy.
struct RetryOptions {
  int max_retries = 3;  ///< Additional attempts after the first failure.

  /// Delay before the first re-issue; each further re-issue multiplies it by
  /// `backoff_multiplier`, capped at `max_backoff_ms`. Set to 0 to disable
  /// waiting (tests that hammer a deterministic fault injector).
  double initial_backoff_ms = 100.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 5000.0;

  /// Uniform jitter as a fraction of the computed delay: the actual wait is
  /// delay * (1 ± jitter). Decorrelates clients that failed together so
  /// they do not re-converge on the server in one synchronized burst.
  double jitter = 0.2;

  /// Jitter seed; 0 draws a nondeterministic seed per retry sequence.
  uint64_t seed = 0;

  /// Honor a server-supplied Retry-After hint riding the failure Status
  /// (Status::retry_after_ms, attached by HttpSparqlEndpoint from the HTTP
  /// header): the wait becomes max(computed backoff, hint), so a client
  /// never re-knocks before the server said it would be ready, and never
  /// waits *less* than its own escalating schedule demands.
  bool honor_retry_after = true;

  /// Clamp on the honored hint — a confused (or hostile) server cannot
  /// stall the pipeline arbitrarily long.
  double max_retry_after_ms = 30000.0;

  /// Sleep override. Tests inject a collector to assert the backoff
  /// schedule without waiting; unset means a real sleep_for.
  std::function<void(double delay_ms)> sleeper;
};

/// Computes the backoff delay (ms, jitter applied) before re-issue number
/// `attempt` (1-based). Exposed for tests; `rng` supplies the jitter draw.
double RetryBackoffMs(const RetryOptions& options, int attempt, Rng& rng);

/// Like above, but also honoring a Retry-After hint on `last_failure` (the
/// status that triggered this re-issue) per options.honor_retry_after:
/// returns max(computed backoff, min(hint, max_retry_after_ms)).
double RetryBackoffMs(const RetryOptions& options, int attempt, Rng& rng,
                      const Status& last_failure);

/// Waits `delay_ms` via options.sleeper (or a real sleep). No-op for <= 0.
void RetrySleep(const RetryOptions& options, double delay_ms);

/// Seeds the jitter RNG: options.seed when set, otherwise nondeterministic.
uint64_t RetrySeed(const RetryOptions& options);

/// Runs `attempt` and re-runs it while it reports Unavailable, up to
/// options.max_retries re-issues, sleeping the backoff delay before each.
/// `on_retry`, when given, fires once per re-issue (retry accounting).
template <typename Fn>
auto RetryTransient(Fn&& attempt, const RetryOptions& options,
                    const std::function<void()>& on_retry = nullptr)
    -> decltype(attempt()) {
  auto result = attempt();
  if (result.ok() || !result.status().IsUnavailable() ||
      options.max_retries <= 0) {
    return result;
  }
  Rng rng(RetrySeed(options));
  int attempts = 0;
  while (!result.ok() && result.status().IsUnavailable() &&
         attempts < options.max_retries) {
    ++attempts;
    RetrySleep(options,
               RetryBackoffMs(options, attempts, rng, result.status()));
    if (on_retry) on_retry();
    result = attempt();
  }
  return result;
}

}  // namespace sofya

#endif  // SOFYA_ENDPOINT_RETRY_POLICY_H_
