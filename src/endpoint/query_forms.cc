#include "endpoint/query_forms.h"

namespace sofya::queries {

SelectQuery FactsOfPredicate(TermId p, uint64_t limit, uint64_t offset) {
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(p), NodeRef::Variable(y))
      .Select({x, y})
      .Limit(limit)
      .Offset(offset);
  return q;
}

SelectQuery SubjectsOfPredicate(TermId p, uint64_t limit, uint64_t offset) {
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(p), NodeRef::Variable(y))
      .Select({x})
      .Distinct()
      .Limit(limit)
      .Offset(offset);
  return q;
}

SelectQuery ObjectsOf(TermId s, TermId p) {
  SelectQuery q;
  const VarId y = q.NewVar("y");
  q.Where(NodeRef::Constant(s), NodeRef::Constant(p), NodeRef::Variable(y))
      .Select({y});
  return q;
}

SelectQuery FactsOfSubject(TermId s) {
  SelectQuery q;
  const VarId p = q.NewVar("p");
  const VarId y = q.NewVar("y");
  q.Where(NodeRef::Constant(s), NodeRef::Variable(p), NodeRef::Variable(y))
      .Select({p, y});
  return q;
}

SelectQuery PredicatesBetween(TermId s, TermId o) {
  SelectQuery q;
  const VarId p = q.NewVar("p");
  q.Where(NodeRef::Constant(s), NodeRef::Variable(p), NodeRef::Constant(o))
      .Select({p})
      .Distinct();
  return q;
}

SelectQuery SameAsOf(TermId x, TermId same_as_predicate) {
  SelectQuery q;
  const VarId e = q.NewVar("e");
  q.Where(NodeRef::Constant(x), NodeRef::Constant(same_as_predicate),
          NodeRef::Variable(e))
      .Select({e});
  return q;
}

SelectQuery AllPredicates(uint64_t limit, uint64_t offset) {
  SelectQuery q;
  const VarId s = q.NewVar("s");
  const VarId p = q.NewVar("p");
  const VarId o = q.NewVar("o");
  q.Where(NodeRef::Variable(s), NodeRef::Variable(p), NodeRef::Variable(o))
      .Select({p})
      .Distinct()
      .Limit(limit)
      .Offset(offset);
  return q;
}

SelectQuery SubjectsWithDisagreeingObjects(TermId p1, TermId p2,
                                           uint64_t limit) {
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y1 = q.NewVar("y1");
  const VarId y2 = q.NewVar("y2");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(p1), NodeRef::Variable(y1))
      .Where(NodeRef::Variable(x), NodeRef::Constant(p2),
             NodeRef::Variable(y2))
      .Filter(FilterExpr::VarNeqVar(y1, y2))
      .Select({x, y1, y2})
      .Limit(limit);
  return q;
}

SelectQuery SubjectsInDomainOverlap(TermId p1, TermId p2, uint64_t limit) {
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y1 = q.NewVar("y1");
  const VarId y2 = q.NewVar("y2");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(p1), NodeRef::Variable(y1))
      .Where(NodeRef::Variable(x), NodeRef::Constant(p2),
             NodeRef::Variable(y2))
      .Select({x})
      .Distinct()
      .Limit(limit);
  return q;
}

}  // namespace sofya::queries
