// TrackingEndpoint: a pass-through decorator that counts the requests one
// caller issues against a shared endpoint stack.
//
// Why it exists: under parallel alignment (RelationAligner::AlignMany) many
// relations share one endpoint stack, so "stats delta before/after my
// work" — the sequential attribution idiom — picks up every other thread's
// queries. A TrackingEndpoint is private to one relation's pipeline: it
// forwards everything to the shared stack and keeps its *own* counters,
// which makes per-relation attribution exact and deterministic for any
// thread count.
//
// The counters mirror the server's charging rules so that, over an
// undecorated LocalEndpoint, tracked counts equal the server's counts
// exactly: one query per Select/Ask, one query per *unique* query inside a
// SelectMany batch (the server answers intra-batch duplicates from one
// evaluation), one per unique normalized probe inside AskMany, and rows
// counted once per unique evaluation. With a shared cache in the stack the
// tracked `queries` is instead the number of requests issued to the cache —
// an upper bound on what the server saw, since attribution of shared cache
// hits to individual callers is inherently interleaving-dependent.
//
// Thread safety: safe for concurrent callers. Under the phase-decomposed
// scheduler one relation's subtasks (per-candidate sampling, reverse
// checks) run on different workers but share the relation's tracking view,
// so the counters sit behind a mutex. The charges are per-call increments,
// which makes the totals independent of interleaving — the foundation of
// the bit-identical-counters guarantee.

#ifndef SOFYA_ENDPOINT_TRACKING_ENDPOINT_H_
#define SOFYA_ENDPOINT_TRACKING_ENDPOINT_H_

#include <mutex>
#include <string>
#include <unordered_set>

#include "endpoint/endpoint.h"

namespace sofya {

/// Per-caller request attribution over a shared (thread-safe) endpoint.
class TrackingEndpoint : public Endpoint {
 public:
  /// `inner` is not owned and must outlive this object.
  explicit TrackingEndpoint(Endpoint* inner) : inner_(inner) {}

  const std::string& name() const override { return inner_->name(); }
  const std::string& base_iri() const override { return inner_->base_iri(); }

  StatusOr<ResultSet> Select(const SelectQuery& query) override {
    auto result = inner_->Select(query);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
    if (result.ok()) stats_.rows_returned += result->rows.size();
    return result;
  }

  SelectBatchResult SelectMany(std::span<const SelectQuery> queries) override {
    SelectBatchResult results = inner_->SelectMany(queries);
    // Charge one query per unique fingerprint, like the server's
    // intra-batch dedup, so tracked counts match server-side accounting;
    // rows only for sub-queries that actually produced an answer.
    std::unordered_set<std::string> unique;
    unique.reserve(queries.size());
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < queries.size(); ++i) {
      if (!unique.insert(queries[i].Fingerprint()).second) continue;
      ++stats_.queries;
      if (results.statuses[i].ok()) {
        stats_.rows_returned += results.values[i].rows.size();
      }
    }
    return results;
  }

  StatusOr<bool> Ask(const SelectQuery& query) override {
    auto result = inner_->Ask(query);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
    return result;
  }

  AskBatchResult AskMany(std::span<const SelectQuery> queries) override {
    AskBatchResult results = inner_->AskMany(queries);
    std::unordered_set<std::string> unique;
    unique.reserve(queries.size());
    std::lock_guard<std::mutex> lock(mu_);
    for (const SelectQuery& query : queries) {
      if (unique.insert(AskFingerprint(query)).second) ++stats_.queries;
    }
    return results;
  }

  TermId EncodeTerm(const Term& term) override {
    return inner_->EncodeTerm(term);
  }
  TermId LookupTerm(const Term& term) const override {
    return inner_->LookupTerm(term);
  }
  StatusOr<Term> DecodeTerm(TermId id) const override {
    return inner_->DecodeTerm(id);
  }
  uint64_t data_epoch() const override { return inner_->data_epoch(); }

  /// This caller's own counters only — never the shared stack's (that is
  /// the whole point). Latency/cache/server-side fields stay zero; they are
  /// fleet-level quantities under parallelism.
  EndpointStats stats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() override {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = EndpointStats();
  }

 private:
  Endpoint* inner_;  // Not owned; shared across tasks.
  mutable std::mutex mu_;
  EndpointStats stats_;  // Guarded by mu_.
};

}  // namespace sofya

#endif  // SOFYA_ENDPOINT_TRACKING_ENDPOINT_H_
