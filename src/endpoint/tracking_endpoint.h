// TrackingEndpoint: a pass-through decorator that counts the requests one
// caller issues against a shared endpoint stack.
//
// Why it exists: under parallel alignment (RelationAligner::AlignMany) many
// relations share one endpoint stack, so "stats delta before/after my
// work" — the sequential attribution idiom — picks up every other thread's
// queries. A TrackingEndpoint is private to one task: it forwards
// everything to the shared stack and keeps its *own* counters, which makes
// per-relation attribution exact and deterministic for any thread count.
//
// The counters mirror the server's charging rules so that, over an
// undecorated LocalEndpoint, tracked counts equal the server's counts
// exactly: one query per Select/Ask, one query per *unique* query inside a
// SelectMany batch (the server answers intra-batch duplicates from one
// evaluation), one per unique normalized probe inside AskMany, and rows
// counted once per unique evaluation. With a shared cache in the stack the
// tracked `queries` is instead the number of requests issued to the cache —
// an upper bound on what the server saw, since attribution of shared cache
// hits to individual callers is inherently interleaving-dependent.
//
// Thread safety: one TrackingEndpoint per task/thread (its own counters are
// unsynchronized); the shared inner stack handles cross-task concurrency.

#ifndef SOFYA_ENDPOINT_TRACKING_ENDPOINT_H_
#define SOFYA_ENDPOINT_TRACKING_ENDPOINT_H_

#include <string>
#include <unordered_set>

#include "endpoint/endpoint.h"

namespace sofya {

/// Per-caller request attribution over a shared (thread-safe) endpoint.
class TrackingEndpoint : public Endpoint {
 public:
  /// `inner` is not owned and must outlive this object.
  explicit TrackingEndpoint(Endpoint* inner) : inner_(inner) {}

  const std::string& name() const override { return inner_->name(); }
  const std::string& base_iri() const override { return inner_->base_iri(); }

  StatusOr<ResultSet> Select(const SelectQuery& query) override {
    auto result = inner_->Select(query);
    ++stats_.queries;
    if (result.ok()) stats_.rows_returned += result->rows.size();
    return result;
  }

  StatusOr<std::vector<ResultSet>> SelectMany(
      std::span<const SelectQuery> queries) override {
    auto results = inner_->SelectMany(queries);
    // Charge one query per unique fingerprint, like the server's
    // intra-batch dedup, so tracked counts match server-side accounting.
    std::unordered_set<std::string> unique;
    unique.reserve(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      if (!unique.insert(queries[i].Fingerprint()).second) continue;
      ++stats_.queries;
      if (results.ok()) stats_.rows_returned += (*results)[i].rows.size();
    }
    return results;
  }

  StatusOr<bool> Ask(const SelectQuery& query) override {
    auto result = inner_->Ask(query);
    ++stats_.queries;
    return result;
  }

  StatusOr<std::vector<bool>> AskMany(
      std::span<const SelectQuery> queries) override {
    auto results = inner_->AskMany(queries);
    std::unordered_set<std::string> unique;
    unique.reserve(queries.size());
    for (const SelectQuery& query : queries) {
      if (unique.insert(AskFingerprint(query)).second) ++stats_.queries;
    }
    return results;
  }

  TermId EncodeTerm(const Term& term) override {
    return inner_->EncodeTerm(term);
  }
  TermId LookupTerm(const Term& term) const override {
    return inner_->LookupTerm(term);
  }
  StatusOr<Term> DecodeTerm(TermId id) const override {
    return inner_->DecodeTerm(id);
  }

  /// This caller's own counters only — never the shared stack's (that is
  /// the whole point). Latency/cache/server-side fields stay zero; they are
  /// fleet-level quantities under parallelism.
  EndpointStats stats() const override { return stats_; }
  void ResetStats() override { stats_ = EndpointStats(); }

 private:
  Endpoint* inner_;  // Not owned; shared across tasks.
  EndpointStats stats_;
};

}  // namespace sofya

#endif  // SOFYA_ENDPOINT_TRACKING_ENDPOINT_H_
