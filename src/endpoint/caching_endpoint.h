// CachingEndpoint: client-side LRU result cache over any Endpoint.
//
// SOFYA's hottest access pattern is repeated overlapping evidence lookups —
// the same ObjectsOf / existence probes recur across candidate relations,
// across the forward and reverse alignment directions, and across
// alignments of related reference relations (PARIS makes the same
// observation for instance-level alignment). Caching them client-side turns
// that overlap into zero-cost hits: the server never sees the repeat, so
// `queries` (the paper's cost metric) strictly drops.
//
// Keys are normalized query fingerprints (SelectQuery::Fingerprint), so
// structurally identical queries collide regardless of how they were built.
// ASK probes are cached separately with their solution modifiers stripped —
// existence does not depend on DISTINCT/OFFSET/LIMIT, so Ask(q) and
// Ask(q.Limit(5)) share one entry.
//
// Thread safety: safe for concurrent callers. The LRU is sharded by
// fingerprint hash — each shard has its own lock, list, and capacity slice,
// so parallel alignment threads hitting different entries do not serialize
// on one cache-global mutex. Two threads racing on the same cold key may
// both miss and fetch (a benign stampede: the server is asked twice, both
// misses are counted, last insert wins); hit/miss counters always sum to
// exactly the number of requests.
//
// Staleness: entries are valid for one dataset epoch. Every request first
// compares the inner endpoint's data_epoch() against the epoch the cache
// last saw; when the dataset was mutated (time-sensitive-data scenarios)
// the whole cache is dropped automatically before the request is served —
// no manual Clear() required (it remains available for callers that want
// to cold-start measurements).

#ifndef SOFYA_ENDPOINT_CACHING_ENDPOINT_H_
#define SOFYA_ENDPOINT_CACHING_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "endpoint/endpoint.h"

namespace sofya {

/// Cache sizing/behavior knobs.
struct CacheOptions {
  /// Maximum cached entries (SELECT results + ASK booleans combined).
  size_t capacity = 4096;

  /// Cache ASK probes too (cheap to store; high hit rates for existence
  /// checks repeated across candidates).
  bool cache_asks = true;

  /// Number of independently locked LRU shards. 0 = auto: one shard for
  /// small caches (exact global LRU order, as tests and eviction-sensitive
  /// setups expect), 16 once the capacity is large enough that per-shard
  /// eviction is statistically indistinguishable from global LRU. With
  /// multiple shards the capacity bound is enforced per shard
  /// (ceil(capacity/shards) each), so a hash-skewed workload can evict from
  /// a hot shard while the cache as a whole is under capacity.
  size_t shards = 0;
};

/// Decorator; wraps any Endpoint. Typically outermost in the stack
/// (client-side), so hits cost neither budget, latency, nor retries.
class CachingEndpoint : public Endpoint {
 public:
  /// `inner` is not owned and must outlive this object.
  explicit CachingEndpoint(Endpoint* inner, CacheOptions options = {});

  const std::string& name() const override { return inner_->name(); }
  const std::string& base_iri() const override { return inner_->base_iri(); }

  StatusOr<ResultSet> Select(const SelectQuery& query) override;

  /// Answers what it can from the cache and forwards only the misses to the
  /// inner endpoint as one (smaller) batch. Failed sub-queries keep their
  /// own status and are never cached; hits are OK by construction.
  SelectBatchResult SelectMany(std::span<const SelectQuery> queries) override;

  StatusOr<bool> Ask(const SelectQuery& query) override;

  /// Batched ASK, same contract as SelectMany: hits answered locally,
  /// unique misses forwarded as one AskMany batch to the inner endpoint.
  AskBatchResult AskMany(std::span<const SelectQuery> queries) override;

  TermId EncodeTerm(const Term& term) override {
    return inner_->EncodeTerm(term);
  }
  TermId LookupTerm(const Term& term) const override {
    return inner_->LookupTerm(term);
  }
  StatusOr<Term> DecodeTerm(TermId id) const override {
    return inner_->DecodeTerm(id);
  }
  uint64_t data_epoch() const override { return inner_->data_epoch(); }

  /// Inner endpoint stats plus this cache's hit/miss counters. Note that
  /// `queries` counts only requests the server actually saw — cache hits
  /// never reach it, which is the point.
  EndpointStats stats() const override;
  void ResetStats() override {
    inner_->ResetStats();
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
  }

  /// Drops every cached entry. Stale entries are dropped automatically on
  /// the first request after a dataset mutation (data_epoch change); this
  /// stays public for explicit cold starts.
  void Clear();

  /// Cache flushes triggered by dataset-epoch changes.
  uint64_t epoch_invalidations() const {
    return epoch_invalidations_.load(std::memory_order_relaxed);
  }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Entries displaced by the capacity bound since construction.
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  size_t size() const;
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    std::string key;
    bool is_ask = false;
    ResultSet result;         // is_ask == false.
    bool ask_result = false;  // is_ask == true.
  };
  using LruList = std::list<Entry>;

  /// One independently locked slice of the cache.
  struct Shard {
    std::mutex mu;
    LruList lru;  // Front = most recently used. Guarded by mu.
    std::unordered_map<std::string, LruList::iterator> index;  // Guarded.
  };

  Shard& ShardFor(const std::string& key) {
    return *shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  /// Looks `key` up in its shard; on hit, touches the entry and copies the
  /// payload out under the shard lock. Counts the hit or miss.
  bool LookupSelect(const std::string& key, ResultSet* out);
  bool LookupAsk(const std::string& key, bool* out);

  /// Inserts (or refreshes) an entry in its shard, evicting from the cold
  /// end past the shard's capacity slice.
  void Insert(Entry entry);

  /// Epoch gate, run before any cache access: when the inner endpoint's
  /// data_epoch has moved since the last request, every cached entry is
  /// stale — drop them all and record the new epoch. Benign under races
  /// (two threads observing the change both clear; entries inserted from
  /// results fetched before the flip can survive one extra request, the
  /// same window a racing manual Clear() always had).
  void InvalidateIfStale();

  Endpoint* inner_;  // Not owned.
  CacheOptions options_;
  size_t shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> seen_epoch_{0};
  std::atomic<uint64_t> epoch_invalidations_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace sofya

#endif  // SOFYA_ENDPOINT_CACHING_ENDPOINT_H_
