// CachingEndpoint: client-side LRU result cache over any Endpoint.
//
// SOFYA's hottest access pattern is repeated overlapping evidence lookups —
// the same ObjectsOf / existence probes recur across candidate relations,
// across the forward and reverse alignment directions, and across
// alignments of related reference relations (PARIS makes the same
// observation for instance-level alignment). Caching them client-side turns
// that overlap into zero-cost hits: the server never sees the repeat, so
// `queries` (the paper's cost metric) strictly drops.
//
// Keys are normalized query fingerprints (SelectQuery::Fingerprint), so
// structurally identical queries collide regardless of how they were built.
// ASK probes are cached separately with their solution modifiers stripped —
// existence does not depend on DISTINCT/OFFSET/LIMIT, so Ask(q) and
// Ask(q.Limit(5)) share one entry.
//
// The cache assumes the dataset is immutable between queries. When the
// underlying KB is mutated (time-sensitive-data scenarios), call Clear().

#ifndef SOFYA_ENDPOINT_CACHING_ENDPOINT_H_
#define SOFYA_ENDPOINT_CACHING_ENDPOINT_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "endpoint/endpoint.h"

namespace sofya {

/// Cache sizing/behavior knobs.
struct CacheOptions {
  /// Maximum cached entries (SELECT results + ASK booleans combined).
  size_t capacity = 4096;

  /// Cache ASK probes too (cheap to store; high hit rates for existence
  /// checks repeated across candidates).
  bool cache_asks = true;
};

/// Decorator; wraps any Endpoint. Typically outermost in the stack
/// (client-side), so hits cost neither budget, latency, nor retries.
class CachingEndpoint : public Endpoint {
 public:
  /// `inner` is not owned and must outlive this object.
  explicit CachingEndpoint(Endpoint* inner, CacheOptions options = {})
      : inner_(inner), options_(options) {}

  const std::string& name() const override { return inner_->name(); }
  const std::string& base_iri() const override { return inner_->base_iri(); }

  StatusOr<ResultSet> Select(const SelectQuery& query) override;

  /// Answers what it can from the cache and forwards only the misses to the
  /// inner endpoint as one (smaller) batch.
  StatusOr<std::vector<ResultSet>> SelectMany(
      std::span<const SelectQuery> queries) override;

  StatusOr<bool> Ask(const SelectQuery& query) override;

  TermId EncodeTerm(const Term& term) override {
    return inner_->EncodeTerm(term);
  }
  TermId LookupTerm(const Term& term) const override {
    return inner_->LookupTerm(term);
  }
  StatusOr<Term> DecodeTerm(TermId id) const override {
    return inner_->DecodeTerm(id);
  }

  /// Inner endpoint stats plus this cache's hit/miss counters. Note that
  /// `queries` counts only requests the server actually saw — cache hits
  /// never reach it, which is the point.
  const EndpointStats& stats() const override;
  void ResetStats() override {
    inner_->ResetStats();
    hits_ = 0;
    misses_ = 0;
  }

  /// Drops every cached entry (required after mutating the dataset).
  void Clear();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  /// Entries displaced by the capacity bound since construction.
  uint64_t evictions() const { return evictions_; }
  size_t size() const { return index_.size(); }

 private:
  struct Entry {
    std::string key;
    bool is_ask = false;
    ResultSet result;       // is_ask == false.
    bool ask_result = false;  // is_ask == true.
  };
  using LruList = std::list<Entry>;

  /// Moves `it` to the front (most recent) and returns its entry.
  Entry& Touch(LruList::iterator it);

  /// Inserts an entry, evicting from the cold end past capacity.
  void Insert(Entry entry);

  /// ASK cache key: fingerprint with solution modifiers normalized away.
  static std::string AskKey(const SelectQuery& query);

  Endpoint* inner_;  // Not owned.
  CacheOptions options_;
  LruList lru_;  // Front = most recently used.
  std::unordered_map<std::string, LruList::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  mutable EndpointStats stats_snapshot_;
};

}  // namespace sofya

#endif  // SOFYA_ENDPOINT_CACHING_ENDPOINT_H_
