// A SPARQL SELECT subset: basic graph patterns over one dataset, simple
// FILTERs, DISTINCT, LIMIT and OFFSET.
//
// This is the query language the endpoint (endpoint/endpoint.h) accepts —
// i.e. everything SOFYA is allowed to ask a remote KB. The subset matches
// what the paper's samplers need; anything fancier (OPTIONAL, property
// paths, aggregates) is deliberately out of scope and would weaken the
// "works against any endpoint" claim.

#ifndef SOFYA_SPARQL_QUERY_H_
#define SOFYA_SPARQL_QUERY_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "util/status.h"

namespace sofya {

/// Index of a variable within a query (dense, starting at 0).
using VarId = int32_t;

/// One position of a triple pattern: either a constant term or a variable.
class NodeRef {
 public:
  NodeRef() : is_var_(false), term_(kNullTermId), var_(-1) {}

  /// A constant (dictionary-encoded) term.
  static NodeRef Constant(TermId term) {
    NodeRef n;
    n.is_var_ = false;
    n.term_ = term;
    return n;
  }

  /// A variable reference.
  static NodeRef Variable(VarId var) {
    NodeRef n;
    n.is_var_ = true;
    n.var_ = var;
    return n;
  }

  bool is_var() const { return is_var_; }
  TermId term() const { return term_; }
  VarId var() const { return var_; }

 private:
  bool is_var_;
  TermId term_;
  VarId var_;
};

/// A triple pattern with variables: one BGP clause.
struct PatternClause {
  NodeRef subject;
  NodeRef predicate;
  NodeRef object;
};

/// Simple FILTER expressions over bound variables.
///
/// This covers the paper's needs: UBS strategy B requires FILTER(?y1 != ?y2)
/// and object/constant comparisons; everything else is BGP shape.
struct FilterExpr {
  enum class Kind {
    kVarEqVar,    ///< FILTER(?a = ?b)
    kVarNeqVar,   ///< FILTER(?a != ?b)
    kVarEqTerm,   ///< FILTER(?a = <t>)
    kVarNeqTerm,  ///< FILTER(?a != <t>)
    kIsIri,       ///< FILTER(isIRI(?a))
    kIsLiteral,   ///< FILTER(isLiteral(?a))
  };

  Kind kind;
  VarId lhs = -1;
  VarId rhs_var = -1;
  TermId rhs_term = kNullTermId;

  static FilterExpr VarEqVar(VarId a, VarId b) {
    return {Kind::kVarEqVar, a, b, kNullTermId};
  }
  static FilterExpr VarNeqVar(VarId a, VarId b) {
    return {Kind::kVarNeqVar, a, b, kNullTermId};
  }
  static FilterExpr VarEqTerm(VarId a, TermId t) {
    return {Kind::kVarEqTerm, a, -1, t};
  }
  static FilterExpr VarNeqTerm(VarId a, TermId t) {
    return {Kind::kVarNeqTerm, a, -1, t};
  }
  static FilterExpr IsIri(VarId a) { return {Kind::kIsIri, a, -1, kNullTermId}; }
  static FilterExpr IsLiteral(VarId a) {
    return {Kind::kIsLiteral, a, -1, kNullTermId};
  }
};

/// No row limit.
inline constexpr uint64_t kNoLimit = std::numeric_limits<uint64_t>::max();

/// A SELECT query. Build with the fluent helpers, then hand to an Endpoint.
class SelectQuery {
 public:
  SelectQuery() = default;

  /// Declares a new variable with a display name; returns its id.
  VarId NewVar(std::string name);

  /// Number of declared variables.
  size_t num_vars() const { return var_names_.size(); }

  /// Display name of `var` ("x" -> rendered as "?x").
  const std::string& var_name(VarId var) const { return var_names_[var]; }

  /// Appends a BGP clause.
  SelectQuery& Where(NodeRef s, NodeRef p, NodeRef o);

  /// Appends a FILTER.
  SelectQuery& Filter(FilterExpr filter);

  /// Sets the projection. Unset => SELECT *.
  SelectQuery& Select(std::vector<VarId> vars);

  SelectQuery& Distinct(bool distinct = true);
  SelectQuery& Limit(uint64_t limit);
  SelectQuery& Offset(uint64_t offset);

  const std::vector<PatternClause>& clauses() const { return clauses_; }
  const std::vector<FilterExpr>& filters() const { return filters_; }
  const std::vector<VarId>& projection() const { return projection_; }
  bool distinct() const { return distinct_; }
  uint64_t limit() const { return limit_; }
  uint64_t offset() const { return offset_; }

  /// Validates structural sanity (every var used is declared; projection
  /// non-empty after defaulting; at least one clause).
  Status Validate() const;

  /// Renders the query as SPARQL text for logs and for the HTTP wire
  /// (needs the dictionary to decode constant terms). The output is valid
  /// input for ParseSelectQuery: serialize -> parse round-trips to an
  /// equal Fingerprint (tests/sparql_roundtrip_test.cc holds this).
  std::string ToSparql(const Dictionary& dict) const;

  /// Renders the existence form: `ASK WHERE { ... }` with the same BGP and
  /// filters. Solution modifiers are dropped — existence does not depend on
  /// DISTINCT/LIMIT/OFFSET (same normalization as AskFingerprint). This is
  /// what HttpSparqlEndpoint::Ask sends over the SPARQL protocol.
  std::string ToSparqlAsk(const Dictionary& dict) const;

  /// Normalized structural fingerprint: two queries with the same
  /// fingerprint return the same ResultSet against the same dataset.
  /// Projections are resolved (SELECT * and an explicit all-variables list
  /// collide) and the solution modifiers are folded in. Used as the cache /
  /// batch-dedup key; no dictionary needed (constants are by id).
  std::string Fingerprint() const;

  /// The engine's plan-cache key: everything a compiled plan depends on
  /// (declared variables, clauses, filters, projection — all by *raw*
  /// VarId) with DISTINCT/LIMIT/OFFSET normalized away, so Ask(q),
  /// Select(q LIMIT n), and every page of one OFFSET walk share a plan.
  /// Unlike Fingerprint(), variable numbering is NOT canonicalized: a
  /// CompiledPlan stores raw VarIds, so two queries may share a plan only
  /// if their internal numbering agrees — alpha-renumbered twins get
  /// separate (cheap) plans instead of silently mislabeled columns.
  std::string PlanFingerprint() const;

 private:
  /// Shared WHERE-block renderer behind ToSparql / ToSparqlAsk.
  std::string RenderWhere(const Dictionary& dict) const;

  std::vector<std::string> var_names_;
  std::vector<PatternClause> clauses_;
  std::vector<FilterExpr> filters_;
  std::vector<VarId> projection_;  // Empty => all vars.
  bool distinct_ = false;
  uint64_t limit_ = kNoLimit;
  uint64_t offset_ = 0;
};

/// A solution sequence: projected variable names plus rows of term ids.
struct ResultSet {
  std::vector<std::string> var_names;
  std::vector<std::vector<TermId>> rows;

  size_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }

  /// Index of a projected variable by name, or -1.
  int ColumnOf(const std::string& name) const {
    for (size_t i = 0; i < var_names.size(); ++i) {
      if (var_names[i] == name) return static_cast<int>(i);
    }
    return -1;
  }
};

}  // namespace sofya

#endif  // SOFYA_SPARQL_QUERY_H_
