#include "sparql/results_json.h"

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <variant>
#include <vector>

#include "util/string_util.h"

namespace sofya {
namespace {

// ------------------------------------------------------------ JSON reader
//
// A small recursive-descent parser for the JSON subset the results format
// uses (all of JSON, in fact — objects, arrays, strings, numbers, bools,
// null). Numbers are kept as raw text: the results format never needs
// their numeric value, and raw text avoids double-rounding surprises.

struct JsonValue;
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, std::string /*number (raw)*/,
               std::shared_ptr<std::string> /*string*/,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      value = nullptr;

  bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(value);
  }
  bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(value);
  }
  bool is_string() const {
    return std::holds_alternative<std::shared_ptr<std::string>>(value);
  }
  bool is_bool() const { return std::holds_alternative<bool>(value); }

  const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(value);
  }
  const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(value);
  }
  const std::string& string() const {
    return *std::get<std::shared_ptr<std::string>>(value);
  }
  bool boolean() const { return std::get<bool>(value); }
};

const JsonValue* FindMember(const JsonObject& object, std::string_view key) {
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    SOFYA_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(std::string message) const {
    return Status::ParseError(
        StrFormat("json: %s (at byte %zu)", message.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      SOFYA_ASSIGN_OR_RETURN(std::string s, ParseString());
      JsonValue v;
      v.value = std::make_shared<std::string>(std::move(s));
      return v;
    }
    if (ConsumeLiteral("true")) return JsonValue{true};
    if (ConsumeLiteral("false")) return JsonValue{false};
    if (ConsumeLiteral("null")) return JsonValue{nullptr};
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Error("unexpected character");
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    auto object = std::make_shared<JsonObject>();
    SkipWhitespace();
    if (Consume('}')) return JsonValue{std::move(object)};
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      SOFYA_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SOFYA_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      object->emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue{std::move(object)};
      return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    auto array = std::make_shared<JsonArray>();
    SkipWhitespace();
    if (Consume(']')) return JsonValue{std::move(array)};
    while (true) {
      SOFYA_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      array->push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue{std::move(array)};
      return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("malformed number");
    JsonValue v;
    v.value = std::string(text_.substr(start, pos_ - start));
    return v;
  }

  /// Appends a Unicode code point as UTF-8.
  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp <= 0x7f) {
      out->push_back(static_cast<char>(cp));
    } else if (cp <= 0x7ff) {
      out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp <= 0xffff) {
      out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  StatusOr<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("malformed \\u escape");
      }
    }
    return value;
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          SOFYA_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: a low surrogate must follow.
            if (!ConsumeLiteral("\\u")) {
              return Error("unpaired high surrogate");
            }
            SOFYA_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
            if (low < 0xdc00 || low > 0xdfff) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// --------------------------------------------------- results-format layer

StatusOr<Term> BindingToTerm(const JsonObject& binding) {
  const JsonValue* type = FindMember(binding, "type");
  const JsonValue* value = FindMember(binding, "value");
  if (type == nullptr || !type->is_string() || value == nullptr ||
      !value->is_string()) {
    return Status::ParseError("sparql-json: binding missing type/value");
  }
  const std::string& kind = type->string();
  if (kind == "uri") return Term::Iri(value->string());
  if (kind == "bnode") return Term::Iri("_:" + value->string());
  if (kind == "literal" || kind == "typed-literal") {
    const JsonValue* lang = FindMember(binding, "xml:lang");
    if (lang != nullptr && lang->is_string() && !lang->string().empty()) {
      return Term::LangLiteral(value->string(), lang->string());
    }
    const JsonValue* datatype = FindMember(binding, "datatype");
    if (datatype != nullptr && datatype->is_string() &&
        !datatype->string().empty()) {
      return Term::TypedLiteral(value->string(), datatype->string());
    }
    return Term::Literal(value->string());
  }
  return Status::ParseError("sparql-json: unknown binding type '" + kind +
                            "'");
}

StatusOr<JsonValue> ParseDocument(std::string_view json) {
  JsonParser parser(json);
  auto document = parser.Parse();
  if (!document.ok()) return document.status();
  if (!document->is_object()) {
    return Status::ParseError("sparql-json: document is not an object");
  }
  return document;
}

}  // namespace

StatusOr<ResultSet> ParseSparqlResultsJson(std::string_view json,
                                           const TermInterner& intern) {
  SOFYA_ASSIGN_OR_RETURN(JsonValue document, ParseDocument(json));

  const JsonValue* head = FindMember(document.object(), "head");
  if (head == nullptr || !head->is_object()) {
    return Status::ParseError("sparql-json: missing head");
  }
  ResultSet results;
  if (const JsonValue* vars = FindMember(head->object(), "vars")) {
    if (!vars->is_array()) {
      return Status::ParseError("sparql-json: head.vars is not an array");
    }
    for (const JsonValue& v : vars->array()) {
      if (!v.is_string()) {
        return Status::ParseError("sparql-json: head.vars entry not a string");
      }
      results.var_names.push_back(v.string());
    }
  }

  const JsonValue* body = FindMember(document.object(), "results");
  if (body == nullptr || !body->is_object()) {
    return Status::ParseError("sparql-json: missing results");
  }
  const JsonValue* bindings = FindMember(body->object(), "bindings");
  if (bindings == nullptr || !bindings->is_array()) {
    return Status::ParseError("sparql-json: missing results.bindings");
  }

  for (const JsonValue& solution : bindings->array()) {
    if (!solution.is_object()) {
      return Status::ParseError("sparql-json: solution is not an object");
    }
    std::vector<TermId> row(results.var_names.size(), kNullTermId);
    for (const auto& [var, binding] : solution.object()) {
      int column = -1;
      for (size_t i = 0; i < results.var_names.size(); ++i) {
        if (results.var_names[i] == var) {
          column = static_cast<int>(i);
          break;
        }
      }
      // Bindings for undeclared variables are ignored (lenient, like most
      // clients: some servers omit head.vars entries under projection *).
      if (column < 0) continue;
      if (!binding.is_object()) {
        return Status::ParseError("sparql-json: binding is not an object");
      }
      SOFYA_ASSIGN_OR_RETURN(Term term, BindingToTerm(binding.object()));
      row[column] = intern(term);
    }
    results.rows.push_back(std::move(row));
  }
  return results;
}

StatusOr<bool> ParseSparqlAskJson(std::string_view json) {
  SOFYA_ASSIGN_OR_RETURN(JsonValue document, ParseDocument(json));
  const JsonValue* value = FindMember(document.object(), "boolean");
  if (value == nullptr || !value->is_bool()) {
    return Status::ParseError("sparql-json: ASK result missing boolean");
  }
  return value->boolean();
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

StatusOr<std::string> WriteSparqlResultsJson(const ResultSet& results,
                                             const TermDecoder& decode) {
  std::string out = "{\"head\":{\"vars\":[";
  for (size_t i = 0; i < results.var_names.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += JsonEscape(results.var_names[i]);
    out += '"';
  }
  out += "]},\"results\":{\"bindings\":[";
  for (size_t r = 0; r < results.rows.size(); ++r) {
    if (r > 0) out += ',';
    out += '{';
    bool first = true;
    for (size_t c = 0; c < results.rows[r].size() &&
                       c < results.var_names.size();
         ++c) {
      const TermId id = results.rows[r][c];
      if (id == kNullTermId) continue;  // Unbound: omitted per the spec.
      SOFYA_ASSIGN_OR_RETURN(Term term, decode(id));
      if (!first) out += ',';
      first = false;
      out += '"';
      out += JsonEscape(results.var_names[c]);
      out += "\":{";
      if (term.is_iri()) {
        if (term.is_blank()) {
          out += "\"type\":\"bnode\",\"value\":\"" +
                 JsonEscape(term.lexical().substr(2)) + '"';
        } else {
          out += "\"type\":\"uri\",\"value\":\"" +
                 JsonEscape(term.lexical()) + '"';
        }
      } else {
        out += "\"type\":\"literal\",\"value\":\"" +
               JsonEscape(term.lexical()) + '"';
        if (!term.language().empty()) {
          out += ",\"xml:lang\":\"" + JsonEscape(term.language()) + '"';
        } else if (!term.datatype().empty()) {
          out += ",\"datatype\":\"" + JsonEscape(term.datatype()) + '"';
        }
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}}";
  return out;
}

std::string WriteSparqlAskJson(bool value) {
  return std::string("{\"head\":{},\"boolean\":") +
         (value ? "true" : "false") + "}";
}

}  // namespace sofya
