#include "sparql/parser.h"

#include <cctype>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/string_util.h"

namespace sofya {

namespace {

/// Token kinds produced by the lexer.
enum class TokKind {
  kKeyword,   ///< SELECT / DISTINCT / WHERE / FILTER / LIMIT / OFFSET / PREFIX
  kVar,       ///< ?name
  kIri,       ///< <...>
  kPname,     ///< prefix:local or prefix: (in prologue)
  kLiteral,   ///< "..." with optional @lang / ^^<dt> (pre-assembled Term)
  kPunct,     ///< { } ( ) . * = != :
  kInt,       ///< unsigned integer
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // Keyword (upper-cased), var name, pname, punct, int.
  Term literal;       // For kLiteral.
  std::string iri;    // For kIri.
  size_t pos = 0;     // Byte offset, for error messages.
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  StatusOr<Token> Next() {
    SkipSpaceAndComments();
    Token token;
    token.pos = pos_;
    if (pos_ >= text_.size()) return token;  // kEnd.

    const char c = text_[pos_];

    if (c == '?' || c == '$') {
      ++pos_;
      const size_t start = pos_;
      while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
      if (pos_ == start) return Error("empty variable name");
      token.kind = TokKind::kVar;
      token.text = std::string(text_.substr(start, pos_ - start));
      return token;
    }

    if (c == '<') {
      const size_t close = text_.find('>', pos_ + 1);
      if (close == std::string_view::npos) return Error("unterminated IRI");
      token.kind = TokKind::kIri;
      token.iri = std::string(text_.substr(pos_ + 1, close - pos_ - 1));
      pos_ = close + 1;
      return token;
    }

    if (c == '"') {
      return LexLiteral(&token);
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      const size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      token.kind = TokKind::kInt;
      token.text = std::string(text_.substr(start, pos_ - start));
      return token;
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const size_t start = pos_;
      while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
      std::string word(text_.substr(start, pos_ - start));
      // prefixed name? (word ':' [local])
      if (pos_ < text_.size() && text_[pos_] == ':') {
        ++pos_;
        const size_t local_start = pos_;
        while (pos_ < text_.size() &&
               (IsNameChar(text_[pos_]) || text_[pos_] == '/' ||
                text_[pos_] == '#')) {
          ++pos_;
        }
        token.kind = TokKind::kPname;
        token.text =
            word + ":" + std::string(text_.substr(local_start,
                                                  pos_ - local_start));
        return token;
      }
      const std::string upper = [&] {
        std::string u = word;
        for (char& ch : u) {
          ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
        }
        return u;
      }();
      if (upper == "SELECT" || upper == "DISTINCT" || upper == "WHERE" ||
          upper == "FILTER" || upper == "LIMIT" || upper == "OFFSET" ||
          upper == "PREFIX" || upper == "ISIRI" || upper == "ISLITERAL") {
        token.kind = TokKind::kKeyword;
        token.text = upper;
        return token;
      }
      return Error(StrFormat("unexpected word '%s'", word.c_str()));
    }

    if (c == '!' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
      token.kind = TokKind::kPunct;
      token.text = "!=";
      pos_ += 2;
      return token;
    }
    if (c == '{' || c == '}' || c == '(' || c == ')' || c == '.' ||
        c == '*' || c == '=' || c == ':') {
      token.kind = TokKind::kPunct;
      token.text = std::string(1, c);
      ++pos_;
      return token;
    }
    return Error(StrFormat("unexpected character '%c'", c));
  }

 private:
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-';
  }

  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      if (std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      } else if (text_[pos_] == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  StatusOr<Token> LexLiteral(Token* token) {
    size_t i = pos_ + 1;
    bool escaped = false;
    while (i < text_.size()) {
      if (escaped) {
        escaped = false;
      } else if (text_[i] == '\\') {
        escaped = true;
      } else if (text_[i] == '"') {
        break;
      }
      ++i;
    }
    if (i >= text_.size()) return Error("unterminated string literal");
    const std::string lexical =
        UnescapeNTriples(text_.substr(pos_ + 1, i - pos_ - 1));
    pos_ = i + 1;
    token->kind = TokKind::kLiteral;
    if (pos_ < text_.size() && text_[pos_] == '@') {
      ++pos_;
      const size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ == start) return Error("empty language tag");
      token->literal = Term::LangLiteral(
          lexical, std::string(text_.substr(start, pos_ - start)));
      return *token;
    }
    if (pos_ + 1 < text_.size() && text_[pos_] == '^' &&
        text_[pos_ + 1] == '^') {
      pos_ += 2;
      if (pos_ >= text_.size() || text_[pos_] != '<') {
        return Error("expected <datatype> after ^^");
      }
      const size_t close = text_.find('>', pos_ + 1);
      if (close == std::string_view::npos) {
        return Error("unterminated datatype IRI");
      }
      token->literal = Term::TypedLiteral(
          lexical, std::string(text_.substr(pos_ + 1, close - pos_ - 1)));
      pos_ = close + 1;
      return *token;
    }
    token->literal = Term::Literal(lexical);
    return *token;
  }

  Status Error(std::string message) const {
    return Status::ParseError(
        StrFormat("%s (at offset %zu)", message.c_str(), pos_));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  Parser(std::string_view text, const TermInterner& intern,
         const PrefixMap* prefixes)
      : lexer_(text), intern_(intern) {
    if (prefixes != nullptr) {
      for (const auto& [prefix, ns_iri] : prefixes->Bindings()) {
        prefixes_.Bind(prefix, ns_iri);
      }
    }
  }

  StatusOr<SelectQuery> Parse() {
    SOFYA_RETURN_IF_ERROR(Advance());
    SOFYA_RETURN_IF_ERROR(ParsePrologue());
    SOFYA_RETURN_IF_ERROR(ExpectKeyword("SELECT"));

    SelectQuery query;
    if (CurrentIsKeyword("DISTINCT")) {
      query.Distinct();
      SOFYA_RETURN_IF_ERROR(Advance());
    }

    std::vector<std::string> projection_names;
    bool select_all = false;
    if (CurrentIsPunct("*")) {
      select_all = true;
      SOFYA_RETURN_IF_ERROR(Advance());
    } else {
      while (current_.kind == TokKind::kVar) {
        projection_names.push_back(current_.text);
        SOFYA_RETURN_IF_ERROR(Advance());
      }
      if (projection_names.empty()) {
        return Status::ParseError("SELECT needs '*' or at least one ?var");
      }
    }

    SOFYA_RETURN_IF_ERROR(ExpectKeyword("WHERE"));
    SOFYA_RETURN_IF_ERROR(ExpectPunct("{"));

    while (!CurrentIsPunct("}")) {
      if (current_.kind == TokKind::kEnd) {
        return Status::ParseError("unterminated WHERE group (missing '}')");
      }
      if (CurrentIsKeyword("FILTER")) {
        SOFYA_RETURN_IF_ERROR(Advance());
        SOFYA_RETURN_IF_ERROR(ParseFilter(&query));
      } else {
        SOFYA_RETURN_IF_ERROR(ParseClause(&query));
      }
    }
    SOFYA_RETURN_IF_ERROR(Advance());  // Consume '}'.

    // Modifiers, any order.
    while (current_.kind == TokKind::kKeyword) {
      if (current_.text == "LIMIT") {
        SOFYA_RETURN_IF_ERROR(Advance());
        SOFYA_ASSIGN_OR_RETURN(uint64_t n, ExpectInt());
        query.Limit(n);
      } else if (current_.text == "OFFSET") {
        SOFYA_RETURN_IF_ERROR(Advance());
        SOFYA_ASSIGN_OR_RETURN(uint64_t n, ExpectInt());
        query.Offset(n);
      } else {
        return Status::ParseError(
            StrFormat("unexpected keyword '%s' after WHERE group",
                      current_.text.c_str()));
      }
    }
    if (current_.kind != TokKind::kEnd) {
      return Status::ParseError("trailing content after query");
    }

    // Resolve the projection.
    if (!select_all) {
      std::vector<VarId> projection;
      for (const std::string& name : projection_names) {
        auto it = vars_.find(name);
        if (it == vars_.end()) {
          return Status::ParseError(StrFormat(
              "projected variable ?%s never used in WHERE", name.c_str()));
        }
        projection.push_back(it->second);
      }
      query.Select(std::move(projection));
    }

    // Transfer variable declarations (insertion-ordered).
    SelectQuery final_query;
    for (const std::string& name : var_order_) final_query.NewVar(name);
    for (const auto& clause : query.clauses()) {
      final_query.Where(clause.subject, clause.predicate, clause.object);
    }
    for (const auto& filter : query.filters()) final_query.Filter(filter);
    final_query.Select(query.projection());
    final_query.Distinct(query.distinct());
    final_query.Limit(query.limit()).Offset(query.offset());
    SOFYA_RETURN_IF_ERROR(final_query.Validate());
    return final_query;
  }

 private:
  Status Advance() {
    SOFYA_ASSIGN_OR_RETURN(current_, lexer_.Next());
    return Status::OK();
  }

  bool CurrentIsKeyword(const char* kw) const {
    return current_.kind == TokKind::kKeyword && current_.text == kw;
  }
  bool CurrentIsPunct(const char* p) const {
    return current_.kind == TokKind::kPunct && current_.text == p;
  }

  Status ExpectKeyword(const char* kw) {
    if (!CurrentIsKeyword(kw)) {
      return Status::ParseError(StrFormat("expected %s", kw));
    }
    return Advance();
  }
  Status ExpectPunct(const char* p) {
    if (!CurrentIsPunct(p)) {
      return Status::ParseError(StrFormat("expected '%s'", p));
    }
    return Advance();
  }
  StatusOr<uint64_t> ExpectInt() {
    if (current_.kind != TokKind::kInt) {
      return Status::ParseError("expected an integer");
    }
    const uint64_t value = std::stoull(current_.text);
    SOFYA_RETURN_IF_ERROR(Advance());
    return value;
  }

  Status ParsePrologue() {
    while (CurrentIsKeyword("PREFIX")) {
      SOFYA_RETURN_IF_ERROR(Advance());
      std::string prefix;
      if (current_.kind == TokKind::kPname &&
          EndsWith(current_.text, ":")) {
        prefix = current_.text.substr(0, current_.text.size() - 1);
      } else if (current_.kind == TokKind::kPname) {
        // "ex:" lexes as pname with empty local when followed by space;
        // handle "ex" ":" too.
        prefix = current_.text;
        const size_t colon = prefix.find(':');
        if (colon != std::string::npos && colon + 1 == prefix.size()) {
          prefix.pop_back();
        } else if (colon != std::string::npos) {
          return Status::ParseError("malformed PREFIX declaration");
        }
      } else if (current_.kind == TokKind::kPunct && current_.text == ":") {
        prefix = "";  // Default prefix.
      } else {
        return Status::ParseError("expected 'prefix:' after PREFIX");
      }
      SOFYA_RETURN_IF_ERROR(Advance());
      if (current_.kind != TokKind::kIri) {
        return Status::ParseError("expected <iri> in PREFIX declaration");
      }
      prefixes_.Bind(prefix, current_.iri);
      SOFYA_RETURN_IF_ERROR(Advance());
    }
    return Status::OK();
  }

  VarId VarFor(const std::string& name, SelectQuery* query) {
    auto it = vars_.find(name);
    if (it != vars_.end()) return it->second;
    const VarId id = query->NewVar(name);
    vars_.emplace(name, id);
    var_order_.push_back(name);
    return id;
  }

  /// Parses one term position; returns a NodeRef (consuming tokens).
  StatusOr<NodeRef> ParseNode(SelectQuery* query) {
    switch (current_.kind) {
      case TokKind::kVar: {
        const NodeRef ref = NodeRef::Variable(VarFor(current_.text, query));
        SOFYA_RETURN_IF_ERROR(Advance());
        return ref;
      }
      case TokKind::kIri: {
        const NodeRef ref =
            NodeRef::Constant(intern_(Term::Iri(current_.iri)));
        SOFYA_RETURN_IF_ERROR(Advance());
        return ref;
      }
      case TokKind::kPname: {
        SOFYA_ASSIGN_OR_RETURN(std::string iri,
                               prefixes_.Expand(current_.text));
        SOFYA_RETURN_IF_ERROR(Advance());
        return NodeRef::Constant(intern_(Term::Iri(iri)));
      }
      case TokKind::kLiteral: {
        const NodeRef ref = NodeRef::Constant(intern_(current_.literal));
        SOFYA_RETURN_IF_ERROR(Advance());
        return ref;
      }
      default:
        return Status::ParseError(
            StrFormat("expected a term at offset %zu", current_.pos));
    }
  }

  Status ParseClause(SelectQuery* query) {
    SOFYA_ASSIGN_OR_RETURN(NodeRef s, ParseNode(query));
    SOFYA_ASSIGN_OR_RETURN(NodeRef p, ParseNode(query));
    SOFYA_ASSIGN_OR_RETURN(NodeRef o, ParseNode(query));
    query->Where(s, p, o);
    // The trailing '.' is optional before '}'.
    if (CurrentIsPunct(".")) SOFYA_RETURN_IF_ERROR(Advance());
    return Status::OK();
  }

  Status ParseFilter(SelectQuery* query) {
    SOFYA_RETURN_IF_ERROR(ExpectPunct("("));

    if (CurrentIsKeyword("ISIRI") || CurrentIsKeyword("ISLITERAL")) {
      const bool is_iri = current_.text == "ISIRI";
      SOFYA_RETURN_IF_ERROR(Advance());
      SOFYA_RETURN_IF_ERROR(ExpectPunct("("));
      if (current_.kind != TokKind::kVar) {
        return Status::ParseError("isIRI/isLiteral takes a variable");
      }
      const VarId var = VarFor(current_.text, query);
      SOFYA_RETURN_IF_ERROR(Advance());
      SOFYA_RETURN_IF_ERROR(ExpectPunct(")"));
      SOFYA_RETURN_IF_ERROR(ExpectPunct(")"));
      query->Filter(is_iri ? FilterExpr::IsIri(var)
                           : FilterExpr::IsLiteral(var));
      return Status::OK();
    }

    if (current_.kind != TokKind::kVar) {
      return Status::ParseError("FILTER comparison must start with a ?var");
    }
    const VarId lhs = VarFor(current_.text, query);
    SOFYA_RETURN_IF_ERROR(Advance());

    bool negated;
    if (CurrentIsPunct("=")) {
      negated = false;
    } else if (CurrentIsPunct("!=")) {
      negated = true;
    } else {
      return Status::ParseError("expected '=' or '!=' in FILTER");
    }
    SOFYA_RETURN_IF_ERROR(Advance());

    if (current_.kind == TokKind::kVar) {
      const VarId rhs = VarFor(current_.text, query);
      SOFYA_RETURN_IF_ERROR(Advance());
      query->Filter(negated ? FilterExpr::VarNeqVar(lhs, rhs)
                            : FilterExpr::VarEqVar(lhs, rhs));
    } else {
      SOFYA_ASSIGN_OR_RETURN(NodeRef node, ParseNode(query));
      query->Filter(negated ? FilterExpr::VarNeqTerm(lhs, node.term())
                            : FilterExpr::VarEqTerm(lhs, node.term()));
    }
    return ExpectPunct(")");
  }

  Lexer lexer_;
  Token current_;
  const TermInterner& intern_;
  PrefixMap prefixes_;
  std::unordered_map<std::string, VarId> vars_;
  std::vector<std::string> var_order_;
};

}  // namespace

StatusOr<SelectQuery> ParseSelectQuery(std::string_view text,
                                       const TermInterner& intern,
                                       const PrefixMap* prefixes) {
  Parser parser(text, intern, prefixes);
  return parser.Parse();
}

StatusOr<SelectQuery> ParseSelectQuery(std::string_view text,
                                       Dictionary* dict,
                                       const PrefixMap* prefixes) {
  TermInterner intern = [dict](const Term& t) { return dict->Intern(t); };
  return ParseSelectQuery(text, intern, prefixes);
}

}  // namespace sofya
