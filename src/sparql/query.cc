#include "sparql/query.h"

#include "util/string_util.h"

namespace sofya {

VarId SelectQuery::NewVar(std::string name) {
  var_names_.push_back(std::move(name));
  return static_cast<VarId>(var_names_.size() - 1);
}

SelectQuery& SelectQuery::Where(NodeRef s, NodeRef p, NodeRef o) {
  clauses_.push_back(PatternClause{s, p, o});
  return *this;
}

SelectQuery& SelectQuery::Filter(FilterExpr filter) {
  filters_.push_back(filter);
  return *this;
}

SelectQuery& SelectQuery::Select(std::vector<VarId> vars) {
  projection_ = std::move(vars);
  return *this;
}

SelectQuery& SelectQuery::Distinct(bool distinct) {
  distinct_ = distinct;
  return *this;
}

SelectQuery& SelectQuery::Limit(uint64_t limit) {
  limit_ = limit;
  return *this;
}

SelectQuery& SelectQuery::Offset(uint64_t offset) {
  offset_ = offset;
  return *this;
}

Status SelectQuery::Validate() const {
  if (clauses_.empty()) {
    return Status::InvalidArgument("query has no WHERE clauses");
  }
  auto check_ref = [&](const NodeRef& ref) -> Status {
    if (ref.is_var() &&
        (ref.var() < 0 || ref.var() >= static_cast<VarId>(num_vars()))) {
      return Status::InvalidArgument(
          StrFormat("variable id %d out of range (have %zu vars)", ref.var(),
                    num_vars()));
    }
    return Status::OK();
  };
  for (const auto& c : clauses_) {
    SOFYA_RETURN_IF_ERROR(check_ref(c.subject));
    SOFYA_RETURN_IF_ERROR(check_ref(c.predicate));
    SOFYA_RETURN_IF_ERROR(check_ref(c.object));
  }
  auto check_var = [&](VarId v) -> Status {
    if (v < 0 || v >= static_cast<VarId>(num_vars())) {
      return Status::InvalidArgument(
          StrFormat("variable id %d out of range (have %zu vars)", v,
                    num_vars()));
    }
    return Status::OK();
  };
  for (const auto& f : filters_) {
    SOFYA_RETURN_IF_ERROR(check_var(f.lhs));
    if (f.kind == FilterExpr::Kind::kVarEqVar ||
        f.kind == FilterExpr::Kind::kVarNeqVar) {
      SOFYA_RETURN_IF_ERROR(check_var(f.rhs_var));
    }
  }
  for (VarId v : projection_) {
    SOFYA_RETURN_IF_ERROR(check_var(v));
  }
  return Status::OK();
}

namespace {

std::string RenderNode(const NodeRef& ref, const SelectQuery& q,
                       const Dictionary& dict) {
  if (ref.is_var()) return "?" + q.var_name(ref.var());
  if (!dict.Contains(ref.term())) {
    return StrFormat("<urn:sofya:id:%u>", ref.term());
  }
  return dict.Decode(ref.term()).ToNTriples();
}

std::string RenderVar(const SelectQuery& q, VarId v) {
  return "?" + q.var_name(v);
}

}  // namespace

std::string SelectQuery::PlanFingerprint() const {
  // Raw variable numbering, deliberately: the compiled plan this key maps
  // to stores raw VarIds, so queries whose internal numbering differs must
  // not collide (their shared plan would bind columns to the wrong names).
  // Solution modifiers are omitted — plans don't depend on them.
  std::string out;
  out.reserve(16 + 16 * clauses_.size());
  auto add_node = [&](const NodeRef& ref) {
    if (ref.is_var()) {
      out += '?';
      out += std::to_string(ref.var());
    } else {
      out += '#';
      out += std::to_string(ref.term());
    }
    out += ' ';
  };
  out += "v:";
  for (const std::string& name : var_names_) {
    out += name;
    out += ',';
  }
  out += ";c:";
  for (const auto& c : clauses_) {
    add_node(c.subject);
    add_node(c.predicate);
    add_node(c.object);
    out += '.';
  }
  out += ";f:";
  for (const auto& f : filters_) {
    out += std::to_string(static_cast<int>(f.kind));
    out += '/';
    out += std::to_string(f.lhs);
    out += '/';
    out += std::to_string(f.rhs_var);
    out += '/';
    out += std::to_string(f.rhs_term);
    out += ',';
  }
  out += ";p:";
  if (projection_.empty()) {
    for (VarId v = 0; v < static_cast<VarId>(num_vars()); ++v) {
      out += std::to_string(v);
      out += ',';
    }
  } else {
    for (VarId v : projection_) {
      out += std::to_string(v);
      out += ',';
    }
  }
  return out;
}

std::string SelectQuery::Fingerprint() const {
  // Canonical variable numbering: ids are renumbered by first use
  // (projection, then clauses, then filters), so the fingerprint is
  // invariant to declaration order. Two builds of the same query — in
  // particular a query and its ToSparql -> ParseSelectQuery round trip,
  // where the parser assigns ids in textual order — collide as they
  // should. Variable *names* still participate (they name result
  // columns), so alpha-renamed queries stay distinct.
  std::vector<VarId> canon(num_vars(), -1);
  VarId next = 0;
  auto visit = [&](VarId v) {
    if (v >= 0 && v < static_cast<VarId>(num_vars()) && canon[v] < 0) {
      canon[v] = next++;
    }
  };
  if (projection_.empty()) {
    // SELECT *: every declared variable is projected, declaration order.
    for (VarId v = 0; v < static_cast<VarId>(num_vars()); ++v) visit(v);
  } else {
    for (VarId v : projection_) visit(v);
  }
  for (const auto& c : clauses_) {
    if (c.subject.is_var()) visit(c.subject.var());
    if (c.predicate.is_var()) visit(c.predicate.var());
    if (c.object.is_var()) visit(c.object.var());
  }
  for (const auto& f : filters_) {
    visit(f.lhs);
    visit(f.rhs_var);
  }
  for (VarId v = 0; v < static_cast<VarId>(num_vars()); ++v) visit(v);

  std::string out;
  out.reserve(16 + 16 * clauses_.size());
  auto add_node = [&](const NodeRef& ref) {
    if (ref.is_var()) {
      out += '?';
      out += std::to_string(canon[ref.var()]);
    } else {
      out += '#';
      out += std::to_string(ref.term());
    }
    out += ' ';
  };
  out += "v:";
  {
    // Names listed in canonical order.
    std::vector<const std::string*> names(num_vars());
    for (VarId v = 0; v < static_cast<VarId>(num_vars()); ++v) {
      names[canon[v]] = &var_names_[v];
    }
    for (const std::string* name : names) {
      out += *name;
      out += ',';
    }
  }
  out += ";c:";
  for (const auto& c : clauses_) {
    add_node(c.subject);
    add_node(c.predicate);
    add_node(c.object);
    out += '.';
  }
  out += ";f:";
  for (const auto& f : filters_) {
    out += std::to_string(static_cast<int>(f.kind));
    out += '/';
    out += std::to_string(f.lhs < 0 ? -1 : canon[f.lhs]);
    out += '/';
    out += std::to_string(f.rhs_var < 0 ? -1 : canon[f.rhs_var]);
    out += '/';
    out += std::to_string(f.rhs_term);
    out += ',';
  }
  out += ";p:";
  if (projection_.empty()) {
    // Normalize SELECT * to the explicit all-variables projection.
    for (VarId v = 0; v < static_cast<VarId>(num_vars()); ++v) {
      out += std::to_string(canon[v]);
      out += ',';
    }
  } else {
    for (VarId v : projection_) {
      out += std::to_string(canon[v]);
      out += ',';
    }
  }
  out += distinct_ ? ";d1" : ";d0";
  out += ";l:";
  out += std::to_string(limit_);
  out += ";o:";
  out += std::to_string(offset_);
  return out;
}

std::string SelectQuery::ToSparql(const Dictionary& dict) const {
  std::string out = "SELECT ";
  if (distinct_) out += "DISTINCT ";
  if (projection_.empty()) {
    out += "*";
  } else {
    std::vector<std::string> vars;
    vars.reserve(projection_.size());
    for (VarId v : projection_) vars.push_back(RenderVar(*this, v));
    out += Join(vars, " ");
  }
  out += RenderWhere(dict);
  if (offset_ > 0) out += StrFormat(" OFFSET %llu",
                                    static_cast<unsigned long long>(offset_));
  if (limit_ != kNoLimit) {
    out += StrFormat(" LIMIT %llu", static_cast<unsigned long long>(limit_));
  }
  return out;
}

std::string SelectQuery::ToSparqlAsk(const Dictionary& dict) const {
  return "ASK" + RenderWhere(dict);
}

std::string SelectQuery::RenderWhere(const Dictionary& dict) const {
  std::string out = " WHERE {\n";
  for (const auto& c : clauses_) {
    out += "  " + RenderNode(c.subject, *this, dict) + " " +
           RenderNode(c.predicate, *this, dict) + " " +
           RenderNode(c.object, *this, dict) + " .\n";
  }
  for (const auto& f : filters_) {
    std::string expr;
    switch (f.kind) {
      case FilterExpr::Kind::kVarEqVar:
        expr = RenderVar(*this, f.lhs) + " = " + RenderVar(*this, f.rhs_var);
        break;
      case FilterExpr::Kind::kVarNeqVar:
        expr = RenderVar(*this, f.lhs) + " != " + RenderVar(*this, f.rhs_var);
        break;
      case FilterExpr::Kind::kVarEqTerm:
        expr = RenderVar(*this, f.lhs) + " = " +
               (dict.Contains(f.rhs_term)
                    ? dict.Decode(f.rhs_term).ToNTriples()
                    : StrFormat("<urn:sofya:id:%u>", f.rhs_term));
        break;
      case FilterExpr::Kind::kVarNeqTerm:
        expr = RenderVar(*this, f.lhs) + " != " +
               (dict.Contains(f.rhs_term)
                    ? dict.Decode(f.rhs_term).ToNTriples()
                    : StrFormat("<urn:sofya:id:%u>", f.rhs_term));
        break;
      case FilterExpr::Kind::kIsIri:
        expr = "isIRI(" + RenderVar(*this, f.lhs) + ")";
        break;
      case FilterExpr::Kind::kIsLiteral:
        expr = "isLiteral(" + RenderVar(*this, f.lhs) + ")";
        break;
    }
    out += "  FILTER(" + expr + ")\n";
  }
  out += "}";
  return out;
}

}  // namespace sofya
