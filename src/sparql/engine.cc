#include "sparql/engine.h"

#include <algorithm>
#include <cstdint>
#include <future>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/hash.h"
#include "util/thread_pool.h"

namespace sofya {

namespace {

using Row = std::vector<TermId>;  // Indexed by VarId; 0 = unbound.

// Filters are attached to the earliest pipeline stage where every variable
// they mention is bound, so applicability is established statically and this
// only evaluates the predicate.
bool FilterPasses(const FilterExpr& f, const Row& row,
                  const Dictionary* dict) {
  switch (f.kind) {
    case FilterExpr::Kind::kVarEqVar:
      return row[f.lhs] == row[f.rhs_var];
    case FilterExpr::Kind::kVarNeqVar:
      return row[f.lhs] != row[f.rhs_var];
    case FilterExpr::Kind::kVarEqTerm:
      return row[f.lhs] == f.rhs_term;
    case FilterExpr::Kind::kVarNeqTerm:
      return row[f.lhs] != f.rhs_term;
    case FilterExpr::Kind::kIsIri:
      // Without a dictionary term kinds are unknowable; pass conservatively.
      return dict == nullptr || !dict->Contains(row[f.lhs]) ||
             dict->Decode(row[f.lhs]).is_iri();
    case FilterExpr::Kind::kIsLiteral:
      return dict == nullptr || !dict->Contains(row[f.lhs]) ||
             dict->Decode(row[f.lhs]).is_literal();
  }
  return true;
}

struct RowHash {
  size_t operator()(const Row& row) const {
    size_t seed = row.size();
    for (TermId id : row) HashCombine(seed, id);
    return seed;
  }
};

// ---------------------------------------------------------------------------
// Pipeline execution: a cursor per stage over the store's index range for
// the current partial binding. Bindings live in one shared row; no undo is
// needed on backtrack because each stage statically binds the same variable
// set and always overwrites before deeper stages read.
//
// `emit` is called once per solution (full binding row) and returns false to
// stop the whole pipeline — this is how LIMIT and ASK terminate early.

// When `driver` is non-null the level-0 cursor iterates that single span
// instead of probing the store — the parallel scan path injects one chunk
// of the driver clause's sharded range per task.
template <typename Emit>
void RunPlan(const TripleStore& store, const CompiledPlan& plan,
             size_t num_vars, const Dictionary* dict, EvalStats& stats,
             Emit&& emit, const std::span<const Triple>* driver = nullptr) {
  if (plan.dangling_filter || plan.clauses.empty()) return;

  // A cursor walks the per-shard spans of one MatchView in shard order;
  // `cur` caches the active span so the inner loop stays branch-cheap.
  struct Cursor {
    MatchView view;
    std::span<const Triple> cur;
    size_t span_i = 0;
    size_t pos = 0;
  };
  std::vector<Cursor> cursors(plan.clauses.size());
  Row bindings(num_vars, kNullTermId);

  auto open = [&](size_t level) {
    const CompiledClause& cc = plan.clauses[level];
    auto resolve = [&](const CompiledSlot& slot) -> TermId {
      switch (slot.kind) {
        case SlotKind::kConst:
          return slot.constant;
        case SlotKind::kBoundVar:
          return bindings[slot.var];
        default:
          return kNullTermId;  // Wildcard.
      }
    };
    ++stats.index_probes;
    Cursor& cursor = cursors[level];
    cursor.view = store.MatchSpans(TriplePattern(
        resolve(cc.slots[0]), resolve(cc.slots[1]), resolve(cc.slots[2])));
    cursor.cur = cursor.view.num_spans() > 0 ? cursor.view.span(0)
                                             : std::span<const Triple>();
    cursor.span_i = 0;
    cursor.pos = 0;
  };

  const size_t depth = plan.clauses.size();
  size_t level = 0;
  if (driver != nullptr) {
    // The caller already probed the driver range (and charged the probe).
    cursors[0].cur = *driver;
  } else {
    open(0);
  }
  while (true) {
    Cursor& cursor = cursors[level];
    const CompiledClause& cc = plan.clauses[level];

    // Advance this stage to its next accepted triple.
    bool advanced = false;
    while (true) {
      if (cursor.pos >= cursor.cur.size()) {
        if (cursor.span_i + 1 < cursor.view.num_spans()) {
          ++cursor.span_i;
          cursor.cur = cursor.view.span(cursor.span_i);
          cursor.pos = 0;
          continue;
        }
        break;  // Every span drained.
      }
      const Triple& t = cursor.cur[cursor.pos++];
      ++stats.triples_scanned;
      const TermId values[3] = {t.subject, t.predicate, t.object};
      bool accepted = true;
      for (int i = 0; i < 3 && accepted; ++i) {
        const CompiledSlot& slot = cc.slots[i];
        switch (slot.kind) {
          case SlotKind::kConst:
            accepted = values[i] == slot.constant;
            break;
          case SlotKind::kBoundVar:
          case SlotKind::kCheck:
            accepted = values[i] == bindings[slot.var];
            break;
          case SlotKind::kBind:
            bindings[slot.var] = values[i];
            break;
        }
      }
      if (!accepted) continue;
      for (const FilterExpr& f : cc.filters) {
        if (!FilterPasses(f, bindings, dict)) {
          accepted = false;
          break;
        }
      }
      if (!accepted) continue;
      ++stats.intermediate_rows;
      advanced = true;
      break;
    }

    if (!advanced) {
      if (level == 0) return;  // Pipeline drained.
      --level;
      continue;
    }
    if (level + 1 == depth) {
      if (!emit(bindings)) return;  // LIMIT/ASK pushdown.
    } else {
      ++level;
      open(level);
    }
  }
}

// One parallel-scan task: a slice of the driver clause's sharded range.
struct ScanChunk {
  std::span<const Triple> slice;
};

// Decides whether Select may fan the driver range onto `pool` and, if so,
// returns the chunk list (in span/offset order — concatenating chunk
// outputs reproduces the sequential enumeration exactly).
std::vector<ScanChunk> PlanScanChunks(const MatchView& driver,
                                      const ThreadPool* pool,
                                      size_t min_rows, uint64_t limit) {
  std::vector<ScanChunk> chunks;
  if (pool == nullptr || pool->num_threads() < 2) return chunks;
  // LIMIT keeps the early-stop pushdown; a worker thread must not block on
  // sibling pool tasks (the alignment scheduler may run queries on-pool).
  if (limit != kNoLimit || pool->OnWorkerThread()) return chunks;
  if (driver.total() < min_rows) return chunks;
  const size_t target = std::max<size_t>(
      min_rows / 2, driver.total() / (pool->num_threads() * 4));
  for (size_t si = 0; si < driver.num_spans(); ++si) {
    const std::span<const Triple> span = driver.span(si);
    for (size_t at = 0; at < span.size(); at += target) {
      chunks.push_back({span.subspan(at, std::min(target, span.size() - at))});
    }
  }
  if (chunks.size() < 2) chunks.clear();
  return chunks;
}

// Shared SELECT consumer: project, DISTINCT-probe, skip OFFSET, stop at
// LIMIT — streaming, so the pipeline never materializes skipped rows.
//
// With a scan pool (and no LIMIT), the driver clause's sharded range is cut
// into chunks that run the full pipeline concurrently into per-chunk row
// buffers; chunks are then merged in span order through the very same
// DISTINCT/OFFSET consumer, so rows AND EvalStats are bit-identical to the
// sequential path (the work is a partition of the same index ranges).
StatusOr<ResultSet> RunSelect(const TripleStore& store,
                              const CompiledPlan& plan,
                              const SelectQuery& query, const Dictionary* dict,
                              EvalStats& stats, ThreadPool* pool,
                              size_t parallel_min_rows) {
  ResultSet result;
  result.var_names.reserve(plan.projection.size());
  for (VarId v : plan.projection) result.var_names.push_back(query.var_name(v));

  const uint64_t offset = query.offset();
  const uint64_t limit = query.limit();

  std::unordered_set<Row, RowHash> seen;
  uint64_t skipped = 0;
  auto consume = [&](Row&& out) {
    if (query.distinct() && !seen.insert(out).second) {
      return true;  // Duplicate: keep pulling.
    }
    if (skipped < offset) {
      ++skipped;
      return true;
    }
    result.rows.push_back(std::move(out));
    return limit == kNoLimit || result.rows.size() < limit;
  };

  if (limit != 0) {
    std::vector<ScanChunk> chunks;
    if (pool != nullptr && !plan.dangling_filter && !plan.clauses.empty()) {
      const CompiledClause& cc = plan.clauses[0];
      auto resolve = [&](const CompiledSlot& slot) -> TermId {
        // Level 0 binds from nothing: slots are consts, binds or wildcards.
        return slot.kind == SlotKind::kConst ? slot.constant : kNullTermId;
      };
      const MatchView driver = store.MatchSpans(TriplePattern(
          resolve(cc.slots[0]), resolve(cc.slots[1]), resolve(cc.slots[2])));
      chunks = PlanScanChunks(driver, pool, parallel_min_rows, limit);
      if (!chunks.empty()) {
        ++stats.index_probes;  // The one driver probe, as in sequential.
        struct ChunkResult {
          std::vector<Row> rows;
          EvalStats stats;
        };
        std::vector<std::future<ChunkResult>> futures;
        futures.reserve(chunks.size());
        for (const ScanChunk& chunk : chunks) {
          futures.push_back(pool->Submit([&, chunk] {
            ChunkResult cr;
            RunPlan(
                store, plan, query.num_vars(), dict, cr.stats,
                [&](const Row& bindings) {
                  Row out;
                  out.reserve(plan.projection.size());
                  for (VarId v : plan.projection) out.push_back(bindings[v]);
                  cr.rows.push_back(std::move(out));
                  return true;
                },
                &chunk.slice);
            return cr;
          }));
        }
        bool more = true;
        for (auto& future : futures) {
          // Always drain every future (workers borrow spans and the plan);
          // `more` only gates consumption.
          ChunkResult cr = future.get();
          stats.intermediate_rows += cr.stats.intermediate_rows;
          stats.index_probes += cr.stats.index_probes;
          stats.triples_scanned += cr.stats.triples_scanned;
          for (Row& row : cr.rows) {
            if (!more) break;
            more = consume(std::move(row));
          }
        }
        stats.result_rows = result.rows.size();
        return result;
      }
    }
    RunPlan(store, plan, query.num_vars(), dict, stats,
            [&](const Row& bindings) {
              Row out;
              out.reserve(plan.projection.size());
              for (VarId v : plan.projection) out.push_back(bindings[v]);
              return consume(std::move(out));
            });
  }
  stats.result_rows = result.rows.size();
  return result;
}

StatusOr<bool> RunAsk(const TripleStore& store, const CompiledPlan& plan,
                      const SelectQuery& query, const Dictionary* dict,
                      EvalStats& stats) {
  bool found = false;
  RunPlan(store, plan, query.num_vars(), dict, stats, [&](const Row&) {
    found = true;
    return false;  // First solution settles existence.
  });
  stats.result_rows = found ? 1 : 0;
  return found;
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine: plan cache + evaluation.

std::shared_ptr<const CompiledPlan> Engine::PlanFor(const SelectQuery& query,
                                                    bool* cache_hit) const {
  const uint64_t epoch = store_->mutation_epoch();
  if (options_.plan_cache_capacity == 0) {
    if (cache_hit != nullptr) *cache_hit = false;
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::make_shared<const CompiledPlan>(
        CompilePlan(query, store_, options_.planner));
  }

  // The key excludes solution modifiers (PlanFingerprint): Ask(q),
  // Select(q LIMIT 10), and every page of an OFFSET walk share one plan —
  // which is also what makes the walk's enumeration order consistent.
  const std::string key = query.PlanFingerprint();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(key);
    if (it != plans_.end() && it->second->store_epoch == epoch) {
      if (cache_hit != nullptr) *cache_hit = true;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }

  // Plan outside the lock: planning reads memoized store statistics and can
  // run concurrently; last writer for a key wins (same epoch ⇒ same plan).
  auto plan = std::make_shared<const CompiledPlan>(
      CompilePlan(query, store_, options_.planner));
  if (cache_hit != nullptr) *cache_hit = false;
  misses_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (plans_.size() >= options_.plan_cache_capacity) plans_.clear();
    plans_[key] = plan;
  }
  return plan;
}

StatusOr<ResultSet> Engine::Select(const SelectQuery& query,
                                   EvalStats* stats) const {
  SOFYA_RETURN_IF_ERROR(query.Validate());
  EvalStats local;
  bool hit = false;
  const std::shared_ptr<const CompiledPlan> plan = PlanFor(query, &hit);
  (hit ? local.plan_cache_hits : local.plan_cache_misses) = 1;
  auto result = RunSelect(*store_, *plan, query, dict_, local,
                          options_.scan_pool, options_.parallel_scan_min_rows);
  if (stats != nullptr) *stats = local;
  return result;
}

StatusOr<bool> Engine::Ask(const SelectQuery& query, EvalStats* stats) const {
  SOFYA_RETURN_IF_ERROR(query.Validate());
  EvalStats local;
  bool hit = false;
  const std::shared_ptr<const CompiledPlan> plan = PlanFor(query, &hit);
  (hit ? local.plan_cache_hits : local.plan_cache_misses) = 1;
  auto result = RunAsk(*store_, *plan, query, dict_, local);
  if (stats != nullptr) *stats = local;
  return result;
}

StatusOr<PlanExplain> Engine::Explain(const SelectQuery& query) const {
  SOFYA_RETURN_IF_ERROR(query.Validate());
  // Peek at the cache without charging a hit/miss: EXPLAIN is a
  // diagnostic, not a query. A valid cached plan is reused as-is — the
  // plan is a pure function of (fingerprint, epoch, options), so
  // recompiling could only reproduce it.
  std::shared_ptr<const CompiledPlan> plan;
  if (options_.plan_cache_capacity > 0) {
    const std::string key = query.PlanFingerprint();
    const uint64_t epoch = store_->mutation_epoch();
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(key);
    if (it != plans_.end() && it->second->store_epoch == epoch) {
      plan = it->second;
    }
  }
  const bool cached = plan != nullptr;
  if (!cached) {
    plan = std::make_shared<const CompiledPlan>(
        CompilePlan(query, store_, options_.planner));
  }
  PlanExplain explain = ExplainPlan(*plan, query, dict_);
  explain.from_cache = cached;
  return explain;
}

// ---------------------------------------------------------------------------
// One-shot helpers.

StatusOr<ResultSet> Evaluate(const TripleStore& store,
                             const SelectQuery& query, EvalStats* stats,
                             const Dictionary* dict,
                             const PlannerOptions& planner) {
  SOFYA_RETURN_IF_ERROR(query.Validate());
  EvalStats local;
  const CompiledPlan plan = CompilePlan(query, &store, planner);
  auto result = RunSelect(store, plan, query, dict, local,
                          /*pool=*/nullptr, /*parallel_min_rows=*/0);
  if (stats != nullptr) *stats = local;
  return result;
}

StatusOr<bool> EvaluateAsk(const TripleStore& store, const SelectQuery& query,
                           EvalStats* stats, const Dictionary* dict,
                           const PlannerOptions& planner) {
  SOFYA_RETURN_IF_ERROR(query.Validate());
  EvalStats local;
  const CompiledPlan plan = CompilePlan(query, &store, planner);
  auto result = RunAsk(store, plan, query, dict, local);
  if (stats != nullptr) *stats = local;
  return result;
}

}  // namespace sofya
