#include "sparql/engine.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "util/hash.h"

namespace sofya {

namespace {

using Row = std::vector<TermId>;  // Indexed by VarId; 0 = unbound.

// True once every variable a filter mentions is bound in `row`.
bool FilterApplicable(const FilterExpr& f, const Row& row) {
  if (row[f.lhs] == kNullTermId) return false;
  if ((f.kind == FilterExpr::Kind::kVarEqVar ||
       f.kind == FilterExpr::Kind::kVarNeqVar) &&
      row[f.rhs_var] == kNullTermId) {
    return false;
  }
  return true;
}

bool FilterPasses(const FilterExpr& f, const Row& row,
                  const Dictionary* dict) {
  switch (f.kind) {
    case FilterExpr::Kind::kVarEqVar:
      return row[f.lhs] == row[f.rhs_var];
    case FilterExpr::Kind::kVarNeqVar:
      return row[f.lhs] != row[f.rhs_var];
    case FilterExpr::Kind::kVarEqTerm:
      return row[f.lhs] == f.rhs_term;
    case FilterExpr::Kind::kVarNeqTerm:
      return row[f.lhs] != f.rhs_term;
    case FilterExpr::Kind::kIsIri:
      // Without a dictionary term kinds are unknowable; pass conservatively.
      return dict == nullptr || !dict->Contains(row[f.lhs]) ||
             dict->Decode(row[f.lhs]).is_iri();
    case FilterExpr::Kind::kIsLiteral:
      return dict == nullptr || !dict->Contains(row[f.lhs]) ||
             dict->Decode(row[f.lhs]).is_literal();
  }
  return true;
}

// Selectivity estimate of a clause under the current binding: each position
// bound by a constant or an already-bound variable adds specificity.
int BoundScore(const PatternClause& clause, const std::vector<bool>& bound) {
  auto score = [&](const NodeRef& ref) {
    if (!ref.is_var()) return 1;
    return bound[ref.var()] ? 1 : 0;
  };
  // Weight predicate binding slightly higher: the POS index makes it the
  // cheapest entry point, matching how a real optimizer would order.
  return 3 * score(clause.predicate) + 2 * score(clause.subject) +
         2 * score(clause.object);
}

struct RowHash {
  size_t operator()(const Row& row) const {
    size_t seed = row.size();
    for (TermId id : row) HashCombine(seed, id);
    return seed;
  }
};

}  // namespace

StatusOr<ResultSet> Evaluate(const TripleStore& store,
                             const SelectQuery& query, EvalStats* stats,
                             const Dictionary* dict) {
  SOFYA_RETURN_IF_ERROR(query.Validate());

  EvalStats local_stats;
  const size_t num_vars = query.num_vars();

  // Greedy clause ordering.
  std::vector<const PatternClause*> pending;
  pending.reserve(query.clauses().size());
  for (const auto& c : query.clauses()) pending.push_back(&c);

  std::vector<const PatternClause*> ordered;
  std::vector<bool> bound(num_vars, false);
  while (!pending.empty()) {
    auto best = std::max_element(
        pending.begin(), pending.end(),
        [&](const PatternClause* a, const PatternClause* b) {
          return BoundScore(*a, bound) < BoundScore(*b, bound);
        });
    const PatternClause* chosen = *best;
    pending.erase(best);
    ordered.push_back(chosen);
    for (const NodeRef* ref :
         {&chosen->subject, &chosen->predicate, &chosen->object}) {
      if (ref->is_var()) bound[ref->var()] = true;
    }
  }

  // Index-nested-loop join.
  std::vector<Row> rows;
  rows.emplace_back(num_vars, kNullTermId);

  for (const PatternClause* clause : ordered) {
    std::vector<Row> next;
    for (const Row& row : rows) {
      auto resolve = [&](const NodeRef& ref) -> TermId {
        if (!ref.is_var()) return ref.term();
        return row[ref.var()];  // kNullTermId if unbound => wildcard.
      };
      TriplePattern pattern(resolve(clause->subject),
                            resolve(clause->predicate),
                            resolve(clause->object));
      ++local_stats.index_probes;
      store.ForEachMatch(pattern, [&](const Triple& t) {
        Row extended = row;
        auto bind = [&](const NodeRef& ref, TermId value) {
          if (!ref.is_var()) return ref.term() == value;
          TermId& slot = extended[ref.var()];
          if (slot == kNullTermId) {
            slot = value;
            return true;
          }
          return slot == value;  // Repeated var within the clause.
        };
        if (!bind(clause->subject, t.subject)) return true;
        if (!bind(clause->predicate, t.predicate)) return true;
        if (!bind(clause->object, t.object)) return true;
        // Apply any filter that just became applicable.
        for (size_t fi = 0; fi < query.filters().size(); ++fi) {
          const FilterExpr& f = query.filters()[fi];
          if (FilterApplicable(f, extended) && !FilterPasses(f, extended, dict)) {
            return true;  // Row rejected; keep scanning.
          }
        }
        ++local_stats.intermediate_rows;
        next.push_back(std::move(extended));
        return true;
      });
    }
    rows = std::move(next);
    if (rows.empty()) break;
  }

  // Final filter pass (covers filters whose vars were never co-bound during
  // the join — with a connected BGP this is a no-op).
  std::vector<Row> filtered;
  filtered.reserve(rows.size());
  for (Row& row : rows) {
    bool pass = true;
    for (const FilterExpr& f : query.filters()) {
      if (!FilterApplicable(f, row)) {
        pass = false;  // Unbound filter variable: SPARQL error => row drops.
        break;
      }
      if (!FilterPasses(f, row, dict)) {
        pass = false;
        break;
      }
    }
    if (pass) filtered.push_back(std::move(row));
  }

  // Projection.
  std::vector<VarId> projection = query.projection();
  if (projection.empty()) {
    for (VarId v = 0; v < static_cast<VarId>(num_vars); ++v) {
      projection.push_back(v);
    }
  }

  ResultSet result;
  result.var_names.reserve(projection.size());
  for (VarId v : projection) result.var_names.push_back(query.var_name(v));

  std::vector<Row> projected;
  projected.reserve(filtered.size());
  for (const Row& row : filtered) {
    Row out;
    out.reserve(projection.size());
    for (VarId v : projection) out.push_back(row[v]);
    projected.push_back(std::move(out));
  }

  // DISTINCT before OFFSET/LIMIT (SPARQL semantics).
  if (query.distinct()) {
    std::unordered_set<Row, RowHash> seen;
    std::vector<Row> unique;
    unique.reserve(projected.size());
    for (Row& row : projected) {
      if (seen.insert(row).second) unique.push_back(std::move(row));
    }
    projected = std::move(unique);
  }

  const uint64_t offset = query.offset();
  const uint64_t limit = query.limit();
  if (offset >= projected.size()) {
    projected.clear();
  } else {
    projected.erase(projected.begin(),
                    projected.begin() + static_cast<ptrdiff_t>(offset));
    if (limit != kNoLimit && projected.size() > limit) {
      projected.resize(limit);
    }
  }

  result.rows = std::move(projected);
  local_stats.result_rows = result.rows.size();
  if (stats != nullptr) *stats = local_stats;
  return result;
}

}  // namespace sofya
