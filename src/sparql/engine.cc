#include "sparql/engine.h"

#include <algorithm>
#include <cstdint>
#include <future>
#include <limits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/hash.h"
#include "util/thread_pool.h"

namespace sofya {

namespace {

using Row = std::vector<TermId>;  // Indexed by VarId; 0 = unbound.

// Filters are attached to the earliest pipeline stage where every variable
// they mention is bound, so applicability is established statically and this
// only evaluates the predicate.
bool FilterPasses(const FilterExpr& f, const Row& row,
                  const Dictionary* dict) {
  switch (f.kind) {
    case FilterExpr::Kind::kVarEqVar:
      return row[f.lhs] == row[f.rhs_var];
    case FilterExpr::Kind::kVarNeqVar:
      return row[f.lhs] != row[f.rhs_var];
    case FilterExpr::Kind::kVarEqTerm:
      return row[f.lhs] == f.rhs_term;
    case FilterExpr::Kind::kVarNeqTerm:
      return row[f.lhs] != f.rhs_term;
    case FilterExpr::Kind::kIsIri:
      // Without a dictionary term kinds are unknowable; pass conservatively.
      return dict == nullptr || !dict->Contains(row[f.lhs]) ||
             dict->Decode(row[f.lhs]).is_iri();
    case FilterExpr::Kind::kIsLiteral:
      return dict == nullptr || !dict->Contains(row[f.lhs]) ||
             dict->Decode(row[f.lhs]).is_literal();
  }
  return true;
}

struct RowHash {
  size_t operator()(const Row& row) const {
    size_t seed = row.size();
    for (TermId id : row) HashCombine(seed, id);
    return seed;
  }
};

// ---------------------------------------------------------------------------
// Pipeline execution: a cursor per stage over the store's index range for
// the current partial binding. Bindings live in one shared row; no undo is
// needed on backtrack because each stage statically binds the same variable
// set and always overwrites before deeper stages read.
//
// `emit` is called once per solution (full binding row) and returns false to
// stop the whole pipeline — this is how LIMIT and ASK terminate early.

// When `driver` is non-null the level-0 cursor iterates that single span
// instead of probing the store — the parallel scan path injects one chunk
// of the driver clause's sharded range per task.
//
// `stage_rows`, when non-null, points at `plan.clauses.size()` counters that
// receive per-stage accepted-row counts (the EXPLAIN `actual` column).
// `stage_quota`, when non-null (adaptive execution), caps each stage's
// count; the first stage to exceed its quota aborts the whole pipeline,
// `*violated_level` reports which. Returns false only on a quota abort —
// emit-initiated stops (LIMIT/ASK) and normal drains return true.
template <typename Emit>
bool RunPlan(const TripleStore& store, const CompiledPlan& plan,
             size_t num_vars, const Dictionary* dict, EvalStats& stats,
             Emit&& emit, const std::span<const Triple>* driver = nullptr,
             uint64_t* stage_rows = nullptr,
             const double* stage_quota = nullptr,
             size_t* violated_level = nullptr) {
  if (plan.dangling_filter || plan.clauses.empty()) return true;

  // A cursor walks the per-shard spans of one MatchView in shard order;
  // `cur` caches the active span so the inner loop stays branch-cheap.
  struct Cursor {
    MatchView view;
    std::span<const Triple> cur;
    size_t span_i = 0;
    size_t pos = 0;
  };
  std::vector<Cursor> cursors(plan.clauses.size());
  Row bindings(num_vars, kNullTermId);

  auto open = [&](size_t level) {
    const CompiledClause& cc = plan.clauses[level];
    auto resolve = [&](const CompiledSlot& slot) -> TermId {
      switch (slot.kind) {
        case SlotKind::kConst:
          return slot.constant;
        case SlotKind::kBoundVar:
          return bindings[slot.var];
        default:
          return kNullTermId;  // Wildcard.
      }
    };
    ++stats.index_probes;
    Cursor& cursor = cursors[level];
    cursor.view = store.MatchSpans(TriplePattern(
        resolve(cc.slots[0]), resolve(cc.slots[1]), resolve(cc.slots[2])));
    cursor.cur = cursor.view.num_spans() > 0 ? cursor.view.span(0)
                                             : std::span<const Triple>();
    cursor.span_i = 0;
    cursor.pos = 0;
  };

  const size_t depth = plan.clauses.size();
  size_t level = 0;
  if (driver != nullptr) {
    // The caller already probed the driver range (and charged the probe).
    cursors[0].cur = *driver;
  } else {
    open(0);
  }
  while (true) {
    Cursor& cursor = cursors[level];
    const CompiledClause& cc = plan.clauses[level];

    // Advance this stage to its next accepted triple.
    bool advanced = false;
    while (true) {
      if (cursor.pos >= cursor.cur.size()) {
        if (cursor.span_i + 1 < cursor.view.num_spans()) {
          ++cursor.span_i;
          cursor.cur = cursor.view.span(cursor.span_i);
          cursor.pos = 0;
          continue;
        }
        break;  // Every span drained.
      }
      const Triple& t = cursor.cur[cursor.pos++];
      ++stats.triples_scanned;
      const TermId values[3] = {t.subject, t.predicate, t.object};
      bool accepted = true;
      for (int i = 0; i < 3 && accepted; ++i) {
        const CompiledSlot& slot = cc.slots[i];
        switch (slot.kind) {
          case SlotKind::kConst:
            accepted = values[i] == slot.constant;
            break;
          case SlotKind::kBoundVar:
          case SlotKind::kCheck:
            accepted = values[i] == bindings[slot.var];
            break;
          case SlotKind::kBind:
            bindings[slot.var] = values[i];
            break;
        }
      }
      if (!accepted) continue;
      for (const FilterExpr& f : cc.filters) {
        if (!FilterPasses(f, bindings, dict)) {
          accepted = false;
          break;
        }
      }
      if (!accepted) continue;
      ++stats.intermediate_rows;
      if (stage_rows != nullptr) {
        ++stage_rows[level];
        if (stage_quota != nullptr &&
            static_cast<double>(stage_rows[level]) > stage_quota[level]) {
          if (violated_level != nullptr) *violated_level = level;
          return false;  // Estimate blown: caller re-plans and restarts.
        }
      }
      advanced = true;
      break;
    }

    if (!advanced) {
      if (level == 0) return true;  // Pipeline drained.
      --level;
      continue;
    }
    if (level + 1 == depth) {
      if (!emit(bindings)) return true;  // LIMIT/ASK pushdown.
    } else {
      ++level;
      open(level);
    }
  }
}

// One parallel-scan task: a slice of the driver clause's sharded range.
struct ScanChunk {
  std::span<const Triple> slice;
};

// Decides whether Select may fan the driver range onto `pool` and, if so,
// returns the chunk list (in span/offset order — concatenating chunk
// outputs reproduces the sequential enumeration exactly).
std::vector<ScanChunk> PlanScanChunks(const MatchView& driver,
                                      const ThreadPool* pool,
                                      size_t min_rows, uint64_t limit) {
  std::vector<ScanChunk> chunks;
  if (pool == nullptr || pool->num_threads() < 2) return chunks;
  // LIMIT keeps the early-stop pushdown; a worker thread must not block on
  // sibling pool tasks (the alignment scheduler may run queries on-pool).
  if (limit != kNoLimit || pool->OnWorkerThread()) return chunks;
  if (driver.total() < min_rows) return chunks;
  // At least one row per chunk: a zero target (tiny driver, low min_rows,
  // many threads) would otherwise loop forever emitting empty chunks.
  const size_t target = std::max<size_t>(
      {size_t{1}, min_rows / 2, driver.total() / (pool->num_threads() * 4)});
  for (size_t si = 0; si < driver.num_spans(); ++si) {
    const std::span<const Triple> span = driver.span(si);
    for (size_t at = 0; at < span.size(); at += target) {
      chunks.push_back({span.subspan(at, std::min(target, span.size() - at))});
    }
  }
  if (chunks.size() < 2) chunks.clear();
  return chunks;
}

// Records the executed plan's estimated-vs-actual table into `stats`.
void FillClauseRows(const CompiledPlan& plan,
                    const std::vector<uint64_t>& counts, EvalStats& stats) {
  stats.clause_rows.clear();
  stats.clause_rows.reserve(plan.clauses.size());
  for (size_t k = 0; k < plan.clauses.size(); ++k) {
    ClauseRowStats cr;
    cr.source_index = plan.clauses[k].source_index;
    cr.estimated_rows = plan.clauses[k].estimated_rows;
    cr.estimated_output_rows = plan.clauses[k].estimated_output_rows;
    cr.actual_rows = counts[k];
    stats.clause_rows.push_back(cr);
  }
}

// The binding context clause `cc` scans in under its plan: bit 0/1/2 set
// when the subject/predicate/object slot is fixed (constant or upstream-
// bound variable) before the scan. Must mirror the planner's BoundSig so a
// pinned CardinalityOverride re-applies in exactly the measured context.
uint8_t SlotBoundSig(const CompiledClause& cc) {
  uint8_t sig = 0;
  for (int i = 0; i < 3; ++i) {
    if (cc.slots[i].kind == SlotKind::kConst ||
        cc.slots[i].kind == SlotKind::kBoundVar) {
      sig |= static_cast<uint8_t>(1 << i);
    }
  }
  return sig;
}

// Shared SELECT consumer: project, DISTINCT-probe, skip OFFSET, stop at
// LIMIT — streaming, so the pipeline never materializes skipped rows.
//
// With a scan pool (and no LIMIT), the driver clause's sharded range is cut
// into chunks that run the full pipeline concurrently into per-chunk row
// buffers; chunks are then merged in span order through the very same
// DISTINCT/OFFSET consumer, so rows AND EvalStats are bit-identical to the
// sequential path (the work is a partition of the same index ranges).
//
// With `options.adaptive` (and no LIMIT), execution instead starts as a
// sequential quota-checked pass: each stage may emit at most
// max(estimate·factor, min_rows) rows before the pipeline aborts, pins the
// observed cardinality as a CardinalityOverride, re-plans, and restarts.
// After `adaptive_max_replans` re-plans the current plan runs to completion
// without quotas (and may then use the scan pool). The emitted row set is
// plan-invariant, so results match non-adaptive execution exactly; work
// counters include abandoned attempts and stay deterministic across scan
// thread counts because every quota-checked pass is sequential.
StatusOr<ResultSet> RunSelect(const TripleStore& store,
                              const CompiledPlan& plan,
                              const SelectQuery& query, const Dictionary* dict,
                              EvalStats& stats,
                              const Engine::Options& options) {
  ResultSet result;
  result.var_names.reserve(plan.projection.size());
  for (VarId v : plan.projection) result.var_names.push_back(query.var_name(v));

  const uint64_t offset = query.offset();
  const uint64_t limit = query.limit();
  ThreadPool* pool = options.scan_pool;

  std::unordered_set<Row, RowHash> seen;
  uint64_t skipped = 0;
  auto consume = [&](Row&& out) {
    if (query.distinct() && !seen.insert(out).second) {
      return true;  // Duplicate: keep pulling.
    }
    if (skipped < offset) {
      ++skipped;
      return true;
    }
    result.rows.push_back(std::move(out));
    return limit == kNoLimit || result.rows.size() < limit;
  };

  if (limit != 0) {
    // `active` is the plan being executed; adaptive re-planning swaps in
    // locally-owned recompiles (never cached — overrides are one execution's
    // observations, and the cache must stay a pure function of the
    // fingerprint so pagination never changes enumeration order).
    const CompiledPlan* active = &plan;
    CompiledPlan replanned;

    const bool adaptive_eligible =
        options.adaptive && limit == kNoLimit && plan.used_statistics &&
        !plan.dangling_filter && !plan.clauses.empty();
    if (adaptive_eligible) {
      std::vector<CardinalityOverride> overrides;
      for (int replan = 0; replan < options.adaptive_max_replans; ++replan) {
        const size_t depth = active->clauses.size();
        std::vector<double> quota(depth);
        for (size_t k = 0; k < depth; ++k) {
          const double est = active->clauses[k].estimated_output_rows;
          quota[k] = est < 0.0
                         ? std::numeric_limits<double>::infinity()
                         : std::max(est * options.adaptive_replan_factor,
                                    static_cast<double>(
                                        options.adaptive_min_rows));
        }
        std::vector<uint64_t> stage_counts(depth, 0);
        std::vector<Row> buffer;
        size_t violated = 0;
        const bool completed = RunPlan(
            store, *active, query.num_vars(), dict, stats,
            [&](const Row& bindings) {
              Row out;
              out.reserve(active->projection.size());
              for (VarId v : active->projection) out.push_back(bindings[v]);
              buffer.push_back(std::move(out));
              return true;
            },
            /*driver=*/nullptr, stage_counts.data(), quota.data(), &violated);
        if (completed) {
          FillClauseRows(*active, stage_counts, stats);
          bool more = true;
          for (Row& row : buffer) {
            if (!more) break;
            more = consume(std::move(row));
          }
          stats.result_rows = result.rows.size();
          return result;
        }
        // Estimate blown at `violated`: pin the observation (observed /
        // estimated, at least the trigger factor) for that clause in the
        // binding context it was measured in, re-plan, restart from scratch.
        const CompiledClause& cc = active->clauses[violated];
        CardinalityOverride ov;
        ov.source_index = cc.source_index;
        ov.bound_sig = SlotBoundSig(cc);
        ov.scale =
            std::max(static_cast<double>(stage_counts[violated]) /
                         std::max(cc.estimated_output_rows, 1.0),
                     options.adaptive_replan_factor);
        overrides.push_back(ov);
        ++stats.replans;
        replanned = CompilePlan(query, &store, options.planner, overrides);
        active = &replanned;
      }
      // Out of re-plans: run `active` to completion below, quota-free.
    }

    std::vector<ScanChunk> chunks;
    if (pool != nullptr && !active->dangling_filter &&
        !active->clauses.empty()) {
      const CompiledClause& cc = active->clauses[0];
      auto resolve = [&](const CompiledSlot& slot) -> TermId {
        // Level 0 binds from nothing: slots are consts, binds or wildcards.
        return slot.kind == SlotKind::kConst ? slot.constant : kNullTermId;
      };
      const MatchView driver = store.MatchSpans(TriplePattern(
          resolve(cc.slots[0]), resolve(cc.slots[1]), resolve(cc.slots[2])));
      chunks =
          PlanScanChunks(driver, pool, options.parallel_scan_min_rows, limit);
      if (!chunks.empty()) {
        ++stats.index_probes;  // The one driver probe, as in sequential.
        struct ChunkResult {
          std::vector<Row> rows;
          EvalStats stats;
          std::vector<uint64_t> stage_counts;
        };
        std::vector<std::future<ChunkResult>> futures;
        futures.reserve(chunks.size());
        for (const ScanChunk& chunk : chunks) {
          futures.push_back(pool->Submit([&, chunk] {
            ChunkResult cr;
            cr.stage_counts.assign(active->clauses.size(), 0);
            RunPlan(
                store, *active, query.num_vars(), dict, cr.stats,
                [&](const Row& bindings) {
                  Row out;
                  out.reserve(active->projection.size());
                  for (VarId v : active->projection) {
                    out.push_back(bindings[v]);
                  }
                  cr.rows.push_back(std::move(out));
                  return true;
                },
                &chunk.slice, cr.stage_counts.data());
            return cr;
          }));
        }
        std::vector<uint64_t> stage_counts(active->clauses.size(), 0);
        bool more = true;
        for (auto& future : futures) {
          // Always drain every future (workers borrow spans and the plan);
          // `more` only gates consumption.
          ChunkResult cr = future.get();
          stats.intermediate_rows += cr.stats.intermediate_rows;
          stats.index_probes += cr.stats.index_probes;
          stats.triples_scanned += cr.stats.triples_scanned;
          for (size_t k = 0; k < stage_counts.size(); ++k) {
            stage_counts[k] += cr.stage_counts[k];
          }
          for (Row& row : cr.rows) {
            if (!more) break;
            more = consume(std::move(row));
          }
        }
        FillClauseRows(*active, stage_counts, stats);
        stats.result_rows = result.rows.size();
        return result;
      }
    }
    std::vector<uint64_t> stage_counts(active->clauses.size(), 0);
    RunPlan(
        store, *active, query.num_vars(), dict, stats,
        [&](const Row& bindings) {
          Row out;
          out.reserve(active->projection.size());
          for (VarId v : active->projection) out.push_back(bindings[v]);
          return consume(std::move(out));
        },
        /*driver=*/nullptr, stage_counts.data());
    FillClauseRows(*active, stage_counts, stats);
  }
  stats.result_rows = result.rows.size();
  return result;
}

StatusOr<bool> RunAsk(const TripleStore& store, const CompiledPlan& plan,
                      const SelectQuery& query, const Dictionary* dict,
                      EvalStats& stats) {
  bool found = false;
  std::vector<uint64_t> stage_counts(plan.clauses.size(), 0);
  RunPlan(
      store, plan, query.num_vars(), dict, stats,
      [&](const Row&) {
        found = true;
        return false;  // First solution settles existence.
      },
      /*driver=*/nullptr, stage_counts.data());
  FillClauseRows(plan, stage_counts, stats);
  stats.result_rows = found ? 1 : 0;
  return found;
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine: plan cache + evaluation.

std::shared_ptr<const CompiledPlan> Engine::PlanFor(const SelectQuery& query,
                                                    bool* cache_hit) const {
  const uint64_t epoch = store_->mutation_epoch();
  if (options_.plan_cache_capacity == 0) {
    if (cache_hit != nullptr) *cache_hit = false;
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::make_shared<const CompiledPlan>(
        CompilePlan(query, store_, options_.planner));
  }

  // The key excludes solution modifiers (PlanFingerprint): Ask(q),
  // Select(q LIMIT 10), and every page of an OFFSET walk share one plan —
  // which is also what makes the walk's enumeration order consistent.
  const std::string key = query.PlanFingerprint();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(key);
    if (it != plans_.end() && it->second->store_epoch == epoch) {
      if (cache_hit != nullptr) *cache_hit = true;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }

  // Plan outside the lock: planning reads memoized store statistics and can
  // run concurrently; last writer for a key wins (same epoch ⇒ same plan).
  auto plan = std::make_shared<const CompiledPlan>(
      CompilePlan(query, store_, options_.planner));
  if (cache_hit != nullptr) *cache_hit = false;
  misses_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (plans_.size() >= options_.plan_cache_capacity) plans_.clear();
    plans_[key] = plan;
  }
  return plan;
}

StatusOr<ResultSet> Engine::Select(const SelectQuery& query,
                                   EvalStats* stats) const {
  SOFYA_RETURN_IF_ERROR(query.Validate());
  EvalStats local;
  bool hit = false;
  const std::shared_ptr<const CompiledPlan> plan = PlanFor(query, &hit);
  (hit ? local.plan_cache_hits : local.plan_cache_misses) = 1;
  auto result = RunSelect(*store_, *plan, query, dict_, local, options_);
  if (local.replans > 0) {
    replans_.fetch_add(local.replans, std::memory_order_relaxed);
  }
  if (stats != nullptr) *stats = local;
  return result;
}

StatusOr<bool> Engine::Ask(const SelectQuery& query, EvalStats* stats) const {
  SOFYA_RETURN_IF_ERROR(query.Validate());
  EvalStats local;
  bool hit = false;
  const std::shared_ptr<const CompiledPlan> plan = PlanFor(query, &hit);
  (hit ? local.plan_cache_hits : local.plan_cache_misses) = 1;
  auto result = RunAsk(*store_, *plan, query, dict_, local);
  if (stats != nullptr) *stats = local;
  return result;
}

StatusOr<PlanExplain> Engine::Explain(const SelectQuery& query) const {
  SOFYA_RETURN_IF_ERROR(query.Validate());
  // Peek at the cache without charging a hit/miss: EXPLAIN is a
  // diagnostic, not a query. A valid cached plan is reused as-is — the
  // plan is a pure function of (fingerprint, epoch, options), so
  // recompiling could only reproduce it.
  std::shared_ptr<const CompiledPlan> plan;
  if (options_.plan_cache_capacity > 0) {
    const std::string key = query.PlanFingerprint();
    const uint64_t epoch = store_->mutation_epoch();
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(key);
    if (it != plans_.end() && it->second->store_epoch == epoch) {
      plan = it->second;
    }
  }
  const bool cached = plan != nullptr;
  if (!cached) {
    plan = std::make_shared<const CompiledPlan>(
        CompilePlan(query, store_, options_.planner));
  }
  PlanExplain explain = ExplainPlan(*plan, query, dict_);
  explain.from_cache = cached;
  return explain;
}

// ---------------------------------------------------------------------------
// One-shot helpers.

StatusOr<ResultSet> Evaluate(const TripleStore& store,
                             const SelectQuery& query, EvalStats* stats,
                             const Dictionary* dict,
                             const PlannerOptions& planner) {
  SOFYA_RETURN_IF_ERROR(query.Validate());
  EvalStats local;
  const CompiledPlan plan = CompilePlan(query, &store, planner);
  Engine::Options one_shot;
  one_shot.planner = planner;
  auto result = RunSelect(store, plan, query, dict, local, one_shot);
  if (stats != nullptr) *stats = local;
  return result;
}

StatusOr<bool> EvaluateAsk(const TripleStore& store, const SelectQuery& query,
                           EvalStats* stats, const Dictionary* dict,
                           const PlannerOptions& planner) {
  SOFYA_RETURN_IF_ERROR(query.Validate());
  EvalStats local;
  const CompiledPlan plan = CompilePlan(query, &store, planner);
  auto result = RunAsk(store, plan, query, dict, local);
  if (stats != nullptr) *stats = local;
  return result;
}

}  // namespace sofya
