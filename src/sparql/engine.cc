#include "sparql/engine.h"

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/hash.h"

namespace sofya {

namespace {

using Row = std::vector<TermId>;  // Indexed by VarId; 0 = unbound.

// Filters are attached to the earliest pipeline stage where every variable
// they mention is bound, so applicability is established statically and this
// only evaluates the predicate.
bool FilterPasses(const FilterExpr& f, const Row& row,
                  const Dictionary* dict) {
  switch (f.kind) {
    case FilterExpr::Kind::kVarEqVar:
      return row[f.lhs] == row[f.rhs_var];
    case FilterExpr::Kind::kVarNeqVar:
      return row[f.lhs] != row[f.rhs_var];
    case FilterExpr::Kind::kVarEqTerm:
      return row[f.lhs] == f.rhs_term;
    case FilterExpr::Kind::kVarNeqTerm:
      return row[f.lhs] != f.rhs_term;
    case FilterExpr::Kind::kIsIri:
      // Without a dictionary term kinds are unknowable; pass conservatively.
      return dict == nullptr || !dict->Contains(row[f.lhs]) ||
             dict->Decode(row[f.lhs]).is_iri();
    case FilterExpr::Kind::kIsLiteral:
      return dict == nullptr || !dict->Contains(row[f.lhs]) ||
             dict->Decode(row[f.lhs]).is_literal();
  }
  return true;
}

struct RowHash {
  size_t operator()(const Row& row) const {
    size_t seed = row.size();
    for (TermId id : row) HashCombine(seed, id);
    return seed;
  }
};

// ---------------------------------------------------------------------------
// Pipeline execution: a cursor per stage over the store's index range for
// the current partial binding. Bindings live in one shared row; no undo is
// needed on backtrack because each stage statically binds the same variable
// set and always overwrites before deeper stages read.
//
// `emit` is called once per solution (full binding row) and returns false to
// stop the whole pipeline — this is how LIMIT and ASK terminate early.

template <typename Emit>
void RunPlan(const TripleStore& store, const CompiledPlan& plan,
             size_t num_vars, const Dictionary* dict, EvalStats& stats,
             Emit&& emit) {
  if (plan.dangling_filter || plan.clauses.empty()) return;

  struct Cursor {
    std::span<const Triple> range;
    size_t pos = 0;
  };
  std::vector<Cursor> cursors(plan.clauses.size());
  Row bindings(num_vars, kNullTermId);

  auto open = [&](size_t level) {
    const CompiledClause& cc = plan.clauses[level];
    auto resolve = [&](const CompiledSlot& slot) -> TermId {
      switch (slot.kind) {
        case SlotKind::kConst:
          return slot.constant;
        case SlotKind::kBoundVar:
          return bindings[slot.var];
        default:
          return kNullTermId;  // Wildcard.
      }
    };
    ++stats.index_probes;
    cursors[level].range = store.MatchRange(TriplePattern(
        resolve(cc.slots[0]), resolve(cc.slots[1]), resolve(cc.slots[2])));
    cursors[level].pos = 0;
  };

  const size_t depth = plan.clauses.size();
  size_t level = 0;
  open(0);
  while (true) {
    Cursor& cursor = cursors[level];
    const CompiledClause& cc = plan.clauses[level];

    // Advance this stage to its next accepted triple.
    bool advanced = false;
    while (cursor.pos < cursor.range.size()) {
      const Triple& t = cursor.range[cursor.pos++];
      ++stats.triples_scanned;
      const TermId values[3] = {t.subject, t.predicate, t.object};
      bool accepted = true;
      for (int i = 0; i < 3 && accepted; ++i) {
        const CompiledSlot& slot = cc.slots[i];
        switch (slot.kind) {
          case SlotKind::kConst:
            accepted = values[i] == slot.constant;
            break;
          case SlotKind::kBoundVar:
          case SlotKind::kCheck:
            accepted = values[i] == bindings[slot.var];
            break;
          case SlotKind::kBind:
            bindings[slot.var] = values[i];
            break;
        }
      }
      if (!accepted) continue;
      for (const FilterExpr& f : cc.filters) {
        if (!FilterPasses(f, bindings, dict)) {
          accepted = false;
          break;
        }
      }
      if (!accepted) continue;
      ++stats.intermediate_rows;
      advanced = true;
      break;
    }

    if (!advanced) {
      if (level == 0) return;  // Pipeline drained.
      --level;
      continue;
    }
    if (level + 1 == depth) {
      if (!emit(bindings)) return;  // LIMIT/ASK pushdown.
    } else {
      ++level;
      open(level);
    }
  }
}

// Shared SELECT consumer: project, DISTINCT-probe, skip OFFSET, stop at
// LIMIT — streaming, so the pipeline never materializes skipped rows.
StatusOr<ResultSet> RunSelect(const TripleStore& store,
                              const CompiledPlan& plan,
                              const SelectQuery& query, const Dictionary* dict,
                              EvalStats& stats) {
  ResultSet result;
  result.var_names.reserve(plan.projection.size());
  for (VarId v : plan.projection) result.var_names.push_back(query.var_name(v));

  const uint64_t offset = query.offset();
  const uint64_t limit = query.limit();

  std::unordered_set<Row, RowHash> seen;
  uint64_t skipped = 0;
  if (limit != 0) {
    RunPlan(store, plan, query.num_vars(), dict, stats,
            [&](const Row& bindings) {
              Row out;
              out.reserve(plan.projection.size());
              for (VarId v : plan.projection) out.push_back(bindings[v]);
              if (query.distinct() && !seen.insert(out).second) {
                return true;  // Duplicate: keep pulling.
              }
              if (skipped < offset) {
                ++skipped;
                return true;
              }
              result.rows.push_back(std::move(out));
              return limit == kNoLimit || result.rows.size() < limit;
            });
  }
  stats.result_rows = result.rows.size();
  return result;
}

StatusOr<bool> RunAsk(const TripleStore& store, const CompiledPlan& plan,
                      const SelectQuery& query, const Dictionary* dict,
                      EvalStats& stats) {
  bool found = false;
  RunPlan(store, plan, query.num_vars(), dict, stats, [&](const Row&) {
    found = true;
    return false;  // First solution settles existence.
  });
  stats.result_rows = found ? 1 : 0;
  return found;
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine: plan cache + evaluation.

std::shared_ptr<const CompiledPlan> Engine::PlanFor(const SelectQuery& query,
                                                    bool* cache_hit) const {
  const uint64_t epoch = store_->mutation_epoch();
  if (options_.plan_cache_capacity == 0) {
    if (cache_hit != nullptr) *cache_hit = false;
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::make_shared<const CompiledPlan>(
        CompilePlan(query, store_, options_.planner));
  }

  // The key excludes solution modifiers (PlanFingerprint): Ask(q),
  // Select(q LIMIT 10), and every page of an OFFSET walk share one plan —
  // which is also what makes the walk's enumeration order consistent.
  const std::string key = query.PlanFingerprint();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(key);
    if (it != plans_.end() && it->second->store_epoch == epoch) {
      if (cache_hit != nullptr) *cache_hit = true;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }

  // Plan outside the lock: planning reads memoized store statistics and can
  // run concurrently; last writer for a key wins (same epoch ⇒ same plan).
  auto plan = std::make_shared<const CompiledPlan>(
      CompilePlan(query, store_, options_.planner));
  if (cache_hit != nullptr) *cache_hit = false;
  misses_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (plans_.size() >= options_.plan_cache_capacity) plans_.clear();
    plans_[key] = plan;
  }
  return plan;
}

StatusOr<ResultSet> Engine::Select(const SelectQuery& query,
                                   EvalStats* stats) const {
  SOFYA_RETURN_IF_ERROR(query.Validate());
  EvalStats local;
  bool hit = false;
  const std::shared_ptr<const CompiledPlan> plan = PlanFor(query, &hit);
  (hit ? local.plan_cache_hits : local.plan_cache_misses) = 1;
  auto result = RunSelect(*store_, *plan, query, dict_, local);
  if (stats != nullptr) *stats = local;
  return result;
}

StatusOr<bool> Engine::Ask(const SelectQuery& query, EvalStats* stats) const {
  SOFYA_RETURN_IF_ERROR(query.Validate());
  EvalStats local;
  bool hit = false;
  const std::shared_ptr<const CompiledPlan> plan = PlanFor(query, &hit);
  (hit ? local.plan_cache_hits : local.plan_cache_misses) = 1;
  auto result = RunAsk(*store_, *plan, query, dict_, local);
  if (stats != nullptr) *stats = local;
  return result;
}

StatusOr<PlanExplain> Engine::Explain(const SelectQuery& query) const {
  SOFYA_RETURN_IF_ERROR(query.Validate());
  // Peek at the cache without charging a hit/miss: EXPLAIN is a
  // diagnostic, not a query. A valid cached plan is reused as-is — the
  // plan is a pure function of (fingerprint, epoch, options), so
  // recompiling could only reproduce it.
  std::shared_ptr<const CompiledPlan> plan;
  if (options_.plan_cache_capacity > 0) {
    const std::string key = query.PlanFingerprint();
    const uint64_t epoch = store_->mutation_epoch();
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(key);
    if (it != plans_.end() && it->second->store_epoch == epoch) {
      plan = it->second;
    }
  }
  const bool cached = plan != nullptr;
  if (!cached) {
    plan = std::make_shared<const CompiledPlan>(
        CompilePlan(query, store_, options_.planner));
  }
  PlanExplain explain = ExplainPlan(*plan, query, dict_);
  explain.from_cache = cached;
  return explain;
}

// ---------------------------------------------------------------------------
// One-shot helpers.

StatusOr<ResultSet> Evaluate(const TripleStore& store,
                             const SelectQuery& query, EvalStats* stats,
                             const Dictionary* dict,
                             const PlannerOptions& planner) {
  SOFYA_RETURN_IF_ERROR(query.Validate());
  EvalStats local;
  const CompiledPlan plan = CompilePlan(query, &store, planner);
  auto result = RunSelect(store, plan, query, dict, local);
  if (stats != nullptr) *stats = local;
  return result;
}

StatusOr<bool> EvaluateAsk(const TripleStore& store, const SelectQuery& query,
                           EvalStats* stats, const Dictionary* dict,
                           const PlannerOptions& planner) {
  SOFYA_RETURN_IF_ERROR(query.Validate());
  EvalStats local;
  const CompiledPlan plan = CompilePlan(query, &store, planner);
  auto result = RunAsk(store, plan, query, dict, local);
  if (stats != nullptr) *stats = local;
  return result;
}

}  // namespace sofya
