#include "sparql/engine.h"

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "util/hash.h"

namespace sofya {

namespace {

using Row = std::vector<TermId>;  // Indexed by VarId; 0 = unbound.

// Filters are attached to the earliest pipeline stage where every variable
// they mention is bound, so applicability is established statically and this
// only evaluates the predicate.
bool FilterPasses(const FilterExpr& f, const Row& row,
                  const Dictionary* dict) {
  switch (f.kind) {
    case FilterExpr::Kind::kVarEqVar:
      return row[f.lhs] == row[f.rhs_var];
    case FilterExpr::Kind::kVarNeqVar:
      return row[f.lhs] != row[f.rhs_var];
    case FilterExpr::Kind::kVarEqTerm:
      return row[f.lhs] == f.rhs_term;
    case FilterExpr::Kind::kVarNeqTerm:
      return row[f.lhs] != f.rhs_term;
    case FilterExpr::Kind::kIsIri:
      // Without a dictionary term kinds are unknowable; pass conservatively.
      return dict == nullptr || !dict->Contains(row[f.lhs]) ||
             dict->Decode(row[f.lhs]).is_iri();
    case FilterExpr::Kind::kIsLiteral:
      return dict == nullptr || !dict->Contains(row[f.lhs]) ||
             dict->Decode(row[f.lhs]).is_literal();
  }
  return true;
}

// Selectivity estimate of a clause under the current binding: each position
// bound by a constant or an already-bound variable adds specificity.
int BoundScore(const PatternClause& clause, const std::vector<bool>& bound) {
  auto score = [&](const NodeRef& ref) {
    if (!ref.is_var()) return 1;
    return bound[ref.var()] ? 1 : 0;
  };
  // Weight predicate binding slightly higher: the POS index makes it the
  // cheapest entry point, matching how a real optimizer would order.
  return 3 * score(clause.predicate) + 2 * score(clause.subject) +
         2 * score(clause.object);
}

struct RowHash {
  size_t operator()(const Row& row) const {
    size_t seed = row.size();
    for (TermId id : row) HashCombine(seed, id);
    return seed;
  }
};

// ---------------------------------------------------------------------------
// Compiled plan. Each clause becomes one pipeline stage; each of its three
// positions is classified once, so the inner loop does no NodeRef dispatch.

enum class SlotKind : uint8_t {
  kConst,     ///< Constant term: part of the index prefix, re-checked.
  kBoundVar,  ///< Variable bound by an earlier stage: prefix + re-check.
  kBind,      ///< First occurrence of a variable: binds it.
  kCheck,     ///< Repeat occurrence within this clause: equality check.
};

struct CompiledSlot {
  SlotKind kind = SlotKind::kBind;
  TermId constant = kNullTermId;  // kConst only.
  VarId var = -1;                 // All variable kinds.
};

struct CompiledClause {
  CompiledSlot slots[3];  // subject, predicate, object.
  /// Filters that become fully bound after this stage (inline application).
  std::vector<FilterExpr> filters;
};

struct Plan {
  std::vector<CompiledClause> clauses;
  /// Resolved projection (never empty; defaults to all variables).
  std::vector<VarId> projection;
  /// True when some filter mentions a variable no clause ever binds: SPARQL
  /// treats the filter as an error for every row, so the result is empty.
  bool dangling_filter = false;
};

Plan Compile(const SelectQuery& query) {
  Plan plan;
  const size_t num_vars = query.num_vars();

  // Greedy clause ordering (same heuristic as the previous engine; keeping
  // it preserves row order and therefore pagination determinism).
  std::vector<const PatternClause*> pending;
  pending.reserve(query.clauses().size());
  for (const auto& c : query.clauses()) pending.push_back(&c);

  std::vector<bool> bound(num_vars, false);
  std::vector<bool> filter_attached(query.filters().size(), false);

  while (!pending.empty()) {
    auto best = std::max_element(
        pending.begin(), pending.end(),
        [&](const PatternClause* a, const PatternClause* b) {
          return BoundScore(*a, bound) < BoundScore(*b, bound);
        });
    const PatternClause* chosen = *best;
    pending.erase(best);

    CompiledClause cc;
    const NodeRef* refs[3] = {&chosen->subject, &chosen->predicate,
                              &chosen->object};
    std::vector<bool> bound_here(num_vars, false);
    for (int i = 0; i < 3; ++i) {
      CompiledSlot& slot = cc.slots[i];
      if (!refs[i]->is_var()) {
        slot.kind = SlotKind::kConst;
        slot.constant = refs[i]->term();
        continue;
      }
      const VarId v = refs[i]->var();
      slot.var = v;
      if (bound[v]) {
        slot.kind = SlotKind::kBoundVar;
      } else if (bound_here[v]) {
        slot.kind = SlotKind::kCheck;
      } else {
        slot.kind = SlotKind::kBind;
        bound_here[v] = true;
      }
    }
    for (VarId v = 0; v < static_cast<VarId>(num_vars); ++v) {
      if (bound_here[v]) bound[v] = true;
    }

    // Attach every filter that just became fully bound.
    for (size_t fi = 0; fi < query.filters().size(); ++fi) {
      if (filter_attached[fi]) continue;
      const FilterExpr& f = query.filters()[fi];
      const bool needs_rhs = f.kind == FilterExpr::Kind::kVarEqVar ||
                             f.kind == FilterExpr::Kind::kVarNeqVar;
      if (bound[f.lhs] && (!needs_rhs || bound[f.rhs_var])) {
        cc.filters.push_back(f);
        filter_attached[fi] = true;
      }
    }
    plan.clauses.push_back(std::move(cc));
  }

  plan.dangling_filter =
      std::find(filter_attached.begin(), filter_attached.end(), false) !=
      filter_attached.end();

  plan.projection = query.projection();
  if (plan.projection.empty()) {
    for (VarId v = 0; v < static_cast<VarId>(num_vars); ++v) {
      plan.projection.push_back(v);
    }
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Pipeline execution: a cursor per stage over the store's index range for
// the current partial binding. Bindings live in one shared row; no undo is
// needed on backtrack because each stage statically binds the same variable
// set and always overwrites before deeper stages read.
//
// `emit` is called once per solution (full binding row) and returns false to
// stop the whole pipeline — this is how LIMIT and ASK terminate early.

template <typename Emit>
void RunPlan(const TripleStore& store, const Plan& plan, size_t num_vars,
             const Dictionary* dict, EvalStats& stats, Emit&& emit) {
  if (plan.dangling_filter || plan.clauses.empty()) return;

  struct Cursor {
    std::span<const Triple> range;
    size_t pos = 0;
  };
  std::vector<Cursor> cursors(plan.clauses.size());
  Row bindings(num_vars, kNullTermId);

  auto open = [&](size_t level) {
    const CompiledClause& cc = plan.clauses[level];
    auto resolve = [&](const CompiledSlot& slot) -> TermId {
      switch (slot.kind) {
        case SlotKind::kConst:
          return slot.constant;
        case SlotKind::kBoundVar:
          return bindings[slot.var];
        default:
          return kNullTermId;  // Wildcard.
      }
    };
    ++stats.index_probes;
    cursors[level].range = store.MatchRange(TriplePattern(
        resolve(cc.slots[0]), resolve(cc.slots[1]), resolve(cc.slots[2])));
    cursors[level].pos = 0;
  };

  const size_t depth = plan.clauses.size();
  size_t level = 0;
  open(0);
  while (true) {
    Cursor& cursor = cursors[level];
    const CompiledClause& cc = plan.clauses[level];

    // Advance this stage to its next accepted triple.
    bool advanced = false;
    while (cursor.pos < cursor.range.size()) {
      const Triple& t = cursor.range[cursor.pos++];
      ++stats.triples_scanned;
      const TermId values[3] = {t.subject, t.predicate, t.object};
      bool accepted = true;
      for (int i = 0; i < 3 && accepted; ++i) {
        const CompiledSlot& slot = cc.slots[i];
        switch (slot.kind) {
          case SlotKind::kConst:
            accepted = values[i] == slot.constant;
            break;
          case SlotKind::kBoundVar:
          case SlotKind::kCheck:
            accepted = values[i] == bindings[slot.var];
            break;
          case SlotKind::kBind:
            bindings[slot.var] = values[i];
            break;
        }
      }
      if (!accepted) continue;
      for (const FilterExpr& f : cc.filters) {
        if (!FilterPasses(f, bindings, dict)) {
          accepted = false;
          break;
        }
      }
      if (!accepted) continue;
      ++stats.intermediate_rows;
      advanced = true;
      break;
    }

    if (!advanced) {
      if (level == 0) return;  // Pipeline drained.
      --level;
      continue;
    }
    if (level + 1 == depth) {
      if (!emit(bindings)) return;  // LIMIT/ASK pushdown.
    } else {
      ++level;
      open(level);
    }
  }
}

}  // namespace

StatusOr<ResultSet> Evaluate(const TripleStore& store,
                             const SelectQuery& query, EvalStats* stats,
                             const Dictionary* dict) {
  SOFYA_RETURN_IF_ERROR(query.Validate());

  EvalStats local_stats;
  const Plan plan = Compile(query);

  ResultSet result;
  result.var_names.reserve(plan.projection.size());
  for (VarId v : plan.projection) result.var_names.push_back(query.var_name(v));

  const uint64_t offset = query.offset();
  const uint64_t limit = query.limit();

  // Streaming consumer: project, DISTINCT-probe, skip OFFSET, stop at LIMIT.
  std::unordered_set<Row, RowHash> seen;
  uint64_t skipped = 0;
  if (limit != 0) {
    RunPlan(store, plan, query.num_vars(), dict, local_stats,
            [&](const Row& bindings) {
              Row out;
              out.reserve(plan.projection.size());
              for (VarId v : plan.projection) out.push_back(bindings[v]);
              if (query.distinct() && !seen.insert(out).second) {
                return true;  // Duplicate: keep pulling.
              }
              if (skipped < offset) {
                ++skipped;
                return true;
              }
              result.rows.push_back(std::move(out));
              return limit == kNoLimit || result.rows.size() < limit;
            });
  }

  local_stats.result_rows = result.rows.size();
  if (stats != nullptr) *stats = local_stats;
  return result;
}

StatusOr<bool> EvaluateAsk(const TripleStore& store, const SelectQuery& query,
                           EvalStats* stats, const Dictionary* dict) {
  SOFYA_RETURN_IF_ERROR(query.Validate());

  EvalStats local_stats;
  const Plan plan = Compile(query);
  bool found = false;
  RunPlan(store, plan, query.num_vars(), dict, local_stats,
          [&](const Row&) {
            found = true;
            return false;  // First solution settles existence.
          });
  local_stats.result_rows = found ? 1 : 0;
  if (stats != nullptr) *stats = local_stats;
  return found;
}

}  // namespace sofya
