// application/sparql-results+json (W3C SPARQL 1.1 Query Results JSON
// Format): parsing for the HTTP client, serialization for the loopback
// mock server — one module so wire reader and writer cannot drift.
//
// Parsed bindings are re-interned through a TermInterner (normally an
// endpoint's dictionary): the wire carries term *strings*, the client's id
// space is its own. Unbound variables in a solution become kNullTermId
// cells, mirroring how the engine represents them.

#ifndef SOFYA_SPARQL_RESULTS_JSON_H_
#define SOFYA_SPARQL_RESULTS_JSON_H_

#include <functional>
#include <string>
#include <string_view>

#include "rdf/term.h"
#include "sparql/parser.h"
#include "sparql/query.h"
#include "util/status.h"

namespace sofya {

/// Parses a SELECT results document; binding terms are interned via
/// `intern`, columns follow head.vars order.
StatusOr<ResultSet> ParseSparqlResultsJson(std::string_view json,
                                           const TermInterner& intern);

/// Parses an ASK results document ({"head":{},"boolean":...}).
StatusOr<bool> ParseSparqlAskJson(std::string_view json);

/// Maps ids back to terms when serializing (server side).
using TermDecoder = std::function<StatusOr<Term>(TermId)>;

/// Serializes a ResultSet as a SELECT results document. kNullTermId cells
/// are emitted as unbound (the variable is omitted from that solution).
StatusOr<std::string> WriteSparqlResultsJson(const ResultSet& results,
                                             const TermDecoder& decode);

/// Serializes an ASK results document.
std::string WriteSparqlAskJson(bool value);

/// Escapes a string for embedding in a JSON document (quotes not included).
std::string JsonEscape(std::string_view text);

}  // namespace sofya

#endif  // SOFYA_SPARQL_RESULTS_JSON_H_
