#include "sparql/planner.h"

#include <algorithm>
#include <limits>

#include "util/string_util.h"

namespace sofya {

namespace {

/// Legacy selectivity score of a clause under the current binding: each
/// position bound by a constant or an already-bound variable adds
/// specificity, the predicate weighted higher (POS entry is cheapest).
int BoundScore(const PatternClause& clause, const std::vector<bool>& bound) {
  auto score = [&](const NodeRef& ref) {
    if (!ref.is_var()) return 1;
    return bound[ref.var()] ? 1 : 0;
  };
  return 3 * score(clause.predicate) + 2 * score(clause.subject) +
         2 * score(clause.object);
}

/// True when a position is fixed before this clause scans: a constant, or a
/// variable some earlier stage binds.
bool IsBound(const NodeRef& ref, const std::vector<bool>& bound) {
  return !ref.is_var() || bound[ref.var()];
}

/// Statistics-driven row estimate for `clause` given the variables bound so
/// far. The model: a clause starts from the cardinality of its predicate
/// (exact, from PredicateStats) and every bound subject/object position
/// divides by the matching distinct count — the classical uniform-
/// distribution selectivity. Variable predicates fall back to whole-store
/// aggregates (GlobalStats). Estimates are clamped to ≥1 except for the
/// provably-empty case (absent predicate), which estimates 0 so the planner
/// front-loads it and the pipeline drains immediately.
double EstimateRows(const PatternClause& clause,
                    const std::vector<bool>& bound, const TripleStore& store,
                    const StoreStats& global) {
  const bool s_bound = IsBound(clause.subject, bound);
  const bool o_bound = IsBound(clause.object, bound);
  auto shrink = [](double est, size_t distinct) {
    return est / static_cast<double>(distinct > 0 ? distinct : 1);
  };

  if (!clause.predicate.is_var()) {
    const PredicateStats stats = store.StatsFor(clause.predicate.term());
    if (stats.facts == 0) return 0.0;  // Provably empty clause.
    double est = static_cast<double>(stats.facts);
    if (s_bound) est = shrink(est, stats.distinct_subjects);
    if (o_bound) est = shrink(est, stats.distinct_objects);
    return std::max(est, 1.0);
  }

  if (global.triples == 0) return 0.0;
  double est = static_cast<double>(global.triples);
  if (IsBound(clause.predicate, bound)) {
    est = shrink(est, global.distinct_predicates);
  }
  if (s_bound) est = shrink(est, global.distinct_subjects);
  if (o_bound) est = shrink(est, global.distinct_objects);
  return std::max(est, 1.0);
}

/// True when `clause` shares at least one already-bound variable — i.e.
/// scanning it next is a join, not a cross product.
bool SharesBoundVar(const PatternClause& clause,
                    const std::vector<bool>& bound) {
  const NodeRef* refs[3] = {&clause.subject, &clause.predicate,
                            &clause.object};
  for (const NodeRef* ref : refs) {
    if (ref->is_var() && bound[ref->var()]) return true;
  }
  return false;
}

std::string RenderNode(const NodeRef& ref, const SelectQuery& query,
                       const Dictionary* dict) {
  if (ref.is_var()) return "?" + query.var_name(ref.var());
  if (dict != nullptr && dict->Contains(ref.term())) {
    return dict->Decode(ref.term()).ToNTriples();
  }
  return StrFormat("#%u", ref.term());
}

std::string RenderFilter(const FilterExpr& f, const SelectQuery& query,
                         const Dictionary* dict) {
  auto var = [&](VarId v) { return "?" + query.var_name(v); };
  auto term = [&](TermId t) {
    if (dict != nullptr && dict->Contains(t)) {
      return dict->Decode(t).ToNTriples();
    }
    return StrFormat("#%u", t);
  };
  switch (f.kind) {
    case FilterExpr::Kind::kVarEqVar:
      return var(f.lhs) + " = " + var(f.rhs_var);
    case FilterExpr::Kind::kVarNeqVar:
      return var(f.lhs) + " != " + var(f.rhs_var);
    case FilterExpr::Kind::kVarEqTerm:
      return var(f.lhs) + " = " + term(f.rhs_term);
    case FilterExpr::Kind::kVarNeqTerm:
      return var(f.lhs) + " != " + term(f.rhs_term);
    case FilterExpr::Kind::kIsIri:
      return "isIRI(" + var(f.lhs) + ")";
    case FilterExpr::Kind::kIsLiteral:
      return "isLiteral(" + var(f.lhs) + ")";
  }
  return "?";
}

}  // namespace

CompiledPlan CompilePlan(const SelectQuery& query, const TripleStore* store,
                         const PlannerOptions& options) {
  CompiledPlan plan;
  const size_t num_vars = query.num_vars();
  const bool use_stats = options.use_statistics && store != nullptr;
  plan.used_statistics = use_stats;
  plan.store_epoch = store != nullptr ? store->mutation_epoch() : 0;

  StoreStats global;
  if (use_stats) global = store->GlobalStats();

  // Pending clauses stay in original-query order, so every "first best"
  // scan below tie-breaks on source position — both planners are pure
  // functions of (query structure, store epoch).
  std::vector<size_t> pending;
  pending.reserve(query.clauses().size());
  for (size_t i = 0; i < query.clauses().size(); ++i) pending.push_back(i);

  std::vector<bool> bound(num_vars, false);
  std::vector<bool> filter_attached(query.filters().size(), false);

  while (!pending.empty()) {
    size_t best_pos = 0;
    double best_estimate = -1.0;
    if (use_stats) {
      // Greedy min-cost with three tiers: a provably-empty clause always
      // wins (executing it first drains the pipeline for free), clauses
      // joined to the bound set come before cross products, and within a
      // tier the cheapest estimate wins. Strict lexicographic < over
      // (tier, estimate) with in-order iteration makes the first minimum
      // win ties — the planner is a pure function of (query, epoch).
      bool have_connected = false;
      for (size_t pos : pending) {
        if (SharesBoundVar(query.clauses()[pos], bound)) {
          have_connected = true;
          break;
        }
      }
      int best_tier = std::numeric_limits<int>::max();
      double best_cost = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < pending.size(); ++i) {
        const PatternClause& clause = query.clauses()[pending[i]];
        const double est = EstimateRows(clause, bound, *store, global);
        const bool connected =
            !have_connected || SharesBoundVar(clause, bound);
        const int tier = est == 0.0 ? 0 : (connected ? 1 : 2);
        if (tier < best_tier || (tier == best_tier && est < best_cost)) {
          best_tier = tier;
          best_cost = est;
          best_estimate = est;
          best_pos = i;
        }
      }
    } else {
      int best_score = -1;
      for (size_t i = 0; i < pending.size(); ++i) {
        const int score = BoundScore(query.clauses()[pending[i]], bound);
        if (score > best_score) {  // Strict >: first maximum wins, as the
          best_score = score;      // original max_element-based loop did.
          best_pos = i;
        }
      }
    }

    const size_t source_index = pending[best_pos];
    pending.erase(pending.begin() + static_cast<ptrdiff_t>(best_pos));
    const PatternClause& chosen = query.clauses()[source_index];

    CompiledClause cc;
    cc.source_index = source_index;
    cc.estimated_rows = best_estimate;
    const NodeRef* refs[3] = {&chosen.subject, &chosen.predicate,
                              &chosen.object};
    std::vector<bool> bound_here(num_vars, false);
    for (int i = 0; i < 3; ++i) {
      CompiledSlot& slot = cc.slots[i];
      if (!refs[i]->is_var()) {
        slot.kind = SlotKind::kConst;
        slot.constant = refs[i]->term();
        continue;
      }
      const VarId v = refs[i]->var();
      slot.var = v;
      if (bound[v]) {
        slot.kind = SlotKind::kBoundVar;
      } else if (bound_here[v]) {
        slot.kind = SlotKind::kCheck;
      } else {
        slot.kind = SlotKind::kBind;
        bound_here[v] = true;
      }
    }
    for (VarId v = 0; v < static_cast<VarId>(num_vars); ++v) {
      if (bound_here[v]) bound[v] = true;
    }

    // Attach every filter that just became fully bound.
    for (size_t fi = 0; fi < query.filters().size(); ++fi) {
      if (filter_attached[fi]) continue;
      const FilterExpr& f = query.filters()[fi];
      const bool needs_rhs = f.kind == FilterExpr::Kind::kVarEqVar ||
                             f.kind == FilterExpr::Kind::kVarNeqVar;
      if (bound[f.lhs] && (!needs_rhs || bound[f.rhs_var])) {
        cc.filters.push_back(f);
        filter_attached[fi] = true;
      }
    }
    plan.clauses.push_back(std::move(cc));
  }

  plan.dangling_filter =
      std::find(filter_attached.begin(), filter_attached.end(), false) !=
      filter_attached.end();

  plan.projection = query.projection();
  if (plan.projection.empty()) {
    for (VarId v = 0; v < static_cast<VarId>(num_vars); ++v) {
      plan.projection.push_back(v);
    }
  }
  return plan;
}

PlanExplain ExplainPlan(const CompiledPlan& plan, const SelectQuery& query,
                        const Dictionary* dict) {
  PlanExplain out;
  out.used_statistics = plan.used_statistics;
  out.store_epoch = plan.store_epoch;
  out.dangling_filter = plan.dangling_filter;
  for (const CompiledClause& cc : plan.clauses) {
    const PatternClause& src = query.clauses()[cc.source_index];
    ClauseExplain ce;
    ce.source_index = cc.source_index;
    ce.estimated_rows = cc.estimated_rows;
    ce.pattern = RenderNode(src.subject, query, dict) + " " +
                 RenderNode(src.predicate, query, dict) + " " +
                 RenderNode(src.object, query, dict);
    for (const FilterExpr& f : cc.filters) {
      ce.filters.push_back(RenderFilter(f, query, dict));
    }
    out.clauses.push_back(std::move(ce));
  }
  for (VarId v : plan.projection) out.projection.push_back(query.var_name(v));
  return out;
}

std::string PlanExplain::ToString() const {
  std::string out;
  out += StrFormat("plan: %s planner, epoch %llu%s\n",
                   used_statistics ? "statistics" : "legacy-heuristic",
                   static_cast<unsigned long long>(store_epoch),
                   from_cache ? ", cached" : "");
  if (dangling_filter) {
    out +=
        "  !! dangling filter (mentions a never-bound variable): "
        "result is empty by SPARQL semantics\n";
  }
  for (size_t i = 0; i < clauses.size(); ++i) {
    const ClauseExplain& ce = clauses[i];
    out += StrFormat("  %zu. clause #%zu  { %s }", i + 1, ce.source_index,
                     ce.pattern.c_str());
    if (ce.estimated_rows >= 0) {
      out += StrFormat("  est_rows=%.1f", ce.estimated_rows);
    }
    out += '\n';
    for (const std::string& f : ce.filters) {
      out += "       FILTER(" + f + ")\n";
    }
  }
  out += "  project:";
  for (const std::string& name : projection) out += " ?" + name;
  out += '\n';
  return out;
}

}  // namespace sofya
