#include "sparql/planner.h"

#include <algorithm>
#include <array>
#include <limits>

#include "util/string_util.h"

namespace sofya {

namespace {

/// Legacy selectivity score of a clause under the current binding: each
/// position bound by a constant or an already-bound variable adds
/// specificity, the predicate weighted higher (POS entry is cheapest).
int BoundScore(const PatternClause& clause, const std::vector<bool>& bound) {
  auto score = [&](const NodeRef& ref) {
    if (!ref.is_var()) return 1;
    return bound[ref.var()] ? 1 : 0;
  };
  return 3 * score(clause.predicate) + 2 * score(clause.subject) +
         2 * score(clause.object);
}

/// True when a position is fixed before this clause scans: a constant, or a
/// variable some earlier stage binds.
bool IsBound(const NodeRef& ref, const std::vector<bool>& bound) {
  return !ref.is_var() || bound[ref.var()];
}

/// The binding context a clause would be costed/scanned in: bit 0/1/2 set
/// when the subject/predicate/object position is fixed (constant or bound
/// variable) before the clause scans. This is the signature adaptive
/// cardinality overrides are keyed on.
uint8_t BoundSig(bool s_bound, bool p_bound, bool o_bound) {
  return static_cast<uint8_t>((s_bound ? 1 : 0) | (p_bound ? 2 : 0) |
                              (o_bound ? 4 : 0));
}

/// Multiplies `est` by any adaptive override pinned for (clause, context).
double ApplyOverrides(double est, size_t source_index, uint8_t sig,
                      const std::vector<CardinalityOverride>& overrides) {
  for (const CardinalityOverride& ov : overrides) {
    if (ov.source_index == source_index && ov.bound_sig == sig) {
      est *= ov.scale;
    }
  }
  return est;
}

/// v1 statistics-driven row estimate for `clause` given which positions are
/// fixed. The model: a clause starts from the cardinality of its predicate
/// (exact, from PredicateStats) and every bound subject/object position
/// divides by the matching distinct count — the classical uniform-
/// distribution selectivity. Variable predicates fall back to whole-store
/// aggregates (GlobalStats). Estimates are clamped to ≥1 except for the
/// provably-empty case (absent predicate), which estimates 0 so the planner
/// front-loads it and the pipeline drains immediately.
double EstimateRowsV1(const PatternClause& clause, bool s_bound, bool p_bound,
                      bool o_bound, size_t source_index,
                      const TripleStore& store, const StoreStats& global,
                      const std::vector<CardinalityOverride>& overrides) {
  auto shrink = [](double est, size_t distinct) {
    return est / static_cast<double>(distinct > 0 ? distinct : 1);
  };
  const uint8_t sig = BoundSig(s_bound, !clause.predicate.is_var() || p_bound,
                               o_bound);

  if (!clause.predicate.is_var()) {
    const PredicateStats stats = store.StatsFor(clause.predicate.term());
    if (stats.facts == 0) return 0.0;  // Provably empty clause.
    double est = static_cast<double>(stats.facts);
    if (s_bound) est = shrink(est, stats.distinct_subjects);
    if (o_bound) est = shrink(est, stats.distinct_objects);
    est = ApplyOverrides(est, source_index, sig, overrides);
    return std::max(est, 1.0);
  }

  if (global.triples == 0) return 0.0;
  double est = static_cast<double>(global.triples);
  if (p_bound) est = shrink(est, global.distinct_predicates);
  if (s_bound) est = shrink(est, global.distinct_subjects);
  if (o_bound) est = shrink(est, global.distinct_objects);
  est = ApplyOverrides(est, source_index, sig, overrides);
  return std::max(est, 1.0);
}

/// v2 estimate (the DP planner's cardinality input). Constant positions are
/// resolved with an *exact* range-width probe — every constant shape is a
/// full prefix of one sorted per-shard index, so CountMatches is two binary
/// searches per shard, not a scan. Positions joined to an upstream binding
/// shrink the exact base by a per-binding fan-out ratio taken from the
/// equi-depth histogram's frequency-weighted mean (skew-aware: join values
/// arrive weighted by their frequency), falling back to the uniform
/// facts/distinct average when histograms are off.
double EstimateRowsV2(const PatternClause& clause, bool s_bound, bool p_bound,
                      bool o_bound, size_t source_index,
                      const TripleStore& store, const StoreStats& global,
                      const PlannerOptions& options,
                      const std::vector<CardinalityOverride>& overrides) {
  if (clause.predicate.is_var()) {
    // No per-predicate index prefix to probe; the v1 global fallback is
    // the best available input.
    return EstimateRowsV1(clause, s_bound, p_bound, o_bound, source_index,
                          store, global, overrides);
  }
  const TermId p = clause.predicate.term();
  const bool s_const = !clause.subject.is_var();
  const bool o_const = !clause.object.is_var();
  const bool s_join = !s_const && s_bound;
  const bool o_join = !o_const && o_bound;

  const size_t base = store.CountMatches(
      TriplePattern(s_const ? clause.subject.term() : kNullTermId, p,
                    o_const ? clause.object.term() : kNullTermId));
  if (base == 0) return 0.0;  // Provably empty clause.
  double est = static_cast<double>(base);
  if (s_join || o_join) {
    const PredicateStats stats = store.StatsFor(p);
    PredicateHistograms hist;
    if (options.use_histograms) hist = store.HistogramFor(p);
    const double facts =
        static_cast<double>(stats.facts > 0 ? stats.facts : 1);
    auto shrink = [&](double est_in, size_t distinct,
                      const TermHistogram& h) {
      double fanout = h.ExpectedFanout();
      if (fanout <= 0.0) {
        fanout = facts / static_cast<double>(distinct > 0 ? distinct : 1);
      }
      return est_in * (fanout / facts);
    };
    if (s_join) est = shrink(est, stats.distinct_subjects, hist.subjects);
    if (o_join) est = shrink(est, stats.distinct_objects, hist.objects);
  }
  est = ApplyOverrides(est, source_index,
                       BoundSig(s_const || s_bound, true, o_const || o_bound),
                       overrides);
  return std::max(est, 1.0);
}

/// True when `clause` shares at least one already-bound variable — i.e.
/// scanning it next is a join, not a cross product.
bool SharesBoundVar(const PatternClause& clause,
                    const std::vector<bool>& bound) {
  const NodeRef* refs[3] = {&clause.subject, &clause.predicate,
                            &clause.object};
  for (const NodeRef* ref : refs) {
    if (ref->is_var() && bound[ref->var()]) return true;
  }
  return false;
}

std::string RenderNode(const NodeRef& ref, const SelectQuery& query,
                       const Dictionary* dict) {
  if (ref.is_var()) return "?" + query.var_name(ref.var());
  if (dict != nullptr && dict->Contains(ref.term())) {
    return dict->Decode(ref.term()).ToNTriples();
  }
  return StrFormat("#%u", ref.term());
}

std::string RenderFilter(const FilterExpr& f, const SelectQuery& query,
                         const Dictionary* dict) {
  auto var = [&](VarId v) { return "?" + query.var_name(v); };
  auto term = [&](TermId t) {
    if (dict != nullptr && dict->Contains(t)) {
      return dict->Decode(t).ToNTriples();
    }
    return StrFormat("#%u", t);
  };
  switch (f.kind) {
    case FilterExpr::Kind::kVarEqVar:
      return var(f.lhs) + " = " + var(f.rhs_var);
    case FilterExpr::Kind::kVarNeqVar:
      return var(f.lhs) + " != " + var(f.rhs_var);
    case FilterExpr::Kind::kVarEqTerm:
      return var(f.lhs) + " = " + term(f.rhs_term);
    case FilterExpr::Kind::kVarNeqTerm:
      return var(f.lhs) + " != " + term(f.rhs_term);
    case FilterExpr::Kind::kIsIri:
      return "isIRI(" + var(f.lhs) + ")";
    case FilterExpr::Kind::kIsLiteral:
      return "isLiteral(" + var(f.lhs) + ")";
  }
  return "?";
}

/// One chosen clause in planned order, with the estimates the order was
/// derived from (fed into CompiledClause by the shared assembly pass).
struct OrderChoice {
  size_t source_index = 0;
  double estimated_rows = -1.0;         // Per-stage fan-out estimate.
  double estimated_output_rows = -1.0;  // Cumulative chain cardinality.
};

/// Legacy bound-position heuristic: pick the highest-scoring clause, bind
/// its variables, repeat. Strict >: first maximum wins, as the original
/// max_element-based loop did.
std::vector<OrderChoice> ChooseOrderLegacy(const SelectQuery& query) {
  std::vector<size_t> pending;
  pending.reserve(query.clauses().size());
  for (size_t i = 0; i < query.clauses().size(); ++i) pending.push_back(i);
  std::vector<bool> bound(query.num_vars(), false);

  std::vector<OrderChoice> order;
  order.reserve(pending.size());
  while (!pending.empty()) {
    size_t best_pos = 0;
    int best_score = -1;
    for (size_t i = 0; i < pending.size(); ++i) {
      const int score = BoundScore(query.clauses()[pending[i]], bound);
      if (score > best_score) {
        best_score = score;
        best_pos = i;
      }
    }
    const size_t source_index = pending[best_pos];
    pending.erase(pending.begin() + static_cast<ptrdiff_t>(best_pos));
    const PatternClause& chosen = query.clauses()[source_index];
    const NodeRef* refs[3] = {&chosen.subject, &chosen.predicate,
                              &chosen.object};
    for (const NodeRef* ref : refs) {
      if (ref->is_var()) bound[ref->var()] = true;
    }
    order.push_back(OrderChoice{source_index, -1.0, -1.0});
  }
  return order;
}

/// v1 greedy min-cost ordering with three tiers: a provably-empty clause
/// always wins (executing it first drains the pipeline for free), clauses
/// joined to the bound set come before cross products, and within a tier
/// the cheapest estimate wins. Strict lexicographic < over (tier, estimate)
/// with in-order iteration makes the first minimum win ties — the planner
/// is a pure function of (query, epoch).
std::vector<OrderChoice> ChooseOrderGreedy(
    const SelectQuery& query, const TripleStore& store,
    const StoreStats& global,
    const std::vector<CardinalityOverride>& overrides) {
  std::vector<size_t> pending;
  pending.reserve(query.clauses().size());
  for (size_t i = 0; i < query.clauses().size(); ++i) pending.push_back(i);
  std::vector<bool> bound(query.num_vars(), false);

  std::vector<OrderChoice> order;
  order.reserve(pending.size());
  double cumulative = 1.0;
  while (!pending.empty()) {
    bool have_connected = false;
    for (size_t pos : pending) {
      if (SharesBoundVar(query.clauses()[pos], bound)) {
        have_connected = true;
        break;
      }
    }
    size_t best_pos = 0;
    double best_estimate = -1.0;
    int best_tier = std::numeric_limits<int>::max();
    double best_cost = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < pending.size(); ++i) {
      const PatternClause& clause = query.clauses()[pending[i]];
      const double est = EstimateRowsV1(
          clause, IsBound(clause.subject, bound),
          IsBound(clause.predicate, bound), IsBound(clause.object, bound),
          pending[i], store, global, overrides);
      const bool connected = !have_connected || SharesBoundVar(clause, bound);
      const int tier = est == 0.0 ? 0 : (connected ? 1 : 2);
      if (tier < best_tier || (tier == best_tier && est < best_cost)) {
        best_tier = tier;
        best_cost = est;
        best_estimate = est;
        best_pos = i;
      }
    }
    const size_t source_index = pending[best_pos];
    pending.erase(pending.begin() + static_cast<ptrdiff_t>(best_pos));
    const PatternClause& chosen = query.clauses()[source_index];
    const NodeRef* refs[3] = {&chosen.subject, &chosen.predicate,
                              &chosen.object};
    for (const NodeRef* ref : refs) {
      if (ref->is_var()) bound[ref->var()] = true;
    }
    cumulative *= best_estimate;
    order.push_back(OrderChoice{source_index, best_estimate, cumulative});
  }
  return order;
}

/// Selinger-style DP over clause subsets. State = bitmask of placed clauses;
/// value = (cumulative cost, estimated intermediate cardinality, last clause
/// placed). The recurrence charges each extension the probes driven by the
/// current intermediate plus the rows it emits:
///
///   cost(S ∪ {j}) = cost(S) + card(S) + card(S)·est(j | vars(S))
///   card(S ∪ {j}) =                     card(S)·est(j | vars(S))
///
/// with card(∅) = 1, so unlike the greedy pass a locally-cheap clause that
/// inflates the intermediate is charged for everything downstream of it.
/// Determinism: masks and clauses iterate ascending with strict <, so the
/// first minimum wins every tie and the result is a pure function of
/// (query, store epoch, options, overrides). Sets *ok=false (caller falls
/// back to greedy) when a variable id exceeds the 64-bit mask width.
std::vector<OrderChoice> ChooseOrderDp(
    const SelectQuery& query, const TripleStore& store,
    const StoreStats& global, const PlannerOptions& options,
    const std::vector<CardinalityOverride>& overrides, bool* ok) {
  *ok = true;
  const auto& clauses = query.clauses();
  const size_t n = clauses.size();
  if (n == 0) return {};

  // Per-clause variable bitmask; vars(S) folds these over the subset.
  std::vector<uint64_t> clause_vars(n, 0);
  for (size_t j = 0; j < n; ++j) {
    const NodeRef* refs[3] = {&clauses[j].subject, &clauses[j].predicate,
                              &clauses[j].object};
    for (const NodeRef* ref : refs) {
      if (!ref->is_var()) continue;
      if (ref->var() >= 64) {
        *ok = false;
        return {};
      }
      clause_vars[j] |= uint64_t{1} << ref->var();
    }
  }

  const size_t full = (size_t{1} << n) - 1;
  std::vector<uint64_t> mask_vars(full + 1, 0);
  for (size_t mask = 1; mask <= full; ++mask) {
    size_t low = 0;
    while (((mask >> low) & 1) == 0) ++low;
    mask_vars[mask] = mask_vars[mask & (mask - 1)] | clause_vars[low];
  }

  // est(j | vars) depends only on which of j's three positions are fixed,
  // so an 8-entry memo per clause bounds the store probes (CountMatches /
  // HistogramFor) regardless of how many DP states consult the clause.
  std::vector<std::array<double, 8>> memo(n);
  for (auto& m : memo) m.fill(-1.0);
  auto estimate = [&](size_t j, uint64_t vars) {
    const PatternClause& c = clauses[j];
    const bool sb = !c.subject.is_var() || ((vars >> c.subject.var()) & 1);
    const bool pb = !c.predicate.is_var() || ((vars >> c.predicate.var()) & 1);
    const bool ob = !c.object.is_var() || ((vars >> c.object.var()) & 1);
    double& slot = memo[j][BoundSig(sb, pb, ob)];
    if (slot < 0.0) {
      slot = EstimateRowsV2(c, sb, pb, ob, j, store, global, options,
                            overrides);
    }
    return slot;
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> cost(full + 1, kInf);
  std::vector<double> card(full + 1, 0.0);
  std::vector<int> last(full + 1, -1);
  cost[0] = 0.0;
  card[0] = 1.0;
  for (size_t mask = 0; mask <= full; ++mask) {
    if (cost[mask] == kInf) continue;
    for (size_t j = 0; j < n; ++j) {
      if ((mask >> j) & 1) continue;
      const size_t next = mask | (size_t{1} << j);
      const double est = estimate(j, mask_vars[mask]);
      const double new_cost = cost[mask] + card[mask] + card[mask] * est;
      if (new_cost < cost[next]) {
        cost[next] = new_cost;
        card[next] = card[mask] * est;
        last[next] = static_cast<int>(j);
      }
    }
  }

  std::vector<size_t> sequence;
  sequence.reserve(n);
  for (size_t mask = full; mask != 0;) {
    const size_t j = static_cast<size_t>(last[mask]);
    sequence.push_back(j);
    mask &= ~(size_t{1} << j);
  }
  std::reverse(sequence.begin(), sequence.end());

  // Replay forward so the recorded estimates are exactly the ones the DP
  // costed each stage with (same memo), plus the cumulative chain.
  std::vector<OrderChoice> order;
  order.reserve(n);
  uint64_t vars = 0;
  double cumulative = 1.0;
  for (size_t j : sequence) {
    const double est = estimate(j, vars);
    cumulative *= est;
    order.push_back(OrderChoice{j, est, cumulative});
    vars |= clause_vars[j];
  }
  return order;
}

}  // namespace

CompiledPlan CompilePlan(const SelectQuery& query, const TripleStore* store,
                         const PlannerOptions& options,
                         const std::vector<CardinalityOverride>& overrides) {
  CompiledPlan plan;
  const size_t num_vars = query.num_vars();
  const bool use_stats = options.use_statistics && store != nullptr;
  plan.used_statistics = use_stats;
  plan.store_epoch = store != nullptr ? store->mutation_epoch() : 0;

  StoreStats global;
  if (use_stats) global = store->GlobalStats();

  std::vector<OrderChoice> order;
  if (use_stats && options.use_dp &&
      query.clauses().size() <= options.dp_max_clauses) {
    bool ok = false;
    order = ChooseOrderDp(query, *store, global, options, overrides, &ok);
    plan.used_dp = ok;
    if (!ok) order = ChooseOrderGreedy(query, *store, global, overrides);
  } else if (use_stats) {
    order = ChooseOrderGreedy(query, *store, global, overrides);
  } else {
    order = ChooseOrderLegacy(query);
  }

  // Shared assembly: classify slots, attach filters, resolve projection.
  // Runs identically whatever planner produced the order, so the executed
  // pipeline differs between planners only in clause sequence.
  std::vector<bool> bound(num_vars, false);
  std::vector<bool> filter_attached(query.filters().size(), false);
  for (const OrderChoice& oc : order) {
    const PatternClause& chosen = query.clauses()[oc.source_index];

    CompiledClause cc;
    cc.source_index = oc.source_index;
    cc.estimated_rows = oc.estimated_rows;
    cc.estimated_output_rows = oc.estimated_output_rows;
    const NodeRef* refs[3] = {&chosen.subject, &chosen.predicate,
                              &chosen.object};
    std::vector<bool> bound_here(num_vars, false);
    for (int i = 0; i < 3; ++i) {
      CompiledSlot& slot = cc.slots[i];
      if (!refs[i]->is_var()) {
        slot.kind = SlotKind::kConst;
        slot.constant = refs[i]->term();
        continue;
      }
      const VarId v = refs[i]->var();
      slot.var = v;
      if (bound[v]) {
        slot.kind = SlotKind::kBoundVar;
      } else if (bound_here[v]) {
        slot.kind = SlotKind::kCheck;
      } else {
        slot.kind = SlotKind::kBind;
        bound_here[v] = true;
      }
    }
    for (VarId v = 0; v < static_cast<VarId>(num_vars); ++v) {
      if (bound_here[v]) bound[v] = true;
    }

    // Attach every filter that just became fully bound.
    for (size_t fi = 0; fi < query.filters().size(); ++fi) {
      if (filter_attached[fi]) continue;
      const FilterExpr& f = query.filters()[fi];
      const bool needs_rhs = f.kind == FilterExpr::Kind::kVarEqVar ||
                             f.kind == FilterExpr::Kind::kVarNeqVar;
      if (bound[f.lhs] && (!needs_rhs || bound[f.rhs_var])) {
        cc.filters.push_back(f);
        filter_attached[fi] = true;
      }
    }
    plan.clauses.push_back(std::move(cc));
  }

  plan.dangling_filter =
      std::find(filter_attached.begin(), filter_attached.end(), false) !=
      filter_attached.end();

  plan.projection = query.projection();
  if (plan.projection.empty()) {
    for (VarId v = 0; v < static_cast<VarId>(num_vars); ++v) {
      plan.projection.push_back(v);
    }
  }
  return plan;
}

PlanExplain ExplainPlan(const CompiledPlan& plan, const SelectQuery& query,
                        const Dictionary* dict) {
  PlanExplain out;
  out.used_statistics = plan.used_statistics;
  out.used_dp = plan.used_dp;
  out.store_epoch = plan.store_epoch;
  out.dangling_filter = plan.dangling_filter;
  for (const CompiledClause& cc : plan.clauses) {
    const PatternClause& src = query.clauses()[cc.source_index];
    ClauseExplain ce;
    ce.source_index = cc.source_index;
    ce.estimated_rows = cc.estimated_rows;
    ce.estimated_output_rows = cc.estimated_output_rows;
    ce.pattern = RenderNode(src.subject, query, dict) + " " +
                 RenderNode(src.predicate, query, dict) + " " +
                 RenderNode(src.object, query, dict);
    for (const FilterExpr& f : cc.filters) {
      ce.filters.push_back(RenderFilter(f, query, dict));
    }
    out.clauses.push_back(std::move(ce));
  }
  for (VarId v : plan.projection) out.projection.push_back(query.var_name(v));
  return out;
}

std::string PlanExplain::ToString() const {
  std::string out;
  const char* planner = used_statistics
                            ? (used_dp ? "statistics planner (dp)"
                                       : "statistics planner (greedy)")
                            : "legacy-heuristic planner";
  out += StrFormat("plan: %s, epoch %llu%s\n", planner,
                   static_cast<unsigned long long>(store_epoch),
                   from_cache ? ", cached" : "");
  if (replans > 0) {
    out += StrFormat("  !! adaptive: %llu re-plan%s during execution\n",
                     static_cast<unsigned long long>(replans),
                     replans == 1 ? "" : "s");
  }
  if (dangling_filter) {
    out +=
        "  !! dangling filter (mentions a never-bound variable): "
        "result is empty by SPARQL semantics\n";
  }
  for (size_t i = 0; i < clauses.size(); ++i) {
    const ClauseExplain& ce = clauses[i];
    out += StrFormat("  %zu. clause #%zu  { %s }", i + 1, ce.source_index,
                     ce.pattern.c_str());
    if (ce.estimated_rows >= 0) {
      out += StrFormat("  est_rows=%.1f", ce.estimated_rows);
    }
    if (ce.estimated_output_rows >= 0) {
      out += StrFormat("  est_out=%.1f", ce.estimated_output_rows);
    }
    if (ce.actual_rows >= 0) {
      out += StrFormat("  actual=%lld",
                       static_cast<long long>(ce.actual_rows));
    }
    out += '\n';
    for (const std::string& f : ce.filters) {
      out += "       FILTER(" + f + ")\n";
    }
  }
  out += "  project:";
  for (const std::string& name : projection) out += " ?" + name;
  out += '\n';
  return out;
}

std::string PlanExplain::ToJson() const {
  auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        case '\r':
          out += "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            out += StrFormat("\\u%04x", c);
          } else {
            out += c;
          }
      }
    }
    return out;
  };

  std::string out = "{";
  out += StrFormat(
      "\"planner\":\"%s\",\"used_dp\":%s,\"from_cache\":%s,"
      "\"store_epoch\":%llu,\"dangling_filter\":%s,\"replans\":%llu,",
      used_statistics ? "statistics" : "legacy", used_dp ? "true" : "false",
      from_cache ? "true" : "false",
      static_cast<unsigned long long>(store_epoch),
      dangling_filter ? "true" : "false",
      static_cast<unsigned long long>(replans));
  out += "\"clauses\":[";
  for (size_t i = 0; i < clauses.size(); ++i) {
    const ClauseExplain& ce = clauses[i];
    if (i > 0) out += ',';
    out += StrFormat(
        "{\"source_index\":%zu,\"pattern\":\"%s\",\"estimated_rows\":%.3f,"
        "\"estimated_output_rows\":%.3f,\"actual_rows\":%lld,\"filters\":[",
        ce.source_index, escape(ce.pattern).c_str(), ce.estimated_rows,
        ce.estimated_output_rows, static_cast<long long>(ce.actual_rows));
    for (size_t fi = 0; fi < ce.filters.size(); ++fi) {
      if (fi > 0) out += ',';
      out += '"' + escape(ce.filters[fi]) + '"';
    }
    out += "]}";
  }
  out += "],\"projection\":[";
  for (size_t i = 0; i < projection.size(); ++i) {
    if (i > 0) out += ',';
    out += '"' + escape(projection[i]) + '"';
  }
  out += "]}";
  return out;
}

}  // namespace sofya
