// Join-order planning for the streaming BGP engine.
//
// A SelectQuery compiles into a CompiledPlan: an ordered pipeline of clauses
// whose three positions are classified once (constant / bound variable /
// first binding / repeat check), with each FILTER attached to the earliest
// stage where all of its variables are bound. The clause *order* is the
// planner's whole job — the engine scans the store's best index range per
// stage, so putting a 50-row clause ahead of a 150k-row clause changes the
// probe count by orders of magnitude on SOFYA's probe-shaped queries.
//
// Two planners share the machinery:
//
//   * statistics-driven (default): greedy min-cost ordering using
//     TripleStore::StatsFor (facts, distinct subjects/objects) for clauses
//     with a constant predicate and TripleStore::GlobalStats as the fallback
//     for variable predicates, preferring clauses connected to the already-
//     bound variable set so cross products are a last resort;
//   * legacy bound-position heuristic: the original fixed scoring
//     (3·predicate + 2·subject + 2·object bound positions), kept as an A/B
//     baseline and as the no-store fallback.
//
// Determinism: a plan is a pure function of (query PlanFingerprint, store
// mutation_epoch, PlannerOptions). Estimates come from memoized store
// statistics, ties break on the clause's position in the original query,
// and solution modifiers are not consulted — so every page of a LIMIT/OFFSET
// walk runs the same plan and pagination stays disjoint and exhaustive
// (the invariant documented in docs/QUERY_ENGINE.md).

#ifndef SOFYA_SPARQL_PLANNER_H_
#define SOFYA_SPARQL_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "sparql/query.h"

namespace sofya {

/// Planner configuration, threaded from the CLI / facade down to the engine.
struct PlannerOptions {
  /// When true (default), clause order is chosen from store statistics.
  /// When false — or when no store is available at compile time — the
  /// legacy bound-position heuristic orders the clauses.
  bool use_statistics = true;
};

/// Classification of one clause position, fixed at compile time so the
/// engine's inner loop does no NodeRef dispatch.
enum class SlotKind : uint8_t {
  kConst,     ///< Constant term: part of the index prefix, re-checked.
  kBoundVar,  ///< Variable bound by an earlier stage: prefix + re-check.
  kBind,      ///< First occurrence of a variable: binds it.
  kCheck,     ///< Repeat occurrence within this clause: equality check.
};

struct CompiledSlot {
  SlotKind kind = SlotKind::kBind;
  TermId constant = kNullTermId;  // kConst only.
  VarId var = -1;                 // All variable kinds.
};

struct CompiledClause {
  CompiledSlot slots[3];  // subject, predicate, object.
  /// Filters that become fully bound after this stage (inline application).
  std::vector<FilterExpr> filters;
  /// Index of this clause in the original query's WHERE list.
  size_t source_index = 0;
  /// The planner's row estimate at the moment this clause was chosen
  /// (statistics planner; the legacy heuristic reports -1).
  double estimated_rows = -1.0;
};

struct CompiledPlan {
  std::vector<CompiledClause> clauses;
  /// Resolved projection (never empty; defaults to all variables).
  std::vector<VarId> projection;
  /// True when some filter mentions a variable no clause ever binds: SPARQL
  /// treats the filter as an error for every row, so the result is empty.
  bool dangling_filter = false;
  /// Which planner produced the order (explain/debug surface).
  bool used_statistics = false;
  /// TripleStore::mutation_epoch() the statistics were read at (0 when
  /// planned without a store). The engine's plan cache compares this to the
  /// live epoch: same epoch ⇒ same data ⇒ the plan is still valid.
  uint64_t store_epoch = 0;
};

/// Compiles `query` into an ordered pipeline. `store` supplies statistics
/// and may be null (falls back to the legacy heuristic). Never fails:
/// structural validity is SelectQuery::Validate's job and is checked by the
/// engine before execution.
CompiledPlan CompilePlan(const SelectQuery& query, const TripleStore* store,
                         const PlannerOptions& options = {});

/// One clause of an EXPLAIN report, in executed (planned) order.
struct ClauseExplain {
  size_t source_index = 0;     ///< Position in the original WHERE list.
  std::string pattern;         ///< "?x <knows> ?y" (dict-rendered).
  double estimated_rows = -1;  ///< Planner estimate; -1 under legacy.
  std::vector<std::string> filters;  ///< Filters applied after this stage.
};

/// The full EXPLAIN surface for one query: chosen order, per-clause
/// estimates, attached filters. Exposed as Engine::Explain and the CLI
/// `explain` subcommand.
struct PlanExplain {
  bool used_statistics = false;
  bool from_cache = false;  ///< Filled by the engine, not the planner.
  uint64_t store_epoch = 0;
  bool dangling_filter = false;
  std::vector<ClauseExplain> clauses;
  std::vector<std::string> projection;  ///< Projected variable names.

  /// Multi-line human-readable rendering (the CLI's output).
  std::string ToString() const;
};

/// Renders `plan` against its source query. `dict`, when non-null, decodes
/// constant terms into their lexical forms; ids are shown otherwise.
PlanExplain ExplainPlan(const CompiledPlan& plan, const SelectQuery& query,
                        const Dictionary* dict = nullptr);

}  // namespace sofya

#endif  // SOFYA_SPARQL_PLANNER_H_
