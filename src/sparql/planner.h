// Join-order planning for the streaming BGP engine.
//
// A SelectQuery compiles into a CompiledPlan: an ordered pipeline of clauses
// whose three positions are classified once (constant / bound variable /
// first binding / repeat check), with each FILTER attached to the earliest
// stage where all of its variables are bound. The clause *order* is the
// planner's whole job — the engine scans the store's best index range per
// stage, so putting a 50-row clause ahead of a 150k-row clause changes the
// probe count by orders of magnitude on SOFYA's probe-shaped queries.
//
// Three planners share the machinery:
//
//   * Selinger-style DP (default): dynamic programming over clause subsets
//     minimizing *cumulative* cost — the sum of estimated intermediate
//     cardinalities propagated through the join chain — fed by exact
//     range-width probes (TripleStore::CountMatches: two binary searches
//     per shard) for constant-prefix clauses and skew-aware equi-depth
//     per-term histograms (TripleStore::HistogramFor) for join fan-outs.
//     Falls back to greedy above `dp_max_clauses`;
//   * greedy min-cost (v1, the A/B baseline): one clause at a time using
//     TripleStore::StatsFor (facts, distinct subjects/objects) for clauses
//     with a constant predicate and TripleStore::GlobalStats as the fallback
//     for variable predicates, preferring clauses connected to the already-
//     bound variable set so cross products are a last resort;
//   * legacy bound-position heuristic: the original fixed scoring
//     (3·predicate + 2·subject + 2·object bound positions), kept as an A/B
//     baseline and as the no-store fallback.
//
// Determinism: a plan is a pure function of (query PlanFingerprint, store
// mutation_epoch, PlannerOptions). Estimates come from memoized store
// statistics, ties break on the clause's position in the original query,
// and solution modifiers are not consulted — so every page of a LIMIT/OFFSET
// walk runs the same plan and pagination stays disjoint and exhaustive
// (the invariant documented in docs/QUERY_ENGINE.md).

#ifndef SOFYA_SPARQL_PLANNER_H_
#define SOFYA_SPARQL_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "sparql/query.h"

namespace sofya {

/// Planner configuration, threaded from the CLI / facade down to the engine.
struct PlannerOptions {
  /// When true (default), clause order is chosen from store statistics.
  /// When false — or when no store is available at compile time — the
  /// legacy bound-position heuristic orders the clauses.
  bool use_statistics = true;

  /// When true (default), statistics planning runs Selinger-style dynamic
  /// programming over clause orders with *cumulative* cost (the estimated
  /// intermediate cardinality propagated through the join chain), fed by
  /// exact range-width probes for constant-prefix clauses and per-term
  /// histograms. When false — or above `dp_max_clauses` — the v1 greedy
  /// min-cost planner orders the clauses (the A/B baseline).
  bool use_dp = true;

  /// Clause count beyond which DP (O(2^n · n) states) falls back to the
  /// greedy planner. 12 clauses = 4096 states, well under a millisecond.
  size_t dp_max_clauses = 12;

  /// When true (default), DP join fan-outs use the store's equi-depth
  /// per-term histograms (skew-aware frequency-weighted means) instead of
  /// the uniform facts/distinct average.
  bool use_histograms = true;
};

/// A pinned cardinality observation from adaptive execution: when the
/// engine re-plans mid-query, the observed blow-up of one clause is carried
/// into the new plan as a multiplicative scale on that clause's estimate.
/// The scale applies only when the clause is costed in the *same binding
/// context* it was measured in (`bound_sig`: bit 0/1/2 set when the
/// subject/predicate/object position is fixed before the clause scans) —
/// an observation made with only the subject bound says nothing about the
/// fully-bound containment-check placement of the same clause.
struct CardinalityOverride {
  size_t source_index = 0;  ///< Clause position in the original WHERE list.
  uint8_t bound_sig = 0;    ///< Binding context the observation was made in.
  double scale = 1.0;       ///< observed / estimated (≥ the replan factor).
};

/// Classification of one clause position, fixed at compile time so the
/// engine's inner loop does no NodeRef dispatch.
enum class SlotKind : uint8_t {
  kConst,     ///< Constant term: part of the index prefix, re-checked.
  kBoundVar,  ///< Variable bound by an earlier stage: prefix + re-check.
  kBind,      ///< First occurrence of a variable: binds it.
  kCheck,     ///< Repeat occurrence within this clause: equality check.
};

struct CompiledSlot {
  SlotKind kind = SlotKind::kBind;
  TermId constant = kNullTermId;  // kConst only.
  VarId var = -1;                 // All variable kinds.
};

struct CompiledClause {
  CompiledSlot slots[3];  // subject, predicate, object.
  /// Filters that become fully bound after this stage (inline application).
  std::vector<FilterExpr> filters;
  /// Index of this clause in the original query's WHERE list.
  size_t source_index = 0;
  /// The planner's row estimate at the moment this clause was chosen
  /// (statistics planner; the legacy heuristic reports -1). This is the
  /// per-outer-row fan-out estimate, not a cumulative cardinality.
  double estimated_rows = -1.0;
  /// Estimated cardinality of the join *after* this stage (the DP chain's
  /// propagated intermediate estimate; the greedy planner fills it with the
  /// running product of its per-stage estimates; -1 under legacy). This is
  /// the number adaptive execution compares against observed stage output.
  double estimated_output_rows = -1.0;
};

struct CompiledPlan {
  std::vector<CompiledClause> clauses;
  /// Resolved projection (never empty; defaults to all variables).
  std::vector<VarId> projection;
  /// True when some filter mentions a variable no clause ever binds: SPARQL
  /// treats the filter as an error for every row, so the result is empty.
  bool dangling_filter = false;
  /// Which planner produced the order (explain/debug surface).
  bool used_statistics = false;
  /// True when the order came from the Selinger-style DP search (as opposed
  /// to the v1 greedy pass); only meaningful when used_statistics.
  bool used_dp = false;
  /// TripleStore::mutation_epoch() the statistics were read at (0 when
  /// planned without a store). The engine's plan cache compares this to the
  /// live epoch: same epoch ⇒ same data ⇒ the plan is still valid.
  uint64_t store_epoch = 0;
};

/// Compiles `query` into an ordered pipeline. `store` supplies statistics
/// and may be null (falls back to the legacy heuristic). `overrides` pins
/// adaptively observed cardinalities (engine re-plans; empty for a fresh
/// compile). Never fails: structural validity is SelectQuery::Validate's
/// job and is checked by the engine before execution.
CompiledPlan CompilePlan(const SelectQuery& query, const TripleStore* store,
                         const PlannerOptions& options = {},
                         const std::vector<CardinalityOverride>& overrides = {});

/// One clause of an EXPLAIN report, in executed (planned) order.
struct ClauseExplain {
  size_t source_index = 0;     ///< Position in the original WHERE list.
  std::string pattern;         ///< "?x <knows> ?y" (dict-rendered).
  double estimated_rows = -1;  ///< Planner fan-out estimate; -1 under legacy.
  /// Estimated rows *output* by this stage (cumulative); -1 under legacy.
  double estimated_output_rows = -1;
  /// Observed rows this stage produced. -1 until an execution fills it in
  /// (CLI `explain --execute` merges EvalStats back by source_index).
  int64_t actual_rows = -1;
  std::vector<std::string> filters;  ///< Filters applied after this stage.
};

/// The full EXPLAIN surface for one query: chosen order, per-clause
/// estimates, attached filters. Exposed as Engine::Explain and the CLI
/// `explain` subcommand.
struct PlanExplain {
  bool used_statistics = false;
  bool used_dp = false;
  bool from_cache = false;  ///< Filled by the engine, not the planner.
  uint64_t store_epoch = 0;
  bool dangling_filter = false;
  /// Adaptive re-plans observed while executing (CLI --execute fills this;
  /// a plain EXPLAIN never executes, so it stays 0).
  uint64_t replans = 0;
  std::vector<ClauseExplain> clauses;
  std::vector<std::string> projection;  ///< Projected variable names.

  /// Multi-line human-readable rendering (the CLI's output).
  std::string ToString() const;

  /// One-line JSON rendering (CLI `explain --json`): planner, epoch, and
  /// the per-clause estimated-vs-actual table, machine-readable for
  /// scripts and CI gates.
  std::string ToJson() const;
};

/// Renders `plan` against its source query. `dict`, when non-null, decodes
/// constant terms into their lexical forms; ids are shown otherwise.
PlanExplain ExplainPlan(const CompiledPlan& plan, const SelectQuery& query,
                        const Dictionary* dict = nullptr);

}  // namespace sofya

#endif  // SOFYA_SPARQL_PLANNER_H_
