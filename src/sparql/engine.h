// Streaming BGP evaluation over a TripleStore.
//
// Queries are compiled into a pipeline of per-clause index-range iterators
// with pull-based binding propagation: clauses are ordered by the join-order
// planner (sparql/planner.h — statistics-driven by default, the legacy
// bound-position heuristic as fallback), each clause opens the store's best
// index range for the current partial binding, and solutions flow to the
// consumer one at a time. FILTERs are applied at the earliest clause where
// their variables are bound, DISTINCT is a streaming hash probe on projected
// rows, and LIMIT/OFFSET/ASK are pushed into the pipeline so existence
// probes and LIMIT-1 queries stop at the first solution instead of
// enumerating all bindings.
//
// Results are deterministic: the plan is a pure function of (query
// PlanFingerprint, store mutation_epoch, planner options) and the store's
// index order fixes the row order under a fixed plan, which keeps sampling
// and OFFSET pagination reproducible across runs and across pages.
//
// Two entry points:
//
//   * Engine — holds (store, dict, options) plus a plan cache keyed by
//     PlanFingerprint and validated against the store epoch, so repeated
//     probe shapes (SOFYA's workload) skip re-planning. LocalEndpoint owns
//     one. Also the home of Explain().
//   * the free Evaluate/EvaluateAsk — one-shot helpers that compile a fresh
//     plan per call; kept for tests and simple callers.

#ifndef SOFYA_SPARQL_ENGINE_H_
#define SOFYA_SPARQL_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "sparql/planner.h"
#include "sparql/query.h"
#include "util/status.h"

namespace sofya {

class ThreadPool;

/// Estimated-vs-actual rows for one executed pipeline stage (EXPLAIN's
/// `actual` column; how adaptive execution decides a plan went wrong).
struct ClauseRowStats {
  size_t source_index = 0;  ///< Clause position in the original WHERE list.
  double estimated_rows = -1.0;         ///< Planner per-stage fan-out estimate.
  double estimated_output_rows = -1.0;  ///< Planner cumulative chain estimate.
  uint64_t actual_rows = 0;             ///< Rows this stage actually emitted.
};

/// Evaluation metering, reported to the endpoint layer for accounting.
struct EvalStats {
  uint64_t intermediate_rows = 0;  ///< Rows produced across all join steps.
  uint64_t index_probes = 0;       ///< Store range lookups issued.
  uint64_t triples_scanned = 0;    ///< Index entries touched by the pipeline.
  uint64_t result_rows = 0;        ///< Final row count (after LIMIT).
  uint64_t plan_cache_hits = 0;    ///< 1 when the plan came from the cache.
  uint64_t plan_cache_misses = 0;  ///< 1 when this call had to plan.
  uint64_t replans = 0;            ///< Adaptive mid-execution re-plans.
  /// Per-stage estimated-vs-actual for the finally-executed plan, in planned
  /// order. Work counters above count *all* work (including abandoned
  /// adaptive attempts); this table describes only the plan that produced
  /// the result.
  std::vector<ClauseRowStats> clause_rows;
};

/// Compiled-plan evaluator bound to one store. Thread-safe for concurrent
/// Select/Ask/Explain as long as nobody writes to the store concurrently
/// (the store's own read contract); the plan cache takes a small mutex.
class Engine {
 public:
  struct Options {
    PlannerOptions planner;
    /// Plan cache entries before wholesale eviction; 0 disables caching.
    size_t plan_cache_capacity = 256;
    /// When set, SELECTs without a LIMIT whose driver clause covers at
    /// least `parallel_scan_min_rows` index entries fan the driver's
    /// per-shard spans (chunked) onto this pool and merge per-chunk rows in
    /// span order — bit-identical rows and EvalStats to the sequential
    /// path. Not owned; must outlive the engine. Calls arriving on a pool
    /// worker thread fall back to sequential (no nested blocking).
    ThreadPool* scan_pool = nullptr;
    /// Driver-range row threshold below which scans stay sequential.
    size_t parallel_scan_min_rows = 1 << 15;
    /// Adaptive execution: SELECTs without a LIMIT run a sequential
    /// quota-checked pass; when a stage's observed output exceeds its
    /// planner estimate by `adaptive_replan_factor`, execution bails,
    /// re-plans the query with the observed cardinality pinned
    /// (CardinalityOverride), and restarts — so a mis-estimated join order
    /// costs at most the quota it was given, not the full blown-up
    /// intermediate. Results are bit-identical to non-adaptive execution
    /// (the row set is plan-invariant and the restart replays from
    /// scratch); work counters honestly include abandoned attempts and are
    /// deterministic across scan-thread counts because quota-checked
    /// passes are always sequential. LIMIT queries are excluded so the
    /// plan stays a pure function of the PlanFingerprint and OFFSET/LIMIT
    /// pagination never changes enumeration order mid-walk. Re-planned
    /// plans are never cached.
    bool adaptive = false;
    /// Observed/estimated divergence factor that triggers a re-plan.
    double adaptive_replan_factor = 8.0;
    /// Stages with estimates below this never trigger (absolute floor on
    /// the quota) — tiny estimates would otherwise thrash on noise.
    uint64_t adaptive_min_rows = 1024;
    /// Re-plans per query before running the current plan to completion
    /// without quota checks (bounds total work at max_replans+1 attempts).
    int adaptive_max_replans = 2;
  };

  Engine(const TripleStore* store, const Dictionary* dict, Options options)
      : store_(store), dict_(dict), options_(options) {}
  explicit Engine(const TripleStore* store) : Engine(store, nullptr) {}
  Engine(const TripleStore* store, const Dictionary* dict)
      : Engine(store, dict, Options()) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Evaluates `query`. On success the ResultSet columns are the query's
  /// projection (or all variables for SELECT *).
  StatusOr<ResultSet> Select(const SelectQuery& query,
                             EvalStats* stats = nullptr) const;

  /// ASK-form evaluation: true iff `query` has at least one solution; stops
  /// at the first (DISTINCT/LIMIT/OFFSET are irrelevant to existence).
  StatusOr<bool> Ask(const SelectQuery& query,
                     EvalStats* stats = nullptr) const;

  /// The EXPLAIN surface: the plan this engine would run `query` with —
  /// chosen clause order, per-clause estimates, attached filters — without
  /// executing it. `from_cache` reports whether the plan was already cached.
  StatusOr<PlanExplain> Explain(const SelectQuery& query) const;

  const Options& options() const { return options_; }

  /// Plan-cache accounting since construction.
  uint64_t plan_cache_hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  uint64_t plan_cache_misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

  /// Adaptive mid-execution re-plans since construction.
  uint64_t replans() const { return replans_.load(std::memory_order_relaxed); }

 private:
  /// Returns the cached plan for `query` (same PlanFingerprint, same store
  /// epoch) or compiles, caches, and returns a fresh one.
  std::shared_ptr<const CompiledPlan> PlanFor(const SelectQuery& query,
                                              bool* cache_hit) const;

  const TripleStore* store_;  // Not owned.
  const Dictionary* dict_;    // Not owned; may be null.
  Options options_;

  mutable std::mutex mu_;
  mutable std::unordered_map<std::string, std::shared_ptr<const CompiledPlan>>
      plans_;  // Guarded by mu_; entries validated against store epoch.
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> replans_{0};
};

/// One-shot evaluation of `query` against `store` (fresh plan, default
/// planner). `stats`, when non-null, receives evaluation metering. `dict`,
/// when non-null, enables the isIRI/isLiteral filters (they pass
/// conservatively without it). `planner` selects the join-order planner.
StatusOr<ResultSet> Evaluate(const TripleStore& store,
                             const SelectQuery& query,
                             EvalStats* stats = nullptr,
                             const Dictionary* dict = nullptr,
                             const PlannerOptions& planner = {});

/// One-shot ASK: true iff `query` has at least one solution. The pipeline
/// stops at the first solution, so the cost is O(first match) and
/// independent of the result cardinality (the query's DISTINCT/OFFSET/LIMIT
/// modifiers are irrelevant to existence and ignored).
StatusOr<bool> EvaluateAsk(const TripleStore& store, const SelectQuery& query,
                           EvalStats* stats = nullptr,
                           const Dictionary* dict = nullptr,
                           const PlannerOptions& planner = {});

}  // namespace sofya

#endif  // SOFYA_SPARQL_ENGINE_H_
