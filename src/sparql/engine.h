// BGP evaluation over a TripleStore.
//
// A straightforward index-nested-loop join: clauses are ordered greedily by
// estimated selectivity (bound constants + already-bound variables first),
// each clause probes the store's best index given the current partial
// binding. Results are deterministic: the store's index order fixes the row
// order, which keeps sampling reproducible across runs.

#ifndef SOFYA_SPARQL_ENGINE_H_
#define SOFYA_SPARQL_ENGINE_H_

#include <cstdint>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "sparql/query.h"
#include "util/status.h"

namespace sofya {

/// Evaluation metering, reported to the endpoint layer for accounting.
struct EvalStats {
  uint64_t intermediate_rows = 0;  ///< Rows produced across all join steps.
  uint64_t index_probes = 0;       ///< Store range lookups issued.
  uint64_t result_rows = 0;        ///< Final row count (after LIMIT).
};

/// Evaluates `query` against `store`. On success the ResultSet columns are
/// the query's projection (or all variables for SELECT *).
///
/// `stats`, when non-null, receives evaluation metering. `dict`, when
/// non-null, enables the isIRI/isLiteral filters (they pass conservatively
/// without it).
StatusOr<ResultSet> Evaluate(const TripleStore& store,
                             const SelectQuery& query,
                             EvalStats* stats = nullptr,
                             const Dictionary* dict = nullptr);

}  // namespace sofya

#endif  // SOFYA_SPARQL_ENGINE_H_
