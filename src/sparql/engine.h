// Streaming BGP evaluation over a TripleStore.
//
// Queries are compiled into a pipeline of per-clause index-range iterators
// with pull-based binding propagation: clauses are ordered greedily by
// estimated selectivity (bound constants + already-bound variables first),
// each clause opens the store's best index range for the current partial
// binding, and solutions flow to the consumer one at a time. FILTERs are
// applied at the earliest clause where their variables are bound, DISTINCT
// is a streaming hash probe on projected rows, and LIMIT/OFFSET/ASK are
// pushed into the pipeline so existence probes and LIMIT-1 queries stop at
// the first solution instead of enumerating all bindings.
//
// Results are deterministic: the store's index order fixes the row order
// (identical to the previous materializing engine), which keeps sampling
// and pagination reproducible across runs.

#ifndef SOFYA_SPARQL_ENGINE_H_
#define SOFYA_SPARQL_ENGINE_H_

#include <cstdint>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "sparql/query.h"
#include "util/status.h"

namespace sofya {

/// Evaluation metering, reported to the endpoint layer for accounting.
struct EvalStats {
  uint64_t intermediate_rows = 0;  ///< Rows produced across all join steps.
  uint64_t index_probes = 0;       ///< Store range lookups issued.
  uint64_t triples_scanned = 0;    ///< Index entries touched by the pipeline.
  uint64_t result_rows = 0;        ///< Final row count (after LIMIT).
};

/// Evaluates `query` against `store`. On success the ResultSet columns are
/// the query's projection (or all variables for SELECT *).
///
/// `stats`, when non-null, receives evaluation metering. `dict`, when
/// non-null, enables the isIRI/isLiteral filters (they pass conservatively
/// without it).
StatusOr<ResultSet> Evaluate(const TripleStore& store,
                             const SelectQuery& query,
                             EvalStats* stats = nullptr,
                             const Dictionary* dict = nullptr);

/// ASK-form evaluation: true iff `query` has at least one solution. The
/// pipeline stops at the first solution, so the cost is O(first match) and
/// independent of the result cardinality (the query's DISTINCT/OFFSET/LIMIT
/// modifiers are irrelevant to existence and ignored).
StatusOr<bool> EvaluateAsk(const TripleStore& store, const SelectQuery& query,
                           EvalStats* stats = nullptr,
                           const Dictionary* dict = nullptr);

}  // namespace sofya

#endif  // SOFYA_SPARQL_ENGINE_H_
