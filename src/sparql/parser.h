// Textual SPARQL parser for the SELECT subset the engine evaluates.
//
// Grammar (a strict subset of SPARQL 1.1):
//
//   query    := prologue 'SELECT' 'DISTINCT'? ('*' | Var+)
//               'WHERE' '{' (clause | filter)* '}' modifier*
//   prologue := ('PREFIX' PNAME ':' IRIREF)*
//   clause   := term term term '.'
//   filter   := 'FILTER' '(' cond ')'
//   cond     := Var ('='|'!=') (Var | term)
//             | ('isIRI'|'isLiteral') '(' Var ')'
//   term     := IRIREF | prefixed-name | literal | Var
//   modifier := 'LIMIT' INT | 'OFFSET' INT
//
// Keywords are case-insensitive. Constant terms are interned through the
// caller-supplied TermInterner (a Dictionary or an Endpoint), so parsed
// queries are immediately evaluable against that dataset.

#ifndef SOFYA_SPARQL_PARSER_H_
#define SOFYA_SPARQL_PARSER_H_

#include <functional>
#include <string_view>

#include "rdf/dictionary.h"
#include "rdf/namespaces.h"
#include "sparql/query.h"
#include "util/status.h"

namespace sofya {

/// Resolves a constant term to a TermId in the target dataset's id space.
using TermInterner = std::function<TermId(const Term&)>;

/// Parses `text` into a SelectQuery, interning constants via `intern`.
/// `prefixes`, when given, seeds the prologue's prefix table (PREFIX
/// declarations in the query extend/override it).
StatusOr<SelectQuery> ParseSelectQuery(std::string_view text,
                                       const TermInterner& intern,
                                       const PrefixMap* prefixes = nullptr);

/// Convenience: intern into a Dictionary.
StatusOr<SelectQuery> ParseSelectQuery(std::string_view text,
                                       Dictionary* dict,
                                       const PrefixMap* prefixes = nullptr);

}  // namespace sofya

#endif  // SOFYA_SPARQL_PARSER_H_
