// RDF terms: IRIs and (optionally typed / language-tagged) literals.
//
// Terms are the *decoded* representation; inside a TripleStore every term is
// dictionary-encoded to a 32-bit TermId (see rdf/dictionary.h). Blank nodes
// are represented as IRIs in the reserved "_:" namespace — sufficient for
// SOFYA, which never needs blank-node scoping across documents.

#ifndef SOFYA_RDF_TERM_H_
#define SOFYA_RDF_TERM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "util/hash.h"

namespace sofya {

/// Dictionary-encoded term identifier. 0 is reserved: it means "no term"
/// (and, in triple patterns, "wildcard").
using TermId = uint32_t;

/// The reserved null/wildcard id.
inline constexpr TermId kNullTermId = 0;

/// Kind of an RDF term.
enum class TermKind : uint8_t {
  kIri = 0,      ///< IRI reference (includes blank nodes as "_:...").
  kLiteral = 1,  ///< Literal with optional datatype IRI or language tag.
};

/// An RDF term value.
///
/// Immutable after construction; use the named constructors.
class Term {
 public:
  Term() : kind_(TermKind::kIri) {}

  /// Creates an IRI term (also used for blank nodes "_:bN").
  static Term Iri(std::string iri) {
    Term t;
    t.kind_ = TermKind::kIri;
    t.lexical_ = std::move(iri);
    return t;
  }

  /// Creates a plain literal.
  static Term Literal(std::string lexical) {
    Term t;
    t.kind_ = TermKind::kLiteral;
    t.lexical_ = std::move(lexical);
    return t;
  }

  /// Creates a typed literal ("42"^^xsd:integer).
  static Term TypedLiteral(std::string lexical, std::string datatype_iri) {
    Term t;
    t.kind_ = TermKind::kLiteral;
    t.lexical_ = std::move(lexical);
    t.datatype_ = std::move(datatype_iri);
    return t;
  }

  /// Creates a language-tagged literal ("Wien"@de).
  static Term LangLiteral(std::string lexical, std::string lang) {
    Term t;
    t.kind_ = TermKind::kLiteral;
    t.lexical_ = std::move(lexical);
    t.language_ = std::move(lang);
    return t;
  }

  TermKind kind() const { return kind_; }
  bool is_iri() const { return kind_ == TermKind::kIri; }
  bool is_literal() const { return kind_ == TermKind::kLiteral; }
  bool is_blank() const {
    return is_iri() && lexical_.size() >= 2 && lexical_[0] == '_' &&
           lexical_[1] == ':';
  }

  /// IRI string for IRIs, lexical form for literals.
  const std::string& lexical() const { return lexical_; }
  /// Datatype IRI; empty for plain/lang literals and IRIs.
  const std::string& datatype() const { return datatype_; }
  /// Language tag; empty unless a language-tagged literal.
  const std::string& language() const { return language_; }

  /// Canonical N-Triples surface form: `<iri>`, `"lex"`, `"lex"@lang`,
  /// `"lex"^^<dt>`, or `_:bN`. This string is also the dictionary key, so
  /// equality of encodings implies equality of terms.
  std::string ToNTriples() const;

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind_ == b.kind_ && a.lexical_ == b.lexical_ &&
           a.datatype_ == b.datatype_ && a.language_ == b.language_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }

  /// Total order (kind, lexical, datatype, language) for sorted containers.
  friend bool operator<(const Term& a, const Term& b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    if (a.lexical_ != b.lexical_) return a.lexical_ < b.lexical_;
    if (a.datatype_ != b.datatype_) return a.datatype_ < b.datatype_;
    return a.language_ < b.language_;
  }

 private:
  TermKind kind_;
  std::string lexical_;
  std::string datatype_;
  std::string language_;
};

/// Hash functor for Term (combines all fields).
struct TermHash {
  size_t operator()(const Term& t) const {
    size_t seed = static_cast<size_t>(t.kind());
    HashCombine(seed, t.lexical());
    HashCombine(seed, t.datatype());
    HashCombine(seed, t.language());
    return seed;
  }
};

/// Common XSD datatype IRIs used by the generator and literal matcher.
namespace xsd {
inline constexpr std::string_view kString = "http://www.w3.org/2001/XMLSchema#string";
inline constexpr std::string_view kInteger = "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr std::string_view kDouble = "http://www.w3.org/2001/XMLSchema#double";
inline constexpr std::string_view kDate = "http://www.w3.org/2001/XMLSchema#date";
inline constexpr std::string_view kGYear = "http://www.w3.org/2001/XMLSchema#gYear";
}  // namespace xsd

}  // namespace sofya

#endif  // SOFYA_RDF_TERM_H_
