// Dictionary-encoded triples and triple patterns.

#ifndef SOFYA_RDF_TRIPLE_H_
#define SOFYA_RDF_TRIPLE_H_

#include <cstdint>
#include <tuple>

#include "rdf/term.h"
#include "util/hash.h"

namespace sofya {

/// A fact 〈subject, predicate, object〉 in dictionary-encoded form.
struct Triple {
  TermId subject = kNullTermId;
  TermId predicate = kNullTermId;
  TermId object = kNullTermId;

  Triple() = default;
  Triple(TermId s, TermId p, TermId o)
      : subject(s), predicate(p), object(o) {}

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.subject == b.subject && a.predicate == b.predicate &&
           a.object == b.object;
  }
  friend bool operator!=(const Triple& a, const Triple& b) {
    return !(a == b);
  }
  friend bool operator<(const Triple& a, const Triple& b) {
    return std::tie(a.subject, a.predicate, a.object) <
           std::tie(b.subject, b.predicate, b.object);
  }
};

/// Hash functor for Triple.
struct TripleHash {
  size_t operator()(const Triple& t) const {
    // Pack into one 96-bit value via two mixes.
    size_t seed = t.subject;
    HashCombine(seed, t.predicate);
    HashCombine(seed, t.object);
    return seed;
  }
};

/// A match pattern: kNullTermId (= 0) in a position means "any".
struct TriplePattern {
  TermId subject = kNullTermId;
  TermId predicate = kNullTermId;
  TermId object = kNullTermId;

  TriplePattern() = default;
  TriplePattern(TermId s, TermId p, TermId o)
      : subject(s), predicate(p), object(o) {}

  bool has_subject() const { return subject != kNullTermId; }
  bool has_predicate() const { return predicate != kNullTermId; }
  bool has_object() const { return object != kNullTermId; }

  /// Number of bound positions (0..3).
  int BoundCount() const {
    return (has_subject() ? 1 : 0) + (has_predicate() ? 1 : 0) +
           (has_object() ? 1 : 0);
  }

  /// True iff `t` matches this pattern.
  bool Matches(const Triple& t) const {
    return (!has_subject() || subject == t.subject) &&
           (!has_predicate() || predicate == t.predicate) &&
           (!has_object() || object == t.object);
  }
};

}  // namespace sofya

#endif  // SOFYA_RDF_TRIPLE_H_
