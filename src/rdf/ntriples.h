// N-Triples (W3C) line-based parser and serializer.
//
// Supported term syntax: `<iri>`, `_:label`, `"lexical"`, `"lexical"@lang`,
// `"lexical"^^<datatype>`. Comment lines (#...) and blank lines are skipped.
// Parsing is strict enough to reject malformed lines with a ParseError that
// carries the line number.

#ifndef SOFYA_RDF_NTRIPLES_H_
#define SOFYA_RDF_NTRIPLES_H_

#include <istream>
#include <ostream>
#include <string>
#include <string_view>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "util/status.h"

namespace sofya {

/// Result of parsing one N-Triples document.
struct NTriplesParseReport {
  size_t lines_read = 0;      ///< Total lines seen (incl. comments/blank).
  size_t triples_parsed = 0;  ///< Triples successfully added.
};

/// Parses a single term starting at `*pos` inside `line`; advances `*pos`
/// past the term. Exposed for tests.
StatusOr<Term> ParseNTriplesTerm(std::string_view line, size_t* pos);

/// Parses one N-Triples line into (s, p, o) terms. The line must end with
/// '.' (whitespace-tolerant). Comment/blank lines yield kNotFound, which
/// stream-level parsing treats as "skip".
Status ParseNTriplesLine(std::string_view line, Term* s, Term* p, Term* o);

/// Parses an entire document from `in`, interning terms into `dict` and
/// inserting triples into `store`. Runs inside a store bulk-load scope: the
/// mutation epoch bumps once per document (not per triple) and predicate
/// promotion happens in one pass at the end. `expected_triples`, when
/// non-zero, pre-reserves store hash capacity (callers with a file size can
/// estimate ~one triple per 120 bytes).
StatusOr<NTriplesParseReport> ParseNTriples(std::istream& in,
                                            Dictionary* dict,
                                            TripleStore* store,
                                            size_t expected_triples = 0);

/// Convenience overload for in-memory documents.
StatusOr<NTriplesParseReport> ParseNTriplesString(std::string_view document,
                                                  Dictionary* dict,
                                                  TripleStore* store);

/// Serializes every triple in `store` (SPO order) as N-Triples.
Status WriteNTriples(const TripleStore& store, const Dictionary& dict,
                     std::ostream& out);

/// Serializes to a string; convenience for tests.
StatusOr<std::string> WriteNTriplesString(const TripleStore& store,
                                          const Dictionary& dict);

}  // namespace sofya

#endif  // SOFYA_RDF_NTRIPLES_H_
